// Benchmarks regenerating the paper's figures (see DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured shapes):
//
//	BenchmarkFig1_Noise       Figure 1 (+ App. Figs 6–7):   runtime vs noise
//	BenchmarkFig2_Balance     Figure 2 (+ App. Figs 8–9):   runtime vs balance
//	BenchmarkFig3_Preprocess  Figure 3: synopsis construction time
//	BenchmarkFig4_Joins       Figure 4 (+ App. Figs 10–13): runtime vs joins
//	BenchmarkFig5_Validation  Figure 5 (+ App. Figs 14–15): TPC-H/DS templates
//
// plus ablation benchmarks for the design choices DESIGN.md calls out.
// Each figure benchmark fixes the paper's control parameters in its
// sub-benchmark name (balance b, joins j, noise p) and reports per-scheme
// time; comparing sub-benchmark times reproduces the figures' orderings.
package cqabench_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"cqabench/internal/cqa"
	"cqabench/internal/estimator"
	"cqabench/internal/mt"
	"cqabench/internal/obs"
	"cqabench/internal/repair"
	"cqabench/internal/sampler"
	"cqabench/internal/scenario"
	"cqabench/internal/synopsis"
)

// benchOpts keeps per-estimate work bounded so a benchmark iteration
// cannot run away on a hostile synopsis (the harness's timeout analogue).
func benchOpts() cqa.Options {
	return cqa.Options{
		Eps:   0.2,
		Delta: 0.3,
		Seed:  mt.DefaultSeed,
		Budget: estimator.Budget{
			MaxSamples: 2_000_000,
		},
	}
}

var (
	labOnce sync.Once
	lab     *scenario.Lab
	labErr  error
)

func benchLab(b *testing.B) *scenario.Lab {
	b.Helper()
	labOnce.Do(func() {
		cfg := scenario.DefaultConfig()
		cfg.ScaleFactor = 0.0002
		cfg.QueriesPerJoin = 1
		cfg.DQGIterations = 30
		lab, labErr = scenario.NewLab(cfg)
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return lab
}

// synopsesFor builds (once per call) the synopsis sets of a workload.
func synopsesFor(b *testing.B, w *scenario.Workload) []*synopsis.Set {
	b.Helper()
	sets := make([]*synopsis.Set, len(w.Pairs))
	for i, p := range w.Pairs {
		set, err := synopsis.Build(p.DB, p.Query)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = set
	}
	return sets
}

// runScheme executes one scheme over prebuilt synopsis sets; budget
// exhaustion counts as a completed (timed-out) run, as in the harness.
func runScheme(b *testing.B, sets []*synopsis.Set, s cqa.Scheme) {
	b.Helper()
	opts := benchOpts()
	for _, set := range sets {
		if _, _, err := cqa.ApxAnswersFromSet(set, s, opts); err != nil && !errors.Is(err, estimator.ErrBudget) {
			b.Fatal(err)
		}
	}
}

func benchmarkFamily(b *testing.B, w *scenario.Workload) {
	sets := synopsesFor(b, w)
	for _, s := range cqa.Schemes {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			samples := obs.Default().Counter("sampler_samples_total", obs.L("scheme", s.String()))
			before := samples.Value()
			for i := 0; i < b.N; i++ {
				runScheme(b, sets, s)
			}
			registerBenchResult(b, float64(samples.Value()-before)/float64(b.N))
		})
	}
}

// registerBenchResult publishes a sub-benchmark's key results — draws per
// iteration (read back from the sampler_samples_total obs counter) and
// ns/op — both to the testing framework and as obs gauges, so a metrics
// snapshot taken after a bench run carries the perf trajectory.
func registerBenchResult(b *testing.B, samplesPerOp float64) {
	b.Helper()
	b.ReportMetric(samplesPerOp, "samples/op")
	lbl := obs.L("bench", b.Name())
	obs.Set("bench_samples_per_op", samplesPerOp, lbl)
	if b.N > 0 {
		obs.Set("bench_ns_per_op", float64(b.Elapsed().Nanoseconds())/float64(b.N), lbl)
	}
}

// BenchmarkFig1_Noise reproduces the noise scenarios: Boolean (balance 0)
// and non-Boolean (balance 0.5) queries at 1 and 3 joins, noise swept over
// {0.2, 0.6, 1.0}. Expected shape (paper take-home 1 & 2): Natural fastest
// at b=0, slowest at b=0.5 where KLM leads.
func BenchmarkFig1_Noise(b *testing.B) {
	l := benchLab(b)
	for _, bal := range []float64{0, 0.5} {
		for _, joins := range []int{1, 3} {
			w, err := l.NoiseScenario(bal, joins, []float64{0.2, 0.6, 1.0})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("b=%.1f/j=%d", bal, joins), func(b *testing.B) {
				benchmarkFamily(b, w)
			})
		}
	}
}

// BenchmarkFig2_Balance reproduces the balance scenarios: noise fixed at
// 0.4, balance swept over {0, 0.5, 1.0}, at 1 and 3 joins.
func BenchmarkFig2_Balance(b *testing.B) {
	l := benchLab(b)
	for _, joins := range []int{1, 3} {
		w, err := l.BalanceScenario(0.4, joins, []float64{0, 0.5, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("p=0.4/j=%d", joins), func(b *testing.B) {
			benchmarkFamily(b, w)
		})
	}
}

// BenchmarkFig3_Preprocess measures the preprocessing step (synopsis
// construction) whose distribution Figure 3 reports, per join level and
// noise level.
func BenchmarkFig3_Preprocess(b *testing.B) {
	l := benchLab(b)
	for _, joins := range []int{1, 3, 5} {
		for _, p := range []float64{0.2, 0.6, 1.0} {
			db, err := l.NoisyDB(joins, 0, p)
			if err != nil {
				b.Fatal(err)
			}
			q, err := l.BaseQuery(joins, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("j=%d/p=%.1f", joins, p), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := synopsis.Build(db, q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4_Joins reproduces the join scenarios: noise 0.4, balance
// {0, 0.5}, joins swept 1–3. The paper reports per-scheme shares of the
// total time; here the sub-benchmark times give the same ordering.
func BenchmarkFig4_Joins(b *testing.B) {
	l := benchLab(b)
	for _, bal := range []float64{0, 0.5} {
		w, err := l.JoinsScenario(0.4, bal, []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("p=0.4/b=%.1f", bal), func(b *testing.B) {
			benchmarkFamily(b, w)
		})
	}
}

// BenchmarkFig5_Validation reproduces two TPC-H validation scenarios:
// Q12 (low balance: Natural expected to dominate) and Q10 (non-zero
// balance: KLM expected to lead among the symbolic schemes).
func BenchmarkFig5_Validation(b *testing.B) {
	l := benchLab(b)
	for _, id := range []int{12, 10} {
		var vq scenario.ValidationQuery
		for _, cand := range scenario.TPCHValidationQueries() {
			if cand.TemplateID == id {
				vq = cand
			}
		}
		w, err := scenario.ValidationScenario(l.Base(), vq, []float64{0.2, 0.6}, 2, 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(vq.Name(), func(b *testing.B) {
			benchmarkFamily(b, w)
		})
	}
}

// benchPair returns a moderately sized admissible pair for the ablations.
func ablationPair() *synopsis.Admissible {
	pair := &synopsis.Admissible{}
	src := mt.New(7)
	const nBlocks = 30
	for i := 0; i < nBlocks; i++ {
		pair.BlockSizes = append(pair.BlockSizes, int32(src.Intn(4))+2)
	}
	for i := 0; i < 40; i++ {
		var img synopsis.Image
		for bk := 0; bk < nBlocks; bk++ {
			if src.Intn(6) == 0 {
				img = append(img, synopsis.Member{Block: int32(bk), Fact: int32(src.Intn(int(pair.BlockSizes[bk])))})
			}
		}
		if len(img) == 0 {
			img = synopsis.Image{{Block: int32(i % nBlocks), Fact: 0}}
		}
		pair.Images = append(pair.Images, img)
	}
	pair.Canonicalize()
	touched := make([]bool, nBlocks)
	for _, img := range pair.Images {
		for _, m := range img {
			touched[m.Block] = true
		}
	}
	for bk, ok := range touched {
		if !ok {
			pair.Images = append(pair.Images, synopsis.Image{{Block: int32(bk), Fact: 0}})
		}
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}

// BenchmarkAblation_OptEstimateVsHoeffding compares the optimal estimator
// of [8] against the non-adaptive fixed-N baseline sized from the
// worst-case 1/|H| mean lower bound — the design choice Section 4.2
// attributes the KL(M) schemes' performance to.
func BenchmarkAblation_OptEstimateVsHoeffding(b *testing.B) {
	pair := ablationPair()
	b.Run("OptEstimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sampler.NewKL(pair)
			if _, err := estimator.MonteCarlo(s, 0.2, 0.3, mt.New(uint64(i)), estimator.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FixedN", func(b *testing.B) {
		lb := 1 / float64(pair.NumImages())
		for i := 0; i < b.N; i++ {
			s := sampler.NewKL(pair)
			if _, err := estimator.FixedSamples(s, 0.2, 0.3, lb, mt.New(uint64(i)), estimator.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_KLvsKLM_SamplerCost isolates the per-sample cost gap
// the paper discusses: KLM iterates over every image, KL stops at the
// first witness.
func BenchmarkAblation_KLvsKLM_SamplerCost(b *testing.B) {
	pair := ablationPair()
	b.Run("KL", func(b *testing.B) {
		s := sampler.NewKL(pair)
		src := mt.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Sample(src)
		}
	})
	b.Run("KLM", func(b *testing.B) {
		s := sampler.NewKLM(pair)
		src := mt.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Sample(src)
		}
	})
}

// BenchmarkAblation_AliasVsLinear compares the Walker alias table used for
// drawing images from the symbolic space against naive linear cumulative
// search.
func BenchmarkAblation_AliasVsLinear(b *testing.B) {
	pair := ablationPair()
	weights := make([]float64, pair.NumImages())
	var total float64
	for i := range weights {
		weights[i] = pair.ImageWeight(i)
		total += weights[i]
	}
	b.Run("Alias", func(b *testing.B) {
		a := mt.NewAlias(weights)
		src := mt.New(1)
		for i := 0; i < b.N; i++ {
			_ = a.Draw(src)
		}
	})
	b.Run("Linear", func(b *testing.B) {
		src := mt.New(1)
		for i := 0; i < b.N; i++ {
			x := src.Float64() * total
			acc := 0.0
			for j, w := range weights {
				acc += w
				if acc >= x {
					_ = j
					break
				}
			}
		}
	})
}

// BenchmarkAblation_SynopsisVsWholeDB quantifies what the synopsis of
// Section 4.1 buys: the natural scheme over the encoded admissible pair
// versus sampling whole-database repairs and re-evaluating the query per
// sample (the synopsis-free formulation of the natural approach).
func BenchmarkAblation_SynopsisVsWholeDB(b *testing.B) {
	l := benchLab(b)
	db, err := l.NoisyDB(1, 0, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	q, err := l.BaseQuery(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	boolean := q.Boolean()
	opts := benchOpts()
	b.Run("Synopsis", func(b *testing.B) {
		set, err := synopsis.Build(db, boolean)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cqa.ApxAnswersFromSet(set, cqa.Natural, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WholeDB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := repair.NaiveNaturalFreq(db, boolean, nil, opts.Eps, opts.Delta,
				mt.New(uint64(i)), opts.Budget)
			if err != nil && !errors.Is(err, estimator.ErrBudget) {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_SynopsisSharing quantifies Section 5's optimization:
// computing all synopses once versus re-running the preprocessing step for
// every scheme invocation (Algorithm 1 verbatim).
func BenchmarkAblation_SynopsisSharing(b *testing.B) {
	l := benchLab(b)
	db, err := l.NoisyDB(1, 0, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	q, err := l.BaseQuery(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.Run("Shared", func(b *testing.B) {
		set, err := synopsis.Build(db, q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cqa.ApxAnswersFromSet(set, cqa.KLM, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Rebuilt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cqa.ApxAnswers(db, q, cqa.KLM, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_StoppingRuleVsAA compares the plain stopping-rule
// estimator (one (eps, delta) pass) against the full three-step optimal
// algorithm of [8]: the stopping rule alone needs ~1/(eps^2 mu) samples
// where the AA algorithm adapts to the sampler's variance.
func BenchmarkAblation_StoppingRuleVsAA(b *testing.B) {
	pair := ablationPair()
	b.Run("StoppingRule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sampler.NewKLM(pair)
			if _, err := estimator.StoppingRule(s, 0.2, 0.3, mt.New(uint64(i)), estimator.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sampler.NewKLM(pair)
			if _, err := estimator.MonteCarlo(s, 0.2, 0.3, mt.New(uint64(i)), estimator.Budget{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ExactAlgorithms compares the three exact baselines on
// a structured pair within all their reaches.
func BenchmarkAblation_ExactAlgorithms(b *testing.B) {
	pair := ablationExactPair()
	b.Run("InclusionExclusion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pair.ExactRatio(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Decomposed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pair.ExactRatioDecomposed(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pair.ExactRatioCompiled(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// kernelPair builds the large-|H| low-coverage regime where the
// first-member index pays: many images over large blocks, so the plain
// kernels scan (nearly) all of |H| per draw.
func kernelPair() *synopsis.Admissible {
	pair := &synopsis.Admissible{}
	const nBlocks = 30
	const blockSize = 24
	for bk := 0; bk < nBlocks; bk++ {
		pair.BlockSizes = append(pair.BlockSizes, blockSize)
	}
	src := mt.New(3)
	for i := 0; i < 3000; i++ {
		b1 := int32(src.Intn(nBlocks))
		b2 := int32(src.Intn(nBlocks))
		img := synopsis.Image{{Block: b1, Fact: int32(src.Intn(blockSize))}}
		if b2 != b1 {
			img = append(img, synopsis.Member{Block: b2, Fact: int32(src.Intn(blockSize))})
		}
		pair.Images = append(pair.Images, img)
	}
	pair.Canonicalize()
	touched := make([]bool, nBlocks)
	for _, img := range pair.Images {
		for _, m := range img {
			touched[m.Block] = true
		}
	}
	for bk, ok := range touched {
		if !ok {
			pair.Images = append(pair.Images, synopsis.Image{{Block: int32(bk), Fact: 0}})
		}
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}

// BenchmarkKernels compares, per scheme, the plain scan kernel against the
// first-member-indexed one, one draw at a time and in estimator-sized
// batches, on the large-|H| pair where the kernel selector picks the
// index. samples/sec is the headline throughput number EXPERIMENTS.md
// quotes; all variants draw from identical PRNG streams.
func BenchmarkKernels(b *testing.B) {
	pair := kernelPair()
	kernels := []struct {
		name string
		s    estimator.BatchSampler
	}{
		{"Natural/plain", sampler.NewNatural(pair)},
		{"Natural/indexed", sampler.NewNaturalIndexed(pair)},
		{"KL/plain", sampler.NewKL(pair)},
		{"KL/indexed", sampler.NewKLIndexed(pair)},
		{"KLM/plain", sampler.NewKLM(pair)},
		{"KLM/indexed", sampler.NewKLMIndexed(pair)},
	}
	for _, k := range kernels {
		b.Run(k.name+"/single", func(b *testing.B) {
			src := mt.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = k.s.Sample(src)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
		b.Run(k.name+"/batch", func(b *testing.B) {
			src := mt.New(1)
			buf := make([]float64, 256)
			b.ReportAllocs()
			drawn := 0
			for i := 0; i < b.N; i += len(buf) {
				k.s.SampleBatch(src, buf)
				drawn += len(buf)
			}
			b.ReportMetric(float64(drawn)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// BenchmarkIntraQueryParallel measures the intra-query substream fan-out
// on one expensive KL estimate over the large-|H| kernel pair: the
// legacy sequential single-stream path against the chunk-scheduled
// parallel path at 1, 2, and 4 workers. For a fixed seed the parallel
// result is identical at every pool size, so the sub-benchmarks time
// the same logical computation; wall-clock scaling tracks the number of
// cores actually available (GOMAXPROCS caps effective speedup).
func BenchmarkIntraQueryParallel(b *testing.B) {
	pair := kernelPair()
	const eps, delta = 0.05, 0.05
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		var samples int64
		for i := 0; i < b.N; i++ {
			s := sampler.NewKL(pair)
			r, err := estimator.MonteCarlo(s, eps, delta, mt.New(mt.DefaultSeed), estimator.Budget{})
			if err != nil {
				b.Fatal(err)
			}
			samples = r.Samples
		}
		registerBenchResult(b, float64(samples))
	})
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			p := estimator.Parallel{
				Seed:       mt.DefaultSeed,
				Workers:    w,
				NewSampler: func() estimator.Sampler { return sampler.NewKL(pair) },
			}
			var samples int64
			for i := 0; i < b.N; i++ {
				r, err := estimator.MonteCarloParallel(context.Background(), p, eps, delta, estimator.Budget{})
				if err != nil {
					b.Fatal(err)
				}
				samples = r.Samples
			}
			registerBenchResult(b, float64(samples))
		})
	}
}

// ablationExactPair: 18 images in several small components.
func ablationExactPair() *synopsis.Admissible {
	pair := &synopsis.Admissible{}
	for c := 0; c < 6; c++ {
		base := int32(len(pair.BlockSizes))
		pair.BlockSizes = append(pair.BlockSizes, 2, 3, 2)
		pair.Images = append(pair.Images,
			synopsis.Image{{Block: base, Fact: 0}, {Block: base + 1, Fact: 1}},
			synopsis.Image{{Block: base + 1, Fact: 2}, {Block: base + 2, Fact: 0}},
			synopsis.Image{{Block: base + 2, Fact: 1}},
		)
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}
