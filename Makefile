# cqabench — standard targets.

GO ?= go

.PHONY: all build test test-short vet cover bench fuzz figures examples clean check

all: build vet test

# The CI gate: vet, formatting, the race-sensitive subset, and docs
# consistency (every flag the docs mention must exist in cqabench -h,
# every documented /v1/ and /debug/ endpoint must be registered).
check:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -race ./internal/obs/... ./internal/harness/... ./internal/syncache/... ./internal/server/...
	$(GO) test -race -run 'TestWindowed|TestTraceID|TestTraceIDEcho|TestDebugRequest' ./internal/obs ./internal/server
	$(GO) test -race -run 'TestInstance|TestEstimateSingleFlight|TestFlightGroup|TestSynopsisLRU' ./internal/scenario ./internal/server
	$(GO) test -race -run 'TestScheduler|TestQuota|TestFairness|TestSingleFlightFollower' ./internal/server
	$(GO) test -race ./internal/sampler/...
	$(GO) test -race -run 'TestBatched|TestReserve' ./internal/estimator/...
	$(GO) test -race -run 'TestKernel|TestGolden' ./internal/cqa/...
	$(GO) test -race -run 'TestSubstream|TestParallel' ./internal/mt ./internal/estimator ./internal/cqa ./internal/server
	$(GO) test -race ./internal/audit/...
	$(GO) build -o /tmp/cqabench-docscheck ./cmd/cqabench
	$(GO) run ./cmd/docscheck -bin /tmp/cqabench-docscheck \
		-endpoints-dir internal/server,internal/obs \
		README.md EXPERIMENTS.md docs/ARCHITECTURE.md docs/FORMATS.md \
		docs/OBSERVABILITY.md docs/SERVICE.md docs/REGISTRY.md

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

# Regenerates every paper figure family and the ablations as benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing sessions over all parsers.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/cq/
	$(GO) test -fuzz FuzzParseSchema -fuzztime 30s ./internal/relation/
	$(GO) test -fuzz FuzzReadDB -fuzztime 30s ./internal/relation/
	$(GO) test -fuzz FuzzParseDIMACS -fuzztime 30s ./internal/dnf/
	$(GO) test -fuzz FuzzCodecRoundTrip -fuzztime 30s ./internal/syncache/

# The paper's figures as text tables under results/.
figures:
	$(GO) run ./cmd/cqabench figure -id 1 -balance 0   -joins 1
	$(GO) run ./cmd/cqabench figure -id 1 -balance 0.5 -joins 1
	$(GO) run ./cmd/cqabench figure -id 2 -noise 0.4 -joins 1
	$(GO) run ./cmd/cqabench figure -id 3
	$(GO) run ./cmd/cqabench figure -id 4 -noise 0.4 -balance 0
	$(GO) run ./cmd/cqabench validate -benchmark tpch

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/certain
	$(GO) run ./examples/customschema
	$(GO) run ./examples/dnfcount
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/validation

clean:
	rm -rf grid-results scenario-export
