module cqabench

go 1.22
