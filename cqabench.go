// Package cqabench is a benchmark and library for approximate consistent
// query answering (CQA) over inconsistent databases under primary key
// constraints, reproducing:
//
//	Marco Calautti, Marco Console, Andreas Pieris.
//	"Benchmarking Approximate Consistent Query Answering." PODS 2021.
//
// Given a database D that violates its primary keys, a repair is a maximal
// consistent subset of D (one fact kept per conflicting block). The
// consistent answer of a conjunctive query Q grades each candidate tuple
// by its relative frequency: the fraction of repairs in which the tuple is
// an answer. Computing it exactly is #P-hard, so the library implements
// the paper's four data-efficient randomized approximation schemes —
// Natural, KL, KLM and Cover — together with everything needed to
// benchmark them: TPC-H / TPC-DS-style data generators, a query-aware
// noise generator, static and dynamic query generators, scenario families
// and a measurement harness.
//
// This root package is the stable public surface; it re-exports the core
// types and wires together the most common flows. The subsystems live in
// internal packages documented in DESIGN.md. The context-first entry
// points (ApproximateAnswersContext, BuildSynopsisContext,
// ApproximateContext, ApproximateParallelContext) are the primary API:
// they honor cancellation and deadlines within about one sampling chunk
// and report failures through the sentinel errors ErrBudget, ErrCanceled
// and ErrInvalidOptions. The context-free forms remain as
// context.Background() wrappers.
//
// A minimal session:
//
//	db := cqabench.NewDatabase(cqabench.MustSchema([]cqabench.RelDef{
//		{Name: "Employee", Attrs: []string{"id", "name", "dept"}, KeyLen: 1},
//	}, nil))
//	db.MustInsert("Employee", 1, "Bob", "HR")
//	db.MustInsert("Employee", 1, "Bob", "IT")
//	q := cqabench.MustParseQuery("Q(d) :- Employee(1, n, d)", db)
//	answers, _, err := cqabench.ApproximateAnswers(db, q, cqabench.KLM, cqabench.DefaultOptions())
package cqabench

import (
	"context"

	"cqabench/internal/cq"
	"cqabench/internal/cqa"
	"cqabench/internal/noise"
	"cqabench/internal/qgen"
	"cqabench/internal/relation"
	"cqabench/internal/repair"
	"cqabench/internal/synopsis"
	"cqabench/internal/tpcds"
	"cqabench/internal/tpch"
)

// Core relational types (see internal/relation).
type (
	// Schema is a set of relation symbols with primary keys and an
	// optional foreign-key graph.
	Schema = relation.Schema
	// RelDef defines one relation: name, attributes, and key prefix
	// length (key(R) = {1..KeyLen}; 0 means no key).
	RelDef = relation.RelDef
	// ForeignKey declares a joinable column correspondence used by the
	// query generators.
	ForeignKey = relation.ForeignKey
	// Database is a finite set of facts over a schema.
	Database = relation.Database
	// Tuple is an ordered list of constants.
	Tuple = relation.Tuple
	// Value is an interned constant.
	Value = relation.Value
)

// Query types (see internal/cq).
type (
	// Query is a conjunctive query with answer variables.
	Query = cq.Query
	// Atom is a relational atom of a query body.
	Atom = cq.Atom
	// Term is a variable or constant inside an atom.
	Term = cq.Term
)

// Approximation types (see internal/cqa).
type (
	// Scheme selects one of the paper's approximation schemes.
	Scheme = cqa.Scheme
	// Options carries ε, δ, the PRNG seed and an optional budget.
	Options = cqa.Options
	// TupleFreq pairs an answer tuple with its relative frequency.
	TupleFreq = cqa.TupleFreq
	// Stats reports the work an approximation run performed.
	Stats = cqa.Stats
)

// The four approximation schemes of the paper.
const (
	// Natural samples repairs uniformly from the natural space db(B).
	Natural = cqa.Natural
	// KL samples from the symbolic space with the Karp–Luby sampler.
	KL = cqa.KL
	// KLM samples from the symbolic space with the Karp–Luby–Madras
	// sampler (lower variance, costlier samples).
	KLM = cqa.KLM
	// Cover runs the self-adjusting coverage algorithm.
	Cover = cqa.Cover
)

// Schemes lists all four schemes in the paper's order.
var Schemes = cqa.Schemes

// NewSchema validates and builds a schema.
func NewSchema(rels []RelDef, fks []ForeignKey) (*Schema, error) {
	return relation.NewSchema(rels, fks)
}

// MustSchema is NewSchema but panics on error.
func MustSchema(rels []RelDef, fks []ForeignKey) *Schema {
	return relation.MustSchema(rels, fks)
}

// NewDatabase returns an empty database over the schema.
func NewDatabase(s *Schema) *Database { return relation.NewDatabase(s) }

// IsConsistent reports whether the database satisfies its primary keys.
func IsConsistent(db *Database) bool { return relation.IsConsistentDB(db) }

// ParseQuery parses a conjunctive query in the syntax
// "Q(x, y) :- R(x, 'a', y), S(y, 42)"; constants are interned into the
// database's dictionary and the query is validated against its schema.
func ParseQuery(text string, db *Database) (*Query, error) {
	q, err := cq.Parse(text, db.Dict)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(db.Schema); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseQuery is ParseQuery but panics on error.
func MustParseQuery(text string, db *Database) *Query {
	q, err := ParseQuery(text, db)
	if err != nil {
		panic(err)
	}
	return q
}

// DefaultOptions returns the paper's experimental setting: ε = 0.1,
// δ = 0.25, MT19937-64 with its reference seed.
func DefaultOptions() Options { return cqa.DefaultOptions() }

// ApproximateAnswersContext runs ApxCQA[scheme] end-to-end: the synopsis
// preprocessing step followed by one relative-frequency approximation per
// answer tuple with positive frequency. Both phases observe ctx — the
// build polls between homomorphisms, the estimators at their sampling
// chunk boundaries — and cancellation surfaces wrapping ErrCanceled.
// Invalid opts are rejected with ErrInvalidOptions before any work.
func ApproximateAnswersContext(ctx context.Context, db *Database, q *Query, scheme Scheme, opts Options) ([]TupleFreq, Stats, error) {
	return cqa.ApxAnswersContext(ctx, db, q, scheme, opts)
}

// ApproximateAnswers is ApproximateAnswersContext with
// context.Background().
func ApproximateAnswers(db *Database, q *Query, scheme Scheme, opts Options) ([]TupleFreq, Stats, error) {
	return cqa.ApxAnswers(db, q, scheme, opts)
}

// ExactAnswers computes the exact consistent answer by inclusion–
// exclusion over each tuple's synopsis; maxImages (0 = default 22) bounds
// the per-tuple image count it will attempt.
func ExactAnswers(db *Database, q *Query, maxImages int) ([]TupleFreq, error) {
	return cqa.ExactAnswers(db, q, maxImages)
}

// CertainAnswers returns the classic CQA certain answers: tuples true in
// every repair.
func CertainAnswers(db *Database, q *Query, maxImages int) ([]Tuple, error) {
	return cqa.CertainAnswers(db, q, maxImages)
}

// CountRepairs returns |rep(D, Σ)| as a decimal string (the count is
// exponential in the number of conflicts).
func CountRepairs(db *Database) string { return repair.Count(db).String() }

// NoiseConfig parameterizes query-aware noise injection.
type NoiseConfig = noise.Config

// ApplyNoise injects query-aware primary-key violations into a consistent
// database: the fraction cfg.P of the query-relevant facts get their
// blocks grown to uniform sizes in [cfg.MinBlock, cfg.MaxBlock], with
// join-pattern-preserving fresh facts.
func ApplyNoise(db *Database, q *Query, cfg NoiseConfig) (*Database, error) {
	noisy, _, err := noise.Apply(db, q, cfg)
	return noisy, err
}

// DefaultNoise mirrors the paper's setting: block sizes in [2, 5].
func DefaultNoise(p float64) NoiseConfig { return noise.DefaultConfig(p) }

// GenerateTPCH generates a consistent TPC-H-style database. ScaleFactor 1
// corresponds to the official 1 GB row counts.
func GenerateTPCH(scaleFactor float64, seed uint64) (*Database, error) {
	return tpch.Generate(tpch.Config{ScaleFactor: scaleFactor, Seed: seed})
}

// GenerateTPCDS generates a consistent TPC-DS-style snowflake database.
func GenerateTPCDS(scaleFactor float64, seed uint64) (*Database, error) {
	return tpcds.Generate(tpcds.Config{ScaleFactor: scaleFactor, Seed: seed})
}

// TPCHSchema returns the TPC-H schema with its primary keys and FK graph.
func TPCHSchema() *Schema { return tpch.Schema() }

// TPCDSSchema returns the TPC-DS subset schema.
func TPCDSSchema() *Schema { return tpcds.Schema() }

// GenerateQuery runs the static query generator: a self-join-free CQ over
// db's schema with the given number of joins and constant occurrences and
// the given projection fraction, guaranteed non-empty over db.
func GenerateQuery(db *Database, joins, constants int, projection float64, seed uint64) (*Query, error) {
	pool := qgen.BuildConstPool(db, 24)
	return qgen.SQGNonEmpty(db, pool, qgen.SQGConfig{
		Joins:      joins,
		Constants:  constants,
		Projection: projection,
		Seed:       seed,
	}, 100)
}

// BalanceOf computes the paper's balance of q w.r.t. db: the inverse of
// the average number of homomorphic images per answer tuple, in [0, 1].
func BalanceOf(db *Database, q *Query) (float64, error) {
	set, err := synopsis.Build(db, q)
	if err != nil {
		return 0, err
	}
	return set.Balance(), nil
}

// TuneBalance runs the dynamic query generator: it returns projections of
// q (same body, different answer variables) whose balance w.r.t. db is as
// close as possible to each target.
func TuneBalance(db *Database, q *Query, targets []float64, iterations int, seed uint64) ([]*Query, error) {
	res, err := qgen.DQG(db, q, targets, qgen.DQGConfig{Iterations: iterations, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([]*Query, len(res))
	for i, r := range res {
		out[i] = r.Query
	}
	return out, nil
}
