package relation

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDB serializes a database as a line-oriented text format:
//
//	relname|i:42|s:hello|...
//
// Fields are typed (i: integer, s: string) so values round-trip exactly;
// strings escape '|', '\' and newlines. The schema itself is not
// serialized: the reader must be given the same schema.
func WriteDB(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	for ri, tb := range db.Tables {
		name := db.Schema.Rels[ri].Name
		for _, t := range tb.Tuples {
			bw.WriteString(name)
			for _, v := range t {
				bw.WriteByte('|')
				if v >= 0 {
					bw.WriteString("i:")
					bw.WriteString(strconv.FormatInt(int64(v), 10))
				} else {
					bw.WriteString("s:")
					bw.WriteString(escapeField(db.Dict.Render(v)))
				}
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadDB parses the format written by WriteDB into a fresh database over
// the given schema.
func ReadDB(r io.Reader, schema *Schema) (*Database, error) {
	db := NewDatabase(schema)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := splitFields(line)
		name := fields[0]
		ri := schema.RelIndex(name)
		if ri < 0 {
			return nil, fmt.Errorf("relation: line %d: unknown relation %q", lineNo, name)
		}
		if len(fields)-1 != schema.Rels[ri].Arity() {
			return nil, fmt.Errorf("relation: line %d: %s expects %d fields, got %d",
				lineNo, name, schema.Rels[ri].Arity(), len(fields)-1)
		}
		t := make(Tuple, len(fields)-1)
		for i, f := range fields[1:] {
			switch {
			case strings.HasPrefix(f, "i:"):
				n, err := strconv.ParseInt(f[2:], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: line %d field %d: %w", lineNo, i+1, err)
				}
				t[i] = db.Dict.Int(n)
			case strings.HasPrefix(f, "s:"):
				t[i] = db.Dict.String(unescapeField(f[2:]))
			default:
				return nil, fmt.Errorf("relation: line %d field %d: missing type prefix in %q", lineNo, i+1, f)
			}
		}
		if _, err := db.InsertTuple(name, t); err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

func escapeField(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "|", `\p`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescapeField(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'p':
				b.WriteByte('|')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// splitFields splits on unescaped '|'.
func splitFields(line string) []string {
	var fields []string
	start := 0
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			i++ // skip escaped char
		case '|':
			fields = append(fields, line[start:i])
			start = i + 1
		}
	}
	return append(fields, line[start:])
}
