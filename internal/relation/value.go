// Package relation implements the relational substrate of the paper:
// schemas, primary keys of the form key(R) = {1,...,m}, facts, databases,
// key values, blocks (block_Σ(α, D)), and consistency (D |= Σ).
//
// The package is deliberately self-contained and in-memory; the paper's
// PostgreSQL instance is replaced by this engine plus the synopsis builder
// in internal/synopsis (see DESIGN.md §1 for why the substitution is
// faithful).
package relation

import (
	"fmt"
	"strconv"
)

// Value is a database constant. Non-negative integers are represented
// directly; strings (and out-of-range integers) are interned by a Dict and
// represented as negative values. Two Values drawn from the same Dict are
// equal iff they denote the same constant.
type Value int64

// maxDirectInt is the largest integer stored inline in a Value. Larger
// integers fall back to string interning, so every int64 round-trips.
const maxDirectInt = int64(1)<<61 - 1

// Dict interns string constants so Values stay comparable machine words.
// The zero Dict is not ready to use; call NewDict.
type Dict struct {
	byStr map[string]Value
	strs  []string
}

// NewDict returns an empty interning dictionary.
func NewDict() *Dict {
	return &Dict{byStr: make(map[string]Value)}
}

// String interns s and returns its Value.
func (d *Dict) String(s string) Value {
	if v, ok := d.byStr[s]; ok {
		return v
	}
	v := Value(-1 - int64(len(d.strs)))
	d.strs = append(d.strs, s)
	d.byStr[s] = v
	return v
}

// Int returns the Value of integer i.
func (d *Dict) Int(i int64) Value {
	if i >= 0 && i <= maxDirectInt {
		return Value(i)
	}
	return d.String(strconv.FormatInt(i, 10))
}

// Lookup returns the Value of an already-interned string and whether it
// exists, without interning it.
func (d *Dict) Lookup(s string) (Value, bool) {
	v, ok := d.byStr[s]
	return v, ok
}

// Of converts a Go value (int, int64, string, or Value) into a Value.
func (d *Dict) Of(x any) (Value, error) {
	switch t := x.(type) {
	case Value:
		return t, nil
	case int:
		return d.Int(int64(t)), nil
	case int32:
		return d.Int(int64(t)), nil
	case int64:
		return d.Int(t), nil
	case string:
		return d.String(t), nil
	default:
		return 0, fmt.Errorf("relation: unsupported constant type %T", x)
	}
}

// MustOf is Of but panics on unsupported types; intended for literals in
// tests and examples.
func (d *Dict) MustOf(x any) Value {
	v, err := d.Of(x)
	if err != nil {
		panic(err)
	}
	return v
}

// Render formats a Value for display.
func (d *Dict) Render(v Value) string {
	if v >= 0 {
		return strconv.FormatInt(int64(v), 10)
	}
	idx := int(-1 - int64(v))
	if d == nil || idx >= len(d.strs) {
		return fmt.Sprintf("?str%d", idx)
	}
	return d.strs[idx]
}

// Size reports the number of interned strings.
func (d *Dict) Size() int { return len(d.strs) }

// Tuple is an ordered list of constants.
type Tuple []Value

// Equal reports whether two tuples agree position-wise.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Project returns the projection of t over positions (0-based).
func (t Tuple) Project(positions []int) Tuple {
	p := make(Tuple, len(positions))
	for i, pos := range positions {
		p[i] = t[pos]
	}
	return p
}

// Less orders tuples lexicographically; used for deterministic output.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return len(t) < len(u)
}
