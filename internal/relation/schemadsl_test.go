package relation

import (
	"strings"
	"testing"
)

const employeeDSL = `
# staff management
relation Employee(id*, name, dept)
relation Dept(name*, budget)
fk Employee(dept) -> Dept(name)
`

func TestParseSchemaDSL(t *testing.T) {
	s, err := ParseSchemaString(employeeDSL)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rels) != 2 {
		t.Fatalf("relations = %d", len(s.Rels))
	}
	emp := s.Rel("Employee")
	if emp == nil || emp.KeyLen != 1 || emp.Arity() != 3 {
		t.Fatalf("Employee = %+v", emp)
	}
	if len(s.FKs) != 1 || s.FKs[0].FromCols[0] != 2 || s.FKs[0].ToCols[0] != 0 {
		t.Fatalf("FKs = %+v", s.FKs)
	}
}

func TestParseSchemaCompositeKeyAndFK(t *testing.T) {
	s, err := ParseSchemaString(`
relation Sale(store*, ticket*, item, qty)
relation Item(sku*, name)
fk Sale(item) -> Item(sku)
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rel("Sale").KeyLen != 2 {
		t.Fatalf("Sale key = %d", s.Rel("Sale").KeyLen)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := map[string]string{
		"no relations":   "# nothing\n",
		"bad line":       "table R(a)\n",
		"non-prefix key": "relation R(a, b*)\n",
		"empty attr":     "relation R(a, )\n",
		"no attrs":       "relation R()\n",
		"fk before rel":  "fk A(x) -> B(y)\nrelation A(x*)\n",
		"fk bad attr":    "relation A(x*)\nrelation B(y*)\nfk A(z) -> B(y)\n",
		"fk malformed":   "relation A(x*)\nfk A(x) B(y)\n",
		"call malformed": "relation R a, b\n",
		"dup relation":   "relation R(a*)\nrelation R(a*)\n",
	}
	for name, dsl := range cases {
		if _, err := ParseSchemaString(dsl); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSchemaDSLRoundTrip(t *testing.T) {
	s, err := ParseSchemaString(employeeDSL)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteSchema(&b, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSchemaString(b.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", b.String(), err)
	}
	var b2 strings.Builder
	if err := WriteSchema(&b2, s2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", b.String(), b2.String())
	}
}

func TestParsedSchemaUsable(t *testing.T) {
	s, err := ParseSchemaString(employeeDSL)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	db.MustInsert("Employee", 1, "Bob", "HR")
	db.MustInsert("Employee", 1, "Bob", "IT")
	db.MustInsert("Dept", "HR", 1000)
	bi := BuildBlocks(db)
	if bi.IsConsistent() {
		t.Fatal("conflict not detected on DSL schema")
	}
}
