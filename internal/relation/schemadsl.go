package relation

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseSchema reads a schema from the package's small text DSL, so the
// benchmark tools work on arbitrary user schemas:
//
//	# comment
//	relation Employee(id*, name, dept)
//	relation Dept(name*, budget)
//	fk Employee(dept) -> Dept(name)
//
// A '*' suffix marks a primary-key attribute; key attributes must form a
// prefix of the attribute list (the paper's key(R) = {1..m} convention).
// 'fk' lines declare joinable column correspondences for the query
// generators; multi-column keys list several columns: fk A(x, y) -> B(u, v).
func ParseSchema(r io.Reader) (*Schema, error) {
	var rels []RelDef
	var fks []ForeignKey
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "relation "):
			def, err := parseRelationLine(strings.TrimPrefix(line, "relation "))
			if err != nil {
				return nil, fmt.Errorf("relation: schema line %d: %w", lineNo, err)
			}
			rels = append(rels, def)
		case strings.HasPrefix(line, "fk "):
			fk, err := parseFKLine(strings.TrimPrefix(line, "fk "), rels)
			if err != nil {
				return nil, fmt.Errorf("relation: schema line %d: %w", lineNo, err)
			}
			fks = append(fks, fk)
		default:
			return nil, fmt.Errorf("relation: schema line %d: expected 'relation' or 'fk', got %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("relation: schema declares no relations")
	}
	return NewSchema(rels, fks)
}

// ParseSchemaString is ParseSchema over a string.
func ParseSchemaString(s string) (*Schema, error) {
	return ParseSchema(strings.NewReader(s))
}

func parseRelationLine(s string) (RelDef, error) {
	name, args, err := splitCall(s)
	if err != nil {
		return RelDef{}, err
	}
	def := RelDef{Name: name}
	keyEnded := false
	for i, a := range args {
		a = strings.TrimSpace(a)
		if starred := strings.HasSuffix(a, "*"); starred {
			if keyEnded {
				return RelDef{}, fmt.Errorf("key attribute %q after non-key attributes (keys must be a prefix)", a)
			}
			def.KeyLen = i + 1
			a = strings.TrimSuffix(a, "*")
		} else {
			keyEnded = true
		}
		if a == "" {
			return RelDef{}, fmt.Errorf("empty attribute name")
		}
		def.Attrs = append(def.Attrs, a)
	}
	return def, nil
}

func parseFKLine(s string, rels []RelDef) (ForeignKey, error) {
	parts := strings.SplitN(s, "->", 2)
	if len(parts) != 2 {
		return ForeignKey{}, fmt.Errorf("fk needs the form A(cols) -> B(cols)")
	}
	fromRel, fromAttrs, err := splitCall(strings.TrimSpace(parts[0]))
	if err != nil {
		return ForeignKey{}, err
	}
	toRel, toAttrs, err := splitCall(strings.TrimSpace(parts[1]))
	if err != nil {
		return ForeignKey{}, err
	}
	resolve := func(rel string, attrs []string) ([]int, error) {
		for _, def := range rels {
			if def.Name != rel {
				continue
			}
			cols := make([]int, len(attrs))
			for i, a := range attrs {
				idx := def.AttrIndex(strings.TrimSpace(a))
				if idx < 0 {
					return nil, fmt.Errorf("relation %s has no attribute %q", rel, strings.TrimSpace(a))
				}
				cols[i] = idx
			}
			return cols, nil
		}
		return nil, fmt.Errorf("fk references undeclared relation %q (declare relations before fks)", rel)
	}
	fromCols, err := resolve(fromRel, fromAttrs)
	if err != nil {
		return ForeignKey{}, err
	}
	toCols, err := resolve(toRel, toAttrs)
	if err != nil {
		return ForeignKey{}, err
	}
	return ForeignKey{FromRel: fromRel, FromCols: fromCols, ToRel: toRel, ToCols: toCols}, nil
}

// splitCall parses "Name(a, b, c)".
func splitCall(s string) (string, []string, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("expected Name(attr, ...), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return "", nil, fmt.Errorf("%s declares no attributes", name)
	}
	return name, strings.Split(inner, ","), nil
}

// WriteSchema renders a schema back into the DSL (round-trips with
// ParseSchema).
func WriteSchema(w io.Writer, s *Schema) error {
	for _, def := range s.Rels {
		attrs := make([]string, len(def.Attrs))
		for i, a := range def.Attrs {
			if i < def.KeyLen {
				attrs[i] = a + "*"
			} else {
				attrs[i] = a
			}
		}
		if _, err := fmt.Fprintf(w, "relation %s(%s)\n", def.Name, strings.Join(attrs, ", ")); err != nil {
			return err
		}
	}
	for _, fk := range s.FKs {
		from := make([]string, len(fk.FromCols))
		for i, c := range fk.FromCols {
			from[i] = s.Rel(fk.FromRel).Attrs[c]
		}
		to := make([]string, len(fk.ToCols))
		for i, c := range fk.ToCols {
			to[i] = s.Rel(fk.ToRel).Attrs[c]
		}
		if _, err := fmt.Fprintf(w, "fk %s(%s) -> %s(%s)\n",
			fk.FromRel, strings.Join(from, ", "), fk.ToRel, strings.Join(to, ", ")); err != nil {
			return err
		}
	}
	return nil
}
