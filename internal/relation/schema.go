package relation

import (
	"fmt"
	"strings"
)

// RelDef describes one relation symbol: its name, attribute names, and the
// length m of its primary key key(R) = {1,...,m}. KeyLen == 0 means the
// relation has no declared key; per the paper, the key value of such a
// fact is then the whole tuple, so the relation can never be inconsistent.
type RelDef struct {
	Name   string
	Attrs  []string
	KeyLen int
}

// Arity returns the number of attributes.
func (r *RelDef) Arity() int { return len(r.Attrs) }

// AttrIndex returns the 0-based position of the named attribute, or -1.
func (r *RelDef) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// ForeignKey records that FromRel's columns FromCols reference ToRel's
// columns ToCols. The static query generator (SQG) derives its joinable
// attribute pairs from these, exactly as in Appendix D.
type ForeignKey struct {
	FromRel  string
	FromCols []int
	ToRel    string
	ToCols   []int
}

// Schema is a finite set of relation symbols with primary keys and an
// optional foreign-key graph used by the query generators.
type Schema struct {
	Rels   []RelDef
	FKs    []ForeignKey
	byName map[string]int
}

// NewSchema builds a schema from relation definitions. It validates that
// names are unique, attributes are unique per relation, and key lengths
// are within arity.
func NewSchema(rels []RelDef, fks []ForeignKey) (*Schema, error) {
	s := &Schema{Rels: rels, FKs: fks, byName: make(map[string]int, len(rels))}
	for i, r := range rels {
		if r.Name == "" {
			return nil, fmt.Errorf("relation: relation %d has empty name", i)
		}
		if _, dup := s.byName[r.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate relation %q", r.Name)
		}
		if r.KeyLen < 0 || r.KeyLen > len(r.Attrs) {
			return nil, fmt.Errorf("relation: %s: key length %d out of range for arity %d", r.Name, r.KeyLen, len(r.Attrs))
		}
		if len(r.Attrs) == 0 {
			return nil, fmt.Errorf("relation: %s has arity 0", r.Name)
		}
		seen := make(map[string]bool, len(r.Attrs))
		for _, a := range r.Attrs {
			if seen[a] {
				return nil, fmt.Errorf("relation: %s: duplicate attribute %q", r.Name, a)
			}
			seen[a] = true
		}
		s.byName[r.Name] = i
	}
	for _, fk := range fks {
		f, ok := s.byName[fk.FromRel]
		if !ok {
			return nil, fmt.Errorf("relation: FK from unknown relation %q", fk.FromRel)
		}
		t, ok := s.byName[fk.ToRel]
		if !ok {
			return nil, fmt.Errorf("relation: FK to unknown relation %q", fk.ToRel)
		}
		if len(fk.FromCols) != len(fk.ToCols) || len(fk.FromCols) == 0 {
			return nil, fmt.Errorf("relation: FK %s->%s has mismatched columns", fk.FromRel, fk.ToRel)
		}
		for _, c := range fk.FromCols {
			if c < 0 || c >= s.Rels[f].Arity() {
				return nil, fmt.Errorf("relation: FK %s->%s column %d out of range", fk.FromRel, fk.ToRel, c)
			}
		}
		for _, c := range fk.ToCols {
			if c < 0 || c >= s.Rels[t].Arity() {
				return nil, fmt.Errorf("relation: FK %s->%s target column %d out of range", fk.FromRel, fk.ToRel, c)
			}
		}
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; for statically-known schemas.
func MustSchema(rels []RelDef, fks []ForeignKey) *Schema {
	s, err := NewSchema(rels, fks)
	if err != nil {
		panic(err)
	}
	return s
}

// RelIndex returns the index of the named relation, or -1.
func (s *Schema) RelIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Rel returns the definition of the named relation, or nil.
func (s *Schema) Rel(name string) *RelDef {
	if i, ok := s.byName[name]; ok {
		return &s.Rels[i]
	}
	return nil
}

// Joinable returns all attribute pairs (R[i], P[j]) that the FK graph
// declares joinable, in both directions. SQG picks its join conditions
// from this set.
type JoinablePair struct {
	RelA string
	ColA int
	RelB string
	ColB int
}

// JoinablePairs expands the FK graph into individual attribute pairs.
func (s *Schema) JoinablePairs() []JoinablePair {
	var out []JoinablePair
	for _, fk := range s.FKs {
		for k := range fk.FromCols {
			out = append(out, JoinablePair{fk.FromRel, fk.FromCols[k], fk.ToRel, fk.ToCols[k]})
		}
	}
	return out
}

// String renders the schema in a compact DDL-like form.
func (s *Schema) String() string {
	var b strings.Builder
	for _, r := range s.Rels {
		b.WriteString(r.Name)
		b.WriteByte('(')
		for i, a := range r.Attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			if i < r.KeyLen {
				b.WriteByte('*')
			}
			b.WriteString(a)
		}
		b.WriteString(")\n")
	}
	return b.String()
}
