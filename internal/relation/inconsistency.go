package relation

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// InconsistencyReport summarizes how inconsistent a database is — the
// "amount of inconsistency" axis of the paper's scenarios — with the
// standard primary-key violation measures.
type InconsistencyReport struct {
	// Facts is the total fact count; ConflictingFacts counts facts in
	// non-singleton blocks.
	Facts, ConflictingFacts int
	// Blocks and ConflictBlocks count all blocks and non-singleton blocks.
	Blocks, ConflictBlocks int
	// MaxBlockSize is the largest block cardinality.
	MaxBlockSize int
	// BlockSizeHistogram maps non-singleton block sizes to counts.
	BlockSizeHistogram map[int]int
	// Log2Repairs is log2 |rep(D, Σ)| (the repair count itself is
	// astronomically large; its logarithm is the usual summary).
	Log2Repairs float64
	// PerRelation breaks conflicts down by relation, in schema order.
	PerRelation []RelationInconsistency
}

// RelationInconsistency is the per-relation slice of the report.
type RelationInconsistency struct {
	Relation        string
	Facts           int
	ConflictBlocks  int
	MaxBlockSize    int
	FactsInConflict int
}

// BlockNoise returns the fraction of blocks that are conflicting.
func (r *InconsistencyReport) BlockNoise() float64 {
	if r.Blocks == 0 {
		return 0
	}
	return float64(r.ConflictBlocks) / float64(r.Blocks)
}

// FactNoise returns the fraction of facts involved in some conflict.
func (r *InconsistencyReport) FactNoise() float64 {
	if r.Facts == 0 {
		return 0
	}
	return float64(r.ConflictingFacts) / float64(r.Facts)
}

// MeasureInconsistency computes the report for a database.
func MeasureInconsistency(db *Database) *InconsistencyReport {
	bi := BuildBlocks(db)
	rep := &InconsistencyReport{
		Facts:              db.NumFacts(),
		Blocks:             len(bi.Blocks),
		BlockSizeHistogram: make(map[int]int),
		PerRelation:        make([]RelationInconsistency, len(db.Schema.Rels)),
	}
	for i := range rep.PerRelation {
		rep.PerRelation[i].Relation = db.Schema.Rels[i].Name
	}
	for i := range bi.Blocks {
		b := &bi.Blocks[i]
		pr := &rep.PerRelation[b.Rel]
		pr.Facts += b.Size()
		if b.Size() > pr.MaxBlockSize {
			pr.MaxBlockSize = b.Size()
		}
		if b.Size() > 1 {
			rep.ConflictBlocks++
			rep.ConflictingFacts += b.Size()
			rep.BlockSizeHistogram[b.Size()]++
			pr.ConflictBlocks++
			pr.FactsInConflict += b.Size()
		}
		if b.Size() > rep.MaxBlockSize {
			rep.MaxBlockSize = b.Size()
		}
		rep.Log2Repairs += math.Log2(float64(b.Size()))
	}
	return rep
}

// String renders the report.
func (r *InconsistencyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "facts: %d (%.1f%% in conflict)\n", r.Facts, 100*r.FactNoise())
	fmt.Fprintf(&b, "blocks: %d (%d conflicting, %.1f%%), max size %d\n",
		r.Blocks, r.ConflictBlocks, 100*r.BlockNoise(), r.MaxBlockSize)
	fmt.Fprintf(&b, "log2(repairs): %.1f\n", r.Log2Repairs)
	if len(r.BlockSizeHistogram) > 0 {
		var sizes []int
		for s := range r.BlockSizeHistogram {
			sizes = append(sizes, s)
		}
		sort.Ints(sizes)
		b.WriteString("conflict block sizes:")
		for _, s := range sizes {
			fmt.Fprintf(&b, " %d:%d", s, r.BlockSizeHistogram[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
