package relation

import (
	"strings"
	"testing"
)

// FuzzParseSchema: the schema DSL parser must never panic, and accepted
// schemas must round-trip through WriteSchema.
func FuzzParseSchema(f *testing.F) {
	for _, seed := range []string{
		"relation R(a*, b)\n",
		"relation R(a*, b)\nrelation S(x*)\nfk R(b) -> S(x)\n",
		"# comment\nrelation R(a)\n",
		"relation R()\n",
		"fk A(x) -> B(y)\n",
		"relation R(a, b*)\n",
		"relation R(a*,\x00)\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSchemaString(input)
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteSchema(&b, s); err != nil {
			t.Fatalf("accepted schema failed to render: %v", err)
		}
		s2, err := ParseSchemaString(b.String())
		if err != nil {
			t.Fatalf("rendering %q of accepted schema rejected: %v", b.String(), err)
		}
		if len(s2.Rels) != len(s.Rels) || len(s2.FKs) != len(s.FKs) {
			t.Fatal("round trip changed the schema")
		}
	})
}

// FuzzReadDB: the database reader must never panic and must only accept
// rows consistent with the schema.
func FuzzReadDB(f *testing.F) {
	for _, seed := range []string{
		"R|i:1|s:hello\n",
		"R|i:1|s:a\\pb\n",
		"R|i:zzz|s:x\n",
		"X|i:1|i:2\n",
		"R|1|2\n",
		"R|i:1\n",
		"\nR|i:1|s:\n",
	} {
		f.Add(seed)
	}
	schema := MustSchema([]RelDef{
		{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1},
	}, nil)
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ReadDB(strings.NewReader(input), schema)
		if err != nil {
			return
		}
		// Accepted databases must re-serialize and re-parse losslessly.
		var b strings.Builder
		if err := WriteDB(&b, db); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadDB(strings.NewReader(b.String()), schema)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumFacts() != db.NumFacts() {
			t.Fatal("round trip changed fact count")
		}
	})
}
