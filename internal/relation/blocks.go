package relation

import "math/big"

// Block is a maximal set of facts sharing a key value: the paper's
// block_Σ(α, D). Facts are listed in row order; Bid and the member order
// correspond to the dense_rank / row_number ids of the paper's SQL
// encoding (Appendix C).
type Block struct {
	Rel   int32
	Bid   int32
	Facts []FactRef
}

// Size returns the block cardinality (the paper's kcnt).
func (b *Block) Size() int { return len(b.Facts) }

// BlockIndex is the block decomposition block_Σ(D) of a database: every
// fact belongs to exactly one block.
type BlockIndex struct {
	Blocks []Block
	// ofFact maps (rel,row) to (block index in Blocks, member index in
	// block). Parallel slices per relation.
	blockOf  [][]int32
	memberOf [][]int32
}

// BuildBlocks computes the block decomposition of db, grouping facts by
// key_Σ(α). Within a relation, blocks are numbered by first occurrence
// (deterministic given insertion order), and members keep row order.
func BuildBlocks(db *Database) *BlockIndex {
	bi := &BlockIndex{
		blockOf:  make([][]int32, len(db.Tables)),
		memberOf: make([][]int32, len(db.Tables)),
	}
	for ri, tb := range db.Tables {
		n := len(tb.Tuples)
		bi.blockOf[ri] = make([]int32, n)
		bi.memberOf[ri] = make([]int32, n)
		keyToBlock := make(map[string]int, n)
		relBid := int32(0)
		for row := 0; row < n; row++ {
			f := FactRef{int32(ri), int32(row)}
			kv := db.KeyValue(f)
			idx, ok := keyToBlock[kv]
			if !ok {
				idx = len(bi.Blocks)
				keyToBlock[kv] = idx
				bi.Blocks = append(bi.Blocks, Block{Rel: int32(ri), Bid: relBid})
				relBid++
			}
			b := &bi.Blocks[idx]
			bi.blockOf[ri][row] = int32(idx)
			bi.memberOf[ri][row] = int32(len(b.Facts))
			b.Facts = append(b.Facts, f)
		}
	}
	return bi
}

// BlockOf returns the block containing fact f.
func (bi *BlockIndex) BlockOf(f FactRef) *Block {
	return &bi.Blocks[bi.blockOf[f.Rel][f.Row]]
}

// BlockID returns the global index (into Blocks) of the block containing f.
func (bi *BlockIndex) BlockID(f FactRef) int {
	return int(bi.blockOf[f.Rel][f.Row])
}

// MemberIndex returns the position of f within its block (the paper's tid,
// 0-based).
func (bi *BlockIndex) MemberIndex(f FactRef) int {
	return int(bi.memberOf[f.Rel][f.Row])
}

// IsConsistent reports D |= Σ: every block is a singleton.
func (bi *BlockIndex) IsConsistent() bool {
	for i := range bi.Blocks {
		if len(bi.Blocks[i].Facts) > 1 {
			return false
		}
	}
	return true
}

// NonSingletonBlocks returns the blocks witnessing inconsistency.
func (bi *BlockIndex) NonSingletonBlocks() []*Block {
	var out []*Block
	for i := range bi.Blocks {
		if len(bi.Blocks[i].Facts) > 1 {
			out = append(out, &bi.Blocks[i])
		}
	}
	return out
}

// NumRepairs returns |rep(D, Σ)| exactly: the product of block sizes.
func (bi *BlockIndex) NumRepairs() *big.Int {
	n := big.NewInt(1)
	for i := range bi.Blocks {
		n.Mul(n, big.NewInt(int64(len(bi.Blocks[i].Facts))))
	}
	return n
}

// IsConsistentDB is a convenience wrapper: does db satisfy its schema's
// primary keys?
func IsConsistentDB(db *Database) bool {
	return BuildBlocks(db).IsConsistent()
}

// NoiseFraction measures the amount of inconsistency in db: the fraction
// of blocks that are non-singletons. The harness reports it alongside the
// noise generator's requested percentage.
func (bi *BlockIndex) NoiseFraction() float64 {
	if len(bi.Blocks) == 0 {
		return 0
	}
	bad := 0
	for i := range bi.Blocks {
		if len(bi.Blocks[i].Facts) > 1 {
			bad++
		}
	}
	return float64(bad) / float64(len(bi.Blocks))
}

// SatisfiesKeys reports whether the given set of facts (as a sub-database
// of db) is consistent, i.e. no two facts in the set fall in the same
// block. The synopsis builder uses it to test h(Q) |= Σ.
func (bi *BlockIndex) SatisfiesKeys(facts []FactRef) bool {
	if len(facts) <= 1 {
		return true
	}
	seen := make(map[int32]FactRef, len(facts))
	for _, f := range facts {
		b := bi.blockOf[f.Rel][f.Row]
		if prev, ok := seen[b]; ok {
			if prev != f {
				return false
			}
			continue
		}
		seen[b] = f
	}
	return true
}
