package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := MustSchema([]RelDef{
		{Name: "Employee", Attrs: []string{"id", "name", "dept"}, KeyLen: 1},
	}, nil)
	db := NewDatabase(s)
	db.MustInsert("Employee", 1, "Bob", "HR")
	db.MustInsert("Employee", 2, "Al|ice", "I\\T")
	db.MustInsert("Employee", 3, "line\nbreak", "X")

	var buf strings.Builder
	if err := WriteDB(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDB(strings.NewReader(buf.String()), s)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFacts() != db.NumFacts() {
		t.Fatalf("facts = %d, want %d", got.NumFacts(), db.NumFacts())
	}
	if got.String() != db.String() {
		t.Fatalf("round trip changed database:\n%s\nvs\n%s", got.String(), db.String())
	}
}

func TestReadDBErrors(t *testing.T) {
	s := MustSchema([]RelDef{
		{Name: "R", Attrs: []string{"a", "b"}, KeyLen: 1},
	}, nil)
	for name, input := range map[string]string{
		"unknown rel": "X|i:1|i:2\n",
		"bad arity":   "R|i:1\n",
		"bad int":     "R|i:zzz|i:2\n",
		"no prefix":   "R|1|2\n",
	} {
		if _, err := ReadDB(strings.NewReader(input), s); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadDBSkipsBlankLines(t *testing.T) {
	s := MustSchema([]RelDef{
		{Name: "R", Attrs: []string{"a"}, KeyLen: 1},
	}, nil)
	db, err := ReadDB(strings.NewReader("\nR|i:1\n\nR|i:2\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumFacts() != 2 {
		t.Fatalf("facts = %d", db.NumFacts())
	}
}

// Property: arbitrary string values survive a write/read round trip.
func TestIOStringProperty(t *testing.T) {
	s := MustSchema([]RelDef{
		{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1},
	}, nil)
	f := func(vals []string) bool {
		db := NewDatabase(s)
		for i, v := range vals {
			if len(v) > 40 {
				v = v[:40]
			}
			db.MustInsert("R", i, v)
		}
		var buf strings.Builder
		if err := WriteDB(&buf, db); err != nil {
			return false
		}
		got, err := ReadDB(strings.NewReader(buf.String()), s)
		if err != nil {
			return false
		}
		return got.String() == db.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
