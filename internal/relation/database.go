package relation

import (
	"fmt"
	"sort"
	"strings"
)

// FactRef identifies a fact within a Database by relation index and row
// index. It is the machine-word fact identity every other package (engine,
// synopsis, repair) uses.
type FactRef struct {
	Rel int32
	Row int32
}

// Less orders FactRefs relation-major.
func (f FactRef) Less(g FactRef) bool {
	if f.Rel != g.Rel {
		return f.Rel < g.Rel
	}
	return f.Row < g.Row
}

// Table holds the facts of one relation.
type Table struct {
	Def    *RelDef
	Tuples []Tuple
}

// Database is a finite set of facts over a schema. Tables are parallel to
// Schema.Rels. Duplicate tuples within a relation are rejected on insert
// (a database is a set of facts).
type Database struct {
	Schema *Schema
	Dict   *Dict
	Tables []*Table

	dedup []map[string]int32 // per relation: encoded tuple -> row
}

// NewDatabase returns an empty database over the schema with a fresh Dict.
func NewDatabase(s *Schema) *Database {
	db := &Database{
		Schema: s,
		Dict:   NewDict(),
		Tables: make([]*Table, len(s.Rels)),
		dedup:  make([]map[string]int32, len(s.Rels)),
	}
	for i := range s.Rels {
		db.Tables[i] = &Table{Def: &s.Rels[i]}
		db.dedup[i] = make(map[string]int32)
	}
	return db
}

// encodeTuple produces a hashable byte encoding of vals[0:n].
func encodeTuple(vals []Value, n int) string {
	var b strings.Builder
	b.Grow(n * 9)
	for i := 0; i < n; i++ {
		v := uint64(vals[i])
		var buf [8]byte
		for k := 0; k < 8; k++ {
			buf[k] = byte(v >> (8 * k))
		}
		b.Write(buf[:])
	}
	return b.String()
}

// InsertTuple adds a fact with pre-encoded values. It reports whether the
// fact was new (false means it was already present) and errors on arity
// mismatch or unknown relation.
func (db *Database) InsertTuple(rel string, t Tuple) (bool, error) {
	ri := db.Schema.RelIndex(rel)
	if ri < 0 {
		return false, fmt.Errorf("relation: unknown relation %q", rel)
	}
	def := &db.Schema.Rels[ri]
	if len(t) != def.Arity() {
		return false, fmt.Errorf("relation: %s expects arity %d, got %d", rel, def.Arity(), len(t))
	}
	key := encodeTuple(t, len(t))
	if _, dup := db.dedup[ri][key]; dup {
		return false, nil
	}
	db.dedup[ri][key] = int32(len(db.Tables[ri].Tuples))
	db.Tables[ri].Tuples = append(db.Tables[ri].Tuples, t)
	return true, nil
}

// Insert adds a fact from Go values (ints, strings, Values).
func (db *Database) Insert(rel string, vals ...any) error {
	t := make(Tuple, len(vals))
	for i, x := range vals {
		v, err := db.Dict.Of(x)
		if err != nil {
			return fmt.Errorf("relation: %s arg %d: %w", rel, i, err)
		}
		t[i] = v
	}
	_, err := db.InsertTuple(rel, t)
	return err
}

// MustInsert is Insert but panics on error; for tests and examples.
func (db *Database) MustInsert(rel string, vals ...any) {
	if err := db.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// Contains reports whether the database holds the given fact.
func (db *Database) Contains(rel string, t Tuple) bool {
	ri := db.Schema.RelIndex(rel)
	if ri < 0 || len(t) != db.Schema.Rels[ri].Arity() {
		return false
	}
	_, ok := db.dedup[ri][encodeTuple(t, len(t))]
	return ok
}

// Fact returns the tuple of a FactRef.
func (db *Database) Fact(f FactRef) Tuple {
	return db.Tables[f.Rel].Tuples[f.Row]
}

// NumFacts returns the total number of facts.
func (db *Database) NumFacts() int {
	n := 0
	for _, t := range db.Tables {
		n += len(t.Tuples)
	}
	return n
}

// RenderFact formats a fact for display.
func (db *Database) RenderFact(f FactRef) string {
	def := db.Tables[f.Rel].Def
	t := db.Fact(f)
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = db.Dict.Render(v)
	}
	return def.Name + "(" + strings.Join(parts, ", ") + ")"
}

// KeyValue returns the paper's key_Σ(α): the relation name plus the key
// projection of the fact (whole tuple when the relation has no key).
func (db *Database) KeyValue(f FactRef) string {
	def := db.Tables[f.Rel].Def
	t := db.Fact(f)
	k := def.KeyLen
	if k == 0 {
		k = len(t)
	}
	return def.Name + "\x00" + encodeTuple(t, k)
}

// AllFacts returns every FactRef in deterministic order.
func (db *Database) AllFacts() []FactRef {
	out := make([]FactRef, 0, db.NumFacts())
	for ri, tb := range db.Tables {
		for row := range tb.Tuples {
			out = append(out, FactRef{int32(ri), int32(row)})
		}
	}
	return out
}

// Clone returns a deep copy of the database sharing the schema but with an
// independent Dict-compatible state (the Dict itself is shared: Values are
// stable identifiers, and clones only ever add facts, never constants that
// would conflict).
func (db *Database) Clone() *Database {
	c := &Database{
		Schema: db.Schema,
		Dict:   db.Dict,
		Tables: make([]*Table, len(db.Tables)),
		dedup:  make([]map[string]int32, len(db.Tables)),
	}
	for i, tb := range db.Tables {
		nt := &Table{Def: tb.Def, Tuples: make([]Tuple, len(tb.Tuples))}
		copy(nt.Tuples, tb.Tuples)
		c.Tables[i] = nt
		c.dedup[i] = make(map[string]int32, len(db.dedup[i]))
		for k, v := range db.dedup[i] {
			c.dedup[i][k] = v
		}
	}
	return c
}

// Restrict returns a new database containing only the facts in keep.
// Used by repair enumeration.
func (db *Database) Restrict(keep []FactRef) *Database {
	c := NewDatabase(db.Schema)
	c.Dict = db.Dict
	sorted := make([]FactRef, len(keep))
	copy(sorted, keep)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for _, f := range sorted {
		if _, err := c.InsertTuple(db.Tables[f.Rel].Def.Name, db.Fact(f)); err != nil {
			panic(err) // same schema: cannot fail
		}
	}
	return c
}

// String renders the full database; intended for small examples only.
func (db *Database) String() string {
	var b strings.Builder
	for ri, tb := range db.Tables {
		for row := range tb.Tuples {
			b.WriteString(db.RenderFact(FactRef{int32(ri), int32(row)}))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
