package relation

import (
	"math/big"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func employeeSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]RelDef{
		{Name: "Employee", Attrs: []string{"id", "name", "dept"}, KeyLen: 1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// exampleDB builds the paper's Example 1.1 database.
func exampleDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase(employeeSchema(t))
	db.MustInsert("Employee", 1, "Bob", "HR")
	db.MustInsert("Employee", 1, "Bob", "IT")
	db.MustInsert("Employee", 2, "Alice", "IT")
	db.MustInsert("Employee", 2, "Tim", "IT")
	return db
}

func TestDictInterning(t *testing.T) {
	d := NewDict()
	a := d.String("Bob")
	b := d.String("Bob")
	c := d.String("Alice")
	if a != b {
		t.Fatal("same string interned to different values")
	}
	if a == c {
		t.Fatal("different strings interned to same value")
	}
	if d.Render(a) != "Bob" || d.Render(c) != "Alice" {
		t.Fatal("render round-trip failed")
	}
}

func TestDictIntDirect(t *testing.T) {
	d := NewDict()
	if d.Int(42) != Value(42) {
		t.Fatal("small int not stored inline")
	}
	if d.Render(Value(42)) != "42" {
		t.Fatal("int render failed")
	}
	if d.Size() != 0 {
		t.Fatal("small int should not intern")
	}
	// Negative and huge ints round-trip via interning.
	v := d.Int(-7)
	if d.Render(v) != "-7" {
		t.Fatalf("negative int render = %q", d.Render(v))
	}
	big := d.Int(1 << 62)
	if d.Render(big) != "4611686018427387904" {
		t.Fatalf("large int render = %q", d.Render(big))
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup("x"); ok {
		t.Fatal("lookup of absent string succeeded")
	}
	v := d.String("x")
	got, ok := d.Lookup("x")
	if !ok || got != v {
		t.Fatal("lookup of present string failed")
	}
}

func TestDictOfTypes(t *testing.T) {
	d := NewDict()
	for _, x := range []any{1, int32(2), int64(3), "s", Value(9)} {
		if _, err := d.Of(x); err != nil {
			t.Fatalf("Of(%T) errored: %v", x, err)
		}
	}
	if _, err := d.Of(3.14); err == nil {
		t.Fatal("Of(float64) should error")
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := Tuple{1, 2, 3}
	c := Tuple{1, 2}
	if !a.Equal(b) || a.Equal(c) || c.Equal(a) {
		t.Fatal("Equal misbehaves")
	}
	cl := a.Clone()
	cl[0] = 9
	if a[0] == 9 {
		t.Fatal("Clone aliases")
	}
	if p := a.Project([]int{2, 0}); !p.Equal(Tuple{3, 1}) {
		t.Fatalf("Project = %v", p)
	}
	if !c.Less(a) || a.Less(c) {
		t.Fatal("Less prefix ordering wrong")
	}
	if !a.Less(Tuple{1, 2, 4}) {
		t.Fatal("Less lexicographic ordering wrong")
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		rels []RelDef
		fks  []ForeignKey
	}{
		{"dup rel", []RelDef{{Name: "R", Attrs: []string{"a"}}, {Name: "R", Attrs: []string{"a"}}}, nil},
		{"empty name", []RelDef{{Name: "", Attrs: []string{"a"}}}, nil},
		{"key too long", []RelDef{{Name: "R", Attrs: []string{"a"}, KeyLen: 2}}, nil},
		{"zero arity", []RelDef{{Name: "R"}}, nil},
		{"dup attr", []RelDef{{Name: "R", Attrs: []string{"a", "a"}}}, nil},
		{"fk unknown rel", []RelDef{{Name: "R", Attrs: []string{"a"}}}, []ForeignKey{{FromRel: "X", FromCols: []int{0}, ToRel: "R", ToCols: []int{0}}}},
		{"fk col range", []RelDef{{Name: "R", Attrs: []string{"a"}}}, []ForeignKey{{FromRel: "R", FromCols: []int{5}, ToRel: "R", ToCols: []int{0}}}},
		{"fk mismatch", []RelDef{{Name: "R", Attrs: []string{"a"}}}, []ForeignKey{{FromRel: "R", FromCols: []int{0}, ToRel: "R", ToCols: []int{}}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.rels, c.fks); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := employeeSchema(t)
	if s.RelIndex("Employee") != 0 || s.RelIndex("Nope") != -1 {
		t.Fatal("RelIndex wrong")
	}
	r := s.Rel("Employee")
	if r == nil || r.Arity() != 3 || r.AttrIndex("dept") != 2 || r.AttrIndex("zzz") != -1 {
		t.Fatal("Rel/AttrIndex wrong")
	}
	if s.Rel("Nope") != nil {
		t.Fatal("Rel for unknown name should be nil")
	}
}

func TestJoinablePairs(t *testing.T) {
	s := MustSchema([]RelDef{
		{Name: "A", Attrs: []string{"x", "y"}, KeyLen: 1},
		{Name: "B", Attrs: []string{"u", "v"}, KeyLen: 1},
	}, []ForeignKey{{FromRel: "A", FromCols: []int{1}, ToRel: "B", ToCols: []int{0}}})
	ps := s.JoinablePairs()
	if len(ps) != 1 || ps[0] != (JoinablePair{"A", 1, "B", 0}) {
		t.Fatalf("JoinablePairs = %v", ps)
	}
}

func TestInsertDeduplicates(t *testing.T) {
	db := exampleDB(t)
	if n := db.NumFacts(); n != 4 {
		t.Fatalf("NumFacts = %d, want 4", n)
	}
	// Re-inserting an existing fact is a no-op.
	db.MustInsert("Employee", 1, "Bob", "HR")
	if n := db.NumFacts(); n != 4 {
		t.Fatalf("after dup insert NumFacts = %d, want 4", n)
	}
	fresh, err := db.InsertTuple("Employee", Tuple{db.Dict.Int(1), db.Dict.String("Bob"), db.Dict.String("HR")})
	if err != nil || fresh {
		t.Fatalf("dup InsertTuple fresh=%v err=%v", fresh, err)
	}
}

func TestInsertErrors(t *testing.T) {
	db := exampleDB(t)
	if err := db.Insert("Nope", 1); err == nil {
		t.Fatal("insert into unknown relation should error")
	}
	if err := db.Insert("Employee", 1, "Bob"); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if err := db.Insert("Employee", 1, "Bob", 3.5); err == nil {
		t.Fatal("bad constant type should error")
	}
}

func TestContains(t *testing.T) {
	db := exampleDB(t)
	tup := Tuple{db.Dict.Int(1), db.Dict.MustOf("Bob"), db.Dict.MustOf("HR")}
	if !db.Contains("Employee", tup) {
		t.Fatal("Contains missed present fact")
	}
	tup2 := Tuple{db.Dict.Int(9), db.Dict.MustOf("Bob"), db.Dict.MustOf("HR")}
	if db.Contains("Employee", tup2) {
		t.Fatal("Contains found absent fact")
	}
	if db.Contains("Nope", tup) || db.Contains("Employee", tup[:2]) {
		t.Fatal("Contains on bad input should be false")
	}
}

func TestRenderFact(t *testing.T) {
	db := exampleDB(t)
	got := db.RenderFact(FactRef{0, 0})
	if got != "Employee(1, Bob, HR)" {
		t.Fatalf("RenderFact = %q", got)
	}
}

func TestBlocksExample(t *testing.T) {
	db := exampleDB(t)
	bi := BuildBlocks(db)
	if len(bi.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(bi.Blocks))
	}
	for i := range bi.Blocks {
		if bi.Blocks[i].Size() != 2 {
			t.Fatalf("block %d size = %d, want 2", i, bi.Blocks[i].Size())
		}
	}
	if bi.IsConsistent() {
		t.Fatal("example DB should be inconsistent")
	}
	if got := bi.NumRepairs(); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("NumRepairs = %v, want 4", got)
	}
	if len(bi.NonSingletonBlocks()) != 2 {
		t.Fatal("NonSingletonBlocks wrong")
	}
	if bi.NoiseFraction() != 1.0 {
		t.Fatalf("NoiseFraction = %v, want 1", bi.NoiseFraction())
	}
}

func TestBlockMembership(t *testing.T) {
	db := exampleDB(t)
	bi := BuildBlocks(db)
	f0 := FactRef{0, 0} // (1,Bob,HR)
	f1 := FactRef{0, 1} // (1,Bob,IT)
	f2 := FactRef{0, 2} // (2,Alice,IT)
	if bi.BlockID(f0) != bi.BlockID(f1) {
		t.Fatal("facts with same key should share a block")
	}
	if bi.BlockID(f0) == bi.BlockID(f2) {
		t.Fatal("facts with different keys should not share a block")
	}
	if bi.MemberIndex(f0) != 0 || bi.MemberIndex(f1) != 1 {
		t.Fatal("member indexes should follow row order")
	}
	if bi.BlockOf(f2).Size() != 2 {
		t.Fatal("BlockOf size wrong")
	}
}

func TestSatisfiesKeys(t *testing.T) {
	db := exampleDB(t)
	bi := BuildBlocks(db)
	if !bi.SatisfiesKeys([]FactRef{{0, 0}, {0, 2}}) {
		t.Fatal("conflict-free set rejected")
	}
	if bi.SatisfiesKeys([]FactRef{{0, 0}, {0, 1}}) {
		t.Fatal("conflicting set accepted")
	}
	// Repeated fact is fine (sets, not multisets).
	if !bi.SatisfiesKeys([]FactRef{{0, 0}, {0, 0}}) {
		t.Fatal("repeated fact rejected")
	}
	if !bi.SatisfiesKeys(nil) || !bi.SatisfiesKeys([]FactRef{{0, 3}}) {
		t.Fatal("trivial sets rejected")
	}
}

func TestKeylessRelationNeverConflicts(t *testing.T) {
	s := MustSchema([]RelDef{{Name: "R", Attrs: []string{"a", "b"}, KeyLen: 0}}, nil)
	db := NewDatabase(s)
	db.MustInsert("R", 1, 1)
	db.MustInsert("R", 1, 2)
	db.MustInsert("R", 1, 3)
	bi := BuildBlocks(db)
	if !bi.IsConsistent() {
		t.Fatal("keyless relation reported inconsistent")
	}
	if len(bi.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 singletons", len(bi.Blocks))
	}
}

func TestConsistentDB(t *testing.T) {
	db := NewDatabase(employeeSchema(t))
	db.MustInsert("Employee", 1, "Bob", "HR")
	db.MustInsert("Employee", 2, "Alice", "IT")
	if !IsConsistentDB(db) {
		t.Fatal("consistent DB reported inconsistent")
	}
	bi := BuildBlocks(db)
	if bi.NoiseFraction() != 0 {
		t.Fatal("noise fraction of consistent DB nonzero")
	}
	if bi.NumRepairs().Cmp(big.NewInt(1)) != 0 {
		t.Fatal("consistent DB should have exactly one repair")
	}
}

func TestCloneIndependence(t *testing.T) {
	db := exampleDB(t)
	c := db.Clone()
	c.MustInsert("Employee", 3, "Eve", "HR")
	if db.NumFacts() != 4 || c.NumFacts() != 5 {
		t.Fatal("clone not independent")
	}
	// Dedup state must be cloned too.
	c2 := db.Clone()
	c2.MustInsert("Employee", 1, "Bob", "HR") // dup: must be ignored
	if c2.NumFacts() != 4 {
		t.Fatal("clone lost dedup state")
	}
}

func TestRestrict(t *testing.T) {
	db := exampleDB(t)
	sub := db.Restrict([]FactRef{{0, 1}, {0, 2}})
	if sub.NumFacts() != 2 {
		t.Fatalf("restricted NumFacts = %d", sub.NumFacts())
	}
	if !IsConsistentDB(sub) {
		t.Fatal("restriction to one fact per block should be consistent")
	}
}

func TestAllFactsDeterministic(t *testing.T) {
	db := exampleDB(t)
	fs := db.AllFacts()
	if len(fs) != 4 {
		t.Fatalf("AllFacts len = %d", len(fs))
	}
	if !sort.SliceIsSorted(fs, func(i, j int) bool { return fs[i].Less(fs[j]) }) {
		t.Fatal("AllFacts not sorted")
	}
}

// Property: for arbitrary small databases, every fact lies in exactly one
// block, blocks partition the facts, and NumRepairs equals the product of
// block sizes.
func TestBlockPartitionProperty(t *testing.T) {
	s := MustSchema([]RelDef{{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1}}, nil)
	f := func(pairs []struct{ K, V uint8 }) bool {
		db := NewDatabase(s)
		for _, p := range pairs {
			db.MustInsert("R", int(p.K%6), int(p.V%6))
		}
		bi := BuildBlocks(db)
		total := 0
		prod := big.NewInt(1)
		for i := range bi.Blocks {
			total += bi.Blocks[i].Size()
			prod.Mul(prod, big.NewInt(int64(bi.Blocks[i].Size())))
		}
		if total != db.NumFacts() {
			return false
		}
		if prod.Cmp(bi.NumRepairs()) != 0 {
			return false
		}
		// Every fact's BlockOf contains it.
		for _, fr := range db.AllFacts() {
			b := bi.BlockOf(fr)
			found := false
			for _, g := range b.Facts {
				if g == fr {
					found = true
				}
			}
			if !found {
				return false
			}
			if b.Facts[bi.MemberIndex(fr)] != fr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaString(t *testing.T) {
	s := employeeSchema(t)
	if got := s.String(); got != "Employee(*id, name, dept)\n" {
		t.Fatalf("Schema.String = %q", got)
	}
}

func TestDatabaseString(t *testing.T) {
	db := NewDatabase(employeeSchema(t))
	db.MustInsert("Employee", 1, "Bob", "HR")
	if got := db.String(); got != "Employee(1, Bob, HR)\n" {
		t.Fatalf("Database.String = %q", got)
	}
}

func TestMeasureInconsistency(t *testing.T) {
	db := exampleDB(t)
	rep := MeasureInconsistency(db)
	if rep.Facts != 4 || rep.ConflictingFacts != 4 {
		t.Fatalf("facts: %+v", rep)
	}
	if rep.Blocks != 2 || rep.ConflictBlocks != 2 || rep.MaxBlockSize != 2 {
		t.Fatalf("blocks: %+v", rep)
	}
	if rep.BlockNoise() != 1 || rep.FactNoise() != 1 {
		t.Fatalf("noise: %v %v", rep.BlockNoise(), rep.FactNoise())
	}
	if rep.Log2Repairs != 2 { // 4 repairs
		t.Fatalf("log2 repairs = %v", rep.Log2Repairs)
	}
	if rep.BlockSizeHistogram[2] != 2 {
		t.Fatalf("histogram = %v", rep.BlockSizeHistogram)
	}
	if rep.PerRelation[0].ConflictBlocks != 2 || rep.PerRelation[0].FactsInConflict != 4 {
		t.Fatalf("per relation: %+v", rep.PerRelation[0])
	}
	out := rep.String()
	for _, want := range []string{"facts: 4", "log2(repairs): 2.0", "2:2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureInconsistencyConsistent(t *testing.T) {
	db := NewDatabase(employeeSchema(t))
	db.MustInsert("Employee", 1, "Bob", "HR")
	rep := MeasureInconsistency(db)
	if rep.BlockNoise() != 0 || rep.FactNoise() != 0 || rep.Log2Repairs != 0 {
		t.Fatalf("consistent DB: %+v", rep)
	}
	empty := MeasureInconsistency(NewDatabase(employeeSchema(t)))
	if empty.BlockNoise() != 0 || empty.FactNoise() != 0 {
		t.Fatal("empty DB noise nonzero")
	}
}

// Property: two facts share a block iff they share a key value.
func TestKeyValueBlockEquivalenceProperty(t *testing.T) {
	s := MustSchema([]RelDef{
		{Name: "R", Attrs: []string{"k1", "k2", "v"}, KeyLen: 2},
	}, nil)
	f := func(rows []struct{ A, B, V uint8 }) bool {
		if len(rows) > 10 {
			rows = rows[:10]
		}
		db := NewDatabase(s)
		for _, r := range rows {
			db.MustInsert("R", int(r.A%3), int(r.B%3), int(r.V%5))
		}
		bi := BuildBlocks(db)
		facts := db.AllFacts()
		for i := range facts {
			for j := range facts {
				sameBlock := bi.BlockID(facts[i]) == bi.BlockID(facts[j])
				sameKey := db.KeyValue(facts[i]) == db.KeyValue(facts[j])
				if sameBlock != sameKey {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
