// Package tpcds provides a TPC-DS-style snowflake schema (the paper's
// S_DS with its primary keys Σ_DS) and a deterministic synthetic data
// generator. The validation scenarios of Appendix F run conjunctive
// renderings of TPC-DS query templates over it.
//
// This is a faithful subset of the 24-relation TPC-DS schema: the two
// largest fact tables (store_sales, catalog_sales) with their composite
// primary keys, plus the nine dimensions the selected query templates
// touch. The snowflake join structure — the property the validation
// queries exercise — is preserved exactly (see DESIGN.md §1).
package tpcds

import (
	"fmt"

	"cqabench/internal/mt"
	"cqabench/internal/relation"
)

// Schema returns the TPC-DS snowflake subset with primary keys and the
// foreign-key graph.
func Schema() *relation.Schema {
	return relation.MustSchema([]relation.RelDef{
		{
			Name: "date_dim",
			Attrs: []string{
				"d_date_sk", "d_year", "d_moy", "d_dom", "d_qoy", "d_day_name",
			},
			KeyLen: 1,
		},
		{
			Name: "item",
			Attrs: []string{
				"i_item_sk", "i_item_id", "i_brand_id", "i_brand", "i_class",
				"i_category_id", "i_category", "i_current_price", "i_manager_id",
			},
			KeyLen: 1,
		},
		{
			Name: "customer_address",
			Attrs: []string{
				"ca_address_sk", "ca_city", "ca_county", "ca_state", "ca_zip",
				"ca_gmt_offset",
			},
			KeyLen: 1,
		},
		{
			Name: "customer",
			Attrs: []string{
				"c_customer_sk", "c_customer_id", "c_current_addr_sk",
				"c_first_name", "c_last_name", "c_birth_year",
			},
			KeyLen: 1,
		},
		{
			Name: "store",
			Attrs: []string{
				"s_store_sk", "s_store_id", "s_store_name", "s_city", "s_state",
			},
			KeyLen: 1,
		},
		{
			Name: "warehouse",
			Attrs: []string{
				"w_warehouse_sk", "w_warehouse_name", "w_city", "w_state",
			},
			KeyLen: 1,
		},
		{
			Name: "ship_mode",
			Attrs: []string{
				"sm_ship_mode_sk", "sm_type", "sm_code", "sm_carrier",
			},
			KeyLen: 1,
		},
		{
			Name: "promotion",
			Attrs: []string{
				"p_promo_sk", "p_promo_id", "p_channel_dmail", "p_channel_email",
				"p_channel_tv",
			},
			KeyLen: 1,
		},
		{
			Name: "call_center",
			Attrs: []string{
				"cc_call_center_sk", "cc_name", "cc_class", "cc_city", "cc_state",
			},
			KeyLen: 1,
		},
		{
			// Primary key per TPC-DS: (ss_item_sk, ss_ticket_number); we
			// order attributes so the key is the prefix.
			Name: "store_sales",
			Attrs: []string{
				"ss_item_sk", "ss_ticket_number", "ss_sold_date_sk",
				"ss_customer_sk", "ss_store_sk", "ss_promo_sk", "ss_quantity",
				"ss_sales_price",
			},
			KeyLen: 2,
		},
		{
			// Primary key per TPC-DS: (cs_item_sk, cs_order_number).
			Name: "catalog_sales",
			Attrs: []string{
				"cs_item_sk", "cs_order_number", "cs_sold_date_sk",
				"cs_bill_customer_sk", "cs_warehouse_sk", "cs_ship_mode_sk",
				"cs_call_center_sk", "cs_promo_sk", "cs_quantity",
				"cs_sales_price",
			},
			KeyLen: 2,
		},
	}, []relation.ForeignKey{
		{FromRel: "customer", FromCols: []int{2}, ToRel: "customer_address", ToCols: []int{0}},
		{FromRel: "store_sales", FromCols: []int{0}, ToRel: "item", ToCols: []int{0}},
		{FromRel: "store_sales", FromCols: []int{2}, ToRel: "date_dim", ToCols: []int{0}},
		{FromRel: "store_sales", FromCols: []int{3}, ToRel: "customer", ToCols: []int{0}},
		{FromRel: "store_sales", FromCols: []int{4}, ToRel: "store", ToCols: []int{0}},
		{FromRel: "store_sales", FromCols: []int{5}, ToRel: "promotion", ToCols: []int{0}},
		{FromRel: "catalog_sales", FromCols: []int{0}, ToRel: "item", ToCols: []int{0}},
		{FromRel: "catalog_sales", FromCols: []int{2}, ToRel: "date_dim", ToCols: []int{0}},
		{FromRel: "catalog_sales", FromCols: []int{3}, ToRel: "customer", ToCols: []int{0}},
		{FromRel: "catalog_sales", FromCols: []int{4}, ToRel: "warehouse", ToCols: []int{0}},
		{FromRel: "catalog_sales", FromCols: []int{5}, ToRel: "ship_mode", ToCols: []int{0}},
		{FromRel: "catalog_sales", FromCols: []int{6}, ToRel: "call_center", ToCols: []int{0}},
		{FromRel: "catalog_sales", FromCols: []int{7}, ToRel: "promotion", ToCols: []int{0}},
	})
}

// Config parameterizes generation; SF = 1 approximates the 1 GB TPC-DS
// row-count ratios (~20M tuples), scaled down like tpch.Config.
type Config struct {
	ScaleFactor float64
	Seed        uint64
}

// DefaultConfig is a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{ScaleFactor: 0.0005, Seed: mt.DefaultSeed}
}

// Base cardinalities at SF = 1, following the TPC-DS 1 GB profile.
const (
	baseItem         = 18000
	baseCustomer     = 100000
	baseAddress      = 50000
	baseStoreSales   = 2880000
	baseCatalogSales = 1440000
	baseDateDim      = 2500 // restricted to the sales window
)

var (
	states     = []string{"CA", "NY", "TX", "WA", "IL", "GA", "OH", "MI", "PA", "FL"}
	cities     = []string{"Fairview", "Midway", "Oakland", "Pleasant Hill", "Centerville", "Springdale", "Riverview", "Lakeside"}
	categories = []string{"Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women", "Children"}
	classes    = []string{"accessories", "classical", "fiction", "fragrances", "pants", "pop", "portable", "reference"}
	dayNames   = []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	shipTypes  = []string{"EXPRESS", "LIBRARY", "NEXT DAY", "OVERNIGHT", "REGULAR", "TWO DAY"}
	carriers   = []string{"UPS", "FEDEX", "AIRBORNE", "USPS", "DHL", "TBS"}
	firstNames = []string{"James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda", "William", "Barbara"}
	lastNames  = []string{"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez", "Martinez"}
	yesNo      = []string{"Y", "N"}
)

func scaled(base int, sf float64) int {
	n := int(float64(base)*sf + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate produces a consistent TPC-DS subset database, deterministic for
// a fixed Config.
func Generate(cfg Config) (*relation.Database, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("tpcds: scale factor must be positive, got %v", cfg.ScaleFactor)
	}
	src := mt.New(cfg.Seed)
	db := relation.NewDatabase(Schema())
	pick := func(xs []string) string { return xs[src.Intn(len(xs))] }

	nItem := scaled(baseItem, cfg.ScaleFactor)
	nCust := scaled(baseCustomer, cfg.ScaleFactor)
	nAddr := scaled(baseAddress, cfg.ScaleFactor)
	nSS := scaled(baseStoreSales, cfg.ScaleFactor)
	nCS := scaled(baseCatalogSales, cfg.ScaleFactor)
	nDate := scaled(baseDateDim, cfg.ScaleFactor)
	if nDate < 30 {
		nDate = 30
	}
	// Dimension floors: TPC-DS dimensions have minimum cardinalities, and
	// the validation templates filter on categorical values that must all
	// be present at any scale.
	if nItem < 2*len(categories) {
		nItem = 2 * len(categories)
	}
	nStore := scaled(12, cfg.ScaleFactor*1000) // a handful of stores
	if nStore < 2 {
		nStore = 2
	}
	nWh, nSM, nPromo, nCC := 5, len(shipTypes), 10, 4

	for d := 1; d <= nDate; d++ {
		// Attribute values cycle quickly so every month/quarter/day value
		// exists even at tiny scale factors (template filters rely on it).
		db.MustInsert("date_dim", d, 1998+d/366, 1+(d-1)%12, 1+(d-1)%28, 1+(d-1)%4, dayNames[d%7])
	}
	for i := 1; i <= nItem; i++ {
		cat := (i - 1) % len(categories) // cyclic: every category present
		db.MustInsert("item",
			i,
			fmt.Sprintf("AAAAAAAA%08d", i),
			1000000+src.Intn(10)*100000+src.Intn(100),
			fmt.Sprintf("brand-%d-%d", cat, src.Intn(10)),
			pick(classes),
			cat+1,
			categories[cat],
			99+src.Intn(9900), // price in cents
			1+src.Intn(100),
		)
	}
	for a := 1; a <= nAddr; a++ {
		db.MustInsert("customer_address",
			a, pick(cities), pick(cities)+" County", pick(states),
			fmt.Sprintf("%05d", 10000+src.Intn(89999)), -src.Intn(9))
	}
	for c := 1; c <= nCust; c++ {
		db.MustInsert("customer",
			c,
			fmt.Sprintf("CUST%011d", c),
			1+src.Intn(nAddr),
			pick(firstNames), pick(lastNames),
			1930+src.Intn(70),
		)
	}
	for s := 1; s <= nStore; s++ {
		db.MustInsert("store", s, fmt.Sprintf("S%08d", s), "store-"+pick(cities), pick(cities), pick(states))
	}
	for w := 1; w <= nWh; w++ {
		db.MustInsert("warehouse", w, fmt.Sprintf("wh-%d", w), pick(cities), pick(states))
	}
	for m := 1; m <= nSM; m++ {
		db.MustInsert("ship_mode", m, shipTypes[m-1], fmt.Sprintf("sm-%d", m), pick(carriers))
	}
	for p := 1; p <= nPromo; p++ {
		db.MustInsert("promotion", p, fmt.Sprintf("PROMO%06d", p), pick(yesNo), pick(yesNo), pick(yesNo))
	}
	for cc := 1; cc <= nCC; cc++ {
		db.MustInsert("call_center", cc, fmt.Sprintf("cc-%d", cc), "large", pick(cities), pick(states))
	}
	for t := 1; t <= nSS; t++ {
		db.MustInsert("store_sales",
			1+src.Intn(nItem), t,
			1+src.Intn(nDate),
			1+src.Intn(nCust),
			1+src.Intn(nStore),
			1+src.Intn(nPromo),
			1+src.Intn(20),
			50+src.Intn(20000),
		)
	}
	for o := 1; o <= nCS; o++ {
		db.MustInsert("catalog_sales",
			1+src.Intn(nItem), o,
			1+src.Intn(nDate),
			1+src.Intn(nCust),
			1+src.Intn(nWh),
			1+src.Intn(nSM),
			1+src.Intn(nCC),
			1+src.Intn(nPromo),
			1+src.Intn(20),
			50+src.Intn(20000),
		)
	}
	return db, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(cfg Config) *relation.Database {
	db, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return db
}
