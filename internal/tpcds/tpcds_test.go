package tpcds

import (
	"fmt"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/engine"
	"cqabench/internal/relation"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if len(s.Rels) != 11 {
		t.Fatalf("relations = %d, want 11", len(s.Rels))
	}
	if s.Rel("store_sales").KeyLen != 2 || s.Rel("catalog_sales").KeyLen != 2 {
		t.Fatal("fact tables must have composite keys")
	}
	for _, dim := range []string{"date_dim", "item", "customer", "customer_address", "store", "warehouse", "ship_mode", "promotion", "call_center"} {
		def := s.Rel(dim)
		if def == nil || def.KeyLen != 1 {
			t.Fatalf("dimension %s missing or mis-keyed", dim)
		}
	}
	if len(s.JoinablePairs()) < 12 {
		t.Fatalf("joinable pairs = %d", len(s.JoinablePairs()))
	}
}

func TestGenerateConsistentAndDeterministic(t *testing.T) {
	a := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 3})
	if !relation.IsConsistentDB(a) {
		t.Fatal("generated database inconsistent")
	}
	b := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 3})
	if a.String() != b.String() {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateRejectsBadSF(t *testing.T) {
	if _, err := Generate(Config{ScaleFactor: 0}); err == nil {
		t.Fatal("SF 0 accepted")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 5})
	s := db.Schema
	for _, fk := range s.FKs {
		from := db.Tables[s.RelIndex(fk.FromRel)]
		to := db.Tables[s.RelIndex(fk.ToRel)]
		targets := make(map[string]bool, len(to.Tuples))
		for _, tt := range to.Tuples {
			targets[proj(tt, fk.ToCols)] = true
		}
		for _, ft := range from.Tuples {
			if !targets[proj(ft, fk.FromCols)] {
				t.Fatalf("dangling FK %s%v -> %s%v", fk.FromRel, fk.FromCols, fk.ToRel, fk.ToCols)
			}
		}
	}
}

func proj(t relation.Tuple, cols []int) string {
	out := ""
	for _, c := range cols {
		out += fmt.Sprintf("%d|", int64(t[c]))
	}
	return out
}

func TestSnowflakeJoin(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 7})
	ev := engine.NewEvaluator(db)
	q := cq.MustParse(
		"Q(cat) :- store_sales(i, tk, d, c, st, pr, qt, sp), item(i, id, bid, br, cl, cid, cat, cp, mg), date_dim(d, y, m, dom, qoy, dn)",
		db.Dict)
	n, err := ev.CountHomomorphisms(q)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("store_sales-item-date_dim join is empty")
	}
}

func TestFactTableKeysAreComposite(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 9})
	// Two store_sales rows can share an item (first key attr) as long as
	// ticket numbers differ; the generator assigns distinct tickets, so
	// the table is consistent.
	bi := relation.BuildBlocks(db)
	if !bi.IsConsistent() {
		t.Fatal("fact tables inconsistent under composite keys")
	}
}
