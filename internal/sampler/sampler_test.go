package sampler

import (
	"math"
	"testing"
	"testing/quick"

	"cqabench/internal/mt"
	"cqabench/internal/synopsis"
)

// testPair returns a hand-built admissible pair with overlapping images so
// all three samplers behave differently.
func testPair(t *testing.T) *synopsis.Admissible {
	t.Helper()
	pair := &synopsis.Admissible{
		BlockSizes: []int32{2, 3, 2},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 0}, {Block: 1, Fact: 1}},
			{{Block: 1, Fact: 2}, {Block: 2, Fact: 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	return pair
}

func empiricalMean(s interface {
	Sample(*mt.Source) float64
}, src *mt.Source, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Sample(src)
	}
	return sum / float64(n)
}

func TestNaturalExpectedValue(t *testing.T) {
	pair := testPair(t)
	want, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	got := empiricalMean(NewNatural(pair), mt.New(1), 200000)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("E[Natural] = %.4f, want %.4f", got, want)
	}
}

func TestNaturalOutputsBinary(t *testing.T) {
	pair := testPair(t)
	n := NewNatural(pair)
	src := mt.New(2)
	for i := 0; i < 1000; i++ {
		v := n.Sample(src)
		if v != 0 && v != 1 {
			t.Fatalf("Natural sample = %v", v)
		}
	}
	if n.GoodFactor() != 1 {
		t.Fatal("Natural must be 1-good")
	}
}

func TestKLExpectedValue(t *testing.T) {
	pair := testPair(t)
	r, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	kl := NewKL(pair)
	want := r / kl.Weight() // Num/|S•| = R * |db|/|S•|
	got := empiricalMean(kl, mt.New(3), 200000)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("E[KL] = %.4f, want %.4f", got, want)
	}
	if math.Abs(kl.GoodFactor()*kl.Weight()-1) > 1e-12 {
		t.Fatal("GoodFactor/Weight inconsistent")
	}
}

func TestKLMExpectedValue(t *testing.T) {
	pair := testPair(t)
	r, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	klm := NewKLM(pair)
	want := r / klm.Weight()
	got := empiricalMean(klm, mt.New(4), 200000)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("E[KLM] = %.4f, want %.4f", got, want)
	}
}

func TestKLMOutputsReciprocal(t *testing.T) {
	pair := testPair(t)
	klm := NewKLM(pair)
	src := mt.New(5)
	n := pair.NumImages()
	for i := 0; i < 1000; i++ {
		v := klm.Sample(src)
		// Must be 1/k for integer k in [1, |H|].
		k := math.Round(1 / v)
		if k < 1 || k > float64(n) || math.Abs(v-1/k) > 1e-12 {
			t.Fatalf("KLM sample = %v not of form 1/k", v)
		}
	}
}

func TestSymbolicDrawContainsImage(t *testing.T) {
	pair := testPair(t)
	s := NewSymbolic(pair)
	src := mt.New(6)
	for k := 0; k < 2000; k++ {
		i := s.Draw(src)
		if !s.InSet(i) {
			t.Fatalf("drawn I does not contain H_%d", i)
		}
	}
}

func TestSymbolicImageDistribution(t *testing.T) {
	pair := testPair(t)
	s := NewSymbolic(pair)
	src := mt.New(7)
	const draws = 300000
	counts := make([]int, pair.NumImages())
	for k := 0; k < draws; k++ {
		counts[s.Draw(src)]++
	}
	total := pair.SymbolicWeight()
	for i := range counts {
		want := pair.ImageWeight(i) / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("image %d drawn with frequency %.4f, want %.4f", i, got, want)
		}
	}
}

// The KL(M) samplers' whole point: when R is tiny because the answer is
// witnessed by a single image among many blocks, the symbolic expected
// value stays large.
func TestSymbolicBeatsNaturalOnSparsePairs(t *testing.T) {
	pair := &synopsis.Admissible{
		BlockSizes: []int32{5, 5, 5, 5, 5, 5},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}, {Block: 1, Fact: 0}, {Block: 2, Fact: 0}, {Block: 3, Fact: 0}, {Block: 4, Fact: 0}, {Block: 5, Fact: 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-4 { // 1/5^6
		t.Fatalf("R = %v, expected tiny", r)
	}
	kl := NewKL(pair)
	// With a single image, every KL sample is 1: expected value 1 >> R.
	if got := empiricalMean(kl, mt.New(8), 1000); got != 1 {
		t.Fatalf("E[KL] = %v, want exactly 1 for single image", got)
	}
}

func TestKLMVarianceNotLargerThanKL(t *testing.T) {
	pair := testPair(t)
	src1, src2 := mt.New(9), mt.New(9)
	kl, klm := NewKL(pair), NewKLM(pair)
	const n = 200000
	varOf := func(f func() float64) float64 {
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := f()
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		return sumsq/n - mean*mean
	}
	vKL := varOf(func() float64 { return kl.Sample(src1) })
	vKLM := varOf(func() float64 { return klm.Sample(src2) })
	// Statistically vKLM <= vKL; allow small estimation slack.
	if vKLM > vKL+0.01 {
		t.Fatalf("Var[KLM] = %.5f > Var[KL] = %.5f", vKLM, vKL)
	}
}

// Property: on random admissible pairs, all three samplers' empirical
// means match their exact expected values.
func TestSamplerExpectedValuesProperty(t *testing.T) {
	f := func(seed []byte) bool {
		pair := pairFromSeed(seed)
		if pair == nil {
			return true
		}
		r, err := pair.ExactRatio(0)
		if err != nil {
			return true
		}
		src := mt.New(123)
		const n = 40000
		if got := empiricalMean(NewNatural(pair), src, n); math.Abs(got-r) > 0.03 {
			return false
		}
		kl := NewKL(pair)
		want := r / kl.Weight()
		if got := empiricalMean(kl, src, n); math.Abs(got-want) > 0.03 {
			return false
		}
		klm := NewKLM(pair)
		if got := empiricalMean(klm, src, n); math.Abs(got-want) > 0.03 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// pairFromSeed builds a small random admissible pair (mirrors the synopsis
// package's test generator).
func pairFromSeed(seed []byte) *synopsis.Admissible {
	if len(seed) < 4 {
		return nil
	}
	nBlocks := int(seed[0]%3) + 1
	nImages := int(seed[1]%4) + 1
	pair := &synopsis.Admissible{}
	for b := 0; b < nBlocks; b++ {
		pair.BlockSizes = append(pair.BlockSizes, int32(seed[(2+b)%len(seed)]%3)+1)
	}
	pos := 2 + nBlocks
	next := func() byte {
		b := seed[pos%len(seed)]
		pos++
		return b
	}
	for i := 0; i < nImages; i++ {
		var img synopsis.Image
		for b := 0; b < nBlocks; b++ {
			if next()%2 == 0 {
				img = append(img, synopsis.Member{Block: int32(b), Fact: int32(next()) % pair.BlockSizes[b]})
			}
		}
		if len(img) == 0 {
			img = synopsis.Image{{Block: 0, Fact: int32(next()) % pair.BlockSizes[0]}}
		}
		pair.Images = append(pair.Images, img)
	}
	pair.Canonicalize()
	touched := make([]bool, nBlocks)
	for _, img := range pair.Images {
		for _, m := range img {
			touched[m.Block] = true
		}
	}
	remap := make([]int32, nBlocks)
	var sizes []int32
	for b := 0; b < nBlocks; b++ {
		if touched[b] {
			remap[b] = int32(len(sizes))
			sizes = append(sizes, pair.BlockSizes[b])
		}
	}
	for _, img := range pair.Images {
		for k := range img {
			img[k].Block = remap[img[k].Block]
		}
	}
	pair.BlockSizes = sizes
	if pair.Validate() != nil {
		return nil
	}
	return pair
}

func BenchmarkNaturalSample(b *testing.B) {
	pair := benchPair()
	s := NewNatural(pair)
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkKLSample(b *testing.B) {
	pair := benchPair()
	s := NewKL(pair)
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkKLMSample(b *testing.B) {
	pair := benchPair()
	s := NewKLM(pair)
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

// benchPair builds a moderately large pair: 40 blocks, 60 images.
func benchPair() *synopsis.Admissible {
	pair := &synopsis.Admissible{}
	for b := 0; b < 40; b++ {
		pair.BlockSizes = append(pair.BlockSizes, int32(b%4)+2)
	}
	src := mt.New(99)
	for i := 0; i < 60; i++ {
		var img synopsis.Image
		for b := 0; b < 40; b++ {
			if src.Intn(8) == 0 {
				img = append(img, synopsis.Member{Block: int32(b), Fact: int32(src.Intn(int(pair.BlockSizes[b])))})
			}
		}
		if len(img) == 0 {
			img = synopsis.Image{{Block: int32(i % 40), Fact: 0}}
		}
		pair.Images = append(pair.Images, img)
	}
	pair.Canonicalize()
	// Ensure every block touched.
	touched := make([]bool, len(pair.BlockSizes))
	for _, img := range pair.Images {
		for _, m := range img {
			touched[m.Block] = true
		}
	}
	for b, ok := range touched {
		if !ok {
			pair.Images = append(pair.Images, synopsis.Image{{Block: int32(b), Fact: 0}})
		}
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}

// The natural sampler must draw each block member uniformly: chi-squared
// over the chosen member of one block.
func TestNaturalUniformPerBlock(t *testing.T) {
	pair := &synopsis.Admissible{
		BlockSizes: []int32{5},
		Images:     []synopsis.Image{{{Block: 0, Fact: 0}}},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	n := NewNatural(pair)
	src := mt.New(51)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if n.Sample(src) == 1 {
			hits++
		}
	}
	// Member 0 of a 5-member block: expected hit rate exactly 1/5.
	p := float64(hits) / draws
	if math.Abs(p-0.2) > 0.01 {
		t.Fatalf("member 0 chosen with frequency %.4f, want 0.2", p)
	}
}

// The indexed natural sampler must match the plain one draw for draw: the
// same PRNG stream consumes identically (block choices first), so both
// samplers see the same databases.
func TestNaturalIndexedMatchesPlain(t *testing.T) {
	pair := testPair(t)
	plain := NewNatural(pair)
	indexed := NewNaturalIndexed(pair)
	s1, s2 := mt.New(61), mt.New(61)
	for i := 0; i < 20000; i++ {
		a, b := plain.Sample(s1), indexed.Sample(s2)
		if a != b {
			t.Fatalf("draw %d: plain %v vs indexed %v", i, a, b)
		}
	}
	if indexed.GoodFactor() != 1 {
		t.Fatal("indexed sampler must be 1-good")
	}
}

// Property: both natural samplers agree on random pairs.
func TestNaturalIndexedProperty(t *testing.T) {
	f := func(seed []byte) bool {
		pair := pairFromSeed(seed)
		if pair == nil {
			return true
		}
		s1, s2 := mt.New(71), mt.New(71)
		plain := NewNatural(pair)
		indexed := NewNaturalIndexed(pair)
		for i := 0; i < 3000; i++ {
			if plain.Sample(s1) != indexed.Sample(s2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNaturalIndexedSample(b *testing.B) {
	pair := benchPair()
	s := NewNaturalIndexed(pair)
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

// hugePair models the hard regime for the natural sampler: thousands of
// images over large blocks with low coverage, so a plain scan must reject
// every image on most samples. This is where the first-member index pays.
func hugePair() *synopsis.Admissible {
	pair := &synopsis.Admissible{}
	const nBlocks = 30
	const blockSize = 24
	for b := 0; b < nBlocks; b++ {
		pair.BlockSizes = append(pair.BlockSizes, blockSize)
	}
	src := mt.New(3)
	for i := 0; i < 3000; i++ {
		b1 := int32(src.Intn(nBlocks))
		b2 := int32(src.Intn(nBlocks))
		img := synopsis.Image{{Block: b1, Fact: int32(src.Intn(blockSize))}}
		if b2 != b1 {
			img = append(img, synopsis.Member{Block: b2, Fact: int32(src.Intn(blockSize))})
		}
		pair.Images = append(pair.Images, img)
	}
	pair.Canonicalize()
	touched := make([]bool, nBlocks)
	for _, img := range pair.Images {
		for _, m := range img {
			touched[m.Block] = true
		}
	}
	for b, ok := range touched {
		if !ok {
			pair.Images = append(pair.Images, synopsis.Image{{Block: int32(b), Fact: 0}})
		}
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}

func BenchmarkNaturalSampleHuge(b *testing.B) {
	s := NewNatural(hugePair())
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkNaturalIndexedSampleHuge(b *testing.B) {
	s := NewNaturalIndexed(hugePair())
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}
