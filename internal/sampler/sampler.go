// Package sampler implements the paper's three randomized samplers over an
// admissible pair (H, B) (Section 4.2):
//
//   - Natural (Sampler 1) draws a database I uniformly from the natural
//     sampling space db(B) and reports whether some image covers it;
//     it is 1-good (Lemma 4.3).
//   - KL (Sampler 2) draws (i, I) uniformly from the symbolic space S• and
//     reports whether i is the first image covering I; it is
//     (|db(B)|/|S•|)-good (Lemma 4.5).
//   - KLM (Sampler 3) draws from the same space and reports 1/k where k is
//     the number of images covering I; same goodness, lower variance,
//     higher per-sample cost (Lemma 4.7).
//
// Every sampler exists in two kernels with identical distribution and
// identical MT19937-64 stream consumption: the plain scan over the flat
// image layout (this file) and a first-member index-accelerated variant
// (indexed.go). SelectKernel picks between them from synopsis shape.
// All kernels implement batched drawing (SampleBatch) with tight,
// allocation-free inner loops; a batch of n draws is byte-identical to n
// one-at-a-time Sample calls on the same stream.
//
// All samplers reuse internal scratch buffers: one instance serves one
// estimation loop at a time.
package sampler

import (
	"cqabench/internal/mt"
	"cqabench/internal/synopsis"
)

// Natural is Sampler 1: SampleNatural.
type Natural struct {
	sizes  []int32
	flat   *synopsis.FlatImages
	chosen []int32
}

// NewNatural returns a natural-space sampler for the pair, which must be
// admissible (Validate'd by the caller; the synopsis builder guarantees it).
func NewNatural(pair *synopsis.Admissible) *Natural {
	return &Natural{
		sizes:  pair.BlockSizes,
		flat:   pair.Flatten(),
		chosen: make([]int32, pair.NumBlocks()),
	}
}

// Sample draws I ∈ db(B) uniformly and returns 1 if some H ∈ H satisfies
// H ⊆ I, else 0. Its expected value is exactly R(H,B).
func (n *Natural) Sample(src *mt.Source) float64 { return n.sample(src) }

// sample is the concrete (devirtualized) draw shared by Sample and
// SampleBatch.
func (n *Natural) sample(src *mt.Source) float64 {
	for b, sz := range n.sizes {
		n.chosen[b] = int32(src.Intn(int(sz)))
	}
	if n.flat.FirstCover(n.chosen) >= 0 {
		return 1
	}
	return 0
}

// SampleBatch fills dst with len(dst) consecutive draws.
func (n *Natural) SampleBatch(src *mt.Source, dst []float64) {
	for i := range dst {
		dst[i] = n.sample(src)
	}
}

// GoodFactor returns the r for which the sampler is r-good: 1.
func (n *Natural) GoodFactor() float64 { return 1 }

// Symbolic holds the shared machinery for sampling (i, I) uniformly from
// the symbolic space S• = {(i, I) : I ∈ I^i}: image i is drawn with
// probability |I^i|/|S•| via a Walker alias table, then I uniformly from
// I^i by fixing H_i's members and choosing the remaining blocks uniformly.
type Symbolic struct {
	sizes  []int32
	flat   *synopsis.FlatImages
	alias  *mt.Alias
	weight float64 // |S•| / |db(B)|
	chosen []int32
}

// NewSymbolic prepares the symbolic sampling space for the pair.
func NewSymbolic(pair *synopsis.Admissible) *Symbolic {
	weights := make([]float64, pair.NumImages())
	for i := range weights {
		weights[i] = pair.ImageWeight(i)
	}
	return &Symbolic{
		sizes:  pair.BlockSizes,
		flat:   pair.Flatten(),
		alias:  mt.NewAlias(weights),
		weight: pair.SymbolicWeight(),
		chosen: make([]int32, pair.NumBlocks()),
	}
}

// Draw samples (i, I) uniformly from S•, leaving the drawn pair as the
// sampler's current state, and returns i.
func (s *Symbolic) Draw(src *mt.Source) int {
	i := s.alias.Draw(src)
	for b, sz := range s.sizes {
		s.chosen[b] = int32(src.Intn(int(sz)))
	}
	for _, m := range s.flat.Image(i) {
		s.chosen[m.Block] = m.Fact
	}
	return i
}

// InSet reports whether the current I lies in I^j (i.e. H_j ⊆ I).
func (s *Symbolic) InSet(j int) bool {
	return s.flat.Covers(j, s.chosen)
}

// NumImages returns |H|.
func (s *Symbolic) NumImages() int { return s.flat.NumImages() }

// Weight returns |S•| / |db(B)|: the factor converting estimates over the
// symbolic space into R(H,B) (Algorithms 4 and 5 use its reciprocal and
// itself respectively; we keep everything as ratios of |db(B)| so nothing
// overflows).
func (s *Symbolic) Weight() float64 { return s.weight }

// KL is Sampler 2: SampleKL.
type KL struct {
	*Symbolic
}

// NewKL returns the Karp–Luby sampler for the pair.
func NewKL(pair *synopsis.Admissible) *KL {
	return &KL{NewSymbolic(pair)}
}

// Sample draws (i, I) from S• and returns 1 iff no j < i has H_j ⊆ I.
// Its expected value is Num/|S•| = R(H,B) · |db(B)|/|S•|.
func (k *KL) Sample(src *mt.Source) float64 { return k.sample(src) }

func (k *KL) sample(src *mt.Source) float64 {
	i := k.Draw(src)
	for j := 0; j < i; j++ {
		if k.flat.Covers(j, k.chosen) {
			return 0
		}
	}
	return 1
}

// SampleBatch fills dst with len(dst) consecutive draws.
func (k *KL) SampleBatch(src *mt.Source, dst []float64) {
	for i := range dst {
		dst[i] = k.sample(src)
	}
}

// GoodFactor returns |db(B)|/|S•|.
func (k *KL) GoodFactor() float64 { return 1 / k.weight }

// KLM is Sampler 3: SampleKLM.
type KLM struct {
	*Symbolic
}

// NewKLM returns the Karp–Luby–Madras sampler for the pair.
func NewKLM(pair *synopsis.Admissible) *KLM {
	return &KLM{NewSymbolic(pair)}
}

// Sample draws (i, I) from S• and returns 1/k with k = |{j : H_j ⊆ I}|
// (k ≥ 1 since H_i ⊆ I by construction). Its expected value equals KL's.
func (k *KLM) Sample(src *mt.Source) float64 { return k.sample(src) }

func (k *KLM) sample(src *mt.Source) float64 {
	k.Draw(src)
	return 1 / float64(k.flat.CoverCount(k.chosen))
}

// SampleBatch fills dst with len(dst) consecutive draws.
func (k *KLM) SampleBatch(src *mt.Source, dst []float64) {
	for i := range dst {
		dst[i] = k.sample(src)
	}
}

// GoodFactor returns |db(B)|/|S•|.
func (k *KLM) GoodFactor() float64 { return 1 / k.weight }
