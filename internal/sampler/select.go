package sampler

import "cqabench/internal/synopsis"

// Kernel names a sampling-kernel family: the plain scan over the flat
// image layout, or the first-member index-accelerated variant. Both
// kernels of a scheme draw from the same distribution and consume the
// PRNG stream identically; they differ only in how coverage checks are
// evaluated, so selection is purely a performance decision.
type Kernel int

const (
	// Plain scans the image list per draw (early-exiting where the
	// scheme allows). Fastest on small |H|, where index bookkeeping
	// costs more than the scan it saves.
	Plain Kernel = iota
	// Indexed verifies only the candidate images of the drawn members
	// via the first-member inverted index. Wins on low-coverage pairs
	// with many images over large blocks.
	Indexed
)

// String returns the kernel's telemetry name.
func (k Kernel) String() string {
	if k == Indexed {
		return "indexed"
	}
	return "plain"
}

// Kernel-selection thresholds, calibrated on the package's kernel
// micro-benchmarks (BenchmarkKernels in the repository root): below
// selectMinImages the plain scan's early exit always wins; above it the
// index is chosen when its expected per-draw work — one lookup per
// distinct first block plus the expected candidate verifications — is at
// most half the plain scan's |H| image visits. The 2x margin accounts
// for the index's extra indirection per visited candidate.
const (
	selectMinImages  = 48
	selectCostMargin = 2.0
)

// SelectKernel picks the kernel for a pair from its synopsis shape: |H|,
// the number of distinct first blocks, mean image width, and the
// expected candidates per draw (which folds in mean block size). The
// choice is deterministic and depends only on the pair, never on the
// PRNG stream, so runs stay reproducible whatever kernel is picked.
func SelectKernel(pair *synopsis.Admissible) Kernel {
	return selectKernel(pair.ShapeOf())
}

func selectKernel(sh synopsis.Shape) Kernel {
	if sh.Images < selectMinImages {
		return Plain
	}
	indexCost := float64(sh.FirstBlocks) + sh.ExpectedCandidates*sh.MeanWidth
	if selectCostMargin*indexCost < float64(sh.Images) {
		return Indexed
	}
	return Plain
}
