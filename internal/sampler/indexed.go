package sampler

import (
	"cqabench/internal/mt"
	"cqabench/internal/synopsis"
)

// NaturalIndexed is SampleNatural with an inverted index on each image's
// first member: an image H can only cover the drawn database I if I keeps
// H's first (block, member) choice, so instead of scanning every image
// per sample, the sampler looks up the candidate images of each chosen
// member and verifies only those. Same distribution and expected value as
// Natural; the win appears on low-coverage synopses with many images over
// large blocks, where the plain scan rejects all |H| images per sample
// while the index visits |H|/size-of-block candidates in expectation
// (about 2x at |H| = 3000 in BenchmarkNaturalIndexedSampleHuge; the plain
// scan stays faster on small synopses where its early exit dominates).
type NaturalIndexed struct {
	pair   *synopsis.Admissible
	chosen []int32
	// byFirst maps a first member (block, fact) to the images starting
	// with it (images are canonically sorted, so "first" is well defined).
	byFirst map[synopsis.Member][]int32
	// firstBlocks lists the distinct blocks that appear as first members;
	// only their chosen values can trigger a candidate check.
	firstBlocks []int32
}

// NewNaturalIndexed builds the indexed sampler. It is a drop-in
// replacement for NewNatural.
func NewNaturalIndexed(pair *synopsis.Admissible) *NaturalIndexed {
	n := &NaturalIndexed{
		pair:    pair,
		chosen:  make([]int32, pair.NumBlocks()),
		byFirst: make(map[synopsis.Member][]int32, pair.NumImages()),
	}
	seenBlock := make(map[int32]bool)
	for i, img := range pair.Images {
		first := img[0]
		n.byFirst[first] = append(n.byFirst[first], int32(i))
		if !seenBlock[first.Block] {
			seenBlock[first.Block] = true
			n.firstBlocks = append(n.firstBlocks, first.Block)
		}
	}
	return n
}

// Sample draws I ∈ db(B) uniformly and returns 1 if some image covers it.
func (n *NaturalIndexed) Sample(src *mt.Source) float64 {
	for b, sz := range n.pair.BlockSizes {
		n.chosen[b] = int32(src.Intn(int(sz)))
	}
	for _, b := range n.firstBlocks {
		candidates := n.byFirst[synopsis.Member{Block: b, Fact: n.chosen[b]}]
		for _, i := range candidates {
			if n.pair.Covers(int(i), n.chosen) {
				return 1
			}
		}
	}
	return 0
}

// GoodFactor returns 1: the sampler is 1-good like Natural.
func (n *NaturalIndexed) GoodFactor() float64 { return 1 }
