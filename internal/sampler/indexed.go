package sampler

import (
	"cqabench/internal/mt"
	"cqabench/internal/synopsis"
)

// firstIndex is an inverted index on each image's first member: an image
// H can cover a database I only if I keeps H's first (block, member)
// choice (images are canonically sorted, so "first" is well defined).
// Instead of scanning every image per draw, an indexed kernel looks up
// the candidate images of each chosen member and verifies only those.
//
// The index is stored as dense slices, not maps, so a lookup in the hot
// loop is two array indexings: blocks lists the distinct first blocks,
// and lists[k][fact] the (ascending) images whose first member is
// (blocks[k], fact). Facts ≥ len(lists[k]) start no image — the builder
// assigns low member ids to facts occurring in images, so these arrays
// stay small even when blocks are huge.
type firstIndex struct {
	blocks []int32
	lists  [][][]int32
}

func newFirstIndex(flat *synopsis.FlatImages) *firstIndex {
	ix := &firstIndex{}
	pos := make(map[int32]int)
	n := flat.NumImages()
	for i := 0; i < n; i++ {
		first := flat.Image(i)[0]
		k, ok := pos[first.Block]
		if !ok {
			k = len(ix.blocks)
			pos[first.Block] = k
			ix.blocks = append(ix.blocks, first.Block)
			ix.lists = append(ix.lists, nil)
		}
		for int(first.Fact) >= len(ix.lists[k]) {
			ix.lists[k] = append(ix.lists[k], nil)
		}
		ix.lists[k][first.Fact] = append(ix.lists[k][first.Fact], int32(i))
	}
	return ix
}

// NaturalIndexed is SampleNatural accelerated by the first-member index:
// same distribution, expected value, and PRNG stream consumption as
// Natural. The win appears on low-coverage synopses with many images
// over large blocks, where the plain scan rejects all |H| images per
// draw while the index visits Σ_b |H_b|/size(b) candidates in
// expectation; the plain scan stays faster on small synopses where its
// early exit dominates (SelectKernel encodes the crossover).
type NaturalIndexed struct {
	sizes  []int32
	flat   *synopsis.FlatImages
	chosen []int32
	ix     *firstIndex
}

// NewNaturalIndexed builds the indexed sampler. It is a drop-in
// replacement for NewNatural.
func NewNaturalIndexed(pair *synopsis.Admissible) *NaturalIndexed {
	flat := pair.Flatten()
	return &NaturalIndexed{
		sizes:  pair.BlockSizes,
		flat:   flat,
		chosen: make([]int32, pair.NumBlocks()),
		ix:     newFirstIndex(flat),
	}
}

// Sample draws I ∈ db(B) uniformly and returns 1 if some image covers it.
func (n *NaturalIndexed) Sample(src *mt.Source) float64 { return n.sample(src) }

func (n *NaturalIndexed) sample(src *mt.Source) float64 {
	for b, sz := range n.sizes {
		n.chosen[b] = int32(src.Intn(int(sz)))
	}
	for k, b := range n.ix.blocks {
		lists := n.ix.lists[k]
		f := n.chosen[b]
		if int(f) >= len(lists) {
			continue
		}
		for _, i := range lists[f] {
			if n.flat.Covers(int(i), n.chosen) {
				return 1
			}
		}
	}
	return 0
}

// SampleBatch fills dst with len(dst) consecutive draws.
func (n *NaturalIndexed) SampleBatch(src *mt.Source, dst []float64) {
	for i := range dst {
		dst[i] = n.sample(src)
	}
}

// GoodFactor returns 1: the sampler is 1-good like Natural.
func (n *NaturalIndexed) GoodFactor() float64 { return 1 }

// KLIndexed is the KL sampler accelerated by the first-member index: any
// j < i with H_j ⊆ I must have its first member kept in I, so only the
// candidate images of the chosen members are verified instead of
// scanning every j < i. Identical distribution, values, and PRNG stream
// consumption as KL.
type KLIndexed struct {
	*Symbolic
	ix *firstIndex
}

// NewKLIndexed builds the indexed Karp–Luby sampler. It is a drop-in
// replacement for NewKL.
func NewKLIndexed(pair *synopsis.Admissible) *KLIndexed {
	s := NewSymbolic(pair)
	return &KLIndexed{Symbolic: s, ix: newFirstIndex(s.flat)}
}

// Sample draws (i, I) from S• and returns 1 iff no j < i has H_j ⊆ I.
func (k *KLIndexed) Sample(src *mt.Source) float64 { return k.sample(src) }

func (k *KLIndexed) sample(src *mt.Source) float64 {
	i := int32(k.Draw(src))
	for kk, b := range k.ix.blocks {
		lists := k.ix.lists[kk]
		f := k.chosen[b]
		if int(f) >= len(lists) {
			continue
		}
		// Candidate lists are ascending: stop at the first j ≥ i.
		for _, j := range lists[f] {
			if j >= i {
				break
			}
			if k.flat.Covers(int(j), k.chosen) {
				return 0
			}
		}
	}
	return 1
}

// SampleBatch fills dst with len(dst) consecutive draws.
func (k *KLIndexed) SampleBatch(src *mt.Source, dst []float64) {
	for i := range dst {
		dst[i] = k.sample(src)
	}
}

// GoodFactor returns |db(B)|/|S•|, as for KL.
func (k *KLIndexed) GoodFactor() float64 { return 1 / k.weight }

// KLMIndexed is the KLM sampler accelerated by the first-member index:
// the covering count k = |{j : H_j ⊆ I}| is taken over the candidate
// images of the chosen members — every covering image's first member is
// kept in I, and each image is keyed by exactly one first member, so the
// candidate walk counts each covering image exactly once instead of
// scanning all |H|. Identical distribution, values, and PRNG stream
// consumption as KLM.
type KLMIndexed struct {
	*Symbolic
	ix *firstIndex
}

// NewKLMIndexed builds the indexed Karp–Luby–Madras sampler. It is a
// drop-in replacement for NewKLM.
func NewKLMIndexed(pair *synopsis.Admissible) *KLMIndexed {
	s := NewSymbolic(pair)
	return &KLMIndexed{Symbolic: s, ix: newFirstIndex(s.flat)}
}

// Sample draws (i, I) from S• and returns 1/k with k = |{j : H_j ⊆ I}|
// (k ≥ 1: the drawn image's own first member is kept by construction).
func (k *KLMIndexed) Sample(src *mt.Source) float64 { return k.sample(src) }

func (k *KLMIndexed) sample(src *mt.Source) float64 {
	k.Draw(src)
	cnt := 0
	for kk, b := range k.ix.blocks {
		lists := k.ix.lists[kk]
		f := k.chosen[b]
		if int(f) >= len(lists) {
			continue
		}
		for _, j := range lists[f] {
			if k.flat.Covers(int(j), k.chosen) {
				cnt++
			}
		}
	}
	return 1 / float64(cnt)
}

// SampleBatch fills dst with len(dst) consecutive draws.
func (k *KLMIndexed) SampleBatch(src *mt.Source, dst []float64) {
	for i := range dst {
		dst[i] = k.sample(src)
	}
}

// GoodFactor returns |db(B)|/|S•|, as for KLM.
func (k *KLMIndexed) GoodFactor() float64 { return 1 / k.weight }
