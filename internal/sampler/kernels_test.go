package sampler

import (
	"testing"
	"testing/quick"

	"cqabench/internal/mt"
	"cqabench/internal/synopsis"
)

// The indexed KL kernel must match the plain one draw for draw: coverage
// checks consume no randomness, so both kernels walk the same PRNG stream.
func TestKLIndexedMatchesPlain(t *testing.T) {
	pair := testPair(t)
	plain := NewKL(pair)
	indexed := NewKLIndexed(pair)
	s1, s2 := mt.New(81), mt.New(81)
	for i := 0; i < 20000; i++ {
		a, b := plain.Sample(s1), indexed.Sample(s2)
		if a != b {
			t.Fatalf("draw %d: plain %v vs indexed %v", i, a, b)
		}
	}
	if indexed.GoodFactor() != plain.GoodFactor() {
		t.Fatal("indexed KL must share the plain kernel's goodness")
	}
}

// Likewise for KLM: the reciprocal cover counts must agree exactly.
func TestKLMIndexedMatchesPlain(t *testing.T) {
	pair := testPair(t)
	plain := NewKLM(pair)
	indexed := NewKLMIndexed(pair)
	s1, s2 := mt.New(82), mt.New(82)
	for i := 0; i < 20000; i++ {
		a, b := plain.Sample(s1), indexed.Sample(s2)
		if a != b {
			t.Fatalf("draw %d: plain %v vs indexed %v", i, a, b)
		}
	}
	if indexed.GoodFactor() != plain.GoodFactor() {
		t.Fatal("indexed KLM must share the plain kernel's goodness")
	}
}

// Property: plain and indexed kernels agree draw for draw on random pairs
// for every scheme.
func TestIndexedKernelsProperty(t *testing.T) {
	f := func(seed []byte) bool {
		pair := pairFromSeed(seed)
		if pair == nil {
			return true
		}
		kernels := []struct {
			plain, indexed Sampler
		}{
			{NewNatural(pair), NewNaturalIndexed(pair)},
			{NewKL(pair), NewKLIndexed(pair)},
			{NewKLM(pair), NewKLMIndexed(pair)},
		}
		for _, k := range kernels {
			s1, s2 := mt.New(91), mt.New(91)
			for i := 0; i < 2000; i++ {
				if k.plain.Sample(s1) != k.indexed.Sample(s2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Sampler is the minimal draw interface the kernels share (mirrors
// estimator.Sampler without importing it, to avoid a test-only cycle).
type Sampler interface {
	Sample(src *mt.Source) float64
}

type batchSampler interface {
	Sampler
	SampleBatch(src *mt.Source, dst []float64)
}

// Every kernel's SampleBatch must be byte-identical to the same number of
// one-at-a-time Sample calls: same values, same stream consumption
// (checked by comparing the sources' subsequent output), across uneven
// batch sizes.
func TestSampleBatchMatchesSequential(t *testing.T) {
	pairs := map[string]*synopsis.Admissible{
		"small": testPair(t),
		"huge":  hugePair(),
	}
	for pname, pair := range pairs {
		kernels := map[string]func() batchSampler{
			"Natural":        func() batchSampler { return NewNatural(pair) },
			"NaturalIndexed": func() batchSampler { return NewNaturalIndexed(pair) },
			"KL":             func() batchSampler { return NewKL(pair) },
			"KLIndexed":      func() batchSampler { return NewKLIndexed(pair) },
			"KLM":            func() batchSampler { return NewKLM(pair) },
			"KLMIndexed":     func() batchSampler { return NewKLMIndexed(pair) },
		}
		for kname, mk := range kernels {
			t.Run(pname+"/"+kname, func(t *testing.T) {
				seqS, batS := mk(), mk()
				seqSrc, batSrc := mt.New(17), mt.New(17)
				// Uneven sizes exercise batch-boundary handling.
				for _, sz := range []int{1, 7, 256, 3, 100, 1} {
					want := make([]float64, sz)
					for i := range want {
						want[i] = seqS.Sample(seqSrc)
					}
					got := make([]float64, sz)
					batS.SampleBatch(batSrc, got)
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("batch size %d draw %d: sequential %v vs batch %v", sz, i, want[i], got[i])
						}
					}
				}
				// Stream positions must coincide afterwards.
				for i := 0; i < 8; i++ {
					if a, b := seqSrc.Uint64(), batSrc.Uint64(); a != b {
						t.Fatalf("PRNG streams diverged after batching: %x vs %x", a, b)
					}
				}
			})
		}
	}
}

// The selector must be deterministic and pick the indexed kernel exactly
// where the shape model says it wins.
func TestSelectKernel(t *testing.T) {
	// Tiny pair: always plain, the index cannot amortize.
	if k := SelectKernel(testPair(t)); k != Plain {
		t.Fatalf("small pair selected %v, want Plain", k)
	}
	// Huge low-coverage pair: candidate verification is far cheaper than
	// scanning 3000 images.
	if k := SelectKernel(hugePair()); k != Indexed {
		t.Fatalf("huge pair selected %v, want Indexed", k)
	}
	// Determinism: repeated calls agree.
	p := hugePair()
	first := SelectKernel(p)
	for i := 0; i < 5; i++ {
		if SelectKernel(p) != first {
			t.Fatal("SelectKernel not deterministic")
		}
	}
}

func TestKernelString(t *testing.T) {
	if Plain.String() != "plain" || Indexed.String() != "indexed" {
		t.Fatalf("kernel names: %q, %q", Plain, Indexed)
	}
}

func BenchmarkKLIndexedSample(b *testing.B) {
	s := NewKLIndexed(benchPair())
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkKLMIndexedSample(b *testing.B) {
	s := NewKLMIndexed(benchPair())
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkKLSampleHuge(b *testing.B) {
	s := NewKL(hugePair())
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkKLIndexedSampleHuge(b *testing.B) {
	s := NewKLIndexed(hugePair())
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkKLMSampleHuge(b *testing.B) {
	s := NewKLM(hugePair())
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkKLMIndexedSampleHuge(b *testing.B) {
	s := NewKLMIndexed(hugePair())
	src := mt.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(src)
	}
}

func BenchmarkSampleBatchHuge(b *testing.B) {
	kernels := map[string]batchSampler{
		"NaturalIndexed": NewNaturalIndexed(hugePair()),
		"KLIndexed":      NewKLIndexed(hugePair()),
		"KLMIndexed":     NewKLMIndexed(hugePair()),
	}
	for name, s := range kernels {
		b.Run(name, func(b *testing.B) {
			src := mt.New(1)
			buf := make([]float64, 256)
			b.ReportAllocs()
			for i := 0; i < b.N; i += len(buf) {
				s.SampleBatch(src, buf)
			}
		})
	}
}
