package benchtrack

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/obs"
	"cqabench/internal/obs/manifest"
)

func TestMedianAndMAD(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Errorf("empty median: %g", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median: %g", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median: %g", got)
	}
	// MAD of {1,2,3,4,100}: median 3, deviations {2,1,0,1,97}, MAD 1.
	if got := MAD([]float64{1, 2, 3, 4, 100}); got != 1 {
		t.Errorf("MAD: got %g, want 1 (robust to the outlier)", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median sorted its input in place")
	}
}

func TestTiers(t *testing.T) {
	for _, name := range TierNames() {
		specs, err := Tier(name)
		if err != nil || len(specs) == 0 {
			t.Errorf("tier %q: %v (%d specs)", name, err, len(specs))
		}
		for _, s := range specs {
			if s.Name == "" || s.Family == "" || s.SF <= 0 {
				t.Errorf("tier %q has underspecified spec %+v", name, s)
			}
		}
	}
	if _, err := Tier("bogus"); err == nil {
		t.Error("unknown tier accepted")
	}
}

// syntheticResult builds a Result whose every entry has the given median
// with tight, slightly varied runs around it.
func syntheticResult(tier string, medians map[string]int64) Result {
	r := Result{
		Manifest: manifest.Collect("test", nil),
		Tier:     tier,
		K:        5,
	}
	for key, med := range medians {
		i := strings.LastIndex(key, "/")
		scenario, scheme := key[:i], key[i+1:]
		jitter := med / 100 // 1% run-to-run noise
		e := Entry{
			Scenario:    scenario,
			Scheme:      scheme,
			MedianNanos: med,
			RunsNanos: []int64{
				med - 2*jitter, med - jitter, med, med + jitter, med + 2*jitter,
			},
			SamplesPerOp: 1000,
			PrepNanos:    med / 10,
		}
		r.Entries = append(r.Entries, e)
	}
	return r
}

// TestCompareRegressionDetection is the -compare acceptance scenario: an
// identical re-run passes while a synthetic ≥2× regression is flagged.
func TestCompareRegressionDetection(t *testing.T) {
	base := syntheticResult("small", map[string]int64{
		"noise-j1-p04/KLM": 50_000_000, // 50ms
		"noise-j1-p04/Nat": 80_000_000,
	})

	// Identical re-run: zero deltas, zero regressions.
	rep := Compare(base, base, CompareOptions{})
	if got := rep.Regressions(); got != 0 {
		t.Fatalf("identical re-run flagged %d regressions:\n%s", got, rep)
	}
	if len(rep.Deltas) != 2 || len(rep.MissingInCurrent) != 0 || len(rep.NewInCurrent) != 0 {
		t.Fatalf("identical re-run report: %+v", rep)
	}

	// Small jitter (+3%) stays under the MAD/MinRel threshold.
	jittered := syntheticResult("small", map[string]int64{
		"noise-j1-p04/KLM": 51_500_000,
		"noise-j1-p04/Nat": 82_400_000,
	})
	if got := Compare(base, jittered, CompareOptions{}).Regressions(); got != 0 {
		t.Errorf("3%% jitter flagged as regression")
	}

	// A 2× inflation on one entry is a regression; the other stays ok.
	inflated := syntheticResult("small", map[string]int64{
		"noise-j1-p04/KLM": 100_000_000, // 2×
		"noise-j1-p04/Nat": 80_000_000,
	})
	rep = Compare(base, inflated, CompareOptions{})
	if got := rep.Regressions(); got != 1 {
		t.Fatalf("2x inflation: %d regressions, want 1:\n%s", got, rep)
	}
	for _, d := range rep.Deltas {
		if d.Scheme == "KLM" && !d.Regressed {
			t.Errorf("inflated entry not flagged: %+v", d)
		}
		if d.Scheme == "Nat" && d.Regressed {
			t.Errorf("unchanged entry flagged: %+v", d)
		}
	}

	// An improvement is never a regression.
	improved := syntheticResult("small", map[string]int64{
		"noise-j1-p04/KLM": 20_000_000,
		"noise-j1-p04/Nat": 40_000_000,
	})
	if got := Compare(base, improved, CompareOptions{}).Regressions(); got != 0 {
		t.Errorf("improvement flagged as regression")
	}
}

func TestCompareMissingAndNewEntries(t *testing.T) {
	base := syntheticResult("small", map[string]int64{"noise-j1-p04/KLM": 50_000_000})
	cur := syntheticResult("small", map[string]int64{"noise-j1-p08/Nat": 60_000_000})
	rep := Compare(base, cur, CompareOptions{})
	if len(rep.MissingInCurrent) != 1 || rep.MissingInCurrent[0] != "noise-j1-p04/KLM" {
		t.Errorf("missing: %v", rep.MissingInCurrent)
	}
	if len(rep.NewInCurrent) != 1 || rep.NewInCurrent[0] != "noise-j1-p08/Nat" {
		t.Errorf("new: %v", rep.NewInCurrent)
	}
}

// TestCompareNoiseThresholdScalesWithMAD: noisy baseline runs widen the
// threshold so a median shift inside the noise band does not flag.
func TestCompareNoiseThresholdScalesWithMAD(t *testing.T) {
	base := syntheticResult("small", map[string]int64{"noise-j1-p04/KLM": 50_000_000})
	// Make the baseline very noisy: ±40% runs.
	base.Entries[0].RunsNanos = []int64{30_000_000, 40_000_000, 50_000_000, 60_000_000, 70_000_000}
	cur := syntheticResult("small", map[string]int64{"noise-j1-p04/KLM": 70_000_000})
	rep := Compare(base, cur, CompareOptions{})
	if rep.Regressions() != 0 {
		t.Errorf("shift within the baseline's own noise band flagged:\n%s", rep)
	}
}

func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "BENCH_small.json")
	r := syntheticResult("small", map[string]int64{"noise-j1-p04/KLM": 50_000_000})
	if err := WriteResult(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tier != r.Tier || back.K != r.K || len(back.Entries) != 1 {
		t.Errorf("round trip: %+v", back)
	}
	if back.Entries[0].MedianNanos != 50_000_000 || len(back.Entries[0].RunsNanos) != 5 {
		t.Errorf("entry round trip: %+v", back.Entries[0])
	}
	if back.Manifest.GoVersion == "" {
		t.Error("manifest lost in round trip")
	}
	if _, err := ReadResult(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestHistoryRoundTrip is the bench_history.jsonl append/parse test:
// multiple appends accumulate and parse back in order.
func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "bench_history.jsonl")
	r1 := syntheticResult("smoke", map[string]int64{"noise-j1-p04/KLM": 50_000_000})
	r2 := syntheticResult("smoke", map[string]int64{"noise-j1-p04/KLM": 52_000_000})
	r2.Manifest.Start = r1.Manifest.Start.Add(time.Hour)
	for _, r := range []Result{r1, r2} {
		if err := AppendHistory(path, HistoryFromResult(r)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if !recs[1].Time.Equal(recs[0].Time.Add(time.Hour)) {
		t.Errorf("record order/time lost: %v then %v", recs[0].Time, recs[1].Time)
	}
	for i, rec := range recs {
		if rec.Tier != "smoke" || rec.K != 5 || len(rec.Entries) != 1 {
			t.Errorf("record %d: %+v", i, rec)
		}
		e := rec.Entries[0]
		if e.Scenario != "noise-j1-p04" || e.Scheme != "KLM" || e.MedianNanos == 0 {
			t.Errorf("record %d entry: %+v", i, e)
		}
	}
}

// TestRunSmokeTier exercises the real runner end to end on the smallest
// tier with one scheme and K=2: entries carry K runs, a positive median
// and prep time, and the trace span captures the bench structure.
func TestRunSmokeTier(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a TPC-H scenario lab")
	}
	specs, err := Tier("smoke")
	if err != nil {
		t.Fatal(err)
	}
	root := obs.NewSpan("bench.test")
	var progressed int
	res, err := Run(specs, RunConfig{
		Tier:     "smoke",
		K:        2,
		Timeout:  30 * time.Second,
		Opts:     cqa.DefaultOptions(),
		Schemes:  []cqa.Scheme{cqa.KLM},
		Trace:    root,
		Progress: func(Entry) { progressed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if len(res.Entries) != 2 || progressed != 2 {
		t.Fatalf("entries=%d progressed=%d, want 2/2 (sequential + pw4 smoke specs)", len(res.Entries), progressed)
	}
	e := res.Entries[0]
	if e.Scenario != "noise-j1-p04" || e.Scheme != "KLM" {
		t.Errorf("entry identity: %+v", e)
	}
	// The parallel twin runs the same scenario through the substream
	// pool; it draws the same worker-invariant sample counts.
	e2 := res.Entries[1]
	if e2.Scenario != "noise-j1-p04-pw4" || e2.Scheme != "KLM" {
		t.Errorf("parallel entry identity: %+v", e2)
	}
	if len(e2.RunsNanos) != 2 || e2.MedianNanos <= 0 || e2.SamplesPerOp <= 0 {
		t.Errorf("parallel entry measurements: %+v", e2)
	}
	if len(e.RunsNanos) != 2 || e.MedianNanos <= 0 || e.PrepNanos <= 0 {
		t.Errorf("entry measurements: %+v", e)
	}
	med := Median(nanosToFloats(e.RunsNanos))
	if math.Abs(med-float64(e.MedianNanos)) > 1 {
		t.Errorf("median %d does not match runs %v", e.MedianNanos, e.RunsNanos)
	}
	if e.SamplesPerOp <= 0 {
		t.Errorf("samples/op: %g", e.SamplesPerOp)
	}
	if res.Manifest.Config["tier"] != "smoke" || res.Manifest.GoVersion == "" {
		t.Errorf("manifest: %+v", res.Manifest)
	}
	data := root.Data()
	if len(data.Children) != 2 || data.Children[0].Name != "bench:noise-j1-p04" ||
		data.Children[1].Name != "bench:noise-j1-p04-pw4" {
		t.Fatalf("trace roots: %+v", data.Children)
	}
	names := map[string]int{}
	for _, c := range data.Children[0].Children {
		names[c.Name]++
	}
	if names["synopsis.build"] != 1 || names["run:KLM"] != 2 {
		t.Errorf("bench trace children: %v", names)
	}
}
