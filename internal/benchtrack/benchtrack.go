// Package benchtrack is the continuous-bench subsystem: it runs a fixed
// tier of small scenarios K times per scheme, records the median-of-K
// latency, samples/op and preprocessing time, persists the result as a
// provenance-stamped BENCH_<tier>.json plus an append-only
// results/bench_history.jsonl, and compares a run against a baseline
// with a MAD-based noise threshold so a real perf regression fails CI
// while run-to-run jitter does not.
package benchtrack

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"cqabench/internal/obs/manifest"
)

// Spec is one bench scenario: a scenario family pinned to a single
// level, small enough to run K times per scheme in seconds.
type Spec struct {
	Name    string  `json:"name"`
	Family  string  `json:"family"` // noise, balance or joins
	SF      float64 `json:"sf"`     // TPC-H scale factor
	Noise   float64 `json:"noise"`  // fixed noise (balance, joins families)
	Balance float64 `json:"balance"`
	Joins   int     `json:"joins"` // fixed join level (noise, balance families)
	Level   float64 `json:"level"` // the varied parameter's single value
	// SamplingWorkers, when ≥ 2, runs the scenario's estimates through
	// the intra-query substream pool (cqa.Options.SamplingWorkers); 0/1
	// is the sequential path. Parallel entries are directly comparable
	// to their sequential twin: same seed, worker-invariant results.
	SamplingWorkers int `json:"sampling_workers,omitempty"`
}

// Tier resolves a named tier to its scenario list. Tiers are fixed so
// bench results stay comparable across commits.
func Tier(name string) ([]Spec, error) {
	switch name {
	case "smoke":
		// The smallest tier: one scenario, suitable for CI smoke jobs.
		return []Spec{
			{Name: "noise-j1-p04", Family: "noise", SF: 0.0002, Joins: 1, Level: 0.4},
			{Name: "noise-j1-p04-pw4", Family: "noise", SF: 0.0002, Joins: 1, Level: 0.4, SamplingWorkers: 4},
		}, nil
	case "small":
		return []Spec{
			{Name: "noise-j1-p04", Family: "noise", SF: 0.0002, Joins: 1, Level: 0.4},
			{Name: "noise-j1-p08", Family: "noise", SF: 0.0002, Joins: 1, Level: 0.8},
			{Name: "balance-j1-b05", Family: "balance", SF: 0.0002, Noise: 0.5, Joins: 1, Level: 0.5},
		}, nil
	default:
		return nil, fmt.Errorf("benchtrack: unknown tier %q (want one of %v)", name, TierNames())
	}
}

// TierNames lists the defined tiers, smallest first.
func TierNames() []string { return []string{"smoke", "small"} }

// Entry is the bench record of one (scenario, scheme): all K per-run
// latencies (so a later comparison can estimate this entry's own noise),
// their median, and the per-run work/prep figures.
type Entry struct {
	Scenario     string  `json:"scenario"`
	Scheme       string  `json:"scheme"`
	RunsNanos    []int64 `json:"runs_ns"`
	MedianNanos  int64   `json:"median_ns"`
	SamplesPerOp float64 `json:"samples_per_op"`
	PrepNanos    int64   `json:"prep_ns"`
	Timeouts     int     `json:"timeouts,omitempty"`
	// PrepSource records where the scenario's synopses came from:
	// "build" (computed), "load" (synopsis cache) or "mixed". Empty in
	// files written before the cache existed.
	PrepSource string `json:"prep_source,omitempty"`
}

// Result is one bench invocation: provenance manifest, tier, repetition
// count, and one entry per (scenario, scheme). Serialized as
// BENCH_<tier>.json.
type Result struct {
	Manifest manifest.RunManifest `json:"manifest"`
	Tier     string               `json:"tier"`
	K        int                  `json:"k"`
	Entries  []Entry              `json:"entries"`
}

// Key returns the (scenario, scheme) identity entries are matched by.
func (e Entry) Key() string { return e.Scenario + "/" + e.Scheme }

// WriteResult writes r as indented JSON, creating parent directories.
func WriteResult(path string, r Result) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadResult parses a BENCH_<tier>.json file.
func ReadResult(path string) (Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Result{}, err
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return Result{}, fmt.Errorf("benchtrack: %s: %w", path, err)
	}
	return r, nil
}

// Median returns the median of xs (0 when empty), interpolating the
// middle pair for even lengths. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MAD returns the median absolute deviation of xs — the robust spread
// estimate the regression threshold is built from. Multiply by 1.4826
// for a consistent estimate of a normal σ.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return Median(devs)
}

func nanosToFloats(ns []int64) []float64 {
	out := make([]float64, len(ns))
	for i, n := range ns {
		out[i] = float64(n)
	}
	return out
}
