package benchtrack

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// HistoryEntry is the per-(scenario, scheme) slice of a history record:
// the medians only, without the raw runs, so the history file stays
// compact over hundreds of commits.
type HistoryEntry struct {
	Scenario     string  `json:"scenario"`
	Scheme       string  `json:"scheme"`
	MedianNanos  int64   `json:"median_ns"`
	SamplesPerOp float64 `json:"samples_per_op"`
	PrepNanos    int64   `json:"prep_ns"`
	Timeouts     int     `json:"timeouts,omitempty"`
}

// HistoryRecord is one line of results/bench_history.jsonl: the bench
// trajectory of the repository, one record per bench invocation,
// attributable via git sha and timestamp.
type HistoryRecord struct {
	Time     time.Time      `json:"time"`
	GitSHA   string         `json:"git_sha,omitempty"`
	GitDirty bool           `json:"git_dirty,omitempty"`
	Host     string         `json:"host,omitempty"`
	Tier     string         `json:"tier"`
	K        int            `json:"k"`
	Entries  []HistoryEntry `json:"entries"`
}

// HistoryFromResult projects a bench result onto its history line.
func HistoryFromResult(r Result) HistoryRecord {
	rec := HistoryRecord{
		Time:     r.Manifest.Start,
		GitSHA:   r.Manifest.GitSHA,
		GitDirty: r.Manifest.GitDirty,
		Host:     r.Manifest.Host,
		Tier:     r.Tier,
		K:        r.K,
	}
	for _, e := range r.Entries {
		rec.Entries = append(rec.Entries, HistoryEntry{
			Scenario:     e.Scenario,
			Scheme:       e.Scheme,
			MedianNanos:  e.MedianNanos,
			SamplesPerOp: e.SamplesPerOp,
			PrepNanos:    e.PrepNanos,
			Timeouts:     e.Timeouts,
		})
	}
	return rec
}

// AppendHistory appends rec as one compact JSON line, creating the file
// and parent directories on first use. Append-only by design: the
// history is the repository's long-term perf trajectory.
func AppendHistory(path string, rec HistoryRecord) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadHistory parses a bench_history.jsonl file back into its records,
// in file order (oldest first).
func ReadHistory(path string) ([]HistoryRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec HistoryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("benchtrack: %s line %d: %w", path, line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
