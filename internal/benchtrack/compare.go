package benchtrack

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// CompareOptions tunes the regression detector. The threshold for one
// (scenario, scheme) is
//
//	max(MADFactor · 1.4826 · max(MAD(baseline runs), MAD(current runs)),
//	    MinRel · baseline median,
//	    MinAbs)
//
// — a regression is flagged when the current median exceeds the baseline
// median by more than that. The MAD term adapts to the entry's own
// run-to-run jitter; MinRel/MinAbs put a floor under entries whose K
// runs happened to be suspiciously tight, so sub-millisecond wobble on
// tiny scenarios never fails CI.
type CompareOptions struct {
	MADFactor float64       // default 5
	MinRel    float64       // default 0.25 (25% of the baseline median)
	MinAbs    time.Duration // default 5ms
}

// DefaultCompareOptions returns the CI-suitable defaults.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{MADFactor: 5, MinRel: 0.25, MinAbs: 5 * time.Millisecond}
}

func (o CompareOptions) withDefaults() CompareOptions {
	def := DefaultCompareOptions()
	if o.MADFactor <= 0 {
		o.MADFactor = def.MADFactor
	}
	if o.MinRel <= 0 {
		o.MinRel = def.MinRel
	}
	if o.MinAbs <= 0 {
		o.MinAbs = def.MinAbs
	}
	return o
}

// Delta is the comparison of one (scenario, scheme) across two runs.
type Delta struct {
	Scenario       string  `json:"scenario"`
	Scheme         string  `json:"scheme"`
	BaselineNanos  int64   `json:"baseline_ns"`
	CurrentNanos   int64   `json:"current_ns"`
	ThresholdNanos int64   `json:"threshold_ns"` // allowed increase over baseline
	Ratio          float64 `json:"ratio"`        // current / baseline
	Regressed      bool    `json:"regressed"`
}

// Report is the outcome of comparing a current bench result against a
// baseline.
type Report struct {
	Deltas []Delta `json:"deltas"`
	// MissingInCurrent lists baseline entries the current run lacks —
	// a silently dropped scenario must not read as "no regression".
	MissingInCurrent []string `json:"missing_in_current,omitempty"`
	// NewInCurrent lists current entries with no baseline counterpart.
	NewInCurrent []string `json:"new_in_current,omitempty"`
}

// Regressions counts the flagged deltas.
func (r Report) Regressions() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}

// Compare matches entries by (scenario, scheme) and flags regressions
// beyond the MAD-based noise threshold.
func Compare(baseline, current Result, opts CompareOptions) Report {
	opts = opts.withDefaults()
	base := make(map[string]Entry, len(baseline.Entries))
	for _, e := range baseline.Entries {
		base[e.Key()] = e
	}
	var rep Report
	seen := make(map[string]bool, len(current.Entries))
	for _, cur := range current.Entries {
		b, ok := base[cur.Key()]
		if !ok {
			rep.NewInCurrent = append(rep.NewInCurrent, cur.Key())
			continue
		}
		seen[cur.Key()] = true
		noise := 1.4826 * math.Max(MAD(nanosToFloats(b.RunsNanos)), MAD(nanosToFloats(cur.RunsNanos)))
		thr := math.Max(opts.MADFactor*noise, opts.MinRel*float64(b.MedianNanos))
		thr = math.Max(thr, float64(opts.MinAbs.Nanoseconds()))
		d := Delta{
			Scenario:       cur.Scenario,
			Scheme:         cur.Scheme,
			BaselineNanos:  b.MedianNanos,
			CurrentNanos:   cur.MedianNanos,
			ThresholdNanos: int64(thr),
			Regressed:      float64(cur.MedianNanos-b.MedianNanos) > thr,
		}
		if b.MedianNanos > 0 {
			d.Ratio = float64(cur.MedianNanos) / float64(b.MedianNanos)
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, e := range baseline.Entries {
		if !seen[e.Key()] {
			rep.MissingInCurrent = append(rep.MissingInCurrent, e.Key())
		}
	}
	return rep
}

// String renders the report as an aligned table, one row per delta, with
// regressions marked.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-8s %14s %14s %8s %14s  %s\n",
		"scenario", "scheme", "baseline", "current", "ratio", "threshold", "verdict")
	for _, d := range r.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(&b, "%-24s %-8s %14s %14s %7.2fx %14s  %s\n",
			d.Scenario, d.Scheme,
			time.Duration(d.BaselineNanos).Round(time.Microsecond),
			time.Duration(d.CurrentNanos).Round(time.Microsecond),
			d.Ratio,
			"+"+time.Duration(d.ThresholdNanos).Round(time.Microsecond).String(),
			verdict)
	}
	for _, k := range r.MissingInCurrent {
		fmt.Fprintf(&b, "%-24s MISSING in current run\n", k)
	}
	for _, k := range r.NewInCurrent {
		fmt.Fprintf(&b, "%-24s new (no baseline)\n", k)
	}
	return b.String()
}
