package benchtrack

import (
	"errors"
	"fmt"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/estimator"
	"cqabench/internal/obs"
	"cqabench/internal/obs/manifest"
	"cqabench/internal/scenario"
	"cqabench/internal/syncache"
	"cqabench/internal/synopsis"
)

// RunConfig controls one bench invocation.
type RunConfig struct {
	// Tier labels the result (the spec list is passed separately so
	// callers can subset it).
	Tier string
	// K is the repetition count per (scenario, scheme); medians are
	// taken over K runs. Defaults to 5.
	K int
	// Timeout bounds one scheme run over one scenario; 0 means none.
	Timeout time.Duration
	// Opts carries ε/δ/seed for the scheme runs.
	Opts cqa.Options
	// Schemes selects the schemes to bench (default: all four).
	Schemes []cqa.Scheme
	// Trace, if set, is the parent span the bench attributes work under:
	// one "bench:<scenario>" child per spec with synopsis.build and
	// per-run scheme spans below it.
	Trace *obs.Span
	// Progress, if set, is called after every completed (scenario,
	// scheme) entry.
	Progress func(Entry)
	// Cache, if enabled, warms the synopsis store once per spec: the
	// first bench run against a cache builds and persists every
	// synopsis, and later runs load them and measure estimation only —
	// which keeps BENCH_<tier>.json prep figures from polluting the
	// scheme medians with rebuild noise.
	Cache *syncache.Cache
}

// labSeed pins the scenario construction PRNG: bench scenarios must be
// byte-identical across runs or medians would not be comparable.
const labSeed = 1

// Run executes the bench: for every spec, build the scenario workload
// and its synopses once (the prep measurement), then time K runs of
// every scheme over the precomputed synopses. The result carries a
// provenance manifest so BENCH files are attributable.
func Run(specs []Spec, cfg RunConfig) (Result, error) {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	schemes := cfg.Schemes
	if len(schemes) == 0 {
		schemes = cqa.Schemes
	}
	res := Result{Tier: cfg.Tier, K: cfg.K}
	res.Manifest = manifest.Collect("cqabench bench", map[string]string{
		"tier":    cfg.Tier,
		"k":       fmt.Sprint(cfg.K),
		"timeout": cfg.Timeout.String(),
		"eps":     fmt.Sprint(cfg.Opts.Eps),
		"delta":   fmt.Sprint(cfg.Opts.Delta),
		"seed":    fmt.Sprint(cfg.Opts.Seed),
	})

	labs := make(map[float64]*scenario.Lab)
	for _, spec := range specs {
		lab, ok := labs[spec.SF]
		if !ok {
			labCfg := scenario.DefaultConfig()
			labCfg.ScaleFactor = spec.SF
			labCfg.Seed = labSeed
			labCfg.QueriesPerJoin = 1
			var err error
			lab, err = scenario.NewLab(labCfg)
			if err != nil {
				return res, fmt.Errorf("benchtrack: %s: %w", spec.Name, err)
			}
			labs[spec.SF] = lab
		}
		entries, err := runSpec(lab, spec, schemes, cfg)
		if err != nil {
			return res, err
		}
		res.Entries = append(res.Entries, entries...)
	}
	return res, nil
}

func runSpec(lab *scenario.Lab, spec Spec, schemes []cqa.Scheme, cfg RunConfig) ([]Entry, error) {
	w, err := workloadFor(lab, spec)
	if err != nil {
		return nil, fmt.Errorf("benchtrack: %s: %w", spec.Name, err)
	}
	specSpan := cfg.Trace.StartChild("bench:" + spec.Name)
	defer specSpan.End()

	// A spec may pin an intra-query sampling pool; the override lives on
	// the per-spec copy so other specs keep the invocation's default.
	if spec.SamplingWorkers != 0 {
		cfg.Opts.SamplingWorkers = spec.SamplingWorkers
	}

	// Synopses are resolved once and shared across schemes and
	// repetitions, as in the harness; their wall time is the entry's
	// prep figure. With a cache configured, the first run builds and
	// stores them and every later run loads enc(syn) directly, so the
	// prep figure of a warm bench measures decoding, not construction.
	var sets []*synopsis.Set
	prepSource := ""
	prepStart := time.Now()
	buildSpan := specSpan.StartChild("synopsis.resolve")
	for _, pair := range w.Pairs {
		key := ""
		if cfg.Cache.Enabled() {
			key = syncache.PairKey(w, pair)
		}
		pair := pair
		set, source, err := cfg.Cache.Resolve(key, func() (*synopsis.Set, error) {
			return synopsis.Build(pair.DB, pair.Query)
		})
		if err != nil {
			buildSpan.End()
			return nil, fmt.Errorf("benchtrack: %s: %s: %w", spec.Name, pair.Name, err)
		}
		switch {
		case prepSource == "":
			prepSource = string(source)
		case prepSource != string(source):
			prepSource = "mixed"
		}
		sets = append(sets, set)
	}
	buildSpan.End()
	buildSpan.Rename("synopsis." + prepSourceOr(prepSource, "resolve"))
	prep := time.Since(prepStart)

	var out []Entry
	for _, s := range schemes {
		e := Entry{Scenario: spec.Name, Scheme: s.String(), PrepNanos: prep.Nanoseconds(), PrepSource: prepSource}
		var totalSamples int64
		for k := 0; k < cfg.K; k++ {
			elapsed, samples, timedOut, err := oneRun(sets, s, cfg, specSpan)
			if err != nil {
				return nil, fmt.Errorf("benchtrack: %s/%s: %w", spec.Name, s, err)
			}
			if timedOut {
				e.Timeouts++
			}
			e.RunsNanos = append(e.RunsNanos, elapsed.Nanoseconds())
			totalSamples += samples
		}
		e.MedianNanos = int64(Median(nanosToFloats(e.RunsNanos)))
		e.SamplesPerOp = float64(totalSamples) / float64(cfg.K)
		if cfg.Progress != nil {
			cfg.Progress(e)
		}
		out = append(out, e)
	}
	return out, nil
}

// oneRun times one scheme over every pair of the scenario. A run that
// exhausts its budget reports the nominal timeout as its latency and
// zero samples, mirroring the harness's timeout accounting.
func oneRun(sets []*synopsis.Set, s cqa.Scheme, cfg RunConfig, parent *obs.Span) (time.Duration, int64, bool, error) {
	opts := cfg.Opts
	if cfg.Timeout > 0 {
		opts.Budget.Deadline = time.Now().Add(cfg.Timeout)
	}
	runSpan := parent.StartChild("run:" + s.String())
	defer runSpan.End()
	start := time.Now()
	var samples int64
	for _, set := range sets {
		_, stats, err := cqa.ApxAnswersFromSetTraced(set, s, opts, runSpan)
		samples += stats.Samples
		if err != nil {
			if errors.Is(err, estimator.ErrBudget) {
				return cfg.Timeout, 0, true, nil
			}
			return 0, 0, false, err
		}
	}
	return time.Since(start), samples, false, nil
}

// prepSourceOr returns s unless empty, else the fallback.
func prepSourceOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

func workloadFor(lab *scenario.Lab, spec Spec) (*scenario.Workload, error) {
	switch spec.Family {
	case "noise":
		return lab.NoiseScenario(spec.Balance, spec.Joins, []float64{spec.Level})
	case "balance":
		return lab.BalanceScenario(spec.Noise, spec.Joins, []float64{spec.Level})
	case "joins":
		return lab.JoinsScenario(spec.Noise, spec.Balance, []int{int(spec.Level)})
	default:
		return nil, fmt.Errorf("unknown family %q (want noise, balance or joins)", spec.Family)
	}
}
