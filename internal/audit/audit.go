// Package audit calibrates the (ε, δ) guarantee empirically: it replays
// scenario pairs through each approximation scheme — repeatedly, with
// independent seeds — and compares every estimate against the exact
// relative frequency (component-decomposed inclusion–exclusion with a
// knowledge-compilation fallback, Lemma 4.1(3)). The output is a
// calibration report per (scheme, scenario): the empirical error
// distribution, the observed violation rate next to the promised δ, and
// a samples-to-convergence histogram.
//
// The harness's AccuracyReport answers "did one run stay within ε?";
// this package answers the operational question VerdictDB-style systems
// ship beside every approximate answer — "how often does the guarantee
// fail, and by how much, under repeated sampling?". Every estimate also
// feeds the cqa_empirical_error / cqa_guarantee_violations_total /
// cqa_samples_to_convergence metrics, so a live service accumulates the
// same calibration continuously.
package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/estimator"
	"cqabench/internal/mt"
	"cqabench/internal/obs"
	"cqabench/internal/obs/manifest"
	"cqabench/internal/scenario"
	"cqabench/internal/synopsis"
)

// Config parameterizes a calibration run.
type Config struct {
	// Eps and Delta are the guarantee under audit.
	Eps, Delta float64
	// Trials is the number of independent estimations per (scheme, tuple),
	// each with its own deterministic seed. More trials sharpen the
	// observed violation rate (each estimate is one Bernoulli(≤δ) draw).
	Trials int
	// Seed derives every trial's PRNG stream.
	Seed uint64
	// Schemes restricts the audit; nil audits all four.
	Schemes []cqa.Scheme
	// MaxImages bounds the exact computation per entangled component
	// (0 = the synopsis package's default). Tuples whose exact frequency
	// is intractable are skipped and counted.
	MaxImages int
	// Timeout bounds each estimate; timed-out estimates are excluded from
	// the distributions and counted per scheme.
	Timeout time.Duration
	// Registry receives the calibration metrics (nil = obs.Default()).
	Registry *obs.Registry
}

// DefaultConfig returns the paper's guarantee (ε = 0.1, δ = 0.25) with a
// small trial count suitable for smoke calibration.
func DefaultConfig() Config {
	return Config{Eps: 0.1, Delta: 0.25, Trials: 3, Seed: 5489, MaxImages: 22}
}

func (c Config) validate() error {
	if !(c.Eps > 0 && c.Eps < 1) || !(c.Delta > 0 && c.Delta < 1) {
		return fmt.Errorf("audit: require 0 < eps < 1 and 0 < delta < 1 (got eps=%v delta=%v)", c.Eps, c.Delta)
	}
	if c.Trials <= 0 {
		return fmt.Errorf("audit: trials must be positive (got %d)", c.Trials)
	}
	return nil
}

// ErrorDist summarizes a relative-error sample.
type ErrorDist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// SampleBucket is one bin of the samples-to-convergence histogram: the
// number of estimates that converged within Le draws (and more than the
// previous bucket's Le). Bounds are powers of two.
type SampleBucket struct {
	Le    int64 `json:"le"`
	Count int   `json:"count"`
}

// SampleDist summarizes the draws-to-convergence distribution.
type SampleDist struct {
	Min     int64          `json:"min"`
	Max     int64          `json:"max"`
	Mean    float64        `json:"mean"`
	P50     int64          `json:"p50"`
	Buckets []SampleBucket `json:"buckets"`
}

// SchemeCalibration is one scheme's empirical calibration over the
// audited workload.
type SchemeCalibration struct {
	Scheme string `json:"scheme"`
	// Estimates is the number of audited estimates (tuples × trials,
	// minus timeouts).
	Estimates int `json:"estimates"`
	// Violations counts estimates with |a − f| > ε·f: the events the
	// guarantee promises happen with probability at most δ.
	Violations int `json:"violations"`
	// ViolationRate is Violations/Estimates — the observed δ.
	ViolationRate float64 `json:"violation_rate"`
	// TimedOut counts estimates abandoned on the per-estimate budget.
	TimedOut int        `json:"timed_out,omitempty"`
	Error    ErrorDist  `json:"error"`
	Samples  SampleDist `json:"samples"`
}

// Report is a full calibration: the audited guarantee, the workload, and
// one calibration per scheme.
type Report struct {
	Scenario string  `json:"scenario"`
	Eps      float64 `json:"eps"`
	Delta    float64 `json:"delta"`
	Trials   int     `json:"trials"`
	// Tuples is the number of answer tuples with a tractable exact
	// frequency; each contributes Trials estimates per scheme.
	Tuples int `json:"tuples"`
	// SkippedTuples counts tuples excluded because their exact frequency
	// was intractable (or zero, where relative error is undefined).
	SkippedTuples int                 `json:"skipped_tuples,omitempty"`
	Schemes       []SchemeCalibration `json:"schemes"`
}

// schemeAccum collects one scheme's raw observations during a run.
type schemeAccum struct {
	relErrs  []float64
	samples  []int64
	timedOut int
}

// Run audits every configured scheme over the workload. Each tuple with
// a tractable exact frequency is estimated Trials times per scheme, each
// trial on its own deterministic PRNG stream, and every estimate is
// scored against the exact value.
func Run(w *scenario.Workload, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	schemes := cfg.Schemes
	if len(schemes) == 0 {
		schemes = cqa.Schemes
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	rep := &Report{Scenario: w.Name, Eps: cfg.Eps, Delta: cfg.Delta, Trials: cfg.Trials}
	acc := make(map[cqa.Scheme]*schemeAccum, len(schemes))
	for _, s := range schemes {
		acc[s] = &schemeAccum{}
	}

	tupleOrd := uint64(0) // global tuple ordinal, for per-trial seed derivation
	for _, pair := range w.Pairs {
		set, err := synopsis.Build(pair.DB, pair.Query)
		if err != nil {
			return nil, err
		}
		for i := range set.Entries {
			entry := &set.Entries[i]
			ord := tupleOrd
			tupleOrd++
			exact, err := entry.Pair.ExactRatioAuto(cfg.MaxImages, 0)
			if err != nil {
				if errors.Is(err, synopsis.ErrTooLarge) {
					rep.SkippedTuples++
					continue
				}
				return nil, err
			}
			if exact <= 0 {
				// Relative error is undefined at f = 0 (and the schemes
				// only ever see positive-frequency tuples anyway).
				rep.SkippedTuples++
				continue
			}
			rep.Tuples++
			for _, s := range schemes {
				lbl := obs.L("scheme", s.String())
				a := acc[s]
				for trial := 0; trial < cfg.Trials; trial++ {
					opts := cqa.Options{Eps: cfg.Eps, Delta: cfg.Delta, Seed: cfg.Seed}
					if cfg.Timeout > 0 {
						opts.Budget.Deadline = time.Now().Add(cfg.Timeout)
					}
					// Independent deterministic streams: golden-ratio mixing
					// over (tuple, trial), the same construction the parallel
					// sampler uses per tuple.
					src := mt.New(cfg.Seed + ord*0x9E3779B97F4A7C15 + uint64(trial)*0xBF58476D1CE4E5B9)
					freq, samples, err := cqa.ApxRelativeFreq(entry.Pair, s, opts, src)
					if err != nil {
						if errors.Is(err, estimator.ErrBudget) {
							a.timedOut++
							continue
						}
						return nil, fmt.Errorf("audit: %s on %s tuple %d: %w", s, pair.Name, i, err)
					}
					relErr := math.Abs(freq-exact) / exact
					a.relErrs = append(a.relErrs, relErr)
					a.samples = append(a.samples, samples)
					reg.Histogram("cqa_empirical_error", lbl).Observe(relErr)
					reg.Histogram("cqa_samples_to_convergence", lbl).Observe(float64(samples))
					if relErr > cfg.Eps+1e-12 {
						reg.Counter("cqa_guarantee_violations_total", lbl).Inc()
					}
				}
			}
		}
	}

	for _, s := range schemes {
		rep.Schemes = append(rep.Schemes, calibrate(s, acc[s], cfg.Eps))
	}
	sort.Slice(rep.Schemes, func(i, j int) bool { return rep.Schemes[i].Scheme < rep.Schemes[j].Scheme })
	return rep, nil
}

// calibrate reduces one scheme's raw observations to its calibration.
func calibrate(s cqa.Scheme, a *schemeAccum, eps float64) SchemeCalibration {
	cal := SchemeCalibration{Scheme: s.String(), Estimates: len(a.relErrs), TimedOut: a.timedOut}
	if len(a.relErrs) == 0 {
		return cal
	}
	errs := append([]float64(nil), a.relErrs...)
	sort.Float64s(errs)
	var errSum float64
	for _, e := range errs {
		errSum += e
		if e > eps+1e-12 {
			cal.Violations++
		}
	}
	cal.ViolationRate = float64(cal.Violations) / float64(len(errs))
	cal.Error = ErrorDist{
		Mean: errSum / float64(len(errs)),
		P50:  quantF(errs, 0.50),
		P90:  quantF(errs, 0.90),
		P99:  quantF(errs, 0.99),
		Max:  errs[len(errs)-1],
	}

	samples := append([]int64(nil), a.samples...)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sampleSum int64
	for _, n := range samples {
		sampleSum += n
	}
	cal.Samples = SampleDist{
		Min:     samples[0],
		Max:     samples[len(samples)-1],
		Mean:    float64(sampleSum) / float64(len(samples)),
		P50:     samples[quantIdx(len(samples), 0.50)],
		Buckets: powerOfTwoBuckets(samples),
	}
	return cal
}

// quantIdx returns the index of the q-quantile in a sorted sample of
// length n (nearest-rank).
func quantIdx(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func quantF(sorted []float64, q float64) float64 {
	return sorted[quantIdx(len(sorted), q)]
}

// powerOfTwoBuckets bins a sorted sample into ≤2^k upper bounds.
func powerOfTwoBuckets(sorted []int64) []SampleBucket {
	var out []SampleBucket
	le := int64(1)
	i := 0
	for i < len(sorted) {
		for sorted[i] > le {
			le *= 2
		}
		n := 0
		for i < len(sorted) && sorted[i] <= le {
			n++
			i++
		}
		out = append(out, SampleBucket{Le: le, Count: n})
		le *= 2
	}
	return out
}

// Violated returns the schemes whose observed violation rate exceeds the
// promised δ — the guarantee's empirical failures.
func (r *Report) Violated() []string {
	var out []string
	for _, s := range r.Schemes {
		if s.Estimates > 0 && s.ViolationRate > r.Delta {
			out = append(out, s.Scheme)
		}
	}
	return out
}

// Table renders the calibration for terminals.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Guarantee calibration: %s (eps=%.2f, delta=%.2f, %d tuples x %d trials)\n",
		r.Scenario, r.Eps, r.Delta, r.Tuples, r.Trials)
	fmt.Fprintf(&b, "%-8s %9s %10s %9s %9s %9s %9s %11s %11s\n",
		"scheme", "estimates", "violations", "obs-rate", "mean-err", "p90-err", "max-err", "p50-samples", "max-samples")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, "%-8s %9d %10d %8.1f%% %9.4f %9.4f %9.4f %11d %11d\n",
			s.Scheme, s.Estimates, s.Violations, 100*s.ViolationRate,
			s.Error.Mean, s.Error.P90, s.Error.Max, s.Samples.P50, s.Samples.Max)
	}
	if r.SkippedTuples > 0 {
		fmt.Fprintf(&b, "(%d tuples skipped: exact frequency intractable or zero)\n", r.SkippedTuples)
	}
	if v := r.Violated(); len(v) > 0 {
		fmt.Fprintf(&b, "GUARANTEE VIOLATED (rate > delta): %s\n", strings.Join(v, ", "))
	} else {
		fmt.Fprintf(&b, "guarantee holds: every scheme's observed violation rate <= delta\n")
	}
	return b.String()
}

// WriteJSON emits the calibration wrapped in the standard provenance
// envelope ({"manifest": ..., "report": ...}).
func (r *Report) WriteJSON(w io.Writer, m *manifest.RunManifest) error {
	envelope := struct {
		Manifest *manifest.RunManifest `json:"manifest,omitempty"`
		Report   *Report               `json:"report"`
	}{Manifest: m, Report: r}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(envelope)
}
