package audit

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/cqa"
	"cqabench/internal/obs"
	"cqabench/internal/obs/manifest"
	"cqabench/internal/relation"
	"cqabench/internal/scenario"
)

// testWorkload builds a tiny two-pair workload over hand-written
// inconsistent databases — fast enough to audit with several trials.
func testWorkload(t testing.TB) *scenario.Workload {
	t.Helper()
	s := relation.MustSchema([]relation.RelDef{
		{Name: "Employee", Attrs: []string{"id", "name", "dept"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	db.MustInsert("Employee", 1, "Bob", "HR")
	db.MustInsert("Employee", 1, "Bob", "IT")
	db.MustInsert("Employee", 2, "Alice", "IT")
	db.MustInsert("Employee", 2, "Tim", "IT")
	db.MustInsert("Employee", 3, "Eve", "IT")
	return &scenario.Workload{
		Name: "audit-test",
		Pairs: []scenario.Pair{
			{Name: "names", DB: db, Query: cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)},
			{Name: "boolean", DB: db, Query: cq.MustParse("Q() :- Employee(1, n1, d), Employee(2, n2, d)", db.Dict)},
		},
	}
}

func TestRunCalibratesEveryScheme(t *testing.T) {
	w := testWorkload(t)
	cfg := DefaultConfig()
	cfg.Trials = 4
	cfg.Registry = obs.NewRegistry()
	rep, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tuples == 0 {
		t.Fatal("no tuples audited")
	}
	if len(rep.Schemes) != len(cqa.Schemes) {
		t.Fatalf("%d scheme calibrations, want %d", len(rep.Schemes), len(cqa.Schemes))
	}
	for _, s := range rep.Schemes {
		want := rep.Tuples * cfg.Trials
		if s.Estimates+s.TimedOut != want {
			t.Fatalf("%s: %d estimates + %d timeouts, want %d", s.Scheme, s.Estimates, s.TimedOut, want)
		}
		// The paper's guarantee: violations happen with probability <= delta.
		// The schemes empirically overdeliver by a wide margin, so the exact
		// bound is a safe test assertion at these sample sizes.
		if s.ViolationRate > rep.Delta {
			t.Errorf("%s: observed violation rate %.3f exceeds delta %.2f", s.Scheme, s.ViolationRate, rep.Delta)
		}
		if s.Error.Max < s.Error.P50 || s.Error.P99 < s.Error.P50 {
			t.Fatalf("%s: inconsistent error quantiles %+v", s.Scheme, s.Error)
		}
		if s.Samples.Min <= 0 || s.Samples.Max < s.Samples.Min || s.Samples.P50 < s.Samples.Min || s.Samples.P50 > s.Samples.Max {
			t.Fatalf("%s: inconsistent sample dist %+v", s.Scheme, s.Samples)
		}
		var bucketTotal int
		prevLe := int64(0)
		for _, b := range s.Samples.Buckets {
			if b.Le <= prevLe || b.Le&(b.Le-1) != 0 {
				t.Fatalf("%s: bucket bound %d not an increasing power of two", s.Scheme, b.Le)
			}
			prevLe = b.Le
			bucketTotal += b.Count
		}
		if bucketTotal != s.Estimates {
			t.Fatalf("%s: buckets hold %d estimates, want %d", s.Scheme, bucketTotal, s.Estimates)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	w := testWorkload(t)
	cfg := DefaultConfig()
	cfg.Trials = 2
	cfg.Schemes = []cqa.Scheme{cqa.Natural, cqa.KL}
	cfg.Registry = obs.NewRegistry()
	a, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = obs.NewRegistry()
	b, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different reports:\n%+v\n%+v", a, b)
	}
}

func TestRunRecordsMetrics(t *testing.T) {
	w := testWorkload(t)
	cfg := DefaultConfig()
	cfg.Trials = 2
	cfg.Schemes = []cqa.Scheme{cqa.KLM}
	reg := obs.NewRegistry()
	cfg.Registry = reg
	rep, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lbl := obs.L("scheme", "KLM")
	cal := rep.Schemes[0]
	if got := reg.Histogram("cqa_empirical_error", lbl).Snapshot().Count; got != uint64(cal.Estimates) {
		t.Fatalf("cqa_empirical_error count %d, want %d", got, cal.Estimates)
	}
	if got := reg.Histogram("cqa_samples_to_convergence", lbl).Snapshot().Count; got != uint64(cal.Estimates) {
		t.Fatalf("cqa_samples_to_convergence count %d, want %d", got, cal.Estimates)
	}
	if got := reg.Counter("cqa_guarantee_violations_total", lbl).Value(); got != int64(cal.Violations) {
		t.Fatalf("cqa_guarantee_violations_total %d, want %d", got, cal.Violations)
	}
}

func TestConfigValidation(t *testing.T) {
	w := testWorkload(t)
	for _, cfg := range []Config{
		{Eps: 0, Delta: 0.25, Trials: 1},
		{Eps: 0.1, Delta: 1, Trials: 1},
		{Eps: 0.1, Delta: 0.25, Trials: 0},
	} {
		if _, err := Run(w, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestReportJSONEnvelope(t *testing.T) {
	w := testWorkload(t)
	cfg := DefaultConfig()
	cfg.Trials = 1
	cfg.Schemes = []cqa.Scheme{cqa.Natural}
	cfg.Registry = obs.NewRegistry()
	rep, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := manifest.Collect("cqabench audit", nil)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf, &m); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Manifest *manifest.RunManifest `json:"manifest"`
		Report   *Report               `json:"report"`
	}
	if err := json.Unmarshal(buf.Bytes(), &envelope); err != nil {
		t.Fatalf("envelope does not parse: %v", err)
	}
	if envelope.Manifest == nil || envelope.Manifest.Tool != "cqabench audit" {
		t.Fatalf("manifest missing or wrong: %+v", envelope.Manifest)
	}
	if envelope.Report == nil || envelope.Report.Scenario != "audit-test" {
		t.Fatalf("report missing or wrong: %+v", envelope.Report)
	}
}

func TestViolatedAndTable(t *testing.T) {
	rep := &Report{
		Scenario: "x", Eps: 0.1, Delta: 0.25, Trials: 1, Tuples: 2,
		Schemes: []SchemeCalibration{
			{Scheme: "Natural", Estimates: 10, Violations: 0},
			{Scheme: "KL", Estimates: 10, Violations: 5, ViolationRate: 0.5},
		},
	}
	if v := rep.Violated(); len(v) != 1 || v[0] != "KL" {
		t.Fatalf("Violated() = %v", v)
	}
	table := rep.Table()
	for _, want := range []string{"Natural", "KL", "GUARANTEE VIOLATED"} {
		if !bytes.Contains([]byte(table), []byte(want)) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	rep.Schemes = rep.Schemes[:1]
	if v := rep.Violated(); v != nil {
		t.Fatalf("Violated() = %v, want none", v)
	}
	if table := rep.Table(); !bytes.Contains([]byte(table), []byte("guarantee holds")) {
		t.Fatalf("table missing pass line:\n%s", table)
	}
}

func TestPowerOfTwoBuckets(t *testing.T) {
	got := powerOfTwoBuckets([]int64{1, 2, 3, 4, 9, 1000})
	want := []SampleBucket{{Le: 1, Count: 1}, {Le: 2, Count: 1}, {Le: 4, Count: 2}, {Le: 16, Count: 1}, {Le: 1024, Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	if b := powerOfTwoBuckets(nil); b != nil {
		t.Fatalf("empty sample gave buckets %+v", b)
	}
}
