package cqa

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"

	"cqabench/internal/estimator"
	"cqabench/internal/synopsis"
)

// goldenSet wraps the golden pairs into a multi-tuple synopsis set, so
// scheme-level determinism tests exercise the per-tuple substream-root
// derivation (tupleSeed) too.
func goldenSet() *synopsis.Set {
	set := &synopsis.Set{}
	for _, p := range goldenPairs() {
		set.Entries = append(set.Entries, synopsis.Entry{Pair: p.pair})
	}
	return set
}

func sameRun(t *testing.T, tag string, aRes, bRes []TupleFreq, aStats, bStats Stats, aErr, bErr error) {
	t.Helper()
	if (aErr == nil) != (bErr == nil) {
		t.Fatalf("%s: errors differ: %v vs %v", tag, aErr, bErr)
	}
	if aErr != nil && !errors.Is(bErr, estimator.ErrBudget) {
		t.Fatalf("%s: error %v does not wrap ErrBudget", tag, bErr)
	}
	if len(aRes) != len(bRes) {
		t.Fatalf("%s: result lengths differ: %d vs %d", tag, len(aRes), len(bRes))
	}
	for i := range aRes {
		if math.Float64bits(aRes[i].Freq) != math.Float64bits(bRes[i].Freq) {
			t.Fatalf("%s: tuple %d estimates differ: %v vs %v", tag, i, aRes[i].Freq, bRes[i].Freq)
		}
	}
	if aStats.Samples != bStats.Samples {
		t.Fatalf("%s: sample counts differ: %d vs %d", tag, aStats.Samples, bStats.Samples)
	}
	if aStats.Chunks != bStats.Chunks {
		t.Fatalf("%s: chunk counts differ: %d vs %d", tag, aStats.Chunks, bStats.Chunks)
	}
}

// TestParallelSamplingWorkerInvariance is the scheme-level determinism
// table: for all four schemes, with and without budget exhaustion, the
// parallel sampling mode returns bit-identical answers — estimates,
// sample counts, chunk counts, budget-failure outcomes — for every pool
// size (including -1 = auto). Run under -race in CI.
func TestParallelSamplingWorkerInvariance(t *testing.T) {
	set := goldenSet()
	for _, scheme := range Schemes {
		for _, maxSamples := range []int64{0, 37, 20000} {
			opts := Options{Eps: 0.25, Delta: 0.3, Seed: 7,
				Budget:          estimator.Budget{MaxSamples: maxSamples},
				SamplingWorkers: 2}
			refRes, refStats, refErr := ApxAnswersFromSet(set, scheme, opts)
			for _, w := range []int{4, 7, -1} {
				o := opts
				o.SamplingWorkers = w
				res, stats, err := ApxAnswersFromSet(set, scheme, o)
				sameRun(t, fmt.Sprintf("%v/workers=%d", scheme, w), refRes, res, refStats, stats, refErr, err)
			}
			if scheme != Cover && refErr == nil {
				// The tuple-parallel pool derives the same per-tuple roots,
				// so in parallel sampling mode the two entry points agree
				// tuple-for-tuple. (Error paths differ by design: FromSet
				// fail-fasts at the first exhausted tuple, the pool finishes
				// all tuples — a pre-existing contract, untouched here.)
				res, stats, err := ApxAnswersParallel(set, scheme, opts, 3)
				sameRun(t, scheme.String()+"/tuple-pool", refRes, res, refStats, stats, refErr, err)
			}
		}
	}
}

// TestParallelSamplingSequentialUntouched pins the mode boundary:
// SamplingWorkers 0 and 1 are the same classic sequential single-stream
// path (whose exact values testdata/kernel_golden.json locks), and
// Cover ignores the pool entirely — its parallel-mode run equals its
// sequential run draw-for-draw.
func TestParallelSamplingSequentialUntouched(t *testing.T) {
	set := goldenSet()
	for _, scheme := range Schemes {
		opts := Options{Eps: 0.25, Delta: 0.3, Seed: 11}
		seqRes, seqStats, seqErr := ApxAnswersFromSet(set, scheme, opts)
		if seqErr != nil {
			t.Fatalf("%v: %v", scheme, seqErr)
		}
		if seqStats.SamplingWorkers != 1 || seqStats.Chunks != 0 {
			t.Fatalf("%v: sequential stats report workers=%d chunks=%d, want 1 and 0",
				scheme, seqStats.SamplingWorkers, seqStats.Chunks)
		}

		one := opts
		one.SamplingWorkers = 1
		oneRes, oneStats, oneErr := ApxAnswersFromSet(set, scheme, one)
		sameRun(t, scheme.String()+"/workers=1", seqRes, oneRes, seqStats, oneStats, seqErr, oneErr)

		par := opts
		par.SamplingWorkers = 4
		parRes, parStats, parErr := ApxAnswersFromSet(set, scheme, par)
		if parErr != nil {
			t.Fatalf("%v: %v", scheme, parErr)
		}
		if scheme == Cover {
			sameRun(t, "Cover/parallel-ignored", seqRes, parRes, seqStats, parStats, seqErr, parErr)
			if parStats.SamplingWorkers != 1 {
				t.Fatalf("Cover: parallel-mode stats report workers=%d, want 1", parStats.SamplingWorkers)
			}
		} else {
			if parStats.SamplingWorkers != 4 {
				t.Fatalf("%v: parallel stats report workers=%d, want 4", scheme, parStats.SamplingWorkers)
			}
			if parStats.Chunks <= 0 {
				t.Fatalf("%v: parallel stats report %d chunks, want > 0", scheme, parStats.Chunks)
			}
			// The substream schedule is a different stream than the
			// sequential one; identical results would mean the parallel
			// path silently fell back to sequential draws.
			differ := false
			for i := range seqRes {
				if math.Float64bits(seqRes[i].Freq) != math.Float64bits(parRes[i].Freq) {
					differ = true
				}
			}
			if !differ {
				t.Fatalf("%v: parallel-mode estimates identical to sequential for every tuple", scheme)
			}
		}
	}
}

// TestParallelSamplingAutoWorkers checks the shared clamp: -1 resolves
// to GOMAXPROCS for the intra-query pool, exactly like workers <= 0
// does for the tuple-parallel pool.
func TestParallelSamplingAutoWorkers(t *testing.T) {
	o := Options{SamplingWorkers: -1}
	if w, par := o.samplingPool(); !par || w != runtime.GOMAXPROCS(0) {
		t.Fatalf("samplingPool(-1) = (%d, %v), want (GOMAXPROCS=%d, true)", w, par, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{0, 1} {
		o := Options{SamplingWorkers: n}
		if w, par := o.samplingPool(); par || w != 1 {
			t.Fatalf("samplingPool(%d) = (%d, %v), want (1, false)", n, w, par)
		}
	}
	if w, par := (Options{SamplingWorkers: 5}).samplingPool(); !par || w != 5 {
		t.Fatalf("samplingPool(5) = (%d, %v), want (5, true)", w, par)
	}
}
