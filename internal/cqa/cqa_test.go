package cqa

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cqabench/internal/cq"
	"cqabench/internal/estimator"
	"cqabench/internal/relation"
	"cqabench/internal/repair"
	"cqabench/internal/synopsis"
)

func employeeDB(t testing.TB) *relation.Database {
	t.Helper()
	s := relation.MustSchema([]relation.RelDef{
		{Name: "Employee", Attrs: []string{"id", "name", "dept"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	db.MustInsert("Employee", 1, "Bob", "HR")
	db.MustInsert("Employee", 1, "Bob", "IT")
	db.MustInsert("Employee", 2, "Alice", "IT")
	db.MustInsert("Employee", 2, "Tim", "IT")
	return db
}

func TestSchemeNames(t *testing.T) {
	want := []string{"Natural", "KL", "KLM", "Cover"}
	for i, s := range Schemes {
		if s.String() != want[i] {
			t.Fatalf("scheme %d = %q", i, s.String())
		}
		parsed, err := ParseScheme(want[i])
		if err != nil || parsed != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", want[i], parsed, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if got := Scheme(42).String(); got != "Scheme(42)" {
		t.Fatalf("unknown String = %q", got)
	}
}

// Example 1.1 end-to-end: the Boolean same-department query has relative
// frequency 0.5; every scheme must land within ε = 0.1 of it.
func TestAllSchemesOnExample(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(1, n1, d), Employee(2, n2, d)", db.Dict)
	for _, scheme := range Schemes {
		opts := DefaultOptions()
		res, stats, err := ApxAnswers(db, q, scheme, opts)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(res) != 1 || len(res[0].Tuple) != 0 {
			t.Fatalf("%v: answers = %v", scheme, res)
		}
		if math.Abs(res[0].Freq-0.5) > 0.05 {
			t.Fatalf("%v: freq = %v, want 0.5±0.05", scheme, res[0].Freq)
		}
		if stats.Samples <= 0 || stats.NumTuples != 1 {
			t.Fatalf("%v: stats = %+v", scheme, stats)
		}
	}
}

func TestAllSchemesNonBoolean(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)
	exact, err := repair.ExactAnswers(db, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantByName := map[string]float64{}
	for _, tf := range exact {
		wantByName[db.Dict.Render(tf.Tuple[0])] = tf.Freq
	}
	for _, scheme := range Schemes {
		res, _, err := ApxAnswers(db, q, scheme, DefaultOptions())
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(res) != len(exact) {
			t.Fatalf("%v: %d answers, want %d", scheme, len(res), len(exact))
		}
		for _, tf := range res {
			name := db.Dict.Render(tf.Tuple[0])
			want := wantByName[name]
			if math.Abs(tf.Freq-want) > 0.15*want+0.02 {
				t.Fatalf("%v: %s freq %v, want %v", scheme, name, tf.Freq, want)
			}
		}
	}
}

func TestEmptyAnswer(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(9, n, d)", db.Dict)
	for _, scheme := range Schemes {
		res, _, err := ApxAnswers(db, q, scheme, DefaultOptions())
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(res) != 0 {
			t.Fatalf("%v: answers = %v, want none", scheme, res)
		}
	}
}

func TestExactAnswersMatchesRepairEnumeration(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, d)", db.Dict)
	viaSynopsis, err := ExactAnswers(db, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaRepairs, err := repair.ExactAnswers(db, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaSynopsis) != len(viaRepairs) {
		t.Fatalf("synopsis route %d answers, repairs route %d", len(viaSynopsis), len(viaRepairs))
	}
	for i := range viaSynopsis {
		if !viaSynopsis[i].Tuple.Equal(viaRepairs[i].Tuple) {
			t.Fatalf("tuple order mismatch at %d", i)
		}
		if math.Abs(viaSynopsis[i].Freq-viaRepairs[i].Freq) > 1e-9 {
			t.Fatalf("freq mismatch for %v: %v vs %v",
				viaSynopsis[i].Tuple, viaSynopsis[i].Freq, viaRepairs[i].Freq)
		}
	}
}

func TestCertainAnswers(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(d) :- Employee(2, n, d)", db.Dict)
	certain, err := CertainAnswers(db, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(certain) != 1 || db.Dict.Render(certain[0][0]) != "IT" {
		t.Fatalf("certain = %v", certain)
	}
	got, err := repair.CertainAnswers(db, q, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("repair route certain = %v, %v", got, err)
	}
}

func TestBudgetPropagates(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(1, n1, d), Employee(2, n2, d)", db.Dict)
	opts := DefaultOptions()
	opts.Budget = estimator.Budget{MaxSamples: 3}
	_, _, err := ApxAnswers(db, q, Natural, opts)
	if !errors.Is(err, estimator.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestApxRelativeFreqUnknownScheme(t *testing.T) {
	pair := &synopsis.Admissible{
		BlockSizes: []int32{2},
		Images:     []synopsis.Image{{{Block: 0, Fact: 0}}},
	}
	if _, _, err := ApxRelativeFreq(pair, Scheme(99), DefaultOptions(), nil); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSeedDeterminism(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)
	opts := DefaultOptions()
	opts.Seed = 77
	a, _, err := ApxAnswers(db, q, KLM, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ApxAnswers(db, q, KLM, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Freq != b[i].Freq {
			t.Fatal("same seed produced different estimates")
		}
	}
}

// Property: on random small inconsistent databases, every scheme's
// estimate for every answer tuple is within the (ε, δ) band of the exact
// frequency most of the time. We check against a widened band so a single
// δ-probability miss cannot flake the suite, and count gross misses.
func TestSchemesAccuracyProperty(t *testing.T) {
	s := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1},
		{Name: "S", Attrs: []string{"k", "v"}, KeyLen: 1},
	}, nil)
	gross := 0
	total := 0
	f := func(rs, ss []struct{ K, V uint8 }, seed uint16) bool {
		if len(rs) > 6 {
			rs = rs[:6]
		}
		if len(ss) > 6 {
			ss = ss[:6]
		}
		db := relation.NewDatabase(s)
		for _, p := range rs {
			db.MustInsert("R", int(p.K%3), int(p.V%3))
		}
		for _, p := range ss {
			db.MustInsert("S", int(p.K%3), int(p.V%3)+10)
		}
		q := cq.MustParse("Q(v) :- R(k, j), S(j, v)", db.Dict)
		set, err := synopsis.Build(db, q)
		if err != nil || len(set.Entries) == 0 {
			return true
		}
		exact, err := ExactAnswersFromSet(set, 0)
		if err != nil {
			return true
		}
		for _, scheme := range Schemes {
			opts := DefaultOptions()
			opts.Seed = uint64(seed) + uint64(scheme)*7919
			res, _, err := ApxAnswersFromSet(set, scheme, opts)
			if err != nil {
				return false
			}
			for i := range res {
				total++
				want := exact[i].Freq
				if math.Abs(res[i].Freq-want) > 0.25*want {
					gross++
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	if total > 0 && float64(gross)/float64(total) > 0.05 {
		t.Fatalf("gross misses %d/%d exceed 5%%", gross, total)
	}
}
