package cqa

import (
	"fmt"

	"cqabench/internal/estimator"
)

// Convergence recording at the scheme level: when opted in via
// Options.Convergence, every per-tuple estimation attaches an
// estimator.Recorder and the resulting bounded trajectories are returned
// on Stats.Convergence. Recording is strictly passive — it observes the
// loops at their existing chunk boundaries and never touches the PRNG —
// so estimates and sample counts are bit-identical with recording on or
// off (see TestConvergenceRecordingPreservesAnswers).

// DefaultConvergenceTuples bounds how many tuples of a run record a
// trajectory when ConvergenceOptions.MaxTuples is zero. Trajectories are
// per tuple, so an unbounded set-level run could otherwise carry
// thousands of them.
const DefaultConvergenceTuples = 16

// ConvergenceOptions opts an approximation run into convergence
// recording. The zero value — recording off — is the default and adds no
// overhead.
type ConvergenceOptions struct {
	// Enabled turns trajectory recording on.
	Enabled bool
	// MaxPoints caps each tuple's trajectory; when the cap is reached the
	// recorder halves its resolution (estimator.Recorder). 0 selects
	// estimator.DefaultTrajectoryPoints.
	MaxPoints int
	// MaxTuples caps how many tuples (in answer order) record a
	// trajectory. 0 selects DefaultConvergenceTuples.
	MaxTuples int
}

// validate rejects negative caps; called from Options.Validate.
func (c ConvergenceOptions) validate() error {
	if c.MaxPoints < 0 {
		return fmt.Errorf("cqa: negative convergence point cap %d: %w", c.MaxPoints, ErrInvalidOptions)
	}
	if c.MaxTuples < 0 {
		return fmt.Errorf("cqa: negative convergence tuple cap %d: %w", c.MaxTuples, ErrInvalidOptions)
	}
	return nil
}

// tupleCap resolves the effective MaxTuples.
func (c ConvergenceOptions) tupleCap() int {
	if c.MaxTuples > 0 {
		return c.MaxTuples
	}
	return DefaultConvergenceTuples
}

// records reports whether tuple i (answer order) should record.
func (c ConvergenceOptions) records(i int) bool {
	return c.Enabled && i < c.tupleCap()
}

// TupleTrajectory is one tuple's recorded convergence trajectory.
type TupleTrajectory struct {
	// Tuple is the tuple's index in the run's answer order (the same
	// order ApxAnswersFromSet returns).
	Tuple int `json:"tuple"`
	// Points is the bounded checkpoint sequence, ending with the exact
	// final estimate and sample count.
	Points []estimator.TrajectoryPoint `json:"points"`
}
