package cqa

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cqabench/internal/estimator"
	"cqabench/internal/mt"
)

// The parallel golden file pins the parallel sampling path's draw
// schedule: the exact estimates (float bits) and sample counts of every
// scheme over the same shapes and seeds as the kernel golden grid, but
// drawing from seed-derived per-chunk substreams (SamplingWorkers ≥ 2).
// These values are invariant across pool sizes — TestParallelSampling*
// asserts that — so one worker count suffices to pin the schedule. Any
// drift here is a determinism regression in the substream derivation or
// the chunk-ordered reduction. Regenerate (only when intentionally
// changing parallel sampling semantics) with:
//
//	go test ./internal/cqa -run TestParallelGolden -update-parallel-golden
var updateParallelGolden = flag.Bool("update-parallel-golden", false,
	"rewrite testdata/parallel_golden.json from the current implementation")

const parallelGoldenPath = "testdata/parallel_golden.json"

// parallelGoldenGrid runs the kernel golden grid in parallel sampling
// mode. Cover is included deliberately: it always runs sequentially, so
// its parallel-mode values must equal its kernel-golden values — pinned
// here so a future change cannot silently route it through the pool.
func parallelGoldenGrid() []goldenCase {
	const workers = 3
	var out []goldenCase
	for _, p := range goldenPairs() {
		for _, scheme := range Schemes {
			for _, seed := range []uint64{1, mt.DefaultSeed} {
				for _, maxSamples := range []int64{0, 37, 20000} {
					opts := Options{Eps: 0.2, Delta: 0.3, Seed: seed,
						Budget:          estimator.Budget{MaxSamples: maxSamples},
						SamplingWorkers: workers}
					freq, samples, err := ApxRelativeFreq(p.pair, scheme, opts, mt.New(seed))
					c := goldenCase{
						Pair:       p.name,
						Scheme:     scheme.String(),
						Seed:       seed,
						MaxSamples: maxSamples,
						FreqBits:   fmt.Sprintf("%016x", math.Float64bits(freq)),
						Samples:    samples,
					}
					switch {
					case err == nil:
					case errors.Is(err, estimator.ErrBudget):
						c.Err = "budget"
					default:
						panic(fmt.Sprintf("parallel golden %s/%s: %v", p.name, scheme, err))
					}
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// TestParallelGolden locks the parallel sampling path's estimates,
// sample counts, and budget outcomes to the recorded reference, the
// parallel-mode counterpart of TestKernelGolden. The sequential fixture
// (testdata/kernel_golden.json) is untouched by the parallel path:
// SamplingWorkers ∈ {0, 1} still draws the classic single stream.
func TestParallelGolden(t *testing.T) {
	got := parallelGoldenGrid()
	if *updateParallelGolden {
		if err := os.MkdirAll(filepath.Dir(parallelGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(parallelGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d parallel golden cases to %s", len(got), parallelGoldenPath)
		return
	}
	raw, err := os.ReadFile(parallelGoldenPath)
	if err != nil {
		t.Fatalf("missing parallel golden file (run with -update-parallel-golden to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("parallel golden grid size changed: have %d cases, golden holds %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w != g {
			t.Errorf("case %s/%s seed=%d max=%d:\n  want %+v\n  got  %+v",
				w.Pair, w.Scheme, w.Seed, w.MaxSamples, w, g)
		}
	}
}
