package cqa

import (
	"context"
	"errors"
	"math"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/estimator"
	"cqabench/internal/relation"
	"cqabench/internal/synopsis"
)

func TestOptionsValidate(t *testing.T) {
	base := DefaultOptions()
	cases := []struct {
		name   string
		mutate func(*Options)
		ok     bool
	}{
		{"defaults", func(o *Options) {}, true},
		{"eps zero", func(o *Options) { o.Eps = 0 }, false},
		{"eps one", func(o *Options) { o.Eps = 1 }, false},
		{"eps negative", func(o *Options) { o.Eps = -0.5 }, false},
		{"eps NaN", func(o *Options) { o.Eps = math.NaN() }, false},
		{"delta zero", func(o *Options) { o.Delta = 0 }, false},
		{"delta one", func(o *Options) { o.Delta = 1 }, false},
		{"delta NaN", func(o *Options) { o.Delta = math.NaN() }, false},
		{"negative budget", func(o *Options) { o.Budget.MaxSamples = -1 }, false},
		{"positive budget", func(o *Options) { o.Budget.MaxSamples = 1000 }, true},
		{"sampling workers below auto", func(o *Options) { o.SamplingWorkers = -2 }, false},
		{"sampling workers auto", func(o *Options) { o.SamplingWorkers = -1 }, true},
		{"sampling workers pool", func(o *Options) { o.SamplingWorkers = 8 }, true},
		{"tight valid", func(o *Options) { o.Eps = 0.999; o.Delta = 0.001 }, true},
	}
	for _, tc := range cases {
		opts := base
		tc.mutate(&opts)
		err := opts.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: invalid options accepted", tc.name)
			} else if !errors.Is(err, ErrInvalidOptions) {
				t.Errorf("%s: error %v does not wrap ErrInvalidOptions", tc.name, err)
			}
		}
	}
}

// Every public entry point must reject invalid options with
// ErrInvalidOptions before doing any work.
func TestEntryPointsValidateOptions(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(1, n1, d), Employee(2, n2, d)", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.Eps = 2

	if _, _, err := ApxAnswersFromSet(set, KLM, bad); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("ApxAnswersFromSet: %v", err)
	}
	if _, _, err := ApxAnswersParallel(set, KLM, bad, 2); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("ApxAnswersParallel: %v", err)
	}
	if _, _, err := ApxAnswers(db, q, KLM, bad); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("ApxAnswers: %v", err)
	}
	if _, _, _, err := AutoAnswers(set, bad); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("AutoAnswers: %v", err)
	}
}

// bigBlockDB returns a database whose single answer tuple has enough
// conflicting blocks that an estimation runs long enough to cancel.
func bigBlockDB(t testing.TB, blocks int) (*relation.Database, *cq.Query) {
	t.Helper()
	s := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	for b := 0; b < blocks; b++ {
		db.MustInsert("R", b, "a")
		db.MustInsert("R", b, "b")
	}
	q := cq.MustParse("Q() :- R(k, 'a')", db.Dict)
	return db, q
}

// A pre-canceled context must abort estimation before the first draw and
// surface an error matching both the cqa and context sentinels.
func TestApxAnswersFromSetContextCanceled(t *testing.T) {
	db, q := bigBlockDB(t, 8)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, scheme := range Schemes {
		_, stats, err := ApxAnswersFromSetContext(ctx, set, scheme, DefaultOptions())
		if !errors.Is(err, estimator.ErrCanceled) {
			t.Fatalf("%v: error %v does not wrap ErrCanceled", scheme, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: error %v does not wrap context.Canceled", scheme, err)
		}
		// The batched schemes abort before their first draw; the
		// coverage walk polls every 256 unit charges, so it may perform
		// up to one stride of steps. Either way: at most one chunk.
		if stats.Samples > 256 {
			t.Fatalf("%v: %d draws performed under a canceled context, want at most one chunk", scheme, stats.Samples)
		}
	}
}

func TestApxAnswersParallelContextCanceled(t *testing.T) {
	db, q := bigBlockDB(t, 8)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = ApxAnswersParallelContext(ctx, set, KLM, DefaultOptions(), 4)
	if !errors.Is(err, estimator.ErrCanceled) {
		t.Fatalf("parallel error %v does not wrap ErrCanceled", err)
	}
}

// A live context must leave results bit-identical to the context-free
// path, sequential and parallel alike.
func TestContextFreeAndContextResultsMatch(t *testing.T) {
	db, q := bigBlockDB(t, 4)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, scheme := range Schemes {
		plain, sp, err1 := ApxAnswersFromSet(set, scheme, DefaultOptions())
		withCtx, sc, err2 := ApxAnswersFromSetContext(ctx, set, scheme, DefaultOptions())
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: %v / %v", scheme, err1, err2)
		}
		if len(plain) != len(withCtx) || sp.Samples != sc.Samples {
			t.Fatalf("%v: result shapes diverge (%d/%d answers, %d/%d samples)",
				scheme, len(plain), len(withCtx), sp.Samples, sc.Samples)
		}
		for i := range plain {
			if plain[i].Freq != withCtx[i].Freq {
				t.Fatalf("%v: tuple %d freq %v != %v", scheme, i, plain[i].Freq, withCtx[i].Freq)
			}
		}
	}
}

// Cancelling during the preprocessing phase must abort the synopsis
// build itself.
func TestApxAnswersContextCancelsBuild(t *testing.T) {
	db, q := bigBlockDB(t, 3000) // >1024 homomorphisms, so the build's ctx poll fires
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ApxAnswersContext(ctx, db, q, Natural, DefaultOptions())
	if !errors.Is(err, estimator.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("end-to-end run under canceled context returned %v", err)
	}
}
