package cqa

import (
	"errors"
	"reflect"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/synopsis"
)

func convergenceSet(t *testing.T) *synopsis.Set {
	t.Helper()
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Entries) < 2 {
		t.Fatalf("fixture has %d tuples, want >= 2", len(set.Entries))
	}
	return set
}

func TestConvergenceOptionsValidate(t *testing.T) {
	opts := DefaultOptions()
	opts.Convergence.MaxPoints = -1
	if err := opts.Validate(); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("negative MaxPoints: err = %v", err)
	}
	opts = DefaultOptions()
	opts.Convergence.MaxTuples = -1
	if err := opts.Validate(); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("negative MaxTuples: err = %v", err)
	}
	opts = DefaultOptions()
	opts.Convergence = ConvergenceOptions{Enabled: true, MaxPoints: 64, MaxTuples: 4}
	if err := opts.Validate(); err != nil {
		t.Fatalf("valid convergence options rejected: %v", err)
	}
}

func TestConvergenceTrajectoriesRecorded(t *testing.T) {
	set := convergenceSet(t)
	for _, scheme := range Schemes {
		opts := DefaultOptions()
		opts.Convergence.Enabled = true
		res, stats, err := ApxAnswersFromSet(set, scheme, opts)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(stats.Convergence) != len(res) {
			t.Fatalf("%v: %d trajectories for %d tuples", scheme, len(stats.Convergence), len(res))
		}
		for i, tt := range stats.Convergence {
			if tt.Tuple != i {
				t.Fatalf("%v: trajectory %d labeled tuple %d", scheme, i, tt.Tuple)
			}
			if len(tt.Points) == 0 {
				t.Fatalf("%v: tuple %d has an empty trajectory", scheme, i)
			}
			last := tt.Points[len(tt.Points)-1]
			if last.Progress != 1 {
				t.Fatalf("%v: tuple %d final progress %v", scheme, i, last.Progress)
			}
		}
	}
}

func TestConvergenceMaxTuplesCap(t *testing.T) {
	set := convergenceSet(t)
	opts := DefaultOptions()
	opts.Convergence = ConvergenceOptions{Enabled: true, MaxTuples: 1}
	_, stats, err := ApxAnswersFromSet(set, Natural, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Convergence) != 1 || stats.Convergence[0].Tuple != 0 {
		t.Fatalf("MaxTuples=1 recorded %+v", stats.Convergence)
	}
}

func TestConvergenceMaxPointsCap(t *testing.T) {
	set := convergenceSet(t)
	opts := DefaultOptions()
	// The minimum recorder capacity is 2; a tight cap must still hold the
	// final point while never exceeding the cap.
	opts.Convergence = ConvergenceOptions{Enabled: true, MaxPoints: 2}
	_, stats, err := ApxAnswersFromSet(set, KL, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range stats.Convergence {
		if len(tt.Points) > 2 {
			t.Fatalf("tuple %d trajectory has %d points, cap 2", tt.Tuple, len(tt.Points))
		}
	}
}

// Recording must not perturb answers, sample counts, or the PRNG stream:
// a run with recording on returns bit-identical results to one with it
// off. This is the set-level face of the estimator's passivity guarantee.
func TestConvergenceRecordingPreservesAnswers(t *testing.T) {
	set := convergenceSet(t)
	for _, scheme := range Schemes {
		plainRes, plainStats, err := ApxAnswersFromSet(set, scheme, DefaultOptions())
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		opts := DefaultOptions()
		opts.Convergence.Enabled = true
		recRes, recStats, err := ApxAnswersFromSet(set, scheme, opts)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !reflect.DeepEqual(plainRes, recRes) {
			t.Fatalf("%v: recording changed answers:\noff %v\non  %v", scheme, plainRes, recRes)
		}
		if plainStats.Samples != recStats.Samples || plainStats.GoodRatio != recStats.GoodRatio {
			t.Fatalf("%v: recording changed stats: off {Samples:%d Good:%v} on {Samples:%d Good:%v}",
				scheme, plainStats.Samples, plainStats.GoodRatio, recStats.Samples, recStats.GoodRatio)
		}
	}
}

// The parallel path records the same trajectories as the sequential one
// (deterministic per-tuple streams), in the same index order.
func TestConvergenceParallelMatchesSequential(t *testing.T) {
	set := convergenceSet(t)
	opts := DefaultOptions()
	opts.Convergence.Enabled = true
	_, par, err := ApxAnswersParallel(set, KLM, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Convergence) != len(set.Entries) {
		t.Fatalf("parallel recorded %d trajectories, want %d", len(par.Convergence), len(set.Entries))
	}
	for i, tt := range par.Convergence {
		if tt.Tuple != i || len(tt.Points) == 0 {
			t.Fatalf("parallel trajectory %d = {Tuple:%d, %d points}", i, tt.Tuple, len(tt.Points))
		}
	}
}
