// Package cqa assembles the paper's approximation schemes for CQA.
//
// It implements the four data-efficient randomized approximation schemes
// for RelativeFreq — Natural (Algorithm 3), KL and KLM (Algorithm 4), and
// Cover (Algorithm 5) — and ApxCQA[·] (Algorithm 1) in the optimized form
// of Section 5: the synopses of all answer tuples are computed once by a
// shared preprocessing step (internal/synopsis.Build), then the chosen
// scheme approximates each tuple's relative frequency from its admissible
// pair alone.
package cqa

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cqabench/internal/cq"
	"cqabench/internal/cqaerr"
	"cqabench/internal/estimator"
	"cqabench/internal/mt"
	"cqabench/internal/obs"
	"cqabench/internal/relation"
	"cqabench/internal/sampler"
	"cqabench/internal/synopsis"
)

// Scheme identifies one of the paper's approximation schemes.
type Scheme int

const (
	// Natural samples repairs from the natural space db(B) (Algorithm 3).
	Natural Scheme = iota
	// KL samples from the symbolic space with the Karp–Luby first-witness
	// sampler (Algorithm 4 with Sampler 2).
	KL
	// KLM samples from the symbolic space with the Karp–Luby–Madras
	// reciprocal-count sampler (Algorithm 4 with Sampler 3).
	KLM
	// Cover runs the self-adjusting coverage algorithm (Algorithm 5).
	Cover
)

// Schemes lists every scheme in the paper's presentation order.
var Schemes = []Scheme{Natural, KL, KLM, Cover}

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Natural:
		return "Natural"
	case KL:
		return "KL"
	case KLM:
		return "KLM"
	case Cover:
		return "Cover"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme resolves a scheme by (case-sensitive) name.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("cqa: unknown scheme %q (want Natural, KL, KLM or Cover)", name)
}

// Options configures an approximation run. The paper's defaults are
// ε = 0.1 and δ = 0.25 (Section 6.3).
type Options struct {
	Eps   float64
	Delta float64
	Seed  uint64
	// Budget applies per relative-frequency estimation (per tuple); its
	// Deadline, if set, also bounds the run as a whole, mirroring the
	// paper's per-scenario timeout.
	Budget estimator.Budget
	// SamplingWorkers selects the intra-query sampling mode: 0 or 1 run
	// the classic sequential single-stream estimators (the default,
	// bit-identical to every release before the parallel path existed);
	// n ≥ 2 fan each tuple's draws over n workers via seed-derived
	// per-chunk substreams (estimator.MonteCarloParallel), and -1 sizes
	// that pool automatically (GOMAXPROCS). Parallel-mode estimates are
	// deterministic for a fixed Seed and identical for every pool size —
	// workers only change wall-clock time — but they consume a different
	// (substream-keyed) draw schedule than the sequential mode, so the
	// two modes' estimates differ for the same seed. Cover always runs
	// sequentially: its adaptive walk has data-dependent control flow
	// that cannot be pre-chunked. Values below -1 fail Validate.
	SamplingWorkers int
	// Convergence opts the run into per-tuple convergence-trajectory
	// recording (off by default; see ConvergenceOptions).
	Convergence ConvergenceOptions
}

// samplingPool resolves SamplingWorkers to the effective intra-query
// pool size and mode. The pool size goes through poolWorkers, the same
// clamp the tuple-parallel pool (ApxAnswersParallel) uses.
func (o Options) samplingPool() (workers int, parallel bool) {
	if o.SamplingWorkers == 0 || o.SamplingWorkers == 1 {
		return 1, false
	}
	return poolWorkers(o.SamplingWorkers), true
}

// SamplingPool resolves a SamplingWorkers setting to the effective
// intra-query pool size and whether the parallel sampling mode is
// selected — the same resolution the estimators apply. Exposed so
// callers (the estimation service's metrics, coalescing keys) can
// canonicalize settings that behave identically (e.g. 0 and 1 are both
// the sequential mode).
func SamplingPool(samplingWorkers int) (workers int, parallel bool) {
	return Options{SamplingWorkers: samplingWorkers}.samplingPool()
}

// DefaultOptions returns the paper's experimental setting.
func DefaultOptions() Options {
	return Options{Eps: 0.1, Delta: 0.25, Seed: mt.DefaultSeed}
}

// ErrInvalidOptions is wrapped by the errors Validate returns (alias of
// the shared sentinel, re-exported at the root as
// cqabench.ErrInvalidOptions).
var ErrInvalidOptions = cqaerr.ErrInvalidOptions

// Validate rejects option values the estimators cannot run with: ε and δ
// must lie strictly inside (0, 1) — the sample-complexity constants
// diverge or turn negative outside it — and the sample budget must be
// non-negative. Every public entry point (and the estimation service's
// request decoder) calls it before any sampling work starts; failures
// wrap ErrInvalidOptions.
func (o Options) Validate() error {
	if !(o.Eps > 0 && o.Eps < 1) {
		return fmt.Errorf("cqa: eps %v outside (0, 1): %w", o.Eps, ErrInvalidOptions)
	}
	if !(o.Delta > 0 && o.Delta < 1) {
		return fmt.Errorf("cqa: delta %v outside (0, 1): %w", o.Delta, ErrInvalidOptions)
	}
	if o.Budget.MaxSamples < 0 {
		return fmt.Errorf("cqa: negative sample budget %d: %w", o.Budget.MaxSamples, ErrInvalidOptions)
	}
	if o.SamplingWorkers < -1 {
		return fmt.Errorf("cqa: sampling workers %d (want -1 auto, 0/1 sequential, or a pool size ≥ 2): %w",
			o.SamplingWorkers, ErrInvalidOptions)
	}
	return o.Convergence.validate()
}

// TupleFreq pairs an answer tuple with its approximate relative frequency.
type TupleFreq struct {
	Tuple relation.Tuple
	Freq  float64
}

// Stats reports the work an approximation run performed.
type Stats struct {
	Samples    int64
	Elapsed    time.Duration
	PrepTime   time.Duration // synopsis construction, when done here
	NumTuples  int
	NumSamples int64 // alias of Samples kept for CSV column naming
	// GoodRatio is the samples-weighted mean of the per-tuple good-sample
	// ratios: the estimator's raw mean in the sampler's own space (before
	// the |S•|/|db(B)| reweighting for KL/KLM). It quantifies how often a
	// draw contributes signal — the r-goodness the schemes' sample
	// complexity depends on.
	GoodRatio float64
	// SamplingWorkers is the effective intra-query pool size the run used
	// (see Options.SamplingWorkers): 1 for the sequential mode and for
	// Cover, which always runs sequentially.
	SamplingWorkers int
	// Chunks counts the 256-draw substream chunks the parallel sampling
	// path consumed across all tuples; 0 for sequential-mode runs.
	Chunks int64
	// Stages is the wall-time breakdown of the run (sampler.init.<kernel>
	// — the kernel suffix records the shape-based plain/indexed choice —
	// estimate, other), from the run's span tree. Empty for parallel runs,
	// where per-worker wall times overlap and cannot be summed.
	Stages []obs.Stage
	// Convergence holds the recorded per-tuple trajectories when
	// Options.Convergence.Enabled was set; nil otherwise.
	Convergence []TupleTrajectory
}

// ApxRelativeFreq approximates R(H, B) for a single admissible pair with
// the chosen scheme: the body of ApxRelativeFreq in Algorithm 1 after the
// preprocessing step has established H ≠ ∅.
// When opts select the parallel sampling mode, the substream schedule
// is rooted at opts.Seed and src is consulted only by Cover.
func ApxRelativeFreq(pair *synopsis.Admissible, scheme Scheme, opts Options, src *mt.Source) (float64, int64, error) {
	res, err := apxRelativeFreq(context.Background(), pair, scheme, opts, src, opts.Seed, nil)
	return res.freq, res.samples, err
}

// tupleResult is one tuple's estimation outcome: the clamped frequency,
// the draws performed, and the raw sampler-space mean (the good-sample
// ratio).
type tupleResult struct {
	freq    float64
	samples int64
	good    float64
	chunks  int64 // substream chunks consumed (parallel mode only)
	// trajectory is the recorded convergence trajectory, nil unless
	// opts.Convergence.Enabled was set for this tuple.
	trajectory []estimator.TrajectoryPoint
}

// newKernelSampler builds the scheme's sampler for the kernel choice,
// returning the sampler and the estimate weight (|S•|/|db(B)| for the
// symbolic-space schemes, 1 otherwise). It is the parallel pool's
// per-worker factory, so it must be safe to call concurrently — all
// constructors only read the (immutable) pair.
func newKernelSampler(pair *synopsis.Admissible, scheme Scheme, kernel sampler.Kernel) (estimator.Sampler, float64) {
	switch scheme {
	case Natural:
		if kernel == sampler.Indexed {
			return sampler.NewNaturalIndexed(pair), 1
		}
		return sampler.NewNatural(pair), 1
	case KL:
		if kernel == sampler.Indexed {
			kl := sampler.NewKLIndexed(pair)
			return kl, kl.Weight()
		}
		kl := sampler.NewKL(pair)
		return kl, kl.Weight()
	case KLM:
		if kernel == sampler.Indexed {
			klm := sampler.NewKLMIndexed(pair)
			return klm, klm.Weight()
		}
		klm := sampler.NewKLM(pair)
		return klm, klm.Weight()
	}
	return nil, 1
}

// apxRelativeFreq is ApxRelativeFreq with stage attribution — when
// parent is non-nil, sampler construction and estimation are recorded as
// child spans — and cooperative cancellation: ctx is polled at the
// estimation loops' chunk boundaries, never perturbing the PRNG stream
// of an uncancelled run.
//
// rootSeed roots this tuple's substream schedule when opts select the
// parallel sampling mode (for multi-tuple runs, the caller derives it
// per tuple via tupleSeed so every tuple sees independent substreams);
// the sequential mode and Cover draw from src and never read rootSeed.
func apxRelativeFreq(ctx context.Context, pair *synopsis.Admissible, scheme Scheme, opts Options, src *mt.Source, rootSeed uint64, parent *obs.Span) (tupleResult, error) {
	var rec *estimator.Recorder
	if opts.Convergence.Enabled {
		rec = estimator.NewRecorder(opts.Convergence.MaxPoints)
		ctx = estimator.WithRecorder(ctx, rec)
	}
	// Both kernels of a scheme consume the PRNG stream identically, so the
	// shape-based choice affects throughput only, never the estimate.
	kernel := sampler.SelectKernel(pair)
	sp := parent.StartChild("sampler.init." + kernel.String())
	var (
		s      estimator.Sampler
		space  estimator.SymbolicSpace
		weight = 1.0
	)
	if scheme == Cover {
		// Coverage probes images adaptively (data-dependent control flow);
		// it always runs on the plain symbolic space, sequentially.
		space = sampler.NewSymbolic(pair)
	} else {
		s, weight = newKernelSampler(pair, scheme, kernel)
		if s == nil {
			sp.End()
			return tupleResult{}, fmt.Errorf("cqa: unknown scheme %v", scheme)
		}
	}
	sp.End()
	obs.Default().Counter("cqa_kernel_selected_total",
		obs.L("scheme", scheme.String()), obs.L("kernel", kernel.String())).Inc()

	sp = parent.StartChild("estimate")
	var r estimator.Result
	var err error
	workers, parallelDraws := opts.samplingPool()
	switch {
	case space != nil:
		r, err = estimator.SelfAdjustingCoverageContext(ctx, space, opts.Eps, opts.Delta, src, opts.Budget)
	case parallelDraws:
		p := estimator.Parallel{
			Seed:       rootSeed,
			Workers:    workers,
			NewSampler: func() estimator.Sampler { s, _ := newKernelSampler(pair, scheme, kernel); return s },
		}
		r, err = estimator.MonteCarloParallel(ctx, p, opts.Eps, opts.Delta, opts.Budget)
	default:
		r, err = estimator.MonteCarloContext(ctx, s, opts.Eps, opts.Delta, src, opts.Budget)
	}
	sp.End()

	est := r.Estimate * weight
	// A randomized estimate of a ratio can stray epsilon outside [0, 1];
	// clamp, since R(H,B) is a probability by definition.
	if est > 1 {
		est = 1
	}
	if est < 0 {
		est = 0
	}
	res := tupleResult{freq: est, samples: r.Samples, good: r.Estimate, chunks: r.Chunks}
	if rec != nil {
		res.trajectory = rec.Points()
	}
	return res, err
}

// recordRunMetrics publishes one scheme run's telemetry into the default
// registry. Called on both completed and failed (budget-exhausted) runs.
func recordRunMetrics(scheme Scheme, stats Stats, err error) {
	r := obs.Default()
	lbl := obs.L("scheme", scheme.String())
	r.Histogram("cqa_scheme_latency_seconds", lbl).Observe(stats.Elapsed.Seconds())
	r.Counter("sampler_samples_total", lbl).Add(stats.Samples)
	r.Gauge("sampler_good_ratio", lbl).Set(stats.GoodRatio)
	switch {
	case err == nil:
		r.Counter("cqa_runs_total", lbl).Inc()
	case errors.Is(err, estimator.ErrBudget):
		r.Counter("cqa_budget_exhausted_total", lbl).Inc()
	case errors.Is(err, estimator.ErrCanceled):
		r.Counter("cqa_canceled_total", lbl).Inc()
	default:
		r.Counter("cqa_errors_total", lbl).Inc()
	}
}

// ApxAnswersFromSet runs ApxCQA[scheme] over a precomputed synopsis set:
// one relative-frequency approximation per answer tuple. This is the
// measured phase of the paper's experiments (preprocessing excluded).
func ApxAnswersFromSet(set *synopsis.Set, scheme Scheme, opts Options) ([]TupleFreq, Stats, error) {
	return ApxAnswersFromSetTracedContext(context.Background(), set, scheme, opts, nil)
}

// ApxAnswersFromSetContext is ApxAnswersFromSet with cooperative
// cancellation: ctx is polled at the estimators' chunk boundaries, so an
// abort is observed within about one 256-draw chunk and reported as an
// error wrapping estimator.ErrCanceled. Estimates of uncancelled runs
// are bit-identical to ApxAnswersFromSet.
func ApxAnswersFromSetContext(ctx context.Context, set *synopsis.Set, scheme Scheme, opts Options) ([]TupleFreq, Stats, error) {
	return ApxAnswersFromSetTracedContext(ctx, set, scheme, opts, nil)
}

// ApxAnswersFromSetTraced is ApxAnswersFromSet with span attribution
// under parent: the run's root span ("cqa.<Scheme>", with sampler.init.<kernel> /
// estimate children) becomes a child of parent, so callers holding a
// span tree (the harness's -trace-out plumbing) capture the run in their
// trace. A nil parent reproduces ApxAnswersFromSet exactly.
func ApxAnswersFromSetTraced(set *synopsis.Set, scheme Scheme, opts Options, parent *obs.Span) ([]TupleFreq, Stats, error) {
	return ApxAnswersFromSetTracedContext(context.Background(), set, scheme, opts, parent)
}

// ApxAnswersFromSetTracedContext combines span attribution (see
// ApxAnswersFromSetTraced) with cooperative cancellation (see
// ApxAnswersFromSetContext). It validates opts before any work starts.
// When parent is nil but ctx carries a span (obs.StartSpan), the run's
// span tree attaches there instead — this is how the estimation
// service's per-request traces capture the cqa breakdown.
func ApxAnswersFromSetTracedContext(ctx context.Context, set *synopsis.Set, scheme Scheme, opts Options, parent *obs.Span) ([]TupleFreq, Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if parent == nil {
		parent = obs.FromContext(ctx)
	}
	root := parent.StartChild("cqa." + scheme.String())
	if root == nil {
		root = obs.NewSpan("cqa." + scheme.String())
	}
	src := mt.New(opts.Seed)
	out := make([]TupleFreq, 0, len(set.Entries))
	var stats Stats
	stats.SamplingWorkers = 1
	if w, par := opts.samplingPool(); par && scheme != Cover {
		stats.SamplingWorkers = w
	}
	var goodSum float64 // per-tuple good ratios weighted by sample count
	finish := func(err error) {
		root.End()
		stats.Elapsed = root.Duration()
		stats.Stages = root.Stages()
		stats.NumSamples = stats.Samples
		if stats.Samples > 0 {
			stats.GoodRatio = goodSum / float64(stats.Samples)
		}
		recordRunMetrics(scheme, stats, err)
	}
	for i := range set.Entries {
		e := &set.Entries[i]
		o := opts
		o.Convergence.Enabled = opts.Convergence.records(i)
		res, err := apxRelativeFreq(ctx, e.Pair, scheme, o, src, tupleSeed(opts.Seed, i), root)
		stats.Samples += res.samples
		stats.Chunks += res.chunks
		goodSum += res.good * float64(res.samples)
		if res.trajectory != nil {
			stats.Convergence = append(stats.Convergence, TupleTrajectory{Tuple: i, Points: res.trajectory})
		}
		if err != nil {
			finish(err)
			return nil, stats, fmt.Errorf("cqa: tuple %d: %w", i, err)
		}
		out = append(out, TupleFreq{Tuple: e.Tuple, Freq: res.freq})
	}
	stats.NumTuples = len(out)
	finish(nil)
	return out, stats, nil
}

// ApxAnswers is the end-to-end ApxCQA[scheme]: it builds syn_{Σ,Q}(D)
// (the preprocessing step) and approximates every positive-frequency
// tuple's relative frequency.
func ApxAnswers(db *relation.Database, q *cq.Query, scheme Scheme, opts Options) ([]TupleFreq, Stats, error) {
	return ApxAnswersContext(context.Background(), db, q, scheme, opts)
}

// ApxAnswersContext is ApxAnswers with cooperative cancellation through
// both phases: the synopsis build polls ctx every few thousand
// homomorphisms, the estimation loops at every chunk boundary. Options
// are validated before the (possibly expensive) preprocessing step.
func ApxAnswersContext(ctx context.Context, db *relation.Database, q *cq.Query, scheme Scheme, opts Options) ([]TupleFreq, Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, Stats{}, err
	}
	prepStart := time.Now()
	set, err := synopsis.BuildContext(ctx, db, q)
	if err != nil {
		return nil, Stats{}, err
	}
	prep := time.Since(prepStart)
	res, stats, err := ApxAnswersFromSetContext(ctx, set, scheme, opts)
	stats.PrepTime = prep
	return res, stats, err
}

// ExactAnswersFromSet computes the exact ans_{D,Σ}(Q) from a synopsis set
// by independent-component decomposition with per-component inclusion–
// exclusion, falling back to knowledge compilation on large components
// (Lemma 4.1(3)); it fails with synopsis.ErrTooLarge only on components
// too dense for both.
func ExactAnswersFromSet(set *synopsis.Set, maxImages int) ([]TupleFreq, error) {
	out := make([]TupleFreq, 0, len(set.Entries))
	for i := range set.Entries {
		e := &set.Entries[i]
		r, err := e.Pair.ExactRatioAuto(maxImages, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, TupleFreq{Tuple: e.Tuple, Freq: r})
	}
	return out, nil
}

// ExactAnswers computes the exact consistent answer end-to-end.
func ExactAnswers(db *relation.Database, q *cq.Query, maxImages int) ([]TupleFreq, error) {
	set, err := synopsis.Build(db, q)
	if err != nil {
		return nil, err
	}
	return ExactAnswersFromSet(set, maxImages)
}

// CertainAnswers returns the classic certain answers — tuples whose exact
// relative frequency is 1 — from the synopsis route. A tuple is certain
// iff every database in db(B) is covered by some image.
func CertainAnswers(db *relation.Database, q *cq.Query, maxImages int) ([]relation.Tuple, error) {
	all, err := ExactAnswers(db, q, maxImages)
	if err != nil {
		return nil, err
	}
	var out []relation.Tuple
	for _, tf := range all {
		// Inclusion–exclusion is exact up to float rounding; 1 is attained
		// exactly when the union covers db(B), but guard the comparison.
		if tf.Freq >= 1-1e-9 {
			out = append(out, tf.Tuple)
		}
	}
	return out, nil
}
