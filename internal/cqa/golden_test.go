package cqa

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cqabench/internal/estimator"
	"cqabench/internal/mt"
	"cqabench/internal/synopsis"
)

// The kernel golden file pins the exact estimates (float bits) and sample
// counts of every scheme on a fixed set of synopsis shapes and seeds. The
// batched / index-accelerated kernels must consume the MT19937-64 stream
// in exactly the order the original one-sample-at-a-time path did, so
// these values are invariant under kernel changes: any drift is a
// determinism regression, not noise. Regenerate (only when intentionally
// changing sampling semantics) with:
//
//	go test ./internal/cqa -run TestKernelGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/kernel_golden.json from the current implementation")

const goldenPath = "testdata/kernel_golden.json"

// goldenCase is one (pair, scheme, seed, budget) cell of the golden grid.
type goldenCase struct {
	Pair       string `json:"pair"`
	Scheme     string `json:"scheme"`
	Seed       uint64 `json:"seed"`
	MaxSamples int64  `json:"max_samples,omitempty"`
	// FreqBits is the IEEE-754 bit pattern of the estimate, in hex: bitwise
	// comparison catches drift a formatted float would round away.
	FreqBits string `json:"freq_bits"`
	Samples  int64  `json:"samples"`
	Err      string `json:"err,omitempty"` // "budget" when ErrBudget, else ""
}

// goldenPairs builds the fixed synopsis shapes of the golden grid. The
// construction is fully deterministic (its own MT stream) and spans the
// regimes the kernel selector distinguishes: tiny overlapping pairs
// (plain kernels), degenerate 1-block / 1-image pairs, and a large-|H|
// low-coverage pair (indexed kernels).
func goldenPairs() []struct {
	name string
	pair *synopsis.Admissible
} {
	small := &synopsis.Admissible{
		BlockSizes: []int32{2, 3, 2},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 0}, {Block: 1, Fact: 1}},
			{{Block: 1, Fact: 2}, {Block: 2, Fact: 0}},
		},
	}

	oneBlock := &synopsis.Admissible{
		BlockSizes: []int32{4},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 2}},
		},
	}

	oneImage := &synopsis.Admissible{
		BlockSizes: []int32{3, 3, 3},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 1}, {Block: 1, Fact: 0}, {Block: 2, Fact: 2}},
		},
	}

	// large: many short images over wide blocks — low coverage, big |H|,
	// the regime where the first-member index beats the plain scan.
	large := &synopsis.Admissible{}
	const nBlocks, blockSize = 24, 16
	for b := 0; b < nBlocks; b++ {
		large.BlockSizes = append(large.BlockSizes, blockSize)
	}
	src := mt.New(12345)
	for i := 0; i < 600; i++ {
		b1 := int32(src.Intn(nBlocks))
		b2 := int32(src.Intn(nBlocks))
		img := synopsis.Image{{Block: b1, Fact: int32(src.Intn(blockSize))}}
		if b2 != b1 {
			img = append(img, synopsis.Member{Block: b2, Fact: int32(src.Intn(blockSize))})
		}
		large.Images = append(large.Images, img)
	}
	for b := 0; b < nBlocks; b++ {
		large.Images = append(large.Images, synopsis.Image{{Block: int32(b), Fact: 0}})
	}

	out := []struct {
		name string
		pair *synopsis.Admissible
	}{
		{"small", small},
		{"one-block", oneBlock},
		{"one-image", oneImage},
		{"large", large},
	}
	for _, p := range out {
		p.pair.Canonicalize()
		if err := p.pair.Validate(); err != nil {
			panic(fmt.Sprintf("golden pair %s: %v", p.name, err))
		}
	}
	return out
}

// goldenGrid runs the full grid with the current implementation.
func goldenGrid() []goldenCase {
	var out []goldenCase
	for _, p := range goldenPairs() {
		for _, scheme := range Schemes {
			for _, seed := range []uint64{1, mt.DefaultSeed} {
				for _, maxSamples := range []int64{0, 37, 20000} {
					opts := Options{Eps: 0.2, Delta: 0.3, Seed: seed,
						Budget: estimator.Budget{MaxSamples: maxSamples}}
					freq, samples, err := ApxRelativeFreq(p.pair, scheme, opts, mt.New(seed))
					c := goldenCase{
						Pair:       p.name,
						Scheme:     scheme.String(),
						Seed:       seed,
						MaxSamples: maxSamples,
						FreqBits:   fmt.Sprintf("%016x", math.Float64bits(freq)),
						Samples:    samples,
					}
					switch {
					case err == nil:
					case errors.Is(err, estimator.ErrBudget):
						c.Err = "budget"
					default:
						panic(fmt.Sprintf("golden %s/%s: %v", p.name, scheme, err))
					}
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// TestKernelGolden locks the estimates, sample counts, and budget
// outcomes of all four schemes to the recorded pre-kernel sequential
// reference: for a fixed seed the results must be bit-identical whatever
// kernel (plain, indexed, batched) the scheme selector picks.
func TestKernelGolden(t *testing.T) {
	got := goldenGrid()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cases to %s", len(got), goldenPath)
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden grid size changed: have %d cases, golden holds %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w != g {
			t.Errorf("case %s/%s seed=%d max=%d:\n  want %+v\n  got  %+v",
				w.Pair, w.Scheme, w.Seed, w.MaxSamples, w, g)
		}
	}
}
