package cqa

import (
	"errors"
	"math"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/estimator"
	"cqabench/internal/synopsis"
)

func TestParallelMatchesAccuracy(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes {
		res, stats, err := ApxAnswersParallel(set, scheme, DefaultOptions(), 4)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(res) != 3 || stats.NumTuples != 3 || stats.Samples == 0 {
			t.Fatalf("%v: res=%d stats=%+v", scheme, len(res), stats)
		}
		for _, tf := range res {
			if math.Abs(tf.Freq-0.5) > 0.08 && math.Abs(tf.Freq-1) > 0.08 {
				t.Fatalf("%v: freq %v far from any exact value", scheme, tf.Freq)
			}
		}
	}
}

func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, d)", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	one, _, err := ApxAnswersParallel(set, KLM, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, _, err := ApxAnswersParallel(set, KLM, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(eight) {
		t.Fatal("result lengths differ")
	}
	for i := range one {
		if !one[i].Tuple.Equal(eight[i].Tuple) || one[i].Freq != eight[i].Freq {
			t.Fatalf("tuple %d differs across worker counts: %v vs %v", i, one[i], eight[i])
		}
	}
}

func TestParallelPreservesTupleOrder(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, d)", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ApxAnswersParallel(set, Natural, DefaultOptions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if !res[i].Tuple.Equal(set.Entries[i].Tuple) {
			t.Fatal("parallel results out of order")
		}
	}
}

func TestParallelBudgetError(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, d)", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Budget = estimator.Budget{MaxSamples: 2}
	_, stats, err := ApxAnswersParallel(set, Natural, opts, 4)
	if !errors.Is(err, estimator.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// The failed run's stats must still carry the tuple count, so
	// recordRunMetrics and callers see it on the error path too.
	if stats.NumTuples != len(set.Entries) {
		t.Fatalf("NumTuples = %d on error path, want %d", stats.NumTuples, len(set.Entries))
	}
}

func TestParallelDefaultWorkerCount(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(1, n, d)", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ApxAnswersParallel(set, KL, DefaultOptions(), 0); err != nil {
		t.Fatal(err)
	}
}
