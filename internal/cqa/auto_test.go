package cqa

import (
	"math"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/synopsis"
)

func TestSelectSchemeBoolean(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(i, n, 'IT')", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	// Boolean with 3 images in one synopsis: balance 1/3 > threshold...
	// small example: verify the dispatch logic against the actual balance.
	want := KLM
	if set.Balance() < 0.1 {
		want = Natural
	}
	if got := SelectScheme(set); got != want {
		t.Fatalf("SelectScheme = %v, balance %v", got, set.Balance())
	}
}

func TestSelectSchemeLowBalance(t *testing.T) {
	// Construct a set with many images per answer tuple: balance << 0.1.
	set := &synopsis.Set{HomomorphicSize: 100}
	pair := &synopsis.Admissible{
		BlockSizes: []int32{2},
		Images:     []synopsis.Image{{{Block: 0, Fact: 0}}},
	}
	pair.Canonicalize()
	set.Entries = []synopsis.Entry{{Pair: pair}}
	if got := SelectScheme(set); got != Natural {
		t.Fatalf("low balance should select Natural, got %v", got)
	}
	// High balance: one image per answer.
	high := &synopsis.Set{HomomorphicSize: 5}
	for i := 0; i < 5; i++ {
		high.Entries = append(high.Entries, synopsis.Entry{Pair: pair})
	}
	if got := SelectScheme(high); got != KLM {
		t.Fatalf("high balance should select KLM, got %v", got)
	}
}

func TestAutoAnswers(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)
	set, err := synopsis.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, scheme, err := AutoAnswers(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if scheme != SelectScheme(set) {
		t.Fatal("reported scheme differs from selection")
	}
	if len(res) != 3 || stats.Samples == 0 {
		t.Fatalf("res=%d stats=%+v", len(res), stats)
	}
	for _, tf := range res {
		if math.Abs(tf.Freq-0.5) > 0.08 && math.Abs(tf.Freq-1) > 0.08 {
			t.Fatalf("freq %v implausible", tf.Freq)
		}
	}
}
