package cqa

import (
	"errors"
	"math"
	"testing"

	"cqabench/internal/estimator"
	"cqabench/internal/mt"
	"cqabench/internal/sampler"
	"cqabench/internal/synopsis"
)

// plainFreq computes what ApxRelativeFreq would return if the plain
// kernel were always chosen: the reference the shape-based selector must
// never deviate from. Both kernels consume the PRNG stream identically,
// so any divergence is a determinism bug in an indexed kernel.
func plainFreq(pair *synopsis.Admissible, scheme Scheme, opts Options, src *mt.Source) (float64, int64, error) {
	var (
		s      estimator.Sampler
		weight = 1.0
	)
	switch scheme {
	case Natural:
		s = sampler.NewNatural(pair)
	case KL:
		kl := sampler.NewKL(pair)
		s, weight = kl, kl.Weight()
	case KLM:
		klm := sampler.NewKLM(pair)
		s, weight = klm, klm.Weight()
	case Cover:
		r, err := estimator.SelfAdjustingCoverage(sampler.NewSymbolic(pair), opts.Eps, opts.Delta, src, opts.Budget)
		return clamp01(r.Estimate), r.Samples, err
	}
	r, err := estimator.MonteCarlo(s, opts.Eps, opts.Delta, src, opts.Budget)
	return clamp01(r.Estimate * weight), r.Samples, err
}

func clamp01(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}

// TestKernelSelectionPreservesResults runs every scheme through the real
// auto-selecting path and through the forced-plain reference on the same
// seeds, including shapes where the selector picks the indexed kernel and
// budgets that exhaust mid-run: estimates (bitwise) and sample counts
// must coincide.
func TestKernelSelectionPreservesResults(t *testing.T) {
	for _, p := range goldenPairs() {
		for _, scheme := range Schemes {
			for _, seed := range []uint64{1, 42, mt.DefaultSeed} {
				for _, max := range []int64{0, 37, 20000} {
					opts := Options{Eps: 0.2, Delta: 0.3, Budget: estimator.Budget{MaxSamples: max}}
					wantF, wantN, wantErr := plainFreq(p.pair, scheme, opts, mt.New(seed))
					gotF, gotN, gotErr := ApxRelativeFreq(p.pair, scheme, opts, mt.New(seed))
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s/%v seed=%d max=%d: errors differ: %v vs %v",
							p.name, scheme, seed, max, wantErr, gotErr)
					}
					if gotErr != nil && !errors.Is(gotErr, estimator.ErrBudget) {
						t.Fatalf("%s/%v seed=%d max=%d: unexpected error %v", p.name, scheme, seed, max, gotErr)
					}
					if math.Float64bits(wantF) != math.Float64bits(gotF) {
						t.Fatalf("%s/%v seed=%d max=%d: freq %v vs %v (bits %x vs %x)",
							p.name, scheme, seed, max, wantF, gotF,
							math.Float64bits(wantF), math.Float64bits(gotF))
					}
					if wantN != gotN {
						t.Fatalf("%s/%v seed=%d max=%d: samples %d vs %d",
							p.name, scheme, seed, max, wantN, gotN)
					}
				}
			}
		}
	}
}

// The large golden pair must actually exercise the indexed kernels, and
// the small ones the plain kernel — otherwise the test above proves
// nothing about the indexed path.
func TestGoldenPairsCoverBothKernels(t *testing.T) {
	var sawPlain, sawIndexed bool
	for _, p := range goldenPairs() {
		switch sampler.SelectKernel(p.pair) {
		case sampler.Plain:
			sawPlain = true
		case sampler.Indexed:
			sawIndexed = true
		}
	}
	if !sawPlain || !sawIndexed {
		t.Fatalf("golden pairs must cover both kernels: plain=%v indexed=%v", sawPlain, sawIndexed)
	}
}
