package cqa

import (
	"context"

	"cqabench/internal/synopsis"
)

// SelectScheme implements the paper's practical recommendation (take-home
// messages, Section 7.2): after the preprocessing step one inspects the
// synopsis set and picks the indicated scheme — Natural for Boolean and
// balance-≈0 queries (where each synopsis holds many images and R(H,B) is
// large), KLM otherwise (where synopses are small and the symbolic space
// is tight). The threshold is the crossover region the noise and balance
// scenarios exhibit; EXPERIMENTS.md's Figure 2 places it between the 25%
// and 50% balance levels, and the validation scenarios confirm Natural
// keeps winning below ~10%.
func SelectScheme(set *synopsis.Set) Scheme {
	if set.Balance() < autoBalanceThreshold {
		return Natural
	}
	return KLM
}

// autoBalanceThreshold is the balance below which queries behave as
// Boolean for scheme-selection purposes.
const autoBalanceThreshold = 0.1

// AutoAnswers runs ApxCQA with the scheme chosen per the paper's
// recommendation, returning the selected scheme alongside the answers.
func AutoAnswers(set *synopsis.Set, opts Options) ([]TupleFreq, Stats, Scheme, error) {
	return AutoAnswersContext(context.Background(), set, opts)
}

// AutoAnswersContext is AutoAnswers with cooperative cancellation (see
// ApxAnswersFromSetContext).
func AutoAnswersContext(ctx context.Context, set *synopsis.Set, opts Options) ([]TupleFreq, Stats, Scheme, error) {
	scheme := SelectScheme(set)
	res, stats, err := ApxAnswersFromSetContext(ctx, set, scheme, opts)
	return res, stats, scheme, err
}
