package cqa

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cqabench/internal/mt"
	"cqabench/internal/synopsis"
)

// poolWorkers is the single worker-count clamp every pool in the
// package goes through: the tuple-parallel pool (ApxAnswersParallel)
// and the intra-query sampling pool (Options.SamplingWorkers, resolved
// by Options.samplingPool). Non-positive requests select GOMAXPROCS;
// the result is always ≥ 1.
func poolWorkers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// tupleSeed derives tuple i's root seed from the run seed: a golden-
// ratio stride keeps per-tuple streams (and, in parallel sampling mode,
// per-tuple substream families) disjoint and deterministic. Both the
// tuple-parallel pool and the sequential loop's parallel-sampling mode
// use it, which is why ApxAnswersFromSet and ApxAnswersParallel agree
// tuple-for-tuple in parallel sampling mode.
func tupleSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9E3779B97F4A7C15
}

// ApxAnswersParallel is ApxAnswersFromSet with the per-tuple estimations
// fanned out over a worker pool — the parallel sampling phase the paper's
// appendix points out needs no synchronization: tuples' synopses are
// independent and each worker owns a private MT19937-64 stream (seeded
// deterministically per tuple, so results are reproducible regardless of
// scheduling). workers <= 0 selects GOMAXPROCS (the poolWorkers clamp).
func ApxAnswersParallel(set *synopsis.Set, scheme Scheme, opts Options, workers int) ([]TupleFreq, Stats, error) {
	return ApxAnswersParallelContext(context.Background(), set, scheme, opts, workers)
}

// ApxAnswersParallelContext is ApxAnswersParallel with cooperative
// cancellation: every worker polls ctx at its estimator's chunk
// boundaries, and tuples not yet started when ctx is canceled abort
// before their first draw, so the pool drains within about one chunk per
// worker. Results of uncancelled runs are bit-identical to
// ApxAnswersParallel for any worker count.
func ApxAnswersParallelContext(ctx context.Context, set *synopsis.Set, scheme Scheme, opts Options, workers int) ([]TupleFreq, Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = poolWorkers(workers)
	start := time.Now()
	n := len(set.Entries)
	out := make([]TupleFreq, n)
	results := make([]tupleResult, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				e := &set.Entries[i]
				// Deterministic per-tuple stream: the same tuple always
				// sees the same randomness, whatever the worker count. The
				// root seed doubles as the tuple's substream-family root in
				// parallel sampling mode.
				root := tupleSeed(opts.Seed, i)
				src := mt.New(root)
				o := opts
				o.Convergence.Enabled = opts.Convergence.records(i)
				res, err := apxRelativeFreq(ctx, e.Pair, scheme, o, src, root, nil)
				out[i] = TupleFreq{Tuple: e.Tuple, Freq: res.freq}
				results[i] = res
				errs[i] = err
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	var stats Stats
	stats.SamplingWorkers = 1
	if w, par := opts.samplingPool(); par && scheme != Cover {
		stats.SamplingWorkers = w
	}
	var goodSum float64
	var firstErr error
	firstErrTuple := -1
	for i := 0; i < n; i++ {
		stats.Samples += results[i].samples
		stats.Chunks += results[i].chunks
		goodSum += results[i].good * float64(results[i].samples)
		if results[i].trajectory != nil {
			// Collected in index order, matching the sequential path.
			stats.Convergence = append(stats.Convergence, TupleTrajectory{Tuple: i, Points: results[i].trajectory})
		}
		if errs[i] != nil && firstErr == nil {
			firstErr, firstErrTuple = errs[i], i
		}
	}
	stats.Elapsed = time.Since(start)
	stats.NumTuples = n
	stats.NumSamples = stats.Samples
	if stats.Samples > 0 {
		stats.GoodRatio = goodSum / float64(stats.Samples)
	}
	// Per-worker wall times overlap, so no Stages here (see Stats).
	recordRunMetrics(scheme, stats, firstErr)
	if firstErr != nil {
		return nil, stats, fmt.Errorf("cqa: tuple %d: %w", firstErrTuple, firstErr)
	}
	return out, stats, nil
}
