package synopsis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

// assertSetsEquivalent checks two synopsis sets describe the same object
// up to the (irrelevant) renaming of block and member ids: same answer
// tuples, same dynamic parameters, and per entry the same image count,
// block-size multiset and exact ratio.
func assertSetsEquivalent(t *testing.T, a, b *Set) {
	t.Helper()
	if a.OutputSize() != b.OutputSize() {
		t.Fatalf("output sizes differ: %d vs %d", a.OutputSize(), b.OutputSize())
	}
	if a.HomomorphicSize != b.HomomorphicSize {
		t.Fatalf("homomorphic sizes differ: %d vs %d", a.HomomorphicSize, b.HomomorphicSize)
	}
	for i := range a.Entries {
		ea, eb := &a.Entries[i], &b.Entries[i]
		if !ea.Tuple.Equal(eb.Tuple) {
			t.Fatalf("entry %d tuples differ", i)
		}
		if ea.Pair.NumImages() != eb.Pair.NumImages() {
			t.Fatalf("entry %d |H| differ: %d vs %d", i, ea.Pair.NumImages(), eb.Pair.NumImages())
		}
		if ea.Pair.NumBlocks() != eb.Pair.NumBlocks() {
			t.Fatalf("entry %d |B| differ: %d vs %d", i, ea.Pair.NumBlocks(), eb.Pair.NumBlocks())
		}
		sa := append([]int32(nil), ea.Pair.BlockSizes...)
		sb := append([]int32(nil), eb.Pair.BlockSizes...)
		sort.Slice(sa, func(x, y int) bool { return sa[x] < sa[y] })
		sort.Slice(sb, func(x, y int) bool { return sb[x] < sb[y] })
		for k := range sa {
			if sa[k] != sb[k] {
				t.Fatalf("entry %d block-size multisets differ: %v vs %v", i, sa, sb)
			}
		}
		ra, err1 := ea.Pair.ExactRatioAuto(0, 0)
		rb, err2 := eb.Pair.ExactRatioAuto(0, 0)
		if err1 != nil || err2 != nil {
			continue
		}
		if math.Abs(ra-rb) > 1e-9 {
			t.Fatalf("entry %d ratios differ: %v vs %v", i, ra, rb)
		}
	}
}

func TestRewritingMatchesBuildExample(t *testing.T) {
	db := employeeDB(t)
	for _, text := range []string{
		"Q() :- Employee(1, n1, d), Employee(2, n2, d)",
		"Q(n) :- Employee(i, n, 'IT')",
		"Q(i, n) :- Employee(i, n, d)",
		"Q() :- Employee(1, n, d1), Employee(1, m, d2)",
	} {
		q := cq.MustParse(text, db.Dict)
		direct, err := Build(db, q)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		rew, err := BuildViaRewriting(db, q)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		assertSetsEquivalent(t, direct, rew)
	}
}

func TestRewritingEmptyResult(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(99, n, d)", db.Dict)
	set, err := BuildViaRewriting(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if set.OutputSize() != 0 || set.HomomorphicSize != 0 {
		t.Fatalf("empty query: %+v", set)
	}
}

func TestRewritingInvalidQuery(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(x) :- Nope(x)", db.Dict)
	if _, err := BuildViaRewriting(db, q); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// Property: the direct builder and the Appendix C rewriting pipeline agree
// on random small databases and a join query.
func TestRewritingMatchesBuildProperty(t *testing.T) {
	s := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1},
		{Name: "S", Attrs: []string{"k", "v"}, KeyLen: 1},
	}, nil)
	f := func(rs, ss []struct{ K, V uint8 }) bool {
		if len(rs) > 7 {
			rs = rs[:7]
		}
		if len(ss) > 7 {
			ss = ss[:7]
		}
		db := relation.NewDatabase(s)
		for _, p := range rs {
			db.MustInsert("R", int(p.K%3), int(p.V%4))
		}
		for _, p := range ss {
			db.MustInsert("S", int(p.K%4), int(p.V%3)+10)
		}
		q := cq.MustParse("Q(v) :- R(k, j), S(j, v)", db.Dict)
		direct, err1 := Build(db, q)
		rew, err2 := BuildViaRewriting(db, q)
		if err1 != nil || err2 != nil {
			return false
		}
		if direct.OutputSize() != rew.OutputSize() || direct.HomomorphicSize != rew.HomomorphicSize {
			return false
		}
		for i := range direct.Entries {
			ra, e1 := direct.Entries[i].Pair.ExactRatioAuto(0, 0)
			rb, e2 := rew.Entries[i].Pair.ExactRatioAuto(0, 0)
			if e1 != nil || e2 != nil {
				continue
			}
			if math.Abs(ra-rb) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
