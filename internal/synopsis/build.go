package synopsis

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"cqabench/internal/cq"
	"cqabench/internal/cqaerr"
	"cqabench/internal/engine"
	"cqabench/internal/obs"
	"cqabench/internal/relation"
)

// Entry pairs one answer tuple t̄ (with R_{D,Σ,Q}(t̄) > 0) with its encoded
// (Σ,Q)-synopsis and, for the benefit of the noise generator, the database
// facts occurring in the synopsis' homomorphic images.
type Entry struct {
	Tuple relation.Tuple
	Pair  *Admissible
	Facts []relation.FactRef // distinct facts of ∪H, sorted
}

// Set is the paper's syn_{Σ,Q}(D): one entry per answer tuple with
// positive relative frequency, computed in a single pass over all
// homomorphisms (the preprocessing step of Section 5).
type Set struct {
	Entries []Entry
	// HomomorphicSize is |∪_i H_i|: the number of distinct consistent
	// homomorphic images across all entries (the paper's "homomorphic
	// size of Q w.r.t. D" dynamic parameter).
	HomomorphicSize int
}

// OutputSize returns |syn_{Σ,Q}(D)| = |Q(D) restricted to frequency > 0|.
func (s *Set) OutputSize() int { return len(s.Entries) }

// Balance returns the paper's balance of Q w.r.t. D: the inverse of the
// average synopsis size, |syn| / |∪H_i|, in [0, 1]. Balance 1 means every
// synopsis holds a single image; balance near 0 means few answers share
// many images. Returns 0 when there are no images.
func (s *Set) Balance() float64 {
	if s.HomomorphicSize == 0 {
		return 0
	}
	return float64(len(s.Entries)) / float64(s.HomomorphicSize)
}

// AvgSynopsisSize returns the average number of homomorphic images per
// synopsis (the inverse of Balance; 0 when empty).
func (s *Set) AvgSynopsisSize() float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	return float64(s.HomomorphicSize) / float64(len(s.Entries))
}

// ImageFacts returns the distinct database facts appearing in any
// homomorphic image of any entry — the set H of the noise generator's
// Step 1 — in sorted order.
func (s *Set) ImageFacts() []relation.FactRef {
	var all []relation.FactRef
	for i := range s.Entries {
		all = append(all, s.Entries[i].Facts...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	out := all[:0]
	for i, f := range all {
		if i == 0 || f != all[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// Build computes syn_{Σ,Q}(D): it enumerates every homomorphism h from Q
// to D, keeps those whose image is consistent w.r.t. the primary keys
// (h(Q) |= Σ), groups them by answer tuple h(x̄), and encodes each group
// as an admissible pair. This is the Go analogue of evaluating the SQL
// rewriting Q^rew and decoding its (rid, bid, tid, kcnt) columns
// (Appendix C).
func Build(db *relation.Database, q *cq.Query) (*Set, error) {
	return BuildContext(context.Background(), db, q)
}

// buildCtxStride is how many homomorphisms BuildContext enumerates
// between cancellation polls: frequent enough that aborting a large
// build is prompt, rare enough to stay off the enumeration hot path.
const buildCtxStride = 1024

// BuildContext is Build with cooperative cancellation: the homomorphism
// enumeration polls ctx every buildCtxStride images and aborts with an
// error wrapping cqaerr.ErrCanceled (and the context's own sentinel).
// For a context that is never canceled the result is identical to Build.
func BuildContext(ctx context.Context, db *relation.Database, q *cq.Query) (*Set, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	buildStart := time.Now()
	bi := relation.BuildBlocks(db)
	ev := engine.NewEvaluator(db)

	type group struct {
		tuple  relation.Tuple
		images [][]relation.FactRef
	}
	groups := make(map[string]*group)
	var order []string // deterministic entry order: first occurrence

	var homs int
	err := ev.EnumerateHomomorphisms(q, func(h *engine.Homomorphism) error {
		if homs++; homs%buildCtxStride == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("synopsis: build aborted after %d homomorphisms: %w", homs, cqaerr.Canceled(cerr))
			}
		}
		if !bi.SatisfiesKeys(h.Image) {
			return nil // h(Q) violates Σ: not part of the synopsis
		}
		t := make(relation.Tuple, len(q.Out))
		for i, v := range q.Out {
			t[i] = h.Assign[v]
		}
		key := encodeTupleKey(t)
		g, ok := groups[key]
		if !ok {
			g = &group{tuple: t}
			groups[key] = g
			order = append(order, key)
		}
		g.images = append(g.images, append([]relation.FactRef(nil), h.Image...))
		return nil
	})
	if err != nil {
		return nil, err
	}

	set := &Set{}
	distinctImages := make(map[string]bool)
	for _, key := range order {
		g := groups[key]
		entry, err := encodeEntry(bi, g.tuple, g.images)
		if err != nil {
			return nil, err
		}
		set.Entries = append(set.Entries, entry)
		// Count distinct images globally: an image is identified by its
		// set of database facts (already sorted by the engine).
		for _, img := range g.images {
			distinctImages[encodeFactsKey(img)] = true
		}
	}
	set.HomomorphicSize = len(distinctImages)
	// Deterministic order by answer tuple.
	sort.Slice(set.Entries, func(i, j int) bool {
		return set.Entries[i].Tuple.Less(set.Entries[j].Tuple)
	})
	recordBuildMetrics(set, time.Since(buildStart))
	return set, nil
}

// recordBuildMetrics publishes the preprocessing telemetry: build wall
// time, the admissible-pair count, and per-pair block/image size
// distributions (the paper's dynamic parameters, as histograms).
func recordBuildMetrics(set *Set, elapsed time.Duration) {
	r := obs.Default()
	r.Histogram("synopsis_build_seconds").Observe(elapsed.Seconds())
	r.Counter("synopsis_builds_total").Inc()
	r.Counter("synopsis_pairs_total").Add(int64(len(set.Entries)))
	blocks := r.Histogram("synopsis_pair_blocks")
	images := r.Histogram("synopsis_pair_images")
	for i := range set.Entries {
		p := set.Entries[i].Pair
		blocks.Observe(float64(p.NumBlocks()))
		images.Observe(float64(p.NumImages()))
	}
}

// encodeEntry converts a group of global-fact images into the local
// integer encoding of an admissible pair.
func encodeEntry(bi *relation.BlockIndex, tuple relation.Tuple, images [][]relation.FactRef) (Entry, error) {
	blockLocal := make(map[int]int32) // global block id -> local block
	var blockSizes []int32            // local block -> kcnt
	factLocal := make(map[relation.FactRef]Member)
	nextMember := make(map[int32]int32) // local block -> next member id
	factSet := make(map[relation.FactRef]bool)

	pair := &Admissible{}
	for _, img := range images {
		enc := make(Image, 0, len(img))
		for _, f := range img {
			m, ok := factLocal[f]
			if !ok {
				gb := bi.BlockID(f)
				lb, ok := blockLocal[gb]
				if !ok {
					lb = int32(len(blockSizes))
					blockLocal[gb] = lb
					blockSizes = append(blockSizes, int32(bi.BlockOf(f).Size()))
				}
				m = Member{Block: lb, Fact: nextMember[lb]}
				nextMember[lb]++
				factLocal[f] = m
			}
			enc = append(enc, m)
			factSet[f] = true
		}
		pair.Images = append(pair.Images, enc)
	}
	pair.BlockSizes = blockSizes
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		return Entry{}, err
	}

	facts := make([]relation.FactRef, 0, len(factSet))
	for f := range factSet {
		facts = append(facts, f)
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].Less(facts[j]) })
	return Entry{Tuple: tuple, Pair: pair, Facts: facts}, nil
}

func encodeTupleKey(t relation.Tuple) string {
	var b strings.Builder
	b.Grow(len(t) * 8)
	for _, v := range t {
		u := uint64(v)
		var buf [8]byte
		for k := 0; k < 8; k++ {
			buf[k] = byte(u >> (8 * k))
		}
		b.Write(buf[:])
	}
	return b.String()
}

// encodeFactsKey identifies an image by its sorted global facts.
func encodeFactsKey(facts []relation.FactRef) string {
	var b strings.Builder
	b.Grow(len(facts) * 8)
	for _, f := range facts {
		var buf [8]byte
		u := uint32(f.Rel)
		v := uint32(f.Row)
		for k := 0; k < 4; k++ {
			buf[k] = byte(u >> (8 * k))
			buf[4+k] = byte(v >> (8 * k))
		}
		b.Write(buf[:])
	}
	return b.String()
}
