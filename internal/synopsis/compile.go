package synopsis

import (
	"fmt"
	"sort"
	"strings"
)

// ExactRatioCompiled computes R(H, B) exactly by knowledge compilation:
// Shannon expansion on blocks with memoization on the residual image set.
// Where inclusion–exclusion is Θ(2^|H|) regardless of structure, the
// compiled count is bounded by the number of distinct residual subproblems
// — polynomial for chain- and tree-structured image overlaps — so it
// reaches instances with hundreds of entangled images when their overlap
// graph is sparse. maxNodes bounds the expansion (0 = default 1<<20);
// exceeding it returns ErrTooLarge.
//
// The three exact algorithms (inclusion–exclusion, component
// decomposition, compilation) cross-validate each other in the tests and
// give the benchmark its exact baseline for approximation-quality audits.
func (a *Admissible) ExactRatioCompiled(maxNodes int) (float64, error) {
	if len(a.Images) == 0 {
		return 0, nil
	}
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	c := &compiler{
		sizes:    a.BlockSizes,
		memo:     make(map[string]float64),
		maxNodes: maxNodes,
	}
	// Work on canonicalized copies.
	images := make([]Image, len(a.Images))
	for i, img := range a.Images {
		images[i] = append(Image(nil), img...)
	}
	r, err := c.count(images)
	if err != nil {
		return 0, err
	}
	return r, nil
}

type compiler struct {
	sizes    []int32
	memo     map[string]float64
	nodes    int
	maxNodes int
}

// count returns the probability that a uniform choice of one member per
// block covers some image in S (blocks outside S factor out).
func (c *compiler) count(images []Image) (float64, error) {
	if len(images) == 0 {
		return 0, nil
	}
	for _, img := range images {
		if len(img) == 0 {
			return 1, nil // a satisfied image covers everything
		}
	}
	key := imageSetKey(images)
	if v, ok := c.memo[key]; ok {
		return v, nil
	}
	c.nodes++
	if c.nodes > c.maxNodes {
		return 0, fmt.Errorf("%w: compilation exceeded %d nodes", ErrTooLarge, c.maxNodes)
	}

	// Branch on the smallest block id present: a fixed elimination order
	// keeps residual image sets suffix-local, so structured instances
	// (chains, trees in block-id order) memoize to linearly many states.
	// A frequency heuristic looks attractive but strands partially
	// resolved singleton images, blowing the memo up exponentially.
	branch := images[0][0].Block
	for _, img := range images {
		for _, m := range img {
			if m.Block < branch {
				branch = m.Block
			}
		}
	}
	size := float64(c.sizes[branch])

	// Named members of the branch block.
	named := map[int32]bool{}
	for _, img := range images {
		for _, m := range img {
			if m.Block == branch {
				named[m.Fact] = true
			}
		}
	}
	// Images without the branch block survive every branch.
	var without []Image
	for _, img := range images {
		if !hasBlock(img, branch) {
			without = append(without, img)
		}
	}

	total := 0.0
	for member := range named {
		cond := append([]Image(nil), without...)
		for _, img := range images {
			for _, m := range img {
				if m.Block == branch && m.Fact == member {
					cond = append(cond, removeBlock(img, branch))
					break
				}
			}
		}
		sub, err := c.count(cond)
		if err != nil {
			return 0, err
		}
		total += sub / size
	}
	// All unnamed members of the block behave identically: only the
	// images without the block survive.
	if unnamed := size - float64(len(named)); unnamed > 0 {
		sub, err := c.count(without)
		if err != nil {
			return 0, err
		}
		total += sub * unnamed / size
	}
	c.memo[key] = total
	return total, nil
}

func hasBlock(img Image, b int32) bool {
	for _, m := range img {
		if m.Block == b {
			return true
		}
	}
	return false
}

func removeBlock(img Image, b int32) Image {
	out := make(Image, 0, len(img)-1)
	for _, m := range img {
		if m.Block != b {
			out = append(out, m)
		}
	}
	return out
}

// imageSetKey canonicalizes a set of images into a memo key: images are
// sorted and deduplicated; subsumed supersets are kept (subsumption
// elimination would be sound but costs more than it saves here).
func imageSetKey(images []Image) string {
	sorted := make([]Image, len(images))
	copy(sorted, images)
	sort.Slice(sorted, func(i, j int) bool { return imageLess(sorted[i], sorted[j]) })
	var b strings.Builder
	for i, img := range sorted {
		if i > 0 && imageEqual(img, sorted[i-1]) {
			continue
		}
		for _, m := range img {
			fmt.Fprintf(&b, "%d:%d,", m.Block, m.Fact)
		}
		b.WriteByte(';')
	}
	return b.String()
}
