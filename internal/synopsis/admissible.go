// Package synopsis implements the paper's database synopses (Section 4.1)
// and the preprocessing step of Section 5 / Appendix C.
//
// The (Σ,Q)-synopsis of D for a tuple t̄ is the admissible pair (H, B):
// H collects the consistent homomorphic images of Q(t̄) in D, and B the
// blocks of every fact occurring in an image. Approximation schemes only
// ever see the integer-encoded form: blocks are identified by dense local
// ids with a cardinality (the SQL encoding's kcnt), and image facts by
// (block id, member id) pairs — exactly the information the rewriting
// Q^rew of Appendix C produces, and nothing more.
package synopsis

import (
	"fmt"
	"math"
	"math/big"
	"sort"
)

// Member encodes one fact of a homomorphic image: the local block it
// belongs to and its member index within that block (the paper's
// (bid, tid), 0-based).
type Member struct {
	Block int32
	Fact  int32
}

// Image is one consistent homomorphic image h(Q), encoded as members
// sorted by block; consistency (h(Q) |= Σ) means at most one member per
// block, so the Block fields are strictly increasing.
type Image []Member

// Admissible is an encoded admissible pair (H, B). BlockSizes[b] is the
// cardinality of block b in the underlying database (kcnt); member ids
// 0..k-1 of a block name the facts that occur in some image, while ids
// k..size-1 are the anonymous conflicting facts that occur in none.
type Admissible struct {
	BlockSizes []int32
	Images     []Image
}

// Validate checks the structural invariants of an admissible pair:
// H non-empty, every image non-empty with strictly increasing block ids in
// range, member ids within block sizes, all block sizes >= 1, and every
// block touched by at least one image (B is, by definition, the set of
// blocks of facts occurring in images).
func (a *Admissible) Validate() error {
	if len(a.Images) == 0 {
		return fmt.Errorf("synopsis: H is empty (pair is not admissible)")
	}
	for b, sz := range a.BlockSizes {
		if sz < 1 {
			return fmt.Errorf("synopsis: block %d has size %d", b, sz)
		}
	}
	touched := make([]bool, len(a.BlockSizes))
	for i, img := range a.Images {
		if len(img) == 0 {
			return fmt.Errorf("synopsis: image %d is empty", i)
		}
		prev := int32(-1)
		for _, m := range img {
			if m.Block <= prev {
				return fmt.Errorf("synopsis: image %d block ids not strictly increasing", i)
			}
			prev = m.Block
			if int(m.Block) >= len(a.BlockSizes) {
				return fmt.Errorf("synopsis: image %d references unknown block %d", i, m.Block)
			}
			if m.Fact < 0 || m.Fact >= a.BlockSizes[m.Block] {
				return fmt.Errorf("synopsis: image %d member %d out of range for block %d (size %d)", i, m.Fact, m.Block, a.BlockSizes[m.Block])
			}
			touched[m.Block] = true
		}
	}
	for b, ok := range touched {
		if !ok {
			return fmt.Errorf("synopsis: block %d not touched by any image", b)
		}
	}
	return nil
}

// NumBlocks returns |B|.
func (a *Admissible) NumBlocks() int { return len(a.BlockSizes) }

// NumImages returns |H|.
func (a *Admissible) NumImages() int { return len(a.Images) }

// MaxImageSize returns max_{H∈H} |H| (bounded by |Q| per Lemma 4.1(2)).
func (a *Admissible) MaxImageSize() int {
	m := 0
	for _, img := range a.Images {
		if len(img) > m {
			m = len(img)
		}
	}
	return m
}

// DBSize returns |db(B)| exactly: the product of block sizes.
func (a *Admissible) DBSize() *big.Int {
	n := big.NewInt(1)
	for _, sz := range a.BlockSizes {
		n.Mul(n, big.NewInt(int64(sz)))
	}
	return n
}

// LogDBSize returns ln |db(B)|; safe for arbitrarily many blocks.
func (a *Admissible) LogDBSize() float64 {
	s := 0.0
	for _, sz := range a.BlockSizes {
		s += math.Log(float64(sz))
	}
	return s
}

// ImageWeight returns |I^i| / |db(B)| = Π_{b ∈ blocks(H_i)} 1/size(b):
// the fraction of db(B) whose databases contain image i. Image sizes are
// bounded by |Q|, so the product never underflows in practice.
func (a *Admissible) ImageWeight(i int) float64 {
	w := 1.0
	for _, m := range a.Images[i] {
		w /= float64(a.BlockSizes[m.Block])
	}
	return w
}

// SymbolicWeight returns |S•| / |db(B)| = Σ_i |I^i| / |db(B)|, the
// conversion factor between the KL(M) samplers' expected value and
// R(H,B) (Lemmas 4.5 and 4.7).
func (a *Admissible) SymbolicWeight() float64 {
	var s float64
	for i := range a.Images {
		s += a.ImageWeight(i)
	}
	return s
}

// SymbolicSize returns |S•| = Σ_i |I^i| exactly.
func (a *Admissible) SymbolicSize() *big.Int {
	total := big.NewInt(0)
	for i := range a.Images {
		sz := big.NewInt(1)
		touched := make(map[int32]bool, len(a.Images[i]))
		for _, m := range a.Images[i] {
			touched[m.Block] = true
		}
		for b, bs := range a.BlockSizes {
			if !touched[int32(b)] {
				sz.Mul(sz, big.NewInt(int64(bs)))
			}
		}
		total.Add(total, sz)
	}
	return total
}

// Covers reports whether image i is contained in the database of db(B)
// described by chosen, where chosen[b] is the member kept from block b.
func (a *Admissible) Covers(i int, chosen []int32) bool {
	for _, m := range a.Images[i] {
		if chosen[m.Block] != m.Fact {
			return false
		}
	}
	return true
}

// CoverCount returns |{j : H_j ⊆ I}| for the database described by chosen.
func (a *Admissible) CoverCount(chosen []int32) int {
	k := 0
	for i := range a.Images {
		if a.Covers(i, chosen) {
			k++
		}
	}
	return k
}

// FirstCover returns the least j with H_j ⊆ I, or -1.
func (a *Admissible) FirstCover(chosen []int32) int {
	for i := range a.Images {
		if a.Covers(i, chosen) {
			return i
		}
	}
	return -1
}

// Canonicalize sorts each image by block id, sorts the image list
// lexicographically, and removes duplicate images (H is a set of
// databases). The builder calls it; external constructors of hand-made
// pairs should too.
func (a *Admissible) Canonicalize() {
	for _, img := range a.Images {
		sort.Slice(img, func(x, y int) bool { return img[x].Block < img[y].Block })
	}
	sort.Slice(a.Images, func(x, y int) bool { return imageLess(a.Images[x], a.Images[y]) })
	out := a.Images[:0]
	for i, img := range a.Images {
		if i == 0 || !imageEqual(img, a.Images[i-1]) {
			out = append(out, img)
		}
	}
	a.Images = out
}

func imageLess(x, y Image) bool {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		if x[i] != y[i] {
			if x[i].Block != y[i].Block {
				return x[i].Block < y[i].Block
			}
			return x[i].Fact < y[i].Fact
		}
	}
	return len(x) < len(y)
}

func imageEqual(x, y Image) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// Size returns the paper's ||H,B|| = |H| + max_H ||H|| + ||B|| measure,
// with image and block sizes as the size proxies.
func (a *Admissible) Size() int {
	total := len(a.Images) + a.MaxImageSize()
	total += len(a.BlockSizes)
	return total
}
