package synopsis

import (
	"fmt"
	"sort"

	"cqabench/internal/cq"
	"cqabench/internal/engine"
	"cqabench/internal/relation"
)

// BuildViaRewriting computes syn_{Σ,Q}(D) through the paper's literal
// Appendix C pipeline, as the SQL rewriting Q^rew would:
//
//  1. For every relation R of the query, materialize the view Q_R whose
//     rows extend R's tuples with (rid, bid, tid, kcnt): the relation id,
//     the block id (dense rank over key values), the member id (row
//     number within the block) and the block cardinality.
//  2. Evaluate Q over the views, carrying the four extra columns of every
//     atom into the output (the rewriting's SELECT list).
//  3. Decode: a result row is a homomorphic image {[[rid_i, bid_i,
//     tid_i]]}; it satisfies Σ iff equal (rid, bid) pairs agree on tid;
//     consistent rows are grouped by the answer tuple and their encoded
//     blocks completed to cardinality kcnt.
//
// It produces exactly the same Set as Build (the tests assert it) but
// through an independent code path that exercises the paper's encoding —
// the same cross-validation the authors got from running the rewriting on
// PostgreSQL.
func BuildViaRewriting(db *relation.Database, q *cq.Query) (*Set, error) {
	if err := q.Validate(db.Schema); err != nil {
		return nil, err
	}
	bi := relation.BuildBlocks(db)

	// Step 1: the extended schema and database. Every relation of the
	// query gets arity+4 with trailing (rid, bid, tid, kcnt) columns.
	used := map[string]bool{}
	for _, a := range q.Atoms {
		used[a.Rel] = true
	}
	var extDefs []relation.RelDef
	for _, def := range db.Schema.Rels {
		if !used[def.Name] {
			continue
		}
		attrs := append(append([]string(nil), def.Attrs...), "rid", "bid", "tid", "kcnt")
		extDefs = append(extDefs, relation.RelDef{Name: def.Name, Attrs: attrs, KeyLen: 0})
	}
	extSchema, err := relation.NewSchema(extDefs, nil)
	if err != nil {
		return nil, err
	}
	extDB := relation.NewDatabase(extSchema)
	extDB.Dict = db.Dict
	for ri, tb := range db.Tables {
		name := db.Schema.Rels[ri].Name
		if !used[name] {
			continue
		}
		for row, tuple := range tb.Tuples {
			f := relation.FactRef{Rel: int32(ri), Row: int32(row)}
			block := bi.BlockOf(f)
			ext := make(relation.Tuple, 0, len(tuple)+4)
			ext = append(ext, tuple...)
			ext = append(ext,
				db.Dict.Int(int64(ri)),                // rid
				db.Dict.Int(int64(block.Bid)),         // bid (dense rank)
				db.Dict.Int(int64(bi.MemberIndex(f))), // tid (row number)
				db.Dict.Int(int64(block.Size())),      // kcnt
			)
			if _, err := extDB.InsertTuple(name, ext); err != nil {
				return nil, err
			}
		}
	}

	// Step 2: the rewritten query: each atom gains four fresh variables.
	rew := &cq.Query{NumVars: q.NumVars, Out: append([]int(nil), q.Out...)}
	rew.VarNames = append([]string(nil), q.VarNames...)
	for len(rew.VarNames) < q.NumVars {
		rew.VarNames = append(rew.VarNames, fmt.Sprintf("v%d", len(rew.VarNames)))
	}
	type extCols struct{ rid, bid, tid, kcnt int }
	perAtom := make([]extCols, len(q.Atoms))
	fresh := func(name string) int {
		id := rew.NumVars
		rew.NumVars++
		rew.VarNames = append(rew.VarNames, fmt.Sprintf("%s%d", name, id))
		return id
	}
	for ai, a := range q.Atoms {
		cols := extCols{rid: fresh("rid"), bid: fresh("bid"), tid: fresh("tid"), kcnt: fresh("kcnt")}
		perAtom[ai] = cols
		args := append([]cq.Term(nil), a.Args...)
		args = append(args, cq.V(cols.rid), cq.V(cols.bid), cq.V(cols.tid), cq.V(cols.kcnt))
		rew.Atoms = append(rew.Atoms, cq.Atom{Rel: a.Rel, Args: args})
	}

	// Step 3: evaluate and decode.
	type group struct {
		tuple  relation.Tuple
		images [][]blockRef
		kcnt   map[blockKey]int64
	}
	groups := make(map[string]*group)
	var order []string

	ev := engine.NewEvaluator(extDB)
	err = ev.EnumerateHomomorphisms(rew, func(h *engine.Homomorphism) error {
		// Decode this row's per-atom identifiers.
		refs := make([]blockRef, 0, len(q.Atoms))
		kcnts := make(map[blockKey]int64, len(q.Atoms))
		consistent := true
		seen := make(map[blockKey]int64, len(q.Atoms))
		for ai := range q.Atoms {
			cols := perAtom[ai]
			rid := int64(h.Assign[cols.rid])
			bid := int64(h.Assign[cols.bid])
			tid := int64(h.Assign[cols.tid])
			kcnt := int64(h.Assign[cols.kcnt])
			bk := blockKey{rid, bid}
			if prev, ok := seen[bk]; ok {
				if prev != tid {
					consistent = false
					break
				}
			} else {
				seen[bk] = tid
			}
			kcnts[bk] = kcnt
			refs = append(refs, blockRef{rid: rid, bid: bid, tid: tid})
		}
		if !consistent {
			return nil // h(Q) violates Σ
		}
		t := make(relation.Tuple, len(q.Out))
		for i, v := range q.Out {
			t[i] = h.Assign[v]
		}
		key := encodeTupleKey(t)
		g, ok := groups[key]
		if !ok {
			g = &group{tuple: t, kcnt: make(map[blockKey]int64)}
			groups[key] = g
			order = append(order, key)
		}
		g.images = append(g.images, refs)
		for bk, k := range kcnts {
			g.kcnt[bk] = k
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	set := &Set{}
	distinct := map[string]bool{}
	for _, key := range order {
		g := groups[key]
		entry, err := decodeRewGroup(g.tuple, g.images, g.kcnt)
		if err != nil {
			return nil, err
		}
		set.Entries = append(set.Entries, entry)
		for _, img := range g.images {
			distinct[encodeBlockRefs(img)] = true
		}
	}
	set.HomomorphicSize = len(distinct)
	sort.Slice(set.Entries, func(i, j int) bool {
		return set.Entries[i].Tuple.Less(set.Entries[j].Tuple)
	})
	return set, nil
}

// blockRef is the decoded [[rid, bid, tid]] identifier of one image fact.
type blockRef struct{ rid, bid, tid int64 }

// blockKey identifies a block by its (rid, bid) pair.
type blockKey struct{ rid, bid int64 }

// decodeRewGroup encodes one answer tuple's images into an admissible
// pair, mapping (rid, bid) to local blocks and (rid, bid, tid) to local
// members, with block cardinalities from kcnt. Entry.Facts is left empty:
// the rewriting route works purely on identifiers, exactly like the
// paper's encoded synopsis.
func decodeRewGroup(tuple relation.Tuple, images [][]blockRef, kcnt map[blockKey]int64) (Entry, error) {
	blockLocal := make(map[blockKey]int32)
	var blockSizes []int32
	memberLocal := make(map[blockRef]Member)
	nextMember := make(map[int32]int32)

	pair := &Admissible{}
	for _, img := range images {
		var enc Image
		seen := make(map[blockRef]bool, len(img))
		for _, r := range img {
			if seen[r] {
				continue // the same fact twice in one image
			}
			seen[r] = true
			m, ok := memberLocal[r]
			if !ok {
				bk := blockKey{r.rid, r.bid}
				lb, ok := blockLocal[bk]
				if !ok {
					lb = int32(len(blockSizes))
					blockLocal[bk] = lb
					blockSizes = append(blockSizes, int32(kcnt[bk]))
				}
				m = Member{Block: lb, Fact: nextMember[lb]}
				nextMember[lb]++
				memberLocal[r] = m
			}
			enc = append(enc, m)
		}
		pair.Images = append(pair.Images, enc)
	}
	pair.BlockSizes = blockSizes
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		return Entry{}, err
	}
	return Entry{Tuple: tuple, Pair: pair}, nil
}

func encodeBlockRefs(refs []blockRef) string {
	sorted := append([]blockRef(nil), refs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].rid != sorted[j].rid {
			return sorted[i].rid < sorted[j].rid
		}
		if sorted[i].bid != sorted[j].bid {
			return sorted[i].bid < sorted[j].bid
		}
		return sorted[i].tid < sorted[j].tid
	})
	out := ""
	var last blockRef
	first := true
	for _, r := range sorted {
		if !first && r == last {
			continue // duplicate fact within the image
		}
		first = false
		last = r
		out += fmt.Sprintf("%d:%d:%d;", r.rid, r.bid, r.tid)
	}
	return out
}
