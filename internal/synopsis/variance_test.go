package synopsis

import (
	"math"
	"testing"
	"testing/quick"
)

func momentsPair(t *testing.T) *Admissible {
	t.Helper()
	pair := &Admissible{
		BlockSizes: []int32{2, 3, 2},
		Images: []Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 0}, {Block: 1, Fact: 1}},
			{{Block: 1, Fact: 2}, {Block: 2, Fact: 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	return pair
}

func TestExactMomentsConsistency(t *testing.T) {
	pair := momentsPair(t)
	m, err := pair.ExactMoments(0)
	if err != nil {
		t.Fatal(err)
	}
	// RNatural must equal the brute-force ratio.
	bf, err := pair.BruteForceRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.RNatural-bf) > 1e-12 {
		t.Fatalf("RNatural = %v vs brute force %v", m.RNatural, bf)
	}
	// MeanSymbolic must equal R * |db(B)| / |S•| (Lemma 4.5).
	want := bf / pair.SymbolicWeight()
	if math.Abs(m.MeanSymbolic-want) > 1e-12 {
		t.Fatalf("MeanSymbolic = %v, want %v", m.MeanSymbolic, want)
	}
	if m.VarNatural() < 0 || m.VarKL < 0 || m.VarKLM < 0 {
		t.Fatalf("negative variance: %+v", m)
	}
}

// The paper's §4.2 claim, verified analytically: KLM's variance never
// exceeds KL's (same mean, KLM averages over witnesses).
func TestKLMVarianceNeverExceedsKLProperty(t *testing.T) {
	f := func(seed []byte) bool {
		pair := randomPair(seed)
		if pair == nil {
			return true
		}
		m, err := pair.ExactMoments(0)
		if err != nil {
			return true
		}
		return m.VarKLM <= m.VarKL+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// With overlapping images the inequality is strict: overlapping witnesses
// make KL's indicator noisier than KLM's average.
func TestKLMVarianceStrictlySmallerOnOverlap(t *testing.T) {
	pair := momentsPair(t)
	m, err := pair.ExactMoments(0)
	if err != nil {
		t.Fatal(err)
	}
	if !(m.VarKLM < m.VarKL) {
		t.Fatalf("expected strict inequality: VarKLM=%v VarKL=%v", m.VarKLM, m.VarKL)
	}
}

// With pairwise-disjoint images every covered I has exactly one witness:
// the samplers coincide and so do the variances.
func TestVariancesEqualOnDisjointImages(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 2},
		Images: []Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 1}, {Block: 1, Fact: 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := pair.ExactMoments(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.VarKL-m.VarKLM) > 1e-12 {
		t.Fatalf("disjoint images should equalize variances: %+v", m)
	}
}

func TestExactMomentsLimits(t *testing.T) {
	big := &Admissible{}
	for i := 0; i < 64; i++ {
		big.BlockSizes = append(big.BlockSizes, 4)
	}
	big.Images = []Image{{{Block: 0, Fact: 0}}}
	if _, err := big.ExactMoments(1 << 20); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
	empty := &Admissible{}
	m, err := empty.ExactMoments(0)
	if err != nil || m.RNatural != 0 {
		t.Fatalf("empty pair: %+v, %v", m, err)
	}
}
