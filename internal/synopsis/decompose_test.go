package synopsis

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestComponentsDisjointImages(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 2, 2, 2},
		Images: []Image{
			{{Block: 0, Fact: 0}},
			{{Block: 1, Fact: 0}, {Block: 2, Fact: 1}},
			{{Block: 3, Fact: 0}},
			{{Block: 2, Fact: 0}}, // shares block 2 with image 1
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	comps := pair.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 ({0}, {1,3 via block 2}, {2})", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestComponentsSingle(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 2},
		Images: []Image{
			{{Block: 0, Fact: 0}, {Block: 1, Fact: 0}},
			{{Block: 0, Fact: 1}},
		},
	}
	pair.Canonicalize()
	if got := pair.Components(); len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("components = %v", got)
	}
}

func TestDecomposedMatchesDirect(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 3, 2, 4, 2},
		Images: []Image{
			{{Block: 0, Fact: 0}},
			{{Block: 1, Fact: 1}, {Block: 2, Fact: 0}},
			{{Block: 3, Fact: 2}},
			{{Block: 4, Fact: 1}},
			{{Block: 1, Fact: 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	direct, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	decomposed, err := pair.ExactRatioDecomposed(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-decomposed) > 1e-12 {
		t.Fatalf("direct %v vs decomposed %v", direct, decomposed)
	}
}

// The decomposition's reason to exist: many independent single-image
// components exceed the flat inclusion-exclusion limit but remain exact
// under decomposition.
func TestDecomposedScalesBeyondFlatLimit(t *testing.T) {
	pair := &Admissible{}
	for i := 0; i < 40; i++ {
		pair.BlockSizes = append(pair.BlockSizes, 2)
		pair.Images = append(pair.Images, Image{{Block: int32(i), Fact: 0}})
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := pair.ExactRatio(22); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("flat inclusion-exclusion unexpectedly handled 40 images: %v", err)
	}
	got, err := pair.ExactRatioDecomposed(22)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.5, 40)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("decomposed = %v, want %v", got, want)
	}
}

func TestDecomposedLargeComponentStillFails(t *testing.T) {
	// One giant entangled component: decomposition cannot help.
	pair := &Admissible{BlockSizes: []int32{2}}
	for i := 0; i < 30; i++ {
		pair.BlockSizes = append(pair.BlockSizes, 2)
		pair.Images = append(pair.Images, Image{{Block: 0, Fact: 0}, {Block: int32(i + 1), Fact: 0}})
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := pair.ExactRatioDecomposed(22); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDecomposedEmpty(t *testing.T) {
	pair := &Admissible{}
	r, err := pair.ExactRatioDecomposed(0)
	if err != nil || r != 0 {
		t.Fatalf("empty pair: %v, %v", r, err)
	}
}

// Property: decomposition always agrees with brute force on random pairs.
func TestDecomposedProperty(t *testing.T) {
	f := func(seed []byte) bool {
		pair := randomPair(seed)
		if pair == nil {
			return true
		}
		bf, err1 := pair.BruteForceRatio(0)
		dec, err2 := pair.ExactRatioDecomposed(0)
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(bf-dec) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoCombinesAlgorithms(t *testing.T) {
	// Two components: a small dense one (inclusion-exclusion) and a long
	// chain (compilation).
	pair := &Admissible{}
	for b := 0; b < 3; b++ {
		pair.BlockSizes = append(pair.BlockSizes, 2)
	}
	pair.Images = append(pair.Images,
		Image{{Block: 0, Fact: 0}, {Block: 1, Fact: 0}},
		Image{{Block: 1, Fact: 1}, {Block: 2, Fact: 0}},
	)
	chainStart := int32(len(pair.BlockSizes))
	const n = 40
	for b := 0; b <= n; b++ {
		pair.BlockSizes = append(pair.BlockSizes, 2)
	}
	for i := 0; i < n; i++ {
		pair.Images = append(pair.Images, Image{
			{Block: chainStart + int32(i), Fact: 0},
			{Block: chainStart + int32(i) + 1, Fact: 0},
		})
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := pair.ExactRatioAuto(22, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got >= 1 {
		t.Fatalf("auto ratio = %v out of open interval", got)
	}
	// Agreement with full compilation (which handles both components).
	comp, err := pair.ExactRatioCompiled(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-comp) > 1e-9 {
		t.Fatalf("auto %v vs compiled %v", got, comp)
	}
}

func TestAutoEmpty(t *testing.T) {
	pair := &Admissible{}
	if r, err := pair.ExactRatioAuto(0, 0); err != nil || r != 0 {
		t.Fatalf("empty: %v, %v", r, err)
	}
}
