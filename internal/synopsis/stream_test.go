package synopsis

import (
	"errors"
	"math"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

func TestStreamMatchesBuild(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, d)", db.Dict)
	built, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Entry
	if err := Stream(db, q, func(e Entry) error {
		streamed = append(streamed, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(built.Entries) {
		t.Fatalf("streamed %d entries, built %d", len(streamed), len(built.Entries))
	}
	for i := range streamed {
		if !streamed[i].Tuple.Equal(built.Entries[i].Tuple) {
			t.Fatalf("entry %d tuple mismatch", i)
		}
		rs, err := streamed[i].Pair.ExactRatio(0)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := built.Entries[i].Pair.ExactRatio(0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rs-rb) > 1e-12 {
			t.Fatalf("entry %d ratio mismatch: %v vs %v", i, rs, rb)
		}
		if len(streamed[i].Facts) != len(built.Entries[i].Facts) {
			t.Fatalf("entry %d fact sets differ", i)
		}
	}
}

func TestStreamOrdered(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(i, n) :- Employee(i, n, d)", db.Dict)
	var prev relation.Tuple
	if err := Stream(db, q, func(e Entry) error {
		if prev != nil && !prev.Less(e.Tuple) {
			t.Fatalf("entries out of order: %v then %v", prev, e.Tuple)
		}
		prev = e.Tuple.Clone()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamEarlyStop(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, d)", db.Dict)
	calls := 0
	if err := Stream(db, q, func(Entry) error {
		calls++
		return ErrStop
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after ErrStop", calls)
	}
}

func TestStreamCallbackError(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, d)", db.Dict)
	boom := errors.New("boom")
	err := Stream(db, q, func(Entry) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamEmptyQuery(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(99, n, d)", db.Dict)
	if err := Stream(db, q, func(Entry) error {
		t.Fatal("callback for empty result")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
