package synopsis

import (
	"fmt"
	"math/big"
)

// SamplerMoments holds the exact first and second moments of the three
// samplers over an admissible pair, computed by enumerating db(B). The
// paper's §4.2 discussion of KL vs KLM rests on their variances; these
// exact values let tests verify the claims analytically instead of
// empirically.
type SamplerMoments struct {
	// RNatural is R(H,B) = E[SampleNatural]; Natural's variance is
	// R(1-R) since the sampler is 0/1.
	RNatural float64
	// MeanSymbolic is Num/|S•| = E[SampleKL] = E[SampleKLM].
	MeanSymbolic float64
	// VarKL and VarKLM are the samplers' exact variances.
	VarKL, VarKLM float64
}

// VarNatural returns Natural's variance R(1-R).
func (m SamplerMoments) VarNatural() float64 {
	return m.RNatural * (1 - m.RNatural)
}

// ExactMoments enumerates db(B) (bounded by limit; 0 = 1<<20) and
// computes the exact moments of all three samplers.
//
// Derivations: over the symbolic space S• = {(i, I) : H_i ⊆ I}, KL
// returns 1 exactly on pairs whose i is the first witness of I, so
// E[KL] = Num/|S•| and, being 0/1, Var[KL] = E(1-E). KLM returns 1/k(I)
// with k(I) = |{j : H_j ⊆ I}|; each I contributes k(I) pairs, so
// E[KLM] = Σ_I k(I)·(1/k(I))/|S•| = Num/|S•| and
// E[KLM²] = Σ_I k(I)·(1/k(I)²)/|S•| = Σ_I (1/k(I))/|S•|.
func (a *Admissible) ExactMoments(limit int64) (SamplerMoments, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	var m SamplerMoments
	dbSize := a.DBSize()
	if dbSize.Cmp(big.NewInt(limit)) > 0 {
		return m, fmt.Errorf("%w: |db(B)| = %v > %d", ErrTooLarge, dbSize, limit)
	}
	if len(a.Images) == 0 {
		return m, nil
	}
	nb := len(a.BlockSizes)
	chosen := make([]int32, nb)
	var total, covered, num int64
	var sumInvK float64 // Σ_I 1/k(I) over covered I
	var symSize int64   // |S•| = Σ_I k(I)
	for {
		total++
		k := a.CoverCount(chosen)
		if k > 0 {
			covered++
			num += 1 // numerator counts covered I once
			symSize += int64(k)
			sumInvK += 1 / float64(k)
		}
		i := 0
		for ; i < nb; i++ {
			chosen[i]++
			if chosen[i] < a.BlockSizes[i] {
				break
			}
			chosen[i] = 0
		}
		if i == nb {
			break
		}
	}
	m.RNatural = float64(covered) / float64(total)
	if symSize == 0 {
		return m, nil
	}
	mean := float64(num) / float64(symSize)
	m.MeanSymbolic = mean
	// KL is 0/1 valued.
	m.VarKL = mean * (1 - mean)
	// KLM: E[X²] = Σ_I (1/k(I)) / |S•|.
	secondMoment := sumInvK / float64(symSize)
	m.VarKLM = secondMoment - mean*mean
	return m, nil
}
