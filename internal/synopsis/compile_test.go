package synopsis

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCompiledMatchesBruteForce(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 3, 2, 4},
		Images: []Image{
			{{Block: 0, Fact: 0}, {Block: 1, Fact: 2}},
			{{Block: 1, Fact: 2}, {Block: 2, Fact: 1}},
			{{Block: 0, Fact: 1}, {Block: 3, Fact: 3}},
			{{Block: 2, Fact: 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	bf, err := pair.BruteForceRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := pair.ExactRatioCompiled(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bf-comp) > 1e-12 {
		t.Fatalf("brute force %v vs compiled %v", bf, comp)
	}
}

// A 60-image chain: images i and i+1 share a block. Inclusion–exclusion
// is 2^60 and decomposition sees one giant component, but compilation
// solves it via memoized linear structure.
func TestCompiledHandlesChains(t *testing.T) {
	pair := &Admissible{}
	const n = 60
	for b := 0; b <= n; b++ {
		pair.BlockSizes = append(pair.BlockSizes, 2)
	}
	for i := 0; i < n; i++ {
		pair.Images = append(pair.Images, Image{
			{Block: int32(i), Fact: 0},
			{Block: int32(i + 1), Fact: 0},
		})
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := pair.ExactRatio(22); !errors.Is(err, ErrTooLarge) {
		t.Fatal("flat inclusion-exclusion should refuse 60 images")
	}
	if _, err := pair.ExactRatioDecomposed(22); !errors.Is(err, ErrTooLarge) {
		t.Fatal("decomposition should see one giant component")
	}
	got, err := pair.ExactRatioCompiled(0)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: probability of some adjacent 00-pair in a uniform bit string
	// of length 61. Check against a small-n recurrence: let q(n) be the
	// probability NO adjacent pair of zeros among n+1 bits; count strings
	// with no two consecutive zeros = Fibonacci(n+3).
	fib := make([]float64, 64+3)
	fib[1], fib[2] = 1, 2
	for i := 3; i < len(fib); i++ {
		fib[i] = fib[i-1] + fib[i-2]
	}
	want := 1 - fib[n+2]/math.Pow(2, float64(n+1))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("chain ratio = %v, want %v", got, want)
	}
}

func TestCompiledNodeLimit(t *testing.T) {
	// A dense random pair with a tiny node budget must refuse.
	pair := benchLikePair()
	if _, err := pair.ExactRatioCompiled(3); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("node limit not enforced: %v", err)
	}
}

func benchLikePair() *Admissible {
	pair := &Admissible{BlockSizes: []int32{2, 2, 2, 2, 2, 2}}
	for i := 0; i < 10; i++ {
		img := Image{
			{Block: int32(i % 6), Fact: int32(i % 2)},
			{Block: int32((i + 2) % 6), Fact: int32((i + 1) % 2)},
		}
		pair.Images = append(pair.Images, img)
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}

func TestCompiledEmpty(t *testing.T) {
	pair := &Admissible{}
	r, err := pair.ExactRatioCompiled(0)
	if err != nil || r != 0 {
		t.Fatalf("empty: %v, %v", r, err)
	}
}

func TestCompiledCertainTuple(t *testing.T) {
	// Both members of the only block are covered: frequency 1.
	pair := &Admissible{
		BlockSizes: []int32{2},
		Images: []Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 1}},
		},
	}
	pair.Canonicalize()
	r, err := pair.ExactRatioCompiled(0)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("certain pair: %v, %v", r, err)
	}
}

// Property: all three exact algorithms agree on random pairs.
func TestThreeExactAlgorithmsAgreeProperty(t *testing.T) {
	f := func(seed []byte) bool {
		pair := randomPair(seed)
		if pair == nil {
			return true
		}
		bf, err1 := pair.BruteForceRatio(0)
		dec, err2 := pair.ExactRatioDecomposed(0)
		comp, err3 := pair.ExactRatioCompiled(0)
		if err1 != nil || err2 != nil || err3 != nil {
			return true
		}
		return math.Abs(bf-dec) < 1e-9 && math.Abs(bf-comp) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExactInclusionExclusion(b *testing.B) {
	pair := benchLikePair()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pair.ExactRatio(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactCompiled(b *testing.B) {
	pair := benchLikePair()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pair.ExactRatioCompiled(0); err != nil {
			b.Fatal(err)
		}
	}
}
