package synopsis

import (
	"errors"
	"sort"

	"cqabench/internal/cq"
	"cqabench/internal/engine"
	"cqabench/internal/relation"
)

// ErrStop may be returned by a Stream callback to end streaming early.
var ErrStop = errors.New("synopsis: stop streaming")

// Stream is the bounded-memory variant of Build from the remark in
// Appendix C: instead of materializing the whole set syn_{Σ,Q}(D), it
// groups the consistent homomorphisms by answer tuple (the analogue of
// Q^rew's ORDER BY ᾱ) and encodes + emits one (Σ,Q)-synopsis at a time.
// Only one Admissible pair is alive per callback, so the peak memory is
// the homomorphism records plus the largest single synopsis, not the sum
// of all synopses. The emitted entries arrive in ascending tuple order.
func Stream(db *relation.Database, q *cq.Query, fn func(Entry) error) error {
	bi := relation.BuildBlocks(db)
	ev := engine.NewEvaluator(db)

	// Pass 1: collect minimal per-homomorphism records.
	type rec struct {
		tuple relation.Tuple
		image []relation.FactRef
	}
	var recs []rec
	err := ev.EnumerateHomomorphisms(q, func(h *engine.Homomorphism) error {
		if !bi.SatisfiesKeys(h.Image) {
			return nil
		}
		t := make(relation.Tuple, len(q.Out))
		for i, v := range q.Out {
			t[i] = h.Assign[v]
		}
		recs = append(recs, rec{tuple: t, image: append([]relation.FactRef(nil), h.Image...)})
		return nil
	})
	if err != nil {
		return err
	}

	// Group by answer tuple (the ORDER BY).
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].tuple.Less(recs[j].tuple) })

	// Pass 2: encode and emit group by group.
	for lo := 0; lo < len(recs); {
		hi := lo + 1
		for hi < len(recs) && recs[hi].tuple.Equal(recs[lo].tuple) {
			hi++
		}
		images := make([][]relation.FactRef, 0, hi-lo)
		for k := lo; k < hi; k++ {
			images = append(images, recs[k].image)
		}
		entry, err := encodeEntry(bi, recs[lo].tuple, images)
		if err != nil {
			return err
		}
		if err := fn(entry); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
		lo = hi
	}
	return nil
}
