package synopsis

import (
	"fmt"
	"sort"
)

// Components partitions the images of an admissible pair into connected
// components of the block-sharing graph: two images are connected when
// they touch a common block. Databases in db(B) cover images of different
// components independently (the components fix disjoint block sets), so
//
//	R(H, B) = 1 − Π_c (1 − R(H_c, B_c))
//
// which lets ExactRatioDecomposed replace one 2^|H| inclusion–exclusion
// with one 2^|H_c| per component — exponential only in the largest
// entangled group of images.
func (a *Admissible) Components() [][]int {
	n := len(a.Images)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	// Union images sharing a block.
	blockFirst := make(map[int32]int)
	for i, img := range a.Images {
		for _, m := range img {
			if j, ok := blockFirst[m.Block]; ok {
				union(i, j)
			} else {
				blockFirst[m.Block] = i
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// subPair extracts the sub-pair induced by the given image indexes,
// keeping only the blocks those images touch (untouched blocks cancel in
// the ratio).
func (a *Admissible) subPair(imageIdx []int) *Admissible {
	remap := make(map[int32]int32)
	sub := &Admissible{}
	for _, i := range imageIdx {
		img := make(Image, len(a.Images[i]))
		for k, m := range a.Images[i] {
			lb, ok := remap[m.Block]
			if !ok {
				lb = int32(len(sub.BlockSizes))
				remap[m.Block] = lb
				sub.BlockSizes = append(sub.BlockSizes, a.BlockSizes[m.Block])
			}
			img[k] = Member{Block: lb, Fact: m.Fact}
		}
		sub.Images = append(sub.Images, img)
	}
	sub.Canonicalize()
	return sub
}

// ExactRatioDecomposed computes R(H, B) exactly by independent-component
// factorization, running inclusion–exclusion per component. maxImages
// bounds the largest component (0 = default 22); pairs whose largest
// entangled component exceeds it still fail with ErrTooLarge, but pairs
// with many small components now succeed where ExactRatio could not.
func (a *Admissible) ExactRatioDecomposed(maxImages int) (float64, error) {
	if len(a.Images) == 0 {
		return 0, nil
	}
	missProb := 1.0
	for _, comp := range a.Components() {
		sub := a.subPair(comp)
		r, err := sub.ExactRatio(maxImages)
		if err != nil {
			return 0, fmt.Errorf("component of %d images: %w", len(comp), err)
		}
		missProb *= 1 - r
	}
	return 1 - missProb, nil
}

// ExactRatioAuto combines the three exact algorithms: component
// factorization with inclusion–exclusion per small component and
// knowledge compilation for components too entangled for it. It is the
// strongest exact baseline the library offers (used by internal/cqa's
// exact answers); it still fails with ErrTooLarge on dense components
// whose compilation exceeds the node budget.
func (a *Admissible) ExactRatioAuto(maxImages, maxNodes int) (float64, error) {
	if len(a.Images) == 0 {
		return 0, nil
	}
	if maxImages <= 0 {
		maxImages = 22
	}
	missProb := 1.0
	for _, comp := range a.Components() {
		sub := a.subPair(comp)
		var r float64
		var err error
		if len(comp) <= maxImages {
			r, err = sub.ExactRatio(maxImages)
		} else {
			r, err = sub.ExactRatioCompiled(maxNodes)
		}
		if err != nil {
			return 0, fmt.Errorf("component of %d images: %w", len(comp), err)
		}
		missProb *= 1 - r
	}
	return 1 - missProb, nil
}
