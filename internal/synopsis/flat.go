package synopsis

// FlatImages is the flattened, cache-friendly layout of an admissible
// pair's image list: every image's members concatenated into one
// contiguous []Member with an offsets array delimiting images. The
// sampling kernels traverse it instead of the pointer-chasing
// [][]Member form — image checks walk one dense array, so the millions
// of coverage tests an estimation run performs stay in cache.
//
// A FlatImages is immutable once built; it may be shared freely across
// samplers of the same pair (the kernels only read it).
type FlatImages struct {
	// Members holds every image's members back to back, images in
	// canonical order, each image's members sorted by block.
	Members []Member
	// Offsets has NumImages()+1 entries: image i spans
	// Members[Offsets[i]:Offsets[i+1]].
	Offsets []int32
}

// Flatten builds the flat layout of the pair's images. O(total members);
// sampler constructors call it once per estimation run, which amortizes
// over the run's sample draws immediately.
func (a *Admissible) Flatten() *FlatImages {
	total := 0
	for _, img := range a.Images {
		total += len(img)
	}
	f := &FlatImages{
		Members: make([]Member, 0, total),
		Offsets: make([]int32, 1, len(a.Images)+1),
	}
	for _, img := range a.Images {
		f.Members = append(f.Members, img...)
		f.Offsets = append(f.Offsets, int32(len(f.Members)))
	}
	return f
}

// NumImages returns |H|.
func (f *FlatImages) NumImages() int { return len(f.Offsets) - 1 }

// Image returns image i's members as a view into the flat array.
func (f *FlatImages) Image(i int) []Member {
	return f.Members[f.Offsets[i]:f.Offsets[i+1]]
}

// Width returns |H_i| (the image's member count).
func (f *FlatImages) Width(i int) int {
	return int(f.Offsets[i+1] - f.Offsets[i])
}

// Covers reports whether image i is contained in the database described
// by chosen. Identical semantics to Admissible.Covers.
func (f *FlatImages) Covers(i int, chosen []int32) bool {
	for _, m := range f.Members[f.Offsets[i]:f.Offsets[i+1]] {
		if chosen[m.Block] != m.Fact {
			return false
		}
	}
	return true
}

// FirstCover returns the least i with H_i ⊆ I, or -1. Identical
// semantics to Admissible.FirstCover.
func (f *FlatImages) FirstCover(chosen []int32) int {
	n := f.NumImages()
	for i := 0; i < n; i++ {
		if f.Covers(i, chosen) {
			return i
		}
	}
	return -1
}

// CoverCount returns |{i : H_i ⊆ I}|. Identical semantics to
// Admissible.CoverCount.
func (f *FlatImages) CoverCount(chosen []int32) int {
	k := 0
	n := f.NumImages()
	for i := 0; i < n; i++ {
		if f.Covers(i, chosen) {
			k++
		}
	}
	return k
}

// Shape summarizes the quantities kernel selection is based on. All
// fields derive from the pair alone, so the choice of sampling kernel is
// a pure function of synopsis shape.
type Shape struct {
	Images    int     // |H|
	Blocks    int     // |B|
	MeanBlock float64 // mean block cardinality
	MeanWidth float64 // mean image width |H_i|
	// FirstBlocks counts the distinct blocks appearing as some image's
	// first member — the lookups a first-member index performs per draw.
	FirstBlocks int
	// ExpectedCandidates is the expected number of candidate images a
	// first-member index visits per uniform draw from db(B):
	// Σ_b |{i : first(H_i) ∈ block b}| / size(b).
	ExpectedCandidates float64
}

// ShapeOf computes the pair's kernel-selection shape. O(|H| + |B|).
func (a *Admissible) ShapeOf() Shape {
	s := Shape{Images: len(a.Images), Blocks: len(a.BlockSizes)}
	var sizeSum float64
	for _, sz := range a.BlockSizes {
		sizeSum += float64(sz)
	}
	if s.Blocks > 0 {
		s.MeanBlock = sizeSum / float64(s.Blocks)
	}
	firstCount := make(map[int32]int, len(a.BlockSizes))
	members := 0
	for _, img := range a.Images {
		members += len(img)
		firstCount[img[0].Block]++
	}
	if s.Images > 0 {
		s.MeanWidth = float64(members) / float64(s.Images)
	}
	s.FirstBlocks = len(firstCount)
	for b, n := range firstCount {
		s.ExpectedCandidates += float64(n) / float64(a.BlockSizes[b])
	}
	return s
}
