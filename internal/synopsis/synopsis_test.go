package synopsis

import (
	"errors"
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
	"cqabench/internal/repair"
)

func employeeDB(t *testing.T) *relation.Database {
	t.Helper()
	s := relation.MustSchema([]relation.RelDef{
		{Name: "Employee", Attrs: []string{"id", "name", "dept"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	db.MustInsert("Employee", 1, "Bob", "HR")
	db.MustInsert("Employee", 1, "Bob", "IT")
	db.MustInsert("Employee", 2, "Alice", "IT")
	db.MustInsert("Employee", 2, "Tim", "IT")
	return db
}

func TestBuildExampleBoolean(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(1, n1, d), Employee(2, n2, d)", db.Dict)
	set, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Entries) != 1 {
		t.Fatalf("entries = %d, want 1 (Boolean)", len(set.Entries))
	}
	pair := set.Entries[0].Pair
	// Witnesses: (Bob,IT)&(Alice,IT), (Bob,IT)&(Tim,IT): 2 images.
	if pair.NumImages() != 2 {
		t.Fatalf("|H| = %d, want 2", pair.NumImages())
	}
	got, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("R(H,B) = %v, want 0.5", got)
	}
	bf, err := pair.BruteForceRatio(0)
	if err != nil || math.Abs(bf-got) > 1e-12 {
		t.Fatalf("brute force = %v (%v), want %v", bf, err, got)
	}
}

func TestBuildFiltersInconsistentImages(t *testing.T) {
	db := employeeDB(t)
	// Q() :- Employee(1, n, d1), Employee(1, m, d2): any homomorphism using
	// both (1,Bob,HR) and (1,Bob,IT) violates the key; only same-fact
	// images survive.
	q := cq.MustParse("Q() :- Employee(1, n, d1), Employee(1, m, d2)", db.Dict)
	set, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Entries) != 1 {
		t.Fatalf("entries = %d", len(set.Entries))
	}
	pair := set.Entries[0].Pair
	// Two consistent images: {(1,Bob,HR)}, {(1,Bob,IT)} (the mixed ones are
	// filtered).
	if pair.NumImages() != 2 {
		t.Fatalf("|H| = %d, want 2", pair.NumImages())
	}
	r, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("R = %v, want 1 (one of the two facts is always kept)", r)
	}
}

func TestBuildNonBooleanEntries(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)
	set, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Entries) != 3 { // Bob, Alice, Tim
		t.Fatalf("entries = %d, want 3", len(set.Entries))
	}
	for _, e := range set.Entries {
		r, err := e.Pair.ExactRatio(0)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := repair.ExactRelativeFreq(db, q, e.Tuple, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-exact) > 1e-12 {
			t.Fatalf("tuple %v: synopsis ratio %v vs repair enumeration %v", e.Tuple, r, exact)
		}
	}
}

func TestNoAnswersEmptySet(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(9, n, d)", db.Dict)
	set, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Entries) != 0 || set.HomomorphicSize != 0 || set.Balance() != 0 {
		t.Fatalf("empty query: %+v", set)
	}
}

func TestDynamics(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)
	set, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if set.OutputSize() != 3 {
		t.Fatalf("output size = %d", set.OutputSize())
	}
	if set.HomomorphicSize != 3 { // three distinct single-fact images
		t.Fatalf("homomorphic size = %d, want 3", set.HomomorphicSize)
	}
	if set.Balance() != 1 {
		t.Fatalf("balance = %v, want 1", set.Balance())
	}
	if set.AvgSynopsisSize() != 1 {
		t.Fatalf("avg synopsis size = %v", set.AvgSynopsisSize())
	}
	// The Boolean version has all images in one synopsis: balance 1/3.
	setB, err := Build(db, q.Boolean())
	if err != nil {
		t.Fatal(err)
	}
	if setB.OutputSize() != 1 || setB.HomomorphicSize != 3 {
		t.Fatalf("boolean dynamics: out=%d hom=%d", setB.OutputSize(), setB.HomomorphicSize)
	}
	if math.Abs(setB.Balance()-1.0/3) > 1e-12 {
		t.Fatalf("boolean balance = %v", setB.Balance())
	}
}

func TestImageFacts(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q(n) :- Employee(i, n, 'IT')", db.Dict)
	set, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	facts := set.ImageFacts()
	if len(facts) != 3 {
		t.Fatalf("image facts = %d, want 3 (the IT facts)", len(facts))
	}
	for i := 1; i < len(facts); i++ {
		if !facts[i-1].Less(facts[i]) {
			t.Fatal("image facts not sorted/deduped")
		}
	}
}

func TestBlockSizesMatchDatabase(t *testing.T) {
	db := employeeDB(t)
	q := cq.MustParse("Q() :- Employee(1, n, d)", db.Dict)
	set, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	pair := set.Entries[0].Pair
	if pair.NumBlocks() != 1 || pair.BlockSizes[0] != 2 {
		t.Fatalf("blocks = %v", pair.BlockSizes)
	}
	if pair.DBSize().Cmp(big.NewInt(2)) != 0 {
		t.Fatal("db(B) size wrong")
	}
}

func TestAnonymousBlockMembers(t *testing.T) {
	// A block can be larger than the number of its facts appearing in
	// images: the extra members are anonymous conflicting facts.
	s := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	db.MustInsert("R", 1, 10)
	db.MustInsert("R", 1, 20)
	db.MustInsert("R", 1, 30)
	q := cq.MustParse("Q() :- R(1, 10)", db.Dict)
	set, err := Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	pair := set.Entries[0].Pair
	if pair.NumBlocks() != 1 || pair.BlockSizes[0] != 3 || pair.NumImages() != 1 {
		t.Fatalf("pair = %+v", pair)
	}
	r, err := pair.ExactRatio(0)
	if err != nil || math.Abs(r-1.0/3) > 1e-12 {
		t.Fatalf("R = %v (%v), want 1/3", r, err)
	}
}

func TestValidateRejectsBadPairs(t *testing.T) {
	cases := map[string]*Admissible{
		"empty H":          {BlockSizes: []int32{2}},
		"empty image":      {BlockSizes: []int32{2}, Images: []Image{{}}},
		"bad block size":   {BlockSizes: []int32{0}, Images: []Image{{{0, 0}}}},
		"unknown block":    {BlockSizes: []int32{2}, Images: []Image{{{5, 0}}}},
		"member overflow":  {BlockSizes: []int32{2}, Images: []Image{{{0, 7}}}},
		"dup block in img": {BlockSizes: []int32{2}, Images: []Image{{{0, 0}, {0, 1}}}},
		"untouched block":  {BlockSizes: []int32{2, 2}, Images: []Image{{{0, 0}}}},
	}
	for name, pair := range cases {
		if err := pair.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestCanonicalizeDedupes(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 3},
		Images: []Image{
			{{1, 0}, {0, 0}}, // unsorted
			{{0, 0}, {1, 0}}, // duplicate of above
			{{0, 1}},
		},
	}
	pair.Canonicalize()
	if len(pair.Images) != 2 {
		t.Fatalf("images after dedupe = %d, want 2", len(pair.Images))
	}
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicSizeConsistency(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 3, 4},
		Images: []Image{
			{{0, 0}},
			{{1, 1}, {2, 2}},
			{{0, 1}, {1, 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	// |S•| = 12 + 2 + 4 = 18; db(B) = 24; weight = 18/24.
	if got := pair.SymbolicSize(); got.Cmp(big.NewInt(18)) != 0 {
		t.Fatalf("|S•| = %v, want 18", got)
	}
	if w := pair.SymbolicWeight(); math.Abs(w-18.0/24) > 1e-12 {
		t.Fatalf("symbolic weight = %v, want 0.75", w)
	}
	// Image weights in canonical order ({{0,0}} < {{0,1},{1,0}} < {{1,1},{2,2}}):
	// 1/2, 1/6, 1/12.
	for i, want := range []float64{1.0 / 2, 1.0 / 6, 1.0 / 12} {
		if got := pair.ImageWeight(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("ImageWeight(%d) = %v, want %v", i, got, want)
		}
	}
	sum := 0.0
	for i := range pair.Images {
		sum += pair.ImageWeight(i)
	}
	if math.Abs(sum-pair.SymbolicWeight()) > 1e-12 {
		t.Fatal("image weights do not sum to symbolic weight")
	}
}

func TestExactRatioAgainstBruteForce(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 3, 2, 4},
		Images: []Image{
			{{0, 0}, {1, 2}},
			{{1, 2}, {2, 1}},
			{{0, 1}, {3, 3}},
			{{2, 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	ie, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := pair.BruteForceRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ie-bf) > 1e-12 {
		t.Fatalf("inclusion-exclusion %v vs brute force %v", ie, bf)
	}
	// Union count consistency: Num = R * |db(B)|.
	num, err := pair.ExactUnionCount(0)
	if err != nil {
		t.Fatal(err)
	}
	dbsz := pair.DBSize()
	want := ie * float64(dbsz.Int64())
	if math.Abs(float64(num.Int64())-want) > 1e-6 {
		t.Fatalf("union count %v vs R*|db| = %v", num, want)
	}
}

func TestExactRatioTooLarge(t *testing.T) {
	pair := &Admissible{BlockSizes: []int32{2}}
	for i := 0; i < 30; i++ {
		pair.Images = append(pair.Images, Image{{0, 0}})
	}
	if _, err := pair.ExactRatio(22); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	big := &Admissible{}
	for i := 0; i < 64; i++ {
		big.BlockSizes = append(big.BlockSizes, 4)
	}
	big.Images = []Image{{{0, 0}}}
	if _, err := big.BruteForceRatio(1 << 20); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("brute force err = %v, want ErrTooLarge", err)
	}
}

// randomPair builds a random valid admissible pair from fuzz bytes.
func randomPair(seed []byte) *Admissible {
	if len(seed) < 3 {
		return nil
	}
	nBlocks := int(seed[0]%4) + 1
	nImages := int(seed[1]%5) + 1
	pair := &Admissible{}
	for b := 0; b < nBlocks; b++ {
		pair.BlockSizes = append(pair.BlockSizes, int32(seed[(2+b)%len(seed)]%4)+1)
	}
	pos := 2 + nBlocks
	next := func() byte {
		b := seed[pos%len(seed)]
		pos++
		return b
	}
	for i := 0; i < nImages; i++ {
		var img Image
		for b := 0; b < nBlocks; b++ {
			if next()%2 == 0 {
				img = append(img, Member{Block: int32(b), Fact: int32(next()) % pair.BlockSizes[b]})
			}
		}
		if len(img) == 0 {
			img = Image{{Block: 0, Fact: int32(next()) % pair.BlockSizes[0]}}
		}
		pair.Images = append(pair.Images, img)
	}
	pair.Canonicalize()
	// Drop untouched blocks to keep the pair admissible.
	touched := make([]bool, nBlocks)
	for _, img := range pair.Images {
		for _, m := range img {
			touched[m.Block] = true
		}
	}
	remap := make([]int32, nBlocks)
	var sizes []int32
	for b := 0; b < nBlocks; b++ {
		if touched[b] {
			remap[b] = int32(len(sizes))
			sizes = append(sizes, pair.BlockSizes[b])
		}
	}
	for _, img := range pair.Images {
		for k := range img {
			img[k].Block = remap[img[k].Block]
		}
	}
	pair.BlockSizes = sizes
	if pair.Validate() != nil {
		return nil
	}
	return pair
}

// Property: inclusion-exclusion always matches brute-force enumeration on
// random admissible pairs.
func TestExactRatioProperty(t *testing.T) {
	f := func(seed []byte) bool {
		pair := randomPair(seed)
		if pair == nil {
			return true
		}
		ie, err1 := pair.ExactRatio(0)
		bf, err2 := pair.BruteForceRatio(0)
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(ie-bf) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the synopsis route and the repair-enumeration route agree on
// every answer tuple's relative frequency for random small databases
// (Lemma 4.1(3) end-to-end).
func TestSynopsisMatchesRepairsProperty(t *testing.T) {
	s := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1},
		{Name: "S", Attrs: []string{"k", "v"}, KeyLen: 1},
	}, nil)
	f := func(rs, ss []struct{ K, V uint8 }) bool {
		if len(rs) > 6 {
			rs = rs[:6]
		}
		if len(ss) > 6 {
			ss = ss[:6]
		}
		db := relation.NewDatabase(s)
		for _, p := range rs {
			db.MustInsert("R", int(p.K%3), int(p.V%3))
		}
		for _, p := range ss {
			db.MustInsert("S", int(p.K%3), int(p.V%3)+10)
		}
		q := cq.MustParse("Q(v) :- R(k, j), S(j, v)", db.Dict)
		set, err := Build(db, q)
		if err != nil {
			return false
		}
		for _, e := range set.Entries {
			r, err := e.Pair.ExactRatio(0)
			if err != nil {
				continue
			}
			exact, err := repair.ExactRelativeFreq(db, q, e.Tuple, 0)
			if err != nil || math.Abs(r-exact) > 1e-9 {
				return false
			}
			if r <= 0 {
				return false // entries must have positive frequency
			}
		}
		// Lemma 4.1(4): tuples with positive frequency are exactly the
		// entries.
		all, err := repair.ExactAnswers(db, q, 0)
		if err != nil {
			return false
		}
		return len(all) == len(set.Entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverHelpers(t *testing.T) {
	pair := &Admissible{
		BlockSizes: []int32{2, 2},
		Images: []Image{
			{{0, 0}},
			{{0, 0}, {1, 1}},
			{{1, 0}},
		},
	}
	pair.Canonicalize()
	chosen := []int32{0, 1}
	if !pair.Covers(0, chosen) {
		t.Fatal("image 0 should be covered")
	}
	if got := pair.CoverCount(chosen); got != 2 {
		t.Fatalf("CoverCount = %d, want 2", got)
	}
	if got := pair.FirstCover([]int32{1, 1}); got != -1 {
		t.Fatalf("FirstCover = %d, want -1", got)
	}
	if pair.MaxImageSize() != 2 {
		t.Fatal("MaxImageSize wrong")
	}
	if pair.Size() <= 0 {
		t.Fatal("Size wrong")
	}
}
