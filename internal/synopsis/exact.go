package synopsis

import (
	"errors"
	"fmt"
	"math/big"
)

// ErrTooLarge is returned by the exact computations when the instance
// exceeds the caller's tractability limit.
var ErrTooLarge = errors.New("synopsis: instance too large for exact computation")

// ExactRatio computes R(H, B) exactly by inclusion–exclusion over the
// sets I^1, ..., I^n (Lemma 4.1(3) gives R_{D,Σ,Q}(t̄) = R(H,B)):
//
//	Num/|db(B)| = Σ_{∅≠S⊆[n]} (−1)^{|S|+1} · [∪_{i∈S} H_i consistent] · Π_{b∈blocks(∪S)} 1/size(b)
//
// A subset S contributes iff the union of its images keeps at most one
// member per block. The runtime is O(2^n · n · |Q|); it refuses instances
// with n > maxImages (use BruteForceRatio or the approximation schemes
// beyond that).
func (a *Admissible) ExactRatio(maxImages int) (float64, error) {
	if maxImages <= 0 {
		maxImages = 22
	}
	n := len(a.Images)
	if n == 0 {
		return 0, nil
	}
	if n > maxImages {
		return 0, fmt.Errorf("%w: |H| = %d > %d", ErrTooLarge, n, maxImages)
	}
	total := 0.0
	// chosen[b] = member fixed for block b, or -1.
	chosen := make([]int32, len(a.BlockSizes))
	for subset := uint64(1); subset < uint64(1)<<n; subset++ {
		for b := range chosen {
			chosen[b] = -1
		}
		consistent := true
		weight := 1.0
		bits := 0
		for i := 0; i < n && consistent; i++ {
			if subset&(1<<uint(i)) == 0 {
				continue
			}
			bits++
			for _, m := range a.Images[i] {
				switch chosen[m.Block] {
				case -1:
					chosen[m.Block] = m.Fact
					weight /= float64(a.BlockSizes[m.Block])
				case m.Fact:
					// already fixed compatibly
				default:
					consistent = false
				}
				if !consistent {
					break
				}
			}
		}
		if !consistent {
			continue
		}
		if bits%2 == 1 {
			total += weight
		} else {
			total -= weight
		}
	}
	// Floating-point cancellation can push the result epsilon outside [0,1].
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// BruteForceRatio computes R(H, B) by enumerating db(B) with an odometer
// over block member choices. It refuses instances where |db(B)| exceeds
// limit (default 1<<20). It is the most literal form of the definition and
// serves as the ground-truth oracle for ExactRatio and the samplers.
func (a *Admissible) BruteForceRatio(limit int64) (float64, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	dbSize := a.DBSize()
	if dbSize.Cmp(big.NewInt(limit)) > 0 {
		return 0, fmt.Errorf("%w: |db(B)| = %v > %d", ErrTooLarge, dbSize, limit)
	}
	if len(a.Images) == 0 {
		return 0, nil
	}
	nb := len(a.BlockSizes)
	chosen := make([]int32, nb)
	covered, total := 0, 0
	for {
		total++
		if a.FirstCover(chosen) >= 0 {
			covered++
		}
		i := 0
		for ; i < nb; i++ {
			chosen[i]++
			if chosen[i] < a.BlockSizes[i] {
				break
			}
			chosen[i] = 0
		}
		if i == nb {
			break
		}
	}
	return float64(covered) / float64(total), nil
}

// ExactUnionCount computes the numerator |∪_i I^i| of R(H,B) exactly, as
// a big integer, by inclusion–exclusion (the UnionOfSets problem of
// Section 4.3). Same |H| limit as ExactRatio.
func (a *Admissible) ExactUnionCount(maxImages int) (*big.Int, error) {
	if maxImages <= 0 {
		maxImages = 22
	}
	n := len(a.Images)
	if n > maxImages {
		return nil, fmt.Errorf("%w: |H| = %d > %d", ErrTooLarge, n, maxImages)
	}
	total := big.NewInt(0)
	chosen := make([]int32, len(a.BlockSizes))
	for subset := uint64(1); subset < uint64(1)<<n; subset++ {
		for b := range chosen {
			chosen[b] = -1
		}
		consistent := true
		bits := 0
		for i := 0; i < n && consistent; i++ {
			if subset&(1<<uint(i)) == 0 {
				continue
			}
			bits++
			for _, m := range a.Images[i] {
				switch chosen[m.Block] {
				case -1:
					chosen[m.Block] = m.Fact
				case m.Fact:
				default:
					consistent = false
				}
				if !consistent {
					break
				}
			}
		}
		if !consistent {
			continue
		}
		term := big.NewInt(1)
		for b, sz := range a.BlockSizes {
			if chosen[b] == -1 {
				term.Mul(term, big.NewInt(int64(sz)))
			}
		}
		if bits%2 == 1 {
			total.Add(total, term)
		} else {
			total.Sub(total, term)
		}
	}
	return total, nil
}
