package scenario

import (
	"strings"
	"testing"
)

func TestInstanceSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec InstanceSpec
		ok   bool
	}{
		{"minimal", InstanceSpec{Name: "a"}, true},
		{"full generated", InstanceSpec{Name: "prod-1.2", Benchmark: "tpcds", ScaleFactor: 0.01, Seed: 3}, true},
		{"noised", InstanceSpec{Name: "n", Noise: &NoiseSpec{Query: "Q() :- region(k, n, c)", P: 0.1}}, true},
		{"oblivious noise", InstanceSpec{Name: "n", Noise: &NoiseSpec{Oblivious: true, P: 0.5}}, true},
		{"empty name", InstanceSpec{}, false},
		{"name with space", InstanceSpec{Name: "a b"}, false},
		{"name leading dash", InstanceSpec{Name: "-a"}, false},
		{"name too long", InstanceSpec{Name: strings.Repeat("a", 65)}, false},
		{"bad benchmark", InstanceSpec{Name: "a", Benchmark: "tpcx"}, false},
		{"negative sf", InstanceSpec{Name: "a", ScaleFactor: -1}, false},
		{"schema without path", InstanceSpec{Name: "a", SchemaPath: "s.schema"}, false},
		{"noise p zero", InstanceSpec{Name: "a", Noise: &NoiseSpec{Query: "Q() :- region(k, n, c)"}}, false},
		{"noise p over one", InstanceSpec{Name: "a", Noise: &NoiseSpec{Query: "q", P: 1.5}}, false},
		{"noise without query", InstanceSpec{Name: "a", Noise: &NoiseSpec{P: 0.1}}, false},
		{"noise bad blocks", InstanceSpec{Name: "a", Noise: &NoiseSpec{Oblivious: true, P: 0.1, MinBlock: 6, MaxBlock: 3}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() accepted an invalid spec")
			}
		})
	}
}

// Fingerprints must distinguish everything that changes the built
// database — and nothing else: the name is deliberately excluded so a
// rename keeps the instance's cached synopses valid.
func TestInstanceSpecFingerprint(t *testing.T) {
	base := InstanceSpec{Name: "a", Benchmark: "tpch", ScaleFactor: 0.001, Seed: 1}
	renamed := base
	renamed.Name = "renamed"
	if got, want := base.Fingerprint(), renamed.Fingerprint(); got != want {
		t.Fatalf("rename changed fingerprint: %q vs %q", got, want)
	}
	// Defaults resolve before fingerprinting: the zero spec and the
	// explicit-default spec are the same instance.
	zero := InstanceSpec{Name: "a"}
	if got, want := zero.Fingerprint(), base.Fingerprint(); got != want {
		t.Fatalf("defaulted fingerprint %q != explicit %q", got, want)
	}
	distinct := []InstanceSpec{
		{Name: "a", Benchmark: "tpcds", ScaleFactor: 0.001, Seed: 1},
		{Name: "a", Benchmark: "tpch", ScaleFactor: 0.002, Seed: 1},
		{Name: "a", Benchmark: "tpch", ScaleFactor: 0.001, Seed: 2},
		{Name: "a", Path: "db.txt"},
		{Name: "a", Benchmark: "tpch", ScaleFactor: 0.001, Seed: 1,
			Noise: &NoiseSpec{Oblivious: true, P: 0.1}},
	}
	seen := map[string]bool{base.Fingerprint(): true}
	for _, s := range distinct {
		fp := s.Fingerprint()
		if seen[fp] {
			t.Fatalf("spec %+v collides with an earlier fingerprint %q", s, fp)
		}
		seen[fp] = true
	}
}

func TestParseInstanceManifest(t *testing.T) {
	good := `{
	  "instances": [
	    {"name": "clean", "benchmark": "tpch", "sf": 0.001, "seed": 1},
	    {"name": "noisy", "benchmark": "tpch", "sf": 0.001, "seed": 1,
	     "noise": {"oblivious": true, "p": 0.1, "seed": 7}}
	  ]
	}`
	specs, err := ParseInstanceManifest(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "clean" || specs[1].Noise == nil {
		t.Fatalf("parsed %+v", specs)
	}

	for name, bad := range map[string]string{
		"not json":        `instances:`,
		"unknown field":   `{"instances": [{"name": "a", "scalefactor": 2}]}`,
		"no instances":    `{"instances": []}`,
		"duplicate names": `{"instances": [{"name": "a"}, {"name": "a"}]}`,
		"invalid spec":    `{"instances": [{"name": "bad name"}]}`,
	} {
		if _, err := ParseInstanceManifest(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: manifest accepted", name)
		}
	}
}

// Build is pure in the spec: identical specs (under different names)
// produce byte-identical databases.
func TestInstanceSpecBuildDeterministic(t *testing.T) {
	a := InstanceSpec{Name: "a", Benchmark: "tpch", ScaleFactor: 0.001, Seed: 1,
		Noise: &NoiseSpec{Oblivious: true, P: 0.1}}
	b := a
	b.Name = "b"
	dbA, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if dbA.NumFacts() == 0 || dbA.NumFacts() != dbB.NumFacts() {
		t.Fatalf("facts: %d vs %d", dbA.NumFacts(), dbB.NumFacts())
	}
	if dbA.String() != dbB.String() {
		t.Fatal("identical specs built different databases")
	}
}
