package scenario

import (
	"fmt"

	"cqabench/internal/cq"
	"cqabench/internal/noise"
	"cqabench/internal/relation"
	"cqabench/internal/synopsis"
)

// ValidationQuery is a conjunctive rendering of a TPC-H or TPC-DS query
// template (Appendix F selects positive templates and strips aggregates;
// our renderings preserve each template's join structure and constant
// selections over the schemas in internal/tpch and internal/tpcds).
type ValidationQuery struct {
	Benchmark  string // "TPC-H" or "TPC-DS"
	TemplateID int    // the template's number in the benchmark workload
	Text       string // cq parser syntax
}

// Name returns the paper's Q^i_B notation.
func (v ValidationQuery) Name() string {
	b := "H"
	if v.Benchmark == "TPC-DS" {
		b = "DS"
	}
	return fmt.Sprintf("Q%d_%s", v.TemplateID, b)
}

// TPCHValidationQueries returns the conjunctive renderings of the TPC-H
// templates the paper selects: Q_H = {1, 4, 5, 6, 8, 10, 12, 14, 19}.
func TPCHValidationQueries() []ValidationQuery {
	return []ValidationQuery{
		{"TPC-H", 1, "Q(rf, ls) :- lineitem(o, l, p, s, qy, ep, 5, tx, rf, ls, sd, cd, rd, si, sm, cm)"},
		{"TPC-H", 4, "Q(pr) :- orders(o, c, st, tp, d, pr, cl, sp, ocm), lineitem(o, ln, pk, sk, qy, ep, di, tx, rf, lst, sd, cd, rd, si, sm, lc)"},
		{"TPC-H", 5, "Q(nn) :- customer(c, cn, ca, cnk, cp, cb, cs, cc), orders(o, c, ost, tp, d, opr, cl, sp, ocm), lineitem(o, ln, pk, sk, qy, ep, di, tx, rf, lst, sd, cd, rd, si, sm, lc), supplier(sk, sn, sa, nk, sp2, sb, scm), nation(nk, nn, rk, ncm), region(rk, 'ASIA', rc)"},
		{"TPC-H", 6, "Q() :- lineitem(o, l, p, s, 25, ep, 5, tx, rf, ls, sd, cd, rd, si, sm, cm)"},
		{"TPC-H", 8, "Q(d) :- part(pk, pn, mf, br, 'ECONOMY POLISHED BRASS', sz, cn, rp, pc), lineitem(o, ln, pk, sk, qy, ep, di, tx, rf, ls, sd, cd, rd, si, sm, lc), orders(o, c, ost, tp, d, opr, cl, sp, ocm), customer(c, cnm, ca, nk, cph, cb, cs, cc), nation(nk, nn, rk, ncm), region(rk, 'AMERICA', rc)"},
		{"TPC-H", 10, "Q(c, cn) :- customer(c, cn, ca, nk, cp, cb, cs, cc), orders(o, c, ost, tp, d, opr, cl, sp, ocm), lineitem(o, ln, pk, sk, qy, ep, di, tx, 'R', ls, sd, cd, rd, si, sm, lc), nation(nk, nn, rk, ncm)"},
		{"TPC-H", 12, "Q(opr) :- orders(o, c, ost, tp, d, opr, cl, sp, ocm), lineitem(o, ln, pk, sk, qy, ep, di, tx, rf, ls, sd, cd, rd, si, 'MAIL', lc)"},
		{"TPC-H", 14, "Q(ty) :- lineitem(o, ln, pk, sk, qy, ep, di, tx, rf, ls, sd, cd, rd, si, sm, lc), part(pk, pn, mf, br, ty, sz, cn, rp, pc)"},
		{"TPC-H", 19, "Q() :- lineitem(o, ln, pk, sk, qy, ep, di, tx, rf, ls, sd, cd, rd, 'DELIVER IN PERSON', 'AIR', lc), part(pk, pn, mf, 'Brand#12', ty, sz, 'SM CASE', rp, pc)"},
	}
}

// TPCDSValidationQueries returns the conjunctive renderings of the TPC-DS
// templates the paper selects: Q_DS = {1, 33, 60, 62, 65, 66, 68, 82}.
func TPCDSValidationQueries() []ValidationQuery {
	return []ValidationQuery{
		{"TPC-DS", 1, "Q(cid) :- store_sales(i, tk, d, c, st, pr, qt, sp), customer(c, cid, ad, fn, ln, by), store(st, sid, snm, sct, sst), date_dim(d, y, m, dom, 1, dn)"},
		{"TPC-DS", 33, "Q(bid) :- store_sales(i, tk, d, c, st, pr, qt, sp), item(i, iid, bid, br, cl, cid, 'Books', cp, mg), date_dim(d, y, 3, dom, qoy, dn)"},
		{"TPC-DS", 60, "Q(iid) :- store_sales(i, tk, d, c, st, pr, qt, sp), item(i, iid, bid, br, cl, cid, 'Music', cp, mg), customer(c, ccid, ad, fn, lnm, by), customer_address(ad, city, cty, stt, zip, off), date_dim(d, y, m, dom, qoy, dn)"},
		{"TPC-DS", 62, "Q(smt) :- catalog_sales(i, o, d, c, w, sm, cc, pr, qt, sp), ship_mode(sm, smt, smc, car), warehouse(w, wn, wc, ws), date_dim(d, y, m, dom, qoy, dn)"},
		{"TPC-DS", 65, "Q(iid) :- store_sales(i, tk, d, c, st, pr, qt, sp), item(i, iid, bid, br, cl, cid, cat, cp, mg), store(st, sid, snm, sct, sst), date_dim(d, y, m, dom, 1, dn)"},
		{"TPC-DS", 66, "Q(wn, wc) :- catalog_sales(i, o, d, c, w, sm, cc, pr, qt, sp), warehouse(w, wn, wc, ws), ship_mode(sm, 'EXPRESS', smc, car), date_dim(d, y, m, dom, qoy, dn)"},
		{"TPC-DS", 68, "Q(city) :- store_sales(i, tk, d, c, st, pr, qt, sp), customer(c, ccid, ad, fn, lnm, by), customer_address(ad, city, cty, stt, zip, off), date_dim(d, y, m, 1, qoy, dn), store(st, sid, snm, sct, sst)"},
		{"TPC-DS", 82, "Q(iid, cp) :- store_sales(i, tk, d, c, st, pr, qt, sp), item(i, iid, bid, br, cl, cid, 'Electronics', cp, mg)"},
	}
}

// ValidationScenario builds Validation[Q] (Appendix F): for each noise
// level, the consistent base database with query-aware noise injected for
// the fixed workload query. The achieved balance is recorded per pair, as
// in Figure 5's captions.
func ValidationScenario(base *relation.Database, vq ValidationQuery, levels []float64, blockMin, blockMax int, seed uint64) (*Workload, error) {
	q, err := cq.Parse(vq.Text, base.Dict)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", vq.Name(), err)
	}
	if err := q.Validate(base.Schema); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", vq.Name(), err)
	}
	w := &Workload{Name: "Validation[" + vq.Name() + "]"}
	for _, p := range levels {
		db, _, err := noise.Apply(base, q, noise.Config{
			P:        p,
			MinBlock: blockMin,
			MaxBlock: blockMax,
			Seed:     seed + uint64(p*1000),
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: %s at p=%.2f: %w", vq.Name(), p, err)
		}
		set, err := synopsis.Build(db, q)
		if err != nil {
			return nil, err
		}
		w.Pairs = append(w.Pairs, Pair{
			Name:    fmt.Sprintf("%s/p%.1f", vq.Name(), p),
			DB:      db,
			Query:   q,
			Noise:   p,
			Balance: set.Balance(),
			Joins:   q.NumJoins(),
		})
	}
	return w, nil
}
