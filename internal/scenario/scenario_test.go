package scenario

import (
	"testing"

	"cqabench/internal/engine"
	"cqabench/internal/relation"
	"cqabench/internal/tpcds"
	"cqabench/internal/tpch"
)

func testLab(t *testing.T) *Lab {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ScaleFactor = 0.0003
	cfg.QueriesPerJoin = 1
	cfg.DQGIterations = 30
	l, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLabBaseQueries(t *testing.T) {
	l := testLab(t)
	for _, j := range []int{1, 2, 3} {
		q, err := l.BaseQuery(j, 0)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if q.NumJoins() != j {
			t.Fatalf("j=%d: query has %d joins", j, q.NumJoins())
		}
		if q.NumConstants() != 2 {
			t.Fatalf("j=%d: query has %d constants", j, q.NumConstants())
		}
		ok, err := engine.NewEvaluator(l.Base()).HasAnswer(q.Boolean(), nil)
		if err != nil || !ok {
			t.Fatalf("j=%d: base query empty over base DB (%v)", j, err)
		}
	}
	if _, err := l.BaseQuery(1, 5); err == nil {
		t.Fatal("out-of-range query index accepted")
	}
}

func TestLabNoisyDBCached(t *testing.T) {
	l := testLab(t)
	a, err := l.NoisyDB(1, 0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if relation.IsConsistentDB(a) {
		t.Fatal("noisy DB consistent")
	}
	b, err := l.NoisyDB(1, 0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("noisy DB not cached")
	}
}

func TestLabBalancedQuery(t *testing.T) {
	l := testLab(t)
	q0, bal0, err := l.BalancedQuery(1, 0, 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !q0.IsBoolean() || bal0 != 0 {
		t.Fatalf("q=0 must give Boolean query, got %s bal=%v", q0, bal0)
	}
	q1, bal1, err := l.BalancedQuery(1, 0, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q1.IsBoolean() {
		t.Fatal("q=1 gave Boolean query")
	}
	if bal1 <= 0 || bal1 > 1 {
		t.Fatalf("achieved balance %v", bal1)
	}
}

func TestNoiseScenarioShape(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0, 1, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "Noise[0.0, 1]" {
		t.Fatalf("name = %q", w.Name)
	}
	if len(w.Pairs) != 2 { // 2 levels x 1 query per join
		t.Fatalf("pairs = %d", len(w.Pairs))
	}
	for _, p := range w.Pairs {
		if !p.Query.IsBoolean() {
			t.Fatal("balance-0 scenario must use Boolean queries")
		}
		if p.Joins != 1 {
			t.Fatal("join level wrong")
		}
	}
}

func TestBalanceScenarioShape(t *testing.T) {
	l := testLab(t)
	w, err := l.BalanceScenario(0.4, 1, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Pairs) != 3 {
		t.Fatalf("pairs = %d", len(w.Pairs))
	}
	for _, p := range w.Pairs {
		if p.Noise != 0.4 {
			t.Fatal("noise level wrong")
		}
	}
}

func TestJoinsScenarioShape(t *testing.T) {
	l := testLab(t)
	w, err := l.JoinsScenario(0.4, 0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Pairs) != 2 {
		t.Fatalf("pairs = %d", len(w.Pairs))
	}
	if w.Pairs[0].Joins == w.Pairs[1].Joins {
		t.Fatal("join levels not varied")
	}
}

func TestValidationQueriesParse(t *testing.T) {
	hdb := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.0003, Seed: 1})
	for _, vq := range TPCHValidationQueries() {
		w, err := ValidationScenario(hdb, vq, []float64{0.3}, 2, 5, 1)
		if err != nil {
			t.Fatalf("%s: %v", vq.Name(), err)
		}
		if len(w.Pairs) != 1 || w.Pairs[0].Balance < 0 {
			t.Fatalf("%s: workload %+v", vq.Name(), w)
		}
	}
	dsdb := tpcds.MustGenerate(tpcds.Config{ScaleFactor: 0.0003, Seed: 1})
	for _, vq := range TPCDSValidationQueries() {
		w, err := ValidationScenario(dsdb, vq, []float64{0.3}, 2, 5, 1)
		if err != nil {
			t.Fatalf("%s: %v", vq.Name(), err)
		}
		if len(w.Pairs) != 1 {
			t.Fatalf("%s: pairs = %d", vq.Name(), len(w.Pairs))
		}
	}
}

func TestValidationNames(t *testing.T) {
	if got := (ValidationQuery{Benchmark: "TPC-H", TemplateID: 4}).Name(); got != "Q4_H" {
		t.Fatalf("name = %q", got)
	}
	if got := (ValidationQuery{Benchmark: "TPC-DS", TemplateID: 33}).Name(); got != "Q33_DS" {
		t.Fatalf("name = %q", got)
	}
}

func TestValidationCounts(t *testing.T) {
	if len(TPCHValidationQueries()) != 9 {
		t.Fatal("paper selects 9 TPC-H templates")
	}
	if len(TPCDSValidationQueries()) != 8 {
		t.Fatal("paper selects 8 TPC-DS templates")
	}
}

func TestPaperGrids(t *testing.T) {
	cfg := PaperConfig()
	if cfg.ScaleFactor != 1 || cfg.QueriesPerJoin != 5 {
		t.Fatalf("paper config = %+v", cfg)
	}
	if n := PaperNoiseLevels(); len(n) != 10 || n[0] != 0.1 || n[9] != 1.0 {
		t.Fatalf("noise levels = %v", n)
	}
	if b := PaperBalanceLevels(); len(b) != 11 || b[0] != 0 || b[10] != 1.0 {
		t.Fatalf("balance levels = %v", b)
	}
	if j := PaperJoinLevels(); len(j) != 5 || j[4] != 5 {
		t.Fatalf("join levels = %v", j)
	}
	// Grid sizes match the paper's 55 noise, 50 balance, 110 join
	// scenarios over 2750 pairs.
	noiseScenarios := len(PaperBalanceLevels()) * len(PaperJoinLevels())
	balanceScenarios := len(PaperNoiseLevels()) * len(PaperJoinLevels())
	joinScenarios := len(PaperNoiseLevels()) * len(PaperBalanceLevels())
	if noiseScenarios != 55 || balanceScenarios != 50 || joinScenarios != 110 {
		t.Fatalf("scenario counts: noise=%d balance=%d joins=%d", noiseScenarios, balanceScenarios, joinScenarios)
	}
	pairs := len(PaperJoinLevels()) * cfg.QueriesPerJoin * len(PaperNoiseLevels()) * len(PaperBalanceLevels())
	if pairs != 2750 {
		t.Fatalf("P_H size = %d, want 2750", pairs)
	}
}
