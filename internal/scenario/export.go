package scenario

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

// Export writes a workload to a directory as a portable scenario artifact
// — the counterpart of the paper's published test scenarios. The layout:
//
//	manifest.txt   one line per pair: file|noise|balance|target|joins|query
//	schema.txt     the schema in the DSL (shared by all pairs)
//	pair_000.db    the pair's database in the text format
//	...
//
// Databases are deduplicated: pairs sharing a database reference the same
// file.
func Export(w *Workload, dir string) error {
	if len(w.Pairs) == 0 {
		return fmt.Errorf("scenario: export of empty workload")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	schema := w.Pairs[0].DB.Schema
	sf, err := os.Create(filepath.Join(dir, "schema.txt"))
	if err != nil {
		return err
	}
	if err := relation.WriteSchema(sf, schema); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}

	mf, err := os.Create(filepath.Join(dir, "manifest.txt"))
	if err != nil {
		return err
	}
	defer mf.Close()
	bw := bufio.NewWriter(mf)
	fmt.Fprintf(bw, "# workload: %s\n", w.Name)

	dbFiles := map[*relation.Database]string{}
	for _, pair := range w.Pairs {
		file, ok := dbFiles[pair.DB]
		if !ok {
			file = fmt.Sprintf("pair_%03d.db", len(dbFiles))
			dbFiles[pair.DB] = file
			f, err := os.Create(filepath.Join(dir, file))
			if err != nil {
				return err
			}
			if err := relation.WriteDB(f, pair.DB); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		query := pair.Query.Render(pair.DB.Dict)
		if strings.ContainsAny(query, "|\n") {
			return fmt.Errorf("scenario: query %q not representable in manifest", query)
		}
		fmt.Fprintf(bw, "%s|%g|%g|%g|%d|%s\n",
			file, pair.Noise, pair.Balance, pair.Target, pair.Joins, query)
	}
	return bw.Flush()
}

// Import reads a scenario directory written by Export.
func Import(dir string) (*Workload, error) {
	sf, err := os.Open(filepath.Join(dir, "schema.txt"))
	if err != nil {
		return nil, err
	}
	schema, err := relation.ParseSchema(sf)
	sf.Close()
	if err != nil {
		return nil, err
	}

	mf, err := os.Open(filepath.Join(dir, "manifest.txt"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()

	w := &Workload{Name: filepath.Base(dir)}
	dbCache := map[string]*relation.Database{}
	sc := bufio.NewScanner(mf)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# workload: ") {
			w.Name = strings.TrimPrefix(line, "# workload: ")
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, "|", 6)
		if len(fields) != 6 {
			return nil, fmt.Errorf("scenario: manifest line %d: want 6 fields, got %d", lineNo, len(fields))
		}
		db, ok := dbCache[fields[0]]
		if !ok {
			f, err := os.Open(filepath.Join(dir, fields[0]))
			if err != nil {
				return nil, err
			}
			db, err = relation.ReadDB(f, schema)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("scenario: %s: %w", fields[0], err)
			}
			dbCache[fields[0]] = db
		}
		var noise, balance, target float64
		var joins int
		if _, err := fmt.Sscanf(fields[1], "%g", &noise); err != nil {
			return nil, fmt.Errorf("scenario: manifest line %d: bad noise: %w", lineNo, err)
		}
		if _, err := fmt.Sscanf(fields[2], "%g", &balance); err != nil {
			return nil, fmt.Errorf("scenario: manifest line %d: bad balance: %w", lineNo, err)
		}
		if _, err := fmt.Sscanf(fields[3], "%g", &target); err != nil {
			return nil, fmt.Errorf("scenario: manifest line %d: bad target: %w", lineNo, err)
		}
		if _, err := fmt.Sscanf(fields[4], "%d", &joins); err != nil {
			return nil, fmt.Errorf("scenario: manifest line %d: bad joins: %w", lineNo, err)
		}
		q, err := cq.Parse(fields[5], db.Dict)
		if err != nil {
			return nil, fmt.Errorf("scenario: manifest line %d: %w", lineNo, err)
		}
		if err := q.Validate(schema); err != nil {
			return nil, fmt.Errorf("scenario: manifest line %d: %w", lineNo, err)
		}
		w.Pairs = append(w.Pairs, Pair{
			Name:    fmt.Sprintf("%s#%d", fields[0], lineNo),
			DB:      db,
			Query:   q,
			Noise:   noise,
			Balance: balance,
			Target:  target,
			Joins:   joins,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(w.Pairs) == 0 {
		return nil, fmt.Errorf("scenario: manifest declares no pairs")
	}
	return w, nil
}
