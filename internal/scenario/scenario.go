// Package scenario constructs the paper's test scenarios (Section 6.2):
// families of (database, query) pairs over TPC-H where one of the three
// key input parameters — noise percentage, query balance, number of
// joins — varies while the other two are fixed, plus the validation
// scenarios of Appendix F over TPC-H and TPC-DS query-template renderings.
//
// The Lab mirrors the paper's P_H construction: a consistent base
// database, SQG-generated base queries per join level (2 constant
// occurrences, all attributes projected), noisy databases D_Q[p] per base
// query and noise level, and DQG-generated queries Q_p[q] per balance
// level, with Q_p[0] the Boolean query. Everything is cached and
// deterministic for a fixed Config.
package scenario

import (
	"fmt"

	"cqabench/internal/cq"
	"cqabench/internal/engine"
	"cqabench/internal/noise"
	"cqabench/internal/qgen"
	"cqabench/internal/relation"
	"cqabench/internal/tpch"
)

// Config scales the scenario grid. The paper's grid is Joins 1–5 with 5
// queries per level, noise {0.1,...,1.0}, balance {0,0.1,...,1.0}; the
// defaults here are a reduced grid that preserves the trends.
type Config struct {
	ScaleFactor    float64
	Seed           uint64
	QueriesPerJoin int
	Constants      int
	BlockMin       int
	BlockMax       int
	DQGIterations  int
	SQGTries       int
	// MaxHoms rejects base queries with more homomorphisms than this
	// over the base database (the paper likewise discards trivial
	// queries that "return everything that can be returned"). 0 means
	// the default of 50000.
	MaxHoms int
}

// DefaultConfig returns a laptop-scale grid faithful to the paper's
// parameters (2 constants, blocks in [2, 5]).
func DefaultConfig() Config {
	return Config{
		ScaleFactor:    0.0005,
		Seed:           1,
		QueriesPerJoin: 2,
		Constants:      2,
		BlockMin:       2,
		BlockMax:       5,
		DQGIterations:  80,
		SQGTries:       80,
	}
}

// PaperConfig returns the paper's full experimental grid: TPC-H at scale
// factor 1 (~8.7M facts), five queries per join level, the complete
// noise/balance level sets, and a large DQG search. Running the full
// matrix with this configuration is the paper's 48-CPU-day experiment;
// use it deliberately (the default harness timeouts then also need the
// paper's 1-hour setting).
func PaperConfig() Config {
	return Config{
		ScaleFactor:    1,
		Seed:           1,
		QueriesPerJoin: 5,
		Constants:      2,
		BlockMin:       2,
		BlockMax:       5,
		DQGIterations:  100000,
		SQGTries:       200,
		MaxHoms:        1 << 30,
	}
}

// Fingerprint renders the configuration canonically: two Configs have
// equal fingerprints iff the Lab deterministically generates the same
// pair universe from them. The synopsis cache uses it as the
// scenario-config component of its content address.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("tpch sf=%g seed=%d qpj=%d const=%d block=[%d,%d] dqg=%d sqg=%d maxhoms=%d",
		c.ScaleFactor, c.Seed, c.QueriesPerJoin, c.Constants,
		c.BlockMin, c.BlockMax, c.DQGIterations, c.SQGTries, c.MaxHoms)
}

// PaperNoiseLevels returns the paper's noise grid {0.1, ..., 1.0}.
func PaperNoiseLevels() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = float64(i+1) / 10
	}
	return out
}

// PaperBalanceLevels returns the paper's balance grid {0, 0.1, ..., 1.0}.
func PaperBalanceLevels() []float64 {
	out := make([]float64, 11)
	for i := range out {
		out[i] = float64(i) / 10
	}
	return out
}

// PaperJoinLevels returns the paper's join grid {1, ..., 5}.
func PaperJoinLevels() []int { return []int{1, 2, 3, 4, 5} }

// Pair is one database–query pair of a scenario, annotated with the
// parameters that produced it.
type Pair struct {
	Name    string
	DB      *relation.Database
	Query   *cq.Query
	Noise   float64 // requested noise percentage p
	Balance float64 // achieved balance of Query w.r.t. DB
	Target  float64 // requested balance level q (0 = Boolean)
	Joins   int     // join count of the base query
}

// Workload is a named test scenario: a family of pairs.
type Workload struct {
	Name  string
	Pairs []Pair
	// Fingerprint canonically identifies the generator configuration
	// that produced the pairs (Config.Fingerprint for Lab-built
	// workloads). The synopsis cache keys on it; an empty fingerprint
	// marks a workload whose provenance is unknown (e.g. one read back
	// from an export directory) and disables caching for its pairs.
	Fingerprint string
}

// Lab builds and caches the P_H-style pair universe.
type Lab struct {
	cfg     Config
	base    *relation.Database
	pool    qgen.ConstPool
	queries map[int][]*cq.Query           // join level -> base queries
	noisy   map[string]*relation.Database // (j,i,p) -> noisy DB
	dqg     map[string]qgen.DQGResult     // (j,i,p,q) -> balanced query
}

// NewLab generates the base TPC-H database and the SQG base queries for
// join levels 1–5.
func NewLab(cfg Config) (*Lab, error) {
	if cfg.QueriesPerJoin <= 0 {
		return nil, fmt.Errorf("scenario: QueriesPerJoin must be positive")
	}
	base, err := tpch.Generate(tpch.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	l := &Lab{
		cfg:     cfg,
		base:    base,
		pool:    qgen.BuildConstPool(base, 24),
		queries: make(map[int][]*cq.Query),
		noisy:   make(map[string]*relation.Database),
		dqg:     make(map[string]qgen.DQGResult),
	}
	return l, nil
}

// Base returns the consistent base database D_H.
func (l *Lab) Base() *relation.Database { return l.base }

// BaseQuery returns the i-th SQG base query with j joins (2 occurrences of
// constants, all attributes projected, non-empty over the base database).
func (l *Lab) BaseQuery(j, i int) (*cq.Query, error) {
	if i < 0 || i >= l.cfg.QueriesPerJoin {
		return nil, fmt.Errorf("scenario: query index %d out of range [0,%d)", i, l.cfg.QueriesPerJoin)
	}
	if qs, ok := l.queries[j]; ok {
		return qs[i], nil
	}
	maxHoms := l.cfg.MaxHoms
	if maxHoms <= 0 {
		maxHoms = 50000
	}
	ev := engine.NewEvaluator(l.base)
	qs := make([]*cq.Query, l.cfg.QueriesPerJoin)
	for k := range qs {
		var q *cq.Query
		// Reject trivial queries: non-empty but with a bounded number of
		// homomorphisms over the base database, so the scenario stays
		// tractable after noise multiplies the images.
		for attempt := 0; attempt < l.cfg.SQGTries; attempt++ {
			cand, err := qgen.SQGNonEmpty(l.base, l.pool, qgen.SQGConfig{
				Joins:      j,
				Constants:  l.cfg.Constants,
				Projection: 1,
				Seed:       l.cfg.Seed + uint64(j)*101 + uint64(k)*100057 + uint64(attempt)*777767,
			}, l.cfg.SQGTries)
			if err != nil {
				return nil, fmt.Errorf("scenario: base query j=%d i=%d: %w", j, k, err)
			}
			_, within, err := ev.CountHomomorphismsUpTo(cand, maxHoms)
			if err != nil {
				return nil, err
			}
			if within {
				q = cand
				break
			}
		}
		if q == nil {
			return nil, fmt.Errorf("scenario: base query j=%d i=%d: every candidate exceeded %d homomorphisms", j, k, maxHoms)
		}
		qs[k] = q
	}
	l.queries[j] = qs
	return qs[i], nil
}

// NoisyDB returns D_Q[p]: the base database with query-aware noise p
// injected for base query (j, i), block sizes in [BlockMin, BlockMax].
func (l *Lab) NoisyDB(j, i int, p float64) (*relation.Database, error) {
	key := fmt.Sprintf("%d/%d/%.3f", j, i, p)
	if db, ok := l.noisy[key]; ok {
		return db, nil
	}
	q, err := l.BaseQuery(j, i)
	if err != nil {
		return nil, err
	}
	db, _, err := noise.Apply(l.base, q, noise.Config{
		P:        p,
		MinBlock: l.cfg.BlockMin,
		MaxBlock: l.cfg.BlockMax,
		Seed:     l.cfg.Seed + uint64(j)*7 + uint64(i)*13 + uint64(p*1000),
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: noise j=%d i=%d p=%.2f: %w", j, i, p, err)
	}
	l.noisy[key] = db
	return db, nil
}

// BalancedQuery returns Q_p[q]: the projection of base query (j, i) whose
// balance over D_Q[p] is closest to q. q = 0 yields the Boolean query, as
// in the paper.
func (l *Lab) BalancedQuery(j, i int, p, q float64) (*cq.Query, float64, error) {
	base, err := l.BaseQuery(j, i)
	if err != nil {
		return nil, 0, err
	}
	db, err := l.NoisyDB(j, i, p)
	if err != nil {
		return nil, 0, err
	}
	if q == 0 {
		bq := base.Boolean()
		return bq, 0, nil
	}
	key := fmt.Sprintf("%d/%d/%.3f/%.3f", j, i, p, q)
	if r, ok := l.dqg[key]; ok {
		return r.Query, r.Balance, nil
	}
	res, err := qgen.DQG(db, base, []float64{q}, qgen.DQGConfig{
		Iterations: l.cfg.DQGIterations,
		Seed:       l.cfg.Seed + uint64(q*1000) + uint64(j),
	})
	if err != nil {
		return nil, 0, fmt.Errorf("scenario: DQG j=%d i=%d p=%.2f q=%.2f: %w", j, i, p, q, err)
	}
	l.dqg[key] = res[0]
	return res[0].Query, res[0].Balance, nil
}

// pair assembles one annotated pair.
func (l *Lab) pair(j, i int, p, q float64) (Pair, error) {
	db, err := l.NoisyDB(j, i, p)
	if err != nil {
		return Pair{}, err
	}
	query, bal, err := l.BalancedQuery(j, i, p, q)
	if err != nil {
		return Pair{}, err
	}
	return Pair{
		Name:    fmt.Sprintf("j%d/q%d/p%.1f/b%.1f", j, i, p, q),
		DB:      db,
		Query:   query,
		Noise:   p,
		Balance: bal,
		Target:  q,
		Joins:   j,
	}, nil
}

// NoiseScenario builds Noise[balance, joins]: noise varies over levels,
// balance and joins fixed (Figure 1 and Appendix Figures 6–7).
func (l *Lab) NoiseScenario(balance float64, joins int, levels []float64) (*Workload, error) {
	w := &Workload{Name: fmt.Sprintf("Noise[%.1f, %d]", balance, joins), Fingerprint: l.cfg.Fingerprint()}
	for _, p := range levels {
		for i := 0; i < l.cfg.QueriesPerJoin; i++ {
			pr, err := l.pair(joins, i, p, balance)
			if err != nil {
				return nil, err
			}
			w.Pairs = append(w.Pairs, pr)
		}
	}
	return w, nil
}

// BalanceScenario builds Balance[noise, joins]: balance varies, noise and
// joins fixed (Figure 2 and Appendix Figures 8–9).
func (l *Lab) BalanceScenario(noisep float64, joins int, levels []float64) (*Workload, error) {
	w := &Workload{Name: fmt.Sprintf("Balance[%.1f, %d]", noisep, joins), Fingerprint: l.cfg.Fingerprint()}
	for _, q := range levels {
		for i := 0; i < l.cfg.QueriesPerJoin; i++ {
			pr, err := l.pair(joins, i, noisep, q)
			if err != nil {
				return nil, err
			}
			w.Pairs = append(w.Pairs, pr)
		}
	}
	return w, nil
}

// JoinsScenario builds Joins[noise, balance]: the join count varies, noise
// and balance fixed (Figure 4 and Appendix Figures 10–13).
func (l *Lab) JoinsScenario(noisep, balance float64, joinLevels []int) (*Workload, error) {
	w := &Workload{Name: fmt.Sprintf("Joins[%.1f, %.1f]", noisep, balance), Fingerprint: l.cfg.Fingerprint()}
	for _, j := range joinLevels {
		for i := 0; i < l.cfg.QueriesPerJoin; i++ {
			pr, err := l.pair(j, i, noisep, balance)
			if err != nil {
				return nil, err
			}
			w.Pairs = append(w.Pairs, pr)
		}
	}
	return w, nil
}
