package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0.5, 1, []float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Export(w, dir); err != nil {
		t.Fatal(err)
	}
	// Two noise levels share no database: two .db files plus schema and
	// manifest.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("exported %d files, want 4", len(entries))
	}

	back, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name {
		t.Fatalf("name = %q, want %q", back.Name, w.Name)
	}
	if len(back.Pairs) != len(w.Pairs) {
		t.Fatalf("pairs = %d, want %d", len(back.Pairs), len(w.Pairs))
	}
	for i := range w.Pairs {
		orig, got := w.Pairs[i], back.Pairs[i]
		if got.Noise != orig.Noise || got.Joins != orig.Joins || got.Target != orig.Target {
			t.Fatalf("pair %d metadata mismatch: %+v vs %+v", i, got, orig)
		}
		if got.DB.NumFacts() != orig.DB.NumFacts() {
			t.Fatalf("pair %d database size mismatch", i)
		}
		if got.Query.NumJoins() != orig.Query.NumJoins() || got.Query.IsBoolean() != orig.Query.IsBoolean() {
			t.Fatalf("pair %d query mismatch", i)
		}
	}
}

func TestExportDeduplicatesDatabases(t *testing.T) {
	l := testLab(t)
	// Balance scenario: all pairs share one noisy database.
	w, err := l.BalanceScenario(0.4, 1, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Export(w, dir); err != nil {
		t.Fatal(err)
	}
	dbs, err := filepath.Glob(filepath.Join(dir, "*.db"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 1 {
		t.Fatalf("shared database exported %d times", len(dbs))
	}
}

func TestExportEmptyWorkload(t *testing.T) {
	if err := Export(&Workload{}, t.TempDir()); err == nil {
		t.Fatal("empty export accepted")
	}
}

func TestImportErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Import(dir); err == nil {
		t.Fatal("missing schema accepted")
	}
	os.WriteFile(filepath.Join(dir, "schema.txt"), []byte("relation R(k*, v)\n"), 0o644)
	if _, err := Import(dir); err == nil {
		t.Fatal("missing manifest accepted")
	}
	os.WriteFile(filepath.Join(dir, "manifest.txt"), []byte("too|few|fields\n"), 0o644)
	if _, err := Import(dir); err == nil {
		t.Fatal("malformed manifest accepted")
	}
	os.WriteFile(filepath.Join(dir, "manifest.txt"), []byte(""), 0o644)
	if _, err := Import(dir); err == nil {
		t.Fatal("empty manifest accepted")
	}
	os.WriteFile(filepath.Join(dir, "manifest.txt"),
		[]byte("missing.db|0.1|0.2|0.3|1|Q(v) :- R(k, v)\n"), 0o644)
	if _, err := Import(dir); err == nil {
		t.Fatal("missing database file accepted")
	}
}
