package scenario

import (
	"fmt"
	"math"
)

// QuotaSpec declares per-instance admission limits for the estimation
// service: a token bucket on requests, a token bucket on estimated
// sampling work (worker-seconds: wall seconds × effective sampling
// pool size), and a cap on concurrently running requests. It rides on
// an InstanceSpec in the instance manifest ("quota": {...}) and is
// also the wire form of the quota block in PATCH /v1/instances/{name}
// and instance summaries.
//
// Bucket semantics: Rate is the sustained refill in tokens/second and
// Burst the bucket capacity (buckets start full). Rate 0 with Burst 0
// means unlimited; Rate 0 with Burst > 0 is a fixed pool that never
// refills (useful in tests and for hard one-shot budgets). Rate > 0
// with Burst 0 defaults the capacity to max(1, Rate).
type QuotaSpec struct {
	// Rate / Burst shape the request bucket: each admitted estimate or
	// synopsis request debits one token.
	Rate  float64 `json:"rate,omitempty"`
	Burst float64 `json:"burst,omitempty"`
	// WorkRate / WorkBurst shape the sampling-work bucket, measured in
	// worker-seconds. Estimates are post-charged their actual cost
	// (elapsed × sampling workers), so the bucket may go negative; new
	// work is refused until it refills above zero.
	WorkRate  float64 `json:"work_rate,omitempty"`
	WorkBurst float64 `json:"work_burst,omitempty"`
	// MaxConcurrent caps this instance's concurrently running requests
	// (the scheduler skips the instance while it is at the cap). 0 means
	// no per-instance cap beyond the shared worker pool.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
}

// Validate rejects quota fields that cannot shape a bucket: negative
// or non-finite rates, bursts or caps.
func (q *QuotaSpec) Validate() error {
	check := func(field string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("scenario: quota %s = %g (want a finite value >= 0)", field, v)
		}
		return nil
	}
	if err := check("rate", q.Rate); err != nil {
		return err
	}
	if err := check("burst", q.Burst); err != nil {
		return err
	}
	if err := check("work_rate", q.WorkRate); err != nil {
		return err
	}
	if err := check("work_burst", q.WorkBurst); err != nil {
		return err
	}
	if q.MaxConcurrent < 0 {
		return fmt.Errorf("scenario: quota max_concurrent = %d (want >= 0)", q.MaxConcurrent)
	}
	return nil
}

// Normalized returns a copy with defaulted bucket capacities (a
// rate-only bucket gets capacity max(1, rate)), so the service and the
// summaries agree on the effective limits.
func (q QuotaSpec) Normalized() QuotaSpec {
	if q.Rate > 0 && q.Burst == 0 {
		q.Burst = math.Max(1, q.Rate)
	}
	if q.WorkRate > 0 && q.WorkBurst == 0 {
		q.WorkBurst = math.Max(1, q.WorkRate)
	}
	return q
}

// Unlimited reports whether the quota imposes no limit at all — every
// field zero after normalization.
func (q QuotaSpec) Unlimited() bool {
	n := q.Normalized()
	return n.Rate == 0 && n.Burst == 0 && n.WorkRate == 0 && n.WorkBurst == 0 && n.MaxConcurrent == 0
}

// MaxInstanceWeight bounds DRR weights; weights are small integers,
// and the ceiling keeps deficit arithmetic far from overflow.
const MaxInstanceWeight = 1 << 20

// ValidateWeight rejects out-of-range scheduling weights. 0 is valid
// (it selects the default weight 1); negatives and values above
// MaxInstanceWeight are not.
func ValidateWeight(w int) error {
	if w < 0 || w > MaxInstanceWeight {
		return fmt.Errorf("scenario: weight %d out of range [0, %d]", w, MaxInstanceWeight)
	}
	return nil
}
