package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"

	"cqabench/internal/cq"
	"cqabench/internal/noise"
	"cqabench/internal/relation"
	"cqabench/internal/tpcds"
	"cqabench/internal/tpch"
)

// This file is the named-instance construction layer behind the
// estimation service's registry: an InstanceSpec declares one database
// instance (generated benchmark data, optionally noised, or a database
// file on disk), a manifest file lists many, and Build turns a spec
// into the concrete relation.Database the service serves. The spec's
// Fingerprint doubles as the per-instance synopsis-cache key prefix, so
// two instances built from identical specs share syncache entries while
// differently-built instances never collide.

// NoiseSpec is the optional noise-injection step of an InstanceSpec,
// mirroring `cqabench noise`: query-aware primary-key noise (the
// paper's Section 6.2 scenario construction) unless Oblivious is set.
type NoiseSpec struct {
	// Query is the conjunctive query the noise should affect. Required
	// unless Oblivious.
	Query string `json:"query,omitempty"`
	// Oblivious injects query-oblivious noise over the whole database.
	Oblivious bool `json:"oblivious,omitempty"`
	// P is the noise percentage in (0, 1]. Required.
	P float64 `json:"p"`
	// MinBlock and MaxBlock bound non-singleton block sizes; 0 selects
	// the `cqabench noise` defaults (2 and 5).
	MinBlock int `json:"min_block,omitempty"`
	MaxBlock int `json:"max_block,omitempty"`
	// Seed is the noise PRNG seed; 0 selects 1.
	Seed uint64 `json:"seed,omitempty"`
}

// InstanceSpec declares one named database instance for the estimation
// service: either a generated benchmark database (Benchmark at
// ScaleFactor / Seed, optionally noised per Noise) or a database text
// file (Path, with the schema from Benchmark or SchemaPath). The JSON
// form is the instance-manifest entry format documented in
// docs/FORMATS.md.
type InstanceSpec struct {
	// Name addresses the instance in every service request. Required;
	// letters, digits, and ._- only (it appears in URLs, metric labels
	// and cache keys).
	Name string `json:"name"`
	// Benchmark is the schema and generator family: "tpch" (default) or
	// "tpcds".
	Benchmark string `json:"benchmark,omitempty"`
	// ScaleFactor and Seed parameterize generation when no Path is
	// given. Zero values select 0.001 and 1.
	ScaleFactor float64 `json:"sf,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	// Path is a database text file to load instead of generating; the
	// schema comes from Benchmark unless SchemaPath is set.
	Path string `json:"path,omitempty"`
	// SchemaPath is a schema DSL file overriding the built-in Benchmark
	// schema for Path loading.
	SchemaPath string `json:"schema,omitempty"`
	// Noise optionally injects inconsistency after generation/loading.
	Noise *NoiseSpec `json:"noise,omitempty"`
	// Weight is the instance's deficit-round-robin scheduling weight on
	// the estimation service (0 selects the default weight 1). Like
	// Quota, it is admission policy, not content: neither participates
	// in Fingerprint, so retuning an instance never invalidates its
	// cached synopses.
	Weight int `json:"weight,omitempty"`
	// Quota optionally bounds the instance's request rate, sampling
	// work and concurrency (see QuotaSpec). Nil defers to the service's
	// default quota, if any.
	Quota *QuotaSpec `json:"quota,omitempty"`
}

// instanceNameRE bounds instance names: they ride in URL path segments,
// Prometheus label values and syncache key prefixes.
var instanceNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidInstanceName reports whether name is usable as an instance name
// (1-64 chars of [A-Za-z0-9._-], not starting with a punctuation rune).
func ValidInstanceName(name string) bool { return instanceNameRE.MatchString(name) }

// Validate rejects specs that cannot produce an instance: a missing or
// malformed name, an unknown benchmark, out-of-range generation or
// noise parameters, or a noise step with neither a query nor the
// oblivious flag.
func (s *InstanceSpec) Validate() error {
	if !ValidInstanceName(s.Name) {
		return fmt.Errorf("scenario: invalid instance name %q (want 1-64 chars of [A-Za-z0-9._-], starting with an alphanumeric)", s.Name)
	}
	switch s.Benchmark {
	case "", "tpch", "tpcds":
	default:
		return fmt.Errorf("scenario: instance %q: unknown benchmark %q (want tpch or tpcds)", s.Name, s.Benchmark)
	}
	if s.ScaleFactor < 0 {
		return fmt.Errorf("scenario: instance %q: negative scale factor %g", s.Name, s.ScaleFactor)
	}
	if s.Path == "" && s.SchemaPath != "" {
		return fmt.Errorf("scenario: instance %q: schema override requires a database path", s.Name)
	}
	if n := s.Noise; n != nil {
		if n.P <= 0 || n.P > 1 {
			return fmt.Errorf("scenario: instance %q: noise p = %g outside (0, 1]", s.Name, n.P)
		}
		if !n.Oblivious && n.Query == "" {
			return fmt.Errorf("scenario: instance %q: noise needs a query (or oblivious: true)", s.Name)
		}
		if n.MinBlock < 0 || n.MaxBlock < 0 || (n.MaxBlock > 0 && n.MinBlock > n.MaxBlock) {
			return fmt.Errorf("scenario: instance %q: bad noise block bounds [%d, %d]", s.Name, n.MinBlock, n.MaxBlock)
		}
	}
	if err := ValidateWeight(s.Weight); err != nil {
		return fmt.Errorf("scenario: instance %q: %w", s.Name, err)
	}
	if s.Quota != nil {
		if err := s.Quota.Validate(); err != nil {
			return fmt.Errorf("scenario: instance %q: %w", s.Name, err)
		}
	}
	return nil
}

// withDefaults returns a copy with every zero field resolved, so
// Fingerprint and Build agree on what actually runs.
func (s *InstanceSpec) withDefaults() InstanceSpec {
	out := *s
	if out.Benchmark == "" {
		out.Benchmark = "tpch"
	}
	if out.Path == "" {
		if out.ScaleFactor == 0 {
			out.ScaleFactor = 0.001
		}
		if out.Seed == 0 {
			out.Seed = 1
		}
	}
	if out.Noise != nil {
		n := *out.Noise
		if n.MinBlock == 0 {
			n.MinBlock = 2
		}
		if n.MaxBlock == 0 {
			n.MaxBlock = 5
		}
		if n.Seed == 0 {
			n.Seed = 1
		}
		out.Noise = &n
	}
	return out
}

// Fingerprint is a stable string identifying the instance's contents —
// every parameter that determines the built database, but not the
// instance name (renaming an instance must not invalidate its cached
// synopses) and not the admission policy (Weight/Quota retuning must
// not either). It is the syncache key prefix for the instance. For
// file-backed instances the path stands in for the contents; serving a
// changed file under the same path from a shared cache directory is an
// operator error (documented in docs/REGISTRY.md).
func (s *InstanceSpec) Fingerprint() string {
	d := s.withDefaults()
	fp := ""
	if d.Path != "" {
		fp = fmt.Sprintf("file:%s:bench=%s:schema=%s", d.Path, d.Benchmark, d.SchemaPath)
	} else {
		fp = fmt.Sprintf("gen:%s:sf=%g:seed=%d", d.Benchmark, d.ScaleFactor, d.Seed)
	}
	if n := d.Noise; n != nil {
		fp += fmt.Sprintf(":noise=%g:q=%s:obl=%t:blocks=%d-%d:nseed=%d",
			n.P, n.Query, n.Oblivious, n.MinBlock, n.MaxBlock, n.Seed)
	}
	return fp
}

// Build constructs the instance's database: generate or load, then
// optionally inject noise. Pure with respect to the spec — identical
// specs build identical databases (file-backed instances aside).
func (s *InstanceSpec) Build() (*relation.Database, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d := s.withDefaults()
	db, err := d.baseDatabase()
	if err != nil {
		return nil, fmt.Errorf("scenario: instance %q: %w", s.Name, err)
	}
	if n := d.Noise; n != nil {
		cfg := noise.Config{P: n.P, MinBlock: n.MinBlock, MaxBlock: n.MaxBlock, Seed: n.Seed}
		if n.Oblivious {
			db, _, err = noise.ApplyOblivious(db, cfg)
		} else {
			var q *cq.Query
			if q, err = cq.Parse(n.Query, db.Dict); err == nil {
				db, _, err = noise.Apply(db, q, cfg)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: instance %q: noise: %w", s.Name, err)
		}
	}
	return db, nil
}

// baseDatabase resolves the pre-noise database of a defaulted spec.
func (s *InstanceSpec) baseDatabase() (*relation.Database, error) {
	if s.Path != "" {
		schema, err := s.schema()
		if err != nil {
			return nil, err
		}
		f, err := os.Open(s.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return relation.ReadDB(f, schema)
	}
	switch s.Benchmark {
	case "tpch":
		return tpch.Generate(tpch.Config{ScaleFactor: s.ScaleFactor, Seed: s.Seed})
	case "tpcds":
		return tpcds.Generate(tpcds.Config{ScaleFactor: s.ScaleFactor, Seed: s.Seed})
	}
	return nil, fmt.Errorf("unknown benchmark %q", s.Benchmark)
}

// schema resolves the schema for a file-backed spec.
func (s *InstanceSpec) schema() (*relation.Schema, error) {
	if s.SchemaPath != "" {
		f, err := os.Open(s.SchemaPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return relation.ParseSchema(f)
	}
	switch s.Benchmark {
	case "tpch":
		return tpch.Schema(), nil
	case "tpcds":
		return tpcds.Schema(), nil
	}
	return nil, fmt.Errorf("unknown benchmark %q", s.Benchmark)
}

// InstanceManifest is the instance-manifest file format: the JSON
// document `cqabench serve -instances manifest.json` loads at startup.
// The format is documented with a worked example in docs/FORMATS.md
// and docs/REGISTRY.md.
type InstanceManifest struct {
	Instances []InstanceSpec `json:"instances"`
}

// ParseInstanceManifest reads and validates a manifest: strict JSON
// (unknown fields rejected, catching typos like "scalefactor"), at
// least one instance, no duplicate names, every spec valid.
func ParseInstanceManifest(r io.Reader) ([]InstanceSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m InstanceManifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("scenario: instance manifest: %w", err)
	}
	if len(m.Instances) == 0 {
		return nil, fmt.Errorf("scenario: instance manifest declares no instances")
	}
	seen := make(map[string]bool, len(m.Instances))
	for i := range m.Instances {
		spec := &m.Instances[i]
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("scenario: instance manifest: duplicate instance name %q", spec.Name)
		}
		seen[spec.Name] = true
	}
	return m.Instances, nil
}

// LoadInstanceManifest is ParseInstanceManifest over a file path.
func LoadInstanceManifest(path string) ([]InstanceSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: instance manifest: %w", err)
	}
	defer f.Close()
	return ParseInstanceManifest(f)
}
