package dnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a boolean DNF formula in DIMACS-style syntax, the
// lingua franca of the DNF-counting benchmarks the ADCS suite [24]
// consumes:
//
//	c a comment
//	p dnf 5 3
//	1 -2 0
//	3 4 5 0
//	-1 0
//
// The header declares the variable and clause counts; each clause is a
// list of signed 1-based literals terminated by 0 and may span lines.
func ParseDIMACS(r io.Reader) (*Boolean, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	b := &Boolean{}
	declaredClauses := -1
	var current []int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if b.NumVars != 0 {
				return nil, fmt.Errorf("dnf: line %d: duplicate problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "dnf" {
				return nil, fmt.Errorf("dnf: line %d: want 'p dnf <vars> <clauses>', got %q", lineNo, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv <= 0 || nc <= 0 {
				return nil, fmt.Errorf("dnf: line %d: bad problem line %q", lineNo, line)
			}
			b.NumVars = nv
			declaredClauses = nc
			continue
		}
		if b.NumVars == 0 {
			return nil, fmt.Errorf("dnf: line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dnf: line %d: bad literal %q", lineNo, tok)
			}
			if lit == 0 {
				if len(current) == 0 {
					return nil, fmt.Errorf("dnf: line %d: empty clause", lineNo)
				}
				b.Clauses = append(b.Clauses, current)
				current = nil
				continue
			}
			current = append(current, lit)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(current) > 0 {
		return nil, fmt.Errorf("dnf: final clause not terminated by 0")
	}
	if b.NumVars == 0 {
		return nil, fmt.Errorf("dnf: missing problem line")
	}
	if declaredClauses >= 0 && len(b.Clauses) != declaredClauses {
		return nil, fmt.Errorf("dnf: header declares %d clauses, found %d", declaredClauses, len(b.Clauses))
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteDIMACS renders the formula in the same syntax.
func WriteDIMACS(w io.Writer, b *Boolean) error {
	if err := b.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p dnf %d %d\n", b.NumVars, len(b.Clauses))
	for _, c := range b.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", l)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}
