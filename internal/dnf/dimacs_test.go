package dnf

import (
	"strings"
	"testing"
)

func TestParseDIMACS(t *testing.T) {
	input := `c a comment
p dnf 5 3
1 -2 0
3 4
5 0
-1 0
`
	b, err := ParseDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if b.NumVars != 5 || len(b.Clauses) != 3 {
		t.Fatalf("parsed %+v", b)
	}
	if len(b.Clauses[1]) != 3 { // multi-line clause 3 4 5
		t.Fatalf("clause 1 = %v", b.Clauses[1])
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "1 0\n",
		"bad header":       "p cnf 3 1\n1 0\n",
		"dup header":       "p dnf 2 1\np dnf 2 1\n1 0\n",
		"bad literal":      "p dnf 2 1\nx 0\n",
		"empty clause":     "p dnf 2 1\n0\n",
		"unterminated":     "p dnf 2 1\n1\n",
		"count mismatch":   "p dnf 2 2\n1 0\n",
		"literal range":    "p dnf 2 1\n5 0\n",
		"contradiction":    "p dnf 2 1\n1 -1 0\n",
		"zero vars":        "p dnf 0 1\n1 0\n",
		"missing anything": "",
	}
	for name, input := range cases {
		if _, err := ParseDIMACS(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	b := &Boolean{NumVars: 4, Clauses: [][]int{{1, -2}, {3}, {-1, 4}}}
	var buf strings.Builder
	if err := WriteDIMACS(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != b.NumVars || len(back.Clauses) != len(b.Clauses) {
		t.Fatalf("round trip changed formula: %+v", back)
	}
	e1, err := b.CountSatisfying()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := back.CountSatisfying()
	if err != nil {
		t.Fatal(err)
	}
	if e1.Cmp(e2) != 0 {
		t.Fatal("round trip changed semantics")
	}
}

func TestWriteDIMACSInvalid(t *testing.T) {
	if err := WriteDIMACS(&strings.Builder{}, &Boolean{}); err == nil {
		t.Fatal("invalid formula written")
	}
}

// FuzzParseDIMACS: the parser must not panic, and accepted formulas must
// round-trip.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p dnf 3 1\n1 -2 0\n")
	f.Add("c x\np dnf 2 2\n1 0\n-2 0\n")
	f.Add("p dnf 70 1\n1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		b, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteDIMACS(&buf, b); err != nil {
			t.Fatalf("accepted formula failed to render: %v", err)
		}
		if _, err := ParseDIMACS(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("rendering rejected: %v", err)
		}
	})
}
