package dnf

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"cqabench/internal/synopsis"
)

func blockFormula(t *testing.T) *Formula {
	t.Helper()
	f := &Formula{
		BlockSizes: []int32{2, 3, 2},
		Clauses: []Clause{
			{{Block: 0, Var: 0}},
			{{Block: 1, Var: 1}, {Block: 2, Var: 0}},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]*Formula{
		"no clauses":   {BlockSizes: []int32{2}},
		"empty clause": {BlockSizes: []int32{2}, Clauses: []Clause{{}}},
		"bad block":    {BlockSizes: []int32{2}, Clauses: []Clause{{{Block: 5, Var: 0}}}},
		"bad var":      {BlockSizes: []int32{2}, Clauses: []Clause{{{Block: 0, Var: 9}}}},
		"dup block":    {BlockSizes: []int32{2}, Clauses: []Clause{{{Block: 0, Var: 0}, {Block: 0, Var: 1}}}},
		"zero size":    {BlockSizes: []int32{0}, Clauses: []Clause{{{Block: 0, Var: 0}}}},
	}
	for name, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestNumAssignments(t *testing.T) {
	f := blockFormula(t)
	if f.NumAssignments().Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("assignments = %v, want 12", f.NumAssignments())
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	f := blockFormula(t)
	ie, err := f.ExactFraction(0)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := f.BruteForceFraction(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ie-bf) > 1e-12 {
		t.Fatalf("exact %v vs brute force %v", ie, bf)
	}
	// Hand count: clause 1 covers 6 of 12; clause 2 covers 2 of 12;
	// overlap 1. Union 7/12.
	if math.Abs(ie-7.0/12) > 1e-12 {
		t.Fatalf("fraction = %v, want 7/12", ie)
	}
}

func TestUntouchedBlocksDropped(t *testing.T) {
	// Block 1 is untouched: it must not change the fraction.
	f := &Formula{
		BlockSizes: []int32{2, 7, 2},
		Clauses: []Clause{
			{{Block: 0, Var: 0}, {Block: 2, Var: 1}},
		},
	}
	frac, err := f.ExactFraction(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac-0.25) > 1e-12 {
		t.Fatalf("fraction = %v, want 1/4", frac)
	}
}

func TestRoundTripAdmissible(t *testing.T) {
	pair := &synopsis.Admissible{
		BlockSizes: []int32{2, 3},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 1}, {Block: 1, Fact: 2}},
		},
	}
	pair.Canonicalize()
	f, err := FromAdmissible(pair)
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.ToAdmissible()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := back.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-r2) > 1e-12 {
		t.Fatalf("round trip changed the ratio: %v vs %v", r1, r2)
	}
}

func TestApproxFractionAllMethods(t *testing.T) {
	f := blockFormula(t)
	want, err := f.ExactFraction(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodNatural, MethodKL, MethodKLM, MethodCover} {
		got, err := f.ApproxFraction(m, 0.1, 0.25, 42)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.Abs(got-want) > 0.1*want {
			t.Fatalf("%v: %v, want %v ± 10%%", m, got, want)
		}
	}
	if _, err := f.ApproxFraction(Method(9), 0.1, 0.25, 1); err == nil {
		t.Fatal("unknown method accepted")
	}
	if got := Method(9).String(); got != "Method(9)" {
		t.Fatalf("method name = %q", got)
	}
}

func TestApproxCount(t *testing.T) {
	f := blockFormula(t)
	c, err := f.ApproxCount(MethodKLM, 0.1, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.Float64()
	if math.Abs(got-7) > 1 {
		t.Fatalf("count = %v, want ~7", got)
	}
}

func TestBooleanValidate(t *testing.T) {
	cases := map[string]*Boolean{
		"no vars":       {NumVars: 0, Clauses: [][]int{{1}}},
		"too many vars": {NumVars: 70, Clauses: [][]int{{1}}},
		"no clauses":    {NumVars: 2},
		"empty clause":  {NumVars: 2, Clauses: [][]int{{}}},
		"zero literal":  {NumVars: 2, Clauses: [][]int{{0}}},
		"out of range":  {NumVars: 2, Clauses: [][]int{{5}}},
		"contradiction": {NumVars: 2, Clauses: [][]int{{1, -1}}},
	}
	for name, b := range cases {
		if err := b.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBooleanExactCount(t *testing.T) {
	// (x1 AND x2) OR (NOT x3): over 3 vars.
	// x1&x2: assignments 2 (x3 free). !x3: 4. Overlap: x1&x2&!x3: 1. Union 5.
	b := &Boolean{NumVars: 3, Clauses: [][]int{{1, 2}, {-3}}}
	n, err := b.CountSatisfying()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(5)) != 0 {
		t.Fatalf("count = %v, want 5", n)
	}
}

func TestBooleanBlockEncodingMatchesEnumeration(t *testing.T) {
	b := &Boolean{NumVars: 4, Clauses: [][]int{{1, -2}, {3}, {-1, 4}}}
	exact, err := b.CountSatisfying()
	if err != nil {
		t.Fatal(err)
	}
	f, err := b.ToBlock()
	if err != nil {
		t.Fatal(err)
	}
	frac, err := f.ExactFraction(0)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(exact.Int64()) / 16
	if math.Abs(frac-want) > 1e-12 {
		t.Fatalf("block fraction %v, enumeration %v", frac, want)
	}
}

func TestBooleanApproxCount(t *testing.T) {
	b := &Boolean{NumVars: 6, Clauses: [][]int{{1, 2, 3}, {-4, 5}, {6}}}
	exact, err := b.CountSatisfying()
	if err != nil {
		t.Fatal(err)
	}
	approx, err := b.ApproxCountSatisfying(MethodKLM, 0.1, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := approx.Float64()
	want := float64(exact.Int64())
	if math.Abs(got-want) > 0.1*want+1 {
		t.Fatalf("approx %v, exact %v", got, want)
	}
}

func TestBooleanDuplicateLiteralDeduped(t *testing.T) {
	b := &Boolean{NumVars: 2, Clauses: [][]int{{1, 1}}}
	f, err := b.ToBlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses[0]) != 1 {
		t.Fatalf("clause = %v, want single literal", f.Clauses[0])
	}
}

// Property: for random small boolean DNFs, the block encoding's exact
// fraction always equals exhaustive enumeration.
func TestBooleanEncodingProperty(t *testing.T) {
	f := func(raw [][3]int8, nv uint8) bool {
		n := int(nv%5) + 1
		b := &Boolean{NumVars: n}
		for _, r := range raw {
			var clause []int
			for _, l := range r {
				v := int(l)%n + 1
				if v == 0 {
					continue
				}
				if l < 0 {
					v = -v
				}
				clause = append(clause, v)
			}
			if len(clause) > 0 {
				b.Clauses = append(b.Clauses, clause)
			}
		}
		if len(b.Clauses) == 0 {
			return true
		}
		if err := b.Validate(); err != nil {
			return true // contradictory random clause: fine to reject
		}
		exact, err := b.CountSatisfying()
		if err != nil {
			return false
		}
		blk, err := b.ToBlock()
		if err != nil {
			return false
		}
		frac, err := blk.BruteForceFraction(0)
		if err != nil {
			return false
		}
		want := float64(exact.Int64()) / math.Pow(2, float64(n))
		return math.Abs(frac-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
