// Package dnf implements the DNF-counting substrate the paper's
// implementation builds on (Section 5 extends the Approximate DNF
// Counting Suite of Meel, Shrotri and Vardi [24]; Appendix E spells out
// the correspondence): a database synopsis is exactly a Block DNF
// formula — a positive DNF whose variables are partitioned into blocks
// X_1,...,X_m, evaluated only over assignments that set exactly one
// variable per block true. Facts are variables, homomorphic images are
// clauses, and the fraction of satisfying block assignments is R(H, B).
//
// The package provides the Block DNF type, a lossless bridge to and from
// admissible pairs (so every approximation scheme in internal/cqa doubles
// as a DNF counter), classic DNF formulas with negative literals encoded
// as two-variable blocks, exact counting by enumeration and by
// inclusion–exclusion, and approximate counting via the shared samplers
// and estimators.
package dnf

import (
	"errors"
	"fmt"
	"math/big"

	"cqabench/internal/estimator"
	"cqabench/internal/mt"
	"cqabench/internal/sampler"
	"cqabench/internal/synopsis"
)

// Literal asserts that block Block's variable Var is the one set true.
type Literal struct {
	Block int32
	Var   int32
}

// Clause is a conjunction of literals (at most one per block; two
// literals on the same block make the clause unsatisfiable and are
// rejected by Validate).
type Clause []Literal

// Formula is a Block DNF formula: the disjunction of its clauses over
// block-partitioned variables.
type Formula struct {
	BlockSizes []int32
	Clauses    []Clause
}

// Validate checks structural sanity: positive block sizes, literals in
// range, at most one literal per block per clause, and at least one
// clause with at least one literal each.
func (f *Formula) Validate() error {
	if len(f.Clauses) == 0 {
		return errors.New("dnf: formula has no clauses")
	}
	for b, sz := range f.BlockSizes {
		if sz < 1 {
			return fmt.Errorf("dnf: block %d has size %d", b, sz)
		}
	}
	for ci, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("dnf: clause %d is empty", ci)
		}
		seen := make(map[int32]bool, len(c))
		for _, l := range c {
			if int(l.Block) >= len(f.BlockSizes) || l.Block < 0 {
				return fmt.Errorf("dnf: clause %d references unknown block %d", ci, l.Block)
			}
			if l.Var < 0 || l.Var >= f.BlockSizes[l.Block] {
				return fmt.Errorf("dnf: clause %d literal out of range for block %d", ci, l.Block)
			}
			if seen[l.Block] {
				return fmt.Errorf("dnf: clause %d has two literals on block %d", ci, l.Block)
			}
			seen[l.Block] = true
		}
	}
	return nil
}

// NumAssignments returns the number of block assignments: the product of
// block sizes.
func (f *Formula) NumAssignments() *big.Int {
	n := big.NewInt(1)
	for _, sz := range f.BlockSizes {
		n.Mul(n, big.NewInt(int64(sz)))
	}
	return n
}

// ToAdmissible converts the formula into an admissible pair, dropping
// blocks no clause touches (they contribute equally to the numerator and
// denominator of the satisfying fraction, so the fraction is unchanged).
func (f *Formula) ToAdmissible() (*synopsis.Admissible, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	touched := make([]bool, len(f.BlockSizes))
	for _, c := range f.Clauses {
		for _, l := range c {
			touched[l.Block] = true
		}
	}
	remap := make([]int32, len(f.BlockSizes))
	pair := &synopsis.Admissible{}
	for b, ok := range touched {
		if ok {
			remap[b] = int32(len(pair.BlockSizes))
			pair.BlockSizes = append(pair.BlockSizes, f.BlockSizes[b])
		}
	}
	for _, c := range f.Clauses {
		img := make(synopsis.Image, len(c))
		for i, l := range c {
			img[i] = synopsis.Member{Block: remap[l.Block], Fact: l.Var}
		}
		pair.Images = append(pair.Images, img)
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	return pair, nil
}

// FromAdmissible converts an admissible pair into its Block DNF formula
// (the inverse direction of the Appendix E correspondence).
func FromAdmissible(pair *synopsis.Admissible) (*Formula, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	f := &Formula{BlockSizes: append([]int32(nil), pair.BlockSizes...)}
	for _, img := range pair.Images {
		c := make(Clause, len(img))
		for i, m := range img {
			c[i] = Literal{Block: m.Block, Var: m.Fact}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f, nil
}

// ExactFraction computes the fraction of satisfying block assignments by
// inclusion–exclusion; maxClauses bounds the clause count (0 = 22).
func (f *Formula) ExactFraction(maxClauses int) (float64, error) {
	pair, err := f.ToAdmissible()
	if err != nil {
		return 0, err
	}
	return pair.ExactRatio(maxClauses)
}

// BruteForceFraction enumerates all block assignments (bounded by limit;
// 0 = 1<<20) and counts the satisfying ones.
func (f *Formula) BruteForceFraction(limit int64) (float64, error) {
	pair, err := f.ToAdmissible()
	if err != nil {
		return 0, err
	}
	// The dropped untouched blocks do not change the fraction.
	return pair.BruteForceRatio(limit)
}

// Method selects an approximate counting strategy, mirroring the CQA
// schemes (Section 4 applied back to the DNF setting it came from).
type Method int

const (
	// MethodNatural samples assignments uniformly.
	MethodNatural Method = iota
	// MethodKL uses the Karp–Luby symbolic-space sampler.
	MethodKL
	// MethodKLM uses the Karp–Luby–Madras sampler.
	MethodKLM
	// MethodCover uses the self-adjusting coverage algorithm.
	MethodCover
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodNatural:
		return "Natural"
	case MethodKL:
		return "KL"
	case MethodKLM:
		return "KLM"
	case MethodCover:
		return "Cover"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ApproxFraction estimates the satisfying fraction with relative error
// eps and confidence 1-delta.
func (f *Formula) ApproxFraction(m Method, eps, delta float64, seed uint64) (float64, error) {
	pair, err := f.ToAdmissible()
	if err != nil {
		return 0, err
	}
	src := mt.New(seed)
	switch m {
	case MethodNatural:
		r, err := estimator.MonteCarlo(sampler.NewNatural(pair), eps, delta, src, estimator.Budget{})
		return clamp01(r.Estimate), err
	case MethodKL:
		s := sampler.NewKL(pair)
		r, err := estimator.MonteCarlo(s, eps, delta, src, estimator.Budget{})
		return clamp01(r.Estimate * s.Weight()), err
	case MethodKLM:
		s := sampler.NewKLM(pair)
		r, err := estimator.MonteCarlo(s, eps, delta, src, estimator.Budget{})
		return clamp01(r.Estimate * s.Weight()), err
	case MethodCover:
		r, err := estimator.SelfAdjustingCoverage(sampler.NewSymbolic(pair), eps, delta, src, estimator.Budget{})
		return clamp01(r.Estimate), err
	default:
		return 0, fmt.Errorf("dnf: unknown method %v", m)
	}
}

// ApproxCount estimates the number of satisfying block assignments as a
// float (it can exceed float64 integer precision but tracks the magnitude;
// use ApproxFraction with NumAssignments for exact big-number work).
func (f *Formula) ApproxCount(m Method, eps, delta float64, seed uint64) (*big.Float, error) {
	frac, err := f.ApproxFraction(m, eps, delta, seed)
	if err != nil {
		return nil, err
	}
	total := new(big.Float).SetInt(f.NumAssignments())
	return total.Mul(total, big.NewFloat(frac)), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
