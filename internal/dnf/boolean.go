package dnf

import (
	"errors"
	"fmt"
	"math/big"
)

// Boolean is a classic DNF formula over n boolean variables, with clauses
// of signed literals: +v means variable v-1 is true, -v means false
// (variables are 1-based in clauses, as in DIMACS). It is counted by
// encoding each boolean variable as a block of size 2 (member 0 = true,
// member 1 = false) — the standard reduction to Block DNF.
type Boolean struct {
	NumVars int
	Clauses [][]int
}

// Validate checks that every literal references a declared variable and
// no clause contains both a literal and its negation (such clauses are
// unsatisfiable; the caller should drop them).
func (b *Boolean) Validate() error {
	if b.NumVars <= 0 {
		return errors.New("dnf: boolean formula needs at least one variable")
	}
	if b.NumVars > 62 {
		return fmt.Errorf("dnf: boolean formula limited to 62 variables, got %d", b.NumVars)
	}
	if len(b.Clauses) == 0 {
		return errors.New("dnf: boolean formula has no clauses")
	}
	for ci, c := range b.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("dnf: clause %d is empty", ci)
		}
		seen := make(map[int]int, len(c))
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("dnf: clause %d has literal 0", ci)
			}
			v := l
			if v < 0 {
				v = -v
			}
			if v > b.NumVars {
				return fmt.Errorf("dnf: clause %d references variable %d > %d", ci, v, b.NumVars)
			}
			sign := 1
			if l < 0 {
				sign = -1
			}
			if prev, ok := seen[v]; ok && prev != sign {
				return fmt.Errorf("dnf: clause %d contains both %d and %d", ci, v, -v)
			}
			seen[v] = sign
		}
	}
	return nil
}

// ToBlock encodes the boolean formula as a Block DNF formula: one block
// of size 2 per variable, repeated literals within a clause deduplicated.
func (b *Boolean) ToBlock() (*Formula, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	f := &Formula{BlockSizes: make([]int32, b.NumVars)}
	for i := range f.BlockSizes {
		f.BlockSizes[i] = 2
	}
	for _, c := range b.Clauses {
		seen := make(map[int32]bool, len(c))
		var clause Clause
		for _, l := range c {
			v := l
			member := int32(0) // true
			if v < 0 {
				v = -v
				member = 1 // false
			}
			block := int32(v - 1)
			if seen[block] {
				continue // duplicate literal (same sign: Validate checked)
			}
			seen[block] = true
			clause = append(clause, Literal{Block: block, Var: member})
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return f, nil
}

// CountSatisfying returns the exact number of satisfying boolean
// assignments by exhaustive enumeration (NumVars <= 24 for sanity).
func (b *Boolean) CountSatisfying() (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if b.NumVars > 24 {
		return nil, fmt.Errorf("dnf: exhaustive counting limited to 24 variables, got %d", b.NumVars)
	}
	count := int64(0)
	for a := uint64(0); a < uint64(1)<<b.NumVars; a++ {
		if b.satisfied(a) {
			count++
		}
	}
	return big.NewInt(count), nil
}

func (b *Boolean) satisfied(assignment uint64) bool {
	for _, c := range b.Clauses {
		ok := true
		for _, l := range c {
			v := l
			want := true
			if v < 0 {
				v = -v
				want = false
			}
			if (assignment>>(v-1))&1 == 1 != want {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ApproxCountSatisfying estimates the number of satisfying boolean
// assignments via the Block DNF encoding and the chosen method.
func (b *Boolean) ApproxCountSatisfying(m Method, eps, delta float64, seed uint64) (*big.Float, error) {
	f, err := b.ToBlock()
	if err != nil {
		return nil, err
	}
	frac, err := f.ApproxFraction(m, eps, delta, seed)
	if err != nil {
		return nil, err
	}
	total := new(big.Float).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(b.NumVars)))
	return total.Mul(total, big.NewFloat(frac)), nil
}
