package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// A WindowedHistogram records every observation twice: into a cumulative
// Histogram (the series exported under the metric's own name) and into a
// ring of per-interval bucket sets, from which quantiles over the last
// ~1m / ~5m (or any configured windows) can be read at any time. The
// windowed view is what SLOs want — a p99 that reflects the last minute
// of traffic and drains back to zero when the traffic stops — while the
// cumulative series keeps its whole-process meaning.
//
// The ring holds one slot per interval of windows[0]/12 (so the shortest
// window always spans ~12 slots and a quantile is at most ~1/12 of the
// window stale), sized to cover the longest window. A slot is reset
// lazily the first time its interval comes around again, so idle series
// cost nothing. Time comes from an injectable clock so tests can drive
// slot expiry deterministically.

// windowSlotsPerShortest fixes the slot granularity: the shortest window
// is divided into this many ring slots.
const windowSlotsPerShortest = 12

// DefaultWindows are the rolling windows used when a WindowedHistogram
// is created without an explicit set.
func DefaultWindows() []time.Duration {
	return []time.Duration{time.Minute, 5 * time.Minute}
}

// winSlot is one interval's worth of observations. index is the absolute
// interval number (unix nanos / slot duration); a slot whose index does
// not match the interval being written or read is stale and treated as
// empty.
type winSlot struct {
	index  int64
	counts [histNumBounds + 1]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// WindowedHistogram is a cumulative Histogram plus the rolling-window
// ring. It is safe for concurrent use. Create through
// Registry.WindowedHistogram so the cumulative part is registered and
// exported; the windowed quantiles export beside it as
// <name>_window{window,quantile} series.
type WindowedHistogram struct {
	hist *Histogram

	mu      sync.Mutex
	slotDur time.Duration
	windows []time.Duration // ascending, deduplicated
	slots   []winSlot
	now     func() time.Time
}

// newWindowedHistogram builds the ring for the given windows (nil or
// empty selects DefaultWindows) over hist. Non-positive windows are
// dropped; if none survive, the defaults are used.
func newWindowedHistogram(hist *Histogram, windows []time.Duration) *WindowedHistogram {
	ws := make([]time.Duration, 0, len(windows))
	for _, w := range windows {
		if w > 0 {
			ws = append(ws, w)
		}
	}
	if len(ws) == 0 {
		ws = DefaultWindows()
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	ws = slicesCompact(ws)
	slotDur := ws[0] / windowSlotsPerShortest
	if slotDur < time.Millisecond {
		slotDur = time.Millisecond
	}
	longest := ws[len(ws)-1]
	n := int(longest/slotDur) + 1
	return &WindowedHistogram{
		hist:    hist,
		slotDur: slotDur,
		windows: ws,
		slots:   make([]winSlot, n),
		now:     time.Now,
	}
}

// slicesCompact removes adjacent duplicates from a sorted slice.
func slicesCompact(ws []time.Duration) []time.Duration {
	out := ws[:1]
	for _, w := range ws[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// SetNowFunc replaces the histogram's clock. Tests inject a fake clock
// to drive slot expiry; production code never calls this.
func (w *WindowedHistogram) SetNowFunc(now func() time.Time) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

// Windows returns the configured rolling windows, ascending.
func (w *WindowedHistogram) Windows() []time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]time.Duration(nil), w.windows...)
}

// Cumulative returns the underlying whole-process histogram.
func (w *WindowedHistogram) Cumulative() *Histogram { return w.hist }

// slotAt returns the ring slot for absolute interval idx, resetting it
// if it still holds a previous lap's data. Caller holds w.mu.
func (w *WindowedHistogram) slotAt(idx int64) *winSlot {
	n := int64(len(w.slots))
	sl := &w.slots[int(((idx%n)+n)%n)]
	if sl.index != idx {
		*sl = winSlot{index: idx}
	}
	return sl
}

// Observe records one value into the cumulative histogram and the
// current ring slot. NaN observations are dropped.
func (w *WindowedHistogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	w.hist.Observe(v)
	i := bucketIndex(v)
	w.mu.Lock()
	sl := w.slotAt(w.now().UnixNano() / int64(w.slotDur))
	sl.counts[i]++
	sl.count++
	sl.sum += v
	if sl.count == 1 || v < sl.min {
		sl.min = v
	}
	if sl.count == 1 || v > sl.max {
		sl.max = v
	}
	w.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) { w.Observe(d.Seconds()) }

// WindowSnapshot merges the slots covering the last win of wall time
// (including the partial current interval) into a HistSnapshot, so
// Quantile/Mean/Buckets work exactly as on the cumulative series. An
// idle window yields the zero snapshot: count 0, quantiles 0.
func (w *WindowedHistogram) WindowSnapshot(win time.Duration) HistSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	idx := w.now().UnixNano() / int64(w.slotDur)
	n := int64(win / w.slotDur)
	if n < 1 {
		n = 1
	}
	if n > int64(len(w.slots)) {
		n = int64(len(w.slots))
	}
	ringLen := int64(len(w.slots))
	var s HistSnapshot
	for k := idx - n + 1; k <= idx; k++ {
		sl := &w.slots[int(((k%ringLen)+ringLen)%ringLen)]
		if sl.index != k || sl.count == 0 {
			continue
		}
		for i, c := range sl.counts {
			s.counts[i] += c
		}
		if s.Count == 0 || sl.min < s.Min {
			s.Min = sl.min
		}
		if s.Count == 0 || sl.max > s.Max {
			s.Max = sl.max
		}
		s.Count += sl.count
		s.Sum += sl.sum
	}
	return s
}

// FormatWindow renders a window duration compactly for label values:
// whole hours/minutes/seconds print as "1h"/"5m"/"30s"; anything else
// keeps time.Duration's default rendering ("1m30s").
func FormatWindow(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d < time.Hour && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	case d >= time.Second && d < time.Minute && d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	}
	return d.String()
}
