package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced, but exporters assume it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered time series.
type entry struct {
	name    string
	labels  []Label // sorted by key
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// win, when set, wraps hist with a rolling-window ring; the exporters
	// then emit <name>_window quantile series beside the cumulative ones.
	// Atomic because it is attached lazily while exports may be reading.
	win atomic.Pointer[WindowedHistogram]
}

// labelString renders the sorted label set as {k="v",...}, or "" when
// unlabeled.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds a set of named metrics. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// get returns the entry for (name, labels), creating it with the given
// kind on first use. Asking for an existing name+labels with a different
// kind panics: it is a programming error that would silently corrupt the
// export otherwise.
func (r *Registry) get(name string, kind metricKind, labels []Label) *entry {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := name + labelString(sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok {
		e = &entry{name: name, labels: sorted, kind: kind}
		switch kind {
		case counterKind:
			e.counter = &Counter{}
		case gaugeKind:
			e.gauge = &Gauge{}
		case histogramKind:
			e.hist = newHistogram()
		}
		r.entries[key] = e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, e.kind, kind))
	}
	return e
}

// Counter returns (registering if needed) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.get(name, counterKind, labels).counter
}

// Gauge returns (registering if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.get(name, gaugeKind, labels).gauge
}

// Histogram returns (registering if needed) the histogram for name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.get(name, histogramKind, labels).hist
}

// WindowedHistogram returns (registering if needed) the rolling-window
// view of the histogram for name+labels. The first call fixes the
// window set (nil selects DefaultWindows); later calls return the
// existing view regardless of their windows argument. Observations made
// through the returned handle feed both the cumulative series and the
// per-window quantiles; observations made through Histogram() on the
// same name feed only the cumulative series.
func (r *Registry) WindowedHistogram(name string, windows []time.Duration, labels ...Label) *WindowedHistogram {
	e := r.get(name, histogramKind, labels)
	if wh := e.win.Load(); wh != nil {
		return wh
	}
	wh := newWindowedHistogram(e.hist, windows)
	if e.win.CompareAndSwap(nil, wh) {
		return wh
	}
	return e.win.Load()
}

// Reset drops every registered metric. Meant for tests and for CLI runs
// that want a clean slate.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make(map[string]*entry)
}

// snapshot returns the entries sorted by (name, labels) for deterministic
// export.
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelString(out[i].labels) < labelString(out[j].labels)
	})
	return out
}
