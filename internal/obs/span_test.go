package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanNestingAndAttribution(t *testing.T) {
	root := NewSpan("run")
	for i := 0; i < 3; i++ {
		c := root.StartChild("estimate")
		time.Sleep(2 * time.Millisecond)
		c.End()
	}
	g := root.StartChild("flush")
	time.Sleep(time.Millisecond)
	g.End()
	time.Sleep(time.Millisecond) // uncovered time -> "other"
	root.End()

	stages := root.Stages()
	if len(stages) != 3 {
		t.Fatalf("got %d stages (%v), want 3 (estimate, flush, other)", len(stages), stages)
	}
	if stages[0].Name != "estimate" || stages[0].Count != 3 {
		t.Errorf("stage 0: got %+v, want estimate x3", stages[0])
	}
	if stages[1].Name != "flush" || stages[1].Count != 1 {
		t.Errorf("stage 1: got %+v, want flush x1", stages[1])
	}
	if stages[2].Name != "other" {
		t.Errorf("stage 2: got %+v, want other", stages[2])
	}
	var sum time.Duration
	for _, s := range stages {
		if s.Dur <= 0 {
			t.Errorf("stage %s has non-positive duration", s.Name)
		}
		sum += s.Dur
	}
	if total := root.Duration(); sum != total {
		// Stages covers the full root duration exactly: children + other.
		t.Errorf("stage sum %v != root duration %v", sum, total)
	}
}

func TestSpanTreeMergesSiblings(t *testing.T) {
	root := NewSpan("run")
	for i := 0; i < 2; i++ {
		c := root.StartChild("tuple")
		cc := c.StartChild("sample")
		cc.End()
		c.End()
	}
	root.End()
	tree := root.Tree()
	if tree.Name != "run" || len(tree.Children) != 1 {
		t.Fatalf("tree: %+v", tree)
	}
	tup := tree.Children[0]
	if tup.Name != "tuple" || tup.Count != 2 {
		t.Errorf("merged child: got %+v, want tuple x2", tup)
	}
	if len(tup.Children) != 1 || tup.Children[0].Name != "sample" || tup.Children[0].Count != 2 {
		t.Errorf("grandchildren not merged: %+v", tup.Children)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	c := sp.StartChild("x") // must not panic
	if c != nil {
		t.Error("nil span produced a child")
	}
	c.End()
	if c.Duration() != 0 || c.Name() != "" || c.Stages() != nil {
		t.Error("nil span reported non-zero state")
	}
}

func TestStartSpanContext(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "root")
	if FromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}
	ctx2, child := StartSpan(ctx, "child")
	child.End()
	root.End()
	if FromContext(ctx2) != child {
		t.Error("derived context does not carry the child span")
	}
	if len(root.Stages()) == 0 || root.Stages()[0].Name != "child" {
		t.Errorf("child not attributed to root: %v", root.Stages())
	}
}

// TestSpanEndClampsRunningChildren is the regression test for span
// attribution of unfinished children: ending a parent must end (or
// clamp) still-running descendants so Stages/Tree never attribute time
// past the parent's end.
func TestSpanEndClampsRunningChildren(t *testing.T) {
	root := NewSpan("run")
	c := root.StartChild("estimate")
	g := c.StartChild("inner") // grandchild, also left running
	_ = g
	time.Sleep(2 * time.Millisecond)
	root.End() // neither c nor g was ended

	if c.EndTime().IsZero() || g.EndTime().IsZero() {
		t.Fatal("End did not end the running descendants")
	}
	if c.EndTime().After(root.EndTime()) || g.EndTime().After(c.EndTime()) {
		t.Errorf("descendant ends past the parent: root=%v child=%v grandchild=%v",
			root.EndTime(), c.EndTime(), g.EndTime())
	}
	var stageSum time.Duration
	for _, st := range root.Stages() {
		stageSum += st.Dur
	}
	if total := root.Duration(); stageSum != total {
		t.Errorf("stages sum %v != root duration %v", stageSum, total)
	}
	if d := c.Duration(); d > root.Duration() {
		t.Errorf("child duration %v exceeds root duration %v", d, root.Duration())
	}
	// Duration must be stable afterwards: the child is really ended, not
	// still measuring to now.
	d := c.Duration()
	time.Sleep(2 * time.Millisecond)
	if c.Duration() != d {
		t.Error("clamped child keeps accumulating time")
	}
}

// A child ended after its parent's end (out-of-order Ends) is pulled
// back to the parent's end on the parent's End.
func TestSpanEndClampsLateChildEnd(t *testing.T) {
	root := NewSpan("run")
	c := root.StartChild("late")
	time.Sleep(time.Millisecond)
	root.End()
	c.End() // no-op: c was already clamped by root.End
	if c.EndTime().After(root.EndTime()) {
		t.Errorf("child end %v past root end %v", c.EndTime(), root.EndTime())
	}
}

func TestSpanData(t *testing.T) {
	root := NewSpan("run")
	c := root.StartChild("stage")
	time.Sleep(time.Millisecond)
	c.End()
	root.End()
	d := root.Data()
	if d.Name != "run" || len(d.Children) != 1 || d.Children[0].Name != "stage" {
		t.Fatalf("data: %+v", d)
	}
	if d.Duration() <= 0 || d.Children[0].Duration() <= 0 {
		t.Error("non-positive durations in snapshot")
	}
	if d.Children[0].End.After(d.End) || d.Children[0].Start.Before(d.Start) {
		t.Error("child snapshot extends outside the parent")
	}
	var nilSpan *Span
	if got := nilSpan.Data(); got.Name != "" || got.Children != nil {
		t.Errorf("nil span data: %+v", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	sp := NewSpan("x")
	time.Sleep(time.Millisecond)
	sp.End()
	d := sp.Duration()
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Error("second End moved the end time")
	}
}
