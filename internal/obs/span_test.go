package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanNestingAndAttribution(t *testing.T) {
	root := NewSpan("run")
	for i := 0; i < 3; i++ {
		c := root.StartChild("estimate")
		time.Sleep(2 * time.Millisecond)
		c.End()
	}
	g := root.StartChild("flush")
	time.Sleep(time.Millisecond)
	g.End()
	time.Sleep(time.Millisecond) // uncovered time -> "other"
	root.End()

	stages := root.Stages()
	if len(stages) != 3 {
		t.Fatalf("got %d stages (%v), want 3 (estimate, flush, other)", len(stages), stages)
	}
	if stages[0].Name != "estimate" || stages[0].Count != 3 {
		t.Errorf("stage 0: got %+v, want estimate x3", stages[0])
	}
	if stages[1].Name != "flush" || stages[1].Count != 1 {
		t.Errorf("stage 1: got %+v, want flush x1", stages[1])
	}
	if stages[2].Name != "other" {
		t.Errorf("stage 2: got %+v, want other", stages[2])
	}
	var sum time.Duration
	for _, s := range stages {
		if s.Dur <= 0 {
			t.Errorf("stage %s has non-positive duration", s.Name)
		}
		sum += s.Dur
	}
	if total := root.Duration(); sum != total {
		// Stages covers the full root duration exactly: children + other.
		t.Errorf("stage sum %v != root duration %v", sum, total)
	}
}

func TestSpanTreeMergesSiblings(t *testing.T) {
	root := NewSpan("run")
	for i := 0; i < 2; i++ {
		c := root.StartChild("tuple")
		cc := c.StartChild("sample")
		cc.End()
		c.End()
	}
	root.End()
	tree := root.Tree()
	if tree.Name != "run" || len(tree.Children) != 1 {
		t.Fatalf("tree: %+v", tree)
	}
	tup := tree.Children[0]
	if tup.Name != "tuple" || tup.Count != 2 {
		t.Errorf("merged child: got %+v, want tuple x2", tup)
	}
	if len(tup.Children) != 1 || tup.Children[0].Name != "sample" || tup.Children[0].Count != 2 {
		t.Errorf("grandchildren not merged: %+v", tup.Children)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	c := sp.StartChild("x") // must not panic
	if c != nil {
		t.Error("nil span produced a child")
	}
	c.End()
	if c.Duration() != 0 || c.Name() != "" || c.Stages() != nil {
		t.Error("nil span reported non-zero state")
	}
}

func TestStartSpanContext(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "root")
	if FromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}
	ctx2, child := StartSpan(ctx, "child")
	child.End()
	root.End()
	if FromContext(ctx2) != child {
		t.Error("derived context does not carry the child span")
	}
	if len(root.Stages()) == 0 || root.Stages()[0].Name != "child" {
		t.Errorf("child not attributed to root: %v", root.Stages())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	sp := NewSpan("x")
	time.Sleep(time.Millisecond)
	sp.End()
	d := sp.Duration()
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Error("second End moved the end time")
	}
}
