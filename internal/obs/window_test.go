package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a race-safe injectable clock for driving slot expiry.
type fakeClock struct {
	ns atomic.Int64
}

func newFakeClock(start time.Time) *fakeClock {
	c := &fakeClock{}
	c.ns.Store(start.UnixNano())
	return c
}

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestWindowedHistogramQuantilesAndDecay(t *testing.T) {
	r := NewRegistry()
	wh := r.WindowedHistogram("req_seconds", []time.Duration{time.Minute, 5 * time.Minute})
	clock := newFakeClock(time.Unix(1_000_000, 0))
	wh.SetNowFunc(clock.Now)

	for i := 0; i < 100; i++ {
		wh.Observe(0.1)
	}
	for _, win := range wh.Windows() {
		s := wh.WindowSnapshot(win)
		if s.Count != 100 {
			t.Fatalf("window %v count = %d, want 100", win, s.Count)
		}
		if p := s.Quantile(0.99); p < 0.08 || p > 0.13 {
			t.Fatalf("window %v p99 = %v, want ~0.1", win, p)
		}
	}

	// After 2 minutes of silence the 1m window is empty but the 5m window
	// still holds the observations; the cumulative series never forgets.
	clock.Advance(2 * time.Minute)
	if s := wh.WindowSnapshot(time.Minute); s.Count != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("1m window after 2m idle: count=%d p99=%v, want drained", s.Count, s.Quantile(0.99))
	}
	if s := wh.WindowSnapshot(5 * time.Minute); s.Count != 100 {
		t.Fatalf("5m window after 2m idle: count=%d, want 100", s.Count)
	}
	if s := wh.Cumulative().Snapshot(); s.Count != 100 {
		t.Fatalf("cumulative count = %d, want 100", s.Count)
	}

	// Past the longest window everything drains.
	clock.Advance(5 * time.Minute)
	if s := wh.WindowSnapshot(5 * time.Minute); s.Count != 0 {
		t.Fatalf("5m window after 7m idle: count=%d, want 0", s.Count)
	}

	// New traffic repopulates the (recycled) slots.
	wh.Observe(2.0)
	if s := wh.WindowSnapshot(time.Minute); s.Count != 1 || s.Min != 2.0 {
		t.Fatalf("window after fresh observe: %+v", s)
	}
}

func TestWindowedHistogramSlidesAcrossSlots(t *testing.T) {
	r := NewRegistry()
	wh := r.WindowedHistogram("lat", []time.Duration{time.Minute})
	clock := newFakeClock(time.Unix(5_000, 0))
	wh.SetNowFunc(clock.Now)

	wh.Observe(1.0)
	clock.Advance(30 * time.Second)
	wh.Observe(3.0)
	if s := wh.WindowSnapshot(time.Minute); s.Count != 2 || s.Min != 1.0 || s.Max != 3.0 {
		t.Fatalf("both slots should be in window: %+v", s)
	}
	// Another 45s: the first observation (75s old) ages out, the second
	// (45s old) stays.
	clock.Advance(45 * time.Second)
	if s := wh.WindowSnapshot(time.Minute); s.Count != 1 || s.Min != 3.0 {
		t.Fatalf("old slot should have aged out: %+v", s)
	}
}

func TestWindowedHistogramDefaultsAndReuse(t *testing.T) {
	r := NewRegistry()
	wh := r.WindowedHistogram("x_seconds", nil)
	ws := wh.Windows()
	if len(ws) != 2 || ws[0] != time.Minute || ws[1] != 5*time.Minute {
		t.Fatalf("default windows = %v", ws)
	}
	// A second registration returns the same ring regardless of windows,
	// and the plain Histogram handle aliases the cumulative part.
	if again := r.WindowedHistogram("x_seconds", []time.Duration{time.Hour}); again != wh {
		t.Fatal("second WindowedHistogram call did not reuse the ring")
	}
	if r.Histogram("x_seconds") != wh.Cumulative() {
		t.Fatal("Histogram() does not alias the windowed cumulative histogram")
	}
}

func TestWindowedHistogramExportForms(t *testing.T) {
	r := NewRegistry()
	wh := r.WindowedHistogram("req_seconds", nil, L("endpoint", "/v1/estimate"))
	wh.Observe(0.25)
	r.Histogram("plain_seconds").Observe(1) // no window ring

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE req_seconds_window gauge",
		"# TYPE req_seconds_window_count gauge",
		`req_seconds_window{endpoint="/v1/estimate",quantile="0.99",window="1m"}`,
		`req_seconds_window{endpoint="/v1/estimate",quantile="0.5",window="5m"}`,
		`req_seconds_window_count{endpoint="/v1/estimate",window="1m"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "plain_seconds_window") {
		t.Error("plain histogram grew window series")
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"window": "1m"`) {
		t.Errorf("JSON export missing windowed series:\n%s", js.String())
	}
}

// TestWindowedHistogramConcurrent drives observes, snapshots and full
// registry exports concurrently; run under -race it checks the locking.
func TestWindowedHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	wh := r.WindowedHistogram("conc_seconds", []time.Duration{100 * time.Millisecond, time.Second})
	clock := newFakeClock(time.Unix(77, 0))
	wh.SetNowFunc(clock.Now)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				wh.Observe(float64(g+1) * 0.001)
				if i%100 == 0 {
					clock.Advance(10 * time.Millisecond)
				}
			}
		}(g)
	}
	exporterDone := make(chan struct{})
	go func() {
		defer close(exporterDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			wh.WindowSnapshot(time.Second)
			r.WritePrometheus(&bytes.Buffer{})
			r.WriteJSON(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	close(stop)
	<-exporterDone

	if got := wh.Cumulative().Snapshot().Count; got != 8000 {
		t.Fatalf("cumulative count = %d, want 8000", got)
	}
}

// An idle windowed histogram must export well-formed zero series: no
// NaNs, count 0, quantiles 0 — scrape targets exist before traffic.
func TestWindowedHistogramEmptyWindowExport(t *testing.T) {
	r := NewRegistry()
	wh := r.WindowedHistogram("idle_seconds", nil, L("endpoint", "/x"))
	for _, win := range wh.Windows() {
		s := wh.WindowSnapshot(win)
		if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
			t.Fatalf("idle snapshot for %v = %+v, want zero", win, s)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if v := s.Quantile(q); v != 0 {
				t.Fatalf("idle q%v = %v, want 0", q, v)
			}
		}
	}
	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		`idle_seconds_window{endpoint="/x",quantile="0.99",window="1m"} 0`,
		`idle_seconds_window_count{endpoint="/x",window="1m"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("idle export missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "NaN") {
		t.Errorf("idle export contains NaN:\n%s", text)
	}
}

// Asking for a window shorter than one ring slot degrades to the current
// slot rather than an empty (or panicking) read; and construction with a
// sub-millisecond window clamps the slot duration instead of dividing to
// zero.
func TestWindowedHistogramWindowShorterThanSlot(t *testing.T) {
	r := NewRegistry()
	// 1m window → 5s slots; a 1s query is below one slot.
	wh := r.WindowedHistogram("short_seconds", []time.Duration{time.Minute})
	clock := newFakeClock(time.Unix(9_000, 0))
	wh.SetNowFunc(clock.Now)
	wh.Observe(0.5)
	if s := wh.WindowSnapshot(time.Second); s.Count != 1 || s.Min != 0.5 {
		t.Fatalf("sub-slot window snapshot = %+v, want the current slot", s)
	}
	// Advance past the current slot: the sub-slot view drains with it.
	clock.Advance(10 * time.Second)
	if s := wh.WindowSnapshot(time.Second); s.Count != 0 {
		t.Fatalf("sub-slot window after slot expiry = %+v, want empty", s)
	}

	// A 5ms window divides to a sub-millisecond slot; the constructor
	// clamps to 1ms and the ring still works.
	tiny := r.WindowedHistogram("tiny_seconds", []time.Duration{5 * time.Millisecond})
	tclock := newFakeClock(time.Unix(10_000, 0))
	tiny.SetNowFunc(tclock.Now)
	tiny.Observe(1)
	if s := tiny.WindowSnapshot(5 * time.Millisecond); s.Count != 1 {
		t.Fatalf("tiny-window snapshot = %+v, want count 1", s)
	}
	tclock.Advance(20 * time.Millisecond)
	if s := tiny.WindowSnapshot(5 * time.Millisecond); s.Count != 0 {
		t.Fatalf("tiny-window after expiry = %+v, want empty", s)
	}
}

// A clock that steps backwards (NTP correction, test reuse of a fake
// clock) must not panic, corrupt counts, or resurrect stale slots: the
// earlier observation lands in a past slot that a backwards read still
// finds, and moving forward again recovers.
func TestWindowedHistogramClockBackwards(t *testing.T) {
	r := NewRegistry()
	wh := r.WindowedHistogram("back_seconds", []time.Duration{time.Minute})
	clock := newFakeClock(time.Unix(20_000, 0))
	wh.SetNowFunc(clock.Now)

	wh.Observe(1.0)
	clock.Advance(-30 * time.Second)
	wh.Observe(2.0) // lands in an earlier slot than the first observation
	if s := wh.WindowSnapshot(time.Minute); s.Count != 1 || s.Min != 2.0 {
		t.Fatalf("backwards-time snapshot = %+v, want only the backdated point", s)
	}
	// Forward again: both slots are within the minute once more.
	clock.Advance(30 * time.Second)
	if s := wh.WindowSnapshot(time.Minute); s.Count != 2 || s.Min != 1.0 || s.Max != 2.0 {
		t.Fatalf("recovered snapshot = %+v, want both points", s)
	}
	if got := wh.Cumulative().Snapshot().Count; got != 2 {
		t.Fatalf("cumulative count = %d, want 2", got)
	}
	// A pre-epoch clock produces negative slot indices; reads and writes
	// must still map into the ring.
	clock.ns.Store(time.Unix(-3600, 0).UnixNano())
	wh.Observe(3.0)
	if s := wh.WindowSnapshot(time.Minute); s.Count != 1 || s.Min != 3.0 {
		t.Fatalf("negative-index snapshot = %+v, want the fresh point", s)
	}
}

func TestFormatWindow(t *testing.T) {
	cases := map[time.Duration]string{
		time.Minute:            "1m",
		5 * time.Minute:        "5m",
		time.Hour:              "1h",
		30 * time.Second:       "30s",
		90 * time.Second:       "1m30s",
		250 * time.Millisecond: "250ms",
	}
	for d, want := range cases {
		if got := FormatWindow(d); got != want {
			t.Errorf("FormatWindow(%v) = %q, want %q", d, got, want)
		}
	}
}
