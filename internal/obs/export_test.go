package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fully deterministic contents.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sampler_samples_total", L("scheme", "KLM")).Add(1234)
	r.Counter("sampler_samples_total", L("scheme", "Natural")).Add(42)
	r.Counter("harness_timeouts_total", L("scheme", "Cover")).Inc()
	r.Gauge("sampler_good_ratio", L("scheme", "KLM")).Set(0.625)
	h := r.Histogram("cqa_scheme_latency_seconds", L("scheme", "KLM"))
	for _, v := range []float64{0.001, 0.001, 0.002, 0.004, 0.032} {
		h.Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "export.json.golden", buf.Bytes())
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "export.prom.golden", buf.Bytes())
}
