package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// The histogram covers (1e-9, 1e12] with logarithmic buckets, 20 per
// decade (adjacent bounds differ by a factor of 10^(1/20) ≈ 1.122, so a
// quantile read from a bucket midpoint is within ~6% of the true value).
// Values ≤ 1e-9 land in the underflow bucket, values > 1e12 in the
// overflow bucket. Observed in seconds this spans sub-nanosecond to
// ~31,000 years; observed as sizes it spans 1 to 10^12.
const (
	histMinExp           = -9
	histMaxExp           = 12
	histBucketsPerDecade = 20
	histNumBounds        = (histMaxExp - histMinExp) * histBucketsPerDecade
)

var histBounds = func() [histNumBounds]float64 {
	var b [histNumBounds]float64
	for i := range b {
		b[i] = math.Pow(10, float64(histMinExp)+float64(i+1)/histBucketsPerDecade)
	}
	return b
}()

// bucketIndex returns the bucket of v: 0 holds v ≤ bounds[0] (including
// the underflow range), len(bounds) is the overflow bucket. Zero and
// negative observations have no log-scale bucket of their own; they are
// clamped into the underflow bucket explicitly, so durations that round
// to zero (or subtraction artifacts that go slightly negative) can never
// produce a bogus bucket index.
func bucketIndex(v float64) int {
	if v <= histBounds[0] { // includes all v ≤ 0 and -Inf
		return 0
	}
	return sort.SearchFloat64s(histBounds[:], v)
}

// Histogram accumulates observations into fixed log-scale buckets and
// tracks count, sum, min and max. It is safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [histNumBounds + 1]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

func newHistogram() *Histogram { return &Histogram{} }

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := bucketIndex(v)
	h.mu.Lock()
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSnapshot is a consistent copy of a histogram's state.
type HistSnapshot struct {
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
	counts [histNumBounds + 1]uint64
}

// Snapshot returns a consistent copy for reading quantiles and buckets.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, counts: h.counts}
}

// Mean returns Sum/Count (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) from the
// bucket counts: the geometric midpoint of the bucket holding the rank,
// clamped to the observed [Min, Max]. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum < rank {
			continue
		}
		var v float64
		switch {
		case i == 0:
			// The underflow bucket has no lower bound; the observed minimum
			// is the best estimate available.
			v = s.Min
		case i == histNumBounds:
			v = s.Max
		default:
			v = math.Sqrt(histBounds[i-1] * histBounds[i])
		}
		// The true rank value lies in the bucket's range intersected with
		// the observed range; clamping never hurts and fixes the extremes.
		return math.Min(math.Max(v, s.Min), s.Max)
	}
	return s.Max
}

// Bucket is one non-empty cumulative bucket of a histogram in export
// form: the count of observations ≤ UpperBound.
type Bucket struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      uint64  // cumulative
}

// Buckets returns the non-empty buckets in cumulative (Prometheus) form,
// always ending with the +Inf bucket when the histogram is non-empty.
func (s HistSnapshot) Buckets() []Bucket {
	if s.Count == 0 {
		return nil
	}
	var out []Bucket
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if c == 0 {
			continue
		}
		ub := math.Inf(1)
		if i < histNumBounds {
			ub = histBounds[i]
		}
		out = append(out, Bucket{UpperBound: ub, Count: cum})
	}
	if out[len(out)-1].UpperBound != math.Inf(1) {
		out = append(out, Bucket{UpperBound: math.Inf(1), Count: cum})
	}
	return out
}
