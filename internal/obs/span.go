package obs

import (
	"context"
	"sync"
	"time"
)

// Span attributes wall time to one named stage of the pipeline. Spans
// nest: child spans started from a parent account for portions of the
// parent's duration, and Stages/Tree aggregate them afterwards.
//
// All methods are nil-safe, so instrumented code can run untraced by
// passing a nil span, and safe for concurrent use: the harness prepares
// synopses over a worker pool, each worker extending its own pair span
// while the parent is still open.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	children []*Span
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts a nested span. On a nil receiver it returns nil, so
// call sites need no tracing-enabled check.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Rename changes the span's stage name. The harness uses it to label a
// synopsis-preparation span with what actually happened ("synopsis.load"
// vs "synopsis.build") once the cache lookup has resolved.
func (s *Span) Rename(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.name = name
	s.mu.Unlock()
}

// End marks the span finished. Calling End twice keeps the first end
// time; Duration before End measures up to now. Ending a parent also
// ends (or clamps) any still-running descendants at the parent's end
// time, so Stages and Tree never attribute time past the parent's end.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	end, children := s.end, s.snapshotChildrenLocked()
	s.mu.Unlock()
	for _, c := range children {
		c.clampTo(end)
	}
}

// snapshotChildrenLocked copies the child list; the caller holds s.mu.
func (s *Span) snapshotChildrenLocked() []*Span {
	return append([]*Span(nil), s.children...)
}

// snapshotChildren copies the child list under the span's lock.
func (s *Span) snapshotChildren() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotChildrenLocked()
}

// clampTo ends a still-running span at t, pulls back an end time past t,
// and recursively applies the same bound to the subtree. A span that
// started after t gets a zero duration rather than a negative one.
func (s *Span) clampTo(t time.Time) {
	s.mu.Lock()
	if s.end.IsZero() || s.end.After(t) {
		if t.Before(s.start) {
			t = s.start
		}
		s.end = t
	}
	end, children := s.end, s.snapshotChildrenLocked()
	s.mu.Unlock()
	for _, c := range children {
		c.clampTo(end)
	}
}

// Start returns the span's start time (zero on nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// EndTime returns the span's end time, or the zero time while it is
// still running.
func (s *Span) EndTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Name returns the span's stage name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.name
}

// Duration returns the span's wall time so far (or total, once ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Stage is an aggregated view of a span's direct children: all children
// with the same name merge into one stage.
type Stage struct {
	Name  string
	Dur   time.Duration
	Count int
}

// Stages merges the span's direct children by name, in first-start
// order, and appends an "other" stage holding the span's own time not
// covered by any child. Returns nil for a childless or nil span.
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	children := s.snapshotChildren()
	if len(children) == 0 {
		return nil
	}
	idx := make(map[string]int)
	var out []Stage
	var covered time.Duration
	for _, c := range children {
		d := c.Duration()
		name := c.Name()
		covered += d
		if i, ok := idx[name]; ok {
			out[i].Dur += d
			out[i].Count++
			continue
		}
		idx[name] = len(out)
		out = append(out, Stage{Name: name, Dur: d, Count: 1})
	}
	if rest := s.Duration() - covered; rest > 0 {
		out = append(out, Stage{Name: "other", Dur: rest, Count: 1})
	}
	return out
}

// Node is the exportable span tree: name, duration in nanoseconds, and
// aggregated children (merged by name, with Count occurrences).
type Node struct {
	Name     string `json:"name"`
	DurNanos int64  `json:"dur_ns"`
	Count    int    `json:"count,omitempty"`
	Children []Node `json:"children,omitempty"`
}

// Tree renders the span as an aggregated tree: at every level, sibling
// spans with the same name merge (durations add, counts accumulate, and
// their children merge recursively).
func (s *Span) Tree() Node {
	if s == nil {
		return Node{}
	}
	n := Node{Name: s.Name(), DurNanos: s.Duration().Nanoseconds(), Count: 1}
	n.Children = mergeChildren(s.snapshotChildren())
	return n
}

func mergeChildren(spans []*Span) []Node {
	if len(spans) == 0 {
		return nil
	}
	idx := make(map[string]int)
	var out []Node
	grouped := make(map[string][]*Span)
	for _, c := range spans {
		name := c.Name()
		if _, ok := idx[name]; !ok {
			idx[name] = len(out)
			out = append(out, Node{Name: name})
		}
		i := idx[name]
		out[i].DurNanos += c.Duration().Nanoseconds()
		out[i].Count++
		grouped[name] = append(grouped[name], c.snapshotChildren()...)
	}
	for i := range out {
		out[i].Children = mergeChildren(grouped[out[i].Name])
	}
	return out
}

// SpanData is an immutable snapshot of a span tree with absolute
// timestamps, the interchange form consumed by exporters (notably
// internal/obs/trace). Unlike Tree, it does not merge siblings: every
// span instance becomes one node, so event timelines stay intact.
type SpanData struct {
	Name     string
	Start    time.Time
	End      time.Time
	Children []SpanData
}

// Duration returns End - Start.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Data snapshots the span tree. Still-running spans are clamped to now,
// and children never extend past their parent's end, mirroring End's
// clamping. Returns the zero SpanData on a nil span.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	return s.data(time.Now())
}

func (s *Span) data(deadline time.Time) SpanData {
	s.mu.Lock()
	end := s.end
	if end.IsZero() || end.After(deadline) {
		end = deadline
	}
	if end.Before(s.start) {
		end = s.start
	}
	d := SpanData{Name: s.name, Start: s.start, End: end}
	children := s.snapshotChildrenLocked()
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.data(end))
	}
	return d
}

type spanCtxKey struct{}

// StartSpan starts a span as a child of the span carried by ctx (or as a
// root span if none) and returns a derived context carrying the new span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	var sp *Span
	if parent != nil {
		sp = parent.StartChild(name)
	} else {
		sp = NewSpan(name)
	}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
