// Package obs is the benchmark's instrumentation layer: counters, gauges
// and log-scale histograms collected in a process-wide Registry, plus
// lightweight nested spans that attribute wall time to pipeline stages
// (synopsis build, sampler construction, estimation).
//
// The package has zero dependencies outside the standard library and is
// safe for concurrent use. Metrics are identified by a name plus an
// optional ordered-insensitive label set:
//
//	obs.Inc("harness_timeouts_total", obs.L("scheme", "KLM"))
//	obs.Observe("synopsis_build_seconds", elapsed.Seconds())
//
// Hot paths should hold on to the metric handle instead of resolving it
// per event:
//
//	c := obs.Default().Counter("sampler_samples_total", obs.L("scheme", s))
//	c.Add(n)
//
// A Registry exports its contents as JSON (Registry.WriteJSON) and in the
// Prometheus text exposition format (Registry.WritePrometheus), and can
// serve both over HTTP together with expvar and pprof (Registry.Serve).
package obs

// Label is one name/value pair attached to a metric. Metrics with the
// same name but different label sets are distinct time series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

var std = NewRegistry()

// Default returns the process-wide registry used by the package-level
// helpers and by the instrumented pipeline packages.
func Default() *Registry { return std }

// Inc adds 1 to a counter in the default registry.
func Inc(name string, labels ...Label) { std.Counter(name, labels...).Inc() }

// Add adds n to a counter in the default registry.
func Add(name string, n int64, labels ...Label) { std.Counter(name, labels...).Add(n) }

// Set sets a gauge in the default registry.
func Set(name string, v float64, labels ...Label) { std.Gauge(name, labels...).Set(v) }

// Observe records one histogram observation in the default registry.
func Observe(name string, v float64, labels ...Label) { std.Histogram(name, labels...).Observe(v) }
