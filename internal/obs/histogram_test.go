package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestQuantileAgainstSort checks histogram quantiles against a
// brute-force sorted slice: a log-bucket quantile must be within one
// bucket's relative width (10^(1/20) ≈ 12%) of the exact order
// statistic.
func TestQuantileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() float64{
		"uniform":   func() float64 { return rng.Float64() },
		"exp":       func() float64 { return rng.ExpFloat64() * 1e-3 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64() * 2) },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			h := newHistogram()
			vals := make([]float64, 0, 5000)
			for i := 0; i < 5000; i++ {
				v := draw()
				vals = append(vals, v)
				h.Observe(v)
			}
			sort.Float64s(vals)
			s := h.Snapshot()
			for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99} {
				rank := int(math.Ceil(q*float64(len(vals)))) - 1
				exact := vals[rank]
				got := s.Quantile(q)
				rel := math.Abs(got-exact) / exact
				if rel > math.Pow(10, 1.0/histBucketsPerDecade)-1 {
					t.Errorf("q=%g: got %g, exact %g (rel err %.3f)", q, got, exact, rel)
				}
			}
			if s.Min != vals[0] || s.Max != vals[len(vals)-1] {
				t.Errorf("min/max: got %g/%g, want %g/%g", s.Min, s.Max, vals[0], vals[len(vals)-1])
			}
			var sum float64
			for _, v := range vals {
				sum += v
			}
			if math.Abs(s.Sum-sum) > 1e-6*math.Abs(sum) {
				t.Errorf("sum: got %g, want %g", s.Sum, sum)
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile: got %g, want 0", got)
	}
	h := newHistogram()
	h.Observe(3.5)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 3.5 {
			t.Errorf("single-value q=%g: got %g, want 3.5", q, got)
		}
	}
	// Underflow and overflow values must be clamped to observations.
	h2 := newHistogram()
	h2.Observe(0)    // underflow bucket
	h2.Observe(1e13) // overflow bucket
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.25); got != 0 {
		t.Errorf("underflow quantile: got %g, want 0", got)
	}
	if got := s2.Quantile(0.99); got != 1e13 {
		t.Errorf("overflow quantile: got %g, want 1e13", got)
	}
	// NaN observations are dropped.
	h3 := newHistogram()
	h3.Observe(math.NaN())
	if h3.Snapshot().Count != 0 {
		t.Error("NaN observation was counted")
	}
}

// TestZeroAndNegativeObservations is the regression test for the
// log-scale bucketing edge case: zero and negative values have no
// logarithmic bucket, so they must be clamped into the underflow bucket
// (index 0) instead of producing a bogus index, and quantiles/buckets
// must stay well-formed.
func TestZeroAndNegativeObservations(t *testing.T) {
	for _, v := range []float64{0, -1e-12, -3.5, math.Inf(-1)} {
		if got := bucketIndex(v); got != 0 {
			t.Errorf("bucketIndex(%g) = %d, want 0 (underflow)", v, got)
		}
	}
	h := newHistogram()
	h.Observe(0)
	h.Observe(-2)
	h.Observe(1) // one regular observation
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count: got %d, want 3", s.Count)
	}
	if s.Min != -2 || s.Max != 1 {
		t.Errorf("min/max: got %g/%g, want -2/1", s.Min, s.Max)
	}
	// The two non-positive observations share the underflow bucket; its
	// quantile estimate is the observed minimum.
	if got := s.Quantile(0.5); got != -2 {
		t.Errorf("median: got %g, want -2 (underflow clamps to Min)", got)
	}
	if got := s.Quantile(1); got != 1 {
		t.Errorf("q=1: got %g, want 1", got)
	}
	bs := s.Buckets()
	if len(bs) == 0 || bs[0].Count != 2 {
		t.Fatalf("underflow bucket: got %+v, want first bucket count 2", bs)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Count < bs[i-1].Count {
			t.Errorf("bucket %d not cumulative: %+v after %+v", i, bs[i], bs[i-1])
		}
	}
}

func TestBucketsCumulative(t *testing.T) {
	h := newHistogram()
	for _, v := range []float64{0.001, 0.001, 0.5, 2, 1e13} {
		h.Observe(v)
	}
	bs := h.Snapshot().Buckets()
	if len(bs) == 0 {
		t.Fatal("no buckets")
	}
	last := bs[len(bs)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 5 {
		t.Errorf("final bucket: got le=%g count=%d, want +Inf count=5", last.UpperBound, last.Count)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Count < bs[i-1].Count || bs[i].UpperBound <= bs[i-1].UpperBound {
			t.Errorf("bucket %d not cumulative/increasing: %+v after %+v", i, bs[i], bs[i-1])
		}
	}
}
