package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Serve exposes the registry over HTTP on addr (e.g. ":9090"):
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  the JSON export
//	/debug/vars    expvar
//	/debug/pprof/  runtime profiles
//
// It returns the server (shut it down with Close) and the bound address,
// which is useful when addr requests an ephemeral port (":0").
func (r *Registry) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// Serve starts the default registry's HTTP endpoint.
func Serve(addr string) (*http.Server, string, error) {
	return std.Serve(addr)
}
