package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Trace IDs tie one request's spans, access-log line and debug records
// together. They are carried on the context.Context beside the span, so
// any layer reached by the request's context can attribute its work.

type traceIDKey struct{}

var traceIDFallback atomic.Uint64

// NewTraceID returns a fresh 16-hex-character ID. Randomness comes from
// crypto/rand; if that ever fails the ID degrades to a time+counter
// value, which is still unique within the process.
func NewTraceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		v := uint64(time.Now().UnixNano()) + traceIDFallback.Add(1)<<32
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// IsValidTraceID reports whether s is acceptable as an externally
// supplied trace ID (an inbound X-Request-ID header): 1-128 characters
// drawn from [A-Za-z0-9._-]. Anything else is rejected so log lines and
// URLs never carry unprintable or oversized identifiers.
func IsValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// WithTraceID returns a context carrying id.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFromContext returns the trace ID carried by ctx, or "".
func TraceIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
