package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// jsonCounter, jsonGauge and jsonHistogram are the stable JSON export
// shapes (Registry.WriteJSON). Label maps marshal with sorted keys, so
// the output is deterministic for a deterministic run.
type jsonCounter struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

type jsonGauge struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

type jsonHistogram struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    float64           `json:"sum"`
	Min    float64           `json:"min"`
	Max    float64           `json:"max"`
	Mean   float64           `json:"mean"`
	P50    float64           `json:"p50"`
	P95    float64           `json:"p95"`
	P99    float64           `json:"p99"`
	// Windows carries the rolling-window quantiles for histograms that
	// were registered through Registry.WindowedHistogram.
	Windows []jsonWindow `json:"windows,omitempty"`
}

// jsonWindow is one rolling window's quantile summary.
type jsonWindow struct {
	Window string  `json:"window"` // e.g. "1m", "5m"
	Count  uint64  `json:"count"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

type jsonExport struct {
	Counters   []jsonCounter   `json:"counters,omitempty"`
	Gauges     []jsonGauge     `json:"gauges,omitempty"`
	Histograms []jsonHistogram `json:"histograms,omitempty"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// WriteJSON emits every registered metric as indented JSON, sorted by
// (name, labels). Histograms export their count/sum/min/max/mean and the
// p50/p95/p99 summary rather than raw buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out jsonExport
	for _, e := range r.snapshot() {
		switch e.kind {
		case counterKind:
			out.Counters = append(out.Counters, jsonCounter{
				Name: e.name, Labels: labelMap(e.labels), Value: e.counter.Value(),
			})
		case gaugeKind:
			out.Gauges = append(out.Gauges, jsonGauge{
				Name: e.name, Labels: labelMap(e.labels), Value: e.gauge.Value(),
			})
		case histogramKind:
			s := e.hist.Snapshot()
			h := jsonHistogram{
				Name: e.name, Labels: labelMap(e.labels),
				Count: s.Count, Sum: s.Sum, Min: s.Min, Max: s.Max, Mean: s.Mean(),
				P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99),
			}
			if wh := e.win.Load(); wh != nil {
				for _, win := range wh.Windows() {
					ws := wh.WindowSnapshot(win)
					h.Windows = append(h.Windows, jsonWindow{
						Window: FormatWindow(win), Count: ws.Count,
						P50: ws.Quantile(0.50), P95: ws.Quantile(0.95), P99: ws.Quantile(0.99),
					})
				}
			}
			out.Histograms = append(out.Histograms, h)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set plus an optional extra label (used for
// the histogram "le" bound) in exposition format.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	out := "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", extraKey, extraVal)
	}
	return out + "}"
}

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative
// non-empty buckets plus the +Inf bucket, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastType := map[string]bool{} // names whose # TYPE line was written
	for _, e := range r.snapshot() {
		if !lastType[e.name] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
			lastType[e.name] = true
		}
		var err error
		switch e.kind {
		case counterKind:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, promLabels(e.labels, "", ""), e.counter.Value())
		case gaugeKind:
			_, err = fmt.Fprintf(w, "%s%s %s\n", e.name, promLabels(e.labels, "", ""), promFloat(e.gauge.Value()))
		case histogramKind:
			s := e.hist.Snapshot()
			for _, b := range s.Buckets() {
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					e.name, promLabels(e.labels, "le", promFloat(b.UpperBound)), b.Count); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", e.name, promLabels(e.labels, "", ""), promFloat(s.Sum)); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_count%s %d\n", e.name, promLabels(e.labels, "", ""), s.Count); err != nil {
				return err
			}
			err = writePromWindows(w, e, lastType)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromWindows emits the rolling-window quantile series for a
// histogram entry registered with a window ring: per (window, quantile)
// a <name>_window gauge with window and quantile labels, plus a
// <name>_window_count gauge per window. An idle window exports zeros, so
// dashboards see the p99 drain rather than the series vanish.
func writePromWindows(w io.Writer, e *entry, lastType map[string]bool) error {
	wh := e.win.Load()
	if wh == nil {
		return nil
	}
	qName, cName := e.name+"_window", e.name+"_window_count"
	for _, name := range []string{qName, cName} {
		if !lastType[name] {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
				return err
			}
			lastType[name] = true
		}
	}
	quantiles := []struct {
		label string
		q     float64
	}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}}
	for _, win := range wh.Windows() {
		s := wh.WindowSnapshot(win)
		winLabel := L("window", FormatWindow(win))
		for _, qs := range quantiles {
			labels := sortedLabels(e.labels, winLabel, L("quantile", qs.label))
			if _, err := fmt.Fprintf(w, "%s%s %s\n", qName, labelString(labels), promFloat(s.Quantile(qs.q))); err != nil {
				return err
			}
		}
		labels := sortedLabels(e.labels, winLabel)
		if _, err := fmt.Fprintf(w, "%s%s %d\n", cName, labelString(labels), s.Count); err != nil {
			return err
		}
	}
	return nil
}

// sortedLabels merges base with extras and re-sorts by key.
func sortedLabels(base []Label, extras ...Label) []Label {
	out := make([]Label, 0, len(base)+len(extras))
	out = append(out, base...)
	out = append(out, extras...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
