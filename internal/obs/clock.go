package obs

import (
	"sync/atomic"
	"time"
)

// The package clock: time-dependent subsystems that need deterministic
// tests (quota token buckets, scheduler bookkeeping) read obs.Now()
// instead of time.Now(), and tests swap the source with SetNowFunc.
// The WindowedHistogram keeps its own per-histogram injection point so
// concurrent histogram tests never interfere; SetNowFunc is for state
// that has no natural per-object seam.

// nowFunc holds the process-wide clock as *func() time.Time; nil means
// time.Now.
var nowFunc atomic.Pointer[func() time.Time]

// Now returns the current time from the package clock — time.Now
// unless a test installed a fake via SetNowFunc.
func Now() time.Time {
	if f := nowFunc.Load(); f != nil {
		return (*f)()
	}
	return time.Now()
}

// SetNowFunc replaces the package clock; nil restores time.Now.
// Test-only: production code never calls this. Tests that install a
// fake clock must restore it (defer obs.SetNowFunc(nil)) and must not
// run in parallel with tests that read real time through obs.Now.
func SetNowFunc(f func() time.Time) {
	if f == nil {
		nowFunc.Store(nil)
		return
	}
	nowFunc.Store(&f)
}
