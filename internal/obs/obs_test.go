package obs

import (
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this doubles as the
// package's race test, and the final counts must be exact.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Resolve through the registry on purpose: the lookup path
				// must be concurrency-safe too.
				r.Counter("c_total", L("worker", "shared")).Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h_seconds").Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total", L("worker", "shared")).Value(); got != workers*perWorker {
		t.Errorf("counter: got %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h_seconds").Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count: got %d, want %d", got, workers*perWorker)
	}
}

func TestLabelIdentity(t *testing.T) {
	r := NewRegistry()
	// Label order must not matter.
	a := r.Counter("x_total", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order produced distinct counters")
	}
	c := r.Counter("x_total", L("a", "1"), L("b", "3"))
	if a == c {
		t.Error("different label values shared a counter")
	}
	if u := r.Counter("x_total"); u == a {
		t.Error("unlabeled metric aliased a labeled one")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("requesting a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestDefaultHelpers(t *testing.T) {
	Default().Reset()
	defer Default().Reset()
	Inc("t_total")
	Add("t_total", 2)
	Set("t_gauge", 1.5)
	Observe("t_hist", 0.25)
	if got := Default().Counter("t_total").Value(); got != 3 {
		t.Errorf("counter: got %d, want 3", got)
	}
	if got := Default().Gauge("t_gauge").Value(); got != 1.5 {
		t.Errorf("gauge: got %g, want 1.5", got)
	}
	if got := Default().Histogram("t_hist").Snapshot().Count; got != 1 {
		t.Errorf("histogram: got %d observations, want 1", got)
	}
}
