// Package manifest captures run provenance: which exact build, host,
// and configuration produced a result artifact. A RunManifest is
// embedded in every figure JSON, metrics snapshot, trace file and bench
// result so anything under results/ is attributable to an exact run —
// git revision (with a dirty flag), Go toolchain, GOMAXPROCS, host,
// start time, the full experiment configuration (ε/δ/seed/…) and the
// CLI arguments that launched it.
package manifest

import (
	"context"
	"flag"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// RunManifest identifies one run of the benchmark tooling. All fields
// are plain data so the manifest embeds verbatim in any JSON artifact.
type RunManifest struct {
	// Tool names the producing entry point, e.g. "cqabench run".
	Tool string `json:"tool"`
	// GitSHA is the VCS revision of the build (or of the working tree
	// when built from source with `go run`); empty when undeterminable.
	GitSHA string `json:"git_sha,omitempty"`
	// GitDirty reports uncommitted changes at build/run time.
	GitDirty   bool      `json:"git_dirty,omitempty"`
	GoVersion  string    `json:"go_version"`
	OS         string    `json:"os"`
	Arch       string    `json:"arch"`
	NumCPU     int       `json:"num_cpu"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Host       string    `json:"host,omitempty"`
	PID        int       `json:"pid"`
	Start      time.Time `json:"start_time"`
	// Args is the full command line of the producing process.
	Args []string `json:"args,omitempty"`
	// Config carries the run's experiment parameters (ε, δ, seed, scale
	// factor, timeout, scenario, …) as rendered strings.
	Config map[string]string `json:"config,omitempty"`
}

// Collect gathers a manifest for the current process. config may be nil;
// the map is used as-is (not copied), so callers can keep enriching it.
func Collect(tool string, config map[string]string) RunManifest {
	sha, dirty := gitInfo()
	host, _ := os.Hostname()
	return RunManifest{
		Tool:       tool,
		GitSHA:     sha,
		GitDirty:   dirty,
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       host,
		PID:        os.Getpid(),
		Start:      time.Now().UTC(),
		Args:       append([]string(nil), os.Args...),
		Config:     config,
	}
}

// SetConfig records one configuration key, allocating the map if needed.
func (m *RunManifest) SetConfig(key, value string) {
	if m.Config == nil {
		m.Config = make(map[string]string)
	}
	m.Config[key] = value
}

// MergeConfig records every key of cfg (overwriting existing keys).
func (m *RunManifest) MergeConfig(cfg map[string]string) {
	for k, v := range cfg {
		m.SetConfig(k, v)
	}
}

// FlagConfig snapshots a parsed FlagSet as a config map: every defined
// flag with its effective (set or default) value. Passing the flag set
// that configured a run captures its full configuration without listing
// the flags by hand.
func FlagConfig(fs *flag.FlagSet) map[string]string {
	m := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { m[f.Name] = f.Value.String() })
	return m
}

var gitOnce = sync.OnceValues(func() (string, bool) {
	// A binary built with module support carries its VCS stamp; prefer it
	// because it works outside the source tree.
	if bi, ok := debug.ReadBuildInfo(); ok {
		var sha string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				sha = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if sha != "" {
			return sha, dirty
		}
	}
	// `go run` / `go test` builds have no VCS stamp; fall back to asking
	// git about the working tree, best-effort with a short timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, "git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	sha := strings.TrimSpace(string(out))
	status, err := exec.CommandContext(ctx, "git", "status", "--porcelain").Output()
	dirty := err == nil && len(strings.TrimSpace(string(status))) > 0
	return sha, dirty
})

// gitInfo resolves the build's VCS revision and dirty flag once per
// process (the answer cannot change mid-run).
func gitInfo() (sha string, dirty bool) { return gitOnce() }
