package manifest

import (
	"encoding/json"
	"flag"
	"runtime"
	"testing"
	"time"
)

func TestCollectPopulatesEnvironment(t *testing.T) {
	m := Collect("test-tool", map[string]string{"eps": "0.1"})
	if m.Tool != "test-tool" {
		t.Errorf("tool: %q", m.Tool)
	}
	if m.GoVersion != runtime.Version() {
		t.Errorf("go version: %q", m.GoVersion)
	}
	if m.GOMAXPROCS <= 0 || m.NumCPU <= 0 {
		t.Errorf("cpu fields: gomaxprocs=%d numcpu=%d", m.GOMAXPROCS, m.NumCPU)
	}
	if m.OS != runtime.GOOS || m.Arch != runtime.GOARCH {
		t.Errorf("platform: %s/%s", m.OS, m.Arch)
	}
	if m.Start.IsZero() || time.Since(m.Start) > time.Minute {
		t.Errorf("start time: %v", m.Start)
	}
	if m.PID <= 0 {
		t.Errorf("pid: %d", m.PID)
	}
	if len(m.Args) == 0 {
		t.Error("no CLI args recorded")
	}
	if m.Config["eps"] != "0.1" {
		t.Errorf("config passthrough: %v", m.Config)
	}
}

func TestSetAndMergeConfig(t *testing.T) {
	var m RunManifest
	m.SetConfig("a", "1")
	m.MergeConfig(map[string]string{"b": "2", "a": "3"})
	if m.Config["a"] != "3" || m.Config["b"] != "2" {
		t.Errorf("config: %v", m.Config)
	}
}

func TestFlagConfig(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	eps := fs.Float64("eps", 0.1, "")
	fs.String("scenario", "noise", "")
	if err := fs.Parse([]string{"-eps", "0.2"}); err != nil {
		t.Fatal(err)
	}
	_ = eps
	cfg := FlagConfig(fs)
	if cfg["eps"] != "0.2" {
		t.Errorf("set flag: %v", cfg)
	}
	if cfg["scenario"] != "noise" {
		t.Errorf("default flag: %v", cfg)
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := Collect("rt", map[string]string{"seed": "1"})
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != m.Tool || back.GoVersion != m.GoVersion || back.Config["seed"] != "1" {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if !back.Start.Equal(m.Start) {
		t.Errorf("start time round trip: %v != %v", back.Start, m.Start)
	}
}
