package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 || !IsValidTraceID(id) {
			t.Fatalf("bad trace id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestIsValidTraceID(t *testing.T) {
	valid := []string{"a", "req-42", "A.B_c-9", strings.Repeat("x", 128)}
	for _, s := range valid {
		if !IsValidTraceID(s) {
			t.Errorf("IsValidTraceID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", " ", "a b", "id\n", "héllo", strings.Repeat("x", 129), "{bad}"}
	for _, s := range invalid {
		if IsValidTraceID(s) {
			t.Errorf("IsValidTraceID(%q) = true, want false", s)
		}
	}
}

func TestTraceIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceIDFromContext(ctx); got != "" {
		t.Fatalf("empty context carries trace id %q", got)
	}
	ctx = WithTraceID(ctx, "abc123")
	if got := TraceIDFromContext(ctx); got != "abc123" {
		t.Fatalf("round trip = %q, want abc123", got)
	}
	// A child context (e.g. one carrying a span) keeps the ID.
	child, sp := StartSpan(ctx, "stage")
	defer sp.End()
	if got := TraceIDFromContext(child); got != "abc123" {
		t.Fatalf("child context trace id = %q", got)
	}
}
