package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cqabench/internal/obs"
)

// JournalEntry is one line of the JSONL event journal. The first line of
// a journal is a "manifest" entry carrying the run's provenance; every
// following line is a "span" entry in depth-first order, so the journal
// streams, greps and jq-filters naturally.
type JournalEntry struct {
	Type string `json:"type"` // "manifest" or "span"

	// Span fields.
	Name    string `json:"name,omitempty"`
	Path    string `json:"path,omitempty"` // slash-joined ancestry, e.g. "run/pair:x/cqa.KLM"
	Depth   int    `json:"depth,omitempty"`
	StartUS int64  `json:"start_us,omitempty"` // microseconds since the journal base
	DurUS   int64  `json:"dur_us,omitempty"`   // microseconds

	// Manifest fields.
	Base     string          `json:"base_time,omitempty"` // absolute origin, RFC3339Nano
	Manifest json.RawMessage `json:"manifest,omitempty"`
}

// WriteJournal writes a manifest line followed by one span line per node
// of each tree, depth-first. manifest may be nil (the header line then
// only carries the base time).
func WriteJournal(w io.Writer, manifest any, roots []obs.SpanData) error {
	enc := json.NewEncoder(w)
	base := baseTime(roots)
	head := JournalEntry{Type: "manifest"}
	if !base.IsZero() {
		head.Base = base.UTC().Format(time.RFC3339Nano)
	}
	if manifest != nil {
		raw, err := json.Marshal(manifest)
		if err != nil {
			return err
		}
		head.Manifest = raw
	}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for _, r := range roots {
		if err := writeJournalSpan(enc, r, base, "", 0); err != nil {
			return err
		}
	}
	return nil
}

func writeJournalSpan(enc *json.Encoder, s obs.SpanData, base time.Time, parentPath string, depth int) error {
	path := s.Name
	if parentPath != "" {
		path = parentPath + "/" + s.Name
	}
	err := enc.Encode(JournalEntry{
		Type:    "span",
		Name:    s.Name,
		Path:    path,
		Depth:   depth,
		StartUS: s.Start.Sub(base).Microseconds(),
		DurUS:   s.Duration().Microseconds(),
	})
	if err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeJournalSpan(enc, c, base, path, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// ReadJournal parses a JSONL journal back into its entries, validating
// the one-object-per-line shape.
func ReadJournal(r io.Reader) ([]JournalEntry, error) {
	var out []JournalEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
