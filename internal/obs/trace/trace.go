// Package trace persists obs span trees for post-hoc inspection in two
// forms: Chrome Trace Event Format JSON — loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing — and a structured JSONL event
// journal that is trivially grep/jq-able. Both carry the run's
// provenance manifest so a trace file is attributable to an exact run.
package trace

import (
	"encoding/json"
	"io"
	"time"

	"cqabench/internal/obs"
)

// Event is one Chrome Trace Event. Only the "X" (complete) phase is
// emitted: one event per span with a timestamp and duration in
// microseconds, as specified by the Trace Event Format.
type Event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds since the trace base
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// File is the JSON-object form of a trace file. Perfetto and
// chrome://tracing accept this shape directly.
type File struct {
	TraceEvents     []Event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Events flattens one span tree into complete events on thread tid,
// depth-first, with timestamps relative to base. Each event's args
// record its nesting depth.
func Events(root obs.SpanData, base time.Time, tid int) []Event {
	return appendEvents(nil, root, base, tid, 0)
}

func appendEvents(out []Event, s obs.SpanData, base time.Time, tid, depth int) []Event {
	out = append(out, Event{
		Name:  s.Name,
		Phase: "X",
		TS:    micros(s.Start.Sub(base)),
		Dur:   micros(s.Duration()),
		PID:   1,
		TID:   tid,
		Args:  map[string]any{"depth": depth},
	})
	for _, c := range s.Children {
		out = appendEvents(out, c, base, tid, depth+1)
	}
	return out
}

// baseTime returns the earliest start among the roots (the trace's time
// origin), or the zero time when there are no roots.
func baseTime(roots []obs.SpanData) time.Time {
	var base time.Time
	for _, r := range roots {
		if base.IsZero() || r.Start.Before(base) {
			base = r.Start
		}
	}
	return base
}

// WriteChrome writes the span trees as one Chrome Trace Event Format
// JSON file, each root on its own thread track. manifest (any
// JSON-marshalable value, may be nil) is embedded under
// metadata.manifest; metadata.base_time records the absolute time that
// microsecond timestamps are relative to.
func WriteChrome(w io.Writer, manifest any, roots []obs.SpanData) error {
	f := File{
		TraceEvents:     []Event{}, // a valid trace needs the array even when empty
		DisplayTimeUnit: "ms",
	}
	base := baseTime(roots)
	for i, r := range roots {
		f.TraceEvents = append(f.TraceEvents, Events(r, base, i+1)...)
	}
	f.Metadata = map[string]any{}
	if !base.IsZero() {
		f.Metadata["base_time"] = base.UTC().Format(time.RFC3339Nano)
	}
	if manifest != nil {
		f.Metadata["manifest"] = manifest
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
