package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cqabench/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedTree builds a deterministic span snapshot: a run with one pair,
// the pair holding a synopsis build and two scheme runs.
func fixedTree() []obs.SpanData {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(startMS, endMS int) (time.Time, time.Time) {
		return base.Add(time.Duration(startMS) * time.Millisecond),
			base.Add(time.Duration(endMS) * time.Millisecond)
	}
	s0, e0 := at(0, 100)
	s1, e1 := at(2, 96)
	s2, e2 := at(2, 10)
	s3, e3 := at(10, 50)
	s4, e4 := at(50, 96)
	s5, e5 := at(11, 49)
	return []obs.SpanData{{
		Name: "cqabench.run", Start: s0, End: e0,
		Children: []obs.SpanData{{
			Name: "pair:j1/q0/p0.4", Start: s1, End: e1,
			Children: []obs.SpanData{
				{Name: "synopsis.build", Start: s2, End: e2},
				{Name: "cqa.Natural", Start: s3, End: e3,
					Children: []obs.SpanData{{Name: "estimate", Start: s5, End: e5}}},
				{Name: "cqa.KLM", Start: s4, End: e4},
			},
		}},
	}}
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	manifest := map[string]string{"tool": "test", "git_sha": "deadbeef"}
	if err := WriteChrome(&buf, manifest, fixedTree()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceIsValid checks the structural requirements Perfetto /
// chrome://tracing impose on the JSON-object format: a traceEvents
// array whose events carry name/ph/ts/pid/tid, with "X" events also
// carrying dur, and timestamps within the enclosing root.
func TestChromeTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil, fixedTree()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(f.TraceEvents))
	}
	for i, e := range f.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Errorf("event %d lacks %q: %v", i, k, e)
			}
		}
		if e["ph"] != "X" {
			t.Errorf("event %d: phase %v, want X", i, e["ph"])
		}
		if ts := e["ts"].(float64); ts < 0 {
			t.Errorf("event %d: negative ts %v", i, ts)
		}
		if dur := e["dur"].(float64); dur < 0 {
			t.Errorf("event %d: negative dur %v", i, dur)
		}
	}
	if f.Metadata["base_time"] != "2026-01-02T03:04:05Z" {
		t.Errorf("base_time: %v", f.Metadata["base_time"])
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Errorf("empty trace must still carry the traceEvents array:\n%s", buf.String())
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	manifest := map[string]string{"tool": "test"}
	if err := WriteJournal(&buf, manifest, fixedTree()); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 { // manifest + 6 spans
		t.Fatalf("got %d entries, want 7", len(entries))
	}
	if entries[0].Type != "manifest" || entries[0].Base == "" || len(entries[0].Manifest) == 0 {
		t.Errorf("header entry: %+v", entries[0])
	}
	var m map[string]string
	if err := json.Unmarshal(entries[0].Manifest, &m); err != nil || m["tool"] != "test" {
		t.Errorf("embedded manifest: %v (%v)", m, err)
	}
	if e := entries[1]; e.Type != "span" || e.Name != "cqabench.run" || e.Depth != 0 || e.DurUS != 100_000 {
		t.Errorf("root entry: %+v", e)
	}
	wantPath := "cqabench.run/pair:j1/q0/p0.4/cqa.Natural/estimate"
	found := false
	for _, e := range entries[1:] {
		if e.Type != "span" {
			t.Errorf("non-span entry after header: %+v", e)
		}
		if e.Path == wantPath {
			found = true
			if e.Depth != 3 || e.DurUS != 38_000 || e.StartUS != 11_000 {
				t.Errorf("estimate entry: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("no entry with path %q", wantPath)
	}
}

func TestReadJournalRejectsGarbage(t *testing.T) {
	if _, err := ReadJournal(strings.NewReader("{\"type\":\"span\"}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}
