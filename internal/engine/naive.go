package engine

import (
	"sort"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

// NaiveHomomorphisms enumerates all homomorphisms by exhaustive nested
// iteration over every combination of facts, one per atom. It is the
// executable form of the homomorphism definition in Section 2 and exists
// as a ground-truth oracle for tests; it makes no use of indexes or
// ordering and is exponential in the number of atoms.
func NaiveHomomorphisms(db *relation.Database, q *cq.Query) ([][]relation.Value, error) {
	if err := q.Validate(db.Schema); err != nil {
		return nil, err
	}
	var out [][]relation.Value
	assign := make([]relation.Value, q.NumVars)
	assigned := make([]bool, q.NumVars)
	var rec func(ai int)
	rec = func(ai int) {
		if ai == len(q.Atoms) {
			out = append(out, append([]relation.Value(nil), assign...))
			return
		}
		atom := q.Atoms[ai]
		ri := db.Schema.RelIndex(atom.Rel)
		for _, tuple := range db.Tables[ri].Tuples {
			var bound []int
			ok := true
			for i, t := range atom.Args {
				if !t.IsVar {
					if tuple[i] != t.Const {
						ok = false
						break
					}
					continue
				}
				if assigned[t.Var] {
					if assign[t.Var] != tuple[i] {
						ok = false
						break
					}
					continue
				}
				assigned[t.Var] = true
				assign[t.Var] = tuple[i]
				bound = append(bound, t.Var)
			}
			if ok {
				rec(ai + 1)
			}
			for _, v := range bound {
				assigned[v] = false
			}
		}
	}
	rec(0)
	sortAssignments(out)
	return out, nil
}

func sortAssignments(xs [][]relation.Value) {
	sort.Slice(xs, func(i, j int) bool {
		return relation.Tuple(xs[i]).Less(relation.Tuple(xs[j]))
	})
}
