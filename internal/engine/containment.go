package engine

import (
	"fmt"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

// Contained decides classic CQ containment q1 ⊆ q2 (every answer of q1
// over every database is an answer of q2) by the Chandra–Merlin canonical
// database argument: freeze q1's variables into fresh constants, evaluate
// q2 over the frozen body, and check that the frozen head of q1 is among
// the answers. Keys are irrelevant to containment; the canonical database
// is built over a keyless copy of the schema so freezing can never be
// blocked by key violations.
//
// dict must be the dictionary both queries' constants were interned in
// (the database Dict the queries were parsed against). The frozen
// constants use a NUL-prefixed namespace that user strings cannot
// collide with.
func Contained(schema *relation.Schema, dict *relation.Dict, q1, q2 *cq.Query) (bool, error) {
	if err := q1.Validate(schema); err != nil {
		return false, fmt.Errorf("engine: q1: %w", err)
	}
	if err := q2.Validate(schema); err != nil {
		return false, fmt.Errorf("engine: q2: %w", err)
	}
	if len(q1.Out) != len(q2.Out) {
		return false, fmt.Errorf("engine: output arity mismatch: %d vs %d", len(q1.Out), len(q2.Out))
	}

	// Keyless copy of the schema: same relations, no constraints.
	rels := make([]relation.RelDef, len(schema.Rels))
	for i, r := range schema.Rels {
		rels[i] = relation.RelDef{Name: r.Name, Attrs: r.Attrs, KeyLen: 0}
	}
	free, err := relation.NewSchema(rels, nil)
	if err != nil {
		return false, err
	}

	// Canonical database over the shared dictionary: one fact per atom of
	// q1, variables frozen into fresh constants.
	canon := relation.NewDatabase(free)
	canon.Dict = dict
	frozen := make([]relation.Value, q1.NumVars)
	for v := range frozen {
		frozen[v] = dict.String(fmt.Sprintf("\x00frozen-%d", v))
	}
	for _, a := range q1.Atoms {
		t := make(relation.Tuple, len(a.Args))
		for i, term := range a.Args {
			if term.IsVar {
				t[i] = frozen[term.Var]
			} else {
				t[i] = term.Const
			}
		}
		if _, err := canon.InsertTuple(a.Rel, t); err != nil {
			return false, err
		}
	}

	head := make(relation.Tuple, len(q1.Out))
	for i, v := range q1.Out {
		head[i] = frozen[v]
	}
	return NewEvaluator(canon).HasAnswer(q2, head)
}

// Equivalent reports whether two CQs are semantically equivalent
// (contained in both directions).
func Equivalent(schema *relation.Schema, dict *relation.Dict, q1, q2 *cq.Query) (bool, error) {
	a, err := Contained(schema, dict, q1, q2)
	if err != nil || !a {
		return false, err
	}
	return Contained(schema, dict, q2, q1)
}
