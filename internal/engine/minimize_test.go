package engine

import (
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

func TestMinimizeRedundantAtom(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	// E(x,y) ∧ E(x,y2) with only x projected: one atom suffices.
	q := cq.MustParse("Q(x) :- E(x, y), E(x, y2)", d)
	m, err := Minimize(s, d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Fatalf("minimized to %d atoms: %s", len(m.Atoms), m)
	}
	ok, err := Equivalent(s, d, q, m)
	if err != nil || !ok {
		t.Fatalf("minimized query not equivalent: %v, %v", ok, err)
	}
	if err := m.Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeKeepsCore(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	// A genuine path of length 2 with both endpoints projected: nothing
	// removable.
	q := cq.MustParse("Q(x, z) :- E(x, y), E(y, z)", d)
	m, err := Minimize(s, d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 2 {
		t.Fatalf("core destroyed: %s", m)
	}
}

func TestMinimizeBooleanFold(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	// Boolean: E(x,y) ∧ E(u,v) — two disconnected copies of the same
	// pattern fold into one.
	q := cq.MustParse("Q() :- E(x, y), E(u, v)", d)
	m, err := Minimize(s, d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Fatalf("duplicate pattern not folded: %s", m)
	}
}

func TestMinimizeRespectsConstants(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	// The 'red' atom constrains; the unconstrained L atom is redundant.
	q := cq.MustParse("Q(x) :- L(x, 'red'), L(x, c)", d)
	m, err := Minimize(s, d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Fatalf("minimize failed: %s", m)
	}
	if m.NumConstants() != 1 {
		t.Fatalf("kept the wrong atom: %s", m)
	}
}

func TestMinimizeProtectsAnswerVariables(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	// y is projected: the second atom is the only one binding it via L, so
	// it cannot be dropped even though the E atom subsumes nothing.
	q := cq.MustParse("Q(x, c) :- E(x, y), L(x, c)", d)
	m, err := Minimize(s, d, q)
	if err != nil {
		t.Fatal(err)
	}
	// E(x,y) is droppable only if Q(x,c) :- L(x,c) ⊆ Q; it is (choose y
	// via... no: dropping E loses nothing only if every L-answer extends
	// to an E-edge, which is false). So both atoms stay.
	if len(m.Atoms) != 2 {
		t.Fatalf("unsound removal: %s", m)
	}
}

func TestMinimizeSingleAtomUntouched(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	q := cq.MustParse("Q(x) :- E(x, y)", d)
	m, err := Minimize(s, d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Fatal("single atom query changed")
	}
}

func TestMinimizeInvalidQuery(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	q := cq.MustParse("Q(x) :- Nope(x)", d)
	if _, err := Minimize(s, d, q); err == nil {
		t.Fatal("invalid query accepted")
	}
}
