package engine

import (
	"fmt"
	"strings"

	"cqabench/internal/cq"
)

// PlanStep describes one step of the evaluator's join plan.
type PlanStep struct {
	// Atom is the index of the body atom processed at this step.
	Atom int
	// Rel is the atom's relation name.
	Rel string
	// BoundPositions are the argument positions bound (by constants or
	// earlier steps) when the atom is probed; empty means a full scan.
	BoundPositions []int
	// TableRows is the relation's cardinality.
	TableRows int
}

// Access describes how the step retrieves candidates.
func (s PlanStep) Access() string {
	if len(s.BoundPositions) == 0 {
		return "scan"
	}
	return fmt.Sprintf("index%v", s.BoundPositions)
}

// Explain returns the evaluator's join plan for a query: the greedy atom
// order and, per step, the binding pattern used to probe the hash index.
// It mirrors exactly what EnumerateHomomorphisms will do.
func (e *Evaluator) Explain(q *cq.Query) ([]PlanStep, error) {
	if err := q.Validate(e.db.Schema); err != nil {
		return nil, err
	}
	pl := e.makePlan(q)
	steps := make([]PlanStep, len(pl.order))
	for i, ai := range pl.order {
		rel := q.Atoms[ai].Rel
		steps[i] = PlanStep{
			Atom:           ai,
			Rel:            rel,
			BoundPositions: append([]int(nil), pl.bound[i]...),
			TableRows:      len(e.db.Tables[e.db.Schema.RelIndex(rel)].Tuples),
		}
	}
	return steps, nil
}

// ExplainString renders the plan for humans.
func (e *Evaluator) ExplainString(q *cq.Query) (string, error) {
	steps, err := e.Explain(q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, s := range steps {
		fmt.Fprintf(&b, "%d. %s (%d rows) via %s\n", i+1, s.Rel, s.TableRows, s.Access())
	}
	return b.String(), nil
}
