package engine

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

func twoRelSchema() *relation.Schema {
	return relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"a", "b"}, KeyLen: 1},
		{Name: "S", Attrs: []string{"x", "y"}, KeyLen: 1},
	}, nil)
}

func smallDB(t *testing.T) *relation.Database {
	t.Helper()
	db := relation.NewDatabase(twoRelSchema())
	db.MustInsert("R", 1, 10)
	db.MustInsert("R", 2, 10)
	db.MustInsert("R", 3, 20)
	db.MustInsert("S", 10, 100)
	db.MustInsert("S", 20, 200)
	db.MustInsert("S", 20, 300) // key conflict in S: block of size 2
	return db
}

func collect(t *testing.T, e *Evaluator, q *cq.Query) []Homomorphism {
	t.Helper()
	var out []Homomorphism
	err := e.EnumerateHomomorphisms(q, func(h *Homomorphism) error {
		out = append(out, Homomorphism{
			Assign:  append([]relation.Value(nil), h.Assign...),
			PerAtom: append([]relation.FactRef(nil), h.PerAtom...),
			Image:   append([]relation.FactRef(nil), h.Image...),
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSingleAtomScan(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a, b) :- R(a, b)", db.Dict)
	hs := collect(t, e, q)
	if len(hs) != 3 {
		t.Fatalf("homomorphisms = %d, want 3", len(hs))
	}
}

func TestConstantFilter(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a) :- R(a, 10)", db.Dict)
	hs := collect(t, e, q)
	if len(hs) != 2 {
		t.Fatalf("homomorphisms = %d, want 2", len(hs))
	}
}

func TestJoin(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a, y) :- R(a, b), S(b, y)", db.Dict)
	hs := collect(t, e, q)
	// R(1,10)-S(10,100), R(2,10)-S(10,100), R(3,20)-S(20,200), R(3,20)-S(20,300)
	if len(hs) != 4 {
		t.Fatalf("homomorphisms = %d, want 4", len(hs))
	}
	for _, h := range hs {
		if len(h.Image) != 2 {
			t.Fatalf("join image size = %d, want 2", len(h.Image))
		}
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	db := relation.NewDatabase(twoRelSchema())
	db.MustInsert("S", 5, 5)
	db.MustInsert("S", 5, 6)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(x) :- S(x, x)", db.Dict)
	hs := collect(t, e, q)
	if len(hs) != 1 || hs[0].Assign[0] != db.Dict.Int(5) {
		t.Fatalf("repeated-var match wrong: %v", hs)
	}
}

func TestSelfJoinImageDeduped(t *testing.T) {
	db := relation.NewDatabase(twoRelSchema())
	db.MustInsert("S", 1, 2)
	e := NewEvaluator(db)
	// Both atoms can map to the same fact; the image must contain it once.
	q := cq.MustParse("Q() :- S(x, y), S(x, z)", db.Dict)
	hs := collect(t, e, q)
	if len(hs) != 1 {
		t.Fatalf("homomorphisms = %d, want 1", len(hs))
	}
	if len(hs[0].Image) != 1 {
		t.Fatalf("image = %v, want single fact", hs[0].Image)
	}
}

func TestAnswersDistinct(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(b) :- R(a, b)", db.Dict)
	ans, err := e.Answers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 { // 10 and 20
		t.Fatalf("answers = %v, want 2 distinct", ans)
	}
	if !ans[0].Less(ans[1]) {
		t.Fatal("answers not sorted")
	}
}

func TestBooleanAnswer(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q() :- R(a, b), S(b, y)", db.Dict)
	ans, err := e.Answers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || len(ans[0]) != 0 {
		t.Fatalf("Boolean answers = %v, want one empty tuple", ans)
	}
	qNo := cq.MustParse("Q() :- R(a, 999)", db.Dict)
	ans, err = e.Answers(qNo)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("unsatisfied Boolean query returned %v", ans)
	}
}

func TestHasAnswer(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a) :- R(a, 10)", db.Dict)
	ok, err := e.HasAnswer(q, relation.Tuple{db.Dict.Int(1)})
	if err != nil || !ok {
		t.Fatalf("HasAnswer(1) = %v, %v", ok, err)
	}
	ok, err = e.HasAnswer(q, relation.Tuple{db.Dict.Int(3)})
	if err != nil || ok {
		t.Fatalf("HasAnswer(3) = %v, %v", ok, err)
	}
	if _, err := e.HasAnswer(q, relation.Tuple{1, 2}); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestEarlyStop(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a, b) :- R(a, b)", db.Dict)
	calls := 0
	err := e.EnumerateHomomorphisms(q, func(*Homomorphism) error {
		calls++
		return ErrStop
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after ErrStop", calls)
	}
}

func TestCallbackErrorPropagates(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a, b) :- R(a, b)", db.Dict)
	boom := errors.New("boom")
	err := e.EnumerateHomomorphisms(q, func(*Homomorphism) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(x) :- T(x, y)", db.Dict)
	if err := e.EnumerateHomomorphisms(q, func(*Homomorphism) error { return nil }); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestCountHomomorphisms(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q() :- R(a, b), S(b, y)", db.Dict)
	n, err := e.CountHomomorphisms(q)
	if err != nil || n != 4 {
		t.Fatalf("CountHomomorphisms = %d, %v; want 4", n, err)
	}
}

func TestCartesianProduct(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q() :- R(a, b), S(x, y)", db.Dict)
	n, err := e.CountHomomorphisms(q)
	if err != nil || n != 9 {
		t.Fatalf("cross product homs = %d, %v; want 9", n, err)
	}
}

func TestIndexReuseAcrossQueries(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a) :- R(a, 10)", db.Dict)
	for i := 0; i < 3; i++ {
		hs := collect(t, e, q)
		if len(hs) != 2 {
			t.Fatalf("run %d: %d homomorphisms", i, len(hs))
		}
	}
	if len(e.indexes) == 0 {
		t.Fatal("no indexes cached")
	}
}

// randomQuery builds a random small CQ over the two-relation schema from
// byte seeds, possibly with constants and repeated variables.
func randomQuery(seed []byte, dict *relation.Dict) *cq.Query {
	if len(seed) == 0 {
		seed = []byte{0}
	}
	nAtoms := int(seed[0]%3) + 1
	q := &cq.Query{NumVars: 4, VarNames: []string{"x", "y", "z", "w"}}
	pos := 1
	next := func() byte {
		if pos >= len(seed) {
			pos = 0
		}
		b := seed[pos]
		pos++
		return b
	}
	for i := 0; i < nAtoms; i++ {
		rel := "R"
		arity := 2
		if next()%2 == 0 {
			rel = "S"
		}
		args := make([]cq.Term, arity)
		for j := range args {
			b := next()
			if b%4 == 0 {
				args[j] = cq.C(dict.Int(int64(b % 30)))
			} else {
				args[j] = cq.V(int(b) % 4)
			}
		}
		q.Atoms = append(q.Atoms, cq.Atom{Rel: rel, Args: args})
	}
	// Ensure every declared variable occurs: shrink NumVars to used ones by
	// remapping.
	used := map[int]int{}
	for ai := range q.Atoms {
		for ti, t := range q.Atoms[ai].Args {
			if t.IsVar {
				id, ok := used[t.Var]
				if !ok {
					id = len(used)
					used[t.Var] = id
				}
				q.Atoms[ai].Args[ti] = cq.V(id)
			}
		}
	}
	q.NumVars = len(used)
	q.VarNames = q.VarNames[:0]
	for i := 0; i < q.NumVars; i++ {
		q.VarNames = append(q.VarNames, fmt.Sprintf("h%d", i))
	}
	// Output: first variable if any.
	if q.NumVars > 0 && next()%2 == 0 {
		q.Out = []int{0}
	}
	return q
}

func randomDB(seed []byte) *relation.Database {
	db := relation.NewDatabase(twoRelSchema())
	for i := 0; i+2 < len(seed); i += 3 {
		rel := "R"
		if seed[i]%2 == 1 {
			rel = "S"
		}
		db.MustInsert(rel, int(seed[i+1]%8), int(seed[i+2]%8)+10)
	}
	return db
}

// Property: the indexed engine enumerates exactly the same assignment
// multiset as the naive nested-loop oracle.
func TestEngineMatchesNaiveProperty(t *testing.T) {
	f := func(dbSeed, qSeed []byte) bool {
		db := randomDB(dbSeed)
		q := randomQuery(qSeed, db.Dict)
		if q.NumVars == 0 {
			return true // degenerate: all-constant query; covered elsewhere
		}
		want, err := NaiveHomomorphisms(db, q)
		if err != nil {
			return true // invalid random query: skip
		}
		e := NewEvaluator(db)
		var got [][]relation.Value
		err = e.EnumerateHomomorphisms(q, func(h *Homomorphism) error {
			got = append(got, append([]relation.Value(nil), h.Assign...))
			return nil
		})
		if err != nil {
			return false
		}
		sortAssignments(got)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !relation.Tuple(got[i]).Equal(relation.Tuple(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllConstantAtom(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q() :- R(1, 10), S(x, y)", db.Dict)
	n, err := e.CountHomomorphisms(q)
	if err != nil || n != 3 {
		t.Fatalf("constant-atom homs = %d, %v; want 3", n, err)
	}
}

func BenchmarkJoinEnumeration(b *testing.B) {
	db := relation.NewDatabase(twoRelSchema())
	for i := 0; i < 1000; i++ {
		db.MustInsert("R", i, i%100)
		db.MustInsert("S", i%100, i)
	}
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a, y) :- R(a, b), S(b, y)", db.Dict)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := e.CountHomomorphisms(q)
		if err != nil || n == 0 {
			b.Fatal(n, err)
		}
	}
}

// Permuting the body atoms must not change the homomorphism multiset: the
// greedy planner may pick a different order, but the semantics are
// order-free.
func TestAtomOrderInvarianceProperty(t *testing.T) {
	f := func(dbSeed, qSeed []byte, rotate uint8) bool {
		db := randomDB(dbSeed)
		q := randomQuery(qSeed, db.Dict)
		if len(q.Atoms) < 2 {
			return true
		}
		// Rotate the atom list.
		r := int(rotate) % len(q.Atoms)
		perm := &cq.Query{
			Atoms:    append(append([]cq.Atom(nil), q.Atoms[r:]...), q.Atoms[:r]...),
			Out:      q.Out,
			NumVars:  q.NumVars,
			VarNames: q.VarNames,
		}
		count := func(query *cq.Query) (int, bool) {
			n, err := NewEvaluator(db).CountHomomorphisms(query)
			return n, err == nil
		}
		n1, ok1 := count(q)
		n2, ok2 := count(perm)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
