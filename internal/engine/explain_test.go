package engine

import (
	"strings"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

func TestExplainPlanShape(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q(a, y) :- R(a, b), S(b, y)", db.Dict)
	steps, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	// First step has no bound positions (scan); second probes on the
	// shared variable's position.
	if len(steps[0].BoundPositions) != 0 {
		t.Fatalf("first step should scan, got %v", steps[0].BoundPositions)
	}
	if len(steps[1].BoundPositions) != 1 {
		t.Fatalf("second step should probe one position, got %v", steps[1].BoundPositions)
	}
	if steps[0].Access() != "scan" || !strings.HasPrefix(steps[1].Access(), "index") {
		t.Fatalf("access = %q / %q", steps[0].Access(), steps[1].Access())
	}
}

func TestExplainPrefersConstants(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	// The S atom has a constant: it must be processed first with a bound
	// position even though it appears second in the body.
	q := cq.MustParse("Q(a) :- R(a, b), S(b, 100)", db.Dict)
	steps, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].Rel != "S" {
		t.Fatalf("constant atom not ordered first: %+v", steps)
	}
	if len(steps[0].BoundPositions) != 1 || steps[0].BoundPositions[0] != 1 {
		t.Fatalf("bound positions = %v", steps[0].BoundPositions)
	}
}

func TestExplainString(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q() :- R(a, b), S(b, y)", db.Dict)
	s, err := e.ExplainString(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "1. ") || !strings.Contains(s, "2. ") {
		t.Fatalf("explain string:\n%s", s)
	}
}

func TestExplainInvalid(t *testing.T) {
	db := relation.NewDatabase(twoRelSchema())
	e := NewEvaluator(db)
	q := cq.MustParse("Q(x) :- Nope(x)", db.Dict)
	if _, err := e.Explain(q); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// The plan must agree with actual evaluation: same atom count and every
// atom covered exactly once.
func TestExplainCoversAllAtoms(t *testing.T) {
	db := smallDB(t)
	e := NewEvaluator(db)
	q := cq.MustParse("Q() :- R(a, b), S(b, y), R(c, 10)", db.Dict)
	steps, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range steps {
		if seen[s.Atom] {
			t.Fatal("atom planned twice")
		}
		seen[s.Atom] = true
	}
	if len(seen) != len(q.Atoms) {
		t.Fatalf("planned %d of %d atoms", len(seen), len(q.Atoms))
	}
}
