package engine

import (
	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

// Minimize computes an equivalent subquery of q with a minimal set of
// atoms (the core, up to variable renaming): it greedily drops atoms whose
// removal keeps the query equivalent, re-checking with the Chandra–Merlin
// containment test. Removing an atom can only weaken a CQ (more answers),
// so equivalence reduces to checking that the weakened query is still
// contained in the original.
//
// The query generators use it to detect redundant generated bodies; it is
// also generally useful to callers assembling queries programmatically.
func Minimize(schema *relation.Schema, dict *relation.Dict, q *cq.Query) (*cq.Query, error) {
	if err := q.Validate(schema); err != nil {
		return nil, err
	}
	cur := q
	for {
		removed := false
		for i := range cur.Atoms {
			cand, ok := dropAtom(cur, i)
			if !ok {
				continue
			}
			// cur ⊆ cand always holds (fewer atoms). cand ⊆ cur makes the
			// removal equivalence-preserving.
			contained, err := Contained(schema, dict, cand, cur)
			if err != nil {
				return nil, err
			}
			if contained {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur, nil
		}
	}
}

// dropAtom returns q without atom i, with variables renumbered densely.
// It reports false when the removal would orphan an answer variable or
// leave the body empty.
func dropAtom(q *cq.Query, i int) (*cq.Query, bool) {
	if len(q.Atoms) <= 1 {
		return nil, false
	}
	atoms := make([]cq.Atom, 0, len(q.Atoms)-1)
	for j, a := range q.Atoms {
		if j != i {
			// Copy args so renumbering cannot alias the original.
			args := append([]cq.Term(nil), a.Args...)
			atoms = append(atoms, cq.Atom{Rel: a.Rel, Args: args})
		}
	}
	// Check answer variables still occur.
	occurs := map[int]bool{}
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar {
				occurs[t.Var] = true
			}
		}
	}
	for _, v := range q.Out {
		if !occurs[v] {
			return nil, false
		}
	}
	// Renumber densely, preserving display names.
	remap := map[int]int{}
	var names []string
	for ai := range atoms {
		for ti, t := range atoms[ai].Args {
			if !t.IsVar {
				continue
			}
			id, ok := remap[t.Var]
			if !ok {
				id = len(remap)
				remap[t.Var] = id
				name := ""
				if t.Var < len(q.VarNames) {
					name = q.VarNames[t.Var]
				}
				names = append(names, name)
			}
			atoms[ai].Args[ti] = cq.V(id)
		}
	}
	out := make([]int, len(q.Out))
	for k, v := range q.Out {
		out[k] = remap[v]
	}
	return &cq.Query{Atoms: atoms, Out: out, NumVars: len(remap), VarNames: names}, true
}
