package engine

import (
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

func containmentSchema() *relation.Schema {
	return relation.MustSchema([]relation.RelDef{
		{Name: "E", Attrs: []string{"src", "dst"}, KeyLen: 1},
		{Name: "L", Attrs: []string{"node", "color"}, KeyLen: 1},
	}, nil)
}

func TestContainedBasic(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	// A path of length 2 is contained in "some edge exists".
	path2 := cq.MustParse("Q() :- E(x, y), E(y, z)", d)
	edge := cq.MustParse("Q() :- E(u, v)", d)
	ok, err := Contained(s, d, path2, edge)
	if err != nil || !ok {
		t.Fatalf("path2 ⊆ edge: %v, %v", ok, err)
	}
	// The converse fails: an edge need not extend to a path.
	ok, err = Contained(s, d, edge, path2)
	if err != nil || ok {
		t.Fatalf("edge ⊆ path2 should be false: %v, %v", ok, err)
	}
}

func TestContainedWithConstants(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	red := cq.MustParse("Q(x) :- L(x, 'red')", d)
	any := cq.MustParse("Q(x) :- L(x, c)", d)
	ok, err := Contained(s, d, red, any)
	if err != nil || !ok {
		t.Fatalf("red ⊆ any: %v, %v", ok, err)
	}
	ok, err = Contained(s, d, any, red)
	if err != nil || ok {
		t.Fatalf("any ⊆ red should fail: %v, %v", ok, err)
	}
	// Different constants are incomparable.
	blue := cq.MustParse("Q(x) :- L(x, 'blue')", d)
	ok, err = Contained(s, d, red, blue)
	if err != nil || ok {
		t.Fatalf("red ⊆ blue should fail: %v, %v", ok, err)
	}
}

func TestContainedRespectsHead(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	src := cq.MustParse("Q(x) :- E(x, y)", d)
	dst := cq.MustParse("Q(y) :- E(x, y)", d)
	ok, err := Contained(s, d, src, dst)
	if err != nil || ok {
		t.Fatalf("projections over different positions should not be contained: %v, %v", ok, err)
	}
}

func TestEquivalent(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	// Redundant atom: E(x,y) ∧ E(x,y2) is equivalent to E(x,y) when only
	// x is projected.
	q1 := cq.MustParse("Q(x) :- E(x, y)", d)
	q2 := cq.MustParse("Q(x) :- E(x, y), E(x, y2)", d)
	ok, err := Equivalent(s, d, q1, q2)
	if err != nil || !ok {
		t.Fatalf("redundant-atom equivalence: %v, %v", ok, err)
	}
	q3 := cq.MustParse("Q(x) :- E(x, y), E(y, z)", d)
	ok, err = Equivalent(s, d, q1, q3)
	if err != nil || ok {
		t.Fatalf("path queries should not be equivalent: %v, %v", ok, err)
	}
}

func TestContainedErrors(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	good := cq.MustParse("Q(x) :- E(x, y)", d)
	bad := cq.MustParse("Q(x) :- Nope(x)", d)
	if _, err := Contained(s, d, bad, good); err == nil {
		t.Fatal("invalid q1 accepted")
	}
	if _, err := Contained(s, d, good, bad); err == nil {
		t.Fatal("invalid q2 accepted")
	}
	boolean := cq.MustParse("Q() :- E(x, y)", d)
	if _, err := Contained(s, d, good, boolean); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestContainmentReflexive(t *testing.T) {
	s := containmentSchema()
	d := relation.NewDict()
	for _, text := range []string{
		"Q() :- E(x, y), E(y, x)",
		"Q(x, z) :- E(x, y), E(y, z), L(x, 'red')",
	} {
		q := cq.MustParse(text, d)
		ok, err := Contained(s, d, q, q)
		if err != nil || !ok {
			t.Fatalf("%s not contained in itself: %v, %v", text, ok, err)
		}
	}
}
