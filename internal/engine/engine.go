// Package engine evaluates conjunctive queries over in-memory databases by
// enumerating homomorphisms. Unlike a standard query processor it must
// produce every homomorphism h from Q to D — not just the distinct answer
// tuples h(x̄) — because the synopsis of Section 4.1 collects all
// homomorphic images h(Q). This is the Go stand-in for the paper's
// PostgreSQL evaluation of the rewriting Q^rew (Appendix C).
package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
)

// Homomorphism is one mapping from a query's variables to constants,
// together with the facts it touches. PerAtom lists, for each body atom,
// the fact it maps to; Image is the deduplicated, sorted set h(Q).
// The slices are reused between callback invocations: copy them if they
// must outlive the callback.
type Homomorphism struct {
	Assign  []relation.Value
	PerAtom []relation.FactRef
	Image   []relation.FactRef
}

// ErrStop may be returned by an enumeration callback to stop early without
// reporting an error.
var ErrStop = errors.New("engine: stop enumeration")

// Evaluator evaluates queries over a fixed database, caching hash indexes
// keyed by (relation, set of bound positions) across queries. It is not
// safe for concurrent use.
type Evaluator struct {
	db      *relation.Database
	indexes map[indexKey]map[string][]int32
}

type indexKey struct {
	rel  int
	mask uint64
}

// NewEvaluator returns an evaluator over db.
func NewEvaluator(db *relation.Database) *Evaluator {
	return &Evaluator{db: db, indexes: make(map[indexKey]map[string][]int32)}
}

// Database exposes the evaluator's database.
func (e *Evaluator) Database() *relation.Database { return e.db }

// plan fixes an atom processing order and, per atom, the argument
// positions that will be bound when the atom is processed.
type plan struct {
	order []int   // atom indexes in processing order
	bound [][]int // per step: positions of args bound at probe time
}

// makePlan greedily orders atoms: at each step pick the atom with the most
// bound argument positions (constants plus variables bound by earlier
// atoms), breaking ties toward smaller relations.
func (e *Evaluator) makePlan(q *cq.Query) plan {
	n := len(q.Atoms)
	used := make([]bool, n)
	boundVar := make([]bool, q.NumVars)
	p := plan{order: make([]int, 0, n), bound: make([][]int, 0, n)}
	for step := 0; step < n; step++ {
		best, bestScore, bestSize := -1, -1, 0
		for ai := 0; ai < n; ai++ {
			if used[ai] {
				continue
			}
			score := 0
			for _, t := range q.Atoms[ai].Args {
				if !t.IsVar || boundVar[t.Var] {
					score++
				}
			}
			size := len(e.db.Tables[e.db.Schema.RelIndex(q.Atoms[ai].Rel)].Tuples)
			if score > bestScore || (score == bestScore && size < bestSize) {
				best, bestScore, bestSize = ai, score, size
			}
		}
		a := q.Atoms[best]
		var positions []int
		for i, t := range a.Args {
			if !t.IsVar || boundVar[t.Var] {
				positions = append(positions, i)
			}
		}
		for _, t := range a.Args {
			if t.IsVar {
				boundVar[t.Var] = true
			}
		}
		used[best] = true
		p.order = append(p.order, best)
		p.bound = append(p.bound, positions)
	}
	return p
}

// index returns (building if needed) the hash index of relation ri on the
// given positions. positions must be sorted ascending.
func (e *Evaluator) index(ri int, positions []int) map[string][]int32 {
	var mask uint64
	for _, p := range positions {
		mask |= 1 << uint(p)
	}
	key := indexKey{ri, mask}
	if idx, ok := e.indexes[key]; ok {
		return idx
	}
	tuples := e.db.Tables[ri].Tuples
	idx := make(map[string][]int32, len(tuples))
	probe := make([]relation.Value, len(positions))
	for row, t := range tuples {
		for i, p := range positions {
			probe[i] = t[p]
		}
		k := encodeValues(probe)
		idx[k] = append(idx[k], int32(row))
	}
	e.indexes[key] = idx
	return idx
}

func encodeValues(vals []relation.Value) string {
	var b strings.Builder
	b.Grow(len(vals) * 8)
	for _, v := range vals {
		u := uint64(v)
		var buf [8]byte
		for k := 0; k < 8; k++ {
			buf[k] = byte(u >> (8 * k))
		}
		b.Write(buf[:])
	}
	return b.String()
}

// EnumerateHomomorphisms invokes fn for every homomorphism from q to the
// database. fn may return ErrStop to halt enumeration. The Homomorphism
// passed to fn is reused; callers must copy slices they keep.
func (e *Evaluator) EnumerateHomomorphisms(q *cq.Query, fn func(*Homomorphism) error) error {
	if err := q.Validate(e.db.Schema); err != nil {
		return err
	}
	pl := e.makePlan(q)
	h := &Homomorphism{
		Assign:  make([]relation.Value, q.NumVars),
		PerAtom: make([]relation.FactRef, len(q.Atoms)),
	}
	assigned := make([]bool, q.NumVars)
	err := e.search(q, pl, 0, h, assigned, fn)
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

func (e *Evaluator) search(q *cq.Query, pl plan, step int, h *Homomorphism, assigned []bool, fn func(*Homomorphism) error) error {
	if step == len(pl.order) {
		h.Image = dedupeFacts(h.Image[:0], h.PerAtom)
		return fn(h)
	}
	ai := pl.order[step]
	atom := q.Atoms[ai]
	ri := e.db.Schema.RelIndex(atom.Rel)
	positions := pl.bound[step]

	var rows []int32
	if len(positions) == 0 {
		tuples := e.db.Tables[ri].Tuples
		for row := range tuples {
			if err := e.tryBind(q, pl, step, ai, ri, int32(row), h, assigned, fn); err != nil {
				return err
			}
		}
		_ = rows
		return nil
	}
	probe := make([]relation.Value, len(positions))
	for i, p := range positions {
		t := atom.Args[p]
		if t.IsVar {
			probe[i] = h.Assign[t.Var]
		} else {
			probe[i] = t.Const
		}
	}
	rows = e.index(ri, positions)[encodeValues(probe)]
	for _, row := range rows {
		if err := e.tryBind(q, pl, step, ai, ri, row, h, assigned, fn); err != nil {
			return err
		}
	}
	return nil
}

// tryBind attempts to match atom ai against the given row, binding any
// free variables, and recurses. Bound positions are guaranteed to match by
// index construction, but repeated free variables within the atom still
// need checking.
func (e *Evaluator) tryBind(q *cq.Query, pl plan, step, ai, ri int, row int32, h *Homomorphism, assigned []bool, fn func(*Homomorphism) error) error {
	atom := q.Atoms[ai]
	tuple := e.db.Tables[ri].Tuples[row]
	var newlyBound []int
	ok := true
	for i, t := range atom.Args {
		if !t.IsVar {
			if tuple[i] != t.Const {
				ok = false
				break
			}
			continue
		}
		if assigned[t.Var] {
			if h.Assign[t.Var] != tuple[i] {
				ok = false
				break
			}
			continue
		}
		assigned[t.Var] = true
		h.Assign[t.Var] = tuple[i]
		newlyBound = append(newlyBound, t.Var)
	}
	var err error
	if ok {
		h.PerAtom[ai] = relation.FactRef{Rel: int32(ri), Row: row}
		err = e.search(q, pl, step+1, h, assigned, fn)
	}
	for _, v := range newlyBound {
		assigned[v] = false
	}
	return err
}

func dedupeFacts(dst, src []relation.FactRef) []relation.FactRef {
	dst = append(dst, src...)
	sort.Slice(dst, func(i, j int) bool { return dst[i].Less(dst[j]) })
	out := dst[:0]
	for i, f := range dst {
		if i == 0 || f != dst[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// Answers returns the distinct answer tuples Q(D) in deterministic
// (lexicographic) order.
func (e *Evaluator) Answers(q *cq.Query) ([]relation.Tuple, error) {
	seen := make(map[string]relation.Tuple)
	err := e.EnumerateHomomorphisms(q, func(h *Homomorphism) error {
		t := make(relation.Tuple, len(q.Out))
		for i, v := range q.Out {
			t[i] = h.Assign[v]
		}
		seen[encodeValues(t)] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]relation.Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// HasAnswer reports whether t̄ ∈ Q(D).
func (e *Evaluator) HasAnswer(q *cq.Query, t relation.Tuple) (bool, error) {
	if len(t) != len(q.Out) {
		return false, fmt.Errorf("engine: tuple arity %d does not match output arity %d", len(t), len(q.Out))
	}
	found := false
	err := e.EnumerateHomomorphisms(q, func(h *Homomorphism) error {
		for i, v := range q.Out {
			if h.Assign[v] != t[i] {
				return nil
			}
		}
		found = true
		return ErrStop
	})
	return found, err
}

// CountHomomorphisms returns the number of homomorphisms from q to the
// database; used by the dynamic query parameters and by tests.
func (e *Evaluator) CountHomomorphisms(q *cq.Query) (int, error) {
	n := 0
	err := e.EnumerateHomomorphisms(q, func(*Homomorphism) error {
		n++
		return nil
	})
	return n, err
}

// CountHomomorphismsUpTo counts homomorphisms but stops at limit,
// reporting whether the count stayed within it. Scenario construction
// uses it to reject queries whose evaluation would explode.
func (e *Evaluator) CountHomomorphismsUpTo(q *cq.Query, limit int) (int, bool, error) {
	n := 0
	err := e.EnumerateHomomorphisms(q, func(*Homomorphism) error {
		n++
		if n > limit {
			return ErrStop
		}
		return nil
	})
	return n, n <= limit, err
}
