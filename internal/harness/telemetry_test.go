package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/obs"
	"cqabench/internal/scenario"
)

func telemetryWorkload(t *testing.T) *scenario.Workload {
	t.Helper()
	cfg := scenario.DefaultConfig()
	cfg.ScaleFactor = 0.0002
	cfg.QueriesPerJoin = 1
	lab, err := scenario.NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := lab.NoiseScenario(0, 1, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestTimedOutMeasurementsAreZeroed checks the timeout accounting: a
// timed-out (pair, scheme) run must not leak the partial sample/prep
// counts of the aborted invocation, must carry the "timeout" reason, and
// must be counted in harness_timeouts_total.
func TestTimedOutMeasurementsAreZeroed(t *testing.T) {
	w := telemetryWorkload(t)
	reg := obs.Default()
	var before int64
	for _, s := range cqa.Schemes {
		before += reg.Counter("harness_timeouts_total", obs.L("scheme", s.String())).Value()
	}
	cfg := DefaultConfig()
	cfg.Timeout = time.Second
	cfg.Opts.Budget.MaxSamples = 10 // force budget exhaustion for every scheme
	fig, err := Run(w, cfg, func(p scenario.Pair) float64 { return p.Noise })
	if err != nil {
		t.Fatal(err)
	}
	var timeouts int64
	for _, m := range fig.Raw {
		if !m.TimedOut {
			continue
		}
		timeouts++
		if m.Samples != 0 {
			t.Errorf("%s/%s: timed-out measurement reports %d samples, want 0", m.Pair, m.Scheme, m.Samples)
		}
		if m.Prep != 0 {
			t.Errorf("%s/%s: timed-out measurement reports prep %v, want 0", m.Pair, m.Scheme, m.Prep)
		}
		if m.Reason != "timeout" {
			t.Errorf("%s/%s: reason %q, want %q", m.Pair, m.Scheme, m.Reason, "timeout")
		}
		if m.Elapsed != cfg.Timeout {
			t.Errorf("%s/%s: elapsed %v, want the timeout %v", m.Pair, m.Scheme, m.Elapsed, cfg.Timeout)
		}
	}
	if timeouts == 0 {
		t.Fatal("expected at least one timed-out measurement with MaxSamples=10")
	}
	var after int64
	for _, s := range cqa.Schemes {
		after += reg.Counter("harness_timeouts_total", obs.L("scheme", s.String())).Value()
	}
	if after-before != timeouts {
		t.Errorf("harness_timeouts_total advanced by %d, want %d", after-before, timeouts)
	}
}

// TestRunManifestAndTracePlumbing checks the provenance/trace layer: Run
// populates Figure.Manifest, the figure JSON embeds it, and a Trace span
// handed in via Config captures one pair span per pair with synopsis and
// scheme children.
func TestRunManifestAndTracePlumbing(t *testing.T) {
	w := telemetryWorkload(t)
	cfg := DefaultConfig()
	cfg.Timeout = 5 * time.Second
	root := obs.NewSpan("test.run")
	cfg.Trace = root
	fig, err := Run(w, cfg, func(p scenario.Pair) float64 { return p.Noise })
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	m := fig.Manifest
	if m == nil {
		t.Fatal("Run did not populate Figure.Manifest")
	}
	if m.GoVersion == "" || m.GOMAXPROCS <= 0 || m.Start.IsZero() {
		t.Errorf("manifest environment fields missing: %+v", m)
	}
	for _, k := range []string{"eps", "delta", "seed", "timeout", "workload", "schemes"} {
		if m.Config[k] == "" {
			t.Errorf("manifest config lacks %q: %v", k, m.Config)
		}
	}

	var buf bytes.Buffer
	if err := fig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Manifest *struct {
			GoVersion string            `json:"go_version"`
			Config    map[string]string `json:"config"`
		} `json:"manifest"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Manifest == nil || decoded.Manifest.GoVersion == "" || decoded.Manifest.Config["eps"] == "" {
		t.Errorf("figure JSON manifest not populated: %+v", decoded.Manifest)
	}

	data := root.Data()
	if len(data.Children) != len(w.Pairs) {
		t.Fatalf("trace has %d pair spans, want %d", len(data.Children), len(w.Pairs))
	}
	for _, pairSpan := range data.Children {
		names := map[string]int{}
		for _, c := range pairSpan.Children {
			names[c.Name]++
		}
		if names["synopsis.build"] != 1 {
			t.Errorf("pair span %q: synopsis.build count %d, want 1", pairSpan.Name, names["synopsis.build"])
		}
		for _, s := range cqa.Schemes {
			if names["cqa."+s.String()] != 1 {
				t.Errorf("pair span %q: missing cqa.%s child (%v)", pairSpan.Name, s, names)
			}
		}
		if pairSpan.End.After(data.End) {
			t.Errorf("pair span %q extends past the root", pairSpan.Name)
		}
	}
}

// TestStagesSumToElapsed checks the span-breakdown invariant the JSON
// report relies on: every measurement's stage durations sum to Elapsed
// exactly (the acceptance bound is 5%; the construction makes it 0).
func TestStagesSumToElapsed(t *testing.T) {
	w := telemetryWorkload(t)
	cfg := DefaultConfig()
	cfg.Timeout = 5 * time.Second
	var progressed int
	cfg.Progress = func(Measurement) { progressed++ }
	fig, err := Run(w, cfg, func(p scenario.Pair) float64 { return p.Noise })
	if err != nil {
		t.Fatal(err)
	}
	if progressed != len(fig.Raw) {
		t.Errorf("Progress called %d times, want %d", progressed, len(fig.Raw))
	}
	for _, m := range fig.Raw {
		if len(m.Stages) == 0 {
			t.Errorf("%s/%s: no stages", m.Pair, m.Scheme)
			continue
		}
		var sum time.Duration
		for _, s := range m.Stages {
			if s.Dur < 0 {
				t.Errorf("%s/%s: stage %s has negative duration", m.Pair, m.Scheme, s.Name)
			}
			sum += s.Dur
		}
		if sum != m.Elapsed {
			t.Errorf("%s/%s: stages sum to %v, elapsed %v", m.Pair, m.Scheme, sum, m.Elapsed)
		}
	}
}
