// Package harness runs the approximation schemes over test scenarios and
// aggregates the paper's figures: per-scheme mean running time against the
// varied parameter (noise, balance), per-scheme share of running time
// against the join count, the preprocessing-time distribution, and the
// validation series. Timeouts are imposed per scheme invocation, like the
// paper's per-scenario 1-hour cap, and reported as counts next to the
// affected points, like the integer annotations in Figures 1–2.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/estimator"
	"cqabench/internal/obs"
	"cqabench/internal/obs/manifest"
	"cqabench/internal/scenario"
	"cqabench/internal/syncache"
	"cqabench/internal/synopsis"
)

// Config controls a harness run.
type Config struct {
	// Opts carries ε, δ and the seed (paper: ε = 0.1, δ = 0.25).
	Opts cqa.Options
	// Timeout bounds each (pair, scheme) run; 0 means none.
	Timeout time.Duration
	// Schemes selects which schemes to run (default: all four).
	Schemes []cqa.Scheme
	// Progress, if set, is called after every (pair, scheme) measurement;
	// the CLI's -progress flag uses it to stream status lines to stderr.
	Progress func(Measurement)
	// Trace, if set, is the parent span the run attributes all work
	// under: one "pair:<name>" child per pair, holding a synopsis.build
	// (or, on a cache hit, synopsis.load) span and one "cqa.<Scheme>"
	// span tree per scheme run. The CLI's -trace-out flag exports the
	// resulting tree via internal/obs/trace.
	Trace *obs.Span
	// Cache, if enabled, is consulted before every synopsis build and
	// updated after: a warm run loads enc(syn) directly and skips the
	// build. A nil or disabled cache reproduces the uncached behavior.
	Cache *syncache.Cache
	// BuildWorkers bounds the worker pool that prepares synopses for
	// the workload's pairs concurrently (cache loads and cold builds
	// alike). 0 selects GOMAXPROCS capped at 8; 1 forces the historical
	// sequential preparation. Preparation is deterministic regardless of
	// the worker count: synopsis construction draws no random numbers,
	// and results are ordered by pair, not by completion.
	BuildWorkers int
	// Context, when set, aborts the whole run cooperatively: synopsis
	// builds and estimations observe it at their usual poll points and
	// Run returns an error wrapping estimator.ErrCanceled. Nil means
	// context.Background() — runs are then bounded only by Timeout.
	Context context.Context
}

// context returns the run's context, defaulting to Background.
func (c Config) context() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// DefaultConfig mirrors the paper's experimental setting with a short
// timeout suitable for scaled-down scenarios.
func DefaultConfig() Config {
	return Config{
		Opts:    cqa.DefaultOptions(),
		Timeout: 10 * time.Second,
		Schemes: cqa.Schemes,
	}
}

// Measurement records one scheme run over one pair.
type Measurement struct {
	Pair     string
	Scheme   cqa.Scheme
	Level    float64 // the x-axis value of the scenario family
	Elapsed  time.Duration
	Prep     time.Duration
	Samples  int64
	Tuples   int
	TimedOut bool
	// Reason distinguishes failure modes: "" for a completed run,
	// "timeout" when the per-(pair, scheme) budget expired. Timed-out
	// measurements report zero Samples/Prep — the partial counts of an
	// aborted invocation are not comparable to completed ones.
	Reason string
	// Stages is the span breakdown of Elapsed into pipeline stages
	// (sampler.init.<kernel> / estimate / other); the stage durations
	// always sum to Elapsed exactly.
	Stages []obs.Stage
	// PrepSource records where the pair's synopsis came from: "build"
	// (computed this run) or "load" (decoded from the synopsis cache).
	PrepSource string
}

// Point aggregates the measurements of one scheme at one level.
type Point struct {
	Level    float64
	Mean     time.Duration // mean over the level's pairs; timeouts count at the timeout value
	Timeouts int
	Count    int
}

// Series is one scheme's curve.
type Series struct {
	Scheme cqa.Scheme
	Points []Point
}

// Figure is the data behind one plot.
type Figure struct {
	Title     string
	XLabel    string
	Series    []Series
	PrepTimes []time.Duration
	// Balances records the achieved balance per pair (validation figures
	// report its average and standard deviation in their captions).
	Balances []float64
	Raw      []Measurement
	// Manifest is the run's provenance record (git sha, host, Go
	// toolchain, ε/δ/seed/timeout), populated by Run and embedded in the
	// figure JSON so every persisted result is attributable.
	Manifest *manifest.RunManifest
}

// prepared is the outcome of the synopsis-preparation phase for one
// pair: the synopsis (loaded or built), where it came from, and the
// wall time it took.
type prepared struct {
	set    *synopsis.Set
	source syncache.Source
	prep   time.Duration
	err    error
}

// prepare resolves the synopses of every pair — from the cache when
// warm, by building (and storing) when cold — over a bounded worker
// pool. Results are indexed by pair, so downstream ordering is
// deterministic regardless of completion order. Each pair's "pair:"
// trace span is created here, in pair order, and stays open for the
// measurement phase to attach scheme spans to.
func prepare(w *scenario.Workload, cfg Config, spans []*obs.Span) []prepared {
	workers := cfg.BuildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if workers > len(w.Pairs) {
		workers = len(w.Pairs)
	}
	out := make([]prepared, len(w.Pairs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range w.Pairs {
		spans[i] = cfg.Trace.StartChild("pair:" + w.Pairs[i].Name)
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			pair := w.Pairs[i]
			start := time.Now()
			key := syncache.PairKey(w, pair)
			if !cfg.Cache.Enabled() {
				key = ""
			}
			span := spans[i].StartChild("synopsis.resolve")
			set, source, err := cfg.Cache.Resolve(key, func() (*synopsis.Set, error) {
				return synopsis.BuildContext(cfg.context(), pair.DB, pair.Query)
			})
			span.End()
			// Rename the span after the fact so traces show what
			// actually happened: a load or a build.
			span.Rename("synopsis." + string(source))
			out[i] = prepared{set: set, source: source, prep: time.Since(start), err: err}
		}(i)
	}
	wg.Wait()
	return out
}

// Run measures every configured scheme on every pair of the workload,
// using level(pair) as the x-axis value. The synopsis of each pair is
// computed once and shared across schemes, as in Section 5; with a
// cache configured, it is loaded from disk instead whenever the pair's
// content address hits (the prep phase of a warm run is then pure
// decoding). Cold synopses are prepared concurrently (Config.
// BuildWorkers); the scheme measurements themselves stay strictly
// sequential so timings are never distorted by a concurrent build.
func Run(w *scenario.Workload, cfg Config, level func(scenario.Pair) float64) (*Figure, error) {
	schemes := cfg.Schemes
	if len(schemes) == 0 {
		schemes = cqa.Schemes
	}
	fig := &Figure{Title: w.Name, XLabel: "level"}
	fig.Manifest = runManifest(w.Name, cfg, schemes)
	reg := obs.Default()
	perScheme := make(map[cqa.Scheme]map[float64][]Measurement)
	for _, s := range schemes {
		perScheme[s] = make(map[float64][]Measurement)
		// Eager registration: the timeout counters must be scrapeable (at
		// zero) even before the first timeout occurs.
		reg.Counter("harness_timeouts_total", obs.L("scheme", s.String()))
	}
	pairSpans := make([]*obs.Span, len(w.Pairs))
	preps := prepare(w, cfg, pairSpans)
	for i, pair := range w.Pairs {
		pairSpan := pairSpans[i]
		if preps[i].err != nil {
			for _, ps := range pairSpans[i:] {
				ps.End()
			}
			return nil, fmt.Errorf("harness: %s: %w", pair.Name, preps[i].err)
		}
		set, prep := preps[i].set, preps[i].prep
		fig.PrepTimes = append(fig.PrepTimes, prep)
		fig.Balances = append(fig.Balances, pair.Balance)
		lv := level(pair)
		for _, s := range schemes {
			opts := cfg.Opts
			if cfg.Timeout > 0 {
				opts.Budget.Deadline = time.Now().Add(cfg.Timeout)
			}
			start := time.Now()
			_, stats, err := cqa.ApxAnswersFromSetTracedContext(cfg.context(), set, s, opts, pairSpan)
			elapsed := time.Since(start)
			m := Measurement{
				Pair:       pair.Name,
				Scheme:     s,
				Level:      lv,
				Elapsed:    elapsed,
				Prep:       prep,
				Samples:    stats.Samples,
				Tuples:     stats.NumTuples,
				PrepSource: string(preps[i].source),
			}
			if err != nil {
				if !errors.Is(err, estimator.ErrBudget) {
					for _, ps := range pairSpans[i:] {
						ps.End()
					}
					return nil, fmt.Errorf("harness: %s %v: %w", pair.Name, s, err)
				}
				m.TimedOut = true
				m.Elapsed = cfg.Timeout
				// An aborted invocation's partial sample/prep figures are
				// not comparable to completed runs; report zeros and a
				// distinct reason instead.
				m.Samples = 0
				m.Prep = 0
				m.Reason = "timeout"
				reg.Counter("harness_timeouts_total", obs.L("scheme", s.String())).Inc()
			}
			m.Stages = stagesForElapsed(stats.Stages, m.Elapsed)
			fig.Raw = append(fig.Raw, m)
			perScheme[s][lv] = append(perScheme[s][lv], m)
			if cfg.Progress != nil {
				cfg.Progress(m)
			}
		}
		pairSpan.End()
	}
	for _, s := range schemes {
		var levels []float64
		for lv := range perScheme[s] {
			levels = append(levels, lv)
		}
		sort.Float64s(levels)
		series := Series{Scheme: s}
		for _, lv := range levels {
			ms := perScheme[s][lv]
			var sum time.Duration
			timeouts := 0
			for _, m := range ms {
				sum += m.Elapsed
				if m.TimedOut {
					timeouts++
				}
			}
			series.Points = append(series.Points, Point{
				Level:    lv,
				Mean:     sum / time.Duration(len(ms)),
				Timeouts: timeouts,
				Count:    len(ms),
			})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// runManifest builds the run's provenance record from the harness
// configuration. Front-ends (cmd/cqabench) merge their full CLI flag
// sets on top via Manifest.MergeConfig.
func runManifest(workload string, cfg Config, schemes []cqa.Scheme) *manifest.RunManifest {
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.String()
	}
	m := manifest.Collect("cqabench/harness", map[string]string{
		"workload": workload,
		"eps":      fmt.Sprint(cfg.Opts.Eps),
		"delta":    fmt.Sprint(cfg.Opts.Delta),
		"seed":     fmt.Sprint(cfg.Opts.Seed),
		"timeout":  cfg.Timeout.String(),
		"schemes":  strings.Join(names, ","),
	})
	return &m
}

// stagesForElapsed fits a run's span stages to the measurement's
// Elapsed so the breakdown always sums to it exactly: harness-side
// overhead goes into "other", and a timed-out run (whose Elapsed is the
// nominal timeout, not the true wall time) is rescaled proportionally.
func stagesForElapsed(stages []obs.Stage, elapsed time.Duration) []obs.Stage {
	if len(stages) == 0 || elapsed <= 0 {
		return nil
	}
	out := append([]obs.Stage(nil), stages...)
	var sum time.Duration
	for _, s := range out {
		sum += s.Dur
	}
	switch {
	case sum < elapsed:
		rest := elapsed - sum
		if last := len(out) - 1; out[last].Name == "other" {
			out[last].Dur += rest
		} else {
			out = append(out, obs.Stage{Name: "other", Dur: rest, Count: 1})
		}
	case sum > elapsed:
		var scaled time.Duration
		for i := range out {
			out[i].Dur = time.Duration(float64(out[i].Dur) * float64(elapsed) / float64(sum))
			scaled += out[i].Dur
		}
		// Rounding residue lands on the largest stage.
		maxI := 0
		for i := range out {
			if out[i].Dur > out[maxI].Dur {
				maxI = i
			}
		}
		out[maxI].Dur += elapsed - scaled
	}
	return out
}

// RunNoise produces a Noise[balance, joins] figure: x-axis = noise %.
func RunNoise(w *scenario.Workload, cfg Config) (*Figure, error) {
	fig, err := Run(w, cfg, func(p scenario.Pair) float64 { return p.Noise * 100 })
	if err == nil {
		fig.XLabel = "Noise (%)"
	}
	return fig, err
}

// RunBalance produces a Balance[noise, joins] figure: x-axis = target
// balance %.
func RunBalance(w *scenario.Workload, cfg Config) (*Figure, error) {
	fig, err := Run(w, cfg, func(p scenario.Pair) float64 { return p.Target * 100 })
	if err == nil {
		fig.XLabel = "Balance (%)"
	}
	return fig, err
}

// RunJoins produces a Joins[noise, balance] figure: x-axis = join count.
func RunJoins(w *scenario.Workload, cfg Config) (*Figure, error) {
	fig, err := Run(w, cfg, func(p scenario.Pair) float64 { return float64(p.Joins) })
	if err == nil {
		fig.XLabel = "Joins"
	}
	return fig, err
}

// RunValidation produces a Validation[Q] figure: x-axis = noise %.
func RunValidation(w *scenario.Workload, cfg Config) (*Figure, error) {
	return RunNoise(w, cfg)
}

// BalanceStats returns the average and standard deviation of the achieved
// balances, as reported in the validation figures' captions.
func (f *Figure) BalanceStats() (mean, std float64) {
	if len(f.Balances) == 0 {
		return 0, 0
	}
	for _, b := range f.Balances {
		mean += b
	}
	mean /= float64(len(f.Balances))
	for _, b := range f.Balances {
		std += (b - mean) * (b - mean)
	}
	std = math.Sqrt(std / float64(len(f.Balances)))
	return mean, std
}

// SharesAt returns each scheme's percentage share of the summed mean
// running time at the given level (the y-axis of the join figures).
func (f *Figure) SharesAt(level float64) map[cqa.Scheme]float64 {
	var total time.Duration
	perScheme := make(map[cqa.Scheme]time.Duration)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Level == level {
				perScheme[s.Scheme] = p.Mean
				total += p.Mean
			}
		}
	}
	out := make(map[cqa.Scheme]float64, len(perScheme))
	for sch, d := range perScheme {
		if total > 0 {
			out[sch] = 100 * float64(d) / float64(total)
		}
	}
	return out
}

// Levels returns the sorted distinct x-axis levels of the figure.
func (f *Figure) Levels() []float64 {
	set := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			set[p.Level] = true
		}
	}
	var out []float64
	for lv := range set {
		out = append(out, lv)
	}
	sort.Float64s(out)
	return out
}

// Table renders the figure as an aligned text table: one row per level,
// one column per scheme, mean runtimes with "(nTO)" annotations marking
// timed-out pairs — the textual analogue of the paper's plots.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Scheme)
	}
	b.WriteByte('\n')
	for _, lv := range f.Levels() {
		fmt.Fprintf(&b, "%-12.4g", lv)
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.Level == lv {
					cell = formatDuration(p.Mean)
					if p.Timeouts > 0 {
						cell += fmt.Sprintf(" (%dTO)", p.Timeouts)
					}
				}
			}
			fmt.Fprintf(&b, "%16s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ShareTable renders the join-figure view: per level, each scheme's share
// of the total running time.
func (f *Figure) ShareTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (share of running time %%)\n", f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%10s", s.Scheme)
	}
	b.WriteByte('\n')
	for _, lv := range f.Levels() {
		shares := f.SharesAt(lv)
		fmt.Fprintf(&b, "%-12.4g", lv)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%9.1f%%", shares[s.Scheme])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV emits the raw measurements, one row per (pair, scheme).
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,pair,scheme,level,elapsed_ns,prep_ns,samples,tuples,timed_out"); err != nil {
		return err
	}
	for _, m := range f.Raw {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%g,%d,%d,%d,%d,%t\n",
			csvEscape(f.Title), csvEscape(m.Pair), m.Scheme, m.Level,
			m.Elapsed.Nanoseconds(), m.Prep.Nanoseconds(), m.Samples,
			m.Tuples, m.TimedOut); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// PrepHistogram buckets preprocessing times (Figure 3): the fraction of
// pairs whose synopsis construction fell in each bucket of the given
// width.
func PrepHistogram(times []time.Duration, bucket time.Duration) []float64 {
	if len(times) == 0 || bucket <= 0 {
		return nil
	}
	max := time.Duration(0)
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	n := int(max/bucket) + 1
	hist := make([]float64, n)
	for _, t := range times {
		hist[int(t/bucket)]++
	}
	for i := range hist {
		hist[i] /= float64(len(times))
	}
	return hist
}

// Winner returns the scheme with the smallest total mean runtime across
// all levels — the "best performer" the take-home messages talk about.
func (f *Figure) Winner() cqa.Scheme {
	best := f.Series[0].Scheme
	bestTotal := time.Duration(math.MaxInt64)
	for _, s := range f.Series {
		var total time.Duration
		for _, p := range s.Points {
			total += p.Mean
		}
		if total < bestTotal {
			bestTotal = total
			best = s.Scheme
		}
	}
	return best
}

// TotalMean returns a scheme's summed mean runtime across levels, for
// ordering comparisons in tests and EXPERIMENTS.md.
func (f *Figure) TotalMean(s cqa.Scheme) time.Duration {
	for _, ser := range f.Series {
		if ser.Scheme == s {
			var total time.Duration
			for _, p := range ser.Points {
				total += p.Mean
			}
			return total
		}
	}
	return 0
}
