package harness

import (
	"cqabench/internal/cqa"

	"fmt"
	"math"
	"strings"
	"time"
)

// Chart renders the figure as an ASCII line chart — the terminal analogue
// of the paper's plots — with one symbol per scheme, a log-scaled y axis
// (runtimes span orders of magnitude between schemes), and the x axis over
// the figure's levels. Width and height are in character cells; sensible
// minimums are enforced.
func (f *Figure) Chart(width, height int) string {
	if width < 30 {
		width = 30
	}
	if height < 8 {
		height = 8
	}
	levels := f.Levels()
	if len(levels) == 0 || len(f.Series) == 0 {
		return "(no data)\n"
	}

	symbolOf := func(s cqa.Scheme) byte {
		switch s {
		case cqa.Natural:
			return 'N'
		case cqa.KL:
			return 'K'
		case cqa.KLM:
			return 'M'
		case cqa.Cover:
			return 'C'
		default:
			return '*'
		}
	}
	// y range over all means, log scale.
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			v := float64(p.Mean)
			if v <= 0 {
				continue
			}
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
	}
	if math.IsInf(minY, 1) {
		return "(no data)\n"
	}
	logMin, logMax := math.Log10(minY), math.Log10(maxY)
	if logMax-logMin < 0.1 {
		logMax = logMin + 0.1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	xOf := func(level float64) int {
		lo, hi := levels[0], levels[len(levels)-1]
		if hi == lo {
			return width / 2
		}
		return int((level - lo) / (hi - lo) * float64(width-1))
	}
	yOf := func(d time.Duration) int {
		v := math.Log10(float64(d))
		row := int((logMax - v) / (logMax - logMin) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	for _, s := range f.Series {
		sym := symbolOf(s.Scheme)
		for _, p := range s.Points {
			if p.Mean <= 0 {
				continue
			}
			grid[yOf(p.Mean)][xOf(p.Level)] = sym
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  (log time; ", f.Title)
	for si, s := range f.Series {
		if si > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%s", symbolOf(s.Scheme), s.Scheme)
	}
	b.WriteString(")\n")
	topLabel := formatDuration(time.Duration(math.Pow(10, logMax)))
	botLabel := formatDuration(time.Duration(math.Pow(10, logMin)))
	for r := range grid {
		label := strings.Repeat(" ", 9)
		if r == 0 {
			label = fmt.Sprintf("%9s", topLabel)
		}
		if r == height-1 {
			label = fmt.Sprintf("%9s", botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-10.4g%*s\n", strings.Repeat(" ", 9), levels[0], width-11, fmt.Sprintf("%.4g", levels[len(levels)-1]))
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 9), f.XLabel)
	return b.String()
}
