package harness

import (
	"fmt"
	"io"
	"time"

	"cqabench/internal/scenario"
)

// ReportConfig drives a full benchmark report: the reduced grids used for
// each figure family.
type ReportConfig struct {
	Harness       Config
	NoiseLevels   []float64
	BalanceLevels []float64
	JoinLevels    []int
	// FixedBalance / FixedNoise / FixedJoins pin the non-varied
	// parameters per family, as the paper's representative plots do.
	FixedBalances []float64
	FixedNoise    float64
	FixedJoins    []int
	// Charts embeds ASCII charts next to each table.
	Charts bool
}

// DefaultReportConfig mirrors the representative sub-grid the paper's main
// body shows.
func DefaultReportConfig() ReportConfig {
	return ReportConfig{
		Harness:       DefaultConfig(),
		NoiseLevels:   []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		BalanceLevels: []float64{0, 0.25, 0.5, 0.75, 1.0},
		JoinLevels:    []int{1, 2, 3},
		FixedBalances: []float64{0, 0.5},
		FixedNoise:    0.4,
		FixedJoins:    []int{1, 3},
		Charts:        true,
	}
}

// WriteReport runs the Noise, Balance and Joins families over the lab and
// writes a markdown report: per scenario a table (and optionally a chart),
// plus winner-per-scenario and preprocessing summaries. It is the
// machinery behind `cqabench report`.
func WriteReport(w io.Writer, lab *scenario.Lab, cfg ReportConfig) error {
	fmt.Fprintf(w, "# cqabench report\n\ngenerated %s; eps=%.2f delta=%.2f timeout=%s\n\n",
		time.Now().UTC().Format(time.RFC3339), cfg.Harness.Opts.Eps, cfg.Harness.Opts.Delta, cfg.Harness.Timeout)

	var prep []time.Duration
	emit := func(fig *Figure, share bool) {
		fmt.Fprintf(w, "## %s\n\n```\n", fig.Title)
		if share {
			fmt.Fprint(w, fig.ShareTable())
		} else {
			fmt.Fprint(w, fig.Table())
		}
		if cfg.Charts && !share {
			fmt.Fprint(w, "\n", fig.Chart(64, 12))
		}
		fmt.Fprintf(w, "```\n\nwinner: **%v**\n\n", fig.Winner())
		prep = append(prep, fig.PrepTimes...)
	}

	for _, bal := range cfg.FixedBalances {
		for _, j := range cfg.FixedJoins {
			wl, err := lab.NoiseScenario(bal, j, cfg.NoiseLevels)
			if err != nil {
				return err
			}
			fig, err := RunNoise(wl, cfg.Harness)
			if err != nil {
				return err
			}
			emit(fig, false)
		}
	}
	for _, j := range cfg.FixedJoins {
		wl, err := lab.BalanceScenario(cfg.FixedNoise, j, cfg.BalanceLevels)
		if err != nil {
			return err
		}
		fig, err := RunBalance(wl, cfg.Harness)
		if err != nil {
			return err
		}
		emit(fig, false)
	}
	for _, bal := range cfg.FixedBalances {
		wl, err := lab.JoinsScenario(cfg.FixedNoise, bal, cfg.JoinLevels)
		if err != nil {
			return err
		}
		fig, err := RunJoins(wl, cfg.Harness)
		if err != nil {
			return err
		}
		emit(fig, true)
	}

	// Preprocessing summary (Figure 3).
	fmt.Fprintf(w, "## Preprocessing (synopsis construction)\n\n")
	if len(prep) > 0 {
		var max, sum time.Duration
		for _, p := range prep {
			sum += p
			if p > max {
				max = p
			}
		}
		fmt.Fprintf(w, "%d synopsis builds; mean %s, max %s\n\n```\n",
			len(prep), (sum / time.Duration(len(prep))).Round(time.Microsecond), max.Round(time.Microsecond))
		bucket := max/10 + time.Millisecond
		for i, h := range PrepHistogram(prep, bucket) {
			if h == 0 {
				continue
			}
			fmt.Fprintf(w, "%8s-%8s %5.1f%%\n",
				(time.Duration(i) * bucket).Round(time.Millisecond),
				(time.Duration(i+1) * bucket).Round(time.Millisecond), h*100)
		}
		fmt.Fprint(w, "```\n")
	}
	return nil
}
