package harness

import (
	"encoding/json"
	"io"

	"cqabench/internal/obs/manifest"
)

// figureJSON is the stable JSON shape of a figure, meant for external
// plotting tools (the paper's plots are matplotlib; this is the
// interchange point). The manifest makes the file self-describing: any
// figure JSON in results/ names the exact run that produced it.
type figureJSON struct {
	Title     string                `json:"title"`
	XLabel    string                `json:"x_label"`
	Manifest  *manifest.RunManifest `json:"manifest,omitempty"`
	Series    []seriesJSON          `json:"series"`
	PrepNanos []int64               `json:"prep_ns,omitempty"`
	Balances  []float64             `json:"balances,omitempty"`
	Raw       []measurementJSON     `json:"raw,omitempty"`
}

type seriesJSON struct {
	Scheme string      `json:"scheme"`
	Points []pointJSON `json:"points"`
}

type pointJSON struct {
	Level    float64 `json:"level"`
	MeanNano int64   `json:"mean_ns"`
	Timeouts int     `json:"timeouts"`
	Count    int     `json:"count"`
}

// measurementJSON carries one raw (pair, scheme) measurement including
// its span breakdown: the stage durations sum to elapsed_ns exactly.
type measurementJSON struct {
	Pair        string      `json:"pair"`
	Scheme      string      `json:"scheme"`
	Level       float64     `json:"level"`
	ElapsedNano int64       `json:"elapsed_ns"`
	PrepNano    int64       `json:"prep_ns"`
	Samples     int64       `json:"samples"`
	Tuples      int         `json:"tuples"`
	TimedOut    bool        `json:"timed_out,omitempty"`
	Reason      string      `json:"reason,omitempty"`
	PrepSource  string      `json:"prep_source,omitempty"`
	Stages      []stageJSON `json:"stages,omitempty"`
}

type stageJSON struct {
	Name    string `json:"name"`
	DurNano int64  `json:"dur_ns"`
	Count   int    `json:"count,omitempty"`
}

// WriteJSON emits the aggregated figure (series of per-level means with
// timeout counts, preprocessing times, achieved balances) together with
// the raw per-(pair, scheme) measurements and their per-stage span
// breakdowns, as indented JSON.
func (f *Figure) WriteJSON(w io.Writer) error {
	out := figureJSON{Title: f.Title, XLabel: f.XLabel, Manifest: f.Manifest}
	for _, s := range f.Series {
		sj := seriesJSON{Scheme: s.Scheme.String()}
		for _, p := range s.Points {
			sj.Points = append(sj.Points, pointJSON{
				Level:    p.Level,
				MeanNano: p.Mean.Nanoseconds(),
				Timeouts: p.Timeouts,
				Count:    p.Count,
			})
		}
		out.Series = append(out.Series, sj)
	}
	for _, p := range f.PrepTimes {
		out.PrepNanos = append(out.PrepNanos, p.Nanoseconds())
	}
	out.Balances = f.Balances
	for _, m := range f.Raw {
		mj := measurementJSON{
			Pair:        m.Pair,
			Scheme:      m.Scheme.String(),
			Level:       m.Level,
			ElapsedNano: m.Elapsed.Nanoseconds(),
			PrepNano:    m.Prep.Nanoseconds(),
			Samples:     m.Samples,
			Tuples:      m.Tuples,
			TimedOut:    m.TimedOut,
			Reason:      m.Reason,
			PrepSource:  m.PrepSource,
		}
		for _, st := range m.Stages {
			mj.Stages = append(mj.Stages, stageJSON{Name: st.Name, DurNano: st.Dur.Nanoseconds(), Count: st.Count})
		}
		out.Raw = append(out.Raw, mj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
