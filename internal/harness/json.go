package harness

import (
	"encoding/json"
	"io"
)

// figureJSON is the stable JSON shape of a figure, meant for external
// plotting tools (the paper's plots are matplotlib; this is the
// interchange point).
type figureJSON struct {
	Title     string       `json:"title"`
	XLabel    string       `json:"x_label"`
	Series    []seriesJSON `json:"series"`
	PrepNanos []int64      `json:"prep_ns,omitempty"`
	Balances  []float64    `json:"balances,omitempty"`
}

type seriesJSON struct {
	Scheme string      `json:"scheme"`
	Points []pointJSON `json:"points"`
}

type pointJSON struct {
	Level    float64 `json:"level"`
	MeanNano int64   `json:"mean_ns"`
	Timeouts int     `json:"timeouts"`
	Count    int     `json:"count"`
}

// WriteJSON emits the aggregated figure (series of per-level means with
// timeout counts, preprocessing times, achieved balances) as indented
// JSON. Raw per-pair measurements are the CSV's job; this is the plotted
// shape.
func (f *Figure) WriteJSON(w io.Writer) error {
	out := figureJSON{Title: f.Title, XLabel: f.XLabel}
	for _, s := range f.Series {
		sj := seriesJSON{Scheme: s.Scheme.String()}
		for _, p := range s.Points {
			sj.Points = append(sj.Points, pointJSON{
				Level:    p.Level,
				MeanNano: p.Mean.Nanoseconds(),
				Timeouts: p.Timeouts,
				Count:    p.Count,
			})
		}
		out.Series = append(out.Series, sj)
	}
	for _, p := range f.PrepTimes {
		out.PrepNanos = append(out.PrepNanos, p.Nanoseconds())
	}
	out.Balances = f.Balances
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
