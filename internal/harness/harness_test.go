package harness

import (
	"strings"
	"testing"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/scenario"
)

func testLab(t *testing.T) *scenario.Lab {
	t.Helper()
	cfg := scenario.DefaultConfig()
	cfg.ScaleFactor = 0.0002
	cfg.QueriesPerJoin = 1
	cfg.DQGIterations = 20
	l, err := scenario.NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Opts.Eps = 0.25
	cfg.Opts.Delta = 0.3
	cfg.Timeout = 5 * time.Second
	return cfg
}

func TestRunNoiseFigure(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0, 1, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunNoise(w, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4 schemes", len(fig.Series))
	}
	if got := fig.Levels(); len(got) != 2 || got[0] != 20 || got[1] != 60 {
		t.Fatalf("levels = %v", got)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Count != 1 {
				t.Fatalf("point count = %d", p.Count)
			}
			if p.Mean <= 0 {
				t.Fatalf("%v mean = %v", s.Scheme, p.Mean)
			}
		}
	}
	if len(fig.PrepTimes) != len(w.Pairs) {
		t.Fatal("prep times not recorded per pair")
	}
	if len(fig.Raw) != len(w.Pairs)*4 {
		t.Fatalf("raw = %d", len(fig.Raw))
	}
}

func TestRunBalanceFigure(t *testing.T) {
	l := testLab(t)
	w, err := l.BalanceScenario(0.4, 1, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunBalance(w, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := fig.Levels(); len(got) != 2 || got[0] != 0 || got[1] != 100 {
		t.Fatalf("levels = %v", got)
	}
	if fig.XLabel != "Balance (%)" {
		t.Fatalf("xlabel = %q", fig.XLabel)
	}
}

func TestRunJoinsAndShares(t *testing.T) {
	l := testLab(t)
	w, err := l.JoinsScenario(0.4, 0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunJoins(w, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range fig.Levels() {
		shares := fig.SharesAt(lv)
		var total float64
		for _, v := range shares {
			total += v
		}
		if total < 99.9 || total > 100.1 {
			t.Fatalf("shares at %v sum to %v", lv, total)
		}
	}
	tbl := fig.ShareTable()
	if !strings.Contains(tbl, "Natural") || !strings.Contains(tbl, "%") {
		t.Fatalf("share table:\n%s", tbl)
	}
}

func TestTimeoutsAreReported(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0, 1, []float64{0.6})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Opts.Budget.MaxSamples = 10 // force budget exhaustion
	fig, err := Run(w, cfg, func(p scenario.Pair) float64 { return p.Noise })
	if err != nil {
		t.Fatal(err)
	}
	sawTimeout := false
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Timeouts > 0 {
				sawTimeout = true
			}
		}
	}
	if !sawTimeout {
		t.Fatal("no timeout recorded despite tiny budget")
	}
	if !strings.Contains(fig.Table(), "TO)") {
		t.Fatalf("table misses timeout annotation:\n%s", fig.Table())
	}
}

func TestTableRendering(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0, 1, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunNoise(w, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := fig.Table()
	for _, s := range []string{"Noise[0.0, 1]", "Natural", "KL", "KLM", "Cover", "20"} {
		if !strings.Contains(tbl, s) {
			t.Fatalf("table missing %q:\n%s", s, tbl)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0, 1, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunNoise(w, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := fig.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+len(fig.Raw) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(fig.Raw))
	}
	if !strings.HasPrefix(lines[0], "figure,pair,scheme") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestPrepHistogram(t *testing.T) {
	times := []time.Duration{time.Millisecond, 2 * time.Millisecond, 2500 * time.Microsecond, 9 * time.Millisecond}
	hist := PrepHistogram(times, time.Millisecond)
	if len(hist) != 10 {
		t.Fatalf("buckets = %d", len(hist))
	}
	var sum float64
	for _, h := range hist {
		sum += h
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("histogram sums to %v", sum)
	}
	if hist[2] != 0.5 { // 2ms and 2.5ms land in bucket 2
		t.Fatalf("bucket 2 = %v", hist[2])
	}
	if PrepHistogram(nil, time.Millisecond) != nil {
		t.Fatal("empty input should give nil")
	}
	if PrepHistogram(times, 0) != nil {
		t.Fatal("zero bucket should give nil")
	}
}

func TestWinnerAndTotals(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0, 1, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunNoise(w, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	winner := fig.Winner()
	for _, s := range cqa.Schemes {
		if fig.TotalMean(winner) > fig.TotalMean(s) {
			t.Fatalf("winner %v slower than %v", winner, s)
		}
	}
	if fig.TotalMean(cqa.Scheme(99)) != 0 {
		t.Fatal("unknown scheme total should be 0")
	}
}

func TestBalanceStats(t *testing.T) {
	fig := &Figure{Balances: []float64{0.2, 0.4}}
	mean, std := fig.BalanceStats()
	if mean < 0.299 || mean > 0.301 || std <= 0.09 || std >= 0.11 {
		t.Fatalf("mean=%v std=%v", mean, std)
	}
	empty := &Figure{}
	if m, s := empty.BalanceStats(); m != 0 || s != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestValidationRun(t *testing.T) {
	l := testLab(t)
	vq := scenario.TPCHValidationQueries()[1] // Q4_H: 1 join
	w, err := scenario.ValidationScenario(l.Base(), vq, []float64{0.2, 0.4}, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Timeout = time.Second // timeouts are expected and recorded
	fig, err := RunValidation(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Levels()) != 2 {
		t.Fatalf("levels = %v", fig.Levels())
	}
	mean, _ := fig.BalanceStats()
	if mean < 0 || mean > 1 {
		t.Fatalf("balance mean = %v", mean)
	}
}
