package harness

import (
	"fmt"
	"strings"
	"time"

	"cqabench/internal/cqa"
)

// Crossover locates where scheme b overtakes scheme a along the figure's
// x-axis: the first level at which b's mean runtime drops below a's after
// a level where a was at least as fast. The paper's analysis hinges on
// such crossovers (e.g. where Natural stops winning as balance grows);
// this makes them a first-class measurement.
//
// Returns the level and true when a crossover exists; false when one
// scheme dominates throughout or the figure lacks both schemes.
func (f *Figure) Crossover(a, b cqa.Scheme) (float64, bool) {
	pa := f.seriesPoints(a)
	pb := f.seriesPoints(b)
	if pa == nil || pb == nil {
		return 0, false
	}
	// Align on shared levels (both series are sorted by level).
	type pairPoint struct {
		level  float64
		ma, mb time.Duration
	}
	var pts []pairPoint
	for _, x := range pa {
		for _, y := range pb {
			if x.Level == y.Level {
				pts = append(pts, pairPoint{x.Level, x.Mean, y.Mean})
			}
		}
	}
	if len(pts) < 2 {
		return 0, false
	}
	seenALead := false
	for _, p := range pts {
		if p.ma <= p.mb {
			seenALead = true
			continue
		}
		if seenALead {
			return p.level, true
		}
	}
	return 0, false
}

func (f *Figure) seriesPoints(s cqa.Scheme) []Point {
	for _, ser := range f.Series {
		if ser.Scheme == s {
			return ser.Points
		}
	}
	return nil
}

// WinnerAt returns the fastest scheme at one level.
func (f *Figure) WinnerAt(level float64) (cqa.Scheme, bool) {
	best := cqa.Scheme(-1)
	var bestMean time.Duration
	for _, ser := range f.Series {
		for _, p := range ser.Points {
			if p.Level == level && (best < 0 || p.Mean < bestMean) {
				best, bestMean = ser.Scheme, p.Mean
			}
		}
	}
	return best, best >= 0
}

// CrossoverSummary reports, for every ordered scheme pair, where the
// second overtakes the first — the textual companion to the figures.
func (f *Figure) CrossoverSummary() string {
	var b strings.Builder
	found := false
	for _, a := range cqa.Schemes {
		for _, c := range cqa.Schemes {
			if a == c {
				continue
			}
			if lv, ok := f.Crossover(a, c); ok {
				fmt.Fprintf(&b, "%v overtakes %v at %s %.4g\n", c, a, f.XLabel, lv)
				found = true
			}
		}
	}
	if !found {
		return "no crossovers: one ordering holds at every level\n"
	}
	return b.String()
}
