package harness

import (
	"strings"
	"testing"
	"time"

	"cqabench/internal/cqa"
)

// crossoverFigure: Natural fast then slow, KLM the reverse — the Figure 2
// shape.
func crossoverFigure() *Figure {
	return &Figure{
		Title:  "Balance[0.4, 1]",
		XLabel: "Balance (%)",
		Series: []Series{
			{Scheme: cqa.Natural, Points: []Point{
				{Level: 0, Mean: 4 * time.Millisecond},
				{Level: 25, Mean: 15 * time.Millisecond},
				{Level: 50, Mean: 450 * time.Millisecond},
				{Level: 100, Mean: 1500 * time.Millisecond},
			}},
			{Scheme: cqa.KLM, Points: []Point{
				{Level: 0, Mean: 5 * time.Second},
				{Level: 25, Mean: 6 * time.Second},
				{Level: 50, Mean: 90 * time.Millisecond},
				{Level: 100, Mean: 110 * time.Millisecond},
			}},
		},
	}
}

func TestCrossoverDetected(t *testing.T) {
	fig := crossoverFigure()
	lv, ok := fig.Crossover(cqa.Natural, cqa.KLM)
	if !ok {
		t.Fatal("crossover not found")
	}
	if lv != 50 {
		t.Fatalf("crossover at %v, want 50", lv)
	}
}

func TestCrossoverAbsentWhenDominated(t *testing.T) {
	fig := crossoverFigure()
	// KLM never gets overtaken back by Natural after leading... Natural
	// leads first, so Crossover(KLM, Natural) needs KLM to lead at some
	// level before Natural drops below it: KLM never leads before level
	// 50, and after 50 Natural never beats it again.
	if _, ok := fig.Crossover(cqa.KLM, cqa.Natural); ok {
		t.Fatal("phantom crossover")
	}
	// Unknown schemes.
	if _, ok := fig.Crossover(cqa.Cover, cqa.KL); ok {
		t.Fatal("crossover for absent series")
	}
}

func TestWinnerAt(t *testing.T) {
	fig := crossoverFigure()
	w, ok := fig.WinnerAt(0)
	if !ok || w != cqa.Natural {
		t.Fatalf("winner at 0 = %v", w)
	}
	w, ok = fig.WinnerAt(100)
	if !ok || w != cqa.KLM {
		t.Fatalf("winner at 100 = %v", w)
	}
	if _, ok := fig.WinnerAt(999); ok {
		t.Fatal("winner at absent level")
	}
}

func TestCrossoverSummary(t *testing.T) {
	fig := crossoverFigure()
	s := fig.CrossoverSummary()
	if !strings.Contains(s, "KLM overtakes Natural at Balance (%) 50") {
		t.Fatalf("summary:\n%s", s)
	}
	flat := &Figure{Series: []Series{{Scheme: cqa.KL, Points: []Point{{Level: 1, Mean: time.Second}}}}}
	if !strings.Contains(flat.CrossoverSummary(), "no crossovers") {
		t.Fatal("flat summary wrong")
	}
}

// End-to-end: the balance-scenario crossover the paper's Figure 2 shows
// must be detected on real measurements.
func TestCrossoverOnRealBalanceScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full scenario")
	}
	l := testLab(t)
	w, err := l.BalanceScenario(0.5, 1, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Timeout = 6 * time.Second
	fig, err := RunBalance(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lv, ok := fig.Crossover(cqa.Natural, cqa.KLM)
	if !ok {
		t.Fatalf("no Natural→KLM crossover detected:\n%s", fig.Table())
	}
	if lv <= 0 || lv > 100 {
		t.Fatalf("crossover at %v", lv)
	}
}
