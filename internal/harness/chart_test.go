package harness

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cqabench/internal/cqa"
)

func syntheticFigure() *Figure {
	return &Figure{
		Title:  "Noise[0.0, 1]",
		XLabel: "Noise (%)",
		Series: []Series{
			{Scheme: cqa.Natural, Points: []Point{
				{Level: 20, Mean: 2 * time.Millisecond, Count: 1},
				{Level: 60, Mean: 3 * time.Millisecond, Count: 1},
			}},
			{Scheme: cqa.KL, Points: []Point{
				{Level: 20, Mean: 2 * time.Second, Count: 1},
				{Level: 60, Mean: 4 * time.Second, Count: 1},
			}},
		},
	}
}

func TestChartRenders(t *testing.T) {
	fig := syntheticFigure()
	chart := fig.Chart(40, 10)
	for _, want := range []string{"Noise[0.0, 1]", "N=Natural", "K=KL", "Noise (%)", "|", "+"} {
		if !strings.Contains(chart, want) {
			t.Fatalf("chart missing %q:\n%s", want, chart)
		}
	}
	// Natural (ms) must appear below KL (s) on the log axis: find rows.
	lines := strings.Split(chart, "\n")
	rowOf := func(sym byte) int {
		for i, l := range lines {
			if idx := strings.IndexByte(l, '|'); idx >= 0 && strings.IndexByte(l[idx:], sym) > 0 {
				return i
			}
		}
		return -1
	}
	if n, k := rowOf('N'), rowOf('K'); n <= k {
		t.Fatalf("Natural row %d should be below KL row %d:\n%s", n, k, chart)
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	fig := syntheticFigure()
	chart := fig.Chart(1, 1) // clamped to minimums
	if len(strings.Split(chart, "\n")) < 8 {
		t.Fatalf("chart too small:\n%s", chart)
	}
}

func TestChartEmpty(t *testing.T) {
	fig := &Figure{Title: "empty"}
	if got := fig.Chart(40, 10); !strings.Contains(got, "no data") {
		t.Fatalf("empty chart = %q", got)
	}
	zero := &Figure{Title: "zeros", Series: []Series{{Scheme: cqa.KL, Points: []Point{{Level: 1, Mean: 0}}}}}
	if got := zero.Chart(40, 10); !strings.Contains(got, "no data") {
		t.Fatalf("zero chart = %q", got)
	}
}

func TestChartSingleLevel(t *testing.T) {
	fig := &Figure{
		Title:  "one",
		XLabel: "x",
		Series: []Series{{Scheme: cqa.Cover, Points: []Point{{Level: 5, Mean: time.Millisecond}}}},
	}
	chart := fig.Chart(40, 10)
	if !strings.Contains(chart, "C=Cover") {
		t.Fatalf("chart:\n%s", chart)
	}
}

func TestWriteJSON(t *testing.T) {
	fig := syntheticFigure()
	fig.Balances = []float64{0.5}
	var b strings.Builder
	if err := fig.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if decoded["title"] != "Noise[0.0, 1]" {
		t.Fatalf("title = %v", decoded["title"])
	}
	series, ok := decoded["series"].([]any)
	if !ok || len(series) != 2 {
		t.Fatalf("series = %v", decoded["series"])
	}
	first := series[0].(map[string]any)
	if first["scheme"] != "Natural" {
		t.Fatalf("scheme = %v", first["scheme"])
	}
}
