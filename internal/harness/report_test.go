package harness

import (
	"strings"
	"testing"
	"time"
)

func TestWriteReport(t *testing.T) {
	l := testLab(t)
	cfg := ReportConfig{
		Harness:       fastConfig(),
		NoiseLevels:   []float64{0.4},
		BalanceLevels: []float64{0, 1},
		JoinLevels:    []int{1},
		FixedBalances: []float64{0},
		FixedNoise:    0.4,
		FixedJoins:    []int{1},
		Charts:        true,
	}
	cfg.Harness.Timeout = 4 * time.Second
	var b strings.Builder
	if err := WriteReport(&b, l, cfg); err != nil {
		t.Fatal(err)
	}
	rep := b.String()
	for _, want := range []string{
		"# cqabench report",
		"## Noise[0.0, 1]",
		"## Balance[0.4, 1]",
		"## Joins[0.4, 0.0]",
		"winner:",
		"## Preprocessing",
		"log time;", // chart embedded
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep[:min(len(rep), 2000)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
