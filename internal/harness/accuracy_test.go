package harness

import (
	"strings"
	"testing"
	"time"

	"cqabench/internal/cqa"
)

func TestAccuracyAudit(t *testing.T) {
	l := testLab(t)
	w, err := l.BalanceScenario(0.4, 1, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Timeout = 10 * time.Second
	rep, err := Accuracy(w, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schemes) != 4 {
		t.Fatalf("schemes = %d", len(rep.Schemes))
	}
	for _, s := range rep.Schemes {
		if s.Tuples == 0 {
			t.Fatalf("%v: nothing audited", s.Scheme)
		}
		// The guarantee is >= 1-delta; empirically the estimators do far
		// better, but allow slack for the audit's small sample.
		if s.SuccessRate() < 1-cfg.Opts.Delta-0.15 {
			t.Fatalf("%v: within-eps rate %.2f violates guarantee band", s.Scheme, s.SuccessRate())
		}
		if s.MeanRelErr > s.MaxRelErr {
			t.Fatalf("%v: mean > max", s.Scheme)
		}
	}
	tbl := rep.Table()
	for _, want := range []string{"Accuracy audit", "Natural", "within-eps"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestAccuracyEmptyWorkload(t *testing.T) {
	l := testLab(t)
	w, err := l.BalanceScenario(0.4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Accuracy(w, fastConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Schemes {
		if s.Tuples != 0 || s.SuccessRate() != 1 {
			t.Fatalf("empty workload produced audits: %+v", s)
		}
	}
}

func TestSchemeAccuracySuccessRate(t *testing.T) {
	s := SchemeAccuracy{Scheme: cqa.KL, Tuples: 10, WithinEps: 9}
	if s.SuccessRate() != 0.9 {
		t.Fatalf("rate = %v", s.SuccessRate())
	}
}
