package harness

import (
	"reflect"
	"testing"

	"cqabench/internal/cqa"
	"cqabench/internal/obs"
	"cqabench/internal/syncache"
	"cqabench/internal/synopsis"
)

func counterValue(name string) int64 { return obs.Default().Counter(name).Value() }

// TestWarmRunEqualsCold is the cache's core guarantee: a warm run loads
// every synopsis instead of building it and produces exactly the same
// measurements (samples, tuples) as the cold run that populated the
// cache, because the codec round trip is lossless and estimation is
// deterministic for a fixed seed.
func TestWarmRunEqualsCold(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0, 1, []float64{0.2, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if w.Fingerprint == "" {
		t.Fatal("lab workload carries no fingerprint; caching would be disabled")
	}
	cache, err := syncache.Open(t.TempDir(), syncache.ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Cache = cache
	cfg.BuildWorkers = 4

	stores0, builds0 := counterValue("syncache_stores_total"), counterValue("synopsis_builds_total")
	cold, err := RunNoise(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue("syncache_stores_total") - stores0; got != int64(len(w.Pairs)) {
		t.Fatalf("cold run stored %d synopses, want %d", got, len(w.Pairs))
	}
	if got := counterValue("synopsis_builds_total") - builds0; got != int64(len(w.Pairs)) {
		t.Fatalf("cold run built %d synopses, want %d", got, len(w.Pairs))
	}
	for _, m := range cold.Raw {
		if m.PrepSource != "build" {
			t.Fatalf("cold %s/%s prep source = %q, want build", m.Pair, m.Scheme, m.PrepSource)
		}
	}

	hits0, builds0 := counterValue("syncache_hits_total"), counterValue("synopsis_builds_total")
	warm, err := RunNoise(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue("syncache_hits_total") - hits0; got != int64(len(w.Pairs)) {
		t.Fatalf("warm run hit %d times, want %d", got, len(w.Pairs))
	}
	if got := counterValue("synopsis_builds_total") - builds0; got != 0 {
		t.Fatalf("warm run built %d synopses, want 0", got)
	}
	for _, m := range warm.Raw {
		if m.PrepSource != "load" {
			t.Fatalf("warm %s/%s prep source = %q, want load", m.Pair, m.Scheme, m.PrepSource)
		}
	}

	if len(warm.Raw) != len(cold.Raw) {
		t.Fatalf("raw counts differ: warm %d, cold %d", len(warm.Raw), len(cold.Raw))
	}
	for i := range cold.Raw {
		c, h := cold.Raw[i], warm.Raw[i]
		if c.Pair != h.Pair || c.Scheme != h.Scheme {
			t.Fatalf("measurement order differs at %d: %s/%s vs %s/%s", i, c.Pair, c.Scheme, h.Pair, h.Scheme)
		}
		if c.Samples != h.Samples || c.Tuples != h.Tuples {
			t.Errorf("%s/%s: warm (samples=%d tuples=%d) != cold (samples=%d tuples=%d)",
				c.Pair, c.Scheme, h.Samples, h.Tuples, c.Samples, c.Tuples)
		}
	}
}

// TestLoadedSynopsisMatchesBuilt checks the stronger structural
// property behind warm == cold: the decoded synopsis is DeepEqual to
// the built one, and estimation over it yields identical answers.
func TestLoadedSynopsisMatchesBuilt(t *testing.T) {
	l := testLab(t)
	w, err := l.NoiseScenario(0, 1, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := syncache.Open(t.TempDir(), syncache.ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range w.Pairs {
		built, err := synopsis.Build(pair.DB, pair.Query)
		if err != nil {
			t.Fatal(err)
		}
		key := syncache.PairKey(w, pair)
		if err := cache.Put(key, built); err != nil {
			t.Fatal(err)
		}
		loaded, ok := cache.Get(key)
		if !ok {
			t.Fatalf("%s: miss after Put", pair.Name)
		}
		if !reflect.DeepEqual(loaded, built) {
			t.Fatalf("%s: loaded synopsis differs from built", pair.Name)
		}
		opts := cqa.Options{Eps: 0.25, Delta: 0.3, Seed: 5489}
		wantAns, wantStats, err := cqa.ApxAnswersFromSet(built, cqa.KLM, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotAns, gotStats, err := cqa.ApxAnswersFromSet(loaded, cqa.KLM, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotAns, wantAns) || gotStats.Samples != wantStats.Samples {
			t.Fatalf("%s: estimation over loaded synopsis differs", pair.Name)
		}
	}
}
