package harness

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/scenario"
	"cqabench/internal/synopsis"
)

// AccuracyReport audits the (ε, δ) guarantee empirically: per scheme, it
// compares every approximate relative frequency against the exact value
// (by component-decomposed inclusion–exclusion) and aggregates error
// statistics. The paper takes the guarantee from [8, 15]; this report is
// the infrastructure for checking implementations against it — one of the
// benchmark's declared uses ("evaluating algorithms that target the exact
// relative frequency").
type AccuracyReport struct {
	Eps, Delta float64
	Schemes    []SchemeAccuracy
	// SkippedTuples counts tuples whose exact frequency was intractable
	// (entangled component too large) and were excluded from the audit.
	SkippedTuples int
}

// SchemeAccuracy aggregates one scheme's empirical error behaviour.
type SchemeAccuracy struct {
	Scheme cqa.Scheme
	// Tuples audited.
	Tuples int
	// WithinEps counts estimates with |a − f| ≤ ε·f.
	WithinEps int
	// MaxRelErr and MeanRelErr summarize |a − f| / f over audited tuples
	// with f > 0.
	MaxRelErr  float64
	MeanRelErr float64
}

// SuccessRate returns the fraction of audited tuples within the ε band;
// the guarantee demands at least 1 − δ.
func (s SchemeAccuracy) SuccessRate() float64 {
	if s.Tuples == 0 {
		return 1
	}
	return float64(s.WithinEps) / float64(s.Tuples)
}

// Accuracy runs every configured scheme over the workload's synopses and
// audits each estimate against the exact relative frequency. maxImages
// bounds the exact computation per entangled component (0 = default).
func Accuracy(w *scenario.Workload, cfg Config, maxImages int) (*AccuracyReport, error) {
	schemes := cfg.Schemes
	if len(schemes) == 0 {
		schemes = cqa.Schemes
	}
	rep := &AccuracyReport{Eps: cfg.Opts.Eps, Delta: cfg.Opts.Delta}
	acc := make(map[cqa.Scheme]*SchemeAccuracy, len(schemes))
	for _, s := range schemes {
		acc[s] = &SchemeAccuracy{Scheme: s}
	}
	for _, pair := range w.Pairs {
		set, err := synopsis.Build(pair.DB, pair.Query)
		if err != nil {
			return nil, err
		}
		exact := make([]float64, len(set.Entries))
		audit := make([]bool, len(set.Entries))
		for i := range set.Entries {
			r, err := set.Entries[i].Pair.ExactRatioDecomposed(maxImages)
			if err != nil {
				if errors.Is(err, synopsis.ErrTooLarge) {
					rep.SkippedTuples++
					continue
				}
				return nil, err
			}
			exact[i], audit[i] = r, true
		}
		for _, s := range schemes {
			opts := cfg.Opts
			if cfg.Timeout > 0 {
				opts.Budget.Deadline = time.Now().Add(cfg.Timeout)
			}
			res, _, err := cqa.ApxAnswersFromSet(set, s, opts)
			if err != nil {
				// Timeouts leave this pair unaudited for the scheme.
				continue
			}
			a := acc[s]
			for i, tf := range res {
				if !audit[i] || exact[i] <= 0 {
					continue
				}
				relErr := math.Abs(tf.Freq-exact[i]) / exact[i]
				a.Tuples++
				a.MeanRelErr += relErr
				if relErr > a.MaxRelErr {
					a.MaxRelErr = relErr
				}
				if relErr <= cfg.Opts.Eps+1e-12 {
					a.WithinEps++
				}
			}
		}
	}
	for _, s := range schemes {
		a := acc[s]
		if a.Tuples > 0 {
			a.MeanRelErr /= float64(a.Tuples)
		}
		rep.Schemes = append(rep.Schemes, *a)
	}
	sort.Slice(rep.Schemes, func(i, j int) bool { return rep.Schemes[i].Scheme < rep.Schemes[j].Scheme })
	return rep, nil
}

// Table renders the accuracy audit.
func (r *AccuracyReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Accuracy audit (eps=%.2f, delta=%.2f; guarantee: within-eps rate >= %.2f)\n",
		r.Eps, r.Delta, 1-r.Delta)
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %12s\n", "scheme", "tuples", "within-eps", "mean relerr", "max relerr")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, "%-8s %8d %11.1f%% %12.4f %12.4f\n",
			s.Scheme, s.Tuples, 100*s.SuccessRate(), s.MeanRelErr, s.MaxRelErr)
	}
	if r.SkippedTuples > 0 {
		fmt.Fprintf(&b, "(%d tuples skipped: exact frequency intractable)\n", r.SkippedTuples)
	}
	return b.String()
}
