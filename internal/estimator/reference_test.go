package estimator

import (
	"errors"
	"math"
	"testing"

	"cqabench/internal/mt"
	"cqabench/internal/sampler"
	"cqabench/internal/synopsis"
)

// This file pins the batched estimation loops to the unbatched originals:
// seqStoppingRule, seqMonteCarlo and seqFixedSamples are verbatim copies
// of the one-sample-at-a-time loops the batched versions replaced. For
// any sampler and budget, the batched loops must return byte-identical
// estimates, sample counts, phase breakdowns and errors.

func seqStoppingRule(s Sampler, eps, delta float64, src *mt.Source, budget Budget) (Result, error) {
	bt := &budgetTracker{budget: budget}
	upsilon1 := 1 + (1+eps)*upsilon(eps, delta)
	sum := 0.0
	var n int64
	for sum < upsilon1 {
		if err := bt.charge(1); err != nil {
			return Result{Samples: bt.samples}, err
		}
		sum += s.Sample(src)
		n++
	}
	return Result{Estimate: upsilon1 / float64(n), Samples: bt.samples}, nil
}

func seqMonteCarlo(s Sampler, eps, delta float64, src *mt.Source, budget Budget) (Result, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return Result{}, errors.New("estimator: require 0 < eps < 1 and 0 < delta < 1")
	}
	bt := &budgetTracker{budget: budget}

	eps1 := math.Min(0.5, math.Sqrt(eps))
	sub := budget
	r1, err := seqStoppingRule(s, eps1, delta/3, src, sub)
	bt.samples = r1.Samples
	if err != nil {
		return Result{Samples: bt.samples}, err
	}
	muHat := r1.Estimate

	phase1 := bt.samples

	ups := upsilon(eps, delta/3)
	ups2 := 2 * (1 + math.Sqrt(eps)) * (1 + 2*math.Sqrt(eps)) *
		(1 + math.Log(1.5)/math.Log(2/(delta/3))) * ups
	n2 := int64(math.Ceil(ups2 * eps / muHat))
	if n2 < 1 {
		n2 = 1
	}
	var sq float64
	for i := int64(0); i < n2; i++ {
		if err := bt.charge(2); err != nil {
			return Result{Samples: bt.samples}, err
		}
		a := s.Sample(src)
		b := s.Sample(src)
		d := a - b
		sq += d * d / 2
	}
	rhoHat := math.Max(sq/float64(n2), eps*muHat)
	phase2 := bt.samples - phase1

	n3 := int64(math.Ceil(ups2 * rhoHat / (muHat * muHat)))
	if n3 < 1 {
		n3 = 1
	}
	var sum float64
	for i := int64(0); i < n3; i++ {
		if err := bt.charge(1); err != nil {
			return Result{Samples: bt.samples}, err
		}
		sum += s.Sample(src)
	}
	return Result{
		Estimate: sum / float64(n3),
		Samples:  bt.samples,
		Phases:   [3]int64{phase1, phase2, bt.samples - phase1 - phase2},
	}, nil
}

func seqFixedSamples(s Sampler, eps, delta, meanLB float64, src *mt.Source, budget Budget) (Result, error) {
	if meanLB <= 0 {
		return Result{}, errors.New("estimator: FixedSamples requires a positive mean lower bound")
	}
	bt := &budgetTracker{budget: budget}
	n := int64(math.Ceil(upsilon(eps, delta) / meanLB))
	if n < 1 {
		n = 1
	}
	var sum float64
	for i := int64(0); i < n; i++ {
		if err := bt.charge(1); err != nil {
			return Result{Samples: bt.samples}, err
		}
		sum += s.Sample(src)
	}
	return Result{Estimate: sum / float64(n), Samples: bt.samples}, nil
}

// refPair builds a small admissible pair exercising all samplers.
func refPair() *synopsis.Admissible {
	pair := &synopsis.Admissible{
		BlockSizes: []int32{2, 3, 2},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 0}, {Block: 1, Fact: 1}},
			{{Block: 1, Fact: 2}, {Block: 2, Fact: 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}

// refOneBlock is the degenerate single-block shape.
func refOneBlock() *synopsis.Admissible {
	pair := &synopsis.Admissible{
		BlockSizes: []int32{4},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 1}},
			{{Block: 0, Fact: 3}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}

// refOneImage is the degenerate single-image shape (every KL sample is 1).
func refOneImage() *synopsis.Admissible {
	pair := &synopsis.Admissible{
		BlockSizes: []int32{3, 3, 3},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}, {Block: 1, Fact: 1}, {Block: 2, Fact: 2}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		panic(err)
	}
	return pair
}

// refSamplers enumerates every kernel over a pair.
func refSamplers(pair *synopsis.Admissible) map[string]func() Sampler {
	return map[string]func() Sampler{
		"Natural":        func() Sampler { return sampler.NewNatural(pair) },
		"NaturalIndexed": func() Sampler { return sampler.NewNaturalIndexed(pair) },
		"KL":             func() Sampler { return sampler.NewKL(pair) },
		"KLIndexed":      func() Sampler { return sampler.NewKLIndexed(pair) },
		"KLM":            func() Sampler { return sampler.NewKLM(pair) },
		"KLMIndexed":     func() Sampler { return sampler.NewKLMIndexed(pair) },
	}
}

func sameResult(t *testing.T, tag string, seq, bat Result, seqErr, batErr error) {
	t.Helper()
	if (seqErr == nil) != (batErr == nil) {
		t.Fatalf("%s: errors differ: sequential %v vs batched %v", tag, seqErr, batErr)
	}
	if seqErr != nil && !errors.Is(batErr, ErrBudget) {
		t.Fatalf("%s: batched error %v does not wrap ErrBudget", tag, batErr)
	}
	if math.Float64bits(seq.Estimate) != math.Float64bits(bat.Estimate) {
		t.Fatalf("%s: estimates differ: %x vs %x (%v vs %v)", tag,
			math.Float64bits(seq.Estimate), math.Float64bits(bat.Estimate), seq.Estimate, bat.Estimate)
	}
	if seq.Samples != bat.Samples {
		t.Fatalf("%s: sample counts differ: %d vs %d", tag, seq.Samples, bat.Samples)
	}
	if seq.Phases != bat.Phases {
		t.Fatalf("%s: phase breakdowns differ: %v vs %v", tag, seq.Phases, bat.Phases)
	}
}

// TestBatchedLoopsMatchSequential is the core equivalence property: for
// every kernel, shape (including one-block and one-image degenerates),
// seed, and budget (including exhaustion mid-phase), the batched
// estimators return byte-identical results to the sequential reference.
func TestBatchedLoopsMatchSequential(t *testing.T) {
	pairs := map[string]*synopsis.Admissible{
		"small":     refPair(),
		"one-block": refOneBlock(),
		"one-image": refOneImage(),
	}
	seeds := []uint64{1, 42, mt.DefaultSeed}
	// 0 = unlimited; the small values force exhaustion in phase 1; the
	// mid-range ones inside phases 2 and 3 of MonteCarlo.
	budgets := []int64{0, 1, 37, 500, 5000, 20000}
	for pname, pair := range pairs {
		for sname, mk := range refSamplers(pair) {
			for _, seed := range seeds {
				for _, max := range budgets {
					budget := Budget{MaxSamples: max}
					tag := pname + "/" + sname

					seq, seqErr := seqStoppingRule(mk(), 0.3, 0.2, mt.New(seed), budget)
					bat, batErr := StoppingRule(mk(), 0.3, 0.2, mt.New(seed), budget)
					sameResult(t, tag+"/StoppingRule", seq, bat, seqErr, batErr)

					seq, seqErr = seqMonteCarlo(mk(), 0.25, 0.3, mt.New(seed), budget)
					bat, batErr = MonteCarlo(mk(), 0.25, 0.3, mt.New(seed), budget)
					sameResult(t, tag+"/MonteCarlo", seq, bat, seqErr, batErr)

					seq, seqErr = seqFixedSamples(mk(), 0.3, 0.3, 0.05, mt.New(seed), budget)
					bat, batErr = FixedSamples(mk(), 0.3, 0.3, 0.05, mt.New(seed), budget)
					sameResult(t, tag+"/FixedSamples", seq, bat, seqErr, batErr)
				}
			}
		}
	}
}

// TestBatchedFallbackSampler pins the non-batch-capable path: a Sampler
// that does not implement BatchSampler must go through the Sample-loop
// fallback and still match the sequential reference exactly.
type plainOnly struct{ s Sampler }

func (p plainOnly) Sample(src *mt.Source) float64 { return p.s.Sample(src) }

func TestBatchedFallbackSampler(t *testing.T) {
	pair := refPair()
	for _, max := range []int64{0, 37, 5000} {
		budget := Budget{MaxSamples: max}
		seq, seqErr := seqMonteCarlo(plainOnly{sampler.NewKL(pair)}, 0.25, 0.3, mt.New(7), budget)
		bat, batErr := MonteCarlo(plainOnly{sampler.NewKL(pair)}, 0.25, 0.3, mt.New(7), budget)
		sameResult(t, "fallback/MonteCarlo", seq, bat, seqErr, batErr)
	}
}

// TestReserveAccounting pins reserve()'s failure accounting to charge()'s:
// exhaustion must leave samples exactly one unit past MaxSamples.
func TestReserveAccounting(t *testing.T) {
	for _, unit := range []int64{1, 2} {
		bt := &budgetTracker{budget: Budget{MaxSamples: 10}}
		var total int64
		for {
			got, err := bt.reserve(4, unit)
			if err != nil {
				break
			}
			total += got
		}
		if want := 10 / unit; total != int64(want) {
			t.Fatalf("unit %d: granted %d iterations, want %d", unit, total, want)
		}
		if bt.samples != 10/unit*unit+unit {
			t.Fatalf("unit %d: failure left samples=%d, want %d", unit, bt.samples, 10/unit*unit+unit)
		}
	}
}
