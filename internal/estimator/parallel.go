package estimator

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"cqabench/internal/mt"
)

// Deterministic intra-query parallel sampling.
//
// The sequential estimators consume one MT19937-64 stream; paralleling
// that stream directly would make results depend on goroutine timing.
// Instead, the parallel path splits the draw supply into batchSize-draw
// chunks and derives an independent substream per chunk via
// mt.Substream(seed, chunkIdx) (SeedBySlice over the two-word key — see
// internal/mt/substream.go). Chunk k's 256 values are a pure function
// of (seed, k), so any worker may compute any chunk in any order; the
// consumer folds chunks back strictly by index. The estimation loops
// (stoppingRuleLoop, monteCarloLoop, fixedSamplesLoop) run unchanged on
// top, so budget-exhaustion accounting, cancellation polling and
// convergence-recorder points are preserved chunk-for-chunk.
//
// Determinism contract (pinned by TestParallelWorkerInvariance and the
// parallel golden fixture in internal/cqa):
//
//   - For a fixed seed, the parallel estimate is byte-identical across
//     runs AND across worker counts — workers only change wall-clock
//     time, never the draw schedule.
//   - The parallel draw schedule is a different (substream-keyed)
//     stream than the sequential one, so parallel estimates differ from
//     sequential estimates for the same seed. Sequential callers are
//     untouched: the pre-existing golden fixtures pin their stream.

// Parallel configures the parallel draw supply for one estimation run.
type Parallel struct {
	// Seed is the root seed; chunk k draws from mt.Substream(Seed, k).
	Seed uint64
	// Workers is the pool size (≥ 1). It affects wall-clock time only:
	// the result is identical for every worker count.
	Workers int
	// NewSampler builds one sampler per worker. Samplers are stateful
	// (scratch buffers), so each worker needs its own instance; the
	// factory must produce samplers that draw identically.
	NewSampler func() Sampler
}

func (p Parallel) validate() error {
	if p.Workers < 1 {
		return fmt.Errorf("estimator: parallel sampling requires at least 1 worker, got %d: %w", p.Workers, ErrInvalidOptions)
	}
	if p.NewSampler == nil {
		return fmt.Errorf("estimator: parallel sampling requires a sampler factory: %w", ErrInvalidOptions)
	}
	return nil
}

// StoppingRuleParallel is StoppingRuleContext drawing from seed-derived
// per-chunk substreams computed by a worker pool. See the package-level
// determinism contract above.
func StoppingRuleParallel(ctx context.Context, p Parallel, eps, delta float64, budget Budget) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cs := newChunkScheduler(ctx, p)
	defer cs.stop()
	bt := &budgetTracker{budget: budget, ctx: trackerCtx(ctx)}
	res, err := stoppingRuleLoop(ctx, cs, eps, delta, bt)
	res.Chunks = cs.chunks
	return res, err
}

// MonteCarloParallel is MonteCarloContext drawing from seed-derived
// per-chunk substreams computed by a worker pool: the 𝒜𝒜 phases share
// one chunked stream, exactly as the sequential phases share one
// source.
func MonteCarloParallel(ctx context.Context, p Parallel, eps, delta float64, budget Budget) (Result, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return Result{}, fmt.Errorf("estimator: require 0 < eps < 1 and 0 < delta < 1: %w", ErrInvalidOptions)
	}
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cs := newChunkScheduler(ctx, p)
	defer cs.stop()
	res, err := monteCarloLoop(ctx, cs, eps, delta, budget)
	res.Chunks = cs.chunks
	return res, err
}

// FixedSamplesParallel is FixedSamplesContext drawing from seed-derived
// per-chunk substreams computed by a worker pool.
func FixedSamplesParallel(ctx context.Context, p Parallel, eps, delta, meanLB float64, budget Budget) (Result, error) {
	if meanLB <= 0 {
		return Result{}, fmt.Errorf("estimator: FixedSamples requires a positive mean lower bound: %w", ErrInvalidOptions)
	}
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cs := newChunkScheduler(ctx, p)
	defer cs.stop()
	res, err := fixedSamplesLoop(ctx, cs, eps, delta, meanLB, budget)
	res.Chunks = cs.chunks
	return res, err
}

// parChunk is one computed chunk in flight from a worker to the
// consumer.
type parChunk struct {
	idx  int64
	vals []float64
}

// chunkScheduler is the parallel drawStream: a pool of workers claims
// chunk indices from an atomic counter, computes each chunk from its
// own substream, and sends it to the consumer, which reassembles chunks
// strictly in index order. Speculation is bounded: a worker holds at
// most one computed chunk while the results channel (capacity =
// workers) is full, so at most ~2×workers chunks exist beyond the
// consumer's position and the wasted work on early termination is
// bounded by the same amount.
//
// fill is called from exactly one goroutine (the estimation loop);
// only claim, results and quit are shared with workers.
type chunkScheduler struct {
	ctx     context.Context // nil when never-canceled (trackerCtx)
	quit    chan struct{}
	results chan parChunk
	claim   atomic.Int64
	wg      sync.WaitGroup
	pool    sync.Pool

	// Consumer-side reassembly state.
	pending map[int64][]float64 // out-of-order chunks awaiting their turn
	next    int64               // next chunk index to hand to the loop
	cur     []float64           // chunk currently being consumed
	curOff  int
	curReal bool // cur came from the pool (recycle when done)
	out     []float64
	zeros   []float64 // served after cancellation; see advance
	chunks  int64     // chunks consumed, for Result.Chunks
}

func newChunkScheduler(ctx context.Context, p Parallel) *chunkScheduler {
	cs := &chunkScheduler{
		ctx:     trackerCtx(ctx),
		quit:    make(chan struct{}),
		results: make(chan parChunk, p.Workers),
		pending: make(map[int64][]float64),
		out:     make([]float64, batchSize),
	}
	cs.pool.New = func() any { return make([]float64, batchSize) }
	for w := 0; w < p.Workers; w++ {
		cs.wg.Add(1)
		go cs.worker(p)
	}
	return cs
}

func (cs *chunkScheduler) worker(p Parallel) {
	defer cs.wg.Done()
	s := p.NewSampler()
	bs, _ := s.(BatchSampler)
	src := new(mt.Source)
	for {
		select {
		case <-cs.quit:
			return
		default:
		}
		if cs.ctx != nil && cs.ctx.Err() != nil {
			return
		}
		k := cs.claim.Add(1) - 1
		src.Substream(p.Seed, uint64(k))
		vals := cs.pool.Get().([]float64)
		if bs != nil {
			bs.SampleBatch(src, vals)
		} else {
			for i := range vals {
				vals[i] = s.Sample(src)
			}
		}
		select {
		case cs.results <- parChunk{idx: k, vals: vals}:
		case <-cs.quit:
			return
		}
	}
}

// fill returns the next n draws (n ≤ batchSize) of the chunk-ordered
// stream, spanning chunk boundaries as needed.
func (cs *chunkScheduler) fill(n int) []float64 {
	dst := cs.out[:n]
	filled := 0
	for filled < n {
		if cs.curOff == len(cs.cur) {
			cs.advance()
		}
		c := copy(dst[filled:], cs.cur[cs.curOff:])
		filled += c
		cs.curOff += c
	}
	return dst
}

// advance installs chunk cs.next as the current chunk, receiving and
// parking out-of-order chunks until it arrives. After cancellation the
// pool may never produce the next in-order chunk, so advance serves a
// zero chunk instead: samples in [0,1] keep every estimation loop
// well-defined on zeros, and the loop's next reserve() call polls the
// context and aborts with the cancellation error. Draw values after the
// cancellation point are therefore never observable in a successful
// Result.
func (cs *chunkScheduler) advance() {
	if cs.curReal {
		cs.pool.Put(cs.cur[:batchSize])
		cs.curReal = false
	}
	for {
		if vals, ok := cs.pending[cs.next]; ok {
			delete(cs.pending, cs.next)
			cs.next++
			cs.cur, cs.curOff, cs.curReal = vals, 0, true
			cs.chunks++
			return
		}
		var done <-chan struct{}
		if cs.ctx != nil {
			done = cs.ctx.Done()
		}
		select {
		case c := <-cs.results:
			cs.pending[c.idx] = c.vals
		case <-done:
			if cs.zeros == nil {
				cs.zeros = make([]float64, batchSize)
			}
			cs.cur, cs.curOff = cs.zeros, 0
			return
		}
	}
}

// stop shuts the worker pool down and waits for it to exit. Safe to
// call exactly once, after the estimation loop has returned.
func (cs *chunkScheduler) stop() {
	close(cs.quit)
	cs.wg.Wait()
}
