package estimator

import (
	"context"
	"fmt"
	"math"

	"cqabench/internal/mt"
	"cqabench/internal/obs"
)

// SymbolicSpace is the view of the symbolic sampling space S• that the
// self-adjusting coverage algorithm needs: sampling a pair (i, I)
// uniformly, testing membership of the current I in I^j, the number of
// images, and the normalization weight |S•|/|db(B)|.
// sampler.Symbolic (and hence sampler.KL / sampler.KLM) implements it.
type SymbolicSpace interface {
	Draw(src *mt.Source) int
	InSet(j int) bool
	NumImages() int
	Weight() float64
}

// SelfAdjustingCoverage implements Algorithm 6 (the self-adjusting
// coverage algorithm of Karp, Luby and Madras [15] adapted to admissible
// pairs). It estimates the UnionOfSets quantity |∪_i I^i| and returns it
// normalized by |db(B)| — that is, it returns an (ε, δ)-estimate of
// R(H, B) directly. The normalization is folded in because |∪_i I^i| can
// exceed float64 range for large B while the ratio never can; Algorithm 5
// multiplies by 1/|db(B)| anyway.
//
// The number of inner steps is the deterministic
// N = ⌈8(1+ε)·|H|·ln(3/δ) / ((1−ε²/8)·ε²)⌉ from [15]: pessimistic but
// predictable, which is exactly the trade-off Section 4.3 discusses.
func SelfAdjustingCoverage(space SymbolicSpace, eps, delta float64, src *mt.Source, budget Budget) (Result, error) {
	return SelfAdjustingCoverageContext(context.Background(), space, eps, delta, src, budget)
}

// SelfAdjustingCoverageContext is SelfAdjustingCoverage with cooperative
// cancellation: the coverage walk charges draws one at a time, so the
// context is polled every ctxStride steps (the same latency as the
// batched loops' chunk boundaries). For a context that is never canceled
// the result is byte-identical to SelfAdjustingCoverage.
func SelfAdjustingCoverageContext(ctx context.Context, space SymbolicSpace, eps, delta float64, src *mt.Source, budget Budget) (Result, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return Result{}, fmt.Errorf("estimator: require 0 < eps < 1 and 0 < delta < 1: %w", ErrInvalidOptions)
	}
	bt := &budgetTracker{budget: budget, ctx: trackerCtx(ctx)}
	rec := RecorderFrom(ctx)
	m := space.NumImages()
	n := int64(math.Ceil(8 * (1 + eps) * float64(m) * math.Log(3/delta) /
		((1 - eps*eps/8) * eps * eps)))

	var steps, total, trials int64
outer:
	for {
		space.Draw(src)
		for {
			steps++
			if steps > n {
				break outer
			}
			if err := bt.charge(1); err != nil {
				return Result{Samples: bt.samples}, err
			}
			// The coverage walk charges one draw per step, so checkpoints
			// land every ctxStride steps — the same cadence as the batched
			// loops' chunk boundaries.
			if rec != nil && steps%ctxStride == 0 {
				tr, tot := trials, total
				if tr == 0 {
					tr, tot = 1, steps
				}
				rec.observe(TrajectoryPoint{
					Samples:  bt.samples,
					Estimate: float64(tot) * space.Weight() / (float64(m) * float64(tr)),
					Progress: float64(steps) / float64(n),
					Phase:    "coverage",
				})
			}
			j := src.Intn(m)
			if space.InSet(j) {
				break
			}
		}
		total = steps
		trials++
	}
	if trials == 0 {
		// The first trial alone exceeded the step budget: the expected
		// steps per trial, m·|∪|/|S•|, is larger than N, so the union is
		// essentially all of the space; report the most conservative
		// estimate the data supports.
		total, trials = n, 1
	}
	// |∪| ≈ (total/trials) · |S•| / m; normalize by |db(B)|.
	est := float64(total) * space.Weight() / (float64(m) * float64(trials))
	if rec != nil {
		rec.final(TrajectoryPoint{
			Samples: bt.samples, Estimate: est, Progress: 1, Phase: "coverage",
		})
	}
	r := obs.Default()
	r.Counter("estimator_coverage_runs_total").Inc()
	r.Counter("estimator_coverage_steps_total").Add(bt.samples)
	r.Counter("estimator_coverage_trials_total").Add(trials)
	return Result{Estimate: est, Samples: bt.samples}, nil
}

// CoverageIterations exposes the deterministic step bound N used by
// SelfAdjustingCoverage; the harness and the balance-scenario analysis
// report it (it is linear in |H|, the fact driving Cover's runtime in
// Figures 1–2).
func CoverageIterations(numImages int, eps, delta float64) int64 {
	return int64(math.Ceil(8 * (1 + eps) * float64(numImages) * math.Log(3/delta) /
		((1 - eps*eps/8) * eps * eps)))
}
