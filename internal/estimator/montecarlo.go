// Package estimator implements the estimation layer the approximation
// schemes share (Section 4.2–4.3):
//
//   - MonteCarlo: the optimal Monte Carlo estimator of Dagum, Karp, Luby
//     and Ross [8] (their 𝒜𝒜 algorithm), which the paper calls
//     MonteCarlo[Sample] with OptEstimate[Sample] choosing the number of
//     iterations; the two are fused here, exactly as in [8].
//   - FixedSamples: a non-adaptive baseline that sizes the sample count
//     from a worst-case lower bound on the mean via the zero-one estimator
//     theorem; used by the ablation benchmarks.
//   - SelfAdjustingCoverage: Algorithm 6, the Karp–Luby–Madras
//     self-adjusting coverage algorithm [15] over the symbolic space.
//
// The sampling loops consume draws in fixed-size chunks through the
// BatchSampler fast path when the sampler supports it, with semantics
// byte-identical to one-at-a-time draws: chunk sizes are bounded so no
// loop ever draws past its sequential stopping point, so for a fixed
// seed every estimate and sample count matches the unbatched reference
// exactly (see the kernel-equivalence tests).
//
// Every entry point accepts a Budget so the harness can impose the paper's
// per-scenario timeouts.
package estimator

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"cqabench/internal/cqaerr"
	"cqabench/internal/mt"
	"cqabench/internal/obs"
)

// Sampler produces one random draw in [0, 1]. All samplers in
// internal/sampler implement it (and BatchSampler, the chunked fast
// path).
type Sampler interface {
	Sample(src *mt.Source) float64
}

// Budget bounds an estimation run. Zero values mean "unlimited".
type Budget struct {
	MaxSamples int64
	Deadline   time.Time
}

// ErrBudget is wrapped by errors returned when a budget is exhausted.
var ErrBudget = errors.New("estimator: budget exhausted")

// ErrCanceled is wrapped by errors returned when the caller's context is
// canceled or its deadline expires mid-estimation (alias of the shared
// sentinel, re-exported at the root package as cqabench.ErrCanceled).
var ErrCanceled = cqaerr.ErrCanceled

// ErrInvalidOptions is wrapped by errors rejecting malformed estimation
// parameters (ε or δ outside (0, 1)) before any sampling work starts.
var ErrInvalidOptions = cqaerr.ErrInvalidOptions

// Result reports an estimate together with the work performed.
type Result struct {
	Estimate float64
	Samples  int64 // total draws performed
	// Phases breaks Samples down for the 𝒜𝒜 algorithm: stopping rule,
	// variance estimation, final run. Zero for other estimators.
	Phases [3]int64
	// Chunks counts the substream chunks consumed by the parallel
	// sampling path (see parallel.go). Zero for sequential runs.
	Chunks int64
}

// budgetTracker meters samples against a budget, checking the wall clock
// only every deadlineStride draws. When ctx is non-nil, cancellation is
// polled at chunk boundaries (every reserve call) and, for unbatched
// unit-charge loops like the coverage walk, every ctxStride draws — so
// abort latency is about one batchSize chunk either way. The checks never
// touch the PRNG: for a run that is not canceled, every estimate, sample
// count and stream position is byte-identical to the context-free path.
type budgetTracker struct {
	budget  Budget
	ctx     context.Context // nil: no cancellation checks
	samples int64
}

const deadlineStride = 8192

// ctxStride bounds the cancellation latency of loops that charge draws
// one at a time (SelfAdjustingCoverage): the context is polled once per
// ctxStride draws, matching the batched loops' one-chunk latency.
const ctxStride = batchSize

// checkCtx reports cancellation as an error wrapping both ErrCanceled
// and the context's own sentinel.
func (b *budgetTracker) checkCtx() error {
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return fmt.Errorf("estimator: %w", cqaerr.Canceled(err))
		}
	}
	return nil
}

func (b *budgetTracker) charge(n int64) error {
	prev := b.samples
	b.samples += n
	if b.budget.MaxSamples > 0 && b.samples > b.budget.MaxSamples {
		return ErrBudget
	}
	if b.ctx != nil && prev/ctxStride != b.samples/ctxStride {
		if err := b.checkCtx(); err != nil {
			return err
		}
	}
	if !b.budget.Deadline.IsZero() && prev/deadlineStride != b.samples/deadlineStride {
		if time.Now().After(b.budget.Deadline) {
			return ErrBudget
		}
	}
	return nil
}

// reserve grants up to want further loop iterations of a sampling loop
// whose one-at-a-time form charges unit draws per iteration, and charges
// the granted draws. When not even one whole iteration fits under
// MaxSamples, it issues the single charge the sequential loop's next
// iteration would have issued, so the failure's sample accounting
// (overshooting MaxSamples by exactly one iteration) stays byte-identical
// to the unbatched reference. want must be ≥ 1.
func (b *budgetTracker) reserve(want, unit int64) (int64, error) {
	// A reserve call is a chunk boundary: poll cancellation here so an
	// aborted run stops within one in-flight chunk.
	if err := b.checkCtx(); err != nil {
		return 0, err
	}
	if max := b.budget.MaxSamples; max > 0 {
		if room := (max - b.samples) / unit; room < want {
			want = room
		}
	}
	if want < 1 {
		if err := b.charge(unit); err != nil {
			return 0, err
		}
		// Unreachable: want < 1 implies MaxSamples - samples < unit, so
		// the charge above necessarily exceeds MaxSamples.
		return 0, ErrBudget
	}
	if err := b.charge(want * unit); err != nil {
		return 0, err
	}
	return want, nil
}

const e2 = math.E - 2 // the (e-2) constant of [8]

// upsilon returns Υ = 4(e−2)·ln(2/δ)/ε², the core sample-complexity
// constant of [8].
func upsilon(eps, delta float64) float64 {
	return 4 * e2 * math.Log(2/delta) / (eps * eps)
}

// StoppingRule implements the Stopping Rule Algorithm of [8]: it draws
// samples until their running sum reaches Υ1 = 1 + (1+ε)Υ and returns
// Υ1/N, an (ε, δ)-approximation of the mean provided the mean is positive.
//
// Draws are consumed in chunks bounded by ⌊Υ1 − sum⌋: samples lie in
// [0, 1], so the running sum cannot cross Υ1 before that many further
// draws, and the crossing index always falls on a chunk's final draw.
// The chunked loop therefore draws exactly as many samples — in exactly
// the same stream order — as the one-at-a-time loop.
func StoppingRule(s Sampler, eps, delta float64, src *mt.Source, budget Budget) (Result, error) {
	return StoppingRuleContext(context.Background(), s, eps, delta, src, budget)
}

// StoppingRuleContext is StoppingRule with cooperative cancellation: the
// context is polled at every chunk boundary, so an abort is observed
// within one batchSize chunk of draws. For a context that is never
// canceled the result is byte-identical to StoppingRule.
func StoppingRuleContext(ctx context.Context, s Sampler, eps, delta float64, src *mt.Source, budget Budget) (Result, error) {
	bt := &budgetTracker{budget: budget, ctx: trackerCtx(ctx)}
	return stoppingRuleLoop(ctx, &seqStream{br: newBatcher(s), src: src}, eps, delta, bt)
}

// stoppingRuleLoop is the stopping-rule core, parameterized by the draw
// supply. The sequential entry points hand it a seqStream; the parallel
// ones a chunkScheduler. Budget accounting, cancellation polling and
// convergence-recorder points are identical either way.
func stoppingRuleLoop(ctx context.Context, ds drawStream, eps, delta float64, bt *budgetTracker) (Result, error) {
	rec := RecorderFrom(ctx)
	upsilon1 := 1 + (1+eps)*upsilon(eps, delta)
	sum := 0.0
	var n int64
	for sum < upsilon1 {
		chunk := int64(batchSize)
		if need := upsilon1 - sum; need < batchSize {
			chunk = int64(need)
			if chunk < 1 {
				chunk = 1
			}
		}
		granted, err := bt.reserve(chunk, 1)
		if err != nil {
			return Result{Samples: bt.samples}, err
		}
		for _, v := range ds.fill(int(granted)) {
			sum += v
			n++
			if sum >= upsilon1 {
				break // the crossing index: always the chunk's last draw
			}
		}
		if rec != nil {
			prog := sum / upsilon1
			if prog > 1 {
				prog = 1
			}
			rec.observe(TrajectoryPoint{
				Samples: bt.samples, Estimate: sum / float64(n),
				Progress: prog, Phase: "stopping",
			})
		}
	}
	res := Result{Estimate: upsilon1 / float64(n), Samples: bt.samples}
	if rec != nil {
		rec.final(TrajectoryPoint{
			Samples: bt.samples, Estimate: res.Estimate, Progress: 1, Phase: "stopping",
		})
	}
	return res, nil
}

// MonteCarlo implements the 𝒜𝒜 algorithm of [8]: an optimal
// (ε, δ)-approximation of E[Sample] for samplers with range [0, 1] and
// positive mean. It is the paper's MonteCarlo[Sample] with the optimal
// estimator OptEstimate[Sample] computing the number of iterations: the
// expected sample count is within a constant factor of any correct
// estimator's (proportional to the ratio of the sampler's variance-like
// parameter to its squared mean).
func MonteCarlo(s Sampler, eps, delta float64, src *mt.Source, budget Budget) (Result, error) {
	return MonteCarloContext(context.Background(), s, eps, delta, src, budget)
}

// MonteCarloContext is MonteCarlo with cooperative cancellation: the
// context is polled at every chunk boundary, so an abort is observed
// within one batchSize chunk of draws and reported as an error wrapping
// ErrCanceled (and the context's own sentinel). For a context that is
// never canceled the result is byte-identical to MonteCarlo.
func MonteCarloContext(ctx context.Context, s Sampler, eps, delta float64, src *mt.Source, budget Budget) (Result, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return Result{}, fmt.Errorf("estimator: require 0 < eps < 1 and 0 < delta < 1: %w", ErrInvalidOptions)
	}
	return monteCarloLoop(ctx, &seqStream{br: newBatcher(s), src: src}, eps, delta, budget)
}

// monteCarloLoop is the 𝒜𝒜 core, parameterized by the draw supply. All
// three phases consume the same stream, continuing where the previous
// phase stopped — exactly the shared-source behavior of the sequential
// algorithm.
func monteCarloLoop(ctx context.Context, ds drawStream, eps, delta float64, budget Budget) (Result, error) {
	bt := &budgetTracker{budget: budget, ctx: trackerCtx(ctx)}
	rec := RecorderFrom(ctx)

	// Step 1: rough estimate via the stopping rule at accuracy
	// min(1/2, √ε) and confidence δ/3.
	eps1 := math.Min(0.5, math.Sqrt(eps))
	bt1 := &budgetTracker{budget: budget, ctx: trackerCtx(ctx)}
	r1, err := stoppingRuleLoop(ctx, ds, eps1, delta/3, bt1)
	bt.samples = r1.Samples
	if err != nil {
		return Result{Samples: bt.samples}, err
	}
	muHat := r1.Estimate

	phase1 := bt.samples

	// Step 2: estimate the variance parameter ρ = max(Var, ε·μ). The
	// fixed iteration count batches freely: chunks of sample pairs.
	ups := upsilon(eps, delta/3)
	ups2 := 2 * (1 + math.Sqrt(eps)) * (1 + 2*math.Sqrt(eps)) *
		(1 + math.Log(1.5)/math.Log(2/(delta/3))) * ups
	n2 := int64(math.Ceil(ups2 * eps / muHat))
	if n2 < 1 {
		n2 = 1
	}
	var sq float64
	for done := int64(0); done < n2; {
		want := n2 - done
		if want > batchSize/2 {
			want = batchSize / 2
		}
		pairs, err := bt.reserve(want, 2)
		if err != nil {
			return Result{Samples: bt.samples}, err
		}
		buf := ds.fill(int(2 * pairs))
		for t := 0; t < len(buf); t += 2 {
			d := buf[t] - buf[t+1]
			sq += d * d / 2
		}
		done += pairs
		if rec != nil {
			rec.observe(TrajectoryPoint{
				Samples: bt.samples, Estimate: sq / float64(done),
				Progress: float64(done) / float64(n2), Phase: "variance",
			})
		}
	}
	rhoHat := math.Max(sq/float64(n2), eps*muHat)
	phase2 := bt.samples - phase1

	// Step 3: final run sized by ρ̂/μ̂².
	n3 := int64(math.Ceil(ups2 * rhoHat / (muHat * muHat)))
	if n3 < 1 {
		n3 = 1
	}
	var sum float64
	for done := int64(0); done < n3; {
		want := n3 - done
		if want > batchSize {
			want = batchSize
		}
		granted, err := bt.reserve(want, 1)
		if err != nil {
			return Result{Samples: bt.samples}, err
		}
		for _, v := range ds.fill(int(granted)) {
			sum += v
		}
		done += granted
		if rec != nil {
			rec.observe(TrajectoryPoint{
				Samples: bt.samples, Estimate: sum / float64(done),
				Progress: float64(done) / float64(n3), Phase: "final",
			})
		}
	}
	res := Result{
		Estimate: sum / float64(n3),
		Samples:  bt.samples,
		Phases:   [3]int64{phase1, phase2, bt.samples - phase1 - phase2},
	}
	if rec != nil {
		rec.final(TrajectoryPoint{
			Samples: bt.samples, Estimate: res.Estimate, Progress: 1, Phase: "final",
		})
	}
	recordMCMetrics(res)
	return res, nil
}

// recordMCMetrics publishes one completed 𝒜𝒜 run's per-phase sample
// counts (the Monte-Carlo iteration telemetry).
func recordMCMetrics(res Result) {
	r := obs.Default()
	r.Counter("estimator_mc_runs_total").Inc()
	r.Counter("estimator_mc_samples_total", obs.L("phase", "stopping")).Add(res.Phases[0])
	r.Counter("estimator_mc_samples_total", obs.L("phase", "variance")).Add(res.Phases[1])
	r.Counter("estimator_mc_samples_total", obs.L("phase", "final")).Add(res.Phases[2])
}

// FixedSamples estimates E[Sample] with a sample count fixed up front from
// a lower bound on the mean: N = ⌈Υ/meanLB⌉, the generalized zero-one
// estimator theorem bound of [8] with the worst-case variance ρ ≤ μ.
// It is correct whenever E[Sample] ≥ meanLB but typically draws far more
// samples than MonteCarlo; the ablation benchmarks quantify the gap.
func FixedSamples(s Sampler, eps, delta, meanLB float64, src *mt.Source, budget Budget) (Result, error) {
	return FixedSamplesContext(context.Background(), s, eps, delta, meanLB, src, budget)
}

// FixedSamplesContext is FixedSamples with cooperative cancellation at
// chunk boundaries (see MonteCarloContext).
func FixedSamplesContext(ctx context.Context, s Sampler, eps, delta, meanLB float64, src *mt.Source, budget Budget) (Result, error) {
	if meanLB <= 0 {
		return Result{}, errors.New("estimator: FixedSamples requires a positive mean lower bound")
	}
	return fixedSamplesLoop(ctx, &seqStream{br: newBatcher(s), src: src}, eps, delta, meanLB, budget)
}

// fixedSamplesLoop is the fixed-count core, parameterized by the draw
// supply (see stoppingRuleLoop).
func fixedSamplesLoop(ctx context.Context, ds drawStream, eps, delta, meanLB float64, budget Budget) (Result, error) {
	bt := &budgetTracker{budget: budget, ctx: trackerCtx(ctx)}
	rec := RecorderFrom(ctx)
	n := int64(math.Ceil(upsilon(eps, delta) / meanLB))
	if n < 1 {
		n = 1
	}
	var sum float64
	for done := int64(0); done < n; {
		want := n - done
		if want > batchSize {
			want = batchSize
		}
		granted, err := bt.reserve(want, 1)
		if err != nil {
			return Result{Samples: bt.samples}, err
		}
		for _, v := range ds.fill(int(granted)) {
			sum += v
		}
		done += granted
		if rec != nil {
			rec.observe(TrajectoryPoint{
				Samples: bt.samples, Estimate: sum / float64(done),
				Progress: float64(done) / float64(n), Phase: "fixed",
			})
		}
	}
	res := Result{Estimate: sum / float64(n), Samples: bt.samples}
	if rec != nil {
		rec.final(TrajectoryPoint{
			Samples: bt.samples, Estimate: res.Estimate, Progress: 1, Phase: "fixed",
		})
	}
	return res, nil
}
