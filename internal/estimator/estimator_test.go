package estimator

import (
	"errors"
	"math"
	"testing"
	"time"

	"cqabench/internal/mt"
	"cqabench/internal/sampler"
	"cqabench/internal/synopsis"
)

// bernoulli is a test sampler with known mean p.
type bernoulli struct{ p float64 }

func (b bernoulli) Sample(src *mt.Source) float64 {
	if src.Float64() < b.p {
		return 1
	}
	return 0
}

// constant always returns v.
type constant struct{ v float64 }

func (c constant) Sample(*mt.Source) float64 { return c.v }

func TestStoppingRuleAccuracy(t *testing.T) {
	for _, p := range []float64{0.9, 0.5, 0.1} {
		r, err := StoppingRule(bernoulli{p}, 0.1, 0.1, mt.New(1), Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Estimate-p) > 0.2*p {
			t.Fatalf("p=%v: estimate %v outside twice the error bound", p, r.Estimate)
		}
		if r.Samples <= 0 {
			t.Fatal("no samples recorded")
		}
	}
}

func TestMonteCarloAccuracy(t *testing.T) {
	for seed, p := range map[uint64]float64{2: 0.8, 3: 0.5, 4: 0.2, 5: 0.05} {
		r, err := MonteCarlo(bernoulli{p}, 0.1, 0.25, mt.New(seed), Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Estimate-p) > 0.1*p {
			t.Fatalf("p=%v: estimate %v outside relative error 0.1", p, r.Estimate)
		}
	}
}

func TestMonteCarloConstant(t *testing.T) {
	r, err := MonteCarlo(constant{0.5}, 0.1, 0.25, mt.New(6), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Estimate != 0.5 {
		t.Fatalf("constant sampler estimate = %v", r.Estimate)
	}
}

// Statistical guarantee: the failure rate over many independent runs must
// not exceed δ by much.
func TestMonteCarloConfidence(t *testing.T) {
	const (
		runs  = 100
		p     = 0.3
		eps   = 0.2
		delta = 0.25
	)
	failures := 0
	for i := 0; i < runs; i++ {
		r, err := MonteCarlo(bernoulli{p}, eps, delta, mt.New(uint64(1000+i)), Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Estimate-p) > eps*p {
			failures++
		}
	}
	// Guarantee is ≥ 1-δ; in practice far better. Allow δ + sampling slack.
	if float64(failures)/runs > delta+0.10 {
		t.Fatalf("failure rate %d/%d exceeds δ=%v by too much", failures, runs, delta)
	}
}

func TestMonteCarloParamValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-1, 0.5}, {0.5, -1}} {
		if _, err := MonteCarlo(constant{0.5}, bad[0], bad[1], mt.New(1), Budget{}); err == nil {
			t.Errorf("params %v accepted", bad)
		}
	}
}

func TestMonteCarloAdaptsToMean(t *testing.T) {
	// A larger mean must need fewer samples (the whole point of the
	// optimal estimator).
	rBig, err := MonteCarlo(bernoulli{0.9}, 0.1, 0.25, mt.New(7), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	rSmall, err := MonteCarlo(bernoulli{0.01}, 0.1, 0.25, mt.New(8), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if rBig.Samples >= rSmall.Samples {
		t.Fatalf("samples(p=0.9)=%d should be < samples(p=0.01)=%d", rBig.Samples, rSmall.Samples)
	}
}

func TestBudgetMaxSamples(t *testing.T) {
	_, err := MonteCarlo(bernoulli{0.5}, 0.05, 0.05, mt.New(9), Budget{MaxSamples: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	// Tiny mean forces enough samples to cross the deadline-check stride.
	_, err := MonteCarlo(bernoulli{1e-5}, 0.1, 0.25, mt.New(10),
		Budget{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestFixedSamples(t *testing.T) {
	r, err := FixedSamples(bernoulli{0.4}, 0.1, 0.25, 0.1, mt.New(11), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Estimate-0.4) > 0.1*0.4 {
		t.Fatalf("FixedSamples estimate = %v", r.Estimate)
	}
	if _, err := FixedSamples(bernoulli{0.4}, 0.1, 0.25, 0, mt.New(1), Budget{}); err == nil {
		t.Fatal("zero mean lower bound accepted")
	}
}

func TestFixedSamplesWastefulVsOptimal(t *testing.T) {
	// With a loose lower bound the fixed-N estimator must draw more than
	// the optimal one on a high-mean sampler.
	fixed, err := FixedSamples(bernoulli{0.9}, 0.1, 0.25, 0.01, mt.New(12), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := MonteCarlo(bernoulli{0.9}, 0.1, 0.25, mt.New(13), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Samples >= fixed.Samples {
		t.Fatalf("optimal used %d samples, fixed-N used %d", opt.Samples, fixed.Samples)
	}
}

func coveragePair(t *testing.T) *synopsis.Admissible {
	t.Helper()
	pair := &synopsis.Admissible{
		BlockSizes: []int32{2, 3, 2},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}},
			{{Block: 0, Fact: 1}, {Block: 1, Fact: 1}},
			{{Block: 1, Fact: 2}, {Block: 2, Fact: 0}},
		},
	}
	pair.Canonicalize()
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	return pair
}

func TestSelfAdjustingCoverageAccuracy(t *testing.T) {
	pair := coveragePair(t)
	want, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	space := sampler.NewSymbolic(pair)
	r, err := SelfAdjustingCoverage(space, 0.1, 0.25, mt.New(14), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Estimate-want) > 0.1*want {
		t.Fatalf("coverage estimate %v, want %v ± 10%%", r.Estimate, want)
	}
}

func TestSelfAdjustingCoverageConfidence(t *testing.T) {
	pair := coveragePair(t)
	want, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 60
	failures := 0
	for i := 0; i < runs; i++ {
		space := sampler.NewSymbolic(pair)
		r, err := SelfAdjustingCoverage(space, 0.15, 0.25, mt.New(uint64(2000+i)), Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Estimate-want) > 0.15*want {
			failures++
		}
	}
	if float64(failures)/runs > 0.25+0.12 {
		t.Fatalf("coverage failure rate %d/%d too high", failures, runs)
	}
}

func TestSelfAdjustingCoverageBudget(t *testing.T) {
	pair := coveragePair(t)
	space := sampler.NewSymbolic(pair)
	_, err := SelfAdjustingCoverage(space, 0.05, 0.05, mt.New(15), Budget{MaxSamples: 5})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestSelfAdjustingCoverageParamValidation(t *testing.T) {
	pair := coveragePair(t)
	space := sampler.NewSymbolic(pair)
	if _, err := SelfAdjustingCoverage(space, 0, 0.5, mt.New(1), Budget{}); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestCoverageIterationsLinearInImages(t *testing.T) {
	n1 := CoverageIterations(10, 0.1, 0.25)
	n2 := CoverageIterations(20, 0.1, 0.25)
	if n2 < 2*n1-2 || n2 > 2*n1+2 {
		t.Fatalf("iterations not linear: N(10)=%d N(20)=%d", n1, n2)
	}
	if n1 <= 0 {
		t.Fatal("non-positive iteration count")
	}
}

// The coverage algorithm and the optimal Monte Carlo over KL must agree on
// the same pair (they estimate the same R).
func TestCoverageAgreesWithMonteCarloKL(t *testing.T) {
	pair := coveragePair(t)
	want, err := pair.ExactRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	kl := sampler.NewKL(pair)
	mc, err := MonteCarlo(kl, 0.1, 0.25, mt.New(16), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	klEst := mc.Estimate * kl.Weight()
	cov, err := SelfAdjustingCoverage(sampler.NewSymbolic(pair), 0.1, 0.25, mt.New(17), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(klEst-want) > 0.1*want || math.Abs(cov.Estimate-want) > 0.1*want {
		t.Fatalf("KL=%v Cover=%v want %v", klEst, cov.Estimate, want)
	}
}

func BenchmarkMonteCarloNatural(b *testing.B) {
	pair := &synopsis.Admissible{
		BlockSizes: []int32{2, 2, 3},
		Images: []synopsis.Image{
			{{Block: 0, Fact: 0}},
			{{Block: 1, Fact: 1}, {Block: 2, Fact: 2}},
		},
	}
	pair.Canonicalize()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarlo(sampler.NewNatural(pair), 0.1, 0.25, mt.New(uint64(i)), Budget{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMonteCarloPhaseAccounting(t *testing.T) {
	r, err := MonteCarlo(bernoulli{0.4}, 0.15, 0.25, mt.New(21), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, p := range r.Phases {
		if p <= 0 {
			t.Fatalf("phase with no samples: %v", r.Phases)
		}
		sum += p
	}
	if sum != r.Samples {
		t.Fatalf("phases sum to %d, total %d", sum, r.Samples)
	}
}
