package estimator

import "context"

// Convergence telemetry: an estimation loop can be observed while it
// runs, at the same 256-draw chunk boundaries the batched fast path and
// the cancellation polling already use. A Recorder captures checkpoints
// — the running estimate, the draws consumed so far, and the stopping
// rule's progress toward its termination condition — into a bounded
// trajectory.
//
// Recording is strictly passive: the recorder never touches the PRNG,
// never changes chunk sizes, and is only consulted where the loops
// already pause (chunk boundaries, or every ctxStride steps for the
// one-at-a-time coverage walk). A run with no recorder attached is
// byte-identical to one that was never instrumented, and a recorded run
// produces byte-identical estimates and sample counts — the trajectory
// is a pure observation.

// TrajectoryPoint is one checkpoint of a running estimation.
type TrajectoryPoint struct {
	// Samples is the total draws charged against the budget so far.
	Samples int64 `json:"samples"`
	// Estimate is the running value of the phase's own statistic: the
	// sample mean for the stopping rule and the final run, the running
	// variance estimate for the 𝒜𝒜 variance phase, and the normalized
	// union estimate for the coverage walk.
	Estimate float64 `json:"estimate"`
	// Progress is the stopping-rule progress in [0, 1]: the Υ1-sum
	// fraction for the stopping rule, the completed-iteration fraction
	// for fixed-count loops, and the step fraction for the coverage walk.
	Progress float64 `json:"progress"`
	// Phase names the loop that produced the point: "stopping",
	// "variance", "final", "fixed" or "coverage".
	Phase string `json:"phase"`
}

// DefaultTrajectoryPoints bounds a Recorder's trajectory when no
// explicit capacity is given.
const DefaultTrajectoryPoints = 256

// Recorder captures a bounded convergence trajectory. When the bound is
// reached, every other retained point is dropped and the retention
// stride doubles, so the trajectory always spans the whole run at
// uniform (power-of-two) chunk granularity within the fixed capacity.
// A Recorder is not safe for concurrent use; attach one per estimation.
type Recorder struct {
	max    int
	stride int64 // retain every stride-th offered checkpoint
	seen   int64 // checkpoints offered so far
	points []TrajectoryPoint
}

// NewRecorder returns a Recorder holding at most maxPoints checkpoints
// (<= 0 selects DefaultTrajectoryPoints; the minimum capacity is 2 so a
// trajectory can always hold a first and a final point).
func NewRecorder(maxPoints int) *Recorder {
	if maxPoints <= 0 {
		maxPoints = DefaultTrajectoryPoints
	}
	if maxPoints < 2 {
		maxPoints = 2
	}
	return &Recorder{max: maxPoints, stride: 1}
}

// Points returns the captured trajectory in observation order. The
// returned slice is the recorder's own backing store; callers that keep
// it must not reuse the recorder.
func (r *Recorder) Points() []TrajectoryPoint { return r.points }

// observe offers one checkpoint; only every stride-th offered point is
// retained. Retained checkpoints are those whose offer ordinal is a
// multiple of the stride, which compact preserves when it doubles it.
func (r *Recorder) observe(p TrajectoryPoint) {
	ord := r.seen
	r.seen++
	if ord%r.stride != 0 {
		return
	}
	if len(r.points) >= r.max {
		r.compact()
		if ord%r.stride != 0 {
			return
		}
	}
	r.points = append(r.points, p)
}

// final force-appends the loop's terminal state regardless of stride, so
// every trajectory ends with the exact final estimate and sample count.
func (r *Recorder) final(p TrajectoryPoint) {
	if len(r.points) >= r.max {
		r.compact()
	}
	r.points = append(r.points, p)
}

// compact drops every other retained point and doubles the stride.
func (r *Recorder) compact() {
	kept := r.points[:0]
	for i := 0; i < len(r.points); i += 2 {
		kept = append(kept, r.points[i])
	}
	r.points = kept
	r.stride *= 2
}

// recorderKey carries a Recorder on a context.
type recorderKey struct{}

// WithRecorder attaches rec to ctx; every estimator entry point checks
// for one and, when present, records its convergence trajectory into it.
// A nil rec returns ctx unchanged.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom returns the context's attached Recorder, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}
