package estimator

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cqabench/internal/mt"
	"cqabench/internal/synopsis"
)

func identicalResult(t *testing.T, tag string, a, b Result, aErr, bErr error) {
	t.Helper()
	if (aErr == nil) != (bErr == nil) {
		t.Fatalf("%s: errors differ: %v vs %v", tag, aErr, bErr)
	}
	if aErr != nil && !errors.Is(bErr, ErrBudget) {
		t.Fatalf("%s: error %v does not wrap ErrBudget", tag, bErr)
	}
	if math.Float64bits(a.Estimate) != math.Float64bits(b.Estimate) {
		t.Fatalf("%s: estimates differ: %x vs %x (%v vs %v)", tag,
			math.Float64bits(a.Estimate), math.Float64bits(b.Estimate), a.Estimate, b.Estimate)
	}
	if a.Samples != b.Samples {
		t.Fatalf("%s: sample counts differ: %d vs %d", tag, a.Samples, b.Samples)
	}
	if a.Phases != b.Phases {
		t.Fatalf("%s: phase breakdowns differ: %v vs %v", tag, a.Phases, b.Phases)
	}
	if a.Chunks != b.Chunks {
		t.Fatalf("%s: chunk counts differ: %d vs %d", tag, a.Chunks, b.Chunks)
	}
}

// TestParallelWorkerInvariance is the parallel path's core determinism
// property: for every kernel, shape, seed and budget (including
// budget-exhaustion error paths), the parallel estimators return
// byte-identical Results — estimate, sample count, phase breakdown,
// chunk count — regardless of worker count. Run under -race in CI, this
// also exercises the scheduler's synchronization.
func TestParallelWorkerInvariance(t *testing.T) {
	pairs := map[string]*synopsis.Admissible{
		"small":     refPair(),
		"one-block": refOneBlock(),
		"one-image": refOneImage(),
	}
	seeds := []uint64{1, mt.DefaultSeed}
	budgets := []int64{0, 1, 37, 5000}
	workerCounts := []int{2, 4, 7}
	ctx := context.Background()
	for pname, pair := range pairs {
		for sname, mk := range refSamplers(pair) {
			for _, seed := range seeds {
				for _, max := range budgets {
					budget := Budget{MaxSamples: max}
					tag := pname + "/" + sname

					base := Parallel{Seed: seed, Workers: 1, NewSampler: mk}
					sr1, sr1Err := StoppingRuleParallel(ctx, base, 0.3, 0.2, budget)
					mc1, mc1Err := MonteCarloParallel(ctx, base, 0.25, 0.3, budget)
					fs1, fs1Err := FixedSamplesParallel(ctx, base, 0.3, 0.3, 0.05, budget)

					// Re-running with the same configuration must be
					// byte-identical (bit-reproducibility).
					sr1b, sr1bErr := StoppingRuleParallel(ctx, base, 0.3, 0.2, budget)
					identicalResult(t, tag+"/StoppingRule/rerun", sr1, sr1b, sr1Err, sr1bErr)

					for _, w := range workerCounts {
						p := Parallel{Seed: seed, Workers: w, NewSampler: mk}
						sr, srErr := StoppingRuleParallel(ctx, p, 0.3, 0.2, budget)
						identicalResult(t, tag+"/StoppingRule", sr1, sr, sr1Err, srErr)
						mc, mcErr := MonteCarloParallel(ctx, p, 0.25, 0.3, budget)
						identicalResult(t, tag+"/MonteCarlo", mc1, mc, mc1Err, mcErr)
						fs, fsErr := FixedSamplesParallel(ctx, p, 0.3, 0.3, 0.05, budget)
						identicalResult(t, tag+"/FixedSamples", fs1, fs, fs1Err, fsErr)
					}
				}
			}
		}
	}
}

// TestParallelMatchesManualSubstreamFold pins the parallel draw
// schedule itself: a FixedSamples parallel run must see exactly the
// values of substreams 0, 1, 2, ... folded in chunk order, as computed
// by a single-threaded reference.
func TestParallelMatchesManualSubstreamFold(t *testing.T) {
	pair := refPair()
	mk := refSamplers(pair)["KLIndexed"]
	const seed = 9001

	res, err := FixedSamplesParallel(context.Background(),
		Parallel{Seed: seed, Workers: 3, NewSampler: mk}, 0.3, 0.3, 0.05, Budget{})
	if err != nil {
		t.Fatalf("FixedSamplesParallel: %v", err)
	}

	// Reference: same sampler drawing n values from substream chunks
	// sequentially.
	n := int64(math.Ceil(upsilon(0.3, 0.3) / 0.05))
	s := mk()
	var sum float64
	src := new(mt.Source)
	for i := int64(0); i < n; i++ {
		if i%batchSize == 0 {
			src.Substream(seed, uint64(i/batchSize))
		}
		sum += s.Sample(src)
	}
	want := sum / float64(n)
	if math.Float64bits(res.Estimate) != math.Float64bits(want) {
		t.Fatalf("parallel estimate %v does not match manual substream fold %v", res.Estimate, want)
	}
	if res.Samples != n {
		t.Fatalf("parallel samples %d, want %d", res.Samples, n)
	}
	wantChunks := (n + batchSize - 1) / batchSize
	if res.Chunks != wantChunks {
		t.Fatalf("parallel chunks %d, want %d", res.Chunks, wantChunks)
	}
}

// TestParallelValidate covers the rejection paths shared by all three
// parallel entry points.
func TestParallelValidate(t *testing.T) {
	pair := refPair()
	mk := refSamplers(pair)["KL"]
	ctx := context.Background()
	cases := []struct {
		name string
		p    Parallel
	}{
		{"zero-workers", Parallel{Seed: 1, Workers: 0, NewSampler: mk}},
		{"negative-workers", Parallel{Seed: 1, Workers: -3, NewSampler: mk}},
		{"nil-factory", Parallel{Seed: 1, Workers: 2}},
	}
	for _, c := range cases {
		if _, err := StoppingRuleParallel(ctx, c.p, 0.3, 0.2, Budget{}); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: StoppingRuleParallel error %v, want ErrInvalidOptions", c.name, err)
		}
		if _, err := MonteCarloParallel(ctx, c.p, 0.25, 0.3, Budget{}); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: MonteCarloParallel error %v, want ErrInvalidOptions", c.name, err)
		}
		if _, err := FixedSamplesParallel(ctx, c.p, 0.3, 0.3, 0.05, Budget{}); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: FixedSamplesParallel error %v, want ErrInvalidOptions", c.name, err)
		}
	}
	if _, err := MonteCarloParallel(ctx, Parallel{Seed: 1, Workers: 2, NewSampler: mk}, 1.5, 0.3, Budget{}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("bad eps: error %v, want ErrInvalidOptions", err)
	}
	if _, err := FixedSamplesParallel(ctx, Parallel{Seed: 1, Workers: 2, NewSampler: mk}, 0.3, 0.3, 0, Budget{}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("zero meanLB: error %v, want ErrInvalidOptions", err)
	}
}

// TestParallelCancellation checks that the scheduler unwinds cleanly
// when the caller's context dies: pre-canceled contexts abort before
// drawing, and mid-run cancellation surfaces as ErrCanceled without
// deadlocking the pool (the zero-chunk fallback in advance).
func TestParallelCancellation(t *testing.T) {
	pair := refPair()
	mk := refSamplers(pair)["KLM"]

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MonteCarloParallel(canceled, Parallel{Seed: 5, Workers: 4, NewSampler: mk}, 0.25, 0.3, Budget{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled: error %v, want ErrCanceled", err)
	}
	if res.Samples != 0 {
		t.Fatalf("pre-canceled: %d samples drawn, want 0", res.Samples)
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancelMid()
	}()
	// A very tight eps makes the run long enough that cancellation lands
	// mid-flight on any hardware; if the run finishes first the estimate
	// is simply valid and the test passes vacuously.
	_, err = MonteCarloParallel(ctx, Parallel{Seed: 5, Workers: 4, NewSampler: mk}, 0.005, 0.01, Budget{})
	if err != nil && !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-run cancel: error %v, want ErrCanceled (or nil if finished)", err)
	}
	cancelMid()
}
