package estimator

import (
	"context"
	"math"
	"testing"

	"cqabench/internal/mt"
	"cqabench/internal/sampler"
)

func TestRecorderBoundedCompaction(t *testing.T) {
	rec := NewRecorder(8)
	const offered = 1000
	for i := 0; i < offered; i++ {
		rec.observe(TrajectoryPoint{Samples: int64(i), Phase: "stopping"})
	}
	pts := rec.Points()
	if len(pts) > 8 {
		t.Fatalf("trajectory has %d points, capacity 8", len(pts))
	}
	if len(pts) < 4 {
		t.Fatalf("trajectory over-compacted: %d points for %d offers", len(pts), offered)
	}
	// The first offered checkpoint always survives compaction, and retained
	// ordinals must be equally spaced multiples of a power-of-two stride.
	if pts[0].Samples != 0 {
		t.Fatalf("first point ordinal %d, want 0", pts[0].Samples)
	}
	stride := pts[1].Samples - pts[0].Samples
	if stride <= 0 || stride&(stride-1) != 0 {
		t.Fatalf("stride %d is not a positive power of two", stride)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Samples-pts[i-1].Samples != stride {
			t.Fatalf("uneven spacing at %d: %v", i, pts)
		}
	}
}

func TestRecorderFinalAlwaysRetained(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 100; i++ {
		rec.observe(TrajectoryPoint{Samples: int64(i)})
	}
	rec.final(TrajectoryPoint{Samples: 12345, Progress: 1})
	pts := rec.Points()
	if len(pts) == 0 || len(pts) > 4 {
		t.Fatalf("got %d points, want 1..4", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Samples != 12345 || last.Progress != 1 {
		t.Fatalf("final point not retained: %+v", last)
	}
}

func TestNewRecorderDefaults(t *testing.T) {
	if got := NewRecorder(0).max; got != DefaultTrajectoryPoints {
		t.Fatalf("NewRecorder(0).max = %d, want %d", got, DefaultTrajectoryPoints)
	}
	if got := NewRecorder(1).max; got != 2 {
		t.Fatalf("NewRecorder(1).max = %d, want 2", got)
	}
}

func TestWithRecorderRoundTrip(t *testing.T) {
	if RecorderFrom(context.Background()) != nil {
		t.Fatal("plain context carries a recorder")
	}
	if RecorderFrom(nil) != nil {
		t.Fatal("nil context carries a recorder")
	}
	rec := NewRecorder(16)
	ctx := WithRecorder(context.Background(), rec)
	if RecorderFrom(ctx) != rec {
		t.Fatal("recorder did not round-trip through the context")
	}
	if got := WithRecorder(context.Background(), nil); RecorderFrom(got) != nil {
		t.Fatal("WithRecorder(nil) attached something")
	}
}

// checkTrajectory verifies the invariants every recorded run must satisfy:
// a non-empty trajectory whose sample counts never decrease, whose progress
// stays in [0, 1], and whose last point reports the run's exact final
// estimate and sample count with progress 1.
func checkTrajectory(t *testing.T, pts []TrajectoryPoint, res Result, phases ...string) {
	t.Helper()
	if len(pts) == 0 {
		t.Fatal("empty trajectory")
	}
	valid := map[string]bool{}
	for _, p := range phases {
		valid[p] = true
	}
	var prev int64
	for i, p := range pts {
		if p.Samples < prev {
			t.Fatalf("point %d: samples went backwards (%d after %d)", i, p.Samples, prev)
		}
		prev = p.Samples
		if p.Progress < 0 || p.Progress > 1 {
			t.Fatalf("point %d: progress %v outside [0,1]", i, p.Progress)
		}
		if !valid[p.Phase] {
			t.Fatalf("point %d: unexpected phase %q", i, p.Phase)
		}
		if math.IsNaN(p.Estimate) || math.IsInf(p.Estimate, 0) {
			t.Fatalf("point %d: estimate %v", i, p.Estimate)
		}
	}
	last := pts[len(pts)-1]
	if last.Estimate != res.Estimate || last.Samples != res.Samples || last.Progress != 1 {
		t.Fatalf("final point %+v does not match result %+v", last, res)
	}
}

func TestStoppingRuleTrajectory(t *testing.T) {
	rec := NewRecorder(0)
	ctx := WithRecorder(context.Background(), rec)
	res, err := StoppingRuleContext(ctx, bernoulli{0.3}, 0.1, 0.1, mt.New(31), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	checkTrajectory(t, rec.Points(), res, "stopping")
}

func TestMonteCarloTrajectory(t *testing.T) {
	rec := NewRecorder(0)
	ctx := WithRecorder(context.Background(), rec)
	res, err := MonteCarloContext(ctx, bernoulli{0.3}, 0.1, 0.25, mt.New(32), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	pts := rec.Points()
	checkTrajectory(t, pts, res, "stopping", "variance", "final")
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.Phase] = true
	}
	for _, phase := range []string{"stopping", "variance", "final"} {
		if !seen[phase] {
			t.Fatalf("no %q checkpoints in %d-point trajectory", phase, len(pts))
		}
	}
}

func TestFixedSamplesTrajectory(t *testing.T) {
	rec := NewRecorder(0)
	ctx := WithRecorder(context.Background(), rec)
	res, err := FixedSamplesContext(ctx, bernoulli{0.4}, 0.1, 0.25, 0.1, mt.New(33), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	checkTrajectory(t, rec.Points(), res, "fixed")
}

func TestCoverageTrajectory(t *testing.T) {
	pair := coveragePair(t)
	rec := NewRecorder(0)
	ctx := WithRecorder(context.Background(), rec)
	res, err := SelfAdjustingCoverageContext(ctx, sampler.NewSymbolic(pair), 0.1, 0.25, mt.New(34), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	checkTrajectory(t, rec.Points(), res, "coverage")
}

// Recording is passive: a recorded run must return byte-identical estimates
// and sample counts to the same run without a recorder. This is the
// invariant that keeps kernel_golden.json and the reference tests valid.
func TestRecordingPreservesResults(t *testing.T) {
	pair := coveragePair(t)
	runs := []struct {
		name string
		run  func(ctx context.Context) (Result, error)
	}{
		{"stopping", func(ctx context.Context) (Result, error) {
			return StoppingRuleContext(ctx, bernoulli{0.3}, 0.1, 0.1, mt.New(41), Budget{})
		}},
		{"montecarlo", func(ctx context.Context) (Result, error) {
			return MonteCarloContext(ctx, bernoulli{0.3}, 0.1, 0.25, mt.New(42), Budget{})
		}},
		{"fixed", func(ctx context.Context) (Result, error) {
			return FixedSamplesContext(ctx, bernoulli{0.4}, 0.1, 0.25, 0.1, mt.New(43), Budget{})
		}},
		{"coverage", func(ctx context.Context) (Result, error) {
			return SelfAdjustingCoverageContext(ctx, sampler.NewSymbolic(pair), 0.1, 0.25, mt.New(44), Budget{})
		}},
		{"kl", func(ctx context.Context) (Result, error) {
			return MonteCarloContext(ctx, sampler.NewKL(pair), 0.1, 0.25, mt.New(45), Budget{})
		}},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := tc.run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			rec := NewRecorder(32)
			recorded, err := tc.run(WithRecorder(context.Background(), rec))
			if err != nil {
				t.Fatal(err)
			}
			if plain != recorded {
				t.Fatalf("recording changed the result:\nplain    %+v\nrecorded %+v", plain, recorded)
			}
			if len(rec.Points()) == 0 {
				t.Fatal("no trajectory recorded")
			}
		})
	}
}
