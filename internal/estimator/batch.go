package estimator

import (
	"context"

	"cqabench/internal/mt"
)

// trackerCtx normalizes a caller context for the budgetTracker: the
// never-canceled contexts (nil, Background, TODO) collapse to nil so the
// hot loops skip cancellation polling entirely.
func trackerCtx(ctx context.Context) context.Context {
	if ctx == nil || ctx == context.Background() || ctx == context.TODO() {
		return nil
	}
	return ctx
}

// BatchSampler is a Sampler that can fill a whole slice of draws in one
// call. All kernels in internal/sampler implement it. The contract is
// strict: SampleBatch(src, dst) must consume the PRNG stream and produce
// values exactly as len(dst) consecutive Sample(src) calls would, so the
// estimators can mix batch and single draws freely without changing any
// estimate.
type BatchSampler interface {
	Sampler
	SampleBatch(src *mt.Source, dst []float64)
}

// batchSize is the estimator-side chunk: large enough to amortize
// interface dispatch and keep the sampler's inner loop hot, small enough
// that a chunk of float64s stays in L1. It is also the substream chunk
// of the parallel sampling path (see parallel.go): draw k of a parallel
// run comes from substream k/batchSize at offset k%batchSize.
const batchSize = 256

// drawStream is the estimation loops' view of the draw supply: fill
// returns the next n consecutive draw values (n ≤ batchSize) in a
// scratch slice valid until the next fill. The sequential
// implementation (seqStream) pulls them from one PRNG stream through a
// batcher; the parallel one (chunkScheduler) reassembles them, in
// order, from seed-derived per-chunk substreams computed by a worker
// pool. The loops themselves are agnostic: budget accounting,
// cancellation polling and convergence recording happen at the same
// points either way.
type drawStream interface {
	fill(n int) []float64
}

// seqStream adapts the classic (sampler, source) pair to drawStream:
// the draw supply is the single sequential MT19937-64 stream, exactly
// as before the parallel path existed.
type seqStream struct {
	br  *batcher
	src *mt.Source
}

func (q *seqStream) fill(n int) []float64 { return q.br.fill(q.src, n) }

// batcher adapts any Sampler to chunked consumption: batch-capable
// samplers fill the scratch buffer in one call, the rest fall back to a
// Sample loop with identical stream consumption. The buffer is reused
// across fills — estimation loops allocate once per run, not per chunk.
type batcher struct {
	s   Sampler
	bs  BatchSampler // nil when s is not batch-capable
	buf []float64
}

func newBatcher(s Sampler) *batcher {
	b := &batcher{s: s, buf: make([]float64, batchSize)}
	if bs, ok := s.(BatchSampler); ok {
		b.bs = bs
	}
	return b
}

// fill returns n consecutive draws (n ≤ batchSize) in a scratch slice
// valid until the next fill.
func (b *batcher) fill(src *mt.Source, n int) []float64 {
	dst := b.buf[:n]
	if b.bs != nil {
		b.bs.SampleBatch(src, dst)
		return dst
	}
	for i := range dst {
		dst[i] = b.s.Sample(src)
	}
	return dst
}
