package estimator

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cqabench/internal/mt"
)

// gatedSampler blocks every draw on a token from the test, so the test
// controls exactly how many draws happen before cancellation. The mean
// is tiny, so the stopping rule alone needs millions of draws and the
// run cannot finish on its own.
type gatedSampler struct {
	gate  chan struct{}
	draws atomic.Int64
}

func (g *gatedSampler) Sample(src *mt.Source) float64 {
	<-g.gate
	g.draws.Add(1)
	src.Float64() // consume the stream like a real sampler
	return 1e-6
}

// TestCancelWithinOneChunk pins the abort latency contract: after the
// context is canceled, the estimation loop performs at most one more
// batchSize chunk of draws before returning an error that wraps both
// ErrCanceled and context.Canceled.
func TestCancelWithinOneChunk(t *testing.T) {
	g := &gatedSampler{gate: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := MonteCarloContext(ctx, g, 0.1, 0.25, mt.New(mt.DefaultSeed), Budget{})
		done <- err
	}()

	// Let a known number of draws through, then cancel with the sampler
	// parked on the gate: no draws can race past the cancellation point.
	const before = 1000
	for i := 0; i < before; i++ {
		g.gate <- struct{}{}
	}
	cancel()

	// Keep feeding the gate so the in-flight chunk can finish; the loop
	// must stop on its own at the next chunk boundary.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case g.gate <- struct{}{}:
			case <-stop:
				return
			}
		}
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("estimation did not observe cancellation")
	}
	close(stop)

	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	total := g.draws.Load()
	if over := total - before; over > batchSize {
		t.Fatalf("observed cancellation after %d extra draws, want at most one chunk (%d)", over, batchSize)
	}
}

// TestDeadlineContextWrapsSentinels checks the deadline flavor of
// cancellation: an expired context deadline surfaces as ErrCanceled
// wrapping context.DeadlineExceeded, distinct from ErrBudget.
func TestDeadlineContextWrapsSentinels(t *testing.T) {
	g := &gatedSampler{gate: make(chan struct{})}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case g.gate <- struct{}{}:
			case <-stop:
				return
			}
		}
	}()
	defer close(stop)

	_, err := MonteCarloContext(ctx, g, 0.1, 0.25, mt.New(mt.DefaultSeed), Budget{})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v should wrap ErrCanceled and context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrBudget) {
		t.Fatalf("context deadline must not be reported as ErrBudget: %v", err)
	}
}

// TestContextIdenticalWhenUncanceled pins the determinism contract: a
// live but never-canceled context must not perturb the estimate, the
// sample count or the PRNG stream position.
func TestContextIdenticalWhenUncanceled(t *testing.T) {
	mk := func() Sampler { return constSampler(0.37) }
	srcA, srcB := mt.New(99), mt.New(99)
	plain, errA := MonteCarlo(mk(), 0.2, 0.2, srcA, Budget{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, errB := MonteCarloContext(ctx, mk(), 0.2, 0.2, srcB, Budget{})
	if errA != nil || errB != nil {
		t.Fatalf("unexpected errors: %v / %v", errA, errB)
	}
	if plain != withCtx {
		t.Fatalf("context-free %+v != context %+v", plain, withCtx)
	}
	if srcA.Uint64() != srcB.Uint64() {
		t.Fatal("PRNG stream positions diverged")
	}
}

// constSampler draws a fixed value while consuming one stream word per
// draw, like the real kernels.
type constSampler float64

func (c constSampler) Sample(src *mt.Source) float64 {
	src.Float64()
	return float64(c)
}

// TestCoverageContextCancel checks the unbatched unit-charge path: the
// coverage walk polls the context every ctxStride draws.
func TestCoverageContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the walk must stop within one stride
	space := fakeSpace{m: 4}
	_, err := SelfAdjustingCoverageContext(ctx, space, 0.1, 0.25, mt.New(1), Budget{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("coverage did not report cancellation: %v", err)
	}
}

// fakeSpace is a minimal SymbolicSpace whose membership test always
// fails, forcing the walk to keep stepping until canceled or done.
type fakeSpace struct{ m int }

func (f fakeSpace) Draw(src *mt.Source) int { return src.Intn(f.m) }
func (f fakeSpace) InSet(j int) bool        { return j == 0 }
func (f fakeSpace) NumImages() int          { return f.m }
func (f fakeSpace) Weight() float64         { return 1 }
