package syncache

import (
	"encoding/binary"

	"cqabench/internal/synopsis"
)

// EncodedSize returns the exact byte length Encode would write for set:
// magic, version and length varints, payload, and the CRC-32 trailer.
// It is the canonical memory-accounting figure for a resident synopsis —
// the estimation service charges each cached synopsis.Set against its
// `-synopsis-mem-budget` at this size, so the budget corresponds 1:1 to
// `.syn` byte counts an operator can measure on disk (see the
// capacity-planning section of docs/REGISTRY.md). Returns 0 for nil.
func EncodedSize(set *synopsis.Set) int {
	if set == nil {
		return 0
	}
	payload := appendSet(nil, set)
	var buf [binary.MaxVarintLen64]byte
	n := len(magic)
	n += binary.PutUvarint(buf[:], Version)
	n += binary.PutUvarint(buf[:], uint64(len(payload)))
	n += len(payload)
	n += 4 // CRC-32 trailer
	return n
}
