package syncache

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip checks the codec's safety net: any input the
// decoder accepts must survive a re-encode/re-decode cycle unchanged,
// and the re-encoding must be stable (canonical bytes), while every
// rejected input must fail without panicking or over-allocating.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, set := range testSets() {
		var buf bytes.Buffer
		if err := Encode(&buf, set); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("CQSY"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := DecodeBytes(data)
		if err != nil {
			return // rejected input: only "no panic" is required
		}
		var buf bytes.Buffer
		if err := Encode(&buf, set); err != nil {
			t.Fatalf("re-encoding an accepted set failed: %v", err)
		}
		// The fuzzer may feed non-minimal varints, so the re-encoding
		// need not match the input bytes — but it must be canonical:
		// decoding it yields an equal set and identical bytes again.
		again, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("decoding a re-encoded set failed: %v", err)
		}
		if !reflect.DeepEqual(again, set) {
			t.Fatalf("re-decode mismatch:\n got %#v\nwant %#v", again, set)
		}
		var buf2 bytes.Buffer
		if err := Encode(&buf2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf2.Bytes(), buf.Bytes()) {
			t.Fatal("canonical encoding is not byte-stable")
		}
	})
}
