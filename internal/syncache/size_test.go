package syncache

import (
	"bytes"
	"testing"
)

// EncodedSize must agree byte-for-byte with what Encode writes — the
// LRU budget in the estimation service is denominated in these sizes,
// and capacity planning assumes they match the .syn files on disk.
func TestEncodedSizeMatchesEncode(t *testing.T) {
	for name, set := range testSets() {
		var buf bytes.Buffer
		if err := Encode(&buf, set); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := EncodedSize(set), buf.Len(); got != want {
			t.Errorf("%s: EncodedSize = %d, Encode wrote %d bytes", name, got, want)
		}
	}
	if EncodedSize(nil) != 0 {
		t.Errorf("EncodedSize(nil) = %d, want 0", EncodedSize(nil))
	}
}
