// Package syncache persists encoded synopses: a versioned, compact
// binary codec for synopsis.Set (varint-delta encoding with a CRC-32
// integrity trailer) and a content-addressed on-disk cache keyed by a
// stable hash of the inputs that produced the synopsis.
//
// The paper's SQL rewriting Q^rew materializes enc(syn_{Σ,Q}(D)) once
// and answers every scheme from it (Appendix C); this package is the
// analogous persistence step for the Go pipeline. Because every scheme
// only ever consumes the encoded synopsis, a cache hit lets a run skip
// data generation, noise injection and synopsis construction entirely
// — the dominant cost of warm benchmark iterations.
//
// The file layout is documented in docs/FORMATS.md. Briefly:
//
//	magic "CQSY" | uvarint codec version | uvarint payload length |
//	payload | CRC-32 (IEEE, little-endian) of the payload
//
// The payload encodes entries with delta-compressed varints: fact
// references are sorted, so relation ids are encoded as deltas and row
// ids as gaps; image members have strictly increasing block ids, so
// block ids are encoded as gap-1. Decoding rejects wrong magic
// (ErrBadMagic), unknown versions (ErrVersion) and any truncation,
// checksum failure or structural violation (ErrCorrupt).
package syncache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"cqabench/internal/relation"
	"cqabench/internal/synopsis"
)

// Version is the codec version written into (and required from) every
// file. Bump it on any layout change: the version participates in cache
// keys, so a bump invalidates every existing cache entry rather than
// misreading it.
const Version = 1

// magic identifies a syncache file. Four bytes, never versioned — the
// version is the varint that follows.
var magic = [4]byte{'C', 'Q', 'S', 'Y'}

var (
	// ErrBadMagic reports a file that is not a syncache file at all.
	ErrBadMagic = errors.New("syncache: bad magic (not a synopsis file)")
	// ErrVersion reports a file written by an incompatible codec version.
	ErrVersion = errors.New("syncache: unsupported codec version")
	// ErrCorrupt reports a truncated, checksum-failing or structurally
	// invalid file.
	ErrCorrupt = errors.New("syncache: corrupt synopsis file")
)

// Encode writes the canonical binary form of set to w. Encoding is a
// pure function of the set's structure: the same set always produces
// the same bytes, which is what makes content addressing and the
// warm-equals-cold guarantee work.
func Encode(w io.Writer, set *synopsis.Set) error {
	if set == nil {
		return fmt.Errorf("syncache: cannot encode a nil set")
	}
	payload := appendSet(nil, set)
	header := make([]byte, 0, len(magic)+2*binary.MaxVarintLen64)
	header = append(header, magic[:]...)
	header = binary.AppendUvarint(header, Version)
	header = binary.AppendUvarint(header, uint64(len(payload)))
	if _, err := w.Write(header); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// Decode reads a synopsis set previously written by Encode, validating
// magic, version, checksum and every structural invariant of the
// decoded admissible pairs.
func Decode(r io.Reader) (*synopsis.Set, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data)
}

// DecodeBytes is Decode over an in-memory file image.
func DecodeBytes(data []byte) (*synopsis.Set, error) {
	if len(data) < len(magic) {
		return nil, ErrCorrupt
	}
	if [4]byte(data[:4]) != magic {
		return nil, ErrBadMagic
	}
	d := decoder{buf: data[4:]}
	version := d.uvarint()
	if d.err != nil {
		return nil, ErrCorrupt
	}
	if version != Version {
		return nil, fmt.Errorf("%w: file has version %d, codec supports %d", ErrVersion, version, Version)
	}
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) {
		return nil, ErrCorrupt
	}
	payload, rest := d.buf[:n], d.buf[n:]
	if len(rest) != 4 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(rest) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return decodeSet(payload)
}

// appendSet appends the payload encoding of set to b.
func appendSet(b []byte, set *synopsis.Set) []byte {
	b = binary.AppendUvarint(b, uint64(set.HomomorphicSize))
	b = binary.AppendUvarint(b, uint64(len(set.Entries)))
	for i := range set.Entries {
		b = appendEntry(b, &set.Entries[i])
	}
	return b
}

func appendEntry(b []byte, e *synopsis.Entry) []byte {
	// Answer tuple: arbitrary dictionary values, zig-zag varints.
	b = binary.AppendUvarint(b, uint64(len(e.Tuple)))
	for _, v := range e.Tuple {
		b = binary.AppendVarint(b, int64(v))
	}
	// Facts: sorted relation-major, so delta-encode. A relation change
	// resets the row base; within a relation, rows strictly increase.
	b = binary.AppendUvarint(b, uint64(len(e.Facts)))
	prev := relation.FactRef{Rel: -1}
	for _, f := range e.Facts {
		if f.Rel == prev.Rel {
			b = binary.AppendUvarint(b, 0)
			b = binary.AppendUvarint(b, uint64(f.Row-prev.Row))
		} else {
			b = binary.AppendUvarint(b, uint64(f.Rel-prev.Rel))
			b = binary.AppendUvarint(b, uint64(f.Row))
		}
		prev = f
	}
	// Admissible pair: block cardinalities (>= 1, stored as size-1),
	// then images with gap-encoded block ids.
	p := e.Pair
	b = binary.AppendUvarint(b, uint64(len(p.BlockSizes)))
	for _, sz := range p.BlockSizes {
		b = binary.AppendUvarint(b, uint64(sz-1))
	}
	b = binary.AppendUvarint(b, uint64(len(p.Images)))
	for _, img := range p.Images {
		b = binary.AppendUvarint(b, uint64(len(img)))
		prevBlock := int32(-1)
		for _, m := range img {
			b = binary.AppendUvarint(b, uint64(m.Block-prevBlock-1))
			b = binary.AppendUvarint(b, uint64(m.Fact))
			prevBlock = m.Block
		}
	}
	return b
}

// decoder reads varints off a byte slice, latching the first error.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = ErrCorrupt
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = ErrCorrupt
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a length prefix and bounds it: every counted element costs
// at least one byte, so a count beyond the remaining buffer is corrupt
// (this also stops a flipped length bit from driving a huge allocation).
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)) {
		d.err = ErrCorrupt
		return 0
	}
	return int(v)
}

func decodeSet(payload []byte) (*synopsis.Set, error) {
	d := decoder{buf: payload}
	set := &synopsis.Set{}
	set.HomomorphicSize = int(d.uvarint())
	n := d.count()
	if d.err != nil {
		return nil, d.err
	}
	if n > 0 {
		// A zero count stays a nil slice, matching what synopsis.Build
		// produces for an empty answer set (keeps warm == cold DeepEqual).
		set.Entries = make([]synopsis.Entry, 0, n)
	}
	for i := 0; i < n; i++ {
		e, err := decodeEntry(&d)
		if err != nil {
			return nil, err
		}
		set.Entries = append(set.Entries, e)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.buf))
	}
	return set, nil
}

func decodeEntry(d *decoder) (synopsis.Entry, error) {
	var e synopsis.Entry
	tn := d.count()
	e.Tuple = make(relation.Tuple, tn)
	for i := range e.Tuple {
		e.Tuple[i] = relation.Value(d.varint())
	}
	fn := d.count()
	e.Facts = make([]relation.FactRef, fn)
	prev := relation.FactRef{Rel: -1}
	for i := range e.Facts {
		drel := d.uvarint()
		drow := d.uvarint()
		if d.err != nil {
			return e, d.err
		}
		var f relation.FactRef
		if drel == 0 {
			if i == 0 || drow == 0 {
				// Rel -1 is the synthetic base, and a zero row gap
				// would repeat the previous fact: both are invalid.
				return e, fmt.Errorf("%w: fact delta out of order", ErrCorrupt)
			}
			f = relation.FactRef{Rel: prev.Rel, Row: prev.Row + int32(drow)}
		} else {
			f = relation.FactRef{Rel: prev.Rel + int32(drel), Row: int32(drow)}
		}
		if f.Rel < 0 || f.Row < 0 {
			return e, fmt.Errorf("%w: fact reference overflow", ErrCorrupt)
		}
		e.Facts[i] = f
		prev = f
	}
	pair := &synopsis.Admissible{}
	bn := d.count()
	pair.BlockSizes = make([]int32, bn)
	for i := range pair.BlockSizes {
		sz := d.uvarint() + 1
		if sz > uint64(1)<<31-1 {
			return e, fmt.Errorf("%w: block size overflow", ErrCorrupt)
		}
		pair.BlockSizes[i] = int32(sz)
	}
	in := d.count()
	pair.Images = make([]synopsis.Image, in)
	for i := range pair.Images {
		mn := d.count()
		img := make(synopsis.Image, mn)
		prevBlock := int32(-1)
		for j := range img {
			gap := d.uvarint()
			fact := d.uvarint()
			if d.err != nil {
				return e, d.err
			}
			block := prevBlock + 1 + int32(gap)
			if block < 0 || fact > uint64(1)<<31-1 {
				return e, fmt.Errorf("%w: image member overflow", ErrCorrupt)
			}
			img[j] = synopsis.Member{Block: block, Fact: int32(fact)}
			prevBlock = block
		}
		pair.Images[i] = img
	}
	if d.err != nil {
		return e, d.err
	}
	if err := pair.Validate(); err != nil {
		return e, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	e.Pair = pair
	return e, nil
}
