package syncache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cqabench/internal/relation"
	"cqabench/internal/synopsis"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSets returns named synopsis sets covering the codec's edge cases:
// the empty set, a boolean (empty-tuple) answer, negative dictionary
// values, multi-relation fact lists and multi-image pairs.
func testSets() map[string]*synopsis.Set {
	return map[string]*synopsis.Set{
		"empty": {},
		"boolean": {
			HomomorphicSize: 1,
			Entries: []synopsis.Entry{{
				Tuple: relation.Tuple{},
				Facts: []relation.FactRef{{Rel: 0, Row: 0}},
				Pair: &synopsis.Admissible{
					BlockSizes: []int32{1},
					Images:     []synopsis.Image{{{Block: 0, Fact: 0}}},
				},
			}},
		},
		"rich": {
			HomomorphicSize: 3,
			Entries: []synopsis.Entry{
				{
					Tuple: relation.Tuple{-7, 0, 1 << 40},
					Facts: []relation.FactRef{
						{Rel: 0, Row: 2}, {Rel: 0, Row: 9}, {Rel: 2, Row: 0}, {Rel: 2, Row: 1},
					},
					Pair: &synopsis.Admissible{
						BlockSizes: []int32{3, 1, 2},
						Images: []synopsis.Image{
							{{Block: 0, Fact: 0}, {Block: 2, Fact: 1}},
							{{Block: 0, Fact: 2}, {Block: 1, Fact: 0}, {Block: 2, Fact: 0}},
						},
					},
				},
				{
					Tuple: relation.Tuple{42},
					Facts: []relation.FactRef{{Rel: 1, Row: 5}},
					Pair: &synopsis.Admissible{
						BlockSizes: []int32{4},
						Images:     []synopsis.Image{{{Block: 0, Fact: 3}}},
					},
				},
			},
		},
	}
}

func encodeBytes(t *testing.T, set *synopsis.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, set); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestCodecRoundTrip(t *testing.T) {
	for name, set := range testSets() {
		t.Run(name, func(t *testing.T) {
			data := encodeBytes(t, set)
			got, err := DecodeBytes(data)
			if err != nil {
				t.Fatalf("DecodeBytes: %v", err)
			}
			if !reflect.DeepEqual(got, set) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, set)
			}
			// Canonical determinism: re-encoding the decoded set must
			// reproduce the file byte for byte (content addressing
			// depends on it).
			if again := encodeBytes(t, got); !bytes.Equal(again, data) {
				t.Errorf("re-encoding is not byte-identical (%d vs %d bytes)", len(again), len(data))
			}
		})
	}
}

func TestEncodeNil(t *testing.T) {
	if err := Encode(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("Encode(nil set) succeeded")
	}
}

// TestGolden pins the byte-level layout: a codec change that alters the
// encoding of the committed golden file must bump Version (and
// regenerate goldens with -update).
func TestGolden(t *testing.T) {
	set := testSets()["rich"]
	data := encodeBytes(t, set)
	path := filepath.Join("testdata", "rich_v1.syn")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with go test -run TestGolden -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("encoding of the golden set changed (%d vs %d bytes): bump Version and regenerate with -update", len(data), len(want))
	}
	got, err := DecodeBytes(want)
	if err != nil {
		t.Fatalf("decoding golden file: %v", err)
	}
	if !reflect.DeepEqual(got, set) {
		t.Errorf("golden decode mismatch:\n got %#v\nwant %#v", got, set)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data := encodeBytes(t, testSets()["rich"])
	data[0] = 'X'
	if _, err := DecodeBytes(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	// Hand-build a file claiming codec version 99: the version check
	// fires before any framing or checksum is read.
	data := append([]byte(nil), magic[:]...)
	data = binary.AppendUvarint(data, 99)
	if _, err := DecodeBytes(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := encodeBytes(t, testSets()["rich"])
	for n := 0; n < len(data); n++ {
		if _, err := DecodeBytes(data[:n]); err == nil {
			t.Fatalf("decoding a %d/%d-byte prefix succeeded", n, len(data))
		}
	}
}

func TestDecodeRejectsChecksumFlip(t *testing.T) {
	data := encodeBytes(t, testSets()["rich"])
	// Flip one payload bit: either the CRC catches it, or — if the flip
	// survives into a structurally invalid payload — validation does.
	for i := 8; i < len(data); i += 7 {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x10
		if _, err := DecodeBytes(mutated); err == nil {
			t.Fatalf("decoding with byte %d flipped succeeded", i)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := encodeBytes(t, testSets()["rich"])
	if _, err := DecodeBytes(append(data, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt for trailing bytes", err)
	}
}

func TestDecodeRejectsStructuralViolations(t *testing.T) {
	// An admissible pair with an untouched block is structurally invalid
	// even though it frames and checksums correctly: decode must run
	// Validate and reject it.
	bad := &synopsis.Set{
		HomomorphicSize: 1,
		Entries: []synopsis.Entry{{
			Tuple: relation.Tuple{1},
			Facts: []relation.FactRef{{Rel: 0, Row: 0}},
			Pair: &synopsis.Admissible{
				BlockSizes: []int32{1, 1}, // block 1 appears in no image
				Images:     []synopsis.Image{{{Block: 0, Fact: 0}}},
			},
		}},
	}
	data := encodeBytes(t, bad)
	if _, err := DecodeBytes(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt for invalid admissible pair", err)
	}
}
