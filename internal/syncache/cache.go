package syncache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cqabench/internal/obs"
	"cqabench/internal/scenario"
	"cqabench/internal/synopsis"
)

// Mode controls what a Cache is allowed to do with the disk.
type Mode int

const (
	// ModeOff disables the cache entirely: every lookup misses and
	// nothing is written. A nil *Cache behaves the same.
	ModeOff Mode = iota
	// ModeRead loads existing entries but never writes new ones — for
	// reproducing results against a frozen cache, or read-only media.
	ModeRead
	// ModeReadWrite loads existing entries and stores fresh builds.
	ModeReadWrite
)

// ParseMode parses the CLI spelling of a mode: "off", "ro" or "rw".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "ro":
		return ModeRead, nil
	case "rw":
		return ModeReadWrite, nil
	default:
		return ModeOff, fmt.Errorf("syncache: unknown cache mode %q (want off, ro or rw)", s)
	}
}

func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "ro"
	case ModeReadWrite:
		return "rw"
	default:
		return "off"
	}
}

// Cache is a content-addressed store of encoded synopses: entry k lives
// at <dir>/<k[:2]>/<k>.syn, where k is the hex key returned by Key or
// PairKey. All methods are safe for concurrent use (the file system
// provides the synchronization: writes are temp-file + rename, so a
// reader never observes a partial entry) and nil-safe, so call sites
// need no cache-enabled checks.
type Cache struct {
	dir  string
	mode Mode
}

// Open returns a cache rooted at dir. In ModeReadWrite the directory is
// created if missing; in ModeRead it may be absent (every lookup then
// misses). Opening with an empty dir or ModeOff yields a disabled cache.
func Open(dir string, mode Mode) (*Cache, error) {
	if dir == "" || mode == ModeOff {
		return &Cache{mode: ModeOff}, nil
	}
	if mode == ModeReadWrite {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("syncache: %w", err)
		}
	}
	return &Cache{dir: dir, mode: mode}, nil
}

// Enabled reports whether lookups can ever hit.
func (c *Cache) Enabled() bool {
	return c != nil && c.mode != ModeOff && c.dir != ""
}

// Dir returns the cache root ("" when disabled).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Mode returns the cache's mode (ModeOff on nil).
func (c *Cache) Mode() Mode {
	if c == nil {
		return ModeOff
	}
	return c.mode
}

// path maps a key to its file. Two hex characters of fan-out keep
// directory listings manageable for large caches.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".syn")
}

// Get loads the synopsis stored under key. A missing entry is a plain
// miss; an unreadable or corrupt entry is also treated as a miss (and
// counted in syncache_corrupt_total) so a damaged cache degrades to a
// rebuild, never a failure. In read-write mode a corrupt entry is
// removed so the slot heals on the next Put.
func (c *Cache) Get(key string) (*synopsis.Set, bool) {
	if !c.Enabled() || len(key) < 2 {
		return nil, false
	}
	r := obs.Default()
	start := time.Now()
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		r.Counter("syncache_misses_total").Inc()
		return nil, false
	}
	set, err := DecodeBytes(data)
	if err != nil {
		r.Counter("syncache_misses_total").Inc()
		r.Counter("syncache_corrupt_total").Inc()
		if c.mode == ModeReadWrite {
			os.Remove(c.path(key))
		}
		return nil, false
	}
	r.Counter("syncache_hits_total").Inc()
	r.Histogram("syncache_load_seconds").Observe(time.Since(start).Seconds())
	return set, true
}

// Put stores the synopsis under key. A no-op outside read-write mode.
// The write is atomic (temp file + rename), so concurrent readers and
// crashed writers never leave a partial entry behind.
func (c *Cache) Put(key string, set *synopsis.Set) error {
	if !c.Enabled() || c.mode != ModeReadWrite || len(key) < 2 {
		return nil
	}
	start := time.Now()
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("syncache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("syncache: %w", err)
	}
	if err := Encode(tmp, set); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("syncache: %w", err)
	}
	info, _ := tmp.Stat()
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("syncache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("syncache: %w", err)
	}
	r := obs.Default()
	r.Counter("syncache_stores_total").Inc()
	if info != nil {
		r.Counter("syncache_bytes_written_total").Add(info.Size())
	}
	r.Histogram("syncache_store_seconds").Observe(time.Since(start).Seconds())
	return nil
}

// Source tells a caller of Resolve where its synopsis came from.
type Source string

const (
	// SourceBuild means the synopsis was computed by synopsis.Build.
	SourceBuild Source = "build"
	// SourceLoad means the synopsis was decoded from the cache.
	SourceLoad Source = "load"
)

// Resolve is the load-or-build step shared by the harness and the
// continuous bench: it returns the cached synopsis under key if
// present, and otherwise builds one and (in read-write mode) stores it.
// An empty key or disabled cache always builds. Store failures are
// reported through syncache_store_errors_total but do not fail the
// resolve — the build result is still returned.
func (c *Cache) Resolve(key string, build func() (*synopsis.Set, error)) (*synopsis.Set, Source, error) {
	if key != "" {
		if set, ok := c.Get(key); ok {
			return set, SourceLoad, nil
		}
	}
	set, err := build()
	if err != nil {
		return nil, SourceBuild, err
	}
	if key != "" {
		if err := c.Put(key, set); err != nil {
			obs.Default().Counter("syncache_store_errors_total").Inc()
		}
	}
	return set, SourceBuild, nil
}

// Key derives a content address from an ordered list of input
// fingerprints. The codec version is folded in, so a codec bump
// invalidates every existing entry instead of misreading it, and each
// part is length-framed, so no two part lists collide by concatenation.
func Key(parts ...string) string {
	h := sha256.New()
	h.Write([]byte("cqabench/syncache"))
	var buf [binary.MaxVarintLen64]byte
	h.Write(buf[:binary.PutUvarint(buf[:], Version)])
	for _, p := range parts {
		h.Write(buf[:binary.PutUvarint(buf[:], uint64(len(p)))])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// PairKey is the cache key of one scenario pair: it fingerprints
// everything that determines the pair's synopsis — the scenario
// generator configuration (which fixes the base database, the noise
// injection and the query generators), the workload and pair identity,
// the pair's full-precision parameters (pair names round levels to one
// decimal, so 0.25 and 0.2 would otherwise collide), and the canonical
// rendering of the query itself. Returns "" (disabling caching for the
// pair) when the workload carries no generator fingerprint, e.g. for
// workloads loaded from an export directory.
func PairKey(w *scenario.Workload, p scenario.Pair) string {
	if w.Fingerprint == "" {
		return ""
	}
	return Key(
		w.Fingerprint,
		w.Name,
		p.Name,
		fmt.Sprintf("noise=%g balance=%g joins=%d", p.Noise, p.Target, p.Joins),
		p.Query.Render(p.DB.Dict),
	)
}
