package syncache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cqabench/internal/synopsis"
)

func TestCachePutGet(t *testing.T) {
	c, err := Open(t.TempDir(), ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	set := testSets()["rich"]
	key := Key("put-get")
	if _, ok := c.Get(key); ok {
		t.Fatal("Get hit before Put")
	}
	if err := c.Put(key, set); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get missed after Put")
	}
	if !reflect.DeepEqual(got, set) {
		t.Errorf("Get returned a different set:\n got %#v\nwant %#v", got, set)
	}
}

func TestCacheReadOnlyNeverWrites(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("ro")
	if err := c.Put(key, testSets()["rich"]); err != nil {
		t.Fatalf("Put in ro mode: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("ro Put wrote %d entries to disk", len(entries))
	}
}

func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("corrupt")
	if err := c.Put(key, testSets()["rich"]); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".syn")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("Get hit on a truncated entry")
	}
	// In read-write mode the corrupt entry is removed so the slot heals.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry not removed: stat err = %v", err)
	}
	if err := c.Put(key, testSets()["rich"]); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("slot did not heal after re-Put")
	}
}

func TestResolveBuildsOnceThenLoads(t *testing.T) {
	c, err := Open(t.TempDir(), ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("resolve")
	builds := 0
	build := func() (*synopsis.Set, error) {
		builds++
		return testSets()["rich"], nil
	}
	set, source, err := c.Resolve(key, build)
	if err != nil || set == nil {
		t.Fatalf("cold Resolve: set=%v err=%v", set, err)
	}
	if source != SourceBuild || builds != 1 {
		t.Fatalf("cold Resolve: source=%q builds=%d", source, builds)
	}
	set2, source, err := c.Resolve(key, build)
	if err != nil {
		t.Fatalf("warm Resolve: %v", err)
	}
	if source != SourceLoad || builds != 1 {
		t.Fatalf("warm Resolve: source=%q builds=%d (want load, 1)", source, builds)
	}
	if !reflect.DeepEqual(set2, set) {
		t.Error("warm Resolve returned a different set")
	}
}

func TestResolveEmptyKeyAlwaysBuilds(t *testing.T) {
	c, err := Open(t.TempDir(), ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	builds := 0
	for i := 0; i < 2; i++ {
		_, source, err := c.Resolve("", func() (*synopsis.Set, error) {
			builds++
			return testSets()["rich"], nil
		})
		if err != nil || source != SourceBuild {
			t.Fatalf("Resolve(\"\"): source=%q err=%v", source, err)
		}
	}
	if builds != 2 {
		t.Fatalf("empty key cached anyway: %d builds", builds)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c.Enabled() {
		t.Error("nil cache reports enabled")
	}
	if _, ok := c.Get(Key("x")); ok {
		t.Error("nil cache Get hit")
	}
	if err := c.Put(Key("x"), testSets()["rich"]); err != nil {
		t.Errorf("nil cache Put: %v", err)
	}
	set, source, err := c.Resolve(Key("x"), func() (*synopsis.Set, error) {
		return testSets()["rich"], nil
	})
	if err != nil || set == nil || source != SourceBuild {
		t.Errorf("nil cache Resolve: set=%v source=%q err=%v", set, source, err)
	}
}

func TestKeyFraming(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("keys collide across part boundaries (length framing broken)")
	}
	if Key("a") == Key("a", "") {
		t.Error("trailing empty part does not change the key")
	}
	if Key("a") != Key("a") {
		t.Error("Key is not deterministic")
	}
	if len(Key("a")) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(Key("a")))
	}
}
