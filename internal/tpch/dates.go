package tpch

// Date handling: TPC-H dates span 1992-01-01 .. 1998-12-31. The generator
// works in day offsets from the epoch and encodes dates as yyyymmdd
// integers, so generated order/ship dates are valid calendar days and
// date arithmetic (ship = order + k days) stays meaningful.

// epochYear is the first year of the TPC-H date range.
const epochYear = 1992

// totalDays is the number of days in 1992-1998 inclusive.
const totalDays = 2557

var monthDays = [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

func isLeap(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}

// encodeDate converts a day offset (0 = 1992-01-01) into a yyyymmdd int.
// Offsets beyond the range wrap modulo the range, so arithmetic like
// "order date + 120 days" always yields a valid date.
func encodeDate(offset int) int {
	offset %= totalDays
	if offset < 0 {
		offset += totalDays
	}
	year := epochYear
	for {
		days := 365
		if isLeap(year) {
			days = 366
		}
		if offset < days {
			break
		}
		offset -= days
		year++
	}
	month := 0
	for {
		days := monthDays[month]
		if month == 1 && isLeap(year) {
			days = 29
		}
		if offset < days {
			break
		}
		offset -= days
		month++
	}
	return year*10000 + (month+1)*100 + (offset + 1)
}
