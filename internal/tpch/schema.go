// Package tpch provides the TPC-H schema (the paper's S_H with its primary
// keys Σ_H and foreign-key join graph) and a deterministic synthetic data
// generator standing in for the TPC-H dbgen tool.
//
// The schema is the full 8-relation, third-normal-form TPC-H schema with
// the official column lists and primary keys. The generator produces
// NULL-free, consistent databases whose join-column distributions follow
// the TPC-H referential structure (every foreign key hits an existing
// key), which is the property the paper's noise and query generators rely
// on; textual columns use compact vocabularies instead of dbgen's grammar
// (see DESIGN.md §1).
package tpch

import "cqabench/internal/relation"

// Schema returns the TPC-H schema. Attribute order follows the TPC-H
// specification; KeyLen encodes the primary keys (key(R) = {1..m}); the
// foreign keys drive the static query generator's joinable pairs.
func Schema() *relation.Schema {
	return relation.MustSchema([]relation.RelDef{
		{
			Name:   "region",
			Attrs:  []string{"r_regionkey", "r_name", "r_comment"},
			KeyLen: 1,
		},
		{
			Name:   "nation",
			Attrs:  []string{"n_nationkey", "n_name", "n_regionkey", "n_comment"},
			KeyLen: 1,
		},
		{
			Name: "supplier",
			Attrs: []string{
				"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
				"s_acctbal", "s_comment",
			},
			KeyLen: 1,
		},
		{
			Name: "part",
			Attrs: []string{
				"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
				"p_container", "p_retailprice", "p_comment",
			},
			KeyLen: 1,
		},
		{
			Name: "partsupp",
			Attrs: []string{
				"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
				"ps_comment",
			},
			KeyLen: 2,
		},
		{
			Name: "customer",
			Attrs: []string{
				"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
				"c_acctbal", "c_mktsegment", "c_comment",
			},
			KeyLen: 1,
		},
		{
			Name: "orders",
			Attrs: []string{
				"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
				"o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
				"o_comment",
			},
			KeyLen: 1,
		},
		{
			Name: "lineitem",
			Attrs: []string{
				"l_orderkey", "l_linenumber", "l_partkey", "l_suppkey",
				"l_quantity", "l_extendedprice", "l_discount", "l_tax",
				"l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
				"l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment",
			},
			KeyLen: 2,
		},
	}, []relation.ForeignKey{
		{FromRel: "nation", FromCols: []int{2}, ToRel: "region", ToCols: []int{0}},
		{FromRel: "supplier", FromCols: []int{3}, ToRel: "nation", ToCols: []int{0}},
		{FromRel: "customer", FromCols: []int{3}, ToRel: "nation", ToCols: []int{0}},
		{FromRel: "partsupp", FromCols: []int{0}, ToRel: "part", ToCols: []int{0}},
		{FromRel: "partsupp", FromCols: []int{1}, ToRel: "supplier", ToCols: []int{0}},
		{FromRel: "orders", FromCols: []int{1}, ToRel: "customer", ToCols: []int{0}},
		{FromRel: "lineitem", FromCols: []int{0}, ToRel: "orders", ToCols: []int{0}},
		{FromRel: "lineitem", FromCols: []int{2, 3}, ToRel: "partsupp", ToCols: []int{0, 1}},
		{FromRel: "lineitem", FromCols: []int{2}, ToRel: "part", ToCols: []int{0}},
		{FromRel: "lineitem", FromCols: []int{3}, ToRel: "supplier", ToCols: []int{0}},
	})
}
