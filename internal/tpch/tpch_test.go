package tpch

import (
	"fmt"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/engine"
	"cqabench/internal/relation"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if len(s.Rels) != 8 {
		t.Fatalf("relations = %d, want 8", len(s.Rels))
	}
	arities := map[string]int{
		"region": 3, "nation": 4, "supplier": 7, "part": 9,
		"partsupp": 5, "customer": 8, "orders": 9, "lineitem": 16,
	}
	keys := map[string]int{
		"region": 1, "nation": 1, "supplier": 1, "part": 1,
		"partsupp": 2, "customer": 1, "orders": 1, "lineitem": 2,
	}
	for name, want := range arities {
		def := s.Rel(name)
		if def == nil {
			t.Fatalf("missing relation %s", name)
		}
		if def.Arity() != want {
			t.Fatalf("%s arity = %d, want %d", name, def.Arity(), want)
		}
		if def.KeyLen != keys[name] {
			t.Fatalf("%s key length = %d, want %d", name, def.KeyLen, keys[name])
		}
	}
	if len(s.JoinablePairs()) < 10 {
		t.Fatalf("joinable pairs = %d, want >= 10", len(s.JoinablePairs()))
	}
}

func TestGenerateConsistent(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.001, Seed: 1})
	if !relation.IsConsistentDB(db) {
		t.Fatal("generated database violates its primary keys")
	}
	if db.NumFacts() < 5000 {
		t.Fatalf("facts = %d, unexpectedly small for SF 0.001", db.NumFacts())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 7})
	b := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 7})
	if a.NumFacts() != b.NumFacts() {
		t.Fatal("same config produced different sizes")
	}
	if a.String() != b.String() {
		t.Fatal("same config produced different databases")
	}
	c := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 8})
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestGenerateScales(t *testing.T) {
	small := MustGenerate(Config{ScaleFactor: 0.0005, Seed: 1})
	large := MustGenerate(Config{ScaleFactor: 0.002, Seed: 1})
	if large.NumFacts() <= small.NumFacts() {
		t.Fatalf("SF 0.002 (%d facts) not larger than SF 0.0005 (%d facts)",
			large.NumFacts(), small.NumFacts())
	}
}

func TestGenerateRejectsBadSF(t *testing.T) {
	if _, err := Generate(Config{ScaleFactor: 0}); err == nil {
		t.Fatal("SF 0 accepted")
	}
	if _, err := Generate(Config{ScaleFactor: -1}); err == nil {
		t.Fatal("negative SF accepted")
	}
}

// Referential integrity: every foreign key must reference an existing key,
// otherwise the noise generator's join-preserving construction and the
// SQG's join conditions would be meaningless.
func TestForeignKeysResolve(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.001, Seed: 3})
	s := db.Schema
	for _, fk := range s.FKs {
		from := db.Tables[s.RelIndex(fk.FromRel)]
		to := db.Tables[s.RelIndex(fk.ToRel)]
		// Index target key projections.
		targets := make(map[string]bool, len(to.Tuples))
		for _, tt := range to.Tuples {
			targets[renderProj(tt, fk.ToCols)] = true
		}
		for _, ft := range from.Tuples {
			if !targets[renderProj(ft, fk.FromCols)] {
				t.Fatalf("dangling FK %s%v -> %s%v", fk.FromRel, fk.FromCols, fk.ToRel, fk.ToCols)
			}
		}
	}
}

func renderProj(t relation.Tuple, cols []int) string {
	out := ""
	for _, c := range cols {
		out += fmt.Sprintf("%d|", int64(t[c]))
	}
	return out
}

// Queries over the generated data must join: the paper's whole methodology
// assumes join patterns are present.
func TestJoinsProduceAnswers(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.001, Seed: 5})
	ev := engine.NewEvaluator(db)
	q := cq.MustParse(
		"Q(n) :- customer(c, n, a, nk, ph, b, seg, cm), orders(o, c, st, tp, d, pr, cl, sp, ocm)",
		db.Dict)
	n, err := ev.CountHomomorphisms(q)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("customer-orders join is empty")
	}
	// Three-way join through lineitem.
	q3 := cq.MustParse(
		"Q() :- orders(o, c, st, tp, d, pr, cl, sp, ocm), lineitem(o, ln, p, s, qy, ep, di, tx, rf, ls, sd, cd, rd, si, sm, lc), part(p, pn, mf, br, ty, sz, cn, rp, pc)",
		db.Dict)
	n3, err := ev.CountHomomorphisms(q3)
	if err != nil {
		t.Fatal(err)
	}
	if n3 == 0 {
		t.Fatal("orders-lineitem-part join is empty")
	}
}

func TestRowCountRatios(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.001, Seed: 9})
	count := func(rel string) int {
		return len(db.Tables[db.Schema.RelIndex(rel)].Tuples)
	}
	if count("region") != 5 || count("nation") != 25 {
		t.Fatal("region/nation must have fixed cardinalities")
	}
	if count("partsupp") != 4*count("part") {
		t.Fatalf("partsupp = %d, want 4x part = %d", count("partsupp"), 4*count("part"))
	}
	if count("orders") < count("customer") {
		t.Fatal("orders should outnumber customers")
	}
	// lineitem averages ~4 per order.
	ratio := float64(count("lineitem")) / float64(count("orders"))
	if ratio < 2 || ratio > 6 {
		t.Fatalf("lineitem/orders ratio = %.2f, want ~4", ratio)
	}
}

// Regression: at tiny scale factors the supplier pool is smaller than 4,
// which used to make partsupp collide on its composite key.
func TestGenerateConsistentTinySF(t *testing.T) {
	for _, sf := range []float64{0.0001, 0.0002, 0.0004} {
		db := MustGenerate(Config{ScaleFactor: sf, Seed: 1})
		if !relation.IsConsistentDB(db) {
			t.Fatalf("SF %v: generated database inconsistent", sf)
		}
	}
}

func TestEncodeDateValid(t *testing.T) {
	cases := map[int]int{
		0:    19920101,
		30:   19920131,
		31:   19920201,
		59:   19920229, // 1992 is a leap year
		60:   19920301,
		365:  19921231,
		366:  19930101,
		2556: 19981231,
		2557: 19920101, // wraps
		-1:   19981231, // negative wraps backwards
	}
	for offset, want := range cases {
		if got := encodeDate(offset); got != want {
			t.Errorf("encodeDate(%d) = %d, want %d", offset, got, want)
		}
	}
}

func TestEncodeDateAlwaysValidCalendarDay(t *testing.T) {
	for offset := 0; offset < totalDays; offset++ {
		d := encodeDate(offset)
		y, m, day := d/10000, (d/100)%100, d%100
		if y < 1992 || y > 1998 || m < 1 || m > 12 || day < 1 || day > 31 {
			t.Fatalf("encodeDate(%d) = %d out of range", offset, d)
		}
		maxDay := monthDays[m-1]
		if m == 2 && isLeap(y) {
			maxDay = 29
		}
		if day > maxDay {
			t.Fatalf("encodeDate(%d) = %d: day %d exceeds month length %d", offset, d, day, maxDay)
		}
	}
}

func TestGeneratedDatesValid(t *testing.T) {
	db := MustGenerate(Config{ScaleFactor: 0.0003, Seed: 4})
	oi := db.Schema.RelIndex("orders")
	for _, tt := range db.Tables[oi].Tuples {
		d := int64(tt[4])
		if d < 19920101 || d > 19981231 {
			t.Fatalf("order date %d out of the TPC-H range", d)
		}
	}
	li := db.Schema.RelIndex("lineitem")
	for _, tt := range db.Tables[li].Tuples {
		ship, commit, receipt := int64(tt[10]), int64(tt[11]), int64(tt[12])
		for _, d := range []int64{ship, commit, receipt} {
			m := (d / 100) % 100
			if m < 1 || m > 12 {
				t.Fatalf("lineitem date %d has invalid month", d)
			}
		}
	}
}
