package tpch

import (
	"fmt"

	"cqabench/internal/mt"
	"cqabench/internal/relation"
)

// Config parameterizes data generation. ScaleFactor follows the TPC-H
// convention: SF = 1 yields the official row counts (~8.7M tuples); the
// benchmark harness typically uses SF around 0.001–0.01. Seed fixes the
// pseudo-random stream (MT19937-64, like the paper's implementation).
type Config struct {
	ScaleFactor float64
	Seed        uint64
}

// DefaultConfig is a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{ScaleFactor: 0.001, Seed: mt.DefaultSeed}
}

// Official TPC-H base cardinalities at SF = 1. region and nation are fixed.
const (
	baseSupplier = 10000
	basePart     = 200000
	baseCustomer = 150000
	baseOrders   = 1500000
)

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	// nationRegion maps each nation to its TPC-H region.
	nationRegion = []int{
		0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
	}
	mktSegments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	orderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	orderStatuses   = []string{"O", "F", "P"}
	returnFlags     = []string{"R", "A", "N"}
	lineStatuses    = []string{"O", "F"}
	shipInstructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes       = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers      = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP JAR"}
	brands          = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#34"}
	mfgrs           = []string{"Manufacturer#1", "Manufacturer#2", "Manufacturer#3", "Manufacturer#4", "Manufacturer#5"}
	partTypes       = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED NICKEL", "LARGE BRUSHED STEEL", "ECONOMY POLISHED BRASS", "PROMO ANODIZED STEEL"}
	partNames       = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower"}
	comments        = []string{"fluffily", "carefully", "quickly", "slyly", "furiously", "blithely", "quietly", "daringly"}
)

// scaled returns max(1, round(base * sf)).
func scaled(base int, sf float64) int {
	n := int(float64(base)*sf + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// suppliersPerPart returns how many suppliers each part has: 4 as in
// TPC-H, capped by the supplier count at tiny scale factors.
func suppliersPerPart(nSupp int) int {
	if nSupp < 4 {
		return nSupp
	}
	return 4
}

// supplierForPart returns the k-th supplier of part p. The stride spreads
// a part's suppliers across the supplier range; successive k values are
// guaranteed distinct so partsupp's composite key is never violated.
func supplierForPart(p, k, nSupp int) int {
	stride := nSupp / 4
	if stride < 1 {
		stride = 1
	}
	return 1 + (p+k*stride)%nSupp
}

// Generate produces a consistent TPC-H database. It is deterministic for a
// fixed Config.
func Generate(cfg Config) (*relation.Database, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %v", cfg.ScaleFactor)
	}
	src := mt.New(cfg.Seed)
	db := relation.NewDatabase(Schema())

	nSupp := scaled(baseSupplier, cfg.ScaleFactor)
	nPart := scaled(basePart, cfg.ScaleFactor)
	nCust := scaled(baseCustomer, cfg.ScaleFactor)
	nOrd := scaled(baseOrders, cfg.ScaleFactor)

	pick := func(xs []string) string { return xs[src.Intn(len(xs))] }
	comment := func() string { return pick(comments) + " " + pick(comments) }

	for i, name := range regionNames {
		db.MustInsert("region", i, name, comment())
	}
	for i, name := range nationNames {
		db.MustInsert("nation", i, name, nationRegion[i], comment())
	}
	for i := 1; i <= nSupp; i++ {
		db.MustInsert("supplier",
			i,
			fmt.Sprintf("Supplier#%09d", i),
			fmt.Sprintf("addr-s-%d", src.Intn(nSupp*4+1)),
			src.Intn(len(nationNames)),
			fmt.Sprintf("%02d-%07d", 10+src.Intn(25), src.Intn(10000000)),
			src.Intn(1099999)-99999, // account balance in cents
			comment(),
		)
	}
	for i := 1; i <= nPart; i++ {
		db.MustInsert("part",
			i,
			pick(partNames)+" "+pick(partNames),
			pick(mfgrs),
			pick(brands),
			pick(partTypes),
			1+src.Intn(50),
			pick(containers),
			90000+i%200*100+src.Intn(100), // retail price in cents
			comment(),
		)
	}
	// partsupp: each part is supplied by 4 suppliers (as in TPC-H).
	perPart := suppliersPerPart(nSupp)
	for p := 1; p <= nPart; p++ {
		for k := 0; k < perPart; k++ {
			s := supplierForPart(p, k, nSupp)
			db.MustInsert("partsupp",
				p, s,
				1+src.Intn(9999),
				100+src.Intn(99900), // supply cost in cents
				comment(),
			)
		}
	}
	for i := 1; i <= nCust; i++ {
		db.MustInsert("customer",
			i,
			fmt.Sprintf("Customer#%09d", i),
			fmt.Sprintf("addr-c-%d", src.Intn(nCust*4+1)),
			src.Intn(len(nationNames)),
			fmt.Sprintf("%02d-%07d", 10+src.Intn(25), src.Intn(10000000)),
			src.Intn(1099999)-99999,
			pick(mktSegments),
			comment(),
		)
	}
	// orders and lineitem: each order has 1–7 lineitems (TPC-H averages 4).
	for o := 1; o <= nOrd; o++ {
		cust := 1 + src.Intn(nCust)
		orderDay := src.Intn(totalDays - 151) // leave room for shipping
		db.MustInsert("orders",
			o,
			cust,
			pick(orderStatuses),
			1000000+src.Intn(50000000), // total price in cents
			encodeDate(orderDay),
			pick(orderPriorities),
			fmt.Sprintf("Clerk#%09d", 1+src.Intn(nOrd/100+1)),
			0,
			comment(),
		)
		nLines := 1 + src.Intn(7)
		for l := 1; l <= nLines; l++ {
			p := 1 + src.Intn(nPart)
			// Choose one of the part's suppliers so the
			// (l_partkey, l_suppkey) -> partsupp FK holds.
			k := src.Intn(perPart)
			s := supplierForPart(p, k, nSupp)
			shipDay := orderDay + 1 + src.Intn(120)
			db.MustInsert("lineitem",
				o, l, p, s,
				1+src.Intn(50),
				100000+src.Intn(9000000), // extended price in cents
				src.Intn(11),             // discount in percent
				src.Intn(9),              // tax in percent
				pick(returnFlags),
				pick(lineStatuses),
				encodeDate(shipDay),
				encodeDate(shipDay+src.Intn(30)),
				encodeDate(shipDay+src.Intn(30)),
				pick(shipInstructs),
				pick(shipModes),
				comment(),
			)
		}
	}
	return db, nil
}

// MustGenerate is Generate but panics on error; for tests and examples.
func MustGenerate(cfg Config) *relation.Database {
	db, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return db
}
