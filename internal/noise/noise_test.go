package noise

import (
	"strings"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
	"cqabench/internal/synopsis"
	"cqabench/internal/tpch"
)

func consistentDB(t *testing.T) *relation.Database {
	t.Helper()
	s := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"k", "a", "b"}, KeyLen: 1},
		{Name: "S", Attrs: []string{"k", "c"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	for i := 0; i < 20; i++ {
		db.MustInsert("R", i, i%5, i%3)
	}
	for i := 0; i < 5; i++ {
		db.MustInsert("S", i, i+100)
	}
	return db
}

func TestApplyInjectsConflicts(t *testing.T) {
	db := consistentDB(t)
	q := cq.MustParse("Q(a) :- R(k, a, b), S(a, c)", db.Dict)
	noisy, stats, err := Apply(db, q, DefaultConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if relation.IsConsistentDB(noisy) {
		t.Fatal("noisy database is still consistent")
	}
	if stats.AddedFacts == 0 || stats.RelevantFacts == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Original database untouched.
	if !relation.IsConsistentDB(db) {
		t.Fatal("Apply mutated its input")
	}
	if noisy.NumFacts() != db.NumFacts()+stats.AddedFacts {
		t.Fatal("fact accounting wrong")
	}
}

func TestBlockSizesWithinRange(t *testing.T) {
	db := consistentDB(t)
	q := cq.MustParse("Q(a) :- R(k, a, b)", db.Dict)
	cfg := Config{P: 1, MinBlock: 3, MaxBlock: 4, Seed: 11}
	noisy, _, err := Apply(db, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bi := relation.BuildBlocks(noisy)
	sawNonSingleton := false
	for _, b := range bi.NonSingletonBlocks() {
		sawNonSingleton = true
		if b.Size() < 2 || b.Size() > cfg.MaxBlock {
			t.Fatalf("block size %d outside [2, %d]", b.Size(), cfg.MaxBlock)
		}
	}
	if !sawNonSingleton {
		t.Fatal("no non-singleton blocks created at P = 1")
	}
}

func TestNoisePercentageScales(t *testing.T) {
	db := consistentDB(t)
	q := cq.MustParse("Q(a) :- R(k, a, b)", db.Dict)
	_, low, err := Apply(db, q, Config{P: 0.2, MinBlock: 2, MaxBlock: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, high, err := Apply(db, q, Config{P: 1, MinBlock: 2, MaxBlock: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if high.AddedFacts <= low.AddedFacts {
		t.Fatalf("P=1 added %d facts, P=0.2 added %d", high.AddedFacts, low.AddedFacts)
	}
	// With MinBlock = MaxBlock = 2, each selected fact adds exactly one
	// conflicting fact (up to duplicate collisions).
	if high.SelectedFacts["R"] != 20 {
		t.Fatalf("selected = %v, want all 20 R-facts", high.SelectedFacts)
	}
}

// The defining property of query-aware noise: the injected facts land in
// the query's synopsis blocks, i.e. noise actually affects the query.
func TestNoiseIsQueryAware(t *testing.T) {
	db := consistentDB(t)
	q := cq.MustParse("Q(a) :- R(k, a, b), S(a, c)", db.Dict)
	noisy, _, err := Apply(db, q, DefaultConfig(0.6))
	if err != nil {
		t.Fatal(err)
	}
	set, err := synopsis.Build(noisy, q)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, e := range set.Entries {
		for _, sz := range e.Pair.BlockSizes {
			if sz > 1 {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Fatal("no synopsis block of the noisy database is a conflict block: noise missed the query")
	}
}

// Join preservation: injected facts copy non-key parts from real facts, so
// they participate in joins.
func TestInjectedFactsPreserveJoins(t *testing.T) {
	db := consistentDB(t)
	q := cq.MustParse("Q(a) :- R(k, a, b), S(a, c)", db.Dict)
	noisy, _, err := Apply(db, q, Config{P: 1, MinBlock: 2, MaxBlock: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Every injected R-fact's 'a' value must still appear as an S key
	// (donor values come from real R-facts, whose a-values all do).
	ri := noisy.Schema.RelIndex("R")
	si := noisy.Schema.RelIndex("S")
	sKeys := map[relation.Value]bool{}
	for _, tt := range noisy.Tables[si].Tuples {
		sKeys[tt[0]] = true
	}
	for _, tt := range noisy.Tables[ri].Tuples {
		if !sKeys[tt[1]] {
			t.Fatalf("R-fact with a=%v does not join S", tt[1])
		}
	}
}

func TestApplyErrors(t *testing.T) {
	db := consistentDB(t)
	q := cq.MustParse("Q(a) :- R(k, a, b)", db.Dict)
	cases := []Config{
		{P: 0, MinBlock: 2, MaxBlock: 5},
		{P: 1.5, MinBlock: 2, MaxBlock: 5},
		{P: 0.5, MinBlock: 1, MaxBlock: 5},
		{P: 0.5, MinBlock: 4, MaxBlock: 3},
	}
	for _, cfg := range cases {
		if _, _, err := Apply(db, q, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	// Empty query result.
	qEmpty := cq.MustParse("Q() :- R(999, a, b)", db.Dict)
	if _, _, err := Apply(db, qEmpty, DefaultConfig(0.5)); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty-result query accepted: %v", err)
	}
	// Already inconsistent input.
	bad := db.Clone()
	bad.MustInsert("R", 0, 99, 99)
	if _, _, err := Apply(bad, q, DefaultConfig(0.5)); err == nil {
		t.Error("inconsistent input accepted")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	db := consistentDB(t)
	q := cq.MustParse("Q(a) :- R(k, a, b)", db.Dict)
	a, _, err := Apply(db, q, Config{P: 0.5, MinBlock: 2, MaxBlock: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Apply(db, q, Config{P: 0.5, MinBlock: 2, MaxBlock: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different noisy databases")
	}
}

func TestOnTPCH(t *testing.T) {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.0002, Seed: 1})
	q := cq.MustParse(
		"Q(n) :- customer(c, n, a, nk, ph, b, seg, cm), orders(o, c, st, tp, d, pr, cl, sp, ocm)",
		db.Dict)
	noisy, stats, err := Apply(db, q, DefaultConfig(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if relation.IsConsistentDB(noisy) {
		t.Fatal("TPC-H noisy database consistent")
	}
	if stats.SelectedFacts["customer"] == 0 && stats.SelectedFacts["orders"] == 0 {
		t.Fatalf("no query relation corrupted: %+v", stats.SelectedFacts)
	}
}

// The paper stresses the donor construction preserves join patterns
// "especially ... for joins over multi-attribute foreign-keys": corrupting
// lineitem must keep every (l_partkey, l_suppkey) pair resolvable in
// partsupp, because donors copy whole non-key suffixes from real facts.
func TestMultiAttributeFKPreserved(t *testing.T) {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.0003, Seed: 2})
	q := cq.MustParse(
		"Q() :- lineitem(o, l, pk, sk, qy, ep, di, tx, rf, ls, sd, cd, rd, si, sm, cm), partsupp(pk, sk, aq, sc, pc)",
		db.Dict)
	noisy, _, err := Apply(db, q, DefaultConfig(0.6))
	if err != nil {
		t.Fatal(err)
	}
	li := noisy.Schema.RelIndex("lineitem")
	ps := noisy.Schema.RelIndex("partsupp")
	pairs := map[[2]relation.Value]bool{}
	for _, tt := range noisy.Tables[ps].Tuples {
		pairs[[2]relation.Value{tt[0], tt[1]}] = true
	}
	for _, tt := range noisy.Tables[li].Tuples {
		if !pairs[[2]relation.Value{tt[2], tt[3]}] {
			t.Fatalf("lineitem (partkey=%v, suppkey=%v) has no partsupp row after noise",
				tt[2], tt[3])
		}
	}
}

// Different seeds must explore different noise placements.
func TestNoiseSeedVariation(t *testing.T) {
	db := consistentDB(t)
	q := cq.MustParse("Q(a) :- R(k, a, b)", db.Dict)
	a, _, err := Apply(db, q, Config{P: 0.3, MinBlock: 2, MaxBlock: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Apply(db, q, Config{P: 0.3, MinBlock: 2, MaxBlock: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("different seeds produced identical noise")
	}
}
