package noise

import (
	"fmt"

	"cqabench/internal/mt"
	"cqabench/internal/relation"
)

// ApplyOblivious injects primary-key noise the way the query-oblivious
// tools the paper surveys (BART, NADEEF, …) do: it corrupts facts chosen
// uniformly from the whole database, with no knowledge of any query.
// Section 6.1 argues this is inadequate for CQA benchmarking — "it is
// likely that we will not affect the evaluation of the query" since
// queries touch a small portion of a large database — and this
// implementation exists to let the benchmark demonstrate exactly that
// (see TestObliviousNoiseMissesQuery and the EXPERIMENTS.md note).
//
// P is interpreted against all facts of keyed relations; block sizes and
// the join-preserving donor construction work as in Apply.
func ApplyOblivious(db *relation.Database, cfg Config) (*relation.Database, Stats, error) {
	var stats Stats
	if err := cfg.validate(); err != nil {
		return nil, stats, err
	}
	if !relation.IsConsistentDB(db) {
		return nil, stats, fmt.Errorf("noise: input database is already inconsistent")
	}
	stats.SelectedFacts = make(map[string]int)
	src := mt.New(cfg.Seed)
	out := db.Clone()

	for ri := range db.Schema.Rels {
		def := &db.Schema.Rels[ri]
		if def.KeyLen == 0 {
			continue
		}
		table := db.Tables[ri]
		n := len(table.Tuples)
		if n == 0 {
			continue
		}
		stats.RelevantFacts += n
		m := int(cfg.P*float64(n) + 0.999999)
		if m > n {
			m = n
		}
		perm := src.Perm(n)
		stats.SelectedFacts[def.Name] = m
		for _, row := range perm[:m] {
			base := table.Tuples[row]
			s := cfg.MinBlock + src.Intn(cfg.MaxBlock-cfg.MinBlock+1)
			added := 0
			attempts := 0
			for added < s-1 && attempts < (s-1)*20 {
				attempts++
				donor := donorTuple(table, def.KeyLen, base, src)
				if donor == nil {
					break
				}
				nt := make(relation.Tuple, len(base))
				copy(nt, base[:def.KeyLen])
				copy(nt[def.KeyLen:], donor[def.KeyLen:])
				fresh, err := out.InsertTuple(def.Name, nt)
				if err != nil {
					return nil, stats, err
				}
				if fresh {
					added++
					stats.AddedFacts++
				}
			}
		}
	}
	return out, stats, nil
}
