package noise

import (
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/relation"
	"cqabench/internal/synopsis"
	"cqabench/internal/tpch"
)

func TestObliviousInjectsConflicts(t *testing.T) {
	db := consistentDB(t)
	noisy, stats, err := ApplyOblivious(db, DefaultConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if relation.IsConsistentDB(noisy) {
		t.Fatal("oblivious noise produced a consistent database")
	}
	if stats.AddedFacts == 0 {
		t.Fatal("no facts added")
	}
	if !relation.IsConsistentDB(db) {
		t.Fatal("input mutated")
	}
}

func TestObliviousValidation(t *testing.T) {
	db := consistentDB(t)
	if _, _, err := ApplyOblivious(db, Config{P: 0, MinBlock: 2, MaxBlock: 5}); err == nil {
		t.Fatal("P=0 accepted")
	}
	bad := db.Clone()
	bad.MustInsert("R", 0, 99, 99)
	if _, _, err := ApplyOblivious(bad, DefaultConfig(0.5)); err == nil {
		t.Fatal("inconsistent input accepted")
	}
}

func TestObliviousDeterministic(t *testing.T) {
	db := consistentDB(t)
	a, _, err := ApplyOblivious(db, Config{P: 0.3, MinBlock: 2, MaxBlock: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ApplyOblivious(db, Config{P: 0.3, MinBlock: 2, MaxBlock: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("not deterministic")
	}
}

// The paper's Section 6.1 motivation, demonstrated: on a large database
// where the query touches a small slice, query-oblivious noise at a
// moderate rate corrupts far fewer query-relevant blocks than the
// query-aware generator at the same rate.
func TestObliviousNoiseMissesQuery(t *testing.T) {
	db := tpch.MustGenerate(tpch.Config{ScaleFactor: 0.0005, Seed: 1})
	// A selective query: one customer segment's urgent orders.
	q := cq.MustParse(
		"Q(n) :- customer(c, n, a, nk, ph, b, 'BUILDING', cm), orders(o, c, st, tp, d, '1-URGENT', cl, sp, ocm)",
		db.Dict)

	conflictBlocks := func(noisy *relation.Database) int {
		set, err := synopsis.Build(noisy, q)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range set.Entries {
			for _, sz := range e.Pair.BlockSizes {
				if sz > 1 {
					n++
				}
			}
		}
		return n
	}

	cfg := Config{P: 0.5, MinBlock: 2, MaxBlock: 3, Seed: 3}
	aware, awareStats, err := Apply(db, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Equal noise budget: give the oblivious generator the same number of
	// corrupted facts, but chosen over the WHOLE database — the setting
	// the paper's §6.1 argument is about ("we typically deal with very
	// large databases, while only a small portion of them is needed to
	// answer a query").
	awareSelected := 0
	for _, n := range awareStats.SelectedFacts {
		awareSelected += n
	}
	totalKeyed := 0
	for ri := range db.Schema.Rels {
		if db.Schema.Rels[ri].KeyLen > 0 {
			totalKeyed += len(db.Tables[ri].Tuples)
		}
	}
	oblCfg := cfg
	oblCfg.P = float64(awareSelected) / float64(totalKeyed)
	if oblCfg.P <= 0 {
		t.Fatal("degenerate budget")
	}
	oblivious, _, err := ApplyOblivious(db, oblCfg)
	if err != nil {
		t.Fatal(err)
	}
	awareHits := conflictBlocks(aware)
	obliviousHits := conflictBlocks(oblivious)
	if awareHits == 0 {
		t.Fatal("query-aware noise failed to hit the query")
	}
	// Same budget of corrupted facts, but the aware generator spends all
	// of it on query-relevant blocks while the oblivious one scatters it:
	// the aware hit count must dominate clearly.
	if obliviousHits*2 >= awareHits {
		t.Fatalf("oblivious noise hit %d query blocks vs aware %d at equal budget: the paper's motivation did not manifest",
			obliviousHits, awareHits)
	}
}
