// Package noise implements the paper's query-aware noise generator for
// primary keys (Section 6.1). Given a consistent database D, a query Q
// with Q(D) ≠ ∅, a noise percentage p and a block-size range [ℓ, u], it
// injects inconsistency that is guaranteed to affect the query:
//
//	Step 1: compute syn_{Σ,Q}(D) and collect H, the facts of D that can
//	        affect the query result.
//	Step 2: per relation R with a key, randomly select ⌈p · |H_R|⌉ of the
//	        R-facts in H.
//	Step 3: for each selected fact, grow its block to a uniform size
//	        s ∈ [ℓ, u] by adding s−1 conflicting facts whose non-key
//	        values are copied from other facts of R (different key), so
//	        the injected facts preserve the join patterns of the data —
//	        including joins over multi-attribute foreign keys.
package noise

import (
	"fmt"

	"cqabench/internal/cq"
	"cqabench/internal/mt"
	"cqabench/internal/relation"
	"cqabench/internal/synopsis"
)

// Config parameterizes noise injection.
type Config struct {
	// P is the fraction (0, 1] of query-relevant facts per relation whose
	// blocks get corrupted.
	P float64
	// MinBlock and MaxBlock bound the size of generated non-singleton
	// blocks; the paper's experiments use [2, 5].
	MinBlock, MaxBlock int
	// Seed fixes the random stream.
	Seed uint64
}

// DefaultConfig mirrors the paper's setting (block sizes [2, 5]).
func DefaultConfig(p float64) Config {
	return Config{P: p, MinBlock: 2, MaxBlock: 5, Seed: mt.DefaultSeed}
}

// Stats reports what the generator did.
type Stats struct {
	// SelectedFacts counts the query-relevant facts whose blocks were
	// corrupted, per relation name.
	SelectedFacts map[string]int
	// AddedFacts is the total number of injected facts.
	AddedFacts int
	// RelevantFacts is |H|: the query-relevant facts found by Step 1.
	RelevantFacts int
}

func (c Config) validate() error {
	if c.P <= 0 || c.P > 1 {
		return fmt.Errorf("noise: P must be in (0, 1], got %v", c.P)
	}
	if c.MinBlock < 2 {
		return fmt.Errorf("noise: MinBlock must be >= 2 (a non-singleton block), got %d", c.MinBlock)
	}
	if c.MaxBlock < c.MinBlock {
		return fmt.Errorf("noise: MaxBlock %d < MinBlock %d", c.MaxBlock, c.MinBlock)
	}
	return nil
}

// Apply returns a new database D* = D plus injected conflicting facts.
// D must be consistent and Q(D) non-empty, as in the paper. D itself is
// not modified.
func Apply(db *relation.Database, q *cq.Query, cfg Config) (*relation.Database, Stats, error) {
	var stats Stats
	if err := cfg.validate(); err != nil {
		return nil, stats, err
	}
	if !relation.IsConsistentDB(db) {
		return nil, stats, fmt.Errorf("noise: input database is already inconsistent")
	}

	// Step 1: the query-relevant facts H.
	set, err := synopsis.Build(db, q)
	if err != nil {
		return nil, stats, err
	}
	relevant := set.ImageFacts()
	if len(relevant) == 0 {
		return nil, stats, fmt.Errorf("noise: Q(D) is empty; the noise generator requires a non-empty query result")
	}
	stats.RelevantFacts = len(relevant)
	stats.SelectedFacts = make(map[string]int)

	src := mt.New(cfg.Seed)
	out := db.Clone()

	// Group H by relation, keeping only keyed relations (keyless facts
	// can never conflict).
	byRel := make(map[int32][]relation.FactRef)
	for _, f := range relevant {
		if db.Schema.Rels[f.Rel].KeyLen > 0 {
			byRel[f.Rel] = append(byRel[f.Rel], f)
		}
	}

	// Iterate relations in schema order for determinism.
	for ri := range db.Schema.Rels {
		facts := byRel[int32(ri)]
		if len(facts) == 0 {
			continue
		}
		def := &db.Schema.Rels[ri]
		// Step 2: select ⌈p·|H_R|⌉ facts uniformly at random.
		m := int(cfg.P*float64(len(facts)) + 0.999999)
		if m > len(facts) {
			m = len(facts)
		}
		src.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
		selected := facts[:m]
		stats.SelectedFacts[def.Name] = m

		table := db.Tables[ri]
		for _, f := range selected {
			base := db.Fact(f)
			// Step 3: grow the block to size s ∈ [ℓ, u].
			s := cfg.MinBlock + src.Intn(cfg.MaxBlock-cfg.MinBlock+1)
			added := 0
			attempts := 0
			for added < s-1 && attempts < (s-1)*20 {
				attempts++
				donor := donorTuple(table, def.KeyLen, base, src)
				if donor == nil {
					break // single-key relation: no join-preserving donor
				}
				nt := make(relation.Tuple, len(base))
				copy(nt, base[:def.KeyLen])
				copy(nt[def.KeyLen:], donor[def.KeyLen:])
				fresh, err := out.InsertTuple(def.Name, nt)
				if err != nil {
					return nil, stats, err
				}
				if fresh {
					added++
					stats.AddedFacts++
				}
			}
		}
	}
	return out, stats, nil
}

// donorTuple picks a random fact of the same relation with a different key
// value, whose non-key part will be grafted onto the corrupted key so the
// injected fact joins like real data. Returns nil when no such fact exists
// (single-key-value relation).
func donorTuple(table *relation.Table, keyLen int, base relation.Tuple, src *mt.Source) relation.Tuple {
	n := len(table.Tuples)
	for attempt := 0; attempt < 50; attempt++ {
		cand := table.Tuples[src.Intn(n)]
		if !sameKey(cand, base, keyLen) {
			return cand
		}
	}
	// Fall back to a linear scan before giving up: the random probes can
	// miss when almost all tuples share the base key.
	for _, cand := range table.Tuples {
		if !sameKey(cand, base, keyLen) {
			return cand
		}
	}
	return nil
}

func sameKey(a, b relation.Tuple, keyLen int) bool {
	for i := 0; i < keyLen; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
