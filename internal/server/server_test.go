package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cqabench/internal/obs"
	"cqabench/internal/relation"
)

// smallDB is the Employee example: one Boolean join query has exact
// frequency 0.5 and "Q(n) :- Employee(i, n, d)" has three answers.
func smallDB(t testing.TB) *relation.Database {
	t.Helper()
	s := relation.MustSchema([]relation.RelDef{
		{Name: "Employee", Attrs: []string{"id", "name", "dept"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	db.MustInsert("Employee", 1, "Bob", "HR")
	db.MustInsert("Employee", 1, "Bob", "IT")
	db.MustInsert("Employee", 2, "Alice", "IT")
	db.MustInsert("Employee", 2, "Tim", "IT")
	return db
}

// heavyDB returns an instance whose single Boolean answer needs far more
// sampling than any test deadline allows, so requests against it only
// ever end by cancellation, deadline or budget.
func heavyDB(t testing.TB, blocks int) *relation.Database {
	t.Helper()
	s := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"k", "v"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	for b := 0; b < blocks; b++ {
		db.MustInsert("R", b, "a")
		db.MustInsert("R", b, "b")
	}
	return db
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t testing.TB, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func TestEstimateHandlerTable(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	url := ts.URL + "/v1/estimate"
	cases := []struct {
		name   string
		body   string
		status int
		code   string // expected .code of the error body, "" for 2xx
	}{
		{"invalid json", `{`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"query": "Q() :- Employee(1, n, d)", "bogus": 1}`, http.StatusBadRequest, "bad_request"},
		{"bad scheme", `{"query": "Q() :- Employee(1, n, d)", "scheme": "Fast"}`, http.StatusBadRequest, "bad_scheme"},
		{"eps out of range", `{"query": "Q() :- Employee(1, n, d)", "eps": 2}`, http.StatusBadRequest, "invalid_options"},
		{"delta out of range", `{"query": "Q() :- Employee(1, n, d)", "delta": 1}`, http.StatusBadRequest, "invalid_options"},
		{"negative budget", `{"query": "Q() :- Employee(1, n, d)", "max_samples": -1}`, http.StatusBadRequest, "invalid_options"},
		{"unparsable query", `{"query": "SELECT *"}`, http.StatusBadRequest, "bad_query"},
		{"unknown relation", `{"query": "Q() :- Nope(x)"}`, http.StatusBadRequest, "bad_query"},
		{"budget exhausted", `{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM", "max_samples": 1}`, http.StatusUnprocessableEntity, "budget_exhausted"},
		{"ok", `{"query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "KLM"}`, http.StatusOK, ""},
		{"ok auto", `{"query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)"}`, http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := post(t, url, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, body)
			}
			if tc.code != "" {
				var e ErrorEnvelope
				if err := json.Unmarshal([]byte(body), &e); err != nil {
					t.Fatalf("error body %q not JSON: %v", body, err)
				}
				if e.Error.Code != tc.code {
					t.Fatalf("code = %q, want %q (%s)", e.Error.Code, tc.code, e.Error.Message)
				}
				if e.Error.Message == "" {
					t.Fatalf("error %q without a message", tc.code)
				}
				// Deprecated flat mirrors stay for one release.
				if e.Code != tc.code || e.Message != e.Error.Message {
					t.Fatalf("legacy mirror fields out of sync: %s", body)
				}
			}
		})
	}
}

func TestEstimateResponseShape(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	status, body, _ := post(t, ts.URL+"/v1/estimate",
		`{"query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "Natural"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp EstimateResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scheme != "Natural" || len(resp.Answers) != 1 || len(resp.Answers[0].Tuple) != 0 {
		t.Fatalf("unexpected response %+v", resp)
	}
	// ε = 0.1: the estimate must be within ε of the exact frequency 1/2.
	if f := resp.Answers[0].Freq; f < 0.4 || f > 0.6 {
		t.Fatalf("freq = %v, want 0.5 ± 0.1", f)
	}
	if resp.Stats.Samples <= 0 || resp.Stats.NumTuples != 1 {
		t.Fatalf("stats = %+v", resp.Stats)
	}
	if resp.Synopsis != "build" {
		t.Fatalf("first request synopsis source = %q, want build", resp.Synopsis)
	}
	// Same query again: the synopsis must be resident in the LRU.
	_, body, _ = post(t, ts.URL+"/v1/estimate",
		`{"query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "Natural"}`)
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Synopsis != "lru" {
		t.Fatalf("repeat request synopsis source = %q, want lru", resp.Synopsis)
	}
	if resp.Instance != "default" {
		t.Fatalf("instance = %q, want default", resp.Instance)
	}
}

func TestEstimateDeterministicPerSeed(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	body := `{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM", "seed": 7}`
	_, first, _ := post(t, ts.URL+"/v1/estimate", body)
	_, second, _ := post(t, ts.URL+"/v1/estimate", body)
	var a, b EstimateResponse
	if err := json.Unmarshal([]byte(first), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(second), &b); err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != len(b.Answers) || a.Stats.Samples != b.Stats.Samples {
		t.Fatalf("repeat run diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.Answers {
		if a.Answers[i].Freq != b.Answers[i].Freq {
			t.Fatalf("answer %d: %v != %v", i, a.Answers[i].Freq, b.Answers[i].Freq)
		}
	}
}

func TestSynopsisEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	status, body, _ := post(t, ts.URL+"/v1/synopsis", `{"query": "Q(n) :- Employee(i, n, d)"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp SynopsisResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Answers != 3 || resp.Source != "build" {
		t.Fatalf("unexpected response %+v", resp)
	}
	if resp.Balance <= 0 || resp.Balance > 1 {
		t.Fatalf("balance = %v", resp.Balance)
	}
	if resp.IndicatedScheme == "" {
		t.Fatal("missing indicated scheme")
	}
	_, body, _ = post(t, ts.URL+"/v1/synopsis", `{"query": "Q(n) :- Employee(i, n, d)"}`)
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "lru" {
		t.Fatalf("repeat source = %q, want lru", resp.Source)
	}
}

func TestBodySizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 1, MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"query": %q}`, "Q() :- Employee(1, n, d)"+strings.Repeat(" ", 200))
	status, body, _ := post(t, ts.URL+"/v1/estimate", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%s), want 413", status, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/estimate = %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	post(t, ts.URL+"/v1/estimate", `{"query": "Q() :- Employee(1, n, d)", "scheme": "Natural"}`)
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mb, []byte("server_requests_total")) {
		t.Fatalf("metrics exposition missing server_requests_total:\n%s", mb)
	}
	// Draining flips healthz to 503 for load balancers.
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

// heavydone posts the unbounded heavy query in a goroutine and returns a
// channel with the final status (0 on transport error).
func heavyPost(ts *httptest.Server, client *http.Client, ctx context.Context, timeoutMS int) chan int {
	done := make(chan int, 1)
	go func() {
		body := fmt.Sprintf(`{"query": "Q() :- R(0, 'a')", "scheme": "Natural", "eps": 0.0002, "timeout_ms": %d}`, timeoutMS)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/estimate", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			done <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	return done
}

func waitInflight(t testing.TB, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Inflight() != want {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, want %d after 5s", s.Inflight(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Cancelling a client request mid-estimation must release its worker
// promptly: the estimator polls ctx at each 256-draw chunk boundary, so
// the slot frees within one chunk — milliseconds — not after the many
// seconds the eps=0.003 run would otherwise take.
func TestCancelMidEstimationFreesWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: heavyDB(t, 1000), Workers: 1, QueueDepth: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := heavyPost(ts, ts.Client(), ctx, 600_000)
	waitInflight(t, s, 1)
	time.Sleep(50 * time.Millisecond) // let the sampling loop get going
	start := time.Now()
	cancel()
	waitInflight(t, s, 0)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("worker slot held %v after cancel, want ~one sampling chunk", elapsed)
	}
	<-done
}

// A request whose own deadline expires mid-estimation gets a 504 with
// the canceled error chain, again within about one chunk of the expiry.
func TestRequestDeadlineReturns504(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: heavyDB(t, 1000), Workers: 1})
	done := heavyPost(ts, ts.Client(), context.Background(), 300)
	select {
	case status := <-done:
		if status != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadline-bound request did not return")
	}
	waitInflight(t, s, 0)
}

// With one worker and a queue depth of one, a third concurrent request
// must be turned away immediately with 429 and a Retry-After hint.
func TestQueueFullRejectsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: heavyDB(t, 1000), Workers: 1, QueueDepth: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := heavyPost(ts, ts.Client(), ctx, 600_000)
	waitInflight(t, s, 1)
	// A distinct timeout keeps the second request out of the first's
	// single-flight key, so it really occupies the queue slot.
	second := heavyPost(ts, ts.Client(), ctx, 600_001)
	// Wait for the second request to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.admittedTotal() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admitted = %d, want 2", s.sched.admittedTotal())
		}
		time.Sleep(2 * time.Millisecond)
	}
	status, body, hdr := post(t, ts.URL+"/v1/estimate", `{"query": "Q() :- R(0, 'a')"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("429 body %q not JSON: %v", body, err)
	}
	if e.Error.Code != "queue_full" || !e.Error.Retryable || e.Error.Instance != "default" {
		t.Fatalf("queue_full envelope = %+v", e.Error)
	}
	if reg := s.Registry(); reg.Counter("server_rejected_total", obs.L("reason", "queue_full")).Value() == 0 {
		t.Fatal("rejection not counted")
	}
	cancel()
	<-first
	<-second
}

// A queued request whose deadline expires before a worker frees up gets
// a 504 without ever running.
func TestQueuedRequestDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: heavyDB(t, 1000), Workers: 1, QueueDepth: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := heavyPost(ts, ts.Client(), ctx, 600_000)
	waitInflight(t, s, 1)
	queued := heavyPost(ts, ts.Client(), context.Background(), 250)
	select {
	case status := <-queued:
		if status != http.StatusGatewayTimeout {
			t.Fatalf("queued request status = %d, want 504", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request did not expire")
	}
	cancel()
	<-first
}

// Shutdown must drain: the in-flight request runs to its own deadline
// and gets a well-formed response, while requests arriving during the
// drain are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	db := heavyDB(t, 1000)
	s, err := New(Config{DB: db, Workers: 2, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	client := &http.Client{}

	body := `{"query": "Q() :- R(0, 'a')", "scheme": "Natural", "eps": 0.0002, "timeout_ms": 1000}`
	done := make(chan int, 1)
	go func() {
		resp, err := client.Post(base+"/v1/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			done <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitInflight(t, s, 1)

	var refused atomic.Int32
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Requests during the drain must be refused — 503 from the draining
	// check on a surviving connection, or a transport error once the
	// listener is closed. None may start new work.
	for i := 0; i < 5; i++ {
		resp, err := client.Post(base+"/v1/estimate", "application/json",
			strings.NewReader(`{"query": "Q() :- R(0, 'a')"}`))
		if err != nil {
			refused.Add(1)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			refused.Add(1)
		} else {
			t.Errorf("request during drain got %d, want refusal", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}

	select {
	case status := <-done:
		// The in-flight request drained to completion: its own 1s
		// deadline fired and the handler wrote a full 504 response.
		if status != http.StatusGatewayTimeout {
			t.Fatalf("in-flight request finished with %d, want 504", status)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown did not return after drain")
	}
	if got := refused.Load(); got == 0 {
		t.Fatal("no request was refused during the drain")
	}
}

func TestNewValidatesConfig(t *testing.T) {
	// A server with no instances is valid: it serves the registry API and
	// acquires instances at runtime.
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("zero-instance config rejected: %v", err)
	}
	if got := len(s.Instances()); got != 0 {
		t.Fatalf("instances = %d, want 0", got)
	}
	if _, err := New(Config{DB: smallDB(t), DefaultTimeout: time.Hour, MaxTimeout: time.Second}); err == nil {
		t.Fatal("default timeout above max accepted")
	}
	if _, err := New(Config{Instances: []InstanceConfig{{Name: "a"}}}); err == nil {
		t.Fatal("instance without database accepted")
	}
	if _, err := New(Config{
		DB:        smallDB(t),
		Instances: []InstanceConfig{{Name: "default", DB: smallDB(t)}},
	}); err == nil {
		t.Fatal("duplicate instance name accepted")
	}
	if _, err := New(Config{Instances: []InstanceConfig{{Name: "bad name!", DB: smallDB(t)}}}); err == nil {
		t.Fatal("invalid instance name accepted")
	}
}
