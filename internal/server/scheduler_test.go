package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cqabench/internal/obs"
	"cqabench/internal/scenario"
)

// schedGrab runs one blocking acquire in a goroutine and reports its
// outcome. done receives the release func (nil on error).
type schedGrab struct {
	release func()
	err     error
}

func grab(s *scheduler, ctx context.Context, name string) chan schedGrab {
	out := make(chan schedGrab, 1)
	go func() {
		release, _, err := s.acquire(ctx, name)
		out <- schedGrab{release: release, err: err}
	}()
	return out
}

// waitQueued spins until name has n waiters in its FIFO.
func waitQueued(t *testing.T, s *scheduler, name string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.queued(name) != n {
		if time.Now().After(deadline) {
			t.Fatalf("instance %q queued = %d, want %d", name, s.queued(name), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// The DRR core property: under contention, grants split proportionally
// to weight. One worker slot, weights hot:cold = 2:1; grants must
// interleave so every three consecutive grants serve hot twice and
// cold once — the hot tenant's backlog never starves the cold one.
func TestSchedulerWeightProportionalGrants(t *testing.T) {
	const perTenant = 30
	s := newScheduler(1, perTenant+1, nil, obs.NewRegistry())
	s.registerTenant("hot", 2, nil)
	s.registerTenant("cold", 1, nil)

	// Occupy the single slot so all test waiters queue behind it.
	blocker := <-grab(s, context.Background(), "blocker")
	if blocker.err != nil {
		t.Fatal(blocker.err)
	}

	// Each granted waiter appends its tenant and releases, which grants
	// the next — so order is the exact DRR grant sequence.
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(name string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g := <-grab(s, context.Background(), name)
				if g.err != nil {
					t.Error(g.err)
					return
				}
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				g.release()
			}()
		}
		waitQueued(t, s, name, n)
	}
	enqueue("hot", perTenant)
	enqueue("cold", perTenant)

	blocker.release()
	wg.Wait()

	if len(order) != 2*perTenant {
		t.Fatalf("grants = %d, want %d", len(order), 2*perTenant)
	}
	// While both tenants have backlog (the first 45 grants: 30 hot +
	// 15 cold at 2:1), every window of three serves cold exactly once.
	firstCold := -1
	hotIn30 := 0
	for i, name := range order[:30] {
		if name == "hot" {
			hotIn30++
		} else if firstCold == -1 {
			firstCold = i
		}
	}
	if firstCold == -1 || firstCold > 2 {
		t.Fatalf("cold's first grant at position %d, want within the first DRR round", firstCold)
	}
	// Weight share: hot holds 2/3 of contended grants (20 of 30),
	// exactly under DRR; allow ±2 for the round boundary.
	if hotIn30 < 18 || hotIn30 > 22 {
		t.Fatalf("hot took %d of the first 30 grants, want 20±2 (weights 2:1)", hotIn30)
	}
}

// Equal weights, equal backlog: the split is 50:50 and strictly
// alternating once both queues are populated.
func TestSchedulerEqualWeightsAlternate(t *testing.T) {
	const perTenant = 10
	s := newScheduler(1, perTenant, nil, obs.NewRegistry())
	s.registerTenant("a", 1, nil)
	s.registerTenant("b", 1, nil)
	blocker := <-grab(s, context.Background(), "blocker")
	if blocker.err != nil {
		t.Fatal(blocker.err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, name := range []string{"a", "b"} {
		name := name
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g := <-grab(s, context.Background(), name)
				if g.err != nil {
					t.Error(g.err)
					return
				}
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				g.release()
			}()
		}
		waitQueued(t, s, name, perTenant)
	}
	blocker.release()
	wg.Wait()
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] == order[i+1] {
			t.Fatalf("grants %d,%d both went to %q: %v", i, i+1, order[i], order)
		}
	}
}

// A tenant at its concurrency cap is skipped by the DRR walk — its
// queued work waits, but other tenants' requests flow past it.
func TestSchedulerConcurrencyCap(t *testing.T) {
	s := newScheduler(4, 8, nil, obs.NewRegistry())
	s.registerTenant("capped", 1, &scenario.QuotaSpec{MaxConcurrent: 1})
	s.registerTenant("free", 1, nil)

	first := <-grab(s, context.Background(), "capped")
	if first.err != nil {
		t.Fatal(first.err)
	}
	// Second capped request must queue even though 3 slots are free.
	secondCh := grab(s, context.Background(), "capped")
	waitQueued(t, s, "capped", 1)

	// A free-tenant request flows past the capped queue immediately.
	free := <-grab(s, context.Background(), "free")
	if free.err != nil {
		t.Fatalf("free tenant blocked behind a capped tenant: %v", free.err)
	}
	if s.queued("capped") != 1 {
		t.Fatalf("capped queue drained early (queued = %d)", s.queued("capped"))
	}

	// Releasing the capped slot admits the queued capped request.
	first.release()
	second := <-secondCh
	if second.err != nil {
		t.Fatal(second.err)
	}
	second.release()
	free.release()
}

// The per-instance queue bound: one tenant's full queue rejects with
// errQueueFull without consuming another tenant's headroom.
func TestSchedulerPerInstanceQueueBound(t *testing.T) {
	s := newScheduler(1, 1, nil, obs.NewRegistry())
	blocker := <-grab(s, context.Background(), "a")
	if blocker.err != nil {
		t.Fatal(blocker.err)
	}
	waiting := grab(s, context.Background(), "a")
	waitQueued(t, s, "a", 1)

	_, _, err := s.acquire(context.Background(), "a")
	if !errors.Is(err, errQueueFull) {
		t.Fatalf("over-depth acquire error = %v, want errQueueFull", err)
	}
	// Tenant b's queue is its own: it still has room.
	bCh := grab(s, context.Background(), "b")
	waitQueued(t, s, "b", 1)

	blocker.release()
	for _, ch := range []chan schedGrab{waiting, bCh} {
		g := <-ch
		if g.err != nil {
			t.Fatal(g.err)
		}
		g.release()
	}
}

// A queued request whose context expires leaves the queue; the slot it
// never got goes to the next waiter.
func TestSchedulerQueuedContextExpiry(t *testing.T) {
	s := newScheduler(1, 4, nil, obs.NewRegistry())
	blocker := <-grab(s, context.Background(), "a")
	if blocker.err != nil {
		t.Fatal(blocker.err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	g := <-grab(s, ctx, "a")
	if g.err == nil {
		t.Fatal("expired waiter was granted")
	}
	if n := s.queued("a"); n != 0 {
		t.Fatalf("abandoned waiter still queued (queued = %d)", n)
	}
	if n := s.admittedTotal(); n != 1 {
		t.Fatalf("admitted = %d, want 1 (just the blocker)", n)
	}
	blocker.release()
}

// patch: weight and quota update atomically, if_generation mismatches
// are rejected, and the generation advances per successful update.
func TestSchedulerPatchGeneration(t *testing.T) {
	s := newScheduler(2, 4, nil, obs.NewRegistry())
	s.registerTenant("a", 1, nil)
	w, q, gen := s.policy("a")
	if w != 1 || q != nil || gen != 0 {
		t.Fatalf("initial policy = (%d, %+v, %d)", w, q, gen)
	}

	weight := 5
	gen1, err := s.patch("a", &weight, &scenario.QuotaSpec{Rate: 2}, nil)
	if err != nil || gen1 != 1 {
		t.Fatalf("patch = (%d, %v), want (1, nil)", gen1, err)
	}
	w, q, gen = s.policy("a")
	if w != 5 || gen != 1 || q == nil || q.Rate != 2 || q.Burst != 2 {
		t.Fatalf("patched policy = (%d, %+v, %d)", w, q, gen)
	}

	stale := int64(0)
	if _, err := s.patch("a", &weight, nil, &stale); err == nil {
		t.Fatal("stale if_generation accepted")
	}
	current := int64(1)
	if gen2, err := s.patch("a", nil, &scenario.QuotaSpec{}, &current); err != nil || gen2 != 2 {
		t.Fatalf("conditional patch = (%d, %v), want (2, nil)", gen2, err)
	}
	// The empty quota cleared the limits.
	if _, q, _ := s.policy("a"); q == nil || !q.Unlimited() {
		t.Fatalf("cleared quota = %+v, want unlimited", q)
	}
}
