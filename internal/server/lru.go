package server

import (
	"container/list"
	"sync"

	"cqabench/internal/obs"
	"cqabench/internal/synopsis"
)

// synopsisLRU keeps the resident synopsis.Sets of every instance under
// one byte budget. Each entry is charged its canonical encoded length
// (syncache.EncodedSize — the same figure as the .syn file on disk, so
// the budget is plannable from cache directory sizes). Inserting past
// the budget evicts least-recently-used entries first; an evicted
// synopsis is rebuilt or reloaded from syncache on its next request.
// A budget <= 0 disables eviction (everything stays resident, matching
// the pre-registry memo behavior).
//
// The LRU is shared across instances rather than partitioned per
// instance: one global budget is what an operator can actually
// provision for, and a cold instance naturally yields memory to a hot
// one.
type synopsisLRU struct {
	mu       sync.Mutex
	budget   int64
	resident int64
	entries  map[lruKey]*list.Element
	order    *list.List // front = most recently used
	reg      *obs.Registry
}

// lruKey addresses one resident synopsis: the instance plus the
// query's canonical rendering (the instance fixes the database, so the
// rendered text is a sufficient per-instance key).
type lruKey struct {
	instance string
	query    string
}

// lruEntry is the list payload behind each entries slot.
type lruEntry struct {
	key  lruKey
	set  *synopsis.Set
	size int64
}

func newSynopsisLRU(budget int64, reg *obs.Registry) *synopsisLRU {
	l := &synopsisLRU{
		budget:  budget,
		entries: make(map[lruKey]*list.Element),
		order:   list.New(),
		reg:     reg,
	}
	// Expose the budget and the (zero) residency eagerly so the first
	// scrape shows the configured capacity.
	reg.Gauge("synopsis_mem_budget_bytes").Set(float64(budget))
	l.publish()
	return l
}

// publish refreshes the residency gauges; callers hold l.mu.
func (l *synopsisLRU) publish() {
	l.reg.Gauge("synopsis_resident_bytes").Set(float64(l.resident))
	l.reg.Gauge("synopsis_resident_entries").Set(float64(l.order.Len()))
}

// get returns the resident synopsis for key, marking it most recently
// used.
func (l *synopsisLRU) get(key lruKey) (*synopsis.Set, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.entries[key]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).set, true
}

// put makes set resident under key at the given size, evicting from the
// cold end until the budget holds. If the same key is already resident
// (a concurrent build won), the first stored set is kept and returned
// so every caller shares one synopsis. An entry larger than the whole
// budget is not stored at all — it still serves the current request,
// it just never becomes resident.
func (l *synopsisLRU) put(key lruKey, set *synopsis.Set, size int64) *synopsis.Set {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		return el.Value.(*lruEntry).set
	}
	if l.budget > 0 && size > l.budget {
		l.reg.Counter("synopsis_oversize_total", obs.L("instance", key.instance)).Inc()
		return set
	}
	l.entries[key] = l.order.PushFront(&lruEntry{key: key, set: set, size: size})
	l.resident += size
	for l.budget > 0 && l.resident > l.budget {
		l.evictOldest()
	}
	l.publish()
	return set
}

// evictOldest drops the least-recently-used entry; callers hold l.mu.
func (l *synopsisLRU) evictOldest() {
	el := l.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry)
	l.order.Remove(el)
	delete(l.entries, e.key)
	l.resident -= e.size
	l.reg.Counter("synopsis_evictions_total", obs.L("instance", e.key.instance)).Inc()
}

// dropInstance evicts every entry of one instance (on DELETE
// /v1/instances/{name}); these removals are not counted as evictions —
// the instance is gone, not cold.
func (l *synopsisLRU) dropInstance(instance string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for el := l.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*lruEntry); e.key.instance == instance {
			l.order.Remove(el)
			delete(l.entries, e.key)
			l.resident -= e.size
		}
		el = next
	}
	l.publish()
}

// residentBytes reports the currently charged bytes (for tests and the
// instance listing).
func (l *synopsisLRU) residentBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.resident
}

// residentFor counts the resident entries of one instance.
func (l *synopsisLRU) residentFor(instance string) (entries int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for el := l.order.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*lruEntry); e.key.instance == instance {
			entries++
			bytes += e.size
		}
	}
	return entries, bytes
}
