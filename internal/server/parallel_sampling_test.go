package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"cqabench/internal/obs"
)

// TestParallelSamplingEndpoint covers the sampling_workers request
// field end to end: invalid values are a 400, sequential requests
// report workers=1 and no chunks, parallel requests report the pool and
// a positive chunk count (feeding estimator_chunks_total), and parallel
// results are identical for every pool size.
func TestParallelSamplingEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2, Registry: reg})
	url := ts.URL + "/v1/estimate"

	status, body, _ := post(t, url,
		`{"query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "KLM", "sampling_workers": -2}`)
	if status != http.StatusBadRequest {
		t.Fatalf("sampling_workers=-2: status = %d, want 400 (%s)", status, body)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error.Code != "invalid_options" {
		t.Fatalf("sampling_workers=-2: code = %q (%v)", e.Error.Code, err)
	}

	decode := func(workers int) EstimateResponse {
		t.Helper()
		req := `{"query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "KLM", "seed": 9`
		if workers != 0 {
			req += `, "sampling_workers": ` + string(rune('0'+workers))
		}
		req += `}`
		status, body, _ := post(t, url, req)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status = %d: %s", workers, status, body)
		}
		var resp EstimateResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	seq := decode(0)
	if seq.Stats.SamplingWorkers != 1 || seq.Stats.Chunks != 0 {
		t.Fatalf("sequential stats = %+v, want sampling_workers=1 chunks=0", seq.Stats)
	}

	par2 := decode(2)
	if par2.Stats.SamplingWorkers != 2 || par2.Stats.Chunks <= 0 {
		t.Fatalf("parallel stats = %+v, want sampling_workers=2 chunks>0", par2.Stats)
	}
	par4 := decode(4)
	if par4.Stats.SamplingWorkers != 4 {
		t.Fatalf("parallel stats = %+v, want sampling_workers=4", par4.Stats)
	}
	// Worker invariance through the API: same seed, different pools.
	if par2.Answers[0].Freq != par4.Answers[0].Freq ||
		par2.Stats.Samples != par4.Stats.Samples ||
		par2.Stats.Chunks != par4.Stats.Chunks {
		t.Fatalf("pool sizes diverge: %+v vs %+v", par2.Stats, par4.Stats)
	}

	if got := reg.Counter("estimator_chunks_total", obs.L("instance", "default")).Value(); got != par2.Stats.Chunks+par4.Stats.Chunks {
		t.Fatalf("estimator_chunks_total = %d, want %d", got, par2.Stats.Chunks+par4.Stats.Chunks)
	}
}

// TestParallelSamplingServerDefault pins the -sampling-workers default
// path: Config.SamplingWorkers applies when the request leaves the
// field unset, an explicit 1 opts back into sequential mode, and the
// estimator_sampling_workers gauge reports the resolved default pool.
func TestParallelSamplingServerDefault(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2, SamplingWorkers: 3, Registry: reg})
	url := ts.URL + "/v1/estimate"

	if got := reg.Gauge("estimator_sampling_workers").Value(); got != 3 {
		t.Fatalf("estimator_sampling_workers = %v, want 3", got)
	}

	_, body, _ := post(t, url, `{"query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "KLM", "seed": 9}`)
	var resp EstimateResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.SamplingWorkers != 3 || resp.Stats.Chunks <= 0 {
		t.Fatalf("default-path stats = %+v, want sampling_workers=3 chunks>0", resp.Stats)
	}

	_, body, _ = post(t, url, `{"query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "KLM", "seed": 9, "sampling_workers": 1}`)
	var seq EstimateResponse
	if err := json.Unmarshal([]byte(body), &seq); err != nil {
		t.Fatal(err)
	}
	if seq.Stats.SamplingWorkers != 1 || seq.Stats.Chunks != 0 {
		t.Fatalf("explicit sequential stats = %+v, want sampling_workers=1 chunks=0", seq.Stats)
	}

	if _, err := New(Config{DB: smallDB(t), SamplingWorkers: -2}); err == nil {
		t.Fatal("Config.SamplingWorkers=-2 accepted")
	}
}
