package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"cqabench/internal/obs"
	"cqabench/internal/relation"
	"cqabench/internal/syncache"
	"cqabench/internal/synopsis"
)

// encodedSynopsisSize builds the synopsis of query against db and
// returns its canonical encoded length — the unit the LRU budget is
// denominated in.
func encodedSynopsisSize(t *testing.T, db *relation.Database, query string) int64 {
	t.Helper()
	q, err := parseQuery(query, db)
	if err != nil {
		t.Fatal(err)
	}
	set, err := synopsis.BuildContext(context.Background(), db, q)
	if err != nil {
		t.Fatal(err)
	}
	return int64(syncache.EncodedSize(set))
}

// Three distinct queries cycled through a budget that fits ~1.5
// synopses: residency must never exceed the budget, evictions must be
// counted, and an evicted synopsis must come back from the on-disk
// syncache ("load", not "build") with bit-identical estimates.
func TestSynopsisLRUEvictsUnderBudget(t *testing.T) {
	db := smallDB(t)
	queries := []string{
		"Q() :- Employee(1, n1, d), Employee(2, n2, d)",
		"Q(n) :- Employee(i, n, d)",
		"Q(d) :- Employee(i, n, d)",
	}
	size := encodedSynopsisSize(t, db, queries[0])
	budget := size + size/2

	cache, err := syncache.Open(t.TempDir(), syncache.ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		DB:                db,
		CacheKeyPrefix:    "lru-test",
		Cache:             cache,
		SynopsisMemBudget: budget,
		Workers:           2,
	})

	estimate := func(query string) EstimateResponse {
		body, _ := json.Marshal(EstimateRequest{Query: query, Scheme: "KLM", Seed: 7})
		status, respBody, _ := post(t, ts.URL+"/v1/estimate", string(body))
		if status != http.StatusOK {
			t.Fatalf("estimate %q = %d: %s", query, status, respBody)
		}
		var resp EstimateResponse
		if err := json.Unmarshal([]byte(respBody), &resp); err != nil {
			t.Fatal(err)
		}
		if got := s.ResidentSynopsisBytes(); got > budget {
			t.Fatalf("resident synopsis bytes %d exceed budget %d", got, budget)
		}
		return resp
	}

	first := estimate(queries[0])
	if first.Synopsis != "build" {
		t.Fatalf("first synopsis source = %q, want build", first.Synopsis)
	}
	// The second and third queries don't fit alongside the first, so the
	// cold end (queries[0], then queries[1]) must be evicted.
	estimate(queries[1])
	estimate(queries[2])
	if v := s.Registry().Counter("synopsis_evictions_total", obs.L("instance", "default")).Value(); v < 2 {
		t.Fatalf("synopsis_evictions_total = %v, want >= 2", v)
	}

	// The evicted synopsis reloads from syncache and the estimate is
	// bit-identical: same seed, same synopsis bytes, same PRNG stream.
	again := estimate(queries[0])
	if again.Synopsis != "load" {
		t.Fatalf("post-eviction synopsis source = %q, want load", again.Synopsis)
	}
	if len(again.Answers) != len(first.Answers) || again.Stats.Samples != first.Stats.Samples {
		t.Fatalf("post-eviction run diverged: %+v vs %+v", again.Stats, first.Stats)
	}
	for i := range first.Answers {
		if first.Answers[i].Freq != again.Answers[i].Freq {
			t.Fatalf("answer %d: freq %v != %v after eviction round-trip",
				i, first.Answers[i].Freq, again.Answers[i].Freq)
		}
	}
}

// With no budget configured nothing is ever evicted, matching the
// pre-registry resident-memo behavior.
func TestSynopsisLRUUnlimitedByDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	for _, q := range []string{
		"Q() :- Employee(1, n1, d), Employee(2, n2, d)",
		"Q(n) :- Employee(i, n, d)",
		"Q(d) :- Employee(i, n, d)",
	} {
		body, _ := json.Marshal(EstimateRequest{Query: q, Scheme: "KLM"})
		post(t, ts.URL+"/v1/estimate", string(body))
	}
	if v := s.Registry().Counter("synopsis_evictions_total", obs.L("instance", "default")).Value(); v != 0 {
		t.Fatalf("synopsis_evictions_total = %v, want 0 without a budget", v)
	}
	if entries, _ := s.lru.residentFor("default"); entries != 3 {
		t.Fatalf("resident entries = %d, want 3", entries)
	}
}

// An entry larger than the entire budget serves its request but never
// becomes resident (storing it would immediately evict everything,
// including itself).
func TestSynopsisLRUOversizeEntry(t *testing.T) {
	s, ts := newTestServer(t, Config{
		DB:                smallDB(t),
		SynopsisMemBudget: 1, // nothing fits
		Workers:           2,
	})
	status, body, _ := post(t, ts.URL+"/v1/estimate",
		`{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM"}`)
	if status != http.StatusOK {
		t.Fatalf("estimate = %d: %s", status, body)
	}
	if got := s.ResidentSynopsisBytes(); got != 0 {
		t.Fatalf("resident bytes = %d, want 0 for oversize entry", got)
	}
	if v := s.Registry().Counter("synopsis_oversize_total", obs.L("instance", "default")).Value(); v != 1 {
		t.Fatalf("synopsis_oversize_total = %v, want 1", v)
	}
}

// Direct LRU unit coverage: recency order, duplicate puts keeping the
// first set, and dropInstance removing only the named instance's
// entries.
func TestSynopsisLRUUnit(t *testing.T) {
	reg := obs.NewRegistry()
	l := newSynopsisLRU(100, reg)
	setA, setB := &synopsis.Set{}, &synopsis.Set{}

	l.put(lruKey{"a", "q1"}, setA, 40)
	l.put(lruKey{"b", "q1"}, setB, 40)
	// Touch a/q1 so b/q1 is now the cold end; the next insert evicts it.
	if _, ok := l.get(lruKey{"a", "q1"}); !ok {
		t.Fatal("a/q1 not resident")
	}
	l.put(lruKey{"a", "q2"}, &synopsis.Set{}, 40)
	if _, ok := l.get(lruKey{"b", "q1"}); ok {
		t.Fatal("cold entry b/q1 survived over-budget insert")
	}
	if got := l.residentBytes(); got != 80 {
		t.Fatalf("resident = %d, want 80", got)
	}

	// A duplicate put keeps (and returns) the first stored set.
	other := &synopsis.Set{}
	if got := l.put(lruKey{"a", "q1"}, other, 40); got != setA {
		t.Fatal("duplicate put replaced the resident set")
	}

	l.dropInstance("a")
	if got := l.residentBytes(); got != 0 {
		t.Fatalf("resident after dropInstance = %d, want 0", got)
	}
	if n, _ := l.residentFor("a"); n != 0 {
		t.Fatalf("instance a entries = %d, want 0", n)
	}
}
