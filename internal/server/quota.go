package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"cqabench/internal/obs"
)

// Per-instance quota enforcement: each tenant carries up to two token
// buckets — requests (1 token per admitted estimate/synopsis request)
// and sampling work (worker-seconds, post-charged at actual cost) —
// plus a concurrency cap enforced by the scheduler's dispatch loop.
// Buckets are guarded by the scheduler mutex and read time through
// obs.Now, so tests drive refill deterministically via obs.SetNowFunc.

// bucket is one token bucket. rate is tokens/second (0 = never
// refills: a fixed pool), burst the capacity; buckets start full.
// Tokens may go negative through debit (work is post-charged), in
// which case the bucket must refill past zero before new admissions.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst, last: obs.Now()}
}

// refill advances the bucket to now. A clock that moved backwards
// (fake clocks, NTP steps) refills nothing rather than draining.
func (b *bucket) refill(now time.Time) {
	if b.rate > 0 {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		}
	}
	b.last = now
}

// take debits n tokens if the bucket holds at least n; refill first.
func (b *bucket) take(n float64) bool {
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// debit unconditionally removes n tokens; the balance may go negative.
func (b *bucket) debit(n float64) { b.tokens -= n }

// zeroRateRetry is the Retry-After horizon reported for a bucket that
// never refills — "come back much later" made finite.
const zeroRateRetry = time.Hour

// untilAvailable reports how long until the bucket holds at least n
// tokens at its refill rate (0 if it already does).
func (b *bucket) untilAvailable(n float64) time.Duration {
	deficit := n - b.tokens
	if deficit <= 0 {
		return 0
	}
	if b.rate <= 0 {
		return zeroRateRetry
	}
	d := time.Duration(deficit / b.rate * float64(time.Second))
	if d > zeroRateRetry {
		d = zeroRateRetry
	}
	return d
}

// quotaDenial describes one refused admission: which bucket said no
// and the numbers behind the X-Quota-* response headers.
type quotaDenial struct {
	reason     string // "requests" or "work"
	limit      float64
	remaining  float64
	retryAfter time.Duration
}

func (d *quotaDenial) message(instance string) string {
	what := "request quota"
	if d.reason == "work" {
		what = "sampling work quota"
	}
	return fmt.Sprintf("instance %q over its %s (limit %g, retry in %s)",
		instance, what, d.limit, d.retryAfter.Round(time.Millisecond))
}

// admitRequest applies instance quota at the front door: the work
// bucket must be above zero (estimates post-charge their true cost, so
// a negative balance means earlier work is still being paid off) and
// the request bucket must yield one token. A nil return is admission.
func (s *scheduler) admitRequest(name string) *quotaDenial {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(name)
	now := obs.Now()
	if t.workBucket != nil {
		t.workBucket.refill(now)
		if t.workBucket.tokens <= 0 {
			return &quotaDenial{
				reason:     "work",
				limit:      t.workBucket.burst,
				remaining:  t.workBucket.tokens,
				retryAfter: t.workBucket.untilAvailable(math.Nextafter(0, 1)),
			}
		}
	}
	if t.reqBucket != nil {
		t.reqBucket.refill(now)
		if !t.reqBucket.take(1) {
			return &quotaDenial{
				reason:     "requests",
				limit:      t.reqBucket.burst,
				remaining:  t.reqBucket.tokens,
				retryAfter: t.reqBucket.untilAvailable(1),
			}
		}
	}
	return nil
}

// chargeWork debits seconds of sampling work (worker-seconds) from the
// instance's work bucket. Every caller of a coalesced flight charges
// its own instance's bucket, so single-flight followers cannot ride a
// leader's admission to bypass their quota.
func (s *scheduler) chargeWork(name string, seconds float64) {
	if seconds <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(name)
	if t.workBucket == nil {
		return
	}
	t.workBucket.refill(obs.Now())
	t.workBucket.debit(seconds)
}

// workSeconds is the post-charge cost model of one estimate: wall time
// times the effective sampling pool size (a KL run fanned over 8
// substream workers consumes 8 worker-seconds per second).
func workSeconds(elapsed time.Duration, samplingWorkers int) float64 {
	w := samplingWorkers
	if w < 1 {
		w = 1
	}
	return elapsed.Seconds() * float64(w)
}

// quotaHeaderNum renders a quota header value: integers stay integers,
// fractional token balances keep three decimals.
func quotaHeaderNum(v float64) string {
	if v == math.Trunc(v) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// rejectQuota writes the 429 quota rejection: Retry-After plus the
// X-Quota-Limit / X-Quota-Remaining / X-Quota-Reset triple, a
// quota_exceeded structured envelope, and the rejection counters.
func (s *Server) rejectQuota(w http.ResponseWriter, st *reqState, instance string, d *quotaDenial) {
	s.reg.Counter("server_quota_rejections_total",
		obs.L("instance", instance), obs.L("reason", d.reason)).Inc()
	s.reg.Counter("server_rejected_total", obs.L("reason", codeQuotaExceeded)).Inc()
	st.setReason(codeQuotaExceeded)
	retrySec := int64(math.Ceil(d.retryAfter.Seconds()))
	if retrySec < 1 {
		retrySec = 1
	}
	remaining := d.remaining
	if remaining < 0 {
		remaining = 0
	}
	w.Header().Set("Retry-After", strconv.FormatInt(retrySec, 10))
	w.Header().Set("X-Quota-Limit", quotaHeaderNum(d.limit))
	w.Header().Set("X-Quota-Remaining", quotaHeaderNum(remaining))
	w.Header().Set("X-Quota-Reset", fmt.Sprintf("%.3f", d.retryAfter.Seconds()))
	writeAPIError(w, http.StatusTooManyRequests, APIError{
		Code:         codeQuotaExceeded,
		Message:      d.message(instance),
		Instance:     instance,
		Retryable:    true,
		RetryAfterMS: d.retryAfter.Milliseconds(),
	})
}
