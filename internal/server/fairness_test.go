package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/obs"
	"cqabench/internal/scenario"
)

// patchJSON issues a PATCH and returns (status, body).
func patchJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// holdFirstRun installs an estimate hook that blocks the first run on
// the returned gate (close it to proceed) and stretches every later
// run by perRun, so tests can build deterministic backlogs behind an
// in-flight request and then watch the grant order play out.
func holdFirstRun(s *Server, perRun time.Duration) chan struct{} {
	gate := make(chan struct{})
	var first sync.Once
	s.onEstimateStart = func() {
		held := false
		first.Do(func() { <-gate; held = true })
		if !held {
			time.Sleep(perRun)
		}
	}
	return gate
}

// The fairness e2e: one worker, a hot instance flooding the pool and a
// light instance sending a single request at equal weight. Under the
// old FIFO admission the light request sat behind the hot tenant's
// whole backlog; under DRR it is served within one round, so its queue
// wait is bounded by ~one estimate, not the backlog.
func TestFairnessHotInstanceDoesNotStarveLight(t *testing.T) {
	const hotBacklog = 10
	perRun := 25 * time.Millisecond
	s, ts := newTestServer(t, Config{
		Instances: []InstanceConfig{
			{Name: "hot", DB: smallDB(t)},
			{Name: "light", DB: smallDB(t)},
		},
		Workers:    1,
		QueueDepth: hotBacklog + 2,
	})
	gate := holdFirstRun(s, perRun)

	var wg sync.WaitGroup
	hotWaits := make([]float64, hotBacklog)
	for i := 0; i < hotBacklog; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds keep the flood out of single-flight.
			body := fmt.Sprintf(`{"instance": "hot", "query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "Natural", "seed": %d}`, i+1)
			status, resp, _ := post(t, ts.URL+"/v1/estimate", body)
			if status != http.StatusOK {
				t.Errorf("hot %d: status %d: %s", i, status, resp)
				return
			}
			var er EstimateResponse
			if json.Unmarshal([]byte(resp), &er) == nil {
				hotWaits[i] = er.Stats.QueueWaitMS
			}
		}(i)
	}
	// The first hot request is held at the gate; wait until the other
	// nine are queued behind it, then queue the light request too.
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.queued("hot") < hotBacklog-1 {
		if time.Now().After(deadline) {
			t.Fatalf("hot backlog = %d, want %d", s.sched.queued("hot"), hotBacklog-1)
		}
		time.Sleep(time.Millisecond)
	}
	lightCh := make(chan EstimateResponse, 1)
	go func() {
		status, resp, _ := post(t, ts.URL+"/v1/estimate",
			`{"instance": "light", "query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "Natural", "seed": 99}`)
		var er EstimateResponse
		if status != http.StatusOK {
			t.Errorf("light request: status %d: %s", status, resp)
		} else if err := json.Unmarshal([]byte(resp), &er); err != nil {
			t.Error(err)
		}
		lightCh <- er
	}()
	for s.sched.queued("light") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("light request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	light := <-lightCh
	wg.Wait()
	if t.Failed() {
		return
	}

	// The light tenant waits at most ~2 runs (the held one plus one DRR
	// round), never the hot backlog (~10 runs). The generous bound
	// keeps slow CI honest while still separating the regimes by >2x.
	backlogMS := float64(hotBacklog) * float64(perRun.Milliseconds())
	if light.Stats.QueueWaitMS > backlogMS/2 {
		t.Fatalf("light queue wait %.1fms — starved behind the hot backlog (%.0fms)",
			light.Stats.QueueWaitMS, backlogMS)
	}
	// And the hot tail really did represent a backlog: its slowest
	// request waited several runs, so the light bound was a real test.
	maxHot := 0.0
	for _, w := range hotWaits {
		if w > maxHot {
			maxHot = w
		}
	}
	if maxHot < 3*float64(perRun.Milliseconds()) {
		t.Fatalf("hot backlog never built up (max hot wait %.1fms)", maxHot)
	}
}

// Weighted throughput split at the HTTP layer: instances at weights
// 3:1 under equal offered load complete contended grants 3:1, within
// the 20% acceptance band.
func TestFairnessWeightedThroughputSplit(t *testing.T) {
	const perTenant = 16
	s, ts := newTestServer(t, Config{
		Instances: []InstanceConfig{
			{Name: "big", DB: smallDB(t), Weight: 3},
			{Name: "small", DB: smallDB(t), Weight: 1},
		},
		Workers:    1,
		QueueDepth: perTenant + 1,
	})
	gate := holdFirstRun(s, 2*time.Millisecond)

	var mu sync.Mutex
	var completions []string
	var wg sync.WaitGroup
	flood := func(instance string, queued int) {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"instance": %q, "query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "Natural", "seed": %d}`, instance, i+1)
				status, resp, _ := post(t, ts.URL+"/v1/estimate", body)
				if status != http.StatusOK {
					t.Errorf("%s %d: status %d: %s", instance, i, status, resp)
					return
				}
				mu.Lock()
				completions = append(completions, instance)
				mu.Unlock()
			}(i)
		}
		deadline := time.Now().Add(5 * time.Second)
		for s.sched.queued(instance) < queued {
			if time.Now().After(deadline) {
				t.Fatalf("%s backlog = %d, want %d", instance, s.sched.queued(instance), queued)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// big's first request holds the worker at the gate; both backlogs
	// build fully behind it before any contended grant happens.
	flood("big", perTenant-1)
	flood("small", perTenant)
	close(gate)
	wg.Wait()
	if t.Failed() {
		return
	}

	// While both tenants had backlog, grants ran 3:1 — of the first 16
	// completions (one uncontended plus 15 contended) big holds ~12.
	// The 20% band on the 3:1 split admits [10, 14].
	bigEarly := 0
	for _, name := range completions[:perTenant] {
		if name == "big" {
			bigEarly++
		}
	}
	if bigEarly < 10 || bigEarly > 14 {
		t.Fatalf("big took %d of the first %d completions, want 12±2 (weights 3:1): %v",
			bigEarly, perTenant, completions)
	}
}

// Quota rejections carry the full machine-readable surface: 429, the
// Retry-After and X-Quota-* headers, the structured envelope with
// retryable + retry_after_ms, and the rejection counters.
func TestQuota429HeadersAndEnvelope(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Instances: []InstanceConfig{
			{Name: "limited", DB: smallDB(t), Quota: &scenario.QuotaSpec{Burst: 2}},
		},
		Workers: 2,
	})
	body := `{"instance": "limited", "query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "Natural"}`
	for i := 0; i < 2; i++ {
		if status, resp, _ := post(t, ts.URL+"/v1/estimate", body); status != http.StatusOK {
			t.Fatalf("in-quota request %d: status %d: %s", i, status, resp)
		}
	}
	status, resp, hdr := post(t, ts.URL+"/v1/estimate", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d (%s), want 429", status, resp)
	}
	if got := hdr.Get("Retry-After"); got != "3600" {
		t.Fatalf("Retry-After = %q, want 3600 (zero-rate clamp)", got)
	}
	if got := hdr.Get("X-Quota-Limit"); got != "2" {
		t.Fatalf("X-Quota-Limit = %q, want 2", got)
	}
	if got := hdr.Get("X-Quota-Remaining"); got != "0" {
		t.Fatalf("X-Quota-Remaining = %q, want 0", got)
	}
	if got := hdr.Get("X-Quota-Reset"); got != "3600.000" {
		t.Fatalf("X-Quota-Reset = %q, want 3600.000", got)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal([]byte(resp), &e); err != nil {
		t.Fatalf("429 body %q not JSON: %v", resp, err)
	}
	if e.Error.Code != "quota_exceeded" || !e.Error.Retryable ||
		e.Error.Instance != "limited" || e.Error.RetryAfterMS <= 0 {
		t.Fatalf("quota envelope = %+v", e.Error)
	}
	if e.Code != "quota_exceeded" {
		t.Fatalf("legacy code mirror = %q", e.Code)
	}
	reg := s.Registry()
	if v := reg.Counter("server_quota_rejections_total",
		obs.L("instance", "limited"), obs.L("reason", "requests")).Value(); v != 1 {
		t.Fatalf("server_quota_rejections_total = %v, want 1", v)
	}
	if v := reg.Counter("server_rejected_total", obs.L("reason", "quota_exceeded")).Value(); v != 1 {
		t.Fatalf("server_rejected_total{quota_exceeded} = %v, want 1", v)
	}
	// The synopsis endpoint shares the request bucket.
	if status, _, _ := post(t, ts.URL+"/v1/synopsis",
		`{"instance": "limited", "query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)"}`); status != http.StatusTooManyRequests {
		t.Fatalf("synopsis over-quota status = %d, want 429", status)
	}
}

// Single-flight followers pay their own work quota: a coalesced pair
// debits the instance's work bucket twice even though the estimator
// ran once. This is the anti-bypass property — a thundering herd
// cannot launder unlimited sampling through one leader's admission.
func TestSingleFlightFollowerChargesQuota(t *testing.T) {
	db := smallDB(t)
	s, ts := newTestServer(t, Config{
		Instances: []InstanceConfig{
			{Name: "default", DB: db, Quota: &scenario.QuotaSpec{WorkBurst: 1000}},
		},
		Workers: 1,
	})
	reqBody := `{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM", "seed": 7}`
	q, err := parseQuery("Q(n) :- Employee(i, n, d)", db)
	if err != nil {
		t.Fatal(err)
	}
	opts := cqa.DefaultOptions()
	opts.Seed = 7
	key := flightKey{
		instance: "default",
		query:    q.Render(db.Dict),
		scheme:   "KLM",
		options:  optionsFingerprint(opts, 0),
	}
	s.onEstimateStart = func() {
		deadline := time.Now().Add(10 * time.Second)
		for s.flights.waitersFor(key) < 1 {
			if time.Now().After(deadline) {
				t.Error("follower never joined the leader's flight")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	var wg sync.WaitGroup
	responses := make([]EstimateResponse, 2)
	for i := range responses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, _ := post(t, ts.URL+"/v1/estimate", reqBody)
			if status != http.StatusOK {
				t.Errorf("request %d status = %d: %s", i, status, body)
				return
			}
			if err := json.Unmarshal([]byte(body), &responses[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if v := s.Registry().Counter("server_estimate_runs_total", obs.L("instance", "default")).Value(); v != 1 {
		t.Fatalf("estimator ran %v times, want 1 (coalesced)", v)
	}
	if !responses[0].Coalesced && !responses[1].Coalesced {
		t.Fatal("no caller was coalesced; the test exercised nothing")
	}

	// Both callers share one flightResult, so both charged the same
	// cost: the bucket is down exactly 2× the run's worker-seconds.
	cost := workSeconds(time.Duration(responses[0].Stats.ElapsedMS*float64(time.Millisecond)),
		responses[0].Stats.SamplingWorkers)
	if cost <= 0 {
		t.Fatalf("run cost = %g, want > 0 (stats %+v)", cost, responses[0].Stats)
	}
	s.sched.mu.Lock()
	tokens := s.sched.tenants["default"].workBucket.tokens
	s.sched.mu.Unlock()
	debited := 1000 - tokens
	// ElapsedMS is rounded to µs on the wire; allow that slack per charge.
	if diff := debited - 2*cost; diff < -0.01 || diff > 0.01 {
		t.Fatalf("work debited = %g, want 2×%g (leader and follower each pay)", debited, cost)
	}
}

// PATCH /v1/instances/{name}: live weight/quota mutation with
// optimistic concurrency, surfaced in instance summaries.
func TestInstancePatchLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Instances: []InstanceConfig{{Name: "tuned", DB: smallDB(t)}},
		Workers:   2,
	})
	url := ts.URL + "/v1/instances/tuned"

	// Initial summary: default weight, no quota, generation 0.
	var listing struct {
		Instances []InstanceSummary `json:"instances"`
	}
	getJSON(t, ts.URL+"/v1/instances", &listing)
	if len(listing.Instances) != 1 || listing.Instances[0].Weight != 1 ||
		listing.Instances[0].Generation != 0 || listing.Instances[0].Quota != nil {
		t.Fatalf("initial summary = %+v", listing.Instances)
	}

	// Weight + quota update; the summary reflects the normalized quota.
	status, body := patchJSON(t, url, `{"weight": 4, "quota": {"rate": 2, "max_concurrent": 3}}`)
	if status != http.StatusOK {
		t.Fatalf("patch status = %d: %s", status, body)
	}
	var sum InstanceSummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Weight != 4 || sum.Generation != 1 || sum.Quota == nil ||
		sum.Quota.Rate != 2 || sum.Quota.Burst != 2 || sum.Quota.MaxConcurrent != 3 {
		t.Fatalf("patched summary = %+v (quota %+v)", sum, sum.Quota)
	}

	// Stale if_generation: 409 conflict.
	status, body = patchJSON(t, url, `{"weight": 9, "if_generation": 0}`)
	if status != http.StatusConflict {
		t.Fatalf("stale patch status = %d: %s", status, body)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error.Code != "conflict" {
		t.Fatalf("stale patch envelope = %+v (%v)", e.Error, err)
	}

	// Matching if_generation: accepted, generation advances.
	status, body = patchJSON(t, url, `{"weight": 9, "if_generation": 1}`)
	if status != http.StatusOK {
		t.Fatalf("conditional patch status = %d: %s", status, body)
	}
	if err := json.Unmarshal([]byte(body), &sum); err != nil || sum.Weight != 9 || sum.Generation != 2 {
		t.Fatalf("conditional patch summary = %+v (%v)", sum, err)
	}

	// Error model: unknown instance, invalid weight, empty patch.
	if status, body = patchJSON(t, ts.URL+"/v1/instances/nope", `{"weight": 2}`); status != http.StatusNotFound {
		t.Fatalf("unknown-instance patch = %d: %s", status, body)
	}
	if status, body = patchJSON(t, url, `{"weight": -1}`); status != http.StatusBadRequest {
		t.Fatalf("invalid-weight patch = %d: %s", status, body)
	}
	if status, body = patchJSON(t, url, `{}`); status != http.StatusBadRequest {
		t.Fatalf("empty patch = %d: %s", status, body)
	}

	// A patched quota takes effect: drop to a 1-request fixed pool and
	// watch the second request bounce, then clear it and recover.
	if status, body = patchJSON(t, url, `{"quota": {"burst": 1}}`); status != http.StatusOK {
		t.Fatalf("quota patch = %d: %s", status, body)
	}
	est := `{"instance": "tuned", "query": "Q() :- Employee(1, n1, d), Employee(2, n2, d)", "scheme": "Natural"}`
	if status, body, _ := post(t, ts.URL+"/v1/estimate", est); status != http.StatusOK {
		t.Fatalf("first post-quota estimate = %d: %s", status, body)
	}
	if status, _, _ := post(t, ts.URL+"/v1/estimate", est); status != http.StatusTooManyRequests {
		t.Fatalf("second post-quota estimate = %d, want 429", status)
	}
	if status, body = patchJSON(t, url, `{"quota": {}}`); status != http.StatusOK {
		t.Fatalf("quota clear = %d: %s", status, body)
	}
	if status, body, _ := post(t, ts.URL+"/v1/estimate", est); status != http.StatusOK {
		t.Fatalf("post-clear estimate = %d: %s", status, body)
	}
}
