package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/obs"
	"cqabench/internal/obs/manifest"
	"cqabench/internal/obs/trace"
)

// The live request inspector: /version reports what exactly is running,
// /debug/requests lists the recent (or slowest) requests with their
// fitted stage breakdowns, and /debug/requests/{id}/trace exports one
// request's span tree in the same Chrome Trace Event JSON that
// `cqabench run -trace-out` writes, so Perfetto loads both identically.

// DebugRequestsResponse is the body of GET /debug/requests.
type DebugRequestsResponse struct {
	Count    int             `json:"count"`
	Requests []RequestRecord `json:"requests"`
}

// handleVersion serves the run manifest: git sha (with dirty flag), Go
// toolchain, host, pid, start time and the full serve configuration.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manifest)
}

// handleMetricsJSON serves the registry's JSON export wrapped in the
// same {"manifest": ..., "metrics": ...} provenance envelope that
// `cqabench run -metrics-out` writes.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	s.refreshUptime()
	var buf bytes.Buffer
	if err := s.reg.WriteJSON(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Manifest *manifest.RunManifest `json:"manifest,omitempty"`
		Metrics  json.RawMessage       `json:"metrics"`
	}{Manifest: s.manifest, Metrics: buf.Bytes()})
}

// handleDebugRequests lists recent request records. Query parameters:
//
//	n         max records (default 20, capped at the ring size)
//	min_ms    keep only requests at least this slow (float, milliseconds)
//	errors    "true"/"1": keep only failed or rejected requests
//	sort      "recent" (default) or "slow" (slowest first)
//	instance  keep only requests that resolved to this instance
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var query recentQuery
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "n must be a positive integer")
			return
		}
		query.n = n
	}
	if v := q.Get("min_ms"); v != "" {
		minMS, err := strconv.ParseFloat(v, 64)
		if err != nil || minMS < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "min_ms must be a non-negative number")
			return
		}
		query.minLatency = time.Duration(minMS * float64(time.Millisecond))
	}
	switch q.Get("errors") {
	case "", "false", "0":
	case "true", "1":
		query.errorsOnly = true
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "errors must be true or false")
		return
	}
	switch q.Get("sort") {
	case "", "recent":
	case "slow":
		query.bySlowest = true
	default:
		writeError(w, http.StatusBadRequest, "bad_request", `sort must be "recent" or "slow"`)
		return
	}
	query.instance = q.Get("instance")
	recs := s.reqlog.recent(query)
	if recs == nil {
		recs = []RequestRecord{} // an empty ring is [] on the wire, not null
	}
	writeJSON(w, http.StatusOK, DebugRequestsResponse{Count: len(recs), Requests: recs})
}

// handleDebugRequestTrace exports one recorded request's span tree as
// Chrome Trace Event Format JSON, loadable in Perfetto. The format and
// metadata layout match `cqabench run -trace-out` (internal/obs/trace).
func (s *Server) handleDebugRequestTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.reqlog.find(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found",
			"no recorded request with trace id "+strconv.Quote(id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteChrome(w, s.manifest, []obs.SpanData{rec.trace})
}

// ConvergenceResponse is the body of GET /debug/requests/{id}/convergence.
type ConvergenceResponse struct {
	TraceID     string                `json:"trace_id"`
	Scheme      string                `json:"scheme,omitempty"`
	Convergence []cqa.TupleTrajectory `json:"convergence"`
}

// handleDebugRequestConvergence serves the per-tuple trajectories a
// request recorded. Requests without `"convergence": true` leave no
// trajectory, which is a distinct 404 from an unknown trace ID.
func (s *Server) handleDebugRequestConvergence(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.reqlog.find(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found",
			"no recorded request with trace id "+strconv.Quote(id))
		return
	}
	if rec.convergence == nil {
		writeError(w, http.StatusNotFound, "no_convergence",
			`request `+strconv.Quote(id)+` did not record convergence (set "convergence": true on /v1/estimate)`)
		return
	}
	writeJSON(w, http.StatusOK, ConvergenceResponse{
		TraceID:     rec.TraceID,
		Scheme:      rec.Scheme,
		Convergence: rec.convergence,
	})
}
