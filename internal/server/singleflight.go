package server

import (
	"context"
	"sync"
	"time"

	"cqabench/internal/cqa"
)

// Single-flight coalescing for POST /v1/estimate: identical in-flight
// requests share one computation. Two estimate requests are identical
// when they agree on the instance, the query's canonical rendering, the
// requested scheme, and the full options fingerprint (eps, delta, seed,
// budget, convergence recording, timeout) — estimation is deterministic
// per seed, so the coalesced callers would each have computed exactly
// the answers, stats and PRNG stream the leader computes. A thundering
// herd of N identical requests therefore takes one worker slot, runs
// the estimator once, and fans the result out N ways; the N-1 followers
// are counted in estimate_coalesced_total.
//
// Followers share the leader's outcome — including its admission
// rejection or error, which every caller would have hit identically —
// but a follower whose own deadline expires while waiting gets its own
// 504 and detaches without affecting the flight.
//
// Coalescing never bypasses per-instance quota: every caller passes
// the quota gate before joining a flight (one request token each) and
// post-charges the flight's sampling cost against its own instance
// afterwards (see handleEstimate), so N coalesced requests debit N
// times the work even though the estimator ran once.

// flightKey identifies one coalescable estimate computation.
type flightKey struct {
	instance string
	query    string // canonical rendering, not the request text
	scheme   string // requested scheme ("auto" before resolution)
	options  string // options fingerprint (see EstimateRequest.fingerprint)
}

// flightStage tells the caller which stage of the leader's run produced
// a flightResult's error, so each caller maps it onto the right part of
// the HTTP error model (admission codes vs run codes).
type flightStage int

const (
	flightStageNone flightStage = iota
	flightStageAdmit
	flightStageSynopsis
	flightStageEstimate
)

// flightResult is everything a completed estimate flight fans out to
// its callers. Answers stay in interned (dictionary-value) form; each
// caller renders them against the shared instance's dictionary.
type flightResult struct {
	scheme  cqa.Scheme
	answers []cqa.TupleFreq
	stats   cqa.Stats
	source  string // synopsis source: lru, load or build
	prep    time.Duration
	stage   flightStage // stage that produced err
	err     error       // admission or run error, mapped per caller
}

// flightCall is one in-flight computation: done closes when result is
// set.
type flightCall struct {
	done    chan struct{}
	result  *flightResult
	waiters int // followers currently waiting (tests synchronize on it)
}

// flightGroup deduplicates in-flight calls by key. Completed calls
// leave the map immediately — coalescing is strictly for concurrent
// requests, never a response cache.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[flightKey]*flightCall)}
}

// do runs fn once per key among concurrent callers. The first caller
// (the leader) executes fn; followers block until the leader finishes
// (sharing its result, shared=true) or their own ctx expires (result is
// ctx.Err() wrapped in a flightResult, still shared=true since no
// computation ran for them).
func (g *flightGroup) do(ctx context.Context, key flightKey, fn func() *flightResult) (res *flightResult, shared bool) {
	g.mu.Lock()
	if call, ok := g.m[key]; ok {
		call.waiters++
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.result, true
		case <-ctx.Done():
			// Detach: the leader keeps running for the other callers.
			g.mu.Lock()
			call.waiters--
			g.mu.Unlock()
			return &flightResult{err: ctx.Err()}, true
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	call.result = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(call.done)
	return call.result, false
}

// waitersFor reports how many followers are blocked on key right now;
// test-only synchronization for deterministic coalescing tests.
func (g *flightGroup) waitersFor(key flightKey) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.m[key]; ok {
		return call.waiters
	}
	return 0
}
