package server

import (
	"context"
	"sync"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/obs"
)

// Request-scoped observability: every instrumented request leaves a
// RequestRecord — trace ID, status, queue wait, latency, estimator
// stats and the full span tree — in a bounded in-memory ring. The ring
// backs GET /debug/requests (recent/slowest records with their stage
// breakdowns) and GET /debug/requests/{id}/trace (one request's span
// tree as a Perfetto-loadable Chrome trace).

// DefaultRequestLogCap bounds the request ring when Config.RequestLogCap
// is unset.
const DefaultRequestLogCap = 256

// StageMS is one entry of a request's fitted stage breakdown (the span
// tree's direct children merged by name, durations in milliseconds).
type StageMS struct {
	Name  string  `json:"name"`
	DurMS float64 `json:"dur_ms"`
	Count int     `json:"count,omitempty"`
}

// RequestRecord is one completed (or rejected) request as kept in the
// debug ring and returned by /debug/requests.
type RequestRecord struct {
	TraceID  string `json:"trace_id"`
	Endpoint string `json:"endpoint"`
	// Instance is the registered instance the request resolved to (or
	// targeted, for registry mutations); "" before resolution.
	Instance string `json:"instance,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	// Coalesced marks an estimate served by an identical concurrent
	// request's computation (single-flight follower).
	Coalesced   bool      `json:"coalesced,omitempty"`
	Status      int       `json:"status"`
	Start       time.Time `json:"start"`
	QueueWaitMS float64   `json:"queue_wait_ms"`
	LatencyMS   float64   `json:"latency_ms"`
	Samples     int64     `json:"samples,omitempty"`
	GoodRatio   float64   `json:"good_ratio,omitempty"`
	// Reason is the error code of a failed or rejected request
	// (queue_full, deadline, bad_query, ...); "" on success.
	Reason string    `json:"reason,omitempty"`
	Stages []StageMS `json:"stages,omitempty"`
	// Sched exposes the admission scheduler's decision for requests
	// that reached it: whether the request queued, how many waiters
	// were ahead in its instance's FIFO, and the instance's DRR weight
	// and deficit at enqueue time.
	Sched *SchedDecision `json:"sched,omitempty"`

	// trace is the request's full span tree, kept for the per-request
	// Chrome-trace export; not serialized in listings. convergence is the
	// opt-in per-tuple trajectory set, served by
	// /debug/requests/{id}/convergence rather than inlined in listings.
	trace       obs.SpanData
	convergence []cqa.TupleTrajectory
}

// requestLog is a fixed-capacity ring of the most recent records. Safe
// for concurrent use.
type requestLog struct {
	mu   sync.Mutex
	ring []RequestRecord
	next int // ring position of the next add
	size int // filled entries, <= len(ring)
}

func newRequestLog(capacity int) *requestLog {
	if capacity <= 0 {
		capacity = DefaultRequestLogCap
	}
	return &requestLog{ring: make([]RequestRecord, capacity)}
}

func (l *requestLog) add(rec RequestRecord) {
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next = (l.next + 1) % len(l.ring)
	if l.size < len(l.ring) {
		l.size++
	}
	l.mu.Unlock()
}

// recentQuery filters and orders a listing of the ring.
type recentQuery struct {
	n          int           // max records to return; <= 0 selects 20
	minLatency time.Duration // keep records at least this slow
	errorsOnly bool          // keep only non-2xx / rejected records
	bySlowest  bool          // order by latency instead of recency
	instance   string        // keep only records of this instance ("" = all)
}

// recent returns up to q.n matching records, most recent first (or
// slowest first with q.bySlowest).
func (l *requestLog) recent(q recentQuery) []RequestRecord {
	if q.n <= 0 {
		q.n = 20
	}
	l.mu.Lock()
	all := make([]RequestRecord, 0, l.size)
	// Walk backwards from the newest entry so `all` is recency-ordered.
	for i := 0; i < l.size; i++ {
		pos := (l.next - 1 - i + 2*len(l.ring)) % len(l.ring)
		rec := l.ring[pos]
		if rec.LatencyMS < float64(q.minLatency.Microseconds())/1e3 {
			continue
		}
		if q.errorsOnly && rec.Status < 400 && rec.Reason == "" {
			continue
		}
		if q.instance != "" && rec.Instance != q.instance {
			continue
		}
		all = append(all, rec)
	}
	l.mu.Unlock()
	if q.bySlowest {
		// Stable insertion keeps recency order among equal latencies; the
		// ring is small so O(n²) worst case is irrelevant.
		for i := 1; i < len(all); i++ {
			for j := i; j > 0 && all[j].LatencyMS > all[j-1].LatencyMS; j-- {
				all[j], all[j-1] = all[j-1], all[j]
			}
		}
	}
	if len(all) > q.n {
		all = all[:q.n]
	}
	return all
}

// find returns the most recent record with the given trace ID.
func (l *requestLog) find(traceID string) (RequestRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < l.size; i++ {
		pos := (l.next - 1 - i + 2*len(l.ring)) % len(l.ring)
		if l.ring[pos].TraceID == traceID {
			return l.ring[pos], true
		}
	}
	return RequestRecord{}, false
}

// reqState is the per-request mutable record shared between the
// instrument wrapper (which creates and finalizes it) and the handlers
// and admission path (which fill in scheme, queue wait, stats and error
// reasons). A request is handled by one goroutine at a time, so no lock.
type reqState struct {
	rec  RequestRecord
	span *obs.Span // root server.<endpoint> span
}

type reqStateKey struct{}

// reqStateFrom returns the request's state, or nil outside an
// instrumented handler.
func reqStateFrom(ctx context.Context) *reqState {
	st, _ := ctx.Value(reqStateKey{}).(*reqState)
	return st
}

// setReason records an error/rejection code; nil-safe, first code wins
// (the earliest failure is the root cause).
func (st *reqState) setReason(code string) {
	if st == nil || st.rec.Reason != "" {
		return
	}
	st.rec.Reason = code
}

// setInstance records the instance the request resolved to; nil-safe.
func (st *reqState) setInstance(name string) {
	if st == nil {
		return
	}
	st.rec.Instance = name
}

// setCoalesced marks the request a single-flight follower; nil-safe.
func (st *reqState) setCoalesced() {
	if st == nil {
		return
	}
	st.rec.Coalesced = true
}

// setScheme records the scheme the request resolved to; nil-safe.
func (st *reqState) setScheme(scheme string) {
	if st == nil {
		return
	}
	st.rec.Scheme = scheme
}

// setEstimate records estimator output stats; nil-safe.
func (st *reqState) setEstimate(samples int64, goodRatio float64) {
	if st == nil {
		return
	}
	st.rec.Samples = samples
	st.rec.GoodRatio = goodRatio
}

// setConvergence records opt-in convergence trajectories; nil-safe.
func (st *reqState) setConvergence(traj []cqa.TupleTrajectory) {
	if st == nil || traj == nil {
		return
	}
	st.rec.convergence = traj
}

// SchedDecision is the admission scheduler's per-request decision as
// surfaced by /debug/requests.
type SchedDecision struct {
	// Queued reports whether the request waited in its instance FIFO
	// (false = granted a slot immediately).
	Queued bool `json:"queued"`
	// QueuedAhead counts the waiters ahead in the instance queue at
	// enqueue time (0 when not queued).
	QueuedAhead int `json:"queued_ahead,omitempty"`
	// Weight and Deficit snapshot the instance's DRR state at
	// admission.
	Weight  int64 `json:"weight"`
	Deficit int64 `json:"deficit,omitempty"`
}

// setSched records the scheduling decision; nil-safe.
func (st *reqState) setSched(d SchedDecision) {
	if st == nil {
		return
	}
	st.rec.Sched = &d
}

// setQueueWait records the admission queue wait; nil-safe.
func (st *reqState) setQueueWait(d time.Duration) {
	if st == nil {
		return
	}
	st.rec.QueueWaitMS = ms(d)
}

// traceID returns the request's trace ID ("" on nil).
func (st *reqState) traceID() string {
	if st == nil {
		return ""
	}
	return st.rec.TraceID
}

// queueWaitMS returns the recorded queue wait (0 on nil).
func (st *reqState) queueWaitMS() float64 {
	if st == nil {
		return 0
	}
	return st.rec.QueueWaitMS
}

// ms converts a duration to milliseconds with microsecond resolution,
// matching the service's other *_ms fields.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// stagesMS converts a span stage breakdown to the wire form.
func stagesMS(stages []obs.Stage) []StageMS {
	if len(stages) == 0 {
		return nil
	}
	out := make([]StageMS, len(stages))
	for i, s := range stages {
		out[i] = StageMS{Name: s.Name, DurMS: ms(s.Dur), Count: s.Count}
	}
	return out
}
