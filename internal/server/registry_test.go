package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// doJSON issues a request with an optional JSON body and returns the
// status and decoded error code ("" for 2xx).
func doJSON(t *testing.T, method, url, body string) (int, string, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var e ErrorEnvelope
	_ = json.Unmarshal(b, &e)
	return resp.StatusCode, e.Error.Code, string(b)
}

// The registry API lifecycle against a server that starts empty:
// register, list, address, 404/409 error model, delete.
func TestInstanceRegistryLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	// Empty registry: listing is empty and estimates cannot resolve.
	var listing struct {
		Count     int               `json:"count"`
		Instances []InstanceSummary `json:"instances"`
	}
	getJSON(t, ts.URL+"/v1/instances", &listing)
	if listing.Count != 0 {
		t.Fatalf("initial count = %d, want 0", listing.Count)
	}
	if status, code, _ := doJSON(t, "POST", ts.URL+"/v1/estimate",
		`{"query": "Q() :- R(x)"}`); status != http.StatusBadRequest || code != "missing_instance" {
		t.Fatalf("estimate on empty registry = %d/%s, want 400/missing_instance", status, code)
	}

	// Register a tiny generated instance.
	spec := `{"name": "tiny", "benchmark": "tpch", "sf": 0.001, "seed": 1}`
	status, _, body := doJSON(t, "POST", ts.URL+"/v1/instances", spec)
	if status != http.StatusCreated {
		t.Fatalf("register = %d: %s", status, body)
	}
	var created InstanceSummary
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		t.Fatal(err)
	}
	if created.Name != "tiny" || created.Source != "api" || created.Facts == 0 {
		t.Fatalf("created summary = %+v", created)
	}

	// Duplicate name: 409, whether the body matches or not.
	if status, code, _ := doJSON(t, "POST", ts.URL+"/v1/instances", spec); status != http.StatusConflict || code != "instance_exists" {
		t.Fatalf("duplicate register = %d/%s, want 409/instance_exists", status, code)
	}
	// Invalid specs: bad name, bad benchmark, unknown field.
	for _, bad := range []string{
		`{"name": "bad name!"}`,
		`{"name": "x", "benchmark": "tpcx"}`,
		`{"name": "x", "scalefactor": 2}`,
	} {
		if status, _, _ := doJSON(t, "POST", ts.URL+"/v1/instances", bad); status != http.StatusBadRequest {
			t.Fatalf("register %s = %d, want 400", bad, status)
		}
	}

	// A single registered instance resolves without naming it; naming it
	// works too; naming anything else is a 404.
	ok := `{"query": "Q() :- region(k, n, c)", "scheme": "Natural", "max_samples": 100000}`
	if status, _, body := doJSON(t, "POST", ts.URL+"/v1/estimate", ok); status != http.StatusOK {
		t.Fatalf("estimate without instance = %d: %s", status, body)
	}
	named := `{"instance": "tiny", "query": "Q() :- region(k, n, c)", "scheme": "Natural", "max_samples": 100000}`
	if status, _, body := doJSON(t, "POST", ts.URL+"/v1/estimate", named); status != http.StatusOK {
		t.Fatalf("estimate with instance = %d: %s", status, body)
	}
	if status, code, _ := doJSON(t, "POST", ts.URL+"/v1/estimate",
		`{"instance": "nope", "query": "Q() :- region(k, n, c)"}`); status != http.StatusNotFound || code != "unknown_instance" {
		t.Fatalf("unknown instance = %d/%s, want 404/unknown_instance", status, code)
	}
	if status, code, _ := doJSON(t, "POST", ts.URL+"/v1/synopsis",
		`{"instance": "nope", "query": "Q() :- region(k, n, c)"}`); status != http.StatusNotFound || code != "unknown_instance" {
		t.Fatalf("synopsis unknown instance = %d/%s, want 404/unknown_instance", status, code)
	}

	// The listing reflects residency and usage.
	getJSON(t, ts.URL+"/v1/instances", &listing)
	if listing.Count != 1 || listing.Instances[0].Estimates != 2 {
		t.Fatalf("listing = %+v", listing)
	}
	if listing.Instances[0].ResidentSynopses == 0 || listing.Instances[0].ResidentBytes == 0 {
		t.Fatalf("no resident synopsis after estimates: %+v", listing.Instances[0])
	}

	// Delete: resident synopses leave the LRU with the instance.
	if status, _, body := doJSON(t, "DELETE", ts.URL+"/v1/instances/tiny", ""); status != http.StatusOK {
		t.Fatalf("delete = %d: %s", status, body)
	}
	if got := s.ResidentSynopsisBytes(); got != 0 {
		t.Fatalf("resident bytes after delete = %d, want 0", got)
	}
	if status, code, _ := doJSON(t, "DELETE", ts.URL+"/v1/instances/tiny", ""); status != http.StatusNotFound || code != "unknown_instance" {
		t.Fatalf("double delete = %d/%s, want 404/unknown_instance", status, code)
	}
	getJSON(t, ts.URL+"/v1/instances", &listing)
	if listing.Count != 0 {
		t.Fatalf("count after delete = %d, want 0", listing.Count)
	}
}

// With several instances and none named "default", a request that names
// no instance is ambiguous (400); with a "default" registered, it
// resolves there.
func TestInstanceResolutionRules(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Instances: []InstanceConfig{
		{Name: "a", DB: smallDB(t)},
		{Name: "b", DB: smallDB(t)},
	}})
	body := `{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM"}`
	if status, code, _ := doJSON(t, "POST", ts.URL+"/v1/estimate", body); status != http.StatusBadRequest || code != "missing_instance" {
		t.Fatalf("ambiguous estimate = %d/%s, want 400/missing_instance", status, code)
	}

	_, ts2 := newTestServer(t, Config{DB: smallDB(t), Workers: 2, Instances: []InstanceConfig{
		{Name: "a", DB: smallDB(t)},
	}})
	status, _, respBody := doJSON(t, "POST", ts2.URL+"/v1/estimate", body)
	if status != http.StatusOK {
		t.Fatalf("estimate = %d: %s", status, respBody)
	}
	var resp EstimateResponse
	if err := json.Unmarshal([]byte(respBody), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Instance != "default" {
		t.Fatalf("unnamed request resolved to %q, want default", resp.Instance)
	}
}

// Distinct instances never share resident synopses or estimator state:
// the same query against two differently-named (but identical) instances
// builds twice and lands under each instance's LRU accounting.
func TestInstancesIsolateSynopses(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Instances: []InstanceConfig{
		{Name: "a", DB: smallDB(t)},
		{Name: "b", DB: smallDB(t)},
	}})
	for _, in := range []string{"a", "b"} {
		body := fmt.Sprintf(`{"instance": %q, "query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM"}`, in)
		status, respBody, _ := post(t, ts.URL+"/v1/estimate", body)
		if status != http.StatusOK {
			t.Fatalf("estimate on %s = %d: %s", in, status, respBody)
		}
		var resp EstimateResponse
		if err := json.Unmarshal([]byte(respBody), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Synopsis != "build" {
			t.Fatalf("instance %s synopsis source = %q, want build (no cross-instance sharing)", in, resp.Synopsis)
		}
	}
	for _, in := range []string{"a", "b"} {
		if entries, _ := s.lru.residentFor(in); entries != 1 {
			t.Fatalf("instance %s resident entries = %d, want 1", in, entries)
		}
	}
}

// The /debug/requests inspector records and filters by instance.
func TestDebugRequestsInstanceFilter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Instances: []InstanceConfig{
		{Name: "a", DB: smallDB(t)},
		{Name: "b", DB: smallDB(t)},
	}})
	for _, in := range []string{"a", "a", "b"} {
		body := fmt.Sprintf(`{"instance": %q, "query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM"}`, in)
		post(t, ts.URL+"/v1/estimate", body)
	}
	var dr DebugRequestsResponse
	getJSON(t, ts.URL+"/debug/requests?instance=a", &dr)
	if dr.Count != 2 {
		t.Fatalf("instance=a records = %d, want 2", dr.Count)
	}
	for _, rec := range dr.Requests {
		if rec.Instance != "a" {
			t.Fatalf("filtered record has instance %q", rec.Instance)
		}
	}
}
