package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cqabench/internal/obs"
	"cqabench/internal/obs/trace"
)

// getJSON fetches url and decodes the body into v, failing the test on
// transport errors; returns the status code and raw body.
func getJSON(t testing.TB, url string, v any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, b)
		}
	}
	return resp.StatusCode, b
}

func TestTraceIDEchoAndRequestLog(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})

	const reqID = "tracing-test.42"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate",
		strings.NewReader(`{"query": "Q() :- Employee(1, 'Bob', d)", "scheme": "Natural"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trace-ID"); got != reqID {
		t.Fatalf("X-Trace-ID = %q, want inbound X-Request-ID %q", got, reqID)
	}
	var er struct {
		Stats EstimateStats `json:"stats"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Stats.TraceID != reqID {
		t.Fatalf("stats.trace_id = %q, want %q", er.Stats.TraceID, reqID)
	}

	// The request must appear in the inspector with a stage breakdown.
	var dr DebugRequestsResponse
	if code, b := getJSON(t, ts.URL+"/debug/requests", &dr); code != http.StatusOK {
		t.Fatalf("/debug/requests = %d: %s", code, b)
	}
	var rec *RequestRecord
	for i := range dr.Requests {
		if dr.Requests[i].TraceID == reqID {
			rec = &dr.Requests[i]
		}
	}
	if rec == nil {
		t.Fatalf("trace id %q not in /debug/requests: %+v", reqID, dr.Requests)
	}
	if rec.Endpoint != "/v1/estimate" || rec.Status != http.StatusOK {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Scheme == "" || rec.Samples <= 0 {
		t.Fatalf("record missing estimator stats: %+v", rec)
	}
	if rec.LatencyMS <= 0 {
		t.Fatalf("latency_ms = %v, want > 0", rec.LatencyMS)
	}
	var estimateMS float64
	for _, st := range rec.Stages {
		if st.Name == "estimate" {
			estimateMS = st.DurMS
		}
	}
	if estimateMS <= 0 {
		t.Fatalf("stage breakdown has no nonzero estimate stage: %+v", rec.Stages)
	}
}

func TestMalformedRequestIDReplaced(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 1})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate",
		strings.NewReader(`{"query": "Q() :- Employee(1, 'Bob', d)", "scheme": "Natural"}`))
	req.Header.Set("X-Request-ID", "bad id with spaces")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Trace-ID")
	if got == "" || got == "bad id with spaces" || !obs.IsValidTraceID(got) {
		t.Fatalf("X-Trace-ID = %q, want a fresh generated id", got)
	}
}

func TestDebugRequestTraceSpanTree(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})

	const reqID = "span-tree-test"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate",
		strings.NewReader(`{"query": "Q() :- Employee(1, n, d)", "scheme": "KL", "eps": 0.05}`))
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate = %d", resp.StatusCode)
	}

	var f trace.File
	if code, b := getJSON(t, ts.URL+"/debug/requests/"+reqID+"/trace", &f); code != http.StatusOK {
		t.Fatalf("trace fetch = %d: %s", code, b)
	}
	// Span names repeat across levels (the server's "estimate" child vs
	// the estimator's internal "estimate" stage), so keep the shallowest.
	depth := map[string]float64{}
	for _, ev := range f.TraceEvents {
		if ev.Phase != "X" {
			t.Fatalf("unexpected phase %q in %+v", ev.Phase, ev)
		}
		d, _ := ev.Args["depth"].(float64)
		if old, ok := depth[ev.Name]; !ok || d < old {
			depth[ev.Name] = d
		}
	}
	if d, ok := depth["server./v1/estimate"]; !ok || d != 0 {
		t.Fatalf("missing root span server./v1/estimate (events: %v)", depth)
	}
	for _, child := range []string{"queue.wait", "estimate"} {
		if d, ok := depth[child]; !ok || d != 1 {
			t.Fatalf("span %q missing or not a direct child (depth %v, ok=%v); tree: %v",
				child, d, ok, depth)
		}
	}
	if d, ok := depth["cqa.KL"]; !ok || d != 2 {
		t.Fatalf("estimator span cqa.KL missing or misplaced (depth %v, ok=%v): %v", d, ok, depth)
	}
	if f.Metadata["manifest"] == nil {
		t.Fatal("trace metadata missing run manifest")
	}

	// Unknown trace IDs are a clean 404.
	code, b := getJSON(t, ts.URL+"/debug/requests/no-such-id/trace", nil)
	if code != http.StatusNotFound || !strings.Contains(string(b), "not_found") {
		t.Fatalf("unknown trace = %d: %s", code, b)
	}
}

func TestDebugRequestsFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	post(t, ts.URL+"/v1/estimate", `{"query": "Q() :- Employee(1, 'Bob', d)", "scheme": "Natural"}`)
	post(t, ts.URL+"/v1/estimate", `{"query": "not a query"}`)

	var dr DebugRequestsResponse
	if code, b := getJSON(t, ts.URL+"/debug/requests?errors=true", &dr); code != http.StatusOK {
		t.Fatalf("errors filter = %d: %s", code, b)
	}
	if len(dr.Requests) != 1 || dr.Requests[0].Reason == "" {
		t.Fatalf("errors=true = %+v, want exactly the failed parse", dr.Requests)
	}

	dr = DebugRequestsResponse{}
	if code, _ := getJSON(t, ts.URL+"/debug/requests?n=1&sort=slow", &dr); code != http.StatusOK || len(dr.Requests) != 1 {
		t.Fatalf("n=1 returned %d records (code %d)", len(dr.Requests), code)
	}

	// min_ms far above any test latency filters everything out, as [].
	dr = DebugRequestsResponse{}
	if _, b := getJSON(t, ts.URL+"/debug/requests?min_ms=100000", &dr); len(dr.Requests) != 0 || !strings.Contains(string(b), `"requests": []`) && !strings.Contains(string(b), `"requests":[]`) {
		t.Fatalf("min_ms filter: %s", b)
	}

	for _, bad := range []string{"n=0", "n=x", "min_ms=-1", "errors=maybe", "sort=wat"} {
		if code, _ := getJSON(t, ts.URL+"/debug/requests?"+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("?%s = %d, want 400", bad, code)
		}
	}
}

func TestVersionAndMetricsJSONEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 1})

	var m struct {
		Tool      string `json:"tool"`
		GoVersion string `json:"go_version"`
		PID       int    `json:"pid"`
	}
	if code, b := getJSON(t, ts.URL+"/version", &m); code != http.StatusOK {
		t.Fatalf("/version = %d: %s", code, b)
	}
	if m.Tool == "" || m.GoVersion == "" || m.PID == 0 {
		t.Fatalf("manifest incomplete: %+v", m)
	}

	post(t, ts.URL+"/v1/estimate", `{"query": "Q() :- Employee(1, 'Bob', d)", "scheme": "Natural"}`)
	var env struct {
		Manifest json.RawMessage `json:"manifest"`
		Metrics  json.RawMessage `json:"metrics"`
	}
	if code, b := getJSON(t, ts.URL+"/metrics.json", &env); code != http.StatusOK {
		t.Fatalf("/metrics.json = %d: %s", code, b)
	}
	if len(env.Manifest) == 0 {
		t.Fatal("/metrics.json envelope missing manifest")
	}
	if !strings.Contains(string(env.Metrics), "server_requests_total") {
		t.Fatalf("metrics payload missing server_requests_total: %s", env.Metrics)
	}
	if !strings.Contains(string(env.Metrics), `"window"`) {
		t.Fatalf("metrics payload missing windowed series: %s", env.Metrics)
	}
}

// promValue extracts the value of the exposition line starting with
// prefix, or -1 when the line is absent.
func promValue(t testing.TB, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		var v float64
		rest := strings.TrimSpace(line[len(prefix):])
		if _, err := json.Number(rest).Float64(); err == nil {
			v, _ = json.Number(rest).Float64()
			return v
		}
		t.Fatalf("unparsable exposition line %q", line)
	}
	return -1
}

func TestWindowedLatencyExportsAndDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 1})

	// Pin the window ring to a controllable clock. The ring is the one
	// New() registered; re-registering returns it, not a fresh one.
	var now atomic.Int64
	base := time.Now()
	now.Store(0)
	wh := s.reg.WindowedHistogram("server_request_seconds", nil,
		obs.L("endpoint", "/v1/estimate"), obs.L("instance", "default"))
	wh.SetNowFunc(func() time.Time { return base.Add(time.Duration(now.Load())) })

	post(t, ts.URL+"/v1/estimate", `{"query": "Q() :- Employee(1, 'Bob', d)", "scheme": "Natural"}`)

	fetch := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	const p99 = `server_request_seconds_window{endpoint="/v1/estimate",instance="default",quantile="0.99",window="1m"} `
	const cnt = `server_request_seconds_window_count{endpoint="/v1/estimate",instance="default",window="1m"} `
	exp := fetch()
	if v := promValue(t, exp, p99); v <= 0 {
		t.Fatalf("windowed p99 = %v, want > 0; exposition:\n%s", v, exp)
	}
	if v := promValue(t, exp, cnt); v != 1 {
		t.Fatalf("windowed count = %v, want 1", v)
	}

	// Once the window elapses with no new traffic the quantile drains to
	// zero — the SLO series reflects current behavior, not history.
	now.Store(int64(2 * time.Minute))
	exp = fetch()
	if v := promValue(t, exp, p99); v != 0 {
		t.Fatalf("windowed p99 after window elapsed = %v, want 0", v)
	}
	if v := promValue(t, exp, cnt); v != 0 {
		t.Fatalf("windowed count after window elapsed = %v, want 0", v)
	}

	// The cumulative histogram keeps the observation.
	if v := promValue(t, exp, `server_request_seconds_count{endpoint="/v1/estimate",instance="default"} `); v != 1 {
		t.Fatalf("cumulative count = %v, want 1", v)
	}
}

func TestQueueWaitMetricAndRejectReasons(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 1})
	post(t, ts.URL+"/v1/estimate", `{"query": "Q() :- Employee(1, 'Bob', d)", "scheme": "Natural"}`)
	snap := s.reg.Histogram("server_queue_wait_seconds",
		obs.L("endpoint", "/v1/estimate"), obs.L("instance", "default")).Snapshot()
	if snap.Count != 1 {
		t.Fatalf("queue wait observations = %d, want 1", snap.Count)
	}

	// A malformed body is recorded with its reject reason.
	post(t, ts.URL+"/v1/estimate", `{"query": `)
	var dr DebugRequestsResponse
	getJSON(t, ts.URL+"/debug/requests?errors=1&n=1", &dr)
	if len(dr.Requests) != 1 || dr.Requests[0].Reason != "bad_request" {
		t.Fatalf("reject reason = %+v, want bad_request", dr.Requests)
	}
}
