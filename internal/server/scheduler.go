package server

import (
	"context"
	"fmt"
	"sync"

	"cqabench/internal/obs"
	"cqabench/internal/scenario"
)

// The admission scheduler: weighted deficit-round-robin (DRR) fair
// queueing across instances over one shared worker pool. Each instance
// (tenant) owns a bounded FIFO of waiters; tenants with waiters sit in
// a ring, and freed worker slots are granted by walking the ring with
// per-tenant deficit counters topped up by the tenant's weight. With
// weights w_i, tenant i receives w_i / Σw_j of contended slots — a hot
// instance keeps the pool busy when it is alone but can no longer
// starve a light one: the light tenant's next request waits at most
// one DRR round, not the hot tenant's whole backlog.
//
// The scheduler also owns per-tenant quota state (token buckets and
// concurrency caps, see quota.go): tenants at their MaxConcurrent are
// skipped by the dispatch walk without a deficit top-up, so caps cost
// no fairness share.

// schedWaiter is one request queued for a worker slot. ready closes
// when the slot is granted; granted disambiguates grant-vs-abandon
// races under the scheduler lock.
type schedWaiter struct {
	t       *tenant
	ready   chan struct{}
	granted bool
}

// tenant is the per-instance scheduling state. All fields are guarded
// by the scheduler mutex.
type tenant struct {
	name string

	// weight and deficit drive the DRR walk. weight >= 1; an idle
	// tenant's deficit is reset to 0 (no banked credit across idle
	// periods — classic DRR).
	weight  int64
	deficit int64

	// generation counts policy updates (weight/quota), backing the
	// PATCH if_generation optimistic-concurrency check.
	generation int64

	// running / maxConcurrent enforce the per-instance concurrency cap
	// (0 = uncapped). waiters is the bounded FIFO; inRing tracks ring
	// membership (waiters nonempty <=> inRing).
	running       int
	maxConcurrent int
	waiters       []*schedWaiter
	inRing        bool

	// reqBucket / workBucket are the instance's token buckets (nil =
	// unlimited); quota echoes the normalized spec for summaries.
	reqBucket  *bucket
	workBucket *bucket
	quota      *scenario.QuotaSpec
}

// atCap reports whether the tenant may not start another request.
func (t *tenant) atCap() bool {
	return t.maxConcurrent > 0 && t.running >= t.maxConcurrent
}

// scheduler is the DRR admission scheduler. capacity is the worker
// pool size; queueDepth bounds each tenant's waiter FIFO.
type scheduler struct {
	mu         sync.Mutex
	capacity   int
	queueDepth int
	running    int
	tenants    map[string]*tenant
	ring       []*tenant
	ringPos    int
	reg        *obs.Registry

	// defaults for tenants created without explicit policy (unknown
	// instances, or specs without weight/quota).
	defaultQuota *scenario.QuotaSpec
}

func newScheduler(capacity, queueDepth int, defaultQuota *scenario.QuotaSpec, reg *obs.Registry) *scheduler {
	return &scheduler{
		capacity:     capacity,
		queueDepth:   queueDepth,
		tenants:      make(map[string]*tenant),
		reg:          reg,
		defaultQuota: defaultQuota,
	}
}

// buckets materializes a quota spec into token buckets (nil spec or
// zero fields mean no bucket).
func buckets(q *scenario.QuotaSpec) (req, work *bucket, norm *scenario.QuotaSpec, maxConc int) {
	if q == nil {
		return nil, nil, nil, 0
	}
	n := q.Normalized()
	if n.Burst > 0 {
		req = newBucket(n.Rate, n.Burst)
	}
	if n.WorkBurst > 0 {
		work = newBucket(n.WorkRate, n.WorkBurst)
	}
	return req, work, &n, n.MaxConcurrent
}

// tenantLocked returns (creating on demand) the tenant for name. An
// on-demand tenant gets weight 1 and the scheduler's default quota —
// the path requests to just-registered or unknown instances take
// before registerTenant ran.
func (s *scheduler) tenantLocked(name string) *tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	t := &tenant{name: name, weight: 1}
	t.reqBucket, t.workBucket, t.quota, t.maxConcurrent = buckets(s.defaultQuota)
	s.tenants[name] = t
	return t
}

// registerTenant installs an instance's scheduling policy (weight 0
// selects the default 1; quota nil selects the scheduler default).
func (s *scheduler) registerTenant(name string, weight int, quota *scenario.QuotaSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(name)
	if weight <= 0 {
		weight = 1
	}
	t.weight = int64(weight)
	if quota == nil {
		quota = s.defaultQuota
	}
	t.reqBucket, t.workBucket, t.quota, t.maxConcurrent = buckets(quota)
	s.publishTenantLocked(t)
}

// dropTenant forgets an instance's scheduling state. In-flight
// requests keep their slots (release recreates a transient tenant to
// decrement against); waiters should already be gone since the
// instance left the registry before its tenant is dropped.
func (s *scheduler) dropTenant(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return
	}
	s.reg.Gauge("server_queue_depth", obs.L("instance", name)).Set(0)
	s.reg.Gauge("server_scheduler_deficit", obs.L("instance", name)).Set(0)
	if t.inRing || t.running > 0 {
		// Still active: keep the state so releases balance; it will be
		// garbage once idle (harmless — bounded by instance churn).
		return
	}
	delete(s.tenants, name)
}

// patch atomically updates a tenant's policy. ifGen, when non-nil,
// must match the tenant's current generation — the optimistic
// concurrency check behind PATCH's 409. Returns the new generation.
func (s *scheduler) patch(name string, weight *int, quota *scenario.QuotaSpec, ifGen *int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(name)
	if ifGen != nil && *ifGen != t.generation {
		return t.generation, fmt.Errorf("generation %d does not match current %d", *ifGen, t.generation)
	}
	if weight != nil {
		w := *weight
		if w <= 0 {
			w = 1
		}
		t.weight = int64(w)
		if t.deficit > t.weight {
			t.deficit = t.weight
		}
	}
	if quota != nil {
		t.reqBucket, t.workBucket, t.quota, t.maxConcurrent = buckets(quota)
	}
	t.generation++
	// A raised cap (or lifted quota) may unblock queued work.
	s.dispatchLocked()
	s.publishTenantLocked(t)
	s.reg.Gauge("server_inflight").Set(float64(s.running))
	return t.generation, nil
}

// policy reports a tenant's current scheduling policy for summaries.
func (s *scheduler) policy(name string) (weight int64, quota *scenario.QuotaSpec, generation int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return 1, nil, 0
	}
	return t.weight, t.quota, t.generation
}

// schedOutcome is what acquire learned while admitting, recorded on
// the request's debug record.
type schedOutcome struct {
	queued      bool
	queuedAhead int
	weight      int64
	deficit     int64
}

// acquire admits one request for instance name: immediately when the
// pool has a free slot and no one is queued anywhere, otherwise
// through the tenant's FIFO and the DRR walk. It fails fast when the
// tenant's queue is full (errQueueFull) and gives up when ctx expires
// (the waiter leaves the queue). On success the returned release must
// be called exactly once.
func (s *scheduler) acquire(ctx context.Context, name string) (release func(), out schedOutcome, err error) {
	s.mu.Lock()
	t := s.tenantLocked(name)
	out.weight = t.weight
	if s.running < s.capacity && len(s.ring) == 0 && !t.atCap() {
		t.running++
		s.running++
		s.reg.Gauge("server_inflight").Set(float64(s.running))
		s.mu.Unlock()
		return s.releaseFunc(t), out, nil
	}
	if len(t.waiters) >= s.queueDepth {
		n := len(t.waiters)
		s.mu.Unlock()
		return nil, out, fmt.Errorf("%w: instance %q has %d requests queued (queue depth %d per instance)",
			errQueueFull, name, n, s.queueDepth)
	}
	w := &schedWaiter{t: t, ready: make(chan struct{})}
	out.queued = true
	out.queuedAhead = len(t.waiters)
	out.deficit = t.deficit
	t.waiters = append(t.waiters, w)
	if !t.inRing {
		t.inRing = true
		s.ring = append(s.ring, t)
	}
	// A slot may be free even though we queued (capped tenants, or the
	// fast path declined because others were waiting): run the walk.
	s.dispatchLocked()
	s.publishTenantLocked(t)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return s.releaseFunc(t), out, nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	if w.granted {
		// Lost the race: a grant landed while ctx was expiring. Give the
		// slot back (dispatching a successor) and report the expiry.
		s.releaseLocked(t)
	} else {
		s.removeWaiterLocked(t, w)
	}
	s.publishTenantLocked(t)
	s.mu.Unlock()
	return nil, out, fmt.Errorf("request expired while queued: %w", ctx.Err())
}

// releaseFunc returns the slot-release closure for a granted tenant.
func (s *scheduler) releaseFunc(t *tenant) func() {
	return func() {
		s.mu.Lock()
		s.releaseLocked(t)
		s.publishTenantLocked(t)
		s.mu.Unlock()
	}
}

func (s *scheduler) releaseLocked(t *tenant) {
	t.running--
	s.running--
	s.dispatchLocked()
	s.reg.Gauge("server_inflight").Set(float64(s.running))
}

// dispatchLocked grants freed slots until the pool is full or no
// eligible waiter remains.
func (s *scheduler) dispatchLocked() {
	for s.grantNextLocked() {
	}
}

// grantNextLocked performs one step of the DRR walk: visit the ring
// from ringPos, skipping tenants at their concurrency cap (no top-up),
// topping up the first eligible tenant's deficit by its weight when
// spent, and granting its head waiter one slot. The walk stays on a
// tenant while it has both deficit and waiters, so a weight-w tenant
// receives up to w consecutive grants per round.
func (s *scheduler) grantNextLocked() bool {
	if s.running >= s.capacity {
		return false
	}
	skipped := 0
	for skipped < len(s.ring) {
		if len(s.ring) == 0 {
			return false
		}
		if s.ringPos >= len(s.ring) {
			s.ringPos = 0
		}
		t := s.ring[s.ringPos]
		if t.atCap() {
			s.ringPos++
			skipped++
			continue
		}
		if t.deficit < 1 {
			t.deficit += t.weight
		}
		t.deficit--
		w := t.waiters[0]
		copy(t.waiters, t.waiters[1:])
		t.waiters[len(t.waiters)-1] = nil
		t.waiters = t.waiters[:len(t.waiters)-1]
		w.granted = true
		t.running++
		s.running++
		close(w.ready)
		if len(t.waiters) == 0 {
			s.leaveRingLocked(s.ringPos, t)
		} else if t.deficit < 1 {
			s.ringPos++
		}
		s.publishTenantLocked(t)
		s.reg.Gauge("server_inflight").Set(float64(s.running))
		return true
	}
	return false
}

// leaveRingLocked removes the tenant at ring index i; an emptied
// tenant forfeits its remaining deficit (no banked credit while idle).
func (s *scheduler) leaveRingLocked(i int, t *tenant) {
	t.inRing = false
	t.deficit = 0
	s.ring = append(s.ring[:i], s.ring[i+1:]...)
	if s.ringPos > i {
		s.ringPos--
	}
}

// removeWaiterLocked drops an abandoned waiter from its tenant's FIFO.
func (s *scheduler) removeWaiterLocked(t *tenant, w *schedWaiter) {
	for i, cand := range t.waiters {
		if cand == w {
			t.waiters = append(t.waiters[:i], t.waiters[i+1:]...)
			break
		}
	}
	if len(t.waiters) == 0 && t.inRing {
		for i, cand := range s.ring {
			if cand == t {
				s.leaveRingLocked(i, t)
				break
			}
		}
	}
}

// publishTenantLocked refreshes the per-instance scheduling gauges.
func (s *scheduler) publishTenantLocked(t *tenant) {
	s.reg.Gauge("server_queue_depth", obs.L("instance", t.name)).Set(float64(len(t.waiters)))
	s.reg.Gauge("server_scheduler_deficit", obs.L("instance", t.name)).Set(float64(t.deficit))
}

// inflight reports requests currently holding a worker slot.
func (s *scheduler) inflight() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.running)
}

// queued reports how many requests are waiting in name's FIFO.
func (s *scheduler) queued(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return len(t.waiters)
	}
	return 0
}

// admittedTotal reports running + waiting requests across all tenants
// (test accessor; the old single-queue admission counter equivalent).
func (s *scheduler) admittedTotal() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.running
	for _, t := range s.tenants {
		n += len(t.waiters)
	}
	return int64(n)
}
