package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cqabench/internal/obs"
	"cqabench/internal/relation"
	"cqabench/internal/scenario"
)

// The instance registry: the server hosts many named database
// instances, populated at startup from Config.Instances (typically a
// `-instances manifest.json`) and mutated at runtime through
// POST/GET/DELETE /v1/instances. Every estimate and synopsis request
// addresses an instance by name; the registry is the single source of
// truth for which (instance -> database) bindings exist, while resident
// synopsis memory is governed globally by the synopsisLRU.

// Instance is one registered database instance.
type Instance struct {
	// Name addresses the instance in requests, metric labels and the
	// registry API.
	Name string
	// Source records how the instance arrived: "manifest" (startup
	// file), "flags" (single-instance serve flags), "api" (runtime
	// registration) or "config" (embedded server.Config.Instances).
	Source string
	// Created is the registration time.
	Created time.Time
	// Fingerprint identifies the instance contents for syncache keys;
	// empty disables on-disk persistence for this instance's synopses.
	Fingerprint string

	db   *relation.Database
	spec *scenario.InstanceSpec // nil when the DB was provided directly

	// estimates counts completed estimate runs against this instance
	// (leader runs, not coalesced followers).
	estimates atomic.Int64
}

// DB returns the instance's database.
func (in *Instance) DB() *relation.Database { return in.db }

// Registry errors, mapped onto the HTTP error model by the handlers
// (404 unknown_instance, 409 instance_exists, 400 missing_instance).
var (
	// ErrUnknownInstance reports a request addressing an instance that
	// is not registered.
	ErrUnknownInstance = errors.New("server: unknown instance")
	// ErrInstanceExists reports a registration under a name already
	// taken (including one whose build is still in progress).
	ErrInstanceExists = errors.New("server: instance already registered")
	// ErrNoInstance reports a request that named no instance against a
	// server where the choice is ambiguous (zero or several instances
	// and none called "default").
	ErrNoInstance = errors.New("server: no instance selected")
)

// instanceRegistry is the concurrent name -> *Instance map plus the
// server_instances gauge. Registration via spec is two-phase: the name
// is reserved under the lock, the (potentially slow) database build
// runs outside it, and a failed build releases the reservation — so
// concurrent duplicate registrations get an immediate 409 instead of
// racing two builds.
type instanceRegistry struct {
	mu        sync.RWMutex
	instances map[string]*Instance
	pending   map[string]bool
	reg       *obs.Registry
}

func newInstanceRegistry(reg *obs.Registry) *instanceRegistry {
	r := &instanceRegistry{
		instances: make(map[string]*Instance),
		pending:   make(map[string]bool),
		reg:       reg,
	}
	r.publish()
	return r
}

// publish refreshes server_instances; callers need not hold r.mu.
func (r *instanceRegistry) publish() {
	r.mu.RLock()
	n := len(r.instances)
	r.mu.RUnlock()
	r.reg.Gauge("server_instances").Set(float64(n))
}

// add registers a fully built instance. Fails with ErrInstanceExists if
// the name is taken or reserved.
func (r *instanceRegistry) add(in *Instance) error {
	if !scenario.ValidInstanceName(in.Name) {
		return fmt.Errorf("server: invalid instance name %q", in.Name)
	}
	r.mu.Lock()
	if r.instances[in.Name] != nil || r.pending[in.Name] {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrInstanceExists, in.Name)
	}
	r.instances[in.Name] = in
	r.mu.Unlock()
	r.publish()
	return nil
}

// reserve claims a name for an in-progress build; release undoes a
// failed build's claim.
func (r *instanceRegistry) reserve(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.instances[name] != nil || r.pending[name] {
		return fmt.Errorf("%w: %q", ErrInstanceExists, name)
	}
	r.pending[name] = true
	return nil
}

func (r *instanceRegistry) release(name string) {
	r.mu.Lock()
	delete(r.pending, name)
	r.mu.Unlock()
}

// commit converts a reservation into a registration.
func (r *instanceRegistry) commit(in *Instance) {
	r.mu.Lock()
	delete(r.pending, in.Name)
	r.instances[in.Name] = in
	r.mu.Unlock()
	r.publish()
}

// remove deletes an instance, returning it for cleanup (LRU drop).
func (r *instanceRegistry) remove(name string) (*Instance, error) {
	r.mu.Lock()
	in, ok := r.instances[name]
	if ok {
		delete(r.instances, name)
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	r.publish()
	return in, nil
}

// lookup resolves the instance a request addressed. An empty name is
// accepted only when the choice is unambiguous: a single registered
// instance, or one named "default".
func (r *instanceRegistry) lookup(name string) (*Instance, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.instances) == 1 {
			for _, in := range r.instances {
				return in, nil
			}
		}
		if in := r.instances["default"]; in != nil {
			return in, nil
		}
		return nil, fmt.Errorf("%w: %d instances registered, name one in the request", ErrNoInstance, len(r.instances))
	}
	in, ok := r.instances[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	return in, nil
}

// list returns every instance sorted by name.
func (r *instanceRegistry) list() []*Instance {
	r.mu.RLock()
	out := make([]*Instance, 0, len(r.instances))
	for _, in := range r.instances {
		out = append(out, in)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// names returns the registered instance names, sorted.
func (r *instanceRegistry) names() []string {
	ins := r.list()
	out := make([]string, len(ins))
	for i, in := range ins {
		out[i] = in.Name
	}
	return out
}
