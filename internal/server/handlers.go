package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cqabench/internal/cq"
	"cqabench/internal/cqa"
	"cqabench/internal/cqaerr"
	"cqabench/internal/estimator"
	"cqabench/internal/obs"
	"cqabench/internal/relation"
)

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	// Query is the conjunctive query, in the library's text syntax.
	Query string `json:"query"`
	// Scheme names the approximation scheme (Natural, KL, KLM, Cover);
	// "" or "auto" selects it from the synopsis per the paper's
	// recommendation.
	Scheme string `json:"scheme,omitempty"`
	// Eps and Delta override the paper's defaults (0.1 / 0.25) when
	// non-zero; both must lie in (0, 1).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Seed overrides the reference MT19937-64 seed when non-zero, making
	// repeat requests deterministic per seed.
	Seed uint64 `json:"seed,omitempty"`
	// MaxSamples bounds the per-tuple sample count (0 = unbounded).
	MaxSamples int64 `json:"max_samples,omitempty"`
	// TimeoutMS bounds this request's wall time; 0 selects the server's
	// default, larger values are capped at its maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Answer is one graded answer tuple.
type Answer struct {
	Tuple []string `json:"tuple"`
	Freq  float64  `json:"freq"`
}

// EstimateStats summarizes the work a request performed.
type EstimateStats struct {
	Samples   int64   `json:"samples"`
	NumTuples int     `json:"num_tuples"`
	GoodRatio float64 `json:"good_ratio"`
	PrepMS    float64 `json:"prep_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// EstimateResponse is the body of a successful POST /v1/estimate.
type EstimateResponse struct {
	Scheme   string        `json:"scheme"`
	Answers  []Answer      `json:"answers"`
	Stats    EstimateStats `json:"stats"`
	Synopsis string        `json:"synopsis"` // "memo", "load" or "build"
}

// SynopsisRequest is the body of POST /v1/synopsis.
type SynopsisRequest struct {
	Query     string `json:"query"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// SynopsisResponse summarizes a built synopsis set.
type SynopsisResponse struct {
	Answers         int     `json:"answers"`
	Balance         float64 `json:"balance"`
	IndicatedScheme string  `json:"indicated_scheme"`
	Source          string  `json:"source"` // "memo", "load" or "build"
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

// parseQuery parses and schema-validates a request's query text.
func parseQuery(text string, db *relation.Database) (*cq.Query, error) {
	q, err := cq.Parse(text, db.Dict)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(db.Schema); err != nil {
		return nil, err
	}
	return q, nil
}

// routes assembles the service mux. Go 1.22 method patterns give 405 for
// wrong methods for free.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.instrument("/v1/estimate", s.handleEstimate))
	mux.HandleFunc("POST /v1/synopsis", s.instrument("/v1/synopsis", s.handleSynopsis))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
	})
	return mux
}

// statusRecorder captures the response code for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request counter, latency histogram
// and a log line.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		code := fmt.Sprintf("%d", rec.status)
		s.reg.Counter("server_requests_total",
			obs.L("endpoint", endpoint), obs.L("code", code)).Inc()
		s.reg.Histogram("server_request_seconds", obs.L("endpoint", endpoint)).
			ObserveDuration(elapsed)
		s.log.Info("server: request",
			"endpoint", endpoint, "code", rec.status, "elapsed", elapsed)
	}
}

// decode reads and strictly parses a JSON body, bounding its size.
// A nil error means v is populated; otherwise the response is written.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// options assembles cqa.Options from a request, validating up front so
// malformed eps/delta are a 400 before any admission or sampling work.
func (req *EstimateRequest) options() (cqa.Options, error) {
	opts := cqa.DefaultOptions()
	if req.Eps != 0 {
		opts.Eps = req.Eps
	}
	if req.Delta != 0 {
		opts.Delta = req.Delta
	}
	if req.Seed != 0 {
		opts.Seed = req.Seed
	}
	opts.Budget.MaxSamples = req.MaxSamples
	if err := opts.Validate(); err != nil {
		return cqa.Options{}, err
	}
	return opts, nil
}

// writeRunError maps an estimation/build failure onto a status code.
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, cqaerr.ErrInvalidOptions):
		writeError(w, http.StatusBadRequest, "invalid_options", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline", err.Error())
	case errors.Is(err, cqaerr.ErrCanceled):
		// The client went away; the status is moot but 499-style closure
		// needs a code, and 504 is the closest standard one.
		writeError(w, http.StatusGatewayTimeout, "canceled", err.Error())
	case errors.Is(err, estimator.ErrBudget):
		writeError(w, http.StatusUnprocessableEntity, "budget_exhausted", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_options", err.Error())
		return
	}
	var scheme cqa.Scheme
	auto := req.Scheme == "" || req.Scheme == "auto"
	if !auto {
		if scheme, err = cqa.ParseScheme(req.Scheme); err != nil {
			writeError(w, http.StatusBadRequest, "bad_scheme", err.Error())
			return
		}
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	ctx, span := obs.StartSpan(ctx, "server.estimate")
	defer span.End()

	prepStart := time.Now()
	set, source, err := s.synopsisFor(ctx, req.Query)
	if err != nil {
		if errors.Is(err, cqaerr.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			writeRunError(w, err)
		} else {
			writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		}
		return
	}
	prep := time.Since(prepStart)
	if auto {
		scheme = cqa.SelectScheme(set)
	}

	res, stats, err := cqa.ApxAnswersFromSetContext(ctx, set, scheme, opts)
	if err != nil {
		writeRunError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Scheme:   scheme.String(),
		Answers:  renderAnswers(s.cfg.DB, res),
		Synopsis: source,
		Stats: EstimateStats{
			Samples:   stats.Samples,
			NumTuples: stats.NumTuples,
			GoodRatio: stats.GoodRatio,
			PrepMS:    float64(prep.Microseconds()) / 1e3,
			ElapsedMS: float64(stats.Elapsed.Microseconds()) / 1e3,
		},
	})
}

func (s *Server) handleSynopsis(w http.ResponseWriter, r *http.Request) {
	var req SynopsisRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	start := time.Now()
	set, source, err := s.synopsisFor(ctx, req.Query)
	if err != nil {
		if errors.Is(err, cqaerr.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			writeRunError(w, err)
		} else {
			writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, SynopsisResponse{
		Answers:         set.OutputSize(),
		Balance:         set.Balance(),
		IndicatedScheme: cqa.SelectScheme(set).String(),
		Source:          source,
		ElapsedMS:       float64(time.Since(start).Microseconds()) / 1e3,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"inflight": s.inflight.Load(),
		"workers":  s.workers,
	})
}

// renderAnswers resolves interned values back to strings for the wire.
func renderAnswers(db *relation.Database, res []cqa.TupleFreq) []Answer {
	out := make([]Answer, len(res))
	for i, tf := range res {
		vals := make([]string, len(tf.Tuple))
		for j, v := range tf.Tuple {
			vals[j] = db.Dict.Render(v)
		}
		out[i] = Answer{Tuple: vals, Freq: tf.Freq}
	}
	return out
}
