package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"cqabench/internal/cq"
	"cqabench/internal/cqa"
	"cqabench/internal/cqaerr"
	"cqabench/internal/estimator"
	"cqabench/internal/obs"
	"cqabench/internal/relation"
)

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	// Query is the conjunctive query, in the library's text syntax.
	Query string `json:"query"`
	// Scheme names the approximation scheme (Natural, KL, KLM, Cover);
	// "" or "auto" selects it from the synopsis per the paper's
	// recommendation.
	Scheme string `json:"scheme,omitempty"`
	// Eps and Delta override the paper's defaults (0.1 / 0.25) when
	// non-zero; both must lie in (0, 1).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Seed overrides the reference MT19937-64 seed when non-zero, making
	// repeat requests deterministic per seed.
	Seed uint64 `json:"seed,omitempty"`
	// MaxSamples bounds the per-tuple sample count (0 = unbounded).
	MaxSamples int64 `json:"max_samples,omitempty"`
	// TimeoutMS bounds this request's wall time; 0 selects the server's
	// default, larger values are capped at its maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Convergence opts this request into trajectory recording: the
	// response (and the request's debug record) carries per-tuple
	// convergence trajectories for the first few answer tuples.
	Convergence bool `json:"convergence,omitempty"`
	// ConvergencePoints bounds each tuple's trajectory length; 0 selects
	// the estimator default, values above the service cap are clamped.
	ConvergencePoints int `json:"convergence_points,omitempty"`
}

// Service-side caps on opt-in convergence recording: trajectories ride
// in JSON responses and the debug ring, so their size is bounded here
// rather than by whatever the client asks for.
const (
	maxConvergencePoints = 512
	maxConvergenceTuples = 8
)

// Answer is one graded answer tuple.
type Answer struct {
	Tuple []string `json:"tuple"`
	Freq  float64  `json:"freq"`
}

// EstimateStats summarizes the work a request performed.
type EstimateStats struct {
	TraceID     string  `json:"trace_id"`
	Samples     int64   `json:"samples"`
	NumTuples   int     `json:"num_tuples"`
	GoodRatio   float64 `json:"good_ratio"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	PrepMS      float64 `json:"prep_ms"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// EstimateResponse is the body of a successful POST /v1/estimate.
type EstimateResponse struct {
	Scheme   string        `json:"scheme"`
	Answers  []Answer      `json:"answers"`
	Stats    EstimateStats `json:"stats"`
	Synopsis string        `json:"synopsis"` // "memo", "load" or "build"
	// Convergence holds per-tuple estimate trajectories when the request
	// set "convergence": true; absent otherwise.
	Convergence []cqa.TupleTrajectory `json:"convergence,omitempty"`
}

// SynopsisRequest is the body of POST /v1/synopsis.
type SynopsisRequest struct {
	Query     string `json:"query"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// SynopsisResponse summarizes a built synopsis set.
type SynopsisResponse struct {
	Answers         int     `json:"answers"`
	Balance         float64 `json:"balance"`
	IndicatedScheme string  `json:"indicated_scheme"`
	Source          string  `json:"source"` // "memo", "load" or "build"
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

// parseQuery parses and schema-validates a request's query text.
func parseQuery(text string, db *relation.Database) (*cq.Query, error) {
	q, err := cq.Parse(text, db.Dict)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(db.Schema); err != nil {
		return nil, err
	}
	return q, nil
}

// routes assembles the service mux. Go 1.22 method patterns give 405 for
// wrong methods for free.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.instrument("/v1/estimate", s.handleEstimate))
	mux.HandleFunc("POST /v1/synopsis", s.instrument("/v1/synopsis", s.handleSynopsis))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/requests/{id}/trace", s.handleDebugRequestTrace)
	mux.HandleFunc("GET /debug/requests/{id}/convergence", s.handleDebugRequestConvergence)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.refreshUptime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the response code for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the full request-scoped observability
// substrate: a trace ID (generated, or accepted from a well-formed
// inbound X-Request-ID) echoed as X-Trace-ID and carried on the context,
// a root span the admission path and handlers hang children off
// (queue.wait, synopsis, estimate), the request counter and windowed
// latency histogram, one structured access-log line, and a RequestRecord
// in the /debug/requests ring.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if !obs.IsValidTraceID(id) {
			id = obs.NewTraceID()
		}
		st := &reqState{rec: RequestRecord{TraceID: id, Endpoint: endpoint, Start: start}}
		ctx := obs.WithTraceID(r.Context(), id)
		ctx = context.WithValue(ctx, reqStateKey{}, st)
		ctx, span := obs.StartSpan(ctx, "server."+endpoint)
		st.span = span
		w.Header().Set("X-Trace-ID", id)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r.WithContext(ctx))
		span.End()
		elapsed := time.Since(start)

		st.rec.Status = rec.status
		st.rec.LatencyMS = ms(elapsed)
		st.rec.Stages = stagesMS(span.Stages())
		st.rec.trace = span.Data()
		s.reqlog.add(st.rec)

		code := fmt.Sprintf("%d", rec.status)
		s.reg.Counter("server_requests_total",
			obs.L("endpoint", endpoint), obs.L("code", code)).Inc()
		s.requestSeconds(endpoint).ObserveDuration(elapsed)
		s.log.Info("server: request",
			"trace_id", id,
			"endpoint", endpoint,
			"scheme", st.rec.Scheme,
			"code", rec.status,
			"queue_wait_ms", st.rec.QueueWaitMS,
			"elapsed", elapsed,
			"samples", st.rec.Samples,
			"good_ratio", st.rec.GoodRatio,
			"reason", st.rec.Reason)
	}
}

// decode reads and strictly parses a JSON body, bounding its size.
// A nil error means v is populated; otherwise the response is written.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		st := reqStateFrom(r.Context())
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, st, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		st.setReason("bad_request")
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// options assembles cqa.Options from a request, validating up front so
// malformed eps/delta are a 400 before any admission or sampling work.
func (req *EstimateRequest) options() (cqa.Options, error) {
	opts := cqa.DefaultOptions()
	if req.Eps != 0 {
		opts.Eps = req.Eps
	}
	if req.Delta != 0 {
		opts.Delta = req.Delta
	}
	if req.Seed != 0 {
		opts.Seed = req.Seed
	}
	opts.Budget.MaxSamples = req.MaxSamples
	if req.Convergence {
		pts := req.ConvergencePoints
		if pts > maxConvergencePoints {
			pts = maxConvergencePoints
		}
		opts.Convergence = cqa.ConvergenceOptions{
			Enabled:   true,
			MaxPoints: pts,
			MaxTuples: maxConvergenceTuples,
		}
	}
	if err := opts.Validate(); err != nil {
		return cqa.Options{}, err
	}
	return opts, nil
}

// writeRunError maps an estimation/build failure onto a status code and
// records the code on the request's debug record.
func writeRunError(w http.ResponseWriter, st *reqState, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, cqaerr.ErrInvalidOptions):
		status, code = http.StatusBadRequest, "invalid_options"
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, cqaerr.ErrCanceled):
		// The client went away; the status is moot but 499-style closure
		// needs a code, and 504 is the closest standard one.
		status, code = http.StatusGatewayTimeout, "canceled"
	case errors.Is(err, estimator.ErrBudget):
		status, code = http.StatusUnprocessableEntity, "budget_exhausted"
	}
	st.setReason(code)
	writeError(w, status, code, err.Error())
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	st := reqStateFrom(r.Context())
	var req EstimateRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, err := req.options()
	if err != nil {
		st.setReason("invalid_options")
		writeError(w, http.StatusBadRequest, "invalid_options", err.Error())
		return
	}
	var scheme cqa.Scheme
	auto := req.Scheme == "" || req.Scheme == "auto"
	if !auto {
		if scheme, err = cqa.ParseScheme(req.Scheme); err != nil {
			st.setReason("bad_scheme")
			writeError(w, http.StatusBadRequest, "bad_scheme", err.Error())
			return
		}
		st.setScheme(scheme.String())
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	_, prepSpan := obs.StartSpan(ctx, "synopsis")
	prepStart := time.Now()
	set, source, err := s.synopsisFor(ctx, req.Query)
	prepSpan.End()
	if err != nil {
		if errors.Is(err, cqaerr.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			writeRunError(w, st, err)
		} else {
			st.setReason("bad_query")
			writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		}
		return
	}
	prep := time.Since(prepStart)
	if auto {
		scheme = cqa.SelectScheme(set)
		st.setScheme(scheme.String())
	}

	// The estimate child carries the cqa.<Scheme> span tree: the run
	// attaches to the context's span via ApxAnswersFromSetTracedContext.
	ectx, espan := obs.StartSpan(ctx, "estimate")
	res, stats, err := cqa.ApxAnswersFromSetContext(ectx, set, scheme, opts)
	espan.End()
	st.setEstimate(stats.Samples, stats.GoodRatio)
	st.setConvergence(stats.Convergence)
	if err != nil {
		writeRunError(w, st, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Scheme:      scheme.String(),
		Answers:     renderAnswers(s.cfg.DB, res),
		Synopsis:    source,
		Convergence: stats.Convergence,
		Stats: EstimateStats{
			TraceID:     st.traceID(),
			Samples:     stats.Samples,
			NumTuples:   stats.NumTuples,
			GoodRatio:   stats.GoodRatio,
			QueueWaitMS: st.queueWaitMS(),
			PrepMS:      ms(prep),
			ElapsedMS:   ms(stats.Elapsed),
		},
	})
}

func (s *Server) handleSynopsis(w http.ResponseWriter, r *http.Request) {
	st := reqStateFrom(r.Context())
	var req SynopsisRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	_, prepSpan := obs.StartSpan(ctx, "synopsis")
	start := time.Now()
	set, source, err := s.synopsisFor(ctx, req.Query)
	prepSpan.End()
	if err != nil {
		if errors.Is(err, cqaerr.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			writeRunError(w, st, err)
		} else {
			st.setReason("bad_query")
			writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, SynopsisResponse{
		Answers:         set.OutputSize(),
		Balance:         set.Balance(),
		IndicatedScheme: cqa.SelectScheme(set).String(),
		Source:          source,
		ElapsedMS:       float64(time.Since(start).Microseconds()) / 1e3,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"inflight": s.inflight.Load(),
		"workers":  s.workers,
	})
}

// renderAnswers resolves interned values back to strings for the wire.
func renderAnswers(db *relation.Database, res []cqa.TupleFreq) []Answer {
	out := make([]Answer, len(res))
	for i, tf := range res {
		vals := make([]string, len(tf.Tuple))
		for j, v := range tf.Tuple {
			vals[j] = db.Dict.Render(v)
		}
		out[i] = Answer{Tuple: vals, Freq: tf.Freq}
	}
	return out
}
