package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"cqabench/internal/cq"
	"cqabench/internal/cqa"
	"cqabench/internal/cqaerr"
	"cqabench/internal/estimator"
	"cqabench/internal/obs"
	"cqabench/internal/relation"
	"cqabench/internal/scenario"
)

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	// Instance names the registered instance to estimate against. May be
	// omitted only when the choice is unambiguous: exactly one instance
	// is registered, or one is named "default".
	Instance string `json:"instance,omitempty"`
	// Query is the conjunctive query, in the library's text syntax.
	Query string `json:"query"`
	// Scheme names the approximation scheme (Natural, KL, KLM, Cover);
	// "" or "auto" selects it from the synopsis per the paper's
	// recommendation.
	Scheme string `json:"scheme,omitempty"`
	// Eps and Delta override the paper's defaults (0.1 / 0.25) when
	// non-zero; both must lie in (0, 1).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Seed overrides the reference MT19937-64 seed when non-zero, making
	// repeat requests deterministic per seed.
	Seed uint64 `json:"seed,omitempty"`
	// MaxSamples bounds the per-tuple sample count (0 = unbounded).
	MaxSamples int64 `json:"max_samples,omitempty"`
	// SamplingWorkers selects the intra-query sampling mode for this
	// request: 0 defers to the server's -sampling-workers default, 1
	// forces the sequential single-stream mode, n ≥ 2 fans each tuple's
	// draws over an n-worker substream pool, and -1 sizes that pool
	// automatically. Parallel-mode results are deterministic per seed
	// and identical for every pool size. Other negatives are a 400.
	SamplingWorkers int `json:"sampling_workers,omitempty"`
	// TimeoutMS bounds this request's wall time; 0 selects the server's
	// default, larger values are capped at its maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Convergence opts this request into trajectory recording: the
	// response (and the request's debug record) carries per-tuple
	// convergence trajectories for the first few answer tuples.
	Convergence bool `json:"convergence,omitempty"`
	// ConvergencePoints bounds each tuple's trajectory length; 0 selects
	// the estimator default, values above the service cap are clamped.
	ConvergencePoints int `json:"convergence_points,omitempty"`
}

// Service-side caps on opt-in convergence recording: trajectories ride
// in JSON responses and the debug ring, so their size is bounded here
// rather than by whatever the client asks for.
const (
	maxConvergencePoints = 512
	maxConvergenceTuples = 8
)

// Answer is one graded answer tuple.
type Answer struct {
	Tuple []string `json:"tuple"`
	Freq  float64  `json:"freq"`
}

// EstimateStats summarizes the work a request performed.
type EstimateStats struct {
	TraceID   string  `json:"trace_id"`
	Samples   int64   `json:"samples"`
	NumTuples int     `json:"num_tuples"`
	GoodRatio float64 `json:"good_ratio"`
	// SamplingWorkers is the effective intra-query pool size the run
	// used (1 = sequential mode); Chunks counts the substream chunks the
	// parallel path consumed (0 in sequential mode).
	SamplingWorkers int     `json:"sampling_workers"`
	Chunks          int64   `json:"chunks,omitempty"`
	QueueWaitMS     float64 `json:"queue_wait_ms"`
	PrepMS          float64 `json:"prep_ms"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// EstimateResponse is the body of a successful POST /v1/estimate.
type EstimateResponse struct {
	Instance string        `json:"instance"`
	Scheme   string        `json:"scheme"`
	Answers  []Answer      `json:"answers"`
	Stats    EstimateStats `json:"stats"`
	Synopsis string        `json:"synopsis"` // "lru", "load" or "build"
	// Coalesced marks a response served by an identical concurrent
	// request's computation (single-flight); absent on leader responses.
	Coalesced bool `json:"coalesced,omitempty"`
	// Convergence holds per-tuple estimate trajectories when the request
	// set "convergence": true; absent otherwise.
	Convergence []cqa.TupleTrajectory `json:"convergence,omitempty"`
}

// SynopsisRequest is the body of POST /v1/synopsis.
type SynopsisRequest struct {
	// Instance names the registered instance; same resolution rules as
	// EstimateRequest.Instance.
	Instance  string `json:"instance,omitempty"`
	Query     string `json:"query"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// SynopsisResponse summarizes a built synopsis set.
type SynopsisResponse struct {
	Instance        string  `json:"instance"`
	Answers         int     `json:"answers"`
	Balance         float64 `json:"balance"`
	IndicatedScheme string  `json:"indicated_scheme"`
	Source          string  `json:"source"` // "lru", "load" or "build"
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// InstanceSummary is one entry of GET /v1/instances (and the body of a
// successful POST /v1/instances).
type InstanceSummary struct {
	Name    string    `json:"name"`
	Source  string    `json:"source"`
	Created time.Time `json:"created"`
	// Facts is the instance's database size in facts.
	Facts int `json:"facts"`
	// ResidentSynopses / ResidentBytes report this instance's share of
	// the synopsis memory budget right now.
	ResidentSynopses int   `json:"resident_synopses"`
	ResidentBytes    int64 `json:"resident_bytes"`
	// Estimates counts completed estimator runs against this instance
	// (coalesced followers not included).
	Estimates int64 `json:"estimates"`
	// Spec echoes the build provenance for spec-built instances.
	Spec *scenario.InstanceSpec `json:"spec,omitempty"`
	// Weight is the instance's DRR scheduling weight; Quota its
	// admission limits (absent = unlimited); Generation the policy
	// version for PATCH if_generation optimistic concurrency.
	Weight     int64               `json:"weight"`
	Quota      *scenario.QuotaSpec `json:"quota,omitempty"`
	Generation int64               `json:"generation"`
}

// InstancePatch is the body of PATCH /v1/instances/{name}: present
// fields are updated, absent fields untouched. Quota replaces the
// whole quota block ({} clears it to unlimited).
type InstancePatch struct {
	Weight *int                `json:"weight,omitempty"`
	Quota  *scenario.QuotaSpec `json:"quota,omitempty"`
	// IfGeneration, when set, makes the update conditional on the
	// instance's current policy generation — a mismatch is a 409
	// (conflict), the read-modify-write guard for concurrent tuners.
	IfGeneration *int64 `json:"if_generation,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// parseQuery parses and schema-validates a request's query text.
func parseQuery(text string, db *relation.Database) (*cq.Query, error) {
	q, err := cq.Parse(text, db.Dict)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(db.Schema); err != nil {
		return nil, err
	}
	return q, nil
}

// routes assembles the service mux. Go 1.22 method patterns give 405 for
// wrong methods for free.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.instrument("/v1/estimate", s.handleEstimate))
	mux.HandleFunc("POST /v1/synopsis", s.instrument("/v1/synopsis", s.handleSynopsis))
	mux.HandleFunc("GET /v1/instances", s.instrument("/v1/instances", s.handleInstancesList))
	mux.HandleFunc("POST /v1/instances", s.instrument("/v1/instances", s.handleInstanceRegister))
	mux.HandleFunc("PATCH /v1/instances/{name}", s.instrument("/v1/instances/{name}", s.handleInstancePatch))
	mux.HandleFunc("DELETE /v1/instances/{name}", s.instrument("/v1/instances/{name}", s.handleInstanceDelete))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/requests/{id}/trace", s.handleDebugRequestTrace)
	mux.HandleFunc("GET /debug/requests/{id}/convergence", s.handleDebugRequestConvergence)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.refreshUptime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the response code for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the full request-scoped observability
// substrate: a trace ID (generated, or accepted from a well-formed
// inbound X-Request-ID) echoed as X-Trace-ID and carried on the context,
// a root span the admission path and handlers hang children off
// (queue.wait, synopsis, estimate), the request counter and windowed
// latency histogram — both labeled by the instance the request resolved
// to ("none" before resolution) — one structured access-log line, and a
// RequestRecord in the /debug/requests ring.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if !obs.IsValidTraceID(id) {
			id = obs.NewTraceID()
		}
		st := &reqState{rec: RequestRecord{TraceID: id, Endpoint: endpoint, Start: start}}
		ctx := obs.WithTraceID(r.Context(), id)
		ctx = context.WithValue(ctx, reqStateKey{}, st)
		ctx, span := obs.StartSpan(ctx, "server."+endpoint)
		st.span = span
		w.Header().Set("X-Trace-ID", id)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r.WithContext(ctx))
		span.End()
		elapsed := time.Since(start)

		st.rec.Status = rec.status
		st.rec.LatencyMS = ms(elapsed)
		st.rec.Stages = stagesMS(span.Stages())
		st.rec.trace = span.Data()
		s.reqlog.add(st.rec)

		instance := st.rec.Instance
		if instance == "" {
			instance = noInstance
		}
		code := fmt.Sprintf("%d", rec.status)
		s.reg.Counter("server_requests_total",
			obs.L("endpoint", endpoint), obs.L("instance", instance), obs.L("code", code)).Inc()
		s.requestSeconds(endpoint, instance).ObserveDuration(elapsed)
		s.log.Info("server: request",
			"trace_id", id,
			"endpoint", endpoint,
			"instance", instance,
			"scheme", st.rec.Scheme,
			"code", rec.status,
			"coalesced", st.rec.Coalesced,
			"queue_wait_ms", st.rec.QueueWaitMS,
			"elapsed", elapsed,
			"samples", st.rec.Samples,
			"good_ratio", st.rec.GoodRatio,
			"reason", st.rec.Reason)
	}
}

// decode reads and strictly parses a JSON body, bounding its size.
// A nil error means v is populated; otherwise the response is written.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		st := reqStateFrom(r.Context())
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, st, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		fail(w, st, http.StatusBadRequest, codeBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

// resolveInstance maps a request's instance name to the registered
// Instance, writing the 404/400 error response itself on failure.
func (s *Server) resolveInstance(w http.ResponseWriter, st *reqState, name string) (*Instance, bool) {
	in, err := s.instances.lookup(name)
	if err != nil {
		if errors.Is(err, ErrUnknownInstance) {
			// The requested name rides in the envelope but not on the
			// request record: metric labels stay bounded by real instances.
			st.setReason(codeUnknownInst)
			writeAPIError(w, http.StatusNotFound, APIError{
				Code: codeUnknownInst, Message: err.Error(), Instance: name,
			})
		} else {
			fail(w, st, http.StatusBadRequest, codeMissingInst, err.Error())
		}
		return nil, false
	}
	st.setInstance(in.Name)
	return in, true
}

// options assembles cqa.Options from a request, validating up front so
// malformed eps/delta are a 400 before any admission or sampling work.
// defaultSamplingWorkers is the server's -sampling-workers setting,
// applied when the request leaves sampling_workers at 0.
func (req *EstimateRequest) options(defaultSamplingWorkers int) (cqa.Options, error) {
	opts := cqa.DefaultOptions()
	if req.Eps != 0 {
		opts.Eps = req.Eps
	}
	if req.Delta != 0 {
		opts.Delta = req.Delta
	}
	if req.Seed != 0 {
		opts.Seed = req.Seed
	}
	opts.Budget.MaxSamples = req.MaxSamples
	opts.SamplingWorkers = defaultSamplingWorkers
	if req.SamplingWorkers != 0 {
		opts.SamplingWorkers = req.SamplingWorkers
	}
	if req.Convergence {
		pts := req.ConvergencePoints
		if pts > maxConvergencePoints {
			pts = maxConvergencePoints
		}
		opts.Convergence = cqa.ConvergenceOptions{
			Enabled:   true,
			MaxPoints: pts,
			MaxTuples: maxConvergenceTuples,
		}
	}
	if err := opts.Validate(); err != nil {
		return cqa.Options{}, err
	}
	return opts, nil
}

// optionsFingerprint canonicalizes the resolved options (plus the
// requested timeout) into the single-flight key component: two requests
// coalesce only when every estimation-relevant knob agrees.
func optionsFingerprint(opts cqa.Options, timeoutMS int64) string {
	// The sampling mode changes the draw schedule (and so the results),
	// so it is part of the key — but canonicalized through SamplingPool:
	// settings that resolve identically (0 and 1 are both sequential)
	// coalesce, while sequential and parallel runs never do. The pool
	// size is included even though parallel results are worker-invariant,
	// so a response's sampling_workers stat always matches its request.
	spw, spar := cqa.SamplingPool(opts.SamplingWorkers)
	return fmt.Sprintf("eps=%g:delta=%g:seed=%d:max=%d:conv=%t:pts=%d:timeout=%d:spw=%d:spar=%t",
		opts.Eps, opts.Delta, opts.Seed, opts.Budget.MaxSamples,
		opts.Convergence.Enabled, opts.Convergence.MaxPoints, timeoutMS, spw, spar)
}

// writeRunError maps an estimation/build failure onto a status code and
// records the code on the request's debug record.
func writeRunError(w http.ResponseWriter, st *reqState, err error) {
	status, code := http.StatusInternalServerError, codeInternal
	switch {
	case errors.Is(err, cqaerr.ErrInvalidOptions):
		status, code = http.StatusBadRequest, codeInvalidOpts
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, codeDeadline
	case errors.Is(err, cqaerr.ErrCanceled), errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style closure
		// needs a code, and 504 is the closest standard one.
		status, code = http.StatusGatewayTimeout, codeCanceled
	case errors.Is(err, estimator.ErrBudget):
		status, code = http.StatusUnprocessableEntity, codeBudgetExhausted
	}
	fail(w, st, status, code, err.Error())
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	st := reqStateFrom(r.Context())
	var req EstimateRequest
	if !s.decode(w, r, &req) {
		return
	}
	in, ok := s.resolveInstance(w, st, req.Instance)
	if !ok {
		return
	}
	opts, err := req.options(s.cfg.SamplingWorkers)
	if err != nil {
		fail(w, st, http.StatusBadRequest, codeInvalidOpts, err.Error())
		return
	}
	var scheme cqa.Scheme
	auto := req.Scheme == "" || req.Scheme == "auto"
	if !auto {
		if scheme, err = cqa.ParseScheme(req.Scheme); err != nil {
			fail(w, st, http.StatusBadRequest, codeBadScheme, err.Error())
			return
		}
		st.setScheme(scheme.String())
	}
	q, err := parseQuery(req.Query, in.db)
	if err != nil {
		fail(w, st, http.StatusBadRequest, codeBadQuery, err.Error())
		return
	}
	rendered := q.Render(in.db.Dict)

	// Quota gate, after validation (malformed requests don't burn
	// tokens) and before coalescing: every caller — leader or follower
	// — pays its own request token, and below, its own work charge, so
	// single-flight cannot be used to ride another tenant's admission.
	if d := s.sched.admitRequest(in.Name); d != nil {
		s.rejectQuota(w, st, in.Name, d)
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	// Coalesce identical in-flight computations: estimation is
	// deterministic per (instance, query, scheme, options), so concurrent
	// identical requests share one worker slot and one PRNG stream. The
	// scheme key is the *requested* scheme — "auto" coalesces with "auto"
	// (resolution happens once, in the leader) but never with an explicit
	// scheme, even one auto would resolve to.
	schemeKey := "auto"
	if !auto {
		schemeKey = scheme.String()
	}
	key := flightKey{
		instance: in.Name,
		query:    rendered,
		scheme:   schemeKey,
		options:  optionsFingerprint(opts, req.TimeoutMS),
	}
	res, shared := s.flights.do(ctx, key, func() *flightResult {
		return s.runEstimate(ctx, in, q, rendered, auto, scheme, opts)
	})
	if shared {
		s.reg.Counter("estimate_coalesced_total", obs.L("instance", in.Name)).Inc()
		st.setCoalesced()
	}
	// Post-charge the sampling work against THIS caller's instance
	// quota — leader and every coalesced follower alike. The flight key
	// pins the instance, so all callers charge the same tenant; what
	// matters is that N coalesced requests debit N times the cost, not
	// once, or a herd could launder unlimited work through one leader.
	if res.stats.Elapsed > 0 {
		s.sched.chargeWork(in.Name, workSeconds(res.stats.Elapsed, res.stats.SamplingWorkers))
	}
	if res.err != nil {
		switch res.stage {
		case flightStageAdmit:
			s.writeAdmitError(w, st, res.err)
		case flightStageSynopsis:
			if errors.Is(res.err, cqaerr.ErrCanceled) || errors.Is(res.err, context.Canceled) ||
				errors.Is(res.err, context.DeadlineExceeded) {
				writeRunError(w, st, res.err)
			} else {
				fail(w, st, http.StatusBadRequest, codeBadQuery, res.err.Error())
			}
		default:
			writeRunError(w, st, res.err)
		}
		return
	}
	st.setScheme(res.scheme.String())
	st.setEstimate(res.stats.Samples, res.stats.GoodRatio)
	st.setConvergence(res.stats.Convergence)
	writeJSON(w, http.StatusOK, EstimateResponse{
		Instance:    in.Name,
		Scheme:      res.scheme.String(),
		Answers:     renderAnswers(in.db, res.answers),
		Synopsis:    res.source,
		Coalesced:   shared,
		Convergence: res.stats.Convergence,
		Stats: EstimateStats{
			TraceID:         st.traceID(),
			Samples:         res.stats.Samples,
			NumTuples:       res.stats.NumTuples,
			GoodRatio:       res.stats.GoodRatio,
			SamplingWorkers: res.stats.SamplingWorkers,
			Chunks:          res.stats.Chunks,
			QueueWaitMS:     st.queueWaitMS(),
			PrepMS:          ms(res.prep),
			ElapsedMS:       ms(res.stats.Elapsed),
		},
	})
}

// runEstimate is the single-flight leader body: admission, synopsis
// residency, scheme resolution and the estimator run, all under the
// leader's context. Every outcome — including an admission rejection,
// which each coalesced caller would have hit identically — is returned
// as a flightResult for the group to fan out.
func (s *Server) runEstimate(ctx context.Context, in *Instance, q *cq.Query, rendered string, auto bool, scheme cqa.Scheme, opts cqa.Options) *flightResult {
	release, err := s.acquire(ctx, in.Name)
	if err != nil {
		return &flightResult{stage: flightStageAdmit, err: err}
	}
	defer release()
	if s.onEstimateStart != nil {
		s.onEstimateStart()
	}

	_, prepSpan := obs.StartSpan(ctx, "synopsis")
	prepStart := time.Now()
	set, source, err := s.synopsisFor(ctx, in, q, rendered)
	prepSpan.End()
	if err != nil {
		return &flightResult{stage: flightStageSynopsis, err: err}
	}
	prep := time.Since(prepStart)
	if auto {
		scheme = cqa.SelectScheme(set)
	}

	// The estimate child carries the cqa.<Scheme> span tree: the run
	// attaches to the context's span via ApxAnswersFromSetTracedContext.
	ectx, espan := obs.StartSpan(ctx, "estimate")
	s.reg.Counter("server_estimate_runs_total", obs.L("instance", in.Name)).Inc()
	res, stats, err := cqa.ApxAnswersFromSetContext(ectx, set, scheme, opts)
	espan.End()
	if stats.Chunks > 0 {
		s.estimatorChunks(in.Name).Add(stats.Chunks)
	}
	if err != nil {
		return &flightResult{stage: flightStageEstimate, scheme: scheme, stats: stats, err: err}
	}
	in.estimates.Add(1)
	return &flightResult{
		scheme:  scheme,
		answers: res,
		stats:   stats,
		source:  source,
		prep:    prep,
	}
}

func (s *Server) handleSynopsis(w http.ResponseWriter, r *http.Request) {
	st := reqStateFrom(r.Context())
	var req SynopsisRequest
	if !s.decode(w, r, &req) {
		return
	}
	in, ok := s.resolveInstance(w, st, req.Instance)
	if !ok {
		return
	}
	q, err := parseQuery(req.Query, in.db)
	if err != nil {
		fail(w, st, http.StatusBadRequest, codeBadQuery, err.Error())
		return
	}
	// Synopsis requests pay a request token (and honor an exhausted
	// work balance) but are not post-charged: the work bucket meters
	// sampling, and synopsis construction does none.
	if d := s.sched.admitRequest(in.Name); d != nil {
		s.rejectQuota(w, st, in.Name, d)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx, in.Name)
	if err != nil {
		s.writeAdmitError(w, st, err)
		return
	}
	defer release()

	_, prepSpan := obs.StartSpan(ctx, "synopsis")
	start := time.Now()
	set, source, err := s.synopsisFor(ctx, in, q, q.Render(in.db.Dict))
	prepSpan.End()
	if err != nil {
		if errors.Is(err, cqaerr.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			writeRunError(w, st, err)
		} else {
			fail(w, st, http.StatusBadRequest, codeBadQuery, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, SynopsisResponse{
		Instance:        in.Name,
		Answers:         set.OutputSize(),
		Balance:         set.Balance(),
		IndicatedScheme: cqa.SelectScheme(set).String(),
		Source:          source,
		ElapsedMS:       float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// summarize builds the wire form of one instance.
func (s *Server) summarize(in *Instance) InstanceSummary {
	entries, bytes := s.lru.residentFor(in.Name)
	weight, quota, gen := s.sched.policy(in.Name)
	return InstanceSummary{
		Name:             in.Name,
		Source:           in.Source,
		Created:          in.Created,
		Facts:            in.db.NumFacts(),
		ResidentSynopses: entries,
		ResidentBytes:    bytes,
		Estimates:        in.estimates.Load(),
		Spec:             in.spec,
		Weight:           weight,
		Quota:            quota,
		Generation:       gen,
	}
}

// handleInstancesList serves GET /v1/instances: every registered
// instance with its residency and usage counters, sorted by name.
func (s *Server) handleInstancesList(w http.ResponseWriter, r *http.Request) {
	ins := s.instances.list()
	out := make([]InstanceSummary, len(ins))
	for i, in := range ins {
		out[i] = s.summarize(in)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":     len(out),
		"instances": out,
	})
}

// handleInstanceRegister serves POST /v1/instances: the body is a
// scenario.InstanceSpec; the database is built (generated or loaded,
// optionally noised) and registered under the spec's name. The name is
// reserved before the build, so a concurrent duplicate registration
// gets an immediate 409 instead of racing a second build.
func (s *Server) handleInstanceRegister(w http.ResponseWriter, r *http.Request) {
	st := reqStateFrom(r.Context())
	var spec scenario.InstanceSpec
	if !s.decode(w, r, &spec) {
		return
	}
	st.setInstance(spec.Name)
	if err := spec.Validate(); err != nil {
		fail(w, st, http.StatusBadRequest, codeBadInstance, err.Error())
		return
	}
	if err := s.instances.reserve(spec.Name); err != nil {
		fail(w, st, http.StatusConflict, codeInstanceExists, err.Error())
		return
	}
	db, err := spec.Build()
	if err != nil {
		s.instances.release(spec.Name)
		fail(w, st, http.StatusBadRequest, codeBadInstance, err.Error())
		return
	}
	in := &Instance{
		Name:        spec.Name,
		Source:      "api",
		Created:     time.Now(),
		Fingerprint: spec.Fingerprint(),
		db:          db,
		spec:        &spec,
	}
	s.instances.commit(in)
	s.sched.registerTenant(spec.Name, spec.Weight, spec.Quota)
	s.instanceSeries(in)
	s.log.Info("server: instance registered",
		"instance", in.Name, "source", in.Source, "facts", db.NumFacts())
	writeJSON(w, http.StatusCreated, s.summarize(in))
}

// handleInstanceDelete serves DELETE /v1/instances/{name}: the instance
// is unregistered and its resident synopses leave the LRU immediately
// (its on-disk syncache entries stay — they are content-addressed and
// shared with identically-built instances).
func (s *Server) handleInstanceDelete(w http.ResponseWriter, r *http.Request) {
	st := reqStateFrom(r.Context())
	name := r.PathValue("name")
	st.setInstance(name)
	in, err := s.instances.remove(name)
	if err != nil {
		fail(w, st, http.StatusNotFound, codeUnknownInst, err.Error())
		return
	}
	s.lru.dropInstance(in.Name)
	s.sched.dropTenant(in.Name)
	s.log.Info("server: instance deleted", "instance", in.Name)
	writeJSON(w, http.StatusOK, map[string]any{
		"deleted":   in.Name,
		"estimates": in.estimates.Load(),
	})
}

// handleInstancePatch serves PATCH /v1/instances/{name}: runtime
// mutation of an instance's scheduling weight and quota. The update is
// atomic under the scheduler lock; an if_generation mismatch means a
// concurrent tuner won the race and yields 409 (conflict) so the
// caller can re-read and retry. Responds with the updated summary.
func (s *Server) handleInstancePatch(w http.ResponseWriter, r *http.Request) {
	st := reqStateFrom(r.Context())
	name := r.PathValue("name")
	var patch InstancePatch
	if !s.decode(w, r, &patch) {
		return
	}
	in, err := s.instances.lookup(name)
	if err != nil {
		st.setReason(codeUnknownInst)
		writeAPIError(w, http.StatusNotFound, APIError{
			Code: codeUnknownInst, Message: err.Error(), Instance: name,
		})
		return
	}
	st.setInstance(in.Name)
	if patch.Weight == nil && patch.Quota == nil {
		fail(w, st, http.StatusBadRequest, codeBadRequest,
			"empty patch: set weight and/or quota")
		return
	}
	if patch.Weight != nil {
		if err := scenario.ValidateWeight(*patch.Weight); err != nil {
			fail(w, st, http.StatusBadRequest, codeBadRequest, err.Error())
			return
		}
	}
	if patch.Quota != nil {
		if err := patch.Quota.Validate(); err != nil {
			fail(w, st, http.StatusBadRequest, codeBadRequest, err.Error())
			return
		}
	}
	if _, err := s.sched.patch(in.Name, patch.Weight, patch.Quota, patch.IfGeneration); err != nil {
		fail(w, st, http.StatusConflict, codeConflict, err.Error())
		return
	}
	s.log.Info("server: instance policy updated", "instance", in.Name)
	writeJSON(w, http.StatusOK, s.summarize(in))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":    state,
		"inflight":  s.sched.inflight(),
		"workers":   s.workers,
		"instances": len(s.instances.names()),
	})
}

// renderAnswers resolves interned values back to strings for the wire.
func renderAnswers(db *relation.Database, res []cqa.TupleFreq) []Answer {
	out := make([]Answer, len(res))
	for i, tf := range res {
		vals := make([]string, len(tf.Tuple))
		for j, v := range tf.Tuple {
			vals[j] = db.Dict.Render(v)
		}
		out[i] = Answer{Tuple: vals, Freq: tf.Freq}
	}
	return out
}
