package server

import "net/http"

// The structured error model: every non-2xx response from a /v1 or
// /debug endpoint carries an ErrorEnvelope whose "error" object has a
// stable machine-readable code from the catalog below, a human
// message, the instance involved (when one was resolved), whether the
// request is worth retrying, and — for rate-style rejections — a
// retry hint in milliseconds. The catalog is part of the API contract
// (documented in docs/SERVICE.md): codes never change meaning, new
// failure modes get new codes.

// The error code catalog. Grouped by the kind of failure.
const (
	// Request-shape errors (4xx, not retryable).
	codeBadRequest     = "bad_request"      // malformed or unparseable JSON body
	codeBadQuery       = "bad_query"        // query fails to parse or validate against the schema
	codeBadScheme      = "bad_scheme"       // unknown approximation scheme name
	codeInvalidOpts    = "invalid_options"  // eps/delta/sampling options out of range
	codeBodyTooLarge   = "body_too_large"   // request body exceeds the size cap
	codeMissingInst    = "missing_instance" // no instance named and the choice is ambiguous
	codeUnknownInst    = "unknown_instance" // named instance is not registered
	codeInstanceExists = "instance_exists"  // registration under a taken name
	codeBadInstance    = "bad_instance"     // instance spec invalid or build failed
	codeConflict       = "conflict"         // concurrent conflicting update (PATCH if_generation mismatch)
	codeNotFound       = "not_found"        // debug lookup of an unknown trace ID
	codeNoConvergence  = "no_convergence"   // request did not opt into convergence recording

	// Admission and quota rejections (retryable).
	codeQueueFull     = "queue_full"     // instance admission queue at capacity
	codeQuotaExceeded = "quota_exceeded" // instance over its request or work quota
	codeDraining      = "draining"       // server shutting down

	// Run outcomes.
	codeDeadline        = "deadline"         // request deadline expired (retryable with a longer timeout)
	codeCanceled        = "canceled"         // client went away mid-run
	codeBudgetExhausted = "budget_exhausted" // sampling budget hit before convergence
	codeInternal        = "internal"         // unexpected server-side failure
)

// retryableCodes marks the codes where the identical request can
// succeed later without modification: transient admission/quota
// pressure and deadline expiry.
var retryableCodes = map[string]bool{
	codeQueueFull:     true,
	codeQuotaExceeded: true,
	codeDraining:      true,
	codeDeadline:      true,
}

// APIError is the structured "error" object of every non-2xx response.
type APIError struct {
	// Code is a stable machine-readable identifier from the catalog.
	Code string `json:"code"`
	// Message is the human-readable detail; its text is not stable API.
	Message string `json:"message"`
	// Instance names the instance the request resolved to, when one
	// was involved in the failure.
	Instance string `json:"instance,omitempty"`
	// Retryable reports whether resending the identical request can
	// succeed (queue pressure, quota refill, shutdown of one replica).
	Retryable bool `json:"retryable"`
	// RetryAfterMS hints when a retryable request is worth retrying;
	// 0 means no estimate. Mirrors the Retry-After header where set.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the body of every non-2xx response.
//
// Deprecated fields: Code and Message mirror Error.Code and
// Error.Message for clients built against the pre-envelope flat body
// (`{"error": "<message>", "code": "<code>"}`; the old "error" string
// now lives at error.message). They will be dropped one release after
// this one — parse the "error" object.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
	// Deprecated: use Error.Code.
	Code string `json:"code,omitempty"`
	// Deprecated: use Error.Message.
	Message string `json:"message,omitempty"`
}

// writeAPIError writes the envelope, filling Retryable from the
// catalog when the caller left it unset.
func writeAPIError(w http.ResponseWriter, status int, e APIError) {
	if !e.Retryable {
		e.Retryable = retryableCodes[e.Code]
	}
	writeJSON(w, status, ErrorEnvelope{Error: e, Code: e.Code, Message: e.Message})
}

// writeError is the instance-less error write, for failures before any
// instance resolution (and the /debug handlers).
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeAPIError(w, status, APIError{Code: code, Message: msg})
}

// fail records the error code on the request's debug record (first
// code wins), attributes the resolved instance, and writes the
// envelope. The handler-side error path in one call.
func fail(w http.ResponseWriter, st *reqState, status int, code, msg string) {
	st.setReason(code)
	instance := ""
	if st != nil {
		instance = st.rec.Instance
	}
	writeAPIError(w, status, APIError{Code: code, Message: msg, Instance: instance})
}
