package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"cqabench/internal/cqa"
	"cqabench/internal/obs"
)

// N identical concurrent estimate requests must run the estimator
// exactly once: one leader takes the worker slot, the N-1 followers
// coalesce onto its flight (counted in estimate_coalesced_total) and
// all N responses carry the same answers and stats.
func TestEstimateSingleFlightCoalesces(t *testing.T) {
	const followers = 3
	db := smallDB(t)
	s, ts := newTestServer(t, Config{DB: db, Workers: 1})

	// Reconstruct the flight key of the request body below so the test
	// hook can hold the leader until every follower is provably waiting
	// on its flight — no sleeps, no races.
	reqBody := `{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM", "seed": 7}`
	q, err := parseQuery("Q(n) :- Employee(i, n, d)", db)
	if err != nil {
		t.Fatal(err)
	}
	opts := cqa.DefaultOptions()
	opts.Seed = 7
	key := flightKey{
		instance: "default",
		query:    q.Render(db.Dict),
		scheme:   "KLM",
		options:  optionsFingerprint(opts, 0),
	}
	s.onEstimateStart = func() {
		deadline := time.Now().Add(10 * time.Second)
		for s.flights.waitersFor(key) < followers {
			if time.Now().After(deadline) {
				t.Error("followers never queued on the leader's flight")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	responses := make([]EstimateResponse, followers+1)
	for i := range responses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, _ := post(t, ts.URL+"/v1/estimate", reqBody)
			if status != http.StatusOK {
				t.Errorf("request %d status = %d: %s", i, status, body)
				return
			}
			if err := json.Unmarshal([]byte(body), &responses[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	reg := s.Registry()
	if v := reg.Counter("server_estimate_runs_total", obs.L("instance", "default")).Value(); v != 1 {
		t.Fatalf("estimator ran %v times, want exactly 1", v)
	}
	if v := reg.Counter("estimate_coalesced_total", obs.L("instance", "default")).Value(); v != followers {
		t.Fatalf("estimate_coalesced_total = %v, want %d", v, followers)
	}
	leaders := 0
	for i, resp := range responses {
		if !resp.Coalesced {
			leaders++
		}
		if resp.Stats.Samples != responses[0].Stats.Samples ||
			len(resp.Answers) != len(responses[0].Answers) {
			t.Fatalf("response %d diverged: %+v vs %+v", i, resp.Stats, responses[0].Stats)
		}
		for j := range resp.Answers {
			if resp.Answers[j].Freq != responses[0].Answers[j].Freq {
				t.Fatalf("response %d answer %d: freq %v != %v",
					i, j, resp.Answers[j].Freq, responses[0].Answers[j].Freq)
			}
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
}

// Requests that differ in any key component — seed here — must NOT
// coalesce: each runs its own estimator.
func TestEstimateDifferentOptionsDoNotCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	var wg sync.WaitGroup
	for _, body := range []string{
		`{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM", "seed": 7}`,
		`{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM", "seed": 8}`,
	} {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			if status, resp, _ := post(t, ts.URL+"/v1/estimate", body); status != http.StatusOK {
				t.Errorf("status = %d: %s", status, resp)
			}
		}(body)
	}
	wg.Wait()
	reg := s.Registry()
	if v := reg.Counter("server_estimate_runs_total", obs.L("instance", "default")).Value(); v != 2 {
		t.Fatalf("estimator ran %v times, want 2", v)
	}
	if v := reg.Counter("estimate_coalesced_total", obs.L("instance", "default")).Value(); v != 0 {
		t.Fatalf("estimate_coalesced_total = %v, want 0", v)
	}
}

// A follower whose own context expires while the leader is still
// running detaches with its own error; the flight group unit handles
// this without HTTP.
func TestFlightGroupFollowerDetach(t *testing.T) {
	g := newFlightGroup()
	key := flightKey{instance: "a", query: "q"}
	leaderStarted := make(chan struct{})
	releaseLeader := make(chan struct{})
	leaderDone := make(chan *flightResult, 1)
	go func() {
		res, _ := g.do(context.Background(), key, func() *flightResult {
			close(leaderStarted)
			<-releaseLeader
			return &flightResult{source: "build"}
		})
		leaderDone <- res
	}()
	<-leaderStarted

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan *flightResult, 1)
	go func() {
		res, shared := g.do(ctx, key, func() *flightResult {
			t.Error("follower ran the function")
			return nil
		})
		if !shared {
			t.Error("follower not marked shared")
		}
		followerDone <- res
	}()
	// Wait until the follower is registered, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for g.waitersFor(key) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	res := <-followerDone
	if res.err == nil {
		t.Fatal("detached follower got no error")
	}
	if g.waitersFor(key) != 0 {
		t.Fatal("detached follower still counted as waiter")
	}

	close(releaseLeader)
	if res := <-leaderDone; res.err != nil || res.source != "build" {
		t.Fatalf("leader result = %+v", res)
	}
	// The completed flight must leave the map: a later identical call
	// runs fresh (coalescing is never a response cache).
	ran := false
	if _, shared := g.do(context.Background(), key, func() *flightResult {
		ran = true
		return &flightResult{}
	}); shared || !ran {
		t.Fatal("completed flight was reused as a cache")
	}
}
