package server

import (
	"testing"
	"time"

	"cqabench/internal/obs"
	"cqabench/internal/scenario"
)

// fakeClock installs a deterministic obs clock for bucket-refill tests
// and restores the real one on cleanup. Buckets capture their creation
// time through obs.Now, so install the clock before building tenants.
type fakeClock struct{ now time.Time }

func installFakeClock(t *testing.T) *fakeClock {
	t.Helper()
	c := &fakeClock{now: time.Unix(1_000_000, 0)}
	obs.SetNowFunc(func() time.Time { return c.now })
	t.Cleanup(func() { obs.SetNowFunc(nil) })
	return c
}

func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

// The request bucket refills at rate up to burst: burst admissions up
// front, then exactly rate admissions per second, never banking more
// than burst across idle periods.
func TestQuotaRequestBucketRefill(t *testing.T) {
	clock := installFakeClock(t)
	s := newScheduler(2, 4, nil, obs.NewRegistry())
	s.registerTenant("a", 1, &scenario.QuotaSpec{Rate: 1, Burst: 2})

	for i := 0; i < 2; i++ {
		if d := s.admitRequest("a"); d != nil {
			t.Fatalf("burst admission %d denied: %+v", i, d)
		}
	}
	d := s.admitRequest("a")
	if d == nil || d.reason != "requests" {
		t.Fatalf("over-burst admission = %+v, want requests denial", d)
	}
	if d.limit != 2 || d.remaining != 0 {
		t.Fatalf("denial limit/remaining = %g/%g, want 2/0", d.limit, d.remaining)
	}
	if d.retryAfter != time.Second {
		t.Fatalf("retryAfter = %v, want 1s at rate 1", d.retryAfter)
	}

	// One second refills exactly one token.
	clock.advance(time.Second)
	if d := s.admitRequest("a"); d != nil {
		t.Fatalf("post-refill admission denied: %+v", d)
	}
	if d := s.admitRequest("a"); d == nil {
		t.Fatal("second post-refill admission granted; refill banked too much")
	}

	// A long idle period caps at burst, not rate×idle.
	clock.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if d := s.admitRequest("a"); d != nil {
			t.Fatalf("post-idle admission %d denied: %+v", i, d)
		}
	}
	if d := s.admitRequest("a"); d == nil {
		t.Fatal("idle period banked more than burst")
	}
}

// Rate 0 with burst > 0 is a fixed pool: it never refills, and the
// denial reports the clamped "come back much later" horizon.
func TestQuotaZeroRateFixedPool(t *testing.T) {
	clock := installFakeClock(t)
	s := newScheduler(2, 4, nil, obs.NewRegistry())
	s.registerTenant("a", 1, &scenario.QuotaSpec{Burst: 2})

	for i := 0; i < 2; i++ {
		if d := s.admitRequest("a"); d != nil {
			t.Fatalf("pool admission %d denied: %+v", i, d)
		}
	}
	clock.advance(24 * time.Hour)
	d := s.admitRequest("a")
	if d == nil || d.reason != "requests" {
		t.Fatalf("exhausted pool admission = %+v, want requests denial", d)
	}
	if d.retryAfter != zeroRateRetry {
		t.Fatalf("zero-rate retryAfter = %v, want the %v clamp", d.retryAfter, zeroRateRetry)
	}
}

// The work bucket is post-charged: admission only requires a positive
// balance, the actual cost is debited afterwards and may overdraw the
// bucket, and new work waits until the balance refills past zero.
func TestQuotaWorkPostCharge(t *testing.T) {
	clock := installFakeClock(t)
	s := newScheduler(2, 4, nil, obs.NewRegistry())
	s.registerTenant("a", 1, &scenario.QuotaSpec{WorkRate: 1, WorkBurst: 1})

	if d := s.admitRequest("a"); d != nil {
		t.Fatalf("initial admission denied: %+v", d)
	}
	// The run turned out to cost 5 worker-seconds: overdraw to -4.
	s.chargeWork("a", 5)
	d := s.admitRequest("a")
	if d == nil || d.reason != "work" {
		t.Fatalf("overdrawn admission = %+v, want work denial", d)
	}
	if d.remaining != -4 {
		t.Fatalf("overdrawn remaining = %g, want -4", d.remaining)
	}
	// Refilling to exactly 0 is still not positive...
	clock.advance(4 * time.Second)
	if d := s.admitRequest("a"); d == nil || d.reason != "work" {
		t.Fatalf("zero-balance admission = %+v, want work denial", d)
	}
	// ...one more second is.
	clock.advance(time.Second)
	if d := s.admitRequest("a"); d != nil {
		t.Fatalf("refilled admission denied: %+v", d)
	}
}

// A backwards clock step (NTP, fake clocks) must not drain or refill.
func TestQuotaBackwardsClock(t *testing.T) {
	clock := installFakeClock(t)
	s := newScheduler(2, 4, nil, obs.NewRegistry())
	s.registerTenant("a", 1, &scenario.QuotaSpec{Rate: 1, Burst: 1})
	if d := s.admitRequest("a"); d != nil {
		t.Fatalf("initial admission denied: %+v", d)
	}
	clock.advance(-time.Hour)
	if d := s.admitRequest("a"); d == nil {
		t.Fatal("backwards clock minted tokens")
	}
	clock.advance(time.Hour + time.Second)
	if d := s.admitRequest("a"); d != nil {
		t.Fatalf("forward clock after step denied: %+v", d)
	}
}

// workSeconds is the cost model: wall time times the sampling pool,
// with the sequential modes (0/1) costing exactly wall time.
func TestQuotaWorkSecondsModel(t *testing.T) {
	if w := workSeconds(2*time.Second, 0); w != 2 {
		t.Fatalf("sequential(0) = %g, want 2", w)
	}
	if w := workSeconds(2*time.Second, 1); w != 2 {
		t.Fatalf("sequential(1) = %g, want 2", w)
	}
	if w := workSeconds(2*time.Second, 8); w != 16 {
		t.Fatalf("parallel(8) = %g, want 16", w)
	}
}
