package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"cqabench/internal/obs"
)

func get(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// Opting into convergence returns per-tuple trajectories in the response
// and keeps them retrievable from the debug ring; requests without the
// flag carry none.
func TestEstimateConvergenceOptIn(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	status, body, _ := post(t, ts.URL+"/v1/estimate",
		`{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM", "convergence": true}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp EstimateResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Convergence) == 0 {
		t.Fatal("convergence requested but response has no trajectories")
	}
	if len(resp.Convergence) > maxConvergenceTuples {
		t.Fatalf("%d trajectories exceed the service cap %d", len(resp.Convergence), maxConvergenceTuples)
	}
	for _, tr := range resp.Convergence {
		if len(tr.Points) == 0 {
			t.Fatalf("tuple %d: empty trajectory", tr.Tuple)
		}
		last := tr.Points[len(tr.Points)-1]
		if last.Progress != 1 {
			t.Fatalf("tuple %d: final point progress = %v, want 1", tr.Tuple, last.Progress)
		}
	}

	// The debug endpoint replays the same trajectories by trace ID.
	dstatus, dbody := get(t, ts.URL+"/debug/requests/"+resp.Stats.TraceID+"/convergence")
	if dstatus != http.StatusOK {
		t.Fatalf("debug convergence status = %d: %s", dstatus, dbody)
	}
	var dresp ConvergenceResponse
	if err := json.Unmarshal([]byte(dbody), &dresp); err != nil {
		t.Fatal(err)
	}
	if dresp.TraceID != resp.Stats.TraceID || dresp.Scheme != "KLM" {
		t.Fatalf("debug record mismatch: %+v", dresp)
	}
	if len(dresp.Convergence) != len(resp.Convergence) {
		t.Fatalf("debug holds %d trajectories, response had %d", len(dresp.Convergence), len(resp.Convergence))
	}

	// Without the opt-in the response is trajectory-free and the debug
	// endpoint distinguishes "recorded nothing" from "unknown request".
	_, body, _ = post(t, ts.URL+"/v1/estimate",
		`{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM"}`)
	var plain EstimateResponse
	if err := json.Unmarshal([]byte(body), &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Convergence != nil {
		t.Fatalf("unrequested convergence in response: %+v", plain.Convergence)
	}
	dstatus, dbody = get(t, ts.URL+"/debug/requests/"+plain.Stats.TraceID+"/convergence")
	if dstatus != http.StatusNotFound {
		t.Fatalf("no-convergence lookup = %d, want 404", dstatus)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal([]byte(dbody), &e); err != nil || e.Error.Code != "no_convergence" {
		t.Fatalf("no-convergence code = %q (%s)", e.Error.Code, dbody)
	}
	dstatus, dbody = get(t, ts.URL+"/debug/requests/tr_nonexistent/convergence")
	if dstatus != http.StatusNotFound {
		t.Fatalf("unknown-id lookup = %d, want 404", dstatus)
	}
	if err := json.Unmarshal([]byte(dbody), &e); err != nil || e.Error.Code != "not_found" {
		t.Fatalf("unknown-id code = %q (%s)", e.Error.Code, dbody)
	}
}

// convergence_points is clamped to the service cap, and negative values
// are rejected like any other invalid option.
func TestConvergencePointsBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 2})
	status, body, _ := post(t, ts.URL+"/v1/estimate",
		`{"query": "Q(n) :- Employee(i, n, d)", "scheme": "KLM", "convergence": true, "convergence_points": 1000000}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp EstimateResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	for _, tr := range resp.Convergence {
		if len(tr.Points) > maxConvergencePoints {
			t.Fatalf("tuple %d: %d points exceed the cap %d", tr.Tuple, len(tr.Points), maxConvergencePoints)
		}
	}
	status, body, _ = post(t, ts.URL+"/v1/estimate",
		`{"query": "Q(n) :- Employee(i, n, d)", "convergence": true, "convergence_points": -1}`)
	if status != http.StatusBadRequest {
		t.Fatalf("negative convergence_points = %d (%s), want 400", status, body)
	}
}

// /debug/pprof/ is absent by default and mounted with Config.EnablePprof.
func TestPprofGatedByConfig(t *testing.T) {
	_, off := newTestServer(t, Config{DB: smallDB(t), Workers: 1})
	if status, _ := get(t, off.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Fatalf("pprof without opt-in = %d, want 404", status)
	}
	_, on := newTestServer(t, Config{DB: smallDB(t), Workers: 1, EnablePprof: true})
	status, body := get(t, on.URL+"/debug/pprof/")
	if status != http.StatusOK || !bytes.Contains([]byte(body), []byte("goroutine")) {
		t.Fatalf("pprof index = %d:\n%s", status, body)
	}
	if status, _ := get(t, on.URL+"/debug/pprof/cmdline"); status != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", status)
	}
}

// Every scrape refreshes server_uptime_seconds, and server_build_info
// carries the manifest identity as labels with a constant value of 1.
func TestUptimeAndBuildInfoGauges(t *testing.T) {
	s, ts := newTestServer(t, Config{DB: smallDB(t), Workers: 1})
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{"server_uptime_seconds", "server_build_info", "go_version"} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Fatalf("metrics exposition missing %s:\n%s", want, body)
		}
	}
	first := s.Registry().Gauge("server_uptime_seconds").Value()
	if first < 0 {
		t.Fatalf("uptime = %v, want >= 0", first)
	}
	get(t, ts.URL+"/metrics.json")
	if second := s.Registry().Gauge("server_uptime_seconds").Value(); second < first {
		t.Fatalf("uptime went backwards: %v -> %v", first, second)
	}
	sha := s.manifest.GitSHA
	if sha == "" {
		sha = "unknown"
	}
	info := s.Registry().Gauge("server_build_info",
		obs.L("git_sha", sha), obs.L("go_version", s.manifest.GoVersion))
	if info.Value() != 1 {
		t.Fatalf("server_build_info = %v, want 1", info.Value())
	}
}
