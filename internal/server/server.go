// Package server exposes the approximation pipeline as a long-running
// HTTP service: POST /v1/estimate runs one ApxCQA[scheme] call against a
// database fixed at startup, POST /v1/synopsis inspects the preprocessing
// step, and /healthz and /metrics report liveness and the obs registry.
//
// The service is built around the context-first API: every request gets
// a deadline-bound context.Context that flows into the estimators, so a
// client disconnect or a request timeout aborts the sampling loops within
// about one 256-draw chunk. Concurrency is bounded by a worker pool with
// admission control — when Workers requests are running and QueueDepth
// more are waiting, further requests are refused immediately with 429
// rather than queueing without bound; during graceful shutdown, in-flight
// requests drain while new ones are refused with 503.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cqabench/internal/obs"
	"cqabench/internal/obs/manifest"
	"cqabench/internal/relation"
	"cqabench/internal/syncache"
	"cqabench/internal/synopsis"
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default; only DB is required.
type Config struct {
	// DB is the (possibly inconsistent) database instance the service
	// answers queries against. Required.
	DB *relation.Database

	// Workers bounds the number of concurrently running estimations.
	// <= 0 selects GOMAXPROCS.
	Workers int

	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot beyond the Workers already running. Requests arriving past
	// Workers+QueueDepth are refused with 429. <= 0 selects 2*Workers.
	QueueDepth int

	// DefaultTimeout is the per-request deadline applied when the client
	// does not send timeout_ms. <= 0 selects 30s.
	DefaultTimeout time.Duration

	// MaxTimeout caps client-requested timeouts. <= 0 selects 2m.
	MaxTimeout time.Duration

	// MaxBodyBytes caps request body sizes; larger bodies get 413.
	// <= 0 selects 1 MiB.
	MaxBodyBytes int64

	// Cache, when non-nil and enabled, persists built synopses through
	// the content-addressed syncache store in addition to the in-memory
	// memo. CacheKeyPrefix must then fingerprint the database instance
	// (the server cannot derive one itself); it is mixed into every key.
	Cache          *syncache.Cache
	CacheKeyPrefix string

	// Registry receives the service metrics; nil selects a fresh one.
	Registry *obs.Registry

	// Logger receives request and lifecycle logs; nil discards them.
	Logger *slog.Logger

	// RequestLogCap bounds the in-memory ring of recent request records
	// behind /debug/requests. <= 0 selects DefaultRequestLogCap (256).
	RequestLogCap int

	// SLOWindows are the rolling windows for the windowed latency
	// quantiles (server_request_seconds_window and
	// server_queue_wait_seconds_window). Empty selects ~1m and ~5m.
	SLOWindows []time.Duration

	// EnablePprof mounts the runtime profile handlers (/debug/pprof/...)
	// on the service mux. Off by default: profiles expose internals and
	// cost CPU, so exposing them is an explicit operator decision.
	EnablePprof bool

	// Manifest is the run provenance served by GET /version and embedded
	// in /metrics.json and per-request trace exports. Nil collects a
	// fresh one for this process.
	Manifest *manifest.RunManifest
}

// Server is the HTTP service. Create with New, start with Start, stop
// with Shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	log     *slog.Logger
	workers int
	depth   int

	// sem holds one token per running estimation; admitted counts
	// running + waiting requests against workers+depth.
	sem      chan struct{}
	admitted atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	// reqlog is the bounded ring behind /debug/requests; windows
	// parameterize the rolling latency quantiles; manifest backs
	// /version and the provenance envelopes; started anchors
	// server_uptime_seconds.
	reqlog   *requestLog
	windows  []time.Duration
	manifest *manifest.RunManifest
	started  time.Time

	httpSrv *http.Server
	ln      net.Listener

	// memo caches built synopses for the server's lifetime, keyed by the
	// query's canonical rendering (the DB is fixed, so the text is a
	// sufficient key). Builds happen outside the lock; a canceled build
	// is not stored, so the next request retries it.
	memoMu sync.Mutex
	memo   map[string]*synopsis.Set
}

// New validates cfg and assembles a Server without binding a socket.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.DefaultTimeout > cfg.MaxTimeout {
		return nil, fmt.Errorf("server: default timeout %v exceeds max timeout %v", cfg.DefaultTimeout, cfg.MaxTimeout)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	windows := cfg.SLOWindows
	if len(windows) == 0 {
		windows = obs.DefaultWindows()
	}
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("server: non-positive SLO window %v", w)
		}
	}
	m := cfg.Manifest
	if m == nil {
		collected := manifest.Collect("server", nil)
		m = &collected
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		log:      logger,
		workers:  workers,
		depth:    depth,
		sem:      make(chan struct{}, workers),
		memo:     make(map[string]*synopsis.Set),
		reqlog:   newRequestLog(cfg.RequestLogCap),
		windows:  windows,
		manifest: m,
		started:  time.Now(),
	}
	// Register the windowed latency series eagerly so /metrics exposes
	// them (at zero) from the first scrape, before any traffic.
	for _, ep := range []string{"/v1/estimate", "/v1/synopsis"} {
		s.requestSeconds(ep)
		s.queueWaitSeconds(ep)
	}
	// server_build_info is the Prometheus build-info idiom: a constant 1
	// whose labels carry the identity, so dashboards can join on it and
	// alert on version changes. server_uptime_seconds resets on restart.
	sha := m.GitSHA
	if sha == "" {
		sha = "unknown"
	}
	s.reg.Gauge("server_build_info",
		obs.L("git_sha", sha), obs.L("go_version", m.GoVersion)).Set(1)
	s.refreshUptime()
	s.httpSrv = &http.Server{
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// requestSeconds returns the windowed end-to-end latency histogram for
// an endpoint.
func (s *Server) requestSeconds(endpoint string) *obs.WindowedHistogram {
	return s.reg.WindowedHistogram("server_request_seconds", s.windows, obs.L("endpoint", endpoint))
}

// queueWaitSeconds returns the windowed admission-queue wait histogram
// for an endpoint.
func (s *Server) queueWaitSeconds(endpoint string) *obs.WindowedHistogram {
	return s.reg.WindowedHistogram("server_queue_wait_seconds", s.windows, obs.L("endpoint", endpoint))
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// refreshUptime recomputes server_uptime_seconds; the metrics handlers
// call it per scrape so the gauge is current without a ticker goroutine.
func (s *Server) refreshUptime() {
	s.reg.Gauge("server_uptime_seconds").Set(time.Since(s.started).Seconds())
}

// Start binds addr (host:port; port 0 picks a free one) and serves until
// Shutdown. It returns the bound address immediately; serve errors after
// startup are logged, not returned.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Error("server: serve failed", "err", err)
		}
	}()
	s.log.Info("server: listening", "addr", ln.Addr().String(),
		"workers", s.workers, "queue_depth", s.depth)
	return ln.Addr().String(), nil
}

// Shutdown drains the server: new requests are refused with 503 while
// in-flight ones run to completion (or until ctx expires, at which point
// their connections are closed).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.log.Info("server: draining", "inflight", s.inflight.Load())
	return s.httpSrv.Shutdown(ctx)
}

// Inflight reports the number of requests currently holding a worker
// slot. Exposed for tests and the drain log line.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// admit applies the admission policy: refuse while draining (503),
// refuse when workers+depth requests are already admitted (429), then
// wait for a worker slot, giving up if ctx expires first (504). On
// success the caller must call the returned release exactly once.
//
// The wait for a slot is attributed to a queue.wait child of the
// request's span and observed in server_queue_wait_seconds, so queue
// time is separable from estimation time both per request and in the
// aggregate quantiles.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (release func(), ok bool) {
	st := reqStateFrom(ctx)
	if s.draining.Load() {
		s.reject(w, st, http.StatusServiceUnavailable, "draining", "server is shutting down")
		return nil, false
	}
	if n := s.admitted.Add(1); n > int64(s.workers+s.depth) {
		s.admitted.Add(-1)
		s.reject(w, st, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("%d requests already admitted (workers=%d queue=%d)", n-1, s.workers, s.depth))
		return nil, false
	}
	s.gauges()
	qspan := obs.FromContext(ctx).StartChild("queue.wait")
	waitStart := time.Now()
	recordWait := func() {
		qspan.End()
		wait := time.Since(waitStart)
		st.setQueueWait(wait)
		endpoint := "unknown"
		if st != nil {
			endpoint = st.rec.Endpoint
		}
		s.queueWaitSeconds(endpoint).ObserveDuration(wait)
	}
	select {
	case s.sem <- struct{}{}:
		recordWait()
	case <-ctx.Done():
		recordWait()
		s.admitted.Add(-1)
		s.gauges()
		s.reject(w, st, http.StatusGatewayTimeout, "deadline", "request expired while queued")
		return nil, false
	}
	s.inflight.Add(1)
	s.gauges()
	return func() {
		<-s.sem
		s.inflight.Add(-1)
		s.admitted.Add(-1)
		s.gauges()
	}, true
}

// gauges refreshes the queue-depth and inflight gauges. The two loads
// race with concurrent admissions, which is fine for monitoring.
func (s *Server) gauges() {
	running := s.inflight.Load()
	waiting := s.admitted.Load() - running
	if waiting < 0 {
		waiting = 0
	}
	s.reg.Gauge("server_inflight").Set(float64(running))
	s.reg.Gauge("server_queue_depth").Set(float64(waiting))
}

// reject writes an admission failure, counts it, and records the reason
// on the request's debug record (st may be nil).
func (s *Server) reject(w http.ResponseWriter, st *reqState, status int, reason, msg string) {
	s.reg.Counter("server_rejected_total", obs.L("reason", reason)).Inc()
	st.setReason(reason)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, status, reason, msg)
}

// requestContext derives the per-request context: the client's
// timeout_ms when given (capped at MaxTimeout), DefaultTimeout
// otherwise, layered over r.Context() so client disconnects cancel too.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// synopsisFor parses the query text and returns its synopsis, memoized
// for the server's lifetime. source is "memo", "load" (syncache hit) or
// "build".
func (s *Server) synopsisFor(ctx context.Context, text string) (*synopsis.Set, string, error) {
	q, err := parseQuery(text, s.cfg.DB)
	if err != nil {
		return nil, "", err
	}
	key := q.Render(s.cfg.DB.Dict)
	s.memoMu.Lock()
	set, hit := s.memo[key]
	s.memoMu.Unlock()
	if hit {
		return set, "memo", nil
	}
	source := "build"
	if s.cfg.Cache != nil && s.cfg.Cache.Enabled() {
		var src syncache.Source
		set, src, err = s.cfg.Cache.Resolve(
			syncache.Key("serve", s.cfg.CacheKeyPrefix, key),
			func() (*synopsis.Set, error) { return synopsis.BuildContext(ctx, s.cfg.DB, q) },
		)
		if src == syncache.SourceLoad {
			source = "load"
		}
	} else {
		set, err = synopsis.BuildContext(ctx, s.cfg.DB, q)
	}
	if err != nil {
		return nil, "", err
	}
	s.memoMu.Lock()
	// A concurrent build of the same query may have won; keep the first
	// stored set so every later request shares one synopsis.
	if prev, ok := s.memo[key]; ok {
		set = prev
		source = "memo"
	} else {
		s.memo[key] = set
	}
	s.memoMu.Unlock()
	return set, source, nil
}
