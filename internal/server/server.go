// Package server exposes the approximation pipeline as a long-running
// multi-instance HTTP service. An instance registry maps names to
// (possibly inconsistent) database instances — populated at startup
// from Config.Instances (the `-instances` manifest) and at runtime via
// POST/GET/DELETE /v1/instances — and every estimation request
// addresses one instance: POST /v1/estimate runs one ApxCQA[scheme]
// call, POST /v1/synopsis inspects the preprocessing step, and
// /healthz, /version and /metrics report liveness, provenance and the
// obs registry.
//
// The service is built around the context-first API: every request gets
// a deadline-bound context.Context that flows into the estimators, so a
// client disconnect or a request timeout aborts the sampling loops
// within about one 256-draw chunk. Concurrency is bounded by a worker
// pool with per-instance admission control: each instance owns a
// bounded queue (Config.QueueDepth) and worker slots are granted by a
// weighted deficit-round-robin scheduler (see scheduler.go), so a hot
// instance cannot starve a light one. Instances may additionally carry
// token-bucket quotas on requests and sampling work plus a concurrency
// cap (see quota.go); requests over quota or over a full queue are
// refused immediately with 429 rather than queueing without bound, and
// during graceful shutdown, in-flight requests drain while new ones
// are refused with 503. Every rejection carries the structured error
// envelope of apierror.go.
//
// Two mechanisms keep the multi-instance service within its means.
// Resident synopses live under one LRU byte budget
// (Config.SynopsisMemBudget), each charged its canonical encoded
// length (syncache.EncodedSize); cold synopses are evicted and
// transparently reloaded from the on-disk syncache — or rebuilt — on
// their next request. And identical in-flight estimate requests are
// coalesced single-flight on (instance, rendered query, scheme,
// options fingerprint): a thundering herd shares one worker slot, one
// PRNG stream and one result, with followers counted in
// estimate_coalesced_total.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"cqabench/internal/cq"
	"cqabench/internal/cqa"
	"cqabench/internal/obs"
	"cqabench/internal/obs/manifest"
	"cqabench/internal/relation"
	"cqabench/internal/scenario"
	"cqabench/internal/syncache"
	"cqabench/internal/synopsis"
)

// InstanceConfig is one instance registered at server construction.
type InstanceConfig struct {
	// Name addresses the instance in requests; must satisfy
	// scenario.ValidInstanceName.
	Name string
	// DB is the instance's database. Required.
	DB *relation.Database
	// KeyPrefix fingerprints the instance contents for syncache keys
	// (the server cannot derive one itself); empty disables on-disk
	// synopsis persistence for this instance.
	KeyPrefix string
	// Source records how the instance arrived ("manifest", "flags",
	// ...); empty selects "config". Informational — it appears in
	// GET /v1/instances.
	Source string
	// Spec, when the instance was built from a scenario.InstanceSpec,
	// carries the build provenance into the instance listing.
	Spec *scenario.InstanceSpec
	// Weight is the instance's DRR scheduling weight (0 selects 1).
	Weight int
	// Quota bounds the instance's request rate, sampling work and
	// concurrency; nil defers to Config.DefaultQuota.
	Quota *scenario.QuotaSpec
}

// Config parameterizes a Server. The zero value of every field selects
// a sensible default; a server may start with no instances at all and
// acquire them through POST /v1/instances.
type Config struct {
	// DB, when set, is registered as the instance named "default" —
	// the single-instance convenience path. Instances and runtime
	// registration add more.
	DB *relation.Database

	// CacheKeyPrefix fingerprints DB for syncache keys (see
	// InstanceConfig.KeyPrefix); it applies to the "default" instance
	// only.
	CacheKeyPrefix string

	// Instances are registered, in order, at construction.
	Instances []InstanceConfig

	// SynopsisMemBudget bounds the total bytes of resident synopses
	// across all instances, measured as syncache.EncodedSize — the
	// canonical .syn byte length. When the budget is exceeded the
	// least-recently-used synopses are evicted and reloaded from the
	// Cache (or rebuilt) on their next request. <= 0 disables
	// eviction.
	SynopsisMemBudget int64

	// Workers bounds the number of concurrently running estimations.
	// <= 0 selects GOMAXPROCS.
	Workers int

	// QueueDepth bounds how many requests may wait for a worker slot
	// per instance. Requests arriving at an instance whose queue is
	// full are refused with 429 (queue_full). <= 0 selects 2*Workers.
	QueueDepth int

	// DefaultQuota, when non-nil, applies to every instance that does
	// not declare its own quota (manifest "quota" block or
	// InstanceConfig.Quota). Nil means no limits by default.
	DefaultQuota *scenario.QuotaSpec

	// SamplingWorkers is the default intra-query sampling mode applied
	// to estimate requests that do not set sampling_workers themselves
	// (cqa.Options.SamplingWorkers semantics: 0 or 1 sequential, n ≥ 2 a
	// substream pool of n workers, -1 auto-sized). Values below -1 are
	// rejected by New.
	SamplingWorkers int

	// DefaultTimeout is the per-request deadline applied when the client
	// does not send timeout_ms. <= 0 selects 30s.
	DefaultTimeout time.Duration

	// MaxTimeout caps client-requested timeouts. <= 0 selects 2m.
	MaxTimeout time.Duration

	// MaxBodyBytes caps request body sizes; larger bodies get 413.
	// <= 0 selects 1 MiB.
	MaxBodyBytes int64

	// Cache, when non-nil and enabled, persists built synopses through
	// the content-addressed syncache store in addition to the resident
	// LRU — it is also what evicted synopses reload from.
	Cache *syncache.Cache

	// Registry receives the service metrics; nil selects a fresh one.
	Registry *obs.Registry

	// Logger receives request and lifecycle logs; nil discards them.
	Logger *slog.Logger

	// RequestLogCap bounds the in-memory ring of recent request records
	// behind /debug/requests. <= 0 selects DefaultRequestLogCap (256).
	RequestLogCap int

	// SLOWindows are the rolling windows for the windowed latency
	// quantiles (server_request_seconds_window and
	// server_queue_wait_seconds_window). Empty selects ~1m and ~5m.
	SLOWindows []time.Duration

	// EnablePprof mounts the runtime profile handlers (/debug/pprof/...)
	// on the service mux. Off by default: profiles expose internals and
	// cost CPU, so exposing them is an explicit operator decision.
	EnablePprof bool

	// Manifest is the run provenance served by GET /version and embedded
	// in /metrics.json and per-request trace exports. Nil collects a
	// fresh one for this process.
	Manifest *manifest.RunManifest
}

// Server is the HTTP service. Create with New, start with Start, stop
// with Shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	log     *slog.Logger
	workers int
	depth   int

	// sched is the DRR fair scheduler: per-instance bounded queues,
	// weighted slot grants, token-bucket quotas and concurrency caps.
	sched    *scheduler
	draining atomic.Bool

	// instances is the name -> database registry; lru governs resident
	// synopsis memory across all instances; flights coalesces identical
	// in-flight estimates.
	instances *instanceRegistry
	lru       *synopsisLRU
	flights   *flightGroup

	// onEstimateStart, when non-nil, runs on the leader's goroutine
	// after its flight is registered and admitted, before the estimator
	// starts. Test-only hook for deterministic coalescing tests.
	onEstimateStart func()

	// reqlog is the bounded ring behind /debug/requests; windows
	// parameterize the rolling latency quantiles; manifest backs
	// /version and the provenance envelopes; started anchors
	// server_uptime_seconds.
	reqlog   *requestLog
	windows  []time.Duration
	manifest *manifest.RunManifest
	started  time.Time

	httpSrv *http.Server
	ln      net.Listener
}

// instrumentedEndpoints are the endpoints carrying the full
// per-request observability substrate (windowed latency series are
// registered eagerly per instance for the first two).
var estimationEndpoints = []string{"/v1/estimate", "/v1/synopsis"}

// New validates cfg and assembles a Server without binding a socket.
func New(cfg Config) (*Server, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.DefaultTimeout > cfg.MaxTimeout {
		return nil, fmt.Errorf("server: default timeout %v exceeds max timeout %v", cfg.DefaultTimeout, cfg.MaxTimeout)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.SamplingWorkers < -1 {
		return nil, fmt.Errorf("server: sampling workers %d (want -1 auto, 0/1 sequential, or a pool size ≥ 2)", cfg.SamplingWorkers)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	windows := cfg.SLOWindows
	if len(windows) == 0 {
		windows = obs.DefaultWindows()
	}
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("server: non-positive SLO window %v", w)
		}
	}
	m := cfg.Manifest
	if m == nil {
		collected := manifest.Collect("server", nil)
		m = &collected
	}
	if cfg.DefaultQuota != nil {
		if err := cfg.DefaultQuota.Validate(); err != nil {
			return nil, fmt.Errorf("server: default quota: %w", err)
		}
	}
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		log:       logger,
		workers:   workers,
		depth:     depth,
		sched:     newScheduler(workers, depth, cfg.DefaultQuota, reg),
		instances: newInstanceRegistry(reg),
		lru:       newSynopsisLRU(cfg.SynopsisMemBudget, reg),
		flights:   newFlightGroup(),
		reqlog:    newRequestLog(cfg.RequestLogCap),
		windows:   windows,
		manifest:  m,
		started:   time.Now(),
	}
	if cfg.DB != nil {
		if err := s.registerInstance(&Instance{
			Name:        "default",
			Source:      "config",
			Created:     time.Now(),
			Fingerprint: cfg.CacheKeyPrefix,
			db:          cfg.DB,
		}, 0, nil); err != nil {
			return nil, err
		}
	}
	for _, ic := range cfg.Instances {
		if ic.DB == nil {
			return nil, fmt.Errorf("server: instance %q has no database", ic.Name)
		}
		if err := scenario.ValidateWeight(ic.Weight); err != nil {
			return nil, fmt.Errorf("server: instance %q: %w", ic.Name, err)
		}
		if ic.Quota != nil {
			if err := ic.Quota.Validate(); err != nil {
				return nil, fmt.Errorf("server: instance %q: %w", ic.Name, err)
			}
		}
		source := ic.Source
		if source == "" {
			source = "config"
		}
		if err := s.registerInstance(&Instance{
			Name:        ic.Name,
			Source:      source,
			Created:     time.Now(),
			Fingerprint: ic.KeyPrefix,
			db:          ic.DB,
			spec:        ic.Spec,
		}, ic.Weight, ic.Quota); err != nil {
			return nil, err
		}
	}
	// Register the instance-less windowed latency series eagerly so
	// /metrics exposes them (at zero) from the first scrape; the
	// per-instance variants are registered as instances arrive.
	for _, ep := range estimationEndpoints {
		s.requestSeconds(ep, noInstance)
		s.queueWaitSeconds(ep, noInstance)
	}
	// server_build_info is the Prometheus build-info idiom: a constant 1
	// whose labels carry the identity, so dashboards can join on it and
	// alert on version changes. server_uptime_seconds resets on restart.
	sha := m.GitSHA
	if sha == "" {
		sha = "unknown"
	}
	s.reg.Gauge("server_build_info",
		obs.L("git_sha", sha), obs.L("go_version", m.GoVersion)).Set(1)
	// estimator_sampling_workers reports the server's default intra-query
	// pool size (1 = sequential mode); per-request overrides don't move
	// it, they show up in estimator_chunks_total instead.
	defaultPool, _ := cqa.SamplingPool(cfg.SamplingWorkers)
	s.reg.Gauge("estimator_sampling_workers").Set(float64(defaultPool))
	s.refreshUptime()
	s.httpSrv = &http.Server{
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// noInstance is the instance label of requests that never resolved an
// instance (rejected before routing, or unknown names).
const noInstance = "none"

// registerInstance adds in to the registry, installs its scheduling
// policy (weight 0 and quota nil select the defaults), and eagerly
// registers its per-instance windowed latency series.
func (s *Server) registerInstance(in *Instance, weight int, quota *scenario.QuotaSpec) error {
	if err := s.instances.add(in); err != nil {
		return err
	}
	s.sched.registerTenant(in.Name, weight, quota)
	s.instanceSeries(in)
	s.log.Info("server: instance registered",
		"instance", in.Name, "source", in.Source, "facts", in.db.NumFacts())
	return nil
}

// instanceSeries eagerly registers the per-instance windowed latency
// series so /metrics exposes them (at zero) from the moment the
// instance exists, not its first request.
func (s *Server) instanceSeries(in *Instance) {
	for _, ep := range estimationEndpoints {
		s.requestSeconds(ep, in.Name)
		s.queueWaitSeconds(ep, in.Name)
	}
	s.estimatorChunks(in.Name)
}

// estimatorChunks returns the per-instance counter of substream chunks
// the parallel sampling path consumed (registered eagerly at zero).
func (s *Server) estimatorChunks(instance string) *obs.Counter {
	return s.reg.Counter("estimator_chunks_total", obs.L("instance", instance))
}

// requestSeconds returns the windowed end-to-end latency histogram for
// an (endpoint, instance) pair.
func (s *Server) requestSeconds(endpoint, instance string) *obs.WindowedHistogram {
	return s.reg.WindowedHistogram("server_request_seconds", s.windows,
		obs.L("endpoint", endpoint), obs.L("instance", instance))
}

// queueWaitSeconds returns the windowed admission-queue wait histogram
// for an (endpoint, instance) pair.
func (s *Server) queueWaitSeconds(endpoint, instance string) *obs.WindowedHistogram {
	return s.reg.WindowedHistogram("server_queue_wait_seconds", s.windows,
		obs.L("endpoint", endpoint), obs.L("instance", instance))
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Instances returns the registered instances, sorted by name.
func (s *Server) Instances() []*Instance { return s.instances.list() }

// ResidentSynopsisBytes reports the bytes currently charged against the
// synopsis memory budget. Exposed for tests and capacity checks.
func (s *Server) ResidentSynopsisBytes() int64 { return s.lru.residentBytes() }

// refreshUptime recomputes server_uptime_seconds; the metrics handlers
// call it per scrape so the gauge is current without a ticker goroutine.
func (s *Server) refreshUptime() {
	s.reg.Gauge("server_uptime_seconds").Set(time.Since(s.started).Seconds())
}

// Start binds addr (host:port; port 0 picks a free one) and serves until
// Shutdown. It returns the bound address immediately; serve errors after
// startup are logged, not returned.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Error("server: serve failed", "err", err)
		}
	}()
	s.log.Info("server: listening", "addr", ln.Addr().String(),
		"workers", s.workers, "queue_depth", s.depth,
		"instances", s.instances.names())
	return ln.Addr().String(), nil
}

// Shutdown drains the server: new requests are refused with 503 while
// in-flight ones run to completion (or until ctx expires, at which point
// their connections are closed).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.log.Info("server: draining", "inflight", s.sched.inflight())
	return s.httpSrv.Shutdown(ctx)
}

// Inflight reports the number of requests currently holding a worker
// slot. Exposed for tests and the drain log line.
func (s *Server) Inflight() int64 { return s.sched.inflight() }

// Admission errors, produced by acquire and mapped onto HTTP statuses
// by writeAdmitError. Sentinels so single-flight followers can share
// the leader's admission outcome.
var (
	errDraining  = errors.New("server is shutting down")
	errQueueFull = errors.New("admission queue full")
)

// acquire applies the admission policy for instance: refuse while
// draining (503), refuse when the instance's queue is full (429), then
// wait for the DRR scheduler to grant a worker slot, giving up if ctx
// expires first (504). On nil error the caller must call release
// exactly once.
//
// The wait for a slot is attributed to a queue.wait child of the
// request's span and observed in server_queue_wait_seconds, so queue
// time is separable from estimation time both per request and in the
// aggregate quantiles; the scheduling decision (queued or not, queue
// position, weight, deficit) lands on the request's debug record.
func (s *Server) acquire(ctx context.Context, instance string) (release func(), err error) {
	st := reqStateFrom(ctx)
	if s.draining.Load() {
		return nil, errDraining
	}
	qspan := obs.FromContext(ctx).StartChild("queue.wait")
	waitStart := time.Now()
	release, out, err := s.sched.acquire(ctx, instance)
	qspan.End()
	wait := time.Since(waitStart)
	st.setQueueWait(wait)
	st.setSched(SchedDecision{
		Queued:      out.queued,
		QueuedAhead: out.queuedAhead,
		Weight:      out.weight,
		Deficit:     out.deficit,
	})
	if !errors.Is(err, errQueueFull) {
		// Queue-full rejections never waited; don't pollute the wait SLO.
		endpoint := "unknown"
		if st != nil {
			endpoint = st.rec.Endpoint
		}
		name := instance
		if name == "" {
			name = noInstance
		}
		s.queueWaitSeconds(endpoint, name).ObserveDuration(wait)
	}
	if err != nil {
		return nil, err
	}
	return release, nil
}

// writeAdmitError maps an acquire failure onto the admission error
// model (503 draining, 429 queue_full, 504 deadline), counts it, and
// records the reason on the request's debug record (st may be nil).
func (s *Server) writeAdmitError(w http.ResponseWriter, st *reqState, err error) {
	status, reason := http.StatusGatewayTimeout, codeDeadline
	switch {
	case errors.Is(err, errDraining):
		status, reason = http.StatusServiceUnavailable, codeDraining
	case errors.Is(err, errQueueFull):
		status, reason = http.StatusTooManyRequests, codeQueueFull
	}
	s.reject(w, st, status, reason, err.Error())
}

// reject writes an admission failure, counts it, and records the reason
// on the request's debug record (st may be nil).
func (s *Server) reject(w http.ResponseWriter, st *reqState, status int, reason, msg string) {
	s.reg.Counter("server_rejected_total", obs.L("reason", reason)).Inc()
	var retryAfterMS int64
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
		retryAfterMS = 1000
	}
	st.setReason(reason)
	instance := ""
	if st != nil {
		instance = st.rec.Instance
	}
	writeAPIError(w, status, APIError{
		Code:         reason,
		Message:      msg,
		Instance:     instance,
		RetryAfterMS: retryAfterMS,
	})
}

// requestContext derives the per-request context: the client's
// timeout_ms when given (capped at MaxTimeout), DefaultTimeout
// otherwise, layered over r.Context() so client disconnects cancel too.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// synopsisFor returns the synopsis of the already-parsed query q
// (canonically rendered as key) against instance in. source is "lru"
// (resident), "load" (reloaded from syncache) or "build" (computed
// now). The result is made resident in the LRU, which may evict colder
// synopses to stay under the memory budget.
func (s *Server) synopsisFor(ctx context.Context, in *Instance, q *cq.Query, key string) (*synopsis.Set, string, error) {
	lk := lruKey{instance: in.Name, query: key}
	if set, ok := s.lru.get(lk); ok {
		return set, "lru", nil
	}
	source := "build"
	var set *synopsis.Set
	var err error
	if s.cfg.Cache != nil && s.cfg.Cache.Enabled() && in.Fingerprint != "" {
		var src syncache.Source
		set, src, err = s.cfg.Cache.Resolve(
			syncache.Key("serve", in.Fingerprint, key),
			func() (*synopsis.Set, error) { return synopsis.BuildContext(ctx, in.db, q) },
		)
		if src == syncache.SourceLoad {
			source = "load"
		}
	} else {
		set, err = synopsis.BuildContext(ctx, in.db, q)
	}
	if err != nil {
		return nil, "", err
	}
	// A concurrent build of the same key may have won the LRU slot; put
	// returns the first stored set so every request shares one synopsis.
	set = s.lru.put(lk, set, int64(syncache.EncodedSize(set)))
	return set, source, nil
}
