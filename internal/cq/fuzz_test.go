package cq

import (
	"testing"

	"cqabench/internal/relation"
)

// FuzzParse exercises the query parser with arbitrary input: it must never
// panic, and anything it accepts must render and re-parse to the same
// rendering (idempotence of the concrete syntax).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"Q(x, y) :- R(x, 'a', y), S(y, 42)",
		"Q() :- R(_, _, x)",
		"Q(x) :- R(x, -5, \"two words\")",
		"Q(x) :- R(x).",
		"Q(",
		"Q() :- ",
		"Q(x) :- R(x, 'unterminated",
		"Q(z) :- R(x)",
		"Q\x00() :- R(x)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d := relation.NewDict()
		q, err := Parse(input, d)
		if err != nil {
			return
		}
		rendered := q.Render(d)
		q2, err := Parse(rendered, d)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", input, rendered, err)
		}
		if got := q2.Render(d); got != rendered {
			t.Fatalf("rendering not idempotent: %q vs %q", got, rendered)
		}
	})
}
