package cq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"cqabench/internal/relation"
)

// Parse reads a conjunctive query in the syntax
//
//	Q(x, y) :- R(x, 'a', y), S(y, 42)
//
// Identifiers are variables; single- or double-quoted tokens are string
// constants; bare integers are integer constants; `_` is a fresh anonymous
// variable per occurrence. Constants are interned into dict. The head
// predicate name is ignored (any identifier is accepted).
func Parse(input string, dict *relation.Dict) (*Query, error) {
	p := &parser{src: input, dict: dict, vars: map[string]int{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("cq: parse %q: %w", input, err)
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(input string, dict *relation.Dict) *Query {
	q, err := Parse(input, dict)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src  string
	pos  int
	dict *relation.Dict
	vars map[string]int
	q    Query
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.ident(); err != nil { // head predicate
		return nil, err
	}
	headVars, err := p.headArgs()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":-"); err != nil {
		return nil, err
	}
	for {
		atom, err := p.atom()
		if err != nil {
			return nil, err
		}
		p.q.Atoms = append(p.q.Atoms, atom)
		p.skipSpace()
		if p.eat(",") {
			continue
		}
		break
	}
	p.skipSpace()
	p.eat(".")
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input at offset %d", p.pos)
	}
	for _, name := range headVars {
		id, ok := p.vars[name]
		if !ok {
			return nil, fmt.Errorf("answer variable %s not in body", name)
		}
		p.q.Out = append(p.q.Out, id)
	}
	p.q.NumVars = len(p.q.VarNames)
	return &p.q, nil
}

func (p *parser) headArgs() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var names []string
	p.skipSpace()
	if p.eat(")") {
		return nil, nil
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		names = append(names, name)
		p.skipSpace()
		if p.eat(",") {
			continue
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return names, nil
	}
}

func (p *parser) atom() (Atom, error) {
	rel, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	if err := p.expect("("); err != nil {
		return Atom{}, err
	}
	var args []Term
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		p.skipSpace()
		if p.eat(",") {
			continue
		}
		if err := p.expect(")"); err != nil {
			return Atom{}, err
		}
		return Atom{Rel: rel, Args: args}, nil
	}
}

func (p *parser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Term{}, fmt.Errorf("unexpected end of input")
	}
	c := p.src[p.pos]
	switch {
	case c == '\'' || c == '"':
		s, err := p.quoted(c)
		if err != nil {
			return Term{}, err
		}
		return C(p.dict.String(s)), nil
	case c == '-' || (c >= '0' && c <= '9'):
		start := p.pos
		if c == '-' {
			p.pos++
		}
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("bad integer at %d: %w", start, err)
		}
		return C(p.dict.Int(n)), nil
	case c == '_' && !p.identContinues(p.pos+1):
		// A bare underscore is a fresh anonymous variable per occurrence;
		// identifiers merely starting with '_' (such as the rendering of
		// an anonymous variable, "_3") fall through to the named case.
		p.pos++
		id := len(p.q.VarNames)
		p.q.VarNames = append(p.q.VarNames, fmt.Sprintf("_%d", id))
		return V(id), nil
	default:
		name, err := p.ident()
		if err != nil {
			return Term{}, err
		}
		id, ok := p.vars[name]
		if !ok {
			id = len(p.q.VarNames)
			p.vars[name] = id
			p.q.VarNames = append(p.q.VarNames, name)
		}
		return V(id), nil
	}
}

func (p *parser) quoted(q byte) (string, error) {
	p.pos++ // opening quote
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated string at %d", start-1)
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || r == '_' || (p.pos > start && (unicode.IsDigit(r))) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("expected identifier at offset %d", start)
	}
	return p.src[start:p.pos], nil
}

// identContinues reports whether position i holds a character that would
// extend an identifier.
func (p *parser) identContinues(i int) bool {
	if i >= len(p.src) {
		return false
	}
	r := rune(p.src[i])
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) eat(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.eat(tok) {
		return fmt.Errorf("expected %q at offset %d", tok, p.pos)
	}
	return nil
}
