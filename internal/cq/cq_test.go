package cq

import (
	"strings"
	"testing"

	"cqabench/internal/relation"
)

func testSchema() *relation.Schema {
	return relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"a", "b", "c"}, KeyLen: 1},
		{Name: "S", Attrs: []string{"x", "y"}, KeyLen: 1},
	}, nil)
}

func TestParseBasic(t *testing.T) {
	d := relation.NewDict()
	q, err := Parse("Q(x, y) :- R(x, 'a', y), S(y, 42)", d)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms = %d", len(q.Atoms))
	}
	if len(q.Out) != 2 || q.IsBoolean() {
		t.Fatalf("out = %v", q.Out)
	}
	if q.NumVars != 2 {
		t.Fatalf("NumVars = %d", q.NumVars)
	}
	if err := q.Validate(testSchema()); err != nil {
		t.Fatal(err)
	}
	a := q.Atoms[0]
	if a.Rel != "R" || !a.Args[0].IsVar || a.Args[1].IsVar || a.Args[1].Const != d.MustOf("a") {
		t.Fatalf("atom 0 = %+v", a)
	}
	if q.Atoms[1].Args[1].Const != d.MustOf(42) {
		t.Fatal("integer constant wrong")
	}
}

func TestParseBoolean(t *testing.T) {
	d := relation.NewDict()
	q := MustParse("Q() :- S(x, x)", d)
	if !q.IsBoolean() {
		t.Fatal("expected Boolean query")
	}
	if q.NumJoins() != 1 {
		t.Fatalf("NumJoins = %d", q.NumJoins())
	}
}

func TestParseAnonymousVars(t *testing.T) {
	d := relation.NewDict()
	q := MustParse("Q() :- R(_, _, x), S(x, _)", d)
	if q.NumVars != 4 {
		t.Fatalf("NumVars = %d, want 4 (three anon + x)", q.NumVars)
	}
	if q.NumJoins() != 1 {
		t.Fatalf("NumJoins = %d", q.NumJoins())
	}
	if err := q.Validate(testSchema()); err != nil {
		t.Fatal(err)
	}
}

func TestParseNegativeInt(t *testing.T) {
	d := relation.NewDict()
	q := MustParse("Q() :- S(x, -5)", d)
	if q.Atoms[0].Args[1].Const != d.Int(-5) {
		t.Fatal("negative constant wrong")
	}
}

func TestParseTrailingDot(t *testing.T) {
	d := relation.NewDict()
	if _, err := Parse("Q(x) :- S(x, y).", d); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	d := relation.NewDict()
	for _, bad := range []string{
		"",
		"Q(x)",
		"Q(x) :- ",
		"Q(x) :- R(x",
		"Q(z) :- S(x, y)",     // head var not in body
		"Q(x) :- S(x, 'oops)", // unterminated string
		"Q(x) :- S(x, y) extra",
	} {
		if _, err := Parse(bad, d); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	s := testSchema()
	d := relation.NewDict()
	q := MustParse("Q(x) :- T(x)", d)
	if err := q.Validate(s); err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("want unknown relation error, got %v", err)
	}
	q2 := MustParse("Q(x) :- S(x)", d)
	if err := q2.Validate(s); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("want arity error, got %v", err)
	}
	q3 := &Query{Atoms: []Atom{{Rel: "S", Args: []Term{V(0), V(5)}}}, NumVars: 2}
	if err := q3.Validate(s); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
	q4 := &Query{Atoms: []Atom{{Rel: "S", Args: []Term{V(0), V(0)}}}, NumVars: 1, Out: []int{0, 0}}
	if err := q4.Validate(s); err == nil {
		t.Fatal("repeated answer variable accepted")
	}
	q5 := &Query{}
	if err := q5.Validate(s); err == nil {
		t.Fatal("empty query accepted")
	}
	q6 := &Query{Atoms: []Atom{{Rel: "S", Args: []Term{V(0), V(0)}}}, NumVars: 2}
	if err := q6.Validate(s); err == nil {
		t.Fatal("unused declared variable accepted")
	}
}

func TestStaticFeatures(t *testing.T) {
	d := relation.NewDict()
	// x occurs 3 times (2 joins), y twice (1 join); 2 constants.
	q := MustParse("Q(x) :- R(x, x, y), S(x, y), S(1, 'a')", d)
	if got := q.NumJoins(); got != 3 {
		t.Fatalf("NumJoins = %d, want 3", got)
	}
	if got := q.NumConstants(); got != 2 {
		t.Fatalf("NumConstants = %d, want 2", got)
	}
	if got := q.TotalAttrs(); got != 7 {
		t.Fatalf("TotalAttrs = %d, want 7", got)
	}
	if got := q.ProjectionRatio(); got != 0.5 {
		t.Fatalf("ProjectionRatio = %v, want 0.5", got)
	}
	if !q.HasSelfJoin() {
		t.Fatal("self-join not detected")
	}
	q2 := MustParse("Q() :- R(x, y, z), S(u, v)", d)
	if q2.HasSelfJoin() {
		t.Fatal("false self-join")
	}
	if q2.NumJoins() != 0 {
		t.Fatal("join-free query reports joins")
	}
}

func TestWithOutputAndBoolean(t *testing.T) {
	d := relation.NewDict()
	q := MustParse("Q(x, y) :- S(x, y)", d)
	b := q.Boolean()
	if !b.IsBoolean() {
		t.Fatal("Boolean() not Boolean")
	}
	if len(q.Out) != 2 {
		t.Fatal("Boolean() mutated original")
	}
	w := q.WithOutput([]int{1})
	if len(w.Out) != 1 || w.Out[0] != 1 {
		t.Fatalf("WithOutput = %v", w.Out)
	}
}

func TestVars(t *testing.T) {
	d := relation.NewDict()
	q := MustParse("Q() :- R(x, y, x), S(z, z)", d)
	vs := q.Vars()
	if len(vs) != 3 {
		t.Fatalf("Vars = %v", vs)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	d := relation.NewDict()
	src := "Q(x, y) :- R(x, 'a', y), S(y, 42)"
	q := MustParse(src, d)
	rendered := q.Render(d)
	q2, err := Parse(rendered, d)
	if err != nil {
		t.Fatalf("re-parse %q: %v", rendered, err)
	}
	if q2.Render(d) != rendered {
		t.Fatalf("render not stable: %q vs %q", q2.Render(d), rendered)
	}
}

func TestRenderWithoutDict(t *testing.T) {
	q := &Query{
		Atoms:    []Atom{{Rel: "S", Args: []Term{V(0), C(7)}}},
		Out:      []int{0},
		NumVars:  1,
		VarNames: []string{"x"},
	}
	if got := q.String(); got != "Q(x) :- S(x, 7)" {
		t.Fatalf("String = %q", got)
	}
}
