// Package cq defines conjunctive queries (CQs) over relational schemas:
//
//	Q(x̄) :- R1(z̄1) ∧ ... ∧ Rn(z̄n)
//
// with answer variables x̄ and existentially quantified body variables,
// plus a small text syntax, validation against a schema, and the static
// query features the paper's generators tune (number of joins, number of
// constant occurrences, fraction of projected attributes).
package cq

import (
	"fmt"
	"strings"

	"cqabench/internal/relation"
)

// Term is either a variable (identified by a small integer) or a constant.
type Term struct {
	IsVar bool
	Var   int
	Const relation.Value
}

// V returns a variable term.
func V(id int) Term { return Term{IsVar: true, Var: id} }

// C returns a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// Atom is a relational atom R(t1,...,tn).
type Atom struct {
	Rel  string
	Args []Term
}

// Query is a conjunctive query. Out lists the answer variables in output
// order; all other variables are existentially quantified. VarNames is
// optional display metadata (parallel to variable ids).
type Query struct {
	Atoms    []Atom
	Out      []int
	NumVars  int
	VarNames []string
}

// IsBoolean reports whether the query has no answer variables.
func (q *Query) IsBoolean() bool { return len(q.Out) == 0 }

// Validate checks the query against a schema: every atom's relation must
// exist with matching arity, variable ids must be dense in [0, NumVars),
// and every answer variable must occur in the body.
func (q *Query) Validate(s *relation.Schema) error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query has no atoms")
	}
	occurs := make([]bool, q.NumVars)
	for ai, a := range q.Atoms {
		def := s.Rel(a.Rel)
		if def == nil {
			return fmt.Errorf("cq: atom %d: unknown relation %q", ai, a.Rel)
		}
		if len(a.Args) != def.Arity() {
			return fmt.Errorf("cq: atom %d: %s expects arity %d, got %d", ai, a.Rel, def.Arity(), len(a.Args))
		}
		for _, t := range a.Args {
			if t.IsVar {
				if t.Var < 0 || t.Var >= q.NumVars {
					return fmt.Errorf("cq: atom %d: variable id %d out of range [0,%d)", ai, t.Var, q.NumVars)
				}
				occurs[t.Var] = true
			}
		}
	}
	for v, ok := range occurs {
		if !ok {
			return fmt.Errorf("cq: variable %s does not occur in the body", q.varName(v))
		}
	}
	seen := make(map[int]bool, len(q.Out))
	for _, v := range q.Out {
		if v < 0 || v >= q.NumVars {
			return fmt.Errorf("cq: answer variable id %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("cq: answer variable %s repeated", q.varName(v))
		}
		seen[v] = true
	}
	return nil
}

func (q *Query) varName(v int) string {
	if v >= 0 && v < len(q.VarNames) && q.VarNames[v] != "" {
		return q.VarNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

// NumJoins counts the query's join conditions: a variable occurring k > 1
// times across the body contributes k-1 joins. This matches the SQG's j
// parameter (each generated join condition shares one variable between two
// attribute occurrences).
func (q *Query) NumJoins() int {
	occ := make([]int, q.NumVars)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar {
				occ[t.Var]++
			}
		}
	}
	joins := 0
	for _, k := range occ {
		if k > 1 {
			joins += k - 1
		}
	}
	return joins
}

// NumConstants counts constant occurrences in the body (the SQG's c
// parameter).
func (q *Query) NumConstants() int {
	n := 0
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if !t.IsVar {
				n++
			}
		}
	}
	return n
}

// TotalAttrs returns the total number of attribute occurrences in the body.
func (q *Query) TotalAttrs() int {
	n := 0
	for _, a := range q.Atoms {
		n += len(a.Args)
	}
	return n
}

// ProjectionRatio returns |Out| over the number of distinct variables: the
// fraction of the query's variables that are projected (the SQG's p
// parameter applies to attributes; on generated queries each attribute
// holds a distinct variable, so the two coincide).
func (q *Query) ProjectionRatio() float64 {
	if q.NumVars == 0 {
		return 0
	}
	return float64(len(q.Out)) / float64(q.NumVars)
}

// WithOutput returns a copy of q whose answer variables are vars (which
// must occur in the body). The dynamic query generator uses it to explore
// projections of a fixed body.
func (q *Query) WithOutput(vars []int) *Query {
	nq := &Query{
		Atoms:    q.Atoms,
		Out:      append([]int(nil), vars...),
		NumVars:  q.NumVars,
		VarNames: q.VarNames,
	}
	return nq
}

// Boolean returns the Boolean version of q: all variables existentially
// quantified. This is the paper's Q_p[0].
func (q *Query) Boolean() *Query { return q.WithOutput(nil) }

// String renders the query in the package's text syntax.
func (q *Query) String() string { return q.Render(nil) }

// Render renders the query, using dict to display constants when non-nil.
func (q *Query) Render(dict *relation.Dict) string {
	var b strings.Builder
	b.WriteString("Q(")
	for i, v := range q.Out {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(q.varName(v))
	}
	b.WriteString(") :- ")
	for ai, a := range q.Atoms {
		if ai > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Rel)
		b.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			if t.IsVar {
				b.WriteString(q.varName(t.Var))
			} else if dict != nil {
				b.WriteString(quoteConst(dict.Render(t.Const)))
			} else if t.Const >= 0 {
				fmt.Fprintf(&b, "%d", int64(t.Const))
			} else {
				fmt.Fprintf(&b, "'#%d'", -int64(t.Const))
			}
		}
		b.WriteByte(')')
	}
	return b.String()
}

func quoteConst(s string) string {
	for _, r := range s {
		if r < '0' || r > '9' {
			return "'" + s + "'"
		}
	}
	if s == "" {
		return "''"
	}
	return s
}

// Vars returns the sorted list of distinct variables occurring in the body.
func (q *Query) Vars() []int {
	occ := make([]bool, q.NumVars)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar {
				occ[t.Var] = true
			}
		}
	}
	var out []int
	for v, ok := range occ {
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// HasSelfJoin reports whether some relation name occurs in two atoms.
// Self-join-free CQs are the well-behaved fragment in the CQA literature;
// the generators expose this as a filter.
func (q *Query) HasSelfJoin() bool {
	seen := make(map[string]bool, len(q.Atoms))
	for _, a := range q.Atoms {
		if seen[a.Rel] {
			return true
		}
		seen[a.Rel] = true
	}
	return false
}
