// Package qgen implements the paper's two query generators:
//
//   - SQG, the static query generator (Appendix D): tunes the syntactic
//     parameters of a CQ — number of joins, number of constant
//     occurrences, fraction of projected attributes — by drawing join
//     conditions from the schema's foreign-key graph and constants from
//     per-attribute pools.
//   - DQG, the dynamic query generator (Section 6.1): tunes the
//     database-dependent balance parameter by searching over projections
//     of a fixed query body.
package qgen

import (
	"fmt"
	"sort"

	"cqabench/internal/cq"
	"cqabench/internal/engine"
	"cqabench/internal/mt"
	"cqabench/internal/relation"
)

// ConstPool maps attributes (relation, column) to the constants that may
// appear there: the paper's function f. BuildConstPool derives it from a
// database, mapping each attribute to the constants occurring in it.
type ConstPool map[AttrRef][]relation.Value

// AttrRef names one attribute of one relation, 0-based.
type AttrRef struct {
	Rel string
	Col int
}

// BuildConstPool collects, for every attribute, up to maxPerAttr distinct
// constants occurring in the database at that attribute (the paper maps
// R[i] to the set of constants occurring in D_H at R[i]).
func BuildConstPool(db *relation.Database, maxPerAttr int) ConstPool {
	if maxPerAttr <= 0 {
		maxPerAttr = 64
	}
	pool := make(ConstPool)
	for ri := range db.Schema.Rels {
		def := &db.Schema.Rels[ri]
		for col := 0; col < def.Arity(); col++ {
			seen := make(map[relation.Value]bool)
			var vals []relation.Value
			for _, t := range db.Tables[ri].Tuples {
				v := t[col]
				if !seen[v] {
					seen[v] = true
					vals = append(vals, v)
					if len(vals) >= maxPerAttr {
						break
					}
				}
			}
			if len(vals) > 0 {
				pool[AttrRef{def.Name, col}] = vals
			}
		}
	}
	return pool
}

// SQGConfig parameterizes the static query generator.
type SQGConfig struct {
	// Joins is j: the number of join conditions.
	Joins int
	// Constants is c: the number of constant occurrences.
	Constants int
	// Projection is p: the fraction of the atoms' attributes projected.
	Projection float64
	// Seed fixes the random stream.
	Seed uint64
	// MaxAttempts bounds the retries when randomly drawn conditions
	// conflict (default 100).
	MaxAttempts int
}

// SQG generates one CQ over the schema with the requested static
// parameters, following Appendix D: join conditions are drawn from the
// FK-derived joinable attribute pairs, constant conditions from the pool,
// and the conditions determine the smallest atom set realizing them (one
// atom per relation, so generated queries are self-join-free, matching the
// well-behaved CQA fragment).
func SQG(schema *relation.Schema, pool ConstPool, cfg SQGConfig) (*cq.Query, error) {
	if cfg.Joins < 0 || cfg.Constants < 0 {
		return nil, fmt.Errorf("qgen: negative join or constant count")
	}
	if cfg.Projection < 0 || cfg.Projection > 1 {
		return nil, fmt.Errorf("qgen: projection must be in [0, 1], got %v", cfg.Projection)
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 100
	}
	joinable := schema.JoinablePairs()
	if cfg.Joins > 0 && len(joinable) == 0 {
		return nil, fmt.Errorf("qgen: schema has no joinable attribute pairs")
	}
	src := mt.New(cfg.Seed)

	for attempt := 0; attempt < attempts; attempt++ {
		q, ok := trySQG(schema, pool, cfg, joinable, src)
		if ok {
			if err := q.Validate(schema); err != nil {
				return nil, fmt.Errorf("qgen: generated invalid query: %w", err)
			}
			return q, nil
		}
	}
	return nil, fmt.Errorf("qgen: could not realize j=%d c=%d after %d attempts", cfg.Joins, cfg.Constants, attempts)
}

// builder holds a query under construction: one atom per relation, each
// position initially a fresh variable.
type builder struct {
	schema *relation.Schema
	// atomOf maps relation name to index in atoms, -1 if absent.
	atoms []cq.Atom
	rels  map[string]int
	nVars int
}

func (b *builder) atomFor(rel string) int {
	if i, ok := b.rels[rel]; ok {
		return i
	}
	def := b.schema.Rel(rel)
	args := make([]cq.Term, def.Arity())
	for i := range args {
		args[i] = cq.V(b.nVars)
		b.nVars++
	}
	b.atoms = append(b.atoms, cq.Atom{Rel: rel, Args: args})
	b.rels[rel] = len(b.atoms) - 1
	return len(b.atoms) - 1
}

func trySQG(schema *relation.Schema, pool ConstPool, cfg SQGConfig, joinable []relation.JoinablePair, src *mt.Source) (*cq.Query, bool) {
	b := &builder{schema: schema, rels: map[string]int{}}

	// Join conditions: unify the variables at the two attributes.
	for j := 0; j < cfg.Joins; j++ {
		jp := joinable[src.Intn(len(joinable))]
		ai := b.atomFor(jp.RelA)
		bi := b.atomFor(jp.RelB)
		ta := b.atoms[ai].Args[jp.ColA]
		tb := b.atoms[bi].Args[jp.ColB]
		if !ta.IsVar || !tb.IsVar {
			return nil, false // position already holds a constant
		}
		if ta.Var == tb.Var {
			return nil, false // join already present: would not add a join
		}
		// Replace every occurrence of tb's variable with ta's.
		for x := range b.atoms {
			for y := range b.atoms[x].Args {
				if t := b.atoms[x].Args[y]; t.IsVar && t.Var == tb.Var {
					b.atoms[x].Args[y] = ta
				}
			}
		}
	}

	// Constant conditions: fix random attributes to pool constants.
	poolKeys := make([]AttrRef, 0, len(pool))
	for k := range pool {
		poolKeys = append(poolKeys, k)
	}
	sort.Slice(poolKeys, func(i, j int) bool {
		if poolKeys[i].Rel != poolKeys[j].Rel {
			return poolKeys[i].Rel < poolKeys[j].Rel
		}
		return poolKeys[i].Col < poolKeys[j].Col
	})
	if cfg.Constants > 0 && len(poolKeys) == 0 {
		return nil, false
	}
	for c := 0; c < cfg.Constants; c++ {
		// Prefer attributes of relations already in the query so constants
		// constrain the joined atoms (matching the paper's generated
		// workloads, where the constants select within the join).
		var candidates []AttrRef
		for _, k := range poolKeys {
			if _, ok := b.rels[k.Rel]; ok {
				candidates = append(candidates, k)
			}
		}
		if len(candidates) == 0 {
			candidates = poolKeys
		}
		ar := candidates[src.Intn(len(candidates))]
		ai := b.atomFor(ar.Rel)
		t := b.atoms[ai].Args[ar.Col]
		if !t.IsVar {
			return nil, false // already a constant
		}
		// The variable must not be shared (it would kill a join).
		occurrences := 0
		for x := range b.atoms {
			for _, u := range b.atoms[x].Args {
				if u.IsVar && u.Var == t.Var {
					occurrences++
				}
			}
		}
		if occurrences > 1 {
			return nil, false
		}
		vals := pool[ar]
		b.atoms[ai].Args[ar.Col] = cq.C(vals[src.Intn(len(vals))])
	}

	// Renumber variables densely and name them.
	remap := map[int]int{}
	var names []string
	for x := range b.atoms {
		for y, t := range b.atoms[x].Args {
			if !t.IsVar {
				continue
			}
			id, ok := remap[t.Var]
			if !ok {
				id = len(remap)
				remap[t.Var] = id
				names = append(names, fmt.Sprintf("x%d", id))
			}
			b.atoms[x].Args[y] = cq.V(id)
		}
	}

	// Projection: choose ⌈p·|T|⌉ of the variable positions.
	var varPositions []int // variable ids, with duplicates per position
	for x := range b.atoms {
		for _, t := range b.atoms[x].Args {
			if t.IsVar {
				varPositions = append(varPositions, t.Var)
			}
		}
	}
	nProj := int(cfg.Projection*float64(len(varPositions)) + 0.999999)
	if nProj > len(varPositions) {
		nProj = len(varPositions)
	}
	src.Shuffle(len(varPositions), func(i, j int) {
		varPositions[i], varPositions[j] = varPositions[j], varPositions[i]
	})
	outSet := map[int]bool{}
	for _, v := range varPositions[:nProj] {
		outSet[v] = true
	}
	var out []int
	for v := range outSet {
		out = append(out, v)
	}
	sort.Ints(out)

	q := &cq.Query{
		Atoms:    b.atoms,
		Out:      out,
		NumVars:  len(remap),
		VarNames: names,
	}
	return q, true
}

// SQGNonEmpty repeatedly calls SQG with successive seeds until it produces
// a query whose Boolean version holds over db (the paper keeps "the CQs
// whose evaluation over D_H is non-empty"). tries bounds the attempts.
func SQGNonEmpty(db *relation.Database, pool ConstPool, cfg SQGConfig, tries int) (*cq.Query, error) {
	if tries <= 0 {
		tries = 50
	}
	ev := engine.NewEvaluator(db)
	var lastErr error
	for i := 0; i < tries; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1000003
		q, err := SQG(db.Schema, pool, c)
		if err != nil {
			lastErr = err
			continue
		}
		ok, err := ev.HasAnswer(q.Boolean(), nil)
		if err != nil {
			lastErr = err
			continue
		}
		if ok {
			return q, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("all generated queries were empty over the database")
	}
	return nil, fmt.Errorf("qgen: no non-empty query in %d tries: %w", tries, lastErr)
}
