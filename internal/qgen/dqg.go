package qgen

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"cqabench/internal/cq"
	"cqabench/internal/engine"
	"cqabench/internal/mt"
	"cqabench/internal/relation"
)

// DQGConfig parameterizes the dynamic query generator. The paper bounds
// the pool search by wall-clock hours (the t parameter of Section 6.1);
// Iterations bounds it by candidate projections, which is deterministic,
// and TimeBudget optionally adds the paper's wall-clock bound — whichever
// ends first stops the search.
type DQGConfig struct {
	Iterations int
	Seed       uint64
	// TimeBudget, when positive, stops the pool search after this much
	// wall-clock time even if Iterations remain.
	TimeBudget time.Duration
}

// DQGResult pairs a generated query with the balance it achieves.
type DQGResult struct {
	Query   *cq.Query
	Balance float64
	Target  float64
}

// DQG generates, for each target balance, the projection of q (same body,
// different answer variables) whose balance w.r.t. db is closest to the
// target, by sampling random projections (Section 6.1).
//
// The search evaluates the query body exactly once: balance is
// |syn_{Σ,Q}(D)| / |∪H_i|, and for a fixed body only the numerator — the
// number of distinct projections of the consistent homomorphisms — depends
// on the choice of answer variables. The paper's 12-hour-per-query pool
// search reduces to a grouping pass per candidate.
func DQG(db *relation.Database, q *cq.Query, targets []float64, cfg DQGConfig) ([]DQGResult, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("qgen: DQG needs at least one target balance")
	}
	for _, b := range targets {
		if b < 0 || b > 1 {
			return nil, fmt.Errorf("qgen: target balance %v outside [0, 1]", b)
		}
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 200
	}

	// Evaluate the body once: keep the variable assignment of every
	// consistent homomorphism and count distinct images.
	bi := relation.BuildBlocks(db)
	ev := engine.NewEvaluator(db)
	body := q.Boolean() // all variables free for projection
	var assigns [][]relation.Value
	images := make(map[string]bool)
	err := ev.EnumerateHomomorphisms(body, func(h *engine.Homomorphism) error {
		if !bi.SatisfiesKeys(h.Image) {
			return nil
		}
		assigns = append(assigns, append([]relation.Value(nil), h.Assign...))
		images[factsKey(h.Image)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(images) == 0 {
		return nil, fmt.Errorf("qgen: query has no consistent homomorphisms over the database")
	}
	homSize := float64(len(images))

	balanceOf := func(vars []int) float64 {
		if len(vars) == 0 {
			return 1 / homSize
		}
		distinct := make(map[string]bool, len(assigns))
		var b strings.Builder
		for _, a := range assigns {
			b.Reset()
			for _, v := range vars {
				fmt.Fprintf(&b, "%d|", int64(a[v]))
			}
			distinct[b.String()] = true
		}
		return float64(len(distinct)) / homSize
	}

	src := mt.New(cfg.Seed)
	vars := body.Vars()
	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = time.Now().Add(cfg.TimeBudget)
	}

	type cand struct {
		vars    []int
		balance float64
	}
	// Seed the pool with the extremes: Boolean (minimal balance) and the
	// full projection (maximal balance).
	pool := []cand{
		{nil, balanceOf(nil)},
		{append([]int(nil), vars...), balanceOf(vars)},
	}
	seen := map[string]bool{varsKey(nil): true, varsKey(vars): true}
	for i := 0; i < iters; i++ {
		if !deadline.IsZero() && i%16 == 0 && time.Now().After(deadline) {
			break
		}
		var subset []int
		for _, v := range vars {
			if src.Intn(2) == 0 {
				subset = append(subset, v)
			}
		}
		sort.Ints(subset)
		k := varsKey(subset)
		if seen[k] {
			continue
		}
		seen[k] = true
		pool = append(pool, cand{subset, balanceOf(subset)})
	}

	out := make([]DQGResult, len(targets))
	for i, target := range targets {
		best := 0
		for j := 1; j < len(pool); j++ {
			if math.Abs(pool[j].balance-target) < math.Abs(pool[best].balance-target) {
				best = j
			}
		}
		out[i] = DQGResult{
			Query:   q.WithOutput(pool[best].vars),
			Balance: pool[best].balance,
			Target:  target,
		}
	}
	return out, nil
}

func varsKey(vars []int) string {
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

func factsKey(facts []relation.FactRef) string {
	var b strings.Builder
	for _, f := range facts {
		fmt.Fprintf(&b, "%d:%d,", f.Rel, f.Row)
	}
	return b.String()
}
