package qgen

import (
	"math"
	"testing"

	"cqabench/internal/cq"
	"cqabench/internal/engine"
	"cqabench/internal/relation"
	"cqabench/internal/synopsis"
	"cqabench/internal/tpch"
)

func tpchDB(t *testing.T) *relation.Database {
	t.Helper()
	return tpch.MustGenerate(tpch.Config{ScaleFactor: 0.0003, Seed: 1})
}

func TestBuildConstPool(t *testing.T) {
	db := tpchDB(t)
	pool := BuildConstPool(db, 16)
	if len(pool) == 0 {
		t.Fatal("empty pool")
	}
	vals, ok := pool[AttrRef{"region", 1}]
	if !ok || len(vals) != 5 {
		t.Fatalf("region names pool = %v", vals)
	}
	for _, vs := range pool {
		if len(vs) > 16 {
			t.Fatalf("pool entry exceeds cap: %d", len(vs))
		}
	}
}

func TestSQGStaticParameters(t *testing.T) {
	db := tpchDB(t)
	pool := BuildConstPool(db, 16)
	for joins := 0; joins <= 5; joins++ {
		q, err := SQG(db.Schema, pool, SQGConfig{
			Joins: joins, Constants: 2, Projection: 1, Seed: uint64(joins + 1),
		})
		if err != nil {
			t.Fatalf("j=%d: %v", joins, err)
		}
		if got := q.NumJoins(); got != joins {
			t.Fatalf("j=%d: NumJoins = %d\n%s", joins, got, q)
		}
		if got := q.NumConstants(); got != 2 {
			t.Fatalf("j=%d: NumConstants = %d", joins, got)
		}
		if q.HasSelfJoin() {
			t.Fatalf("j=%d: generated self-join", joins)
		}
		if err := q.Validate(db.Schema); err != nil {
			t.Fatal(err)
		}
		// Projection 1 ⇒ all variables projected.
		if len(q.Out) != q.NumVars {
			t.Fatalf("j=%d: projected %d of %d vars at p=1", joins, len(q.Out), q.NumVars)
		}
	}
}

func TestSQGProjectionZero(t *testing.T) {
	db := tpchDB(t)
	pool := BuildConstPool(db, 16)
	q, err := SQG(db.Schema, pool, SQGConfig{Joins: 2, Constants: 0, Projection: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsBoolean() {
		t.Fatalf("p=0 should give Boolean query, got %s", q)
	}
}

func TestSQGErrors(t *testing.T) {
	db := tpchDB(t)
	pool := BuildConstPool(db, 4)
	if _, err := SQG(db.Schema, pool, SQGConfig{Joins: -1}); err == nil {
		t.Fatal("negative joins accepted")
	}
	if _, err := SQG(db.Schema, pool, SQGConfig{Projection: 2}); err == nil {
		t.Fatal("projection > 1 accepted")
	}
	noFK := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"a"}, KeyLen: 1},
	}, nil)
	if _, err := SQG(noFK, ConstPool{}, SQGConfig{Joins: 1}); err == nil {
		t.Fatal("join generation without FK graph accepted")
	}
}

func TestSQGDeterministic(t *testing.T) {
	db := tpchDB(t)
	pool := BuildConstPool(db, 16)
	cfg := SQGConfig{Joins: 3, Constants: 2, Projection: 0.5, Seed: 9}
	a, err := SQG(db.Schema, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SQG(db.Schema, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render(db.Dict) != b.Render(db.Dict) {
		t.Fatal("same seed gave different queries")
	}
}

func TestSQGNonEmpty(t *testing.T) {
	db := tpchDB(t)
	pool := BuildConstPool(db, 16)
	q, err := SQGNonEmpty(db, pool, SQGConfig{Joins: 2, Constants: 1, Projection: 1, Seed: 5}, 50)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := engine.NewEvaluator(db).HasAnswer(q.Boolean(), nil)
	if err != nil || !ok {
		t.Fatalf("returned query is empty: %v", err)
	}
}

func dqgFixture(t *testing.T) (*relation.Database, *cq.Query) {
	t.Helper()
	s := relation.MustSchema([]relation.RelDef{
		{Name: "R", Attrs: []string{"k", "a", "b"}, KeyLen: 1},
	}, nil)
	db := relation.NewDatabase(s)
	for i := 0; i < 12; i++ {
		db.MustInsert("R", i, i%4, i%2)
		db.MustInsert("R", i, (i+1)%4, i%2) // conflicting non-keys: blocks of 2
	}
	q := cq.MustParse("Q(k, a, b) :- R(k, a, b)", db.Dict)
	return db, q
}

func TestDQGHitsExtremes(t *testing.T) {
	db, q := dqgFixture(t)
	res, err := DQG(db, q, []float64{0, 1}, DQGConfig{Iterations: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Target 0: Boolean projection gives the smallest possible balance.
	if res[0].Balance >= res[1].Balance {
		t.Fatalf("balance(target 0) = %v >= balance(target 1) = %v", res[0].Balance, res[1].Balance)
	}
	// Target 1: projecting the key gives balance 1 (every image its own
	// answer).
	if math.Abs(res[1].Balance-1) > 1e-9 {
		t.Fatalf("best balance for target 1 = %v", res[1].Balance)
	}
	// The reported balance must match a fresh synopsis computation.
	for _, r := range res {
		set, err := synopsis.Build(db, r.Query)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(set.Balance()-r.Balance) > 1e-9 {
			t.Fatalf("reported balance %v, synopsis says %v for %s", r.Balance, set.Balance(), r.Query)
		}
	}
}

func TestDQGMonotoneTargets(t *testing.T) {
	db, q := dqgFixture(t)
	targets := []float64{0.1, 0.5, 0.9}
	res, err := DQG(db, q, targets, DQGConfig{Iterations: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Target != targets[i] {
			t.Fatal("targets out of order")
		}
		if r.Balance < 0 || r.Balance > 1 {
			t.Fatalf("balance %v out of range", r.Balance)
		}
	}
	if res[0].Balance > res[2].Balance {
		t.Fatalf("balances not trending with targets: %v vs %v", res[0].Balance, res[2].Balance)
	}
}

func TestDQGErrors(t *testing.T) {
	db, q := dqgFixture(t)
	if _, err := DQG(db, q, nil, DQGConfig{}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := DQG(db, q, []float64{2}, DQGConfig{}); err == nil {
		t.Fatal("target > 1 accepted")
	}
	empty := cq.MustParse("Q() :- R(999, a, b)", db.Dict)
	if _, err := DQG(db, empty, []float64{0.5}, DQGConfig{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestDQGOnTPCH(t *testing.T) {
	db := tpchDB(t)
	pool := BuildConstPool(db, 16)
	q, err := SQGNonEmpty(db, pool, SQGConfig{Joins: 1, Constants: 1, Projection: 1, Seed: 7}, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DQG(db, q, []float64{0.3, 0.8}, DQGConfig{Iterations: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if err := r.Query.Validate(db.Schema); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDQGTimeBudget(t *testing.T) {
	db, q := dqgFixture(t)
	// An expired budget still yields the seeded extremes, so every target
	// gets an answer.
	res, err := DQG(db, q, []float64{0.5}, DQGConfig{
		Iterations: 1000000,
		Seed:       1,
		TimeBudget: 1, // effectively expired immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Query == nil {
		t.Fatalf("res = %+v", res)
	}
}
