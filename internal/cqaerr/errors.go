// Package cqaerr holds the sentinel errors shared across the estimation
// stack. It is a leaf package (no internal imports) so every layer —
// synopsis construction, the estimator loops, the cqa schemes, the HTTP
// service and the root API — can wrap and match the same values without
// import cycles; the root package re-exports them as cqabench.ErrCanceled
// and cqabench.ErrInvalidOptions.
package cqaerr

import (
	"errors"
	"fmt"
)

// ErrCanceled is wrapped by errors returned when a caller's
// context.Context is canceled or exceeds its deadline mid-run. Errors
// built with Canceled also wrap the context's own sentinel, so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) hold.
var ErrCanceled = errors.New("cqabench: canceled")

// ErrInvalidOptions is wrapped by errors rejecting malformed
// approximation options (ε or δ outside (0, 1), a negative sample
// budget) before any sampling work starts.
var ErrInvalidOptions = errors.New("cqabench: invalid options")

// Canceled wraps a non-nil context error (ctx.Err()) so the result
// matches ErrCanceled and the original context sentinel alike.
func Canceled(cause error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}
