package mt

import "testing"

// TestSubstreamGolden pins the substream derivation: the first outputs
// of NewSubstream(root, chunk) for a spread of keys. These values were
// recorded from the initial implementation (SeedBySlice over the
// two-word key {root, chunk}, i.e. init_by_array64); any change here is
// a determinism break in the parallel sampling path, because committed
// parallel-path golden estimates (internal/cqa/testdata) and every
// recorded parallel result depend on these states.
func TestSubstreamGolden(t *testing.T) {
	cases := []struct {
		root, chunk uint64
		first       [4]uint64
	}{
		{5489, 0, [4]uint64{0x131ed4d86f7114ad, 0xceb77131126e8afc, 0xb10307e9c1d475ff, 0xbca7fcc712f380be}},
		{5489, 1, [4]uint64{0xff52da6e4bb30097, 0x22cecfbb5a9166c8, 0x24779a6599b93c12, 0xb47a830ac0994e29}},
		{5489, 2, [4]uint64{0xd212154c806a0e28, 0x9b80b4988ae59282, 0x9badb4bdcf4c785c, 0xf09df4abeaaeba6a}},
		{5489, 255, [4]uint64{0x98bd79c50c47a0d9, 0x85125908e45f72f2, 0x9329b6a9a06c4566, 0x823057e95b028f2f}},
		{1, 0, [4]uint64{0x64c07a5ab90c6b37, 0x6ea6d97beff75aec, 0xea0c89e38b1578d0, 0x4b876fd000c94a7e}},
		{1, 1, [4]uint64{0x4e7784f2a4c7d6d6, 0x839fe75ea9100acb, 0x49da321e4f1dcffb, 0x99b4be63544354b1}},
		{0, 0, [4]uint64{0x39e1ce23bd8bd87a, 0x5ab256578b06bbc1, 0x771aad4c1eeb7886, 0x340f159950f668e4}},
		{^uint64(0), 4096, [4]uint64{0xd22c35fc8c5c6601, 0x2ce1b4370516533e, 0x9cf9e46f3f620bf2, 0x7caca74d70a1512d}},
	}
	for _, c := range cases {
		s := NewSubstream(c.root, c.chunk)
		for i, want := range c.first {
			if got := s.Uint64(); got != want {
				t.Errorf("NewSubstream(%d, %d) output %d: got %#016x want %#016x",
					c.root, c.chunk, i, got, want)
			}
		}
	}
	// A longer-horizon checksum over one full state refill, so drift past
	// the first words is caught too.
	s := NewSubstream(5489, 0)
	var x uint64
	for i := 0; i < 312; i++ {
		x ^= s.Uint64()
	}
	if want := uint64(0xc7cd48b6ed1ad87b); x != want {
		t.Errorf("312-output checksum of substream (5489, 0): got %#016x want %#016x", x, want)
	}
}

// TestSubstreamEquivalences pins the definitional properties callers
// rely on: Substream reseeds in place to exactly the NewSubstream
// state, and both match a raw SeedBySlice over {root, chunk}.
func TestSubstreamEquivalences(t *testing.T) {
	reseeded := New(12345)
	for i := 0; i < 1000; i++ {
		reseeded.Uint64() // scroll the state so reseeding has to reset it
	}
	reseeded.Substream(99, 7)

	fresh := NewSubstream(99, 7)

	raw := &Source{}
	raw.SeedBySlice([]uint64{99, 7})

	for i := 0; i < 640; i++ {
		a, b, c := reseeded.Uint64(), fresh.Uint64(), raw.Uint64()
		if a != b || b != c {
			t.Fatalf("output %d diverges: Substream=%#x NewSubstream=%#x SeedBySlice=%#x", i, a, b, c)
		}
	}
}

// TestSubstreamDistinct is a smoke check that adjacent substream keys
// yield unrelated streams: no collisions among the first outputs of
// many (root, chunk) combinations.
func TestSubstreamDistinct(t *testing.T) {
	seen := make(map[uint64][2]uint64)
	for root := uint64(0); root < 8; root++ {
		for chunk := uint64(0); chunk < 512; chunk++ {
			v := NewSubstream(root, chunk).Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("first output collision: (%d,%d) and (%d,%d) both yield %#x",
					root, chunk, prev[0], prev[1], v)
			}
			seen[v] = [2]uint64{root, chunk}
		}
	}
}
