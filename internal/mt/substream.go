package mt

// Substream derivation for deterministic intra-query parallel sampling.
//
// The parallel estimation path splits one logical draw stream into
// fixed-size chunks and hands each chunk to whichever worker is free.
// Every chunk draws from its own Source, derived purely from the pair
// (root seed, chunk index) via SeedBySlice (init_by_array64): the
// derived state depends on nothing but those two words, so chunk k sees
// the same randomness whether it is computed by worker 0 or worker 7,
// eagerly or late — the whole schedule is a pure function of the root
// seed. MT19937-64's init_by_array64 is the generator's own
// multi-word seeding procedure, designed so that nearby keys yield
// uncorrelated states; it is the standard way to key independent
// substreams without jump-ahead polynomial arithmetic.
//
// The derivation is part of the repository's determinism contract
// (docs/ARCHITECTURE.md): TestSubstreamGolden pins the derived states
// and first outputs, so the scheme can never drift silently.

// Substream reseeds s to the substream identified by (rootSeed, chunk):
// SeedBySlice over the two-word key {rootSeed, chunk}. It reuses s's
// state array, so per-chunk reseeding in a worker loop allocates
// nothing.
func (s *Source) Substream(rootSeed, chunk uint64) {
	s.SeedBySlice([]uint64{rootSeed, chunk})
}

// NewSubstream returns a fresh Source positioned at the start of the
// (rootSeed, chunk) substream. Equivalent to New followed by Substream.
func NewSubstream(rootSeed, chunk uint64) *Source {
	s := &Source{}
	s.Substream(rootSeed, chunk)
	return s
}
