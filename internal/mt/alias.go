package mt

// Alias is a Walker alias table for O(1) sampling from a fixed discrete
// distribution. The KL and KLM samplers use it to choose a homomorphic
// image index i with probability |I^i| / |S•|: the distribution is fixed
// per synopsis while the optimal estimator may draw millions of samples
// from it, so the O(n) preprocessing amortizes immediately.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table from non-negative weights. Weights need
// not be normalized. It panics if weights is empty or sums to zero or the
// weights contain a negative or non-finite entry.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("mt: NewAlias with no weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || w != w || w > 1e308 {
			panic("mt: NewAlias weight out of range")
		}
		sum += w
	}
	if sum <= 0 {
		panic("mt: NewAlias weights sum to zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities; mean 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Remaining entries have probability 1 up to floating-point error.
	for _, g := range large {
		a.prob[g] = 1
	}
	for _, l := range small {
		a.prob[l] = 1
	}
	return a
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Draw returns an index distributed according to the table's weights.
func (a *Alias) Draw(src *Source) int {
	i := src.Intn(len(a.prob))
	if src.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
