package mt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference outputs of mt19937-64.c seeded via init_genrand64(5489).
// These pin our stream to the canonical implementation.
var refSeed5489 = []uint64{
	14514284786278117030,
	4620546740167642908,
	13109570281517897720,
	17462938647148434322,
	355488278567739596,
	7469126240319926998,
	4635995468481642529,
	418970542659199878,
	9604170989252516556,
	6358044926049913402,
}

func TestReferenceStream(t *testing.T) {
	s := New(DefaultSeed)
	for i, want := range refSeed5489 {
		if got := s.Uint64(); got != want {
			t.Fatalf("output %d: got %d, want %d", i, got, want)
		}
	}
}

func TestSeedBySliceReference(t *testing.T) {
	// First outputs of init_by_array64({0x12345, 0x23456, 0x34567, 0x45678})
	// from the reference mt19937-64.out.txt.
	want := []uint64{
		7266447313870364031,
		4946485549665804864,
		16945909448695747420,
		16394063075524226720,
		4873882236456199058,
	}
	s := &Source{}
	s.SeedBySlice([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("output %d: got %d, want %d", i, got, w)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds agree on %d of 100 outputs", same)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 7, 8, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	// Chi-squared with 9 dof; 99.9% critical value is 27.88.
	var chi2 float64
	expected := float64(draws) / n
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("Intn(%d) chi2 = %.2f exceeds 27.88; counts %v", n, chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(17)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(19)
	const draws = 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) hit rate %.4f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestRandSourceCompatibility(t *testing.T) {
	// Source must be usable as a math/rand source.
	r := rand.New(New(31))
	for i := 0; i < 100; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("rand.Intn via Source out of range: %d", v)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := NewAlias([]float64{3.5})
	s := New(37)
	for i := 0; i < 100; i++ {
		if a.Draw(s) != 0 {
			t.Fatal("single-outcome alias drew non-zero index")
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a := NewAlias([]float64{1, 0, 1})
	s := New(41)
	for i := 0; i < 10000; i++ {
		if a.Draw(s) == 1 {
			t.Fatal("alias drew zero-weight outcome")
		}
	}
}

func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	s := New(43)
	const draws = 400000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(s)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("outcome %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero-sum": {0, 0},
		"negative": {1, -1},
		"nan":      {math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%s) did not panic", name)
				}
			}()
			NewAlias(weights)
		}()
	}
}

func TestAliasMatchesWeightsProperty(t *testing.T) {
	// Property: for random small weight vectors, empirical frequencies
	// track normalized weights.
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			weights[i] = float64(r%10) + 0.5
			sum += weights[i]
		}
		a := NewAlias(weights)
		s := New(47)
		const draws = 60000
		counts := make([]int, len(weights))
		for i := 0; i < draws; i++ {
			counts[a.Draw(s)]++
		}
		for i := range weights {
			want := weights[i] / sum
			got := float64(counts[i]) / draws
			if math.Abs(got-want) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(DefaultSeed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(DefaultSeed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	weights := make([]float64, 1024)
	for i := range weights {
		weights[i] = float64(i%7) + 1
	}
	a := NewAlias(weights)
	s := New(DefaultSeed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Draw(s)
	}
}
